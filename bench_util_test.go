package repro

import (
	"io"
	"net/http"
	"testing"
)

// mustGet fetches a URL during a benchmark.
func mustGet(b *testing.B, url string) []byte {
	b.Helper()
	resp, err := http.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		b.Fatal(err)
	}
	return body
}
