// Benchmark harness: one benchmark per evaluation artifact of the
// paper — Figures 1-8, Table 1 (one sub-benchmark per row), and the
// §3 deployment constructors. Each benchmark exercises exactly the
// code path that regenerates the artifact (cmd/ctt-experiments renders
// the artifacts themselves); together they make the cost of every
// piece of the reproduction measurable.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/citygml"
	"repro/internal/core"
	"repro/internal/dashboard"
	"repro/internal/dataport"
	"repro/internal/emissions"
	"repro/internal/integrate"
	"repro/internal/tsdb"
	"repro/internal/viz"
)

var benchStart = time.Date(2017, time.March, 1, 0, 0, 0, 0, time.UTC)

// sharedSystem is a 3-day Trondheim run reused by the read-only
// benchmarks (building it takes seconds; per-iteration rebuilds would
// drown the measurements).
var (
	sharedOnce sync.Once
	shared     *core.System
	sharedErr  error
)

func sharedSys(b *testing.B) *core.System {
	b.Helper()
	sharedOnce.Do(func() {
		cfg := core.TrondheimConfig(7)
		cfg.Start = benchStart
		shared, sharedErr = core.New(cfg)
		if sharedErr != nil {
			return
		}
		_, sharedErr = shared.Run(3 * 24 * time.Hour)
	})
	if sharedErr != nil {
		b.Fatal(sharedErr)
	}
	return shared
}

func sharedSeries(b *testing.B, metric, sensor string) integrate.TimeSeries {
	b.Helper()
	sys := sharedSys(b)
	tags := map[string]string{}
	if sensor != "" {
		tags["sensor"] = sensor
	}
	res, err := sys.DB.Execute(tsdb.Query{
		Metric: metric, Tags: tags,
		Start: sys.Start.UnixMilli(), End: sys.Now().UnixMilli(),
		Aggregator: tsdb.AggAvg,
	})
	if err != nil || len(res) == 0 {
		b.Fatalf("no %s data: %v", metric, err)
	}
	ts := integrate.TimeSeries{Name: metric}
	for _, p := range res[0].Points {
		ts.Samples = append(ts.Samples, integrate.Sample{Time: p.Time(), Value: p.Value})
	}
	return ts
}

// BenchmarkFig1ArchitecturePipeline measures one full pipeline tick of
// the Fig. 1 architecture: 12 nodes sample → LoRaWAN resolution → TTN
// dedup/decode → TSDB + dataport ingest → traffic feed.
func BenchmarkFig1ArchitecturePipeline(b *testing.B) {
	cfg := core.TrondheimConfig(3)
	cfg.Start = benchStart
	sys, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sys.IngestCount())/float64(b.N), "uplinks/tick")
}

// BenchmarkFig2DataportProtocol measures the dataport message path of
// Fig. 2: an uplink observation traversing the digital twins plus a
// full status round (alarm evaluation).
func BenchmarkFig2DataportProtocol(b *testing.B) {
	dp, err := dataport.New(dataport.Config{DefaultInterval: 5 * time.Minute})
	if err != nil {
		b.Fatal(err)
	}
	defer dp.Close()
	dp.RegisterGateway("gw1", core.TrondheimCenter)
	for i := 0; i < 12; i++ {
		dp.RegisterSensor(fmt.Sprintf("s%02d", i), core.TrondheimCenter, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := benchStart.Add(time.Duration(i) * 5 * time.Minute)
		for s := 0; s < 12; s++ {
			dp.ObserveUplink(dataport.UplinkObservation{
				DeviceID:   fmt.Sprintf("s%02d", s),
				GatewayIDs: []string{"gw1"},
				Time:       ts, BatteryPct: 80, RSSI: -85,
			})
		}
		if _, err := dp.Tick(ts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3NetworkVisualization measures snapshot collection plus
// SVG map rendering.
func BenchmarkFig3NetworkVisualization(b *testing.B) {
	sys := sharedSys(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := sys.Dataport.Snapshot(sys.Now())
		if err != nil {
			b.Fatal(err)
		}
		svg := viz.NetworkMapSVG(snap, 800, 600)
		if len(svg) == 0 {
			b.Fatal("empty svg")
		}
	}
}

// BenchmarkFig4BatteryAnalysis measures the battery-level analysis
// (both panels) over 3 days of telemetry.
func BenchmarkFig4BatteryAnalysis(b *testing.B) {
	batt := sharedSeries(b, core.MetricBattery, "ctt-node-01")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := analytics.AnalyzeBattery("ctt-node-01", batt,
			core.TrondheimCenter.Lat, core.TrondheimCenter.Lon)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Deltas) == 0 {
			b.Fatal("no deltas")
		}
	}
}

// BenchmarkFig5CO2Dynamics measures the CO2-vs-traffic study:
// alignment, correlations, lagged cross-correlation, and the
// multi-factor regression.
func BenchmarkFig5CO2Dynamics(b *testing.B) {
	sys := sharedSys(b)
	co2 := sharedSeries(b, core.MetricCO2, core.ColocatedNodeID)
	feed := integrate.NewTrafficFeed(sys.Traffic)
	jam := feed.JamFactorSeries(sys.Start, sys.Now())
	temp := sharedSeries(b, core.MetricTemp, core.ColocatedNodeID)
	wind := integrate.TimeSeries{Name: "wind"}
	for t := sys.Start; t.Before(sys.Now()); t = t.Add(time.Hour) {
		wind.Samples = append(wind.Samples, integrate.Sample{Time: t, Value: sys.Weather.At(t).WindSpeedMS})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aligned, err := integrate.Align([]integrate.TimeSeries{co2, jam, temp, wind},
			time.Hour, integrate.MeanInBucket)
		if err != nil {
			b.Fatal(err)
		}
		aligned = integrate.DropNaN(aligned)
		study, err := analytics.StudyDynamics(aligned[0], aligned[1], aligned[2], aligned[3], 6)
		if err != nil {
			b.Fatal(err)
		}
		if !study.NoApparentCorrelation() {
			b.Fatalf("Fig 5 shape violated: raw r=%v", study.PearsonR)
		}
	}
}

// BenchmarkFig6Dashboards measures rendering one dashboard panel from
// a live TSDB query (the Fig. 6 serving path).
func BenchmarkFig6Dashboards(b *testing.B) {
	sys := sharedSys(b)
	srv := dashboard.New(sys.DB, sys.Dataport)
	srv.SetNow(sys.Now)
	if err := srv.AddPanel(dashboard.Panel{
		Name: "co2", Title: "CO2 by sensor", Metric: core.MetricCO2,
		Tags: map[string]string{"sensor": "*"}, Agg: tsdb.AggAvg,
		Downsample: time.Hour, Window: 3 * 24 * time.Hour, YLabel: "ppm",
	}); err != nil {
		b.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	url := fmt.Sprintf("http://%s/panel/co2.svg", addr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := mustGet(b, url)
		if len(body) < 1000 {
			b.Fatalf("panel render too small: %d bytes", len(body))
		}
	}
}

// BenchmarkFig7CityModel measures city generation, sensor embedding,
// the 2.5D rendering and CityGML export.
func BenchmarkFig7CityModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := citygml.GenerateCity("vejle", core.VejleCenter, 1200, 11)
		m.AddSensor(citygml.MeasuringPoint{ID: "n1", Pos: core.VejleCenter, Species: "co2", Value: 420})
		svg := viz.CityModelSVG(m, 400, 500, 900, 650)
		gml, err := m.ExportGML()
		if err != nil {
			b.Fatal(err)
		}
		if len(svg) == 0 || len(gml) == 0 {
			b.Fatal("empty artifacts")
		}
	}
}

// BenchmarkFig8WallDisplay measures the combined wall view: network
// snapshot + panels served as one page plus the map.
func BenchmarkFig8WallDisplay(b *testing.B) {
	sys := sharedSys(b)
	srv := dashboard.New(sys.DB, sys.Dataport)
	srv.SetNow(sys.Now)
	srv.AddPanel(dashboard.Panel{
		Name: "co2", Title: "CO2", Metric: core.MetricCO2, Agg: tsdb.AggAvg,
		Downsample: time.Hour, Window: 3 * 24 * time.Hour,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	wallURL := fmt.Sprintf("http://%s/wall", addr)
	netURL := fmt.Sprintf("http://%s/network.svg", addr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustGet(b, wallURL)
		mustGet(b, netURL)
	}
}

// BenchmarkTable1Integration has one sub-benchmark per row of the
// paper's Table 1.
func BenchmarkTable1Integration(b *testing.B) {
	sys := sharedSys(b)

	b.Run("OfficialAirQuality", func(b *testing.B) {
		station := integrate.NewReferenceStation("nilu", core.TrondheimCenter, sys.Field)
		sensor := sharedSeries(b, core.MetricCO2, core.ColocatedNodeID)
		ref := station.Observe(emissions.CO2, sys.Start, sys.Now())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			aligned, err := integrate.Align([]integrate.TimeSeries{sensor, ref}, time.Hour, integrate.MeanInBucket)
			if err != nil {
				b.Fatal(err)
			}
			aligned = integrate.DropNaN(aligned)
			cal, err := analytics.CalibrateAgainstReference(aligned[0], aligned[1])
			if err != nil {
				b.Fatal(err)
			}
			if cal.Gain == 0 {
				b.Fatal("degenerate calibration")
			}
		}
	})

	b.Run("RemoteSensing", func(b *testing.B) {
		sat := integrate.NewSatellite(sys.Field)
		end := sys.Start.AddDate(0, 3, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ts := sat.CampaignSeries(core.TrondheimCenter, sys.Start, end)
			if len(ts.Samples) == 0 {
				b.Fatal("no overpasses")
			}
		}
	})

	b.Run("TrafficFeed", func(b *testing.B) {
		feed := integrate.NewTrafficFeed(sys.Traffic)
		end := sys.Start.Add(24 * time.Hour)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ts := feed.JamFactorSeries(sys.Start, end)
			if len(ts.Samples) != 288 {
				b.Fatalf("samples: %d", len(ts.Samples))
			}
		}
	})

	b.Run("MunicipalCounts", func(b *testing.B) {
		mc := integrate.MunicipalCounts{Network: sys.Traffic}
		seg := sys.Traffic.Segments[0].ID
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ts, err := mc.Campaign(seg, sys.Start, 7)
			if err != nil || len(ts.Samples) != 168 {
				b.Fatalf("campaign: %d %v", len(ts.Samples), err)
			}
		}
	})

	b.Run("CityModelGML", func(b *testing.B) {
		m := citygml.GenerateCity("vejle", core.VejleCenter, 1200, 11)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			gml, err := m.ExportGML()
			if err != nil || len(gml) == 0 {
				b.Fatal(err)
			}
		}
	})

	b.Run("NationalStatistics", func(b *testing.B) {
		inv := integrate.NorwayInventory2016()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			est, err := inv.Downscale("trondheim", 190000)
			if err != nil {
				b.Fatal(err)
			}
			total := integrate.Total(est)
			if total.KtCO2e <= 0 {
				b.Fatal("bad total")
			}
		}
	})
}

// BenchmarkSec3Deployments measures constructing (and tearing down)
// the paper's two pilot systems.
func BenchmarkSec3Deployments(b *testing.B) {
	b.Run("Trondheim12Nodes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys, err := core.New(core.TrondheimConfig(int64(i)))
			if err != nil {
				b.Fatal(err)
			}
			sys.Close()
		}
	})
	b.Run("Vejle2Nodes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys, err := core.New(core.VejleConfig(int64(i)))
			if err != nil {
				b.Fatal(err)
			}
			sys.Close()
		}
	})
}
