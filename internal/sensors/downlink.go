package sensors

import (
	"errors"
	"fmt"
	"time"
)

// Downlink commands: the paper's backbone does "cloud sensor
// management ... through the event-driven MQTT communication protocol"
// (§2.1), and the demo lets attendees "vary system and analysis
// properties, and observe the reflection on the dashboard" (§3).
// Nodes are LoRaWAN class A: a downlink reaches the node in the
// receive window right after one of its uplinks.
//
// Command payload: TLV pairs of cmd(1) | value(1).
const (
	// CmdSetIntervalMin sets the reporting interval in minutes (1-120).
	CmdSetIntervalMin = 0x01
	// CmdSetLowBatteryPct sets the adaptive-interval battery threshold.
	CmdSetLowBatteryPct = 0x02
)

// Downlink codec errors.
var (
	ErrBadCommand     = errors.New("sensors: malformed command payload")
	ErrUnknownCommand = errors.New("sensors: unknown command")
	ErrCommandValue   = errors.New("sensors: command value out of range")
)

// EncodeSetInterval builds a downlink payload changing the reporting
// interval.
func EncodeSetInterval(minutes int) ([]byte, error) {
	if minutes < 1 || minutes > 120 {
		return nil, fmt.Errorf("%w: interval %d min", ErrCommandValue, minutes)
	}
	return []byte{CmdSetIntervalMin, byte(minutes)}, nil
}

// EncodeSetLowBattery builds a downlink payload changing the
// low-battery threshold.
func EncodeSetLowBattery(pct int) ([]byte, error) {
	if pct < 1 || pct > 90 {
		return nil, fmt.Errorf("%w: threshold %d%%", ErrCommandValue, pct)
	}
	return []byte{CmdSetLowBatteryPct, byte(pct)}, nil
}

// HandleDownlink applies a command payload received in the node's
// class-A receive window.
func (n *Node) HandleDownlink(payload []byte) error {
	if len(payload) == 0 || len(payload)%2 != 0 {
		return ErrBadCommand
	}
	for off := 0; off < len(payload); off += 2 {
		cmd, val := payload[off], payload[off+1]
		switch cmd {
		case CmdSetIntervalMin:
			if val < 1 || val > 120 {
				return fmt.Errorf("%w: interval %d", ErrCommandValue, val)
			}
			n.Config.Interval = time.Duration(val) * time.Minute
		case CmdSetLowBatteryPct:
			if val < 1 || val > 90 {
				return fmt.Errorf("%w: threshold %d", ErrCommandValue, val)
			}
			n.Config.LowBatteryPct = float64(val)
		default:
			return fmt.Errorf("%w: 0x%02x", ErrUnknownCommand, cmd)
		}
	}
	return nil
}
