package sensors

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/emissions"
	"repro/internal/geo"
	"repro/internal/lorawan"
	"repro/internal/weather"
)

// FaultKind enumerates injectable sensor faults (§2.3: "decaying
// sensors, erroneous behavior of sensor nodes, or missing data
// patterns need specific analysis").
type FaultKind int

// Fault kinds.
const (
	// FaultNone: healthy node.
	FaultNone FaultKind = iota
	// FaultDead: the node never transmits after the fault starts.
	FaultDead
	// FaultStuck: the pollutant channels freeze at their last value.
	FaultStuck
	// FaultDropout: the node misses transmissions at random while the
	// fault window is active.
	FaultDropout
	// FaultDrift: accelerated calibration drift on CO2.
	FaultDrift
)

// Fault describes one injected failure window.
type Fault struct {
	Kind  FaultKind
	Start time.Time
	End   time.Time // zero means forever
	// DropProbability applies to FaultDropout.
	DropProbability float64
}

func (f Fault) active(t time.Time) bool {
	if f.Kind == FaultNone || t.Before(f.Start) {
		return false
	}
	return f.End.IsZero() || t.Before(f.End)
}

// Config sets up a sensor node.
type Config struct {
	ID      string
	DevAddr lorawan.DevAddr
	Pos     geo.LatLon
	// Interval is the base reporting interval (paper: 5 minutes).
	Interval time.Duration
	// LowBatteryPct is the threshold below which the node doubles its
	// interval to save energy.
	LowBatteryPct float64
	Seed          int64
}

// Node is a simulated sensor unit.
type Node struct {
	Config
	Battery *Battery

	field   *emissions.Field
	weather *weather.Model
	rng     *rand.Rand

	// Per-unit miscalibration: measured = gain*truth + offset + noise.
	// These are what the co-location calibration (§2.4) estimates.
	gainCO2, offsetCO2 float64
	gainNO2, offsetNO2 float64
	gainPM, offsetPM   float64
	// driftPerDay adds slow baseline drift on CO2.
	driftPerDay float64
	epoch       time.Time

	faults []Fault

	fcnt      uint16
	lastTx    time.Time
	lastMeas  Measurement
	haveMeas  bool
	lastBatt  time.Time
	stuckMeas *Measurement
}

// NewNode creates a node sampling the given truth field and weather.
func NewNode(cfg Config, field *emissions.Field, w *weather.Model) *Node {
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Minute
	}
	if cfg.LowBatteryPct <= 0 {
		cfg.LowBatteryPct = 25
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.DevAddr)*31))
	n := &Node{
		Config:  cfg,
		Battery: NewBattery(),
		field:   field,
		weather: w,
		rng:     rng,
		// Low-cost sensors: gain errors up to ±10%, offsets up to
		// ±25 ppm CO2 / ±3 µg/m³ — consistent with the paper's premise
		// that density compensates for per-unit inaccuracy.
		gainCO2:     1 + rng.NormFloat64()*0.05,
		offsetCO2:   rng.NormFloat64() * 12,
		gainNO2:     1 + rng.NormFloat64()*0.08,
		offsetNO2:   rng.NormFloat64() * 1.5,
		gainPM:      1 + rng.NormFloat64()*0.08,
		offsetPM:    rng.NormFloat64() * 1.2,
		driftPerDay: rng.NormFloat64() * 0.15, // ppm/day baseline drift
	}
	return n
}

// InjectFault schedules a failure window.
func (n *Node) InjectFault(f Fault) { n.faults = append(n.faults, f) }

// TrueCalibration exposes the node's actual CO2 gain and offset — used
// by tests and experiments to verify that the calibration analysis
// recovers them (never available to a real deployment).
func (n *Node) TrueCalibration() (gain, offset float64) { return n.gainCO2, n.offsetCO2 }

// interval returns the current reporting interval, stretched when the
// battery is low (adaptive frequency, §2.3).
func (n *Node) interval() time.Duration {
	if n.Battery.Percent() < n.LowBatteryPct {
		return 2 * n.Config.Interval
	}
	return n.Config.Interval
}

// Sample produces the node's (noisy, miscalibrated) measurement of the
// truth field at time t. It does not touch transmission state.
func (n *Node) Sample(t time.Time) Measurement {
	if n.epoch.IsZero() {
		n.epoch = t
	}
	w := n.weather.At(t)
	days := t.Sub(n.epoch).Hours() / 24
	drift := n.driftPerDay * days
	for _, f := range n.faults {
		if f.Kind == FaultDrift && f.active(t) {
			drift += 2.0 * t.Sub(f.Start).Hours() / 24 // fast decay
		}
	}

	co2True := n.field.Concentration(emissions.CO2, n.Pos, t)
	no2True := n.field.Concentration(emissions.NO2, n.Pos, t)
	pm10True := n.field.Concentration(emissions.PM10, n.Pos, t)
	pm25True := n.field.Concentration(emissions.PM25, n.Pos, t)

	m := Measurement{
		Time:         t,
		CO2:          n.gainCO2*co2True + n.offsetCO2 + drift + n.rng.NormFloat64()*3,
		NO2:          math.Max(0, n.gainNO2*no2True+n.offsetNO2+n.rng.NormFloat64()*0.8),
		PM10:         math.Max(0, n.gainPM*pm10True+n.offsetPM+n.rng.NormFloat64()*0.8),
		PM25:         math.Max(0, n.gainPM*pm25True+n.offsetPM*0.7+n.rng.NormFloat64()*0.5),
		TemperatureC: w.TemperatureC + n.rng.NormFloat64()*0.3,
		HumidityPct:  math.Min(100, math.Max(0, w.HumidityPct+n.rng.NormFloat64()*2)),
		PressureHPa:  w.PressureHPa + n.rng.NormFloat64()*0.5,
		BatteryPct:   n.Battery.Percent(),
	}

	for _, f := range n.faults {
		if f.Kind == FaultStuck && f.active(t) {
			if n.stuckMeas == nil {
				frozen := m
				n.stuckMeas = &frozen
			}
			frozen := *n.stuckMeas
			frozen.Time = t
			frozen.BatteryPct = n.Battery.Percent()
			return frozen
		}
	}
	n.stuckMeas = nil
	return m
}

// Step advances the node to time t: charges/drains the battery and, if
// a report is due, samples and returns a LoRaWAN transmission. It
// returns nil when the node stays silent this tick (not due, battery
// empty, dead fault, or dropout).
func (n *Node) Step(t time.Time) *lorawan.Transmission {
	// Battery bookkeeping since the previous step.
	if !n.lastBatt.IsZero() && t.After(n.lastBatt) {
		irr := n.weather.At(t).IrradianceWM2
		n.Battery.Advance(t.Sub(n.lastBatt), irr)
	}
	n.lastBatt = t

	for _, f := range n.faults {
		if f.Kind == FaultDead && f.active(t) {
			return nil
		}
	}
	if !n.lastTx.IsZero() && t.Sub(n.lastTx) < n.interval() {
		return nil
	}
	if n.Battery.Empty() {
		return nil
	}
	for _, f := range n.faults {
		if f.Kind == FaultDropout && f.active(t) && n.rng.Float64() < f.DropProbability {
			n.lastTx = t // the node believes it sent; the frame just vanishes
			return nil
		}
	}

	m := n.Sample(t)
	n.lastMeas = m
	n.haveMeas = true
	if !n.Battery.Transmit() {
		return nil
	}
	n.fcnt++
	up := &lorawan.Uplink{
		DevAddr: n.DevAddr,
		FCnt:    n.fcnt,
		FPort:   1,
		Payload: EncodeMeasurement(m),
	}
	frame, err := up.Encode()
	if err != nil {
		return nil // payload is fixed-size; unreachable
	}
	n.lastTx = t
	// CTT nodes are stationary and far from gateways in parts of the
	// city; SF is set conservatively per node from its address (in a
	// real network ADR would settle this).
	sf := lorawan.SpreadingFactor(9 + int(n.DevAddr)%3)
	// Real nodes drift against each other; model that with a per-node,
	// per-frame send jitter so same-tick transmissions do not all
	// overlap on air (Class A devices are uncoordinated).
	jitter := time.Duration(int64(n.DevAddr)*2654435761+int64(n.fcnt)*40503) % (30 * time.Second)
	if jitter < 0 {
		jitter = -jitter
	}
	return &lorawan.Transmission{
		DeviceID: n.ID,
		Frame:    frame,
		Pos:      n.Pos,
		SF:       sf,
		Chan:     (int(n.fcnt) + int(n.DevAddr)) % lorawan.Channels,
		Start:    t.Add(jitter),
	}
}

// LastMeasurement returns the node's most recent sample, if any.
func (n *Node) LastMeasurement() (Measurement, bool) { return n.lastMeas, n.haveMeas }

// FrameCount returns the node's uplink frame counter.
func (n *Node) FrameCount() uint16 { return n.fcnt }
