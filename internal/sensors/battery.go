package sensors

import (
	"math"
	"time"
)

// Battery models the node's energy store: solar charging during
// daylight (Fig. 4's subject), constant idle drain, and a per-uplink
// transmission cost. State is a percentage of capacity.
type Battery struct {
	// CapacityWh is the battery capacity in watt-hours.
	CapacityWh float64
	// PanelAreaM2 and PanelEfficiency size the solar panel.
	PanelAreaM2     float64
	PanelEfficiency float64
	// IdleDrawW is the standby power draw.
	IdleDrawW float64
	// TxCostWh is the energy cost of one LoRa uplink (dominated by the
	// radio at high spreading factors).
	TxCostWh float64

	// chargeWh is the current stored energy.
	chargeWh float64
}

// NewBattery returns a battery sized like the CTT prototype units:
// a small panel and a battery good for several days without sun.
func NewBattery() *Battery {
	// Sized to survive a Nordic winter: the deep-December solar yield
	// in Trondheim is ~50 Wh/m²/day, so the panel/idle balance must
	// let the battery bridge the darkest weeks on stored charge.
	b := &Battery{
		CapacityWh:      24,    // ~ 3.7 V × 6.5 Ah pack
		PanelAreaM2:     0.04,  // 400 cm² panel
		PanelEfficiency: 0.18,  // monocrystalline
		IdleDrawW:       0.035, // MCU + sensors duty-cycled
		TxCostWh:        0.003, // one SF12 uplink burst
	}
	b.chargeWh = b.CapacityWh * 0.75
	return b
}

// Percent returns the state of charge in [0, 100].
func (b *Battery) Percent() float64 {
	return 100 * b.chargeWh / b.CapacityWh
}

// SetPercent sets the state of charge (clamped).
func (b *Battery) SetPercent(p float64) {
	b.chargeWh = math.Max(0, math.Min(100, p)) / 100 * b.CapacityWh
}

// Advance applies idle drain and solar charging over the interval dt
// with average irradiance irrWM2 (W/m²).
func (b *Battery) Advance(dt time.Duration, irrWM2 float64) {
	hours := dt.Hours()
	in := irrWM2 * b.PanelAreaM2 * b.PanelEfficiency * hours
	out := b.IdleDrawW * hours
	b.chargeWh = math.Max(0, math.Min(b.CapacityWh, b.chargeWh+in-out))
}

// Transmit deducts one uplink's energy. It reports whether the battery
// had enough charge to transmit.
func (b *Battery) Transmit() bool {
	if b.chargeWh < b.TxCostWh {
		return false
	}
	b.chargeWh -= b.TxCostWh
	return true
}

// Empty reports whether the node is out of energy (below the cutoff
// where the regulator browns out).
func (b *Battery) Empty() bool { return b.Percent() < 1 }
