// Package sensors simulates the CTT low-cost sensor units: ~$2,000
// standalone nodes measuring CO2, NO2, particulate matter, temperature,
// pressure and humidity, powered by solar-charged batteries and
// transmitting over LoRaWAN at a five-minute interval (paper §2.1, §3).
//
// The simulator reproduces the error structure the paper's analytics
// must handle: per-unit miscalibration (gain and offset) and slow
// drift — the reason the network must be grounded against official
// stations (§2.4); measurement noise; battery-driven adaptive sampling
// ("sensor nodes can adapt their frequency based on battery levels",
// §2.3); and injectable failure modes (dead node, stuck value,
// intermittent dropouts) for the dataport to detect.
package sensors

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Measurement is one full sensor reading.
type Measurement struct {
	Time         time.Time
	CO2          float64 // ppm
	NO2          float64 // µg/m³
	PM10         float64 // µg/m³
	PM25         float64 // µg/m³
	TemperatureC float64
	HumidityPct  float64
	PressureHPa  float64
	BatteryPct   float64
}

// Payload codec: a compact TLV format in the spirit of Cayenne LPP.
// Each field is channel(1) | value(2, big-endian int16, scaled).
// The full measurement fits in 24 bytes — well inside the SF12 limit.
const (
	chCO2      = 0x01 // ppm, x1
	chNO2      = 0x02 // µg/m³, x10
	chPM10     = 0x03 // µg/m³, x10
	chPM25     = 0x04 // µg/m³, x10
	chTemp     = 0x05 // °C, x10
	chHumidity = 0x06 // %, x10
	chPressure = 0x07 // hPa offset from 900, x10
	chBattery  = 0x08 // %, x10
)

// Codec errors.
var (
	ErrShortPayload   = errors.New("sensors: truncated payload")
	ErrUnknownChannel = errors.New("sensors: unknown payload channel")
)

// EncodeMeasurement packs a measurement into the uplink payload.
func EncodeMeasurement(m Measurement) []byte {
	buf := make([]byte, 0, 24)
	put := func(ch byte, v float64, scale float64) {
		iv := int64(math.Round(v * scale))
		if iv > math.MaxInt16 {
			iv = math.MaxInt16
		}
		if iv < math.MinInt16 {
			iv = math.MinInt16
		}
		buf = append(buf, ch, 0, 0)
		binary.BigEndian.PutUint16(buf[len(buf)-2:], uint16(int16(iv)))
	}
	put(chCO2, m.CO2, 1)
	put(chNO2, m.NO2, 10)
	put(chPM10, m.PM10, 10)
	put(chPM25, m.PM25, 10)
	put(chTemp, m.TemperatureC, 10)
	put(chHumidity, m.HumidityPct, 10)
	put(chPressure, m.PressureHPa-900, 10)
	put(chBattery, m.BatteryPct, 10)
	return buf
}

// DecodeMeasurement unpacks an uplink payload. The Time field is left
// zero; the backend stamps reception time.
func DecodeMeasurement(buf []byte) (Measurement, error) {
	var m Measurement
	if len(buf)%3 != 0 {
		return m, ErrShortPayload
	}
	for off := 0; off < len(buf); off += 3 {
		v := float64(int16(binary.BigEndian.Uint16(buf[off+1 : off+3])))
		switch buf[off] {
		case chCO2:
			m.CO2 = v
		case chNO2:
			m.NO2 = v / 10
		case chPM10:
			m.PM10 = v / 10
		case chPM25:
			m.PM25 = v / 10
		case chTemp:
			m.TemperatureC = v / 10
		case chHumidity:
			m.HumidityPct = v / 10
		case chPressure:
			m.PressureHPa = v/10 + 900
		case chBattery:
			m.BatteryPct = v / 10
		default:
			return m, fmt.Errorf("%w: 0x%02x", ErrUnknownChannel, buf[off])
		}
	}
	return m, nil
}
