package sensors

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/emissions"
	"repro/internal/geo"
	"repro/internal/lorawan"
	"repro/internal/traffic"
	"repro/internal/weather"
)

var center = geo.LatLon{Lat: 63.4305, Lon: 10.3951}

func testEnv(t *testing.T) (*emissions.Field, *weather.Model) {
	t.Helper()
	w := weather.NewModel(center.Lat, center.Lon, 1)
	tr := traffic.NewNetwork(traffic.GenerateGridNetwork(center, 3000, 1), 1)
	return emissions.NewField(w, tr), w
}

func testNode(t *testing.T, seed int64) *Node {
	t.Helper()
	f, w := testEnv(t)
	return NewNode(Config{
		ID:      "node-1",
		DevAddr: 0x26010001,
		Pos:     center,
		Seed:    seed,
	}, f, w)
}

func at(mo time.Month, d, h, m int) time.Time {
	return time.Date(2017, mo, d, h, m, 0, 0, time.UTC)
}

func TestCodecRoundTrip(t *testing.T) {
	m := Measurement{
		CO2: 415, NO2: 23.4, PM10: 17.8, PM25: 9.2,
		TemperatureC: -4.5, HumidityPct: 82.3, PressureHPa: 1013.2, BatteryPct: 76.5,
	}
	buf := EncodeMeasurement(m)
	if len(buf) != 24 {
		t.Fatalf("payload length %d, want 24", len(buf))
	}
	got, err := DecodeMeasurement(buf)
	if err != nil {
		t.Fatal(err)
	}
	close := func(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
	if !close(got.CO2, m.CO2, 0.5) || !close(got.NO2, m.NO2, 0.05) ||
		!close(got.PM10, m.PM10, 0.05) || !close(got.PM25, m.PM25, 0.05) ||
		!close(got.TemperatureC, m.TemperatureC, 0.05) ||
		!close(got.HumidityPct, m.HumidityPct, 0.05) ||
		!close(got.PressureHPa, m.PressureHPa, 0.05) ||
		!close(got.BatteryPct, m.BatteryPct, 0.05) {
		t.Fatalf("round trip: %+v vs %+v", got, m)
	}
}

func TestCodecProperty(t *testing.T) {
	f := func(co2, no2, temp uint16, batt uint8) bool {
		m := Measurement{
			CO2:          float64(co2 % 3000),
			NO2:          float64(no2%2000) / 10,
			TemperatureC: float64(int(temp%800))/10 - 40,
			BatteryPct:   float64(batt) / 2.55,
			PressureHPa:  1000,
		}
		got, err := DecodeMeasurement(EncodeMeasurement(m))
		if err != nil {
			return false
		}
		return math.Abs(got.CO2-m.CO2) <= 0.5 &&
			math.Abs(got.NO2-m.NO2) <= 0.05 &&
			math.Abs(got.TemperatureC-m.TemperatureC) <= 0.05 &&
			math.Abs(got.BatteryPct-m.BatteryPct) <= 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRejectsBadPayloads(t *testing.T) {
	if _, err := DecodeMeasurement([]byte{0x01, 0x02}); err != ErrShortPayload {
		t.Fatalf("short: %v", err)
	}
	if _, err := DecodeMeasurement([]byte{0xEE, 0x00, 0x01}); err == nil {
		t.Fatal("unknown channel should fail")
	}
}

func TestCodecClampsExtremes(t *testing.T) {
	m := Measurement{CO2: 1e9, NO2: -1e9, PressureHPa: 1000}
	got, err := DecodeMeasurement(EncodeMeasurement(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.CO2 != math.MaxInt16 {
		t.Fatalf("CO2 clamp: %v", got.CO2)
	}
	if got.NO2 != math.MinInt16/10.0 {
		t.Fatalf("NO2 clamp: %v", got.NO2)
	}
}

func TestBatteryChargesInSunDrainsAtNight(t *testing.T) {
	b := NewBattery()
	b.SetPercent(50)
	b.Advance(2*time.Hour, 600) // strong sun
	sunny := b.Percent()
	if sunny <= 50 {
		t.Fatalf("battery should charge in sun: %v", sunny)
	}
	b.Advance(10*time.Hour, 0) // night
	if b.Percent() >= sunny {
		t.Fatalf("battery should drain at night: %v vs %v", b.Percent(), sunny)
	}
}

func TestBatteryBounds(t *testing.T) {
	b := NewBattery()
	b.Advance(1000*time.Hour, 1000)
	if b.Percent() > 100 {
		t.Fatalf("overcharge: %v", b.Percent())
	}
	b.Advance(10000*time.Hour, 0)
	if b.Percent() < 0 {
		t.Fatalf("negative charge: %v", b.Percent())
	}
	if !b.Empty() {
		t.Fatal("fully drained battery should be empty")
	}
	if b.Transmit() {
		t.Fatal("empty battery cannot transmit")
	}
	b.SetPercent(50)
	if !b.Transmit() {
		t.Fatal("charged battery should transmit")
	}
}

func TestNodeStepProducesUplinkAtInterval(t *testing.T) {
	n := testNode(t, 1)
	start := at(time.June, 1, 12, 0)
	var txs int
	for i := 0; i < 12; i++ { // one hour at 5-min ticks
		if tx := n.Step(start.Add(time.Duration(i) * 5 * time.Minute)); tx != nil {
			txs++
		}
	}
	if txs != 12 {
		t.Fatalf("expected 12 uplinks in an hour, got %d", txs)
	}
}

func TestNodeUplinkDecodes(t *testing.T) {
	n := testNode(t, 2)
	tx := n.Step(at(time.June, 1, 12, 0))
	if tx == nil {
		t.Fatal("expected transmission")
	}
	up, err := lorawanDecode(tx.Frame)
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeMeasurement(up.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if m.CO2 < 350 || m.CO2 > 700 {
		t.Fatalf("CO2 %v outside plausible range", m.CO2)
	}
	if m.BatteryPct <= 0 || m.BatteryPct > 100 {
		t.Fatalf("battery %v out of range", m.BatteryPct)
	}
	if up.FCnt != 1 {
		t.Fatalf("first frame count = %d", up.FCnt)
	}
}

func TestNodeFrameCounterIncrements(t *testing.T) {
	n := testNode(t, 3)
	start := at(time.June, 1, 0, 0)
	for i := 0; i < 5; i++ {
		n.Step(start.Add(time.Duration(i) * 5 * time.Minute))
	}
	if n.FrameCount() != 5 {
		t.Fatalf("fcnt = %d, want 5", n.FrameCount())
	}
}

func TestNodeBatteryDiurnalPattern(t *testing.T) {
	// Over a midsummer day, the battery must gain during daylight and
	// lose over the whole night — the structure of Fig. 4.
	n := testNode(t, 4)
	n.Battery.SetPercent(40) // headroom so charging is visible
	start := at(time.June, 20, 0, 0)
	levels := map[int]float64{}
	for i := 0; i <= 24*12; i++ {
		ts := start.Add(time.Duration(i) * 5 * time.Minute)
		n.Step(ts)
		levels[i] = n.Battery.Percent()
	}
	// Morning sun (hours 03-07 at midsummer in Trondheim) should show
	// net charging before the pack saturates.
	if levels[7*12] <= levels[3*12] {
		t.Fatalf("battery should charge over the morning: %v -> %v", levels[3*12], levels[7*12])
	}
	// Deep night (00-02, sun below horizon even at midsummer in
	// Trondheim's latitude — barely) should show net drain.
	if levels[2*12] >= levels[0] {
		t.Fatalf("battery should drain overnight: %v -> %v", levels[0], levels[2*12])
	}
}

func TestNodeAdaptiveIntervalOnLowBattery(t *testing.T) {
	n := testNode(t, 5)
	n.Battery.SetPercent(10)              // below the 25% threshold
	start := at(time.December, 20, 18, 0) // dark: no recharge
	var txs int
	for i := 0; i < 12; i++ {
		if tx := n.Step(start.Add(time.Duration(i) * 5 * time.Minute)); tx != nil {
			txs++
		}
	}
	// Doubled interval: ~6 uplinks instead of 12.
	if txs > 7 {
		t.Fatalf("low-battery node sent %d uplinks in an hour; adaptive interval not applied", txs)
	}
}

func TestNodeDeadFault(t *testing.T) {
	n := testNode(t, 6)
	failAt := at(time.June, 1, 12, 0)
	n.InjectFault(Fault{Kind: FaultDead, Start: failAt})
	if tx := n.Step(failAt.Add(-time.Hour)); tx == nil {
		t.Fatal("node should transmit before the fault")
	}
	if tx := n.Step(failAt.Add(time.Hour)); tx != nil {
		t.Fatal("dead node must not transmit")
	}
}

func TestNodeDropoutFault(t *testing.T) {
	n := testNode(t, 7)
	n.InjectFault(Fault{
		Kind:            FaultDropout,
		Start:           at(time.June, 1, 0, 0),
		DropProbability: 0.5,
	})
	start := at(time.June, 1, 0, 0)
	var txs int
	const ticks = 24 * 12
	for i := 0; i < ticks; i++ {
		if tx := n.Step(start.Add(time.Duration(i) * 5 * time.Minute)); tx != nil {
			txs++
		}
	}
	if txs >= ticks || txs == 0 {
		t.Fatalf("dropout fault: %d/%d uplinks; expected partial loss", txs, ticks)
	}
}

func TestNodeStuckFault(t *testing.T) {
	n := testNode(t, 8)
	stuckAt := at(time.June, 1, 6, 0)
	n.InjectFault(Fault{Kind: FaultStuck, Start: stuckAt})
	m1 := n.Sample(stuckAt.Add(10 * time.Minute))
	m2 := n.Sample(stuckAt.Add(6 * time.Hour))
	if m1.CO2 != m2.CO2 || m1.NO2 != m2.NO2 {
		t.Fatalf("stuck fault should freeze values: %v vs %v", m1.CO2, m2.CO2)
	}
	// After the fault window ends, values move again.
	n2 := testNode(t, 9)
	n2.InjectFault(Fault{Kind: FaultStuck, Start: stuckAt, End: stuckAt.Add(time.Hour)})
	a := n2.Sample(stuckAt.Add(30 * time.Minute))
	b := n2.Sample(stuckAt.Add(4 * time.Hour))
	if a.CO2 == b.CO2 {
		t.Fatal("values should unfreeze after fault window")
	}
}

func TestNodeDriftFault(t *testing.T) {
	f, w := testEnv(t)
	mk := func() *Node {
		return NewNode(Config{ID: "d", DevAddr: 0x42, Pos: center, Seed: 11}, f, w)
	}
	clean := mk()
	faulty := mk()
	start := at(time.June, 1, 0, 0)
	faulty.InjectFault(Fault{Kind: FaultDrift, Start: start})
	// After 20 days the drifting node should read clearly higher.
	later := start.AddDate(0, 0, 20)
	var sumClean, sumFaulty float64
	for i := 0; i < 10; i++ {
		ts := later.Add(time.Duration(i) * time.Hour)
		sumClean += clean.Sample(ts).CO2
		sumFaulty += faulty.Sample(ts).CO2
	}
	if sumFaulty-sumClean < 100 { // 2 ppm/day × 20 days × 10 samples ≈ 400
		t.Fatalf("drift fault not visible: clean %v faulty %v", sumClean/10, sumFaulty/10)
	}
}

func TestNodeMiscalibrationVariesAcrossUnits(t *testing.T) {
	f, w := testEnv(t)
	gains := map[float64]bool{}
	for i := 0; i < 8; i++ {
		n := NewNode(Config{ID: "x", DevAddr: lorawanAddr(i), Pos: center, Seed: 100}, f, w)
		g, _ := n.TrueCalibration()
		gains[g] = true
	}
	if len(gains) < 6 {
		t.Fatalf("units share calibration: %d distinct gains of 8", len(gains))
	}
}

func TestNodeDeterministicPerSeed(t *testing.T) {
	a := testNode(t, 42)
	b := testNode(t, 42)
	ts := at(time.June, 1, 12, 0)
	if a.Sample(ts).CO2 != b.Sample(ts).CO2 {
		t.Fatal("same seed should reproduce samples")
	}
}

func TestLastMeasurement(t *testing.T) {
	n := testNode(t, 12)
	if _, ok := n.LastMeasurement(); ok {
		t.Fatal("no measurement before first step")
	}
	n.Step(at(time.June, 1, 12, 0))
	if _, ok := n.LastMeasurement(); !ok {
		t.Fatal("measurement should be recorded after step")
	}
}

func lorawanDecode(frame []byte) (*lorawan.Uplink, error) { return lorawan.Decode(frame) }

func lorawanAddr(i int) lorawan.DevAddr { return lorawan.DevAddr(0x26010000 + i) }

func TestDownlinkCommandCodec(t *testing.T) {
	if _, err := EncodeSetInterval(0); err == nil {
		t.Fatal("interval 0 should be rejected")
	}
	if _, err := EncodeSetInterval(121); err == nil {
		t.Fatal("interval 121 should be rejected")
	}
	if _, err := EncodeSetLowBattery(95); err == nil {
		t.Fatal("threshold 95 should be rejected")
	}
	p, err := EncodeSetInterval(15)
	if err != nil || p[0] != CmdSetIntervalMin || p[1] != 15 {
		t.Fatalf("encode: %v %v", p, err)
	}
}

func TestHandleDownlinkSetsInterval(t *testing.T) {
	n := testNode(t, 20)
	p, _ := EncodeSetInterval(15)
	if err := n.HandleDownlink(p); err != nil {
		t.Fatal(err)
	}
	if n.Config.Interval != 15*time.Minute {
		t.Fatalf("interval = %v", n.Config.Interval)
	}
	// The new interval takes effect: only ~4 uplinks per hour.
	start := at(time.June, 1, 12, 0)
	var txs int
	for i := 0; i < 12; i++ {
		if tx := n.Step(start.Add(time.Duration(i) * 5 * time.Minute)); tx != nil {
			txs++
		}
	}
	if txs > 4 {
		t.Fatalf("15-min interval should cap uplinks at 4/h, got %d", txs)
	}
}

func TestHandleDownlinkMultipleCommands(t *testing.T) {
	n := testNode(t, 21)
	p1, _ := EncodeSetInterval(10)
	p2, _ := EncodeSetLowBattery(40)
	if err := n.HandleDownlink(append(p1, p2...)); err != nil {
		t.Fatal(err)
	}
	if n.Config.Interval != 10*time.Minute || n.Config.LowBatteryPct != 40 {
		t.Fatalf("config: %v %v", n.Config.Interval, n.Config.LowBatteryPct)
	}
}

func TestHandleDownlinkErrors(t *testing.T) {
	n := testNode(t, 22)
	if err := n.HandleDownlink(nil); err != ErrBadCommand {
		t.Fatalf("empty: %v", err)
	}
	if err := n.HandleDownlink([]byte{0x01}); err != ErrBadCommand {
		t.Fatalf("odd length: %v", err)
	}
	if err := n.HandleDownlink([]byte{0xEE, 0x01}); err == nil {
		t.Fatal("unknown command should error")
	}
	if err := n.HandleDownlink([]byte{CmdSetIntervalMin, 0}); err == nil {
		t.Fatal("zero interval should error")
	}
}
