package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Trondheim and Vejle — the paper's two pilot cities.
var (
	trondheim = LatLon{Lat: 63.4305, Lon: 10.3951}
	vejle     = LatLon{Lat: 55.7113, Lon: 9.5363}
)

func TestDistanceKnownPairs(t *testing.T) {
	tests := []struct {
		name string
		p, q LatLon
		want float64 // meters
		tol  float64 // relative tolerance
	}{
		{"same point", trondheim, trondheim, 0, 0},
		{"trondheim-vejle", trondheim, vejle, 861000, 0.01},
		{"equator degree", LatLon{0, 0}, LatLon{0, 1}, 111195, 0.005},
		{"meridian degree", LatLon{0, 0}, LatLon{1, 0}, 111195, 0.005},
		{"antipodal-ish", LatLon{0, 0}, LatLon{0, 180}, math.Pi * EarthRadius, 0.001},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Distance(tc.p, tc.q)
			if tc.want == 0 {
				if got != 0 {
					t.Fatalf("Distance = %v, want 0", got)
				}
				return
			}
			if rel := math.Abs(got-tc.want) / tc.want; rel > tc.tol {
				t.Fatalf("Distance = %v, want %v (rel err %v)", got, tc.want, rel)
			}
		})
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		p := LatLon{clampLat(lat1), clampLon(lon1)}
		q := LatLon{clampLat(lat2), clampLon(lon2)}
		d1, d2 := Distance(p, q), Distance(q, p)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		a := randomPoint(rng)
		b := randomPoint(rng)
		c := randomPoint(rng)
		// Great-circle distance satisfies the triangle inequality.
		if Distance(a, c) > Distance(a, b)+Distance(b, c)+1e-6 {
			t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
		}
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		p := LatLon{Lat: rng.Float64()*120 - 60, Lon: rng.Float64()*360 - 180}
		brg := rng.Float64() * 360
		dist := rng.Float64() * 20000 // city scale
		q := Destination(p, brg, dist)
		if got := Distance(p, q); math.Abs(got-dist) > 1 {
			t.Fatalf("Destination distance: got %v want %v", got, dist)
		}
	}
}

func TestBearingCardinal(t *testing.T) {
	p := LatLon{Lat: 60, Lon: 10}
	if b := Bearing(p, LatLon{Lat: 61, Lon: 10}); math.Abs(b-0) > 0.01 {
		t.Errorf("north bearing = %v", b)
	}
	if b := Bearing(p, LatLon{Lat: 59, Lon: 10}); math.Abs(b-180) > 0.01 {
		t.Errorf("south bearing = %v", b)
	}
	if b := Bearing(p, LatLon{Lat: 60, Lon: 11}); b < 80 || b > 100 {
		t.Errorf("east bearing = %v", b)
	}
	if b := Bearing(p, LatLon{Lat: 60, Lon: 9}); b < 260 || b > 280 {
		t.Errorf("west bearing = %v", b)
	}
}

func TestMidpoint(t *testing.T) {
	m := Midpoint(trondheim, vejle)
	d1, d2 := Distance(trondheim, m), Distance(vejle, m)
	if math.Abs(d1-d2) > 1 {
		t.Fatalf("midpoint not equidistant: %v vs %v", d1, d2)
	}
}

func TestBBox(t *testing.T) {
	b := NewBBox(trondheim, vejle)
	if !b.Contains(trondheim) || !b.Contains(vejle) {
		t.Fatal("bbox must contain its defining points")
	}
	if !b.Contains(b.Center()) {
		t.Fatal("bbox must contain its center")
	}
	if b.Contains(LatLon{Lat: 0, Lon: 0}) {
		t.Fatal("bbox must not contain far-away point")
	}
	if NewBBox().Empty() != true {
		t.Fatal("bbox of no points must be empty")
	}
	padded := b.Pad(1000)
	if !padded.Contains(Destination(trondheim, 0, 900)) {
		t.Fatal("padded box should contain point 900m north of corner")
	}
}

func TestENURoundTrip(t *testing.T) {
	e := NewENU(trondheim)
	f := func(dx, dy float64) bool {
		// Limit to city scale.
		dx = math.Mod(dx, 20000)
		dy = math.Mod(dy, 20000)
		p := e.Inverse(dx, dy)
		x, y := e.Forward(p)
		return math.Abs(x-dx) < 0.01 && math.Abs(y-dy) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestENUDistanceAgreement(t *testing.T) {
	// ENU planar distance should agree with haversine within 0.1% at
	// city scale.
	e := NewENU(trondheim)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		p := Destination(trondheim, rng.Float64()*360, rng.Float64()*5000)
		x, y := e.Forward(p)
		planar := math.Hypot(x, y)
		sphere := Distance(trondheim, p)
		if sphere > 1 && math.Abs(planar-sphere)/sphere > 0.001 {
			t.Fatalf("planar %v vs sphere %v", planar, sphere)
		}
	}
}

func TestGridWithin(t *testing.T) {
	g := NewGrid(trondheim, 200)
	rng := rand.New(rand.NewSource(4))
	type pt struct {
		id string
		p  LatLon
		d  float64
	}
	var pts []pt
	for i := 0; i < 500; i++ {
		d := rng.Float64() * 5000
		p := Destination(trondheim, rng.Float64()*360, d)
		id := string(rune('a'+i%26)) + string(rune('0'+i%10))
		g.Insert(id, p)
		pts = append(pts, pt{id, p, d})
	}
	got := g.Within(trondheim, 1000)
	want := 0
	for _, p := range pts {
		if p.d <= 1000 {
			want++
		}
	}
	// ENU projection vs great-circle can differ sub-meter at this scale;
	// allow exact count since distances are far from the boundary in
	// expectation — but be tolerant of boundary cases.
	if math.Abs(float64(len(got)-want)) > 2 {
		t.Fatalf("Within returned %d, want ~%d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Distance < got[i-1].Distance {
			t.Fatal("Within results not sorted by distance")
		}
	}
}

func TestGridNearest(t *testing.T) {
	g := NewGrid(trondheim, 300)
	rng := rand.New(rand.NewSource(5))
	ids := map[string]LatLon{}
	for i := 0; i < 200; i++ {
		p := Destination(trondheim, rng.Float64()*360, rng.Float64()*8000)
		id := "s" + string(rune('A'+i%26)) + string(rune('a'+(i/26)%26))
		g.Insert(id, p)
		ids[id] = p
	}
	got := g.Nearest(trondheim, 5)
	if len(got) != 5 {
		t.Fatalf("Nearest returned %d results", len(got))
	}
	// Verify against brute force.
	var best float64 = math.MaxFloat64
	for _, p := range ids {
		if d := Distance(trondheim, p); d < best {
			best = d
		}
	}
	if math.Abs(got[0].Distance-best) > 1 {
		t.Fatalf("nearest distance %v, brute force %v", got[0].Distance, best)
	}
}

func TestGridNearestMoreThanAvailable(t *testing.T) {
	g := NewGrid(trondheim, 300)
	g.Insert("only", trondheim)
	got := g.Nearest(vejle, 10)
	if len(got) != 1 || got[0].ID != "only" {
		t.Fatalf("got %v", got)
	}
	if g.Nearest(trondheim, 0) != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestGridRemove(t *testing.T) {
	g := NewGrid(trondheim, 300)
	g.Insert("a", trondheim)
	g.Insert("a", Destination(trondheim, 90, 100))
	g.Insert("b", Destination(trondheim, 0, 100))
	if n := g.Remove("a"); n != 2 {
		t.Fatalf("Remove = %d, want 2", n)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	if got := g.Nearest(trondheim, 3); len(got) != 1 || got[0].ID != "b" {
		t.Fatalf("got %v", got)
	}
}

func TestLatLonValid(t *testing.T) {
	if !trondheim.Valid() {
		t.Fatal("trondheim should be valid")
	}
	bad := []LatLon{{91, 0}, {-91, 0}, {0, 181}, {0, -181}, {math.NaN(), 0}}
	for _, p := range bad {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}

func clampLat(v float64) float64 { return math.Mod(math.Abs(v), 90) }
func clampLon(v float64) float64 { return math.Mod(v, 180) }

func randomPoint(rng *rand.Rand) LatLon {
	return LatLon{Lat: rng.Float64()*160 - 80, Lon: rng.Float64()*360 - 180}
}
