package geo

import (
	"math"
	"sort"
)

// Grid is a uniform spatial hash index over geographic points. It backs
// nearest-sensor lookups for dashboards, gateway coverage queries, and
// building lookups in the city model. Cell size is chosen at
// construction; queries degrade gracefully when points are clustered.
type Grid struct {
	enu      *ENU
	cellSize float64
	cells    map[cellKey][]gridEntry
	n        int
	// Bounding box of occupied cells, used to bound ring expansion in
	// Nearest when the query point is far outside the indexed area.
	minC, maxC cellKey
}

type cellKey struct{ cx, cy int }

type gridEntry struct {
	id   string
	pos  LatLon
	x, y float64
}

// NewGrid creates a grid index anchored at origin with the given cell
// size in meters. Cell sizes in the 100–1000 m range suit city extents.
func NewGrid(origin LatLon, cellSizeMeters float64) *Grid {
	if cellSizeMeters <= 0 {
		cellSizeMeters = 500
	}
	return &Grid{
		enu:      NewENU(origin),
		cellSize: cellSizeMeters,
		cells:    make(map[cellKey][]gridEntry),
	}
}

func (g *Grid) key(x, y float64) cellKey {
	return cellKey{int(math.Floor(x / g.cellSize)), int(math.Floor(y / g.cellSize))}
}

// Insert adds a point with an identifier. Duplicate identifiers are
// allowed; Remove deletes all entries with the identifier.
func (g *Grid) Insert(id string, p LatLon) {
	x, y := g.enu.Forward(p)
	k := g.key(x, y)
	g.cells[k] = append(g.cells[k], gridEntry{id: id, pos: p, x: x, y: y})
	if g.n == 0 {
		g.minC, g.maxC = k, k
	} else {
		if k.cx < g.minC.cx {
			g.minC.cx = k.cx
		}
		if k.cy < g.minC.cy {
			g.minC.cy = k.cy
		}
		if k.cx > g.maxC.cx {
			g.maxC.cx = k.cx
		}
		if k.cy > g.maxC.cy {
			g.maxC.cy = k.cy
		}
	}
	g.n++
}

// Remove deletes every entry with the given identifier. It reports how
// many entries were removed.
func (g *Grid) Remove(id string) int {
	removed := 0
	for k, entries := range g.cells {
		kept := entries[:0]
		for _, e := range entries {
			if e.id == id {
				removed++
				continue
			}
			kept = append(kept, e)
		}
		if len(kept) == 0 {
			delete(g.cells, k)
		} else {
			g.cells[k] = kept
		}
	}
	g.n -= removed
	return removed
}

// Len returns the number of indexed entries.
func (g *Grid) Len() int { return g.n }

// Neighbor is a query result: an indexed point and its distance from
// the query location in meters.
type Neighbor struct {
	ID       string
	Pos      LatLon
	Distance float64
}

// Within returns all entries within radius meters of p, sorted by
// ascending distance.
func (g *Grid) Within(p LatLon, radius float64) []Neighbor {
	x, y := g.enu.Forward(p)
	r := int(math.Ceil(radius/g.cellSize)) + 1
	ck := g.key(x, y)
	var out []Neighbor
	for cx := ck.cx - r; cx <= ck.cx+r; cx++ {
		for cy := ck.cy - r; cy <= ck.cy+r; cy++ {
			for _, e := range g.cells[cellKey{cx, cy}] {
				d := math.Hypot(e.x-x, e.y-y)
				if d <= radius {
					out = append(out, Neighbor{ID: e.id, Pos: e.pos, Distance: d})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Distance < out[j].Distance })
	return out
}

// Nearest returns up to k nearest entries to p, sorted by ascending
// distance. It expands the search ring until enough candidates are
// found or the whole index has been scanned.
func (g *Grid) Nearest(p LatLon, k int) []Neighbor {
	if k <= 0 || g.n == 0 {
		return nil
	}
	x, y := g.enu.Forward(p)
	ck := g.key(x, y)
	// The farthest ring that can contain any occupied cell: the Chebyshev
	// distance from the query cell to the occupied-cell bounding box.
	maxRing := 0
	for _, d := range []int{g.minC.cx - ck.cx, ck.cx - g.maxC.cx, g.minC.cy - ck.cy, ck.cy - g.maxC.cy} {
		if d > maxRing {
			maxRing = d
		}
	}
	maxRing += (g.maxC.cx - g.minC.cx) + (g.maxC.cy - g.minC.cy) + 1
	var out []Neighbor
	for ring := 0; ring <= maxRing; ring++ {
		// Scan only the cells at exactly this ring (Chebyshev) distance,
		// clipped to the occupied-cell bounding box.
		for cx := maxInt(ck.cx-ring, g.minC.cx); cx <= minInt(ck.cx+ring, g.maxC.cx); cx++ {
			for cy := maxInt(ck.cy-ring, g.minC.cy); cy <= minInt(ck.cy+ring, g.maxC.cy); cy++ {
				onEdge := cx == ck.cx-ring || cx == ck.cx+ring || cy == ck.cy-ring || cy == ck.cy+ring
				if !onEdge {
					continue
				}
				for _, e := range g.cells[cellKey{cx, cy}] {
					out = append(out, Neighbor{ID: e.id, Pos: e.pos, Distance: math.Hypot(e.x-x, e.y-y)})
				}
			}
		}
		// Stop when we have k candidates whose distances cannot be beaten
		// by entries in farther rings, or we have scanned everything.
		if len(out) >= k {
			sort.Slice(out, func(i, j int) bool { return out[i].Distance < out[j].Distance })
			// Entries in ring R are at least (R-1)*cellSize away; once the
			// k-th candidate is closer than that bound we can stop.
			if out[k-1].Distance <= float64(ring)*g.cellSize || len(out) == g.n {
				return out[:k]
			}
		}
		if len(out) == g.n {
			break
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Distance < out[j].Distance })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
