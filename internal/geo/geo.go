// Package geo provides geographic primitives used throughout the CTT
// system: coordinates, great-circle geometry, bounding boxes, a local
// east-north-up (ENU) projection for city-scale work, and a spatial grid
// index for nearest-neighbour queries over sensors and buildings.
//
// All distances are in meters, all angles in degrees unless stated
// otherwise. The Earth is modeled as a sphere of radius EarthRadius,
// which is accurate to ~0.5% — far below the positioning error of the
// deployments the paper describes.
package geo

import (
	"fmt"
	"math"
)

// EarthRadius is the mean Earth radius in meters (IUGG).
const EarthRadius = 6371008.8

// LatLon is a WGS84 geographic coordinate in decimal degrees.
type LatLon struct {
	Lat float64 // latitude, positive north, [-90, 90]
	Lon float64 // longitude, positive east, [-180, 180]
}

// String renders the coordinate as "lat,lon" with 6 decimals (~0.1 m).
func (p LatLon) String() string {
	return fmt.Sprintf("%.6f,%.6f", p.Lat, p.Lon)
}

// Valid reports whether the coordinate lies within WGS84 bounds.
func (p LatLon) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// Radians returns the coordinate in radians.
func (p LatLon) Radians() (lat, lon float64) {
	return p.Lat * math.Pi / 180, p.Lon * math.Pi / 180
}

// Distance returns the great-circle distance in meters between p and q
// using the haversine formula, which is numerically stable for the
// city-scale distances this system works with.
func Distance(p, q LatLon) float64 {
	lat1, lon1 := p.Radians()
	lat2, lon2 := q.Radians()
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadius * math.Asin(math.Min(1, math.Sqrt(a)))
}

// Bearing returns the initial great-circle bearing from p to q in
// degrees clockwise from north, in [0, 360).
func Bearing(p, q LatLon) float64 {
	lat1, lon1 := p.Radians()
	lat2, lon2 := q.Radians()
	dLon := lon2 - lon1
	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	deg := math.Atan2(y, x) * 180 / math.Pi
	return math.Mod(deg+360, 360)
}

// Destination returns the point reached by traveling dist meters from p
// along the given initial bearing (degrees clockwise from north).
func Destination(p LatLon, bearingDeg, dist float64) LatLon {
	lat1, lon1 := p.Radians()
	brg := bearingDeg * math.Pi / 180
	ad := dist / EarthRadius
	lat2 := math.Asin(math.Sin(lat1)*math.Cos(ad) + math.Cos(lat1)*math.Sin(ad)*math.Cos(brg))
	lon2 := lon1 + math.Atan2(math.Sin(brg)*math.Sin(ad)*math.Cos(lat1),
		math.Cos(ad)-math.Sin(lat1)*math.Sin(lat2))
	return LatLon{
		Lat: lat2 * 180 / math.Pi,
		Lon: math.Mod(lon2*180/math.Pi+540, 360) - 180,
	}
}

// Midpoint returns the great-circle midpoint of p and q.
func Midpoint(p, q LatLon) LatLon {
	return Destination(p, Bearing(p, q), Distance(p, q)/2)
}

// BBox is an axis-aligned geographic bounding box.
type BBox struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// NewBBox returns the smallest bounding box containing all points.
// The zero BBox of no points is empty (Min > Max).
func NewBBox(points ...LatLon) BBox {
	b := BBox{MinLat: 91, MinLon: 181, MaxLat: -91, MaxLon: -181}
	for _, p := range points {
		b = b.Extend(p)
	}
	return b
}

// Extend returns the box grown to include p.
func (b BBox) Extend(p LatLon) BBox {
	if p.Lat < b.MinLat {
		b.MinLat = p.Lat
	}
	if p.Lat > b.MaxLat {
		b.MaxLat = p.Lat
	}
	if p.Lon < b.MinLon {
		b.MinLon = p.Lon
	}
	if p.Lon > b.MaxLon {
		b.MaxLon = p.Lon
	}
	return b
}

// Contains reports whether p lies within the box (inclusive).
func (b BBox) Contains(p LatLon) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Center returns the box center.
func (b BBox) Center() LatLon {
	return LatLon{Lat: (b.MinLat + b.MaxLat) / 2, Lon: (b.MinLon + b.MaxLon) / 2}
}

// Pad returns the box expanded by meters on every side.
func (b BBox) Pad(meters float64) BBox {
	dLat := meters / EarthRadius * 180 / math.Pi
	// Longitude degrees shrink with latitude; pad using the widest latitude.
	lat := math.Max(math.Abs(b.MinLat), math.Abs(b.MaxLat)) * math.Pi / 180
	dLon := dLat / math.Max(0.01, math.Cos(lat))
	return BBox{b.MinLat - dLat, b.MinLon - dLon, b.MaxLat + dLat, b.MaxLon + dLon}
}

// Empty reports whether the box contains no area.
func (b BBox) Empty() bool { return b.MinLat > b.MaxLat || b.MinLon > b.MaxLon }

// ENU is a local tangent-plane projection anchored at an origin. For
// city-scale extents (<~50 km) the flat-earth approximation is within
// centimeters, which lets downstream geometry (dispersion, city models,
// SVG maps) work in plain meters.
type ENU struct {
	Origin LatLon
	cosLat float64
}

// NewENU creates a local projection anchored at origin.
func NewENU(origin LatLon) *ENU {
	lat := origin.Lat * math.Pi / 180
	return &ENU{Origin: origin, cosLat: math.Cos(lat)}
}

// Forward projects a geographic coordinate to local (east, north) meters.
func (e *ENU) Forward(p LatLon) (x, y float64) {
	x = (p.Lon - e.Origin.Lon) * math.Pi / 180 * EarthRadius * e.cosLat
	y = (p.Lat - e.Origin.Lat) * math.Pi / 180 * EarthRadius
	return x, y
}

// Inverse converts local (east, north) meters back to geographic.
func (e *ENU) Inverse(x, y float64) LatLon {
	return LatLon{
		Lat: e.Origin.Lat + y/EarthRadius*180/math.Pi,
		Lon: e.Origin.Lon + x/(EarthRadius*e.cosLat)*180/math.Pi,
	}
}
