// Package dashboard is the visualization platform of the paper's
// Fig. 6 and Fig. 8 (implemented there on Apache Zeppelin + OpenTSDB):
// an HTTP server whose panels are declaratively bound to time-series
// queries, serving rendered SVG charts, a live network map, JSON query
// and alarm APIs, and a combined "wall display" view. Attendees of the
// demo "can vary system and analysis properties, and observe the
// reflection on the dashboard" — panels re-query the database on every
// render, so data arriving through the pipeline shows up immediately.
package dashboard

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dataport"
	"repro/internal/sensors"
	"repro/internal/tsdb"
	"repro/internal/viz"
)

// Panel binds a chart to a TSDB query over a trailing window.
type Panel struct {
	Name   string // URL-safe identifier
	Title  string
	Metric string
	Tags   map[string]string
	Agg    tsdb.Aggregator
	// Downsample interval for rendering (0 = raw).
	Downsample time.Duration
	// Window is the trailing time range shown.
	Window time.Duration
	// YLabel annotates the chart.
	YLabel string
	// TopK, when >0, renders only the K series ranking highest by
	// mean value — keeps a group-by panel over hundreds of sensors
	// readable (and cheap: only K series are ever materialized).
	TopK int
}

// Server is the dashboard HTTP server.
type Server struct {
	db *tsdb.DB
	dp *dataport.Dataport // optional: enables /network.svg and alarms

	mu     sync.Mutex
	panels []Panel
	now    func() time.Time

	// selfPrefix is the metric namespace the /ops page charts — the
	// self-scrape loop's -self-prefix. Empty selects "ctt.self".
	selfPrefix string

	// SendCommand, when set, enables the C&C endpoint
	// POST /api/command — the dashboard becomes the command-and-
	// control surface the paper's pipeline feeds ("up to C&C
	// centers", §2.1). It receives a device ID and a downlink payload.
	SendCommand func(devID string, payload []byte) error

	srv *http.Server
	ln  net.Listener
}

// New creates a dashboard over a database. dp may be nil.
func New(db *tsdb.DB, dp *dataport.Dataport) *Server {
	return &Server{db: db, dp: dp, now: time.Now}
}

// SetNow injects the simulation clock so trailing windows work on
// simulated time.
func (s *Server) SetNow(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// SetSelfPrefix points the /ops page at the metric namespace the
// self-scrape loop writes under.
func (s *Server) SetSelfPrefix(prefix string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.selfPrefix = prefix
}

// AddPanel registers a panel. Panels render in registration order.
func (s *Server) AddPanel(p Panel) error {
	if p.Name == "" || strings.ContainsAny(p.Name, "/ ") {
		return fmt.Errorf("dashboard: bad panel name %q", p.Name)
	}
	if !p.Agg.Valid() {
		return fmt.Errorf("dashboard: bad aggregator %q", p.Agg)
	}
	if p.Window <= 0 {
		p.Window = 24 * time.Hour
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, existing := range s.panels {
		if existing.Name == p.Name {
			return fmt.Errorf("dashboard: duplicate panel %q", p.Name)
		}
	}
	s.panels = append(s.panels, p)
	return nil
}

// Panels returns the registered panels.
func (s *Server) Panels() []Panel {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Panel(nil), s.panels...)
}

// Handler returns the HTTP handler (usable without a listener).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/panel/", s.handlePanelSVG)
	mux.HandleFunc("/network.svg", s.handleNetworkSVG)
	mux.HandleFunc("/wall", s.handleWall)
	mux.HandleFunc("/live", s.handleLive)
	mux.HandleFunc("/ops", s.handleOps)
	mux.HandleFunc("/api/query", s.handleQuery)
	mux.HandleFunc("/api/panels", s.handlePanels)
	mux.HandleFunc("/api/alarms", s.handleAlarms)
	mux.HandleFunc("/api/metrics", s.handleMetrics)
	mux.HandleFunc("/api/command", s.handleCommand)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	return mux
}

// Start serves on addr until Close.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dashboard: %w", err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln)
	return ln.Addr(), nil
}

// Close stops the server.
func (s *Server) Close() error {
	if s.srv != nil {
		return s.srv.Close()
	}
	return nil
}

func (s *Server) clock() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now()
}

// panelSeries runs a panel's query and converts it to viz series.
func (s *Server) panelSeries(p Panel) ([]viz.Series, error) {
	now := s.clock()
	res, err := s.db.Execute(tsdb.Query{
		Metric:      p.Metric,
		Tags:        p.Tags,
		Start:       now.Add(-p.Window).UnixMilli(),
		End:         now.UnixMilli(),
		Aggregator:  p.Agg,
		Downsample:  p.Downsample,
		SeriesLimit: p.TopK,
	})
	if err != nil {
		return nil, err
	}
	var out []viz.Series
	for _, rs := range res {
		name := rs.Metric
		if len(rs.Tags) > 0 {
			keys := make([]string, 0, len(rs.Tags))
			for k := range rs.Tags {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var parts []string
			for _, k := range keys {
				parts = append(parts, k+"="+rs.Tags[k])
			}
			name += "{" + strings.Join(parts, ",") + "}"
		}
		vs := viz.Series{Name: name}
		for _, pt := range rs.Points {
			vs.Times = append(vs.Times, pt.Time())
			vs.Values = append(vs.Values, pt.Value)
		}
		out = append(out, vs)
	}
	return out, nil
}

// --- handlers ----------------------------------------------------------

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>CTT dashboards</title>
<style>body{font-family:sans-serif;margin:20px}.panel{margin-bottom:24px}</style>
</head><body>
<h1>CTT — air quality &amp; traffic dashboards</h1>
<p><a href="/wall">wall display</a> · <a href="/live">live feed</a> · <a href="/ops">ops</a> · <a href="/network.svg">network map</a> · <a href="/api/alarms">alarms</a></p>
{{range .}}<div class="panel"><h2>{{.Title}}</h2><img src="/panel/{{.Name}}.svg" alt="{{.Title}}"/></div>
{{end}}</body></html>`))

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	indexTmpl.Execute(w, s.Panels())
}

func (s *Server) handlePanelSVG(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/panel/"), ".svg")
	var panel *Panel
	for _, p := range s.Panels() {
		if p.Name == name {
			pp := p
			panel = &pp
			break
		}
	}
	if panel == nil {
		http.Error(w, "unknown panel", http.StatusNotFound)
		return
	}
	series, err := s.panelSeries(*panel)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	svg := viz.LineChartSVG(series, viz.ChartOptions{
		Title: panel.Title, YLabel: panel.YLabel, Width: 800, Height: 300,
	})
	w.Header().Set("Content-Type", "image/svg+xml")
	w.Write(svg)
}

func (s *Server) handleNetworkSVG(w http.ResponseWriter, r *http.Request) {
	if s.dp == nil {
		http.Error(w, "no dataport attached", http.StatusNotFound)
		return
	}
	snap, err := s.dp.Snapshot(s.clock())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	w.Write(viz.NetworkMapSVG(snap, 800, 600))
}

var wallTmpl = template.Must(template.New("wall").Parse(`<!DOCTYPE html>
<html><head><title>CTT wall display</title>
<style>body{background:#111;color:#eee;font-family:sans-serif;margin:0;padding:12px}
.grid{display:flex;flex-wrap:wrap;gap:12px}.cell{background:#fff;border-radius:4px;padding:4px}</style>
</head><body><h1>CTT network monitoring &amp; data</h1><div class="grid">
<div class="cell"><img src="/network.svg" width="780"/></div>
{{range .}}<div class="cell"><img src="/panel/{{.Name}}.svg"/></div>
{{end}}</div></body></html>`))

func (s *Server) handleWall(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	wallTmpl.Execute(w, s.Panels())
}

// queryResponse is the JSON shape of /api/query results.
type queryResponse struct {
	Metric string            `json:"metric"`
	Tags   map[string]string `json:"tags"`
	Points [][2]float64      `json:"points"` // [unix_ms, value]
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		http.Error(w, "metric required", http.StatusBadRequest)
		return
	}
	agg := tsdb.Aggregator(q.Get("agg"))
	if agg == "" {
		agg = tsdb.AggAvg
	}
	now := s.clock()
	start := now.Add(-24 * time.Hour)
	end := now
	if v := q.Get("from"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			http.Error(w, "bad from", http.StatusBadRequest)
			return
		}
		start = t
	}
	if v := q.Get("to"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			http.Error(w, "bad to", http.StatusBadRequest)
			return
		}
		end = t
	}
	tags := map[string]string{}
	for key, vals := range q {
		if strings.HasPrefix(key, "tag.") && len(vals) > 0 {
			tags[strings.TrimPrefix(key, "tag.")] = vals[0]
		}
	}
	var downsample time.Duration
	if v := q.Get("downsample"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			http.Error(w, "bad downsample", http.StatusBadRequest)
			return
		}
		downsample = d
	}
	res, err := s.db.Execute(tsdb.Query{
		Metric: metric, Tags: tags,
		Start: start.UnixMilli(), End: end.UnixMilli(),
		Aggregator: agg, Downsample: downsample,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	out := make([]queryResponse, 0, len(res))
	for _, rs := range res {
		qr := queryResponse{Metric: rs.Metric, Tags: rs.Tags}
		for _, p := range rs.Points {
			qr.Points = append(qr.Points, [2]float64{float64(p.Timestamp), p.Value})
		}
		out = append(out, qr)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handlePanels(w http.ResponseWriter, r *http.Request) {
	type panelJSON struct {
		Name, Title, Metric string
		Agg                 string
		WindowSeconds       float64
	}
	var out []panelJSON
	for _, p := range s.Panels() {
		out = append(out, panelJSON{
			Name: p.Name, Title: p.Title, Metric: p.Metric,
			Agg: string(p.Agg), WindowSeconds: p.Window.Seconds(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleAlarms(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.dp == nil {
		w.Write([]byte("[]"))
		return
	}
	log := s.dp.AlarmLog()
	if log == nil {
		log = []dataport.Alarm{}
	}
	json.NewEncoder(w).Encode(log)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.db.Metrics())
}

// handleCommand serves POST /api/command?device=ID with one of:
//
//	interval=<minutes>   — change the node's reporting interval
//	lowbattery=<pct>     — change the adaptive-interval threshold
//
// The command travels the downlink path (TTN queue → class-A window)
// via the injected SendCommand func.
func (s *Server) handleCommand(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if s.SendCommand == nil {
		http.Error(w, "command channel not configured", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	dev := q.Get("device")
	if dev == "" {
		http.Error(w, "device required", http.StatusBadRequest)
		return
	}
	var payload []byte
	if v := q.Get("interval"); v != "" {
		minutes, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, "bad interval", http.StatusBadRequest)
			return
		}
		p, err := sensors.EncodeSetInterval(minutes)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		payload = append(payload, p...)
	}
	if v := q.Get("lowbattery"); v != "" {
		pct, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, "bad lowbattery", http.StatusBadRequest)
			return
		}
		p, err := sensors.EncodeSetLowBattery(pct)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		payload = append(payload, p...)
	}
	if len(payload) == 0 {
		http.Error(w, "no command given (interval= or lowbattery=)", http.StatusBadRequest)
		return
	}
	if err := s.SendCommand(dev, payload); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"queued":true,"device":%q,"bytes":%d}`, dev, len(payload))
}
