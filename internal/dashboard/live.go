package dashboard

// Live view: a page that subscribes to the API gateway's /api/stream
// server-sent events and renders arriving data points as they land —
// the push-based counterpart of the re-query-on-render SVG panels.
// It expects the gateway to be mounted on the same origin (as
// cmd/ctt-server does); standalone dashboards without a gateway show
// a "disconnected" state.

import "net/http"

const livePage = `<!DOCTYPE html>
<html><head><title>CTT live feed</title>
<style>
body{font-family:sans-serif;margin:20px;background:#111;color:#eee}
#status{padding:4px 8px;border-radius:4px;background:#633}
#status.ok{background:#363}
table{border-collapse:collapse;margin-top:12px;width:100%}
td,th{border-bottom:1px solid #333;padding:4px 8px;text-align:left;font-size:14px}
</style></head><body>
<h1>CTT — live measurement feed</h1>
<p><span id="status">disconnected</span>
· filter: <input id="metric" placeholder="metric prefix, e.g. air."/>
<button onclick="connect()">apply</button> · <a href="/" style="color:#9cf">dashboards</a></p>
<table><thead><tr><th>time</th><th>metric</th><th>tags</th><th>value</th></tr></thead>
<tbody id="rows"></tbody></table>
<script>
let es = null;
function connect() {
  if (es) es.close();
  const prefix = document.getElementById('metric').value;
  es = new EventSource('/api/stream' + (prefix ? '?metric=' + encodeURIComponent(prefix) : ''));
  const status = document.getElementById('status');
  es.onopen = () => { status.textContent = 'connected'; status.className = 'ok'; };
  es.onerror = () => { status.textContent = 'disconnected'; status.className = ''; };
  es.addEventListener('point', (e) => {
    const p = JSON.parse(e.data);
    const row = document.createElement('tr');
    const tags = Object.entries(p.tags || {}).map(([k, v]) => k + '=' + v).join(', ');
    // textContent, not innerHTML: stored names are charset-restricted
    // today, but the page shouldn't rely on a distant validator.
    for (const text of [new Date(p.timestamp).toISOString(), p.metric, tags, p.value.toFixed(2)]) {
      const cell = document.createElement('td');
      cell.textContent = text;
      row.appendChild(cell);
    }
    const rows = document.getElementById('rows');
    rows.insertBefore(row, rows.firstChild);
    while (rows.children.length > 200) rows.removeChild(rows.lastChild);
  });
}
connect();
</script></body></html>`

func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(livePage))
}
