package dashboard

// Ops view: charts the server's own health series — the points the
// self-scrape loop writes under its metric prefix (goroutines, heap,
// GC, ingest queue depth, WAL bytes, cache hit ratio, request latency
// counts). Like /live it rides the gateway's /api/stream SSE endpoint,
// so it needs no new API surface: each self-scrape batch fans out to
// stream subscribers the moment AppendRefs stores it, and the page
// keeps a rolling sparkline per series.

import (
	"net/http"
	"strings"
)

const opsPage = `<!DOCTYPE html>
<html><head><title>CTT ops</title>
<style>
body{font-family:sans-serif;margin:20px;background:#111;color:#eee}
#status{padding:4px 8px;border-radius:4px;background:#633}
#status.ok{background:#363}
#charts{display:grid;grid-template-columns:repeat(auto-fill,minmax(320px,1fr));gap:12px;margin-top:16px}
.chart{background:#1a1a1a;border:1px solid #333;border-radius:6px;padding:8px 10px}
.chart h3{margin:0 0 2px;font-size:13px;font-weight:normal;color:#9cf;word-break:break-all}
.chart .val{font-size:20px;margin:2px 0 6px}
.chart canvas{width:100%;height:48px;display:block}
</style></head><body>
<h1>CTT — server self-metrics</h1>
<p><span id="status">disconnected</span>
· prefix: <code id="prefix"></code>
· <a href="/" style="color:#9cf">dashboards</a>
· <a href="/live" style="color:#9cf">live feed</a></p>
<p style="color:#888;font-size:13px">Series arrive via the self-scrape loop
(<code>-self-scrape</code>); history is queryable through <code>/api/query</code>
and downsampled by the rollup engine like any other metric.</p>
<div id="charts"></div>
<script>
const PREFIX = __PREFIX__;
const MAXPTS = 120;
document.getElementById('prefix').textContent = PREFIX;
const series = new Map(); // key -> {pts: [{t,v}], el, canvas, val}
function seriesKey(p) {
  const tags = Object.entries(p.tags || {}).filter(([k]) => k !== 'src')
    .map(([k, v]) => k + '=' + v).join(',');
  return p.metric + (tags ? '{' + tags + '}' : '');
}
function ensureChart(key) {
  let s = series.get(key);
  if (s) return s;
  const el = document.createElement('div');
  el.className = 'chart';
  const h = document.createElement('h3');
  h.textContent = key.slice(PREFIX.length + 1) || key;
  const val = document.createElement('div');
  val.className = 'val';
  const canvas = document.createElement('canvas');
  el.appendChild(h); el.appendChild(val); el.appendChild(canvas);
  // Keep the grid alphabetical so charts don't jump around on arrival.
  const charts = document.getElementById('charts');
  let before = null;
  for (const [k, other] of [...series.entries()].sort((a, b) => a[0] < b[0] ? -1 : 1)) {
    if (k > key) { before = other.el; break; }
  }
  charts.insertBefore(el, before);
  s = {pts: [], el, canvas, val};
  series.set(key, s);
  return s;
}
function draw(s) {
  const c = s.canvas, ctx = c.getContext('2d');
  c.width = c.clientWidth; c.height = c.clientHeight;
  ctx.clearRect(0, 0, c.width, c.height);
  const pts = s.pts;
  if (pts.length < 2) return;
  let min = Infinity, max = -Infinity;
  for (const p of pts) { if (p.v < min) min = p.v; if (p.v > max) max = p.v; }
  const span = (max - min) || 1;
  ctx.strokeStyle = '#6cf'; ctx.lineWidth = 1.5; ctx.beginPath();
  pts.forEach((p, i) => {
    const x = i / (pts.length - 1) * (c.width - 2) + 1;
    const y = c.height - 3 - (p.v - min) / span * (c.height - 6);
    i ? ctx.lineTo(x, y) : ctx.moveTo(x, y);
  });
  ctx.stroke();
}
function fmt(v) {
  if (Math.abs(v) >= 1e9) return (v / 1e9).toFixed(2) + 'G';
  if (Math.abs(v) >= 1e6) return (v / 1e6).toFixed(2) + 'M';
  if (Math.abs(v) >= 1e4) return (v / 1e3).toFixed(1) + 'k';
  return Number.isInteger(v) ? String(v) : v.toFixed(3);
}
let es = null;
function connect() {
  if (es) es.close();
  es = new EventSource('/api/stream?metric=' + encodeURIComponent(PREFIX + '.'));
  const status = document.getElementById('status');
  es.onopen = () => { status.textContent = 'connected'; status.className = 'ok'; };
  es.onerror = () => { status.textContent = 'disconnected'; status.className = ''; };
  es.addEventListener('point', (e) => {
    const p = JSON.parse(e.data);
    const s = ensureChart(seriesKey(p));
    s.pts.push({t: p.timestamp, v: p.value});
    if (s.pts.length > MAXPTS) s.pts.shift();
    s.val.textContent = fmt(p.value);
    draw(s);
  });
}
connect();
</script></body></html>`

func (s *Server) handleOps(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	prefix := s.selfPrefix
	s.mu.Unlock()
	if prefix == "" {
		prefix = "ctt.self"
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	// The prefix is an operator-set flag, but quote it as a JS string
	// literal anyway rather than trusting its charset.
	page := strings.Replace(opsPage, "__PREFIX__", jsString(prefix), 1)
	w.Write([]byte(page))
}

// jsString renders s as a double-quoted JavaScript string literal,
// escaping the characters that could break out of it.
func jsString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"', '\\':
			b.WriteByte('\\')
			b.WriteRune(r)
		case '<', '>', '&':
			// Avoid "</script>" style breakouts inside inline script.
			b.WriteString(`\u00`)
			const hex = "0123456789abcdef"
			b.WriteByte(hex[r>>4])
			b.WriteByte(hex[r&0xf])
		case '\n', '\r':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}
