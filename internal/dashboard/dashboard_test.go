package dashboard

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dataport"
	"repro/internal/geo"
	"repro/internal/tsdb"
)

var (
	simNow = time.Date(2017, time.March, 7, 12, 0, 0, 0, time.UTC)
	center = geo.LatLon{Lat: 63.4305, Lon: 10.3951}
)

func testServer(t *testing.T) (*Server, *tsdb.DB) {
	t.Helper()
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	// Seed 6 hours of CO2 at 5-min cadence for two sensors.
	for i := 0; i < 72; i++ {
		ts := simNow.Add(-6 * time.Hour).Add(time.Duration(i) * 5 * time.Minute)
		for _, sensor := range []string{"n1", "n2"} {
			db.Put(tsdb.DataPoint{
				Metric: "air.co2",
				Tags:   map[string]string{"sensor": sensor, "city": "trondheim"},
				Point:  tsdb.Point{Timestamp: ts.UnixMilli(), Value: 410 + float64(i%12)},
			})
		}
	}
	s := New(db, nil)
	s.SetNow(func() time.Time { return simNow })
	if err := s.AddPanel(Panel{
		Name: "co2", Title: "CO2 all sensors", Metric: "air.co2",
		Tags: map[string]string{"sensor": "*"}, Agg: tsdb.AggAvg,
		Window: 6 * time.Hour, YLabel: "ppm",
	}); err != nil {
		t.Fatal(err)
	}
	return s, db
}

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, _ := io.ReadAll(res.Body)
	return res, string(body)
}

func TestIndexListsPanels(t *testing.T) {
	s, _ := testServer(t)
	res, body := get(t, s.Handler(), "/")
	if res.StatusCode != 200 {
		t.Fatalf("status %d", res.StatusCode)
	}
	if !strings.Contains(body, "CO2 all sensors") || !strings.Contains(body, "/panel/co2.svg") {
		t.Fatalf("index missing panel: %.200s", body)
	}
}

func TestPanelSVGRenders(t *testing.T) {
	s, _ := testServer(t)
	res, body := get(t, s.Handler(), "/panel/co2.svg")
	if res.StatusCode != 200 {
		t.Fatalf("status %d: %s", res.StatusCode, body)
	}
	if res.Header.Get("Content-Type") != "image/svg+xml" {
		t.Fatalf("content type: %s", res.Header.Get("Content-Type"))
	}
	if !strings.Contains(body, "polyline") {
		t.Fatal("panel chart empty")
	}
	res, _ = get(t, s.Handler(), "/panel/nope.svg")
	if res.StatusCode != 404 {
		t.Fatalf("unknown panel status: %d", res.StatusCode)
	}
}

func TestQueryAPI(t *testing.T) {
	s, _ := testServer(t)
	res, body := get(t, s.Handler(), "/api/query?metric=air.co2&agg=avg&tag.sensor=n1")
	if res.StatusCode != 200 {
		t.Fatalf("status %d: %s", res.StatusCode, body)
	}
	var out []struct {
		Metric string            `json:"metric"`
		Tags   map[string]string `json:"tags"`
		Points [][2]float64      `json:"points"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0].Points) != 72 {
		t.Fatalf("series %d points %d", len(out), len(out[0].Points))
	}
	// Group-by via wildcard.
	_, body = get(t, s.Handler(), "/api/query?metric=air.co2&tag.sensor=*")
	json.Unmarshal([]byte(body), &out)
	if len(out) != 2 {
		t.Fatalf("group-by series: %d", len(out))
	}
	// Bad requests.
	res, _ = get(t, s.Handler(), "/api/query")
	if res.StatusCode != 400 {
		t.Fatalf("missing metric status: %d", res.StatusCode)
	}
	res, _ = get(t, s.Handler(), "/api/query?metric=air.co2&agg=bogus")
	if res.StatusCode != 400 {
		t.Fatalf("bad agg status: %d", res.StatusCode)
	}
	res, _ = get(t, s.Handler(), "/api/query?metric=air.co2&downsample=xx")
	if res.StatusCode != 400 {
		t.Fatalf("bad downsample status: %d", res.StatusCode)
	}
}

func TestQueryAPIWithRangeAndDownsample(t *testing.T) {
	s, _ := testServer(t)
	from := simNow.Add(-2 * time.Hour).Format(time.RFC3339)
	to := simNow.Format(time.RFC3339)
	_, body := get(t, s.Handler(),
		"/api/query?metric=air.co2&tag.sensor=n1&from="+from+"&to="+to+"&downsample=1h")
	var out []struct {
		Points [][2]float64 `json:"points"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0].Points) < 2 || len(out[0].Points) > 3 {
		t.Fatalf("downsampled points: %+v", out)
	}
}

func TestPanelValidation(t *testing.T) {
	s, _ := testServer(t)
	if err := s.AddPanel(Panel{Name: "bad name", Agg: tsdb.AggAvg}); err == nil {
		t.Fatal("space in name should fail")
	}
	if err := s.AddPanel(Panel{Name: "x", Agg: "bogus"}); err == nil {
		t.Fatal("bad agg should fail")
	}
	if err := s.AddPanel(Panel{Name: "co2", Agg: tsdb.AggAvg}); err == nil {
		t.Fatal("duplicate name should fail")
	}
}

func TestNetworkEndpoints(t *testing.T) {
	s, _ := testServer(t)
	// No dataport: 404.
	res, _ := get(t, s.Handler(), "/network.svg")
	if res.StatusCode != 404 {
		t.Fatalf("no-dataport status: %d", res.StatusCode)
	}
	// With dataport.
	dp, err := dataport.New(dataport.Config{DefaultInterval: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	dp.RegisterGateway("gw1", center)
	dp.RegisterSensor("s1", geo.Destination(center, 0, 400), 0)
	dp.ObserveUplink(dataport.UplinkObservation{
		DeviceID: "s1", GatewayIDs: []string{"gw1"}, Time: simNow, BatteryPct: 80, RSSI: -85,
	})
	s.dp = dp
	res, body := get(t, s.Handler(), "/network.svg")
	if res.StatusCode != 200 || !strings.Contains(body, "circle") {
		t.Fatalf("network map: %d %.120s", res.StatusCode, body)
	}
	// Alarm API (none yet).
	res, body = get(t, s.Handler(), "/api/alarms")
	if res.StatusCode != 200 {
		t.Fatalf("alarms status %d", res.StatusCode)
	}
	if strings.TrimSpace(body) != "[]" && !strings.HasPrefix(strings.TrimSpace(body), "[") {
		t.Fatalf("alarms body: %s", body)
	}
}

func TestWallDisplay(t *testing.T) {
	s, _ := testServer(t)
	res, body := get(t, s.Handler(), "/wall")
	if res.StatusCode != 200 {
		t.Fatalf("wall status %d", res.StatusCode)
	}
	if !strings.Contains(body, "/network.svg") || !strings.Contains(body, "/panel/co2.svg") {
		t.Fatalf("wall missing components: %.300s", body)
	}
}

func TestMetricsAndHealth(t *testing.T) {
	s, _ := testServer(t)
	_, body := get(t, s.Handler(), "/api/metrics")
	if !strings.Contains(body, "air.co2") {
		t.Fatalf("metrics: %s", body)
	}
	res, body := get(t, s.Handler(), "/healthz")
	if res.StatusCode != 200 || body != "ok" {
		t.Fatalf("health: %d %s", res.StatusCode, body)
	}
}

func TestRealServerOverTCP(t *testing.T) {
	s, _ := testServer(t)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + addr.String() + "/api/panels")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "co2") {
		t.Fatalf("panels over TCP: %s", body)
	}
}

func TestCommandEndpoint(t *testing.T) {
	s, _ := testServer(t)
	// Not configured: 404.
	req := httptest.NewRequest(http.MethodPost, "/api/command?device=n1&interval=15", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Result().StatusCode != 404 {
		t.Fatalf("unconfigured: %d", rec.Result().StatusCode)
	}

	var gotDev string
	var gotPayload []byte
	s.SendCommand = func(dev string, payload []byte) error {
		gotDev, gotPayload = dev, payload
		return nil
	}
	// GET rejected.
	req = httptest.NewRequest(http.MethodGet, "/api/command?device=n1&interval=15", nil)
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Result().StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: %d", rec.Result().StatusCode)
	}
	// Happy path: combined commands.
	req = httptest.NewRequest(http.MethodPost, "/api/command?device=n1&interval=15&lowbattery=30", nil)
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Result().StatusCode != 200 {
		body, _ := io.ReadAll(rec.Result().Body)
		t.Fatalf("command: %d %s", rec.Result().StatusCode, body)
	}
	if gotDev != "n1" || len(gotPayload) != 4 {
		t.Fatalf("forwarded: %q %v", gotDev, gotPayload)
	}
	// Bad values.
	for _, url := range []string{
		"/api/command?interval=15",             // no device
		"/api/command?device=n1",               // no command
		"/api/command?device=n1&interval=0",    // out of range
		"/api/command?device=n1&interval=x",    // not a number
		"/api/command?device=n1&lowbattery=99", // out of range
	} {
		req = httptest.NewRequest(http.MethodPost, url, nil)
		rec = httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Result().StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d", url, rec.Result().StatusCode)
		}
	}
}
