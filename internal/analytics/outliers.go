package analytics

import (
	"math"
	"time"

	"repro/internal/integrate"
)

// Outlier and malfunction detection (§2.4: "it also allows the
// identification of outliers and malfunctioning sensors").

// Outlier marks one anomalous sample.
type Outlier struct {
	Index int
	Time  time.Time
	Value float64
	Score float64 // robust z-score
}

// DetectOutliers flags samples whose robust z-score (|x - median| /
// (1.4826·MAD)) exceeds threshold. A threshold of 3.5 is the standard
// conservative choice.
func DetectOutliers(ts integrate.TimeSeries, threshold float64) []Outlier {
	vals := ts.Values()
	if len(vals) < 4 {
		return nil
	}
	med := Median(vals)
	mad := MAD(vals)
	if mad == 0 {
		return nil // constant series: stuck detection handles it
	}
	scale := 1.4826 * mad
	var out []Outlier
	for i, s := range ts.Samples {
		score := math.Abs(s.Value-med) / scale
		if score > threshold {
			out = append(out, Outlier{Index: i, Time: s.Time, Value: s.Value, Score: score})
		}
	}
	return out
}

// StuckRun describes a run of identical values — the signature of a
// frozen ADC or failed sensor element.
type StuckRun struct {
	Start, End time.Time
	Value      float64
	Length     int
}

// DetectStuck finds runs of minRun or more *identical* consecutive
// values. Pollutant series have continuous noise, so even short
// identical runs are suspicious; minRun 5 is a reasonable default at
// 5-minute cadence.
func DetectStuck(ts integrate.TimeSeries, minRun int) []StuckRun {
	if minRun < 2 {
		minRun = 2
	}
	var out []StuckRun
	i := 0
	for i < len(ts.Samples) {
		j := i
		for j+1 < len(ts.Samples) && ts.Samples[j+1].Value == ts.Samples[i].Value {
			j++
		}
		if runLen := j - i + 1; runLen >= minRun {
			out = append(out, StuckRun{
				Start:  ts.Samples[i].Time,
				End:    ts.Samples[j].Time,
				Value:  ts.Samples[i].Value,
				Length: runLen,
			})
		}
		i = j + 1
	}
	return out
}

// NetworkDeviation scores each sensor against the network consensus:
// for aligned series (one per sensor), it computes each sensor's mean
// absolute deviation from the per-timestamp network median, normalized
// by the median of those deviations. Sensors scoring far above 1 are
// malfunctioning candidates — the network-level cross-check the dense
// deployment enables.
func NetworkDeviation(series []integrate.TimeSeries) map[string]float64 {
	if len(series) < 3 {
		return nil
	}
	n := len(series[0].Samples)
	for _, s := range series {
		if len(s.Samples) != n {
			return nil
		}
	}
	dev := make([]float64, len(series))
	for t := 0; t < n; t++ {
		vals := make([]float64, len(series))
		for si, s := range series {
			vals[si] = s.Samples[t].Value
		}
		med := Median(vals)
		for si := range series {
			dev[si] += math.Abs(vals[si] - med)
		}
	}
	norm := Median(dev)
	out := make(map[string]float64, len(series))
	for si, s := range series {
		if norm > 0 {
			out[s.Name] = dev[si] / norm
		} else {
			out[s.Name] = 1
		}
	}
	return out
}
