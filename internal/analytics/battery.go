package analytics

import (
	"math"
	"time"

	"repro/internal/integrate"
	"repro/internal/weather"
)

// Battery analysis — the paper's Fig. 4: "the battery level as a
// function of time (left), and the difference in battery-level from
// previous sent package versus time of day, and where red indicates
// whether the nodes could have been charged by sunlight since the
// previous package (right). This allows to estimate battery
// depletion."

// BatteryDelta is one point of the Fig. 4 right panel.
type BatteryDelta struct {
	Time time.Time
	// HourOfDay with minute fraction, for the x-axis.
	HourOfDay float64
	// Delta is the battery-level change since the previous packet.
	Delta float64
	// Sunlit reports whether the sun was above the horizon at any
	// point since the previous packet (the red/blue classification).
	Sunlit bool
}

// BatteryAnalysis is the full Fig. 4 result for one node.
type BatteryAnalysis struct {
	NodeID string
	// Levels is the left panel: battery level vs time.
	Levels integrate.TimeSeries
	// Deltas is the right panel.
	Deltas []BatteryDelta
	// MeanDeltaSunlit / MeanDeltaDark summarize charging behaviour.
	MeanDeltaSunlit float64
	MeanDeltaDark   float64
	// DischargeRatePerHour is the fitted drain rate over dark periods
	// (percent per hour, positive value = draining).
	DischargeRatePerHour float64
	// HoursToEmpty estimates depletion from the latest level at the
	// fitted dark discharge rate (+Inf when not draining).
	HoursToEmpty float64
}

// AnalyzeBattery computes the Fig. 4 analysis from a node's battery
// level series (one sample per received packet) at the node's site.
func AnalyzeBattery(nodeID string, levels integrate.TimeSeries, lat, lon float64) (BatteryAnalysis, error) {
	if len(levels.Samples) < 3 {
		return BatteryAnalysis{}, ErrNotEnoughData
	}
	res := BatteryAnalysis{NodeID: nodeID, Levels: levels}

	var sunlit, dark []float64
	// Contiguous dark runs become per-night discharge segments; fitting
	// within each night avoids the seasonal charging trend biasing the
	// estimate (a global fit over dark timestamps would see the battery
	// rise from night to night in spring).
	type segment struct{ hours, levels []float64 }
	var segs []segment
	var cur segment

	for i := 1; i < len(levels.Samples); i++ {
		prev, smp := levels.Samples[i-1], levels.Samples[i]
		delta := smp.Value - prev.Value
		lit := intervalSunlit(lat, lon, prev.Time, smp.Time)
		hod := float64(smp.Time.Hour()) + float64(smp.Time.Minute())/60
		res.Deltas = append(res.Deltas, BatteryDelta{
			Time: smp.Time, HourOfDay: hod, Delta: delta, Sunlit: lit,
		})
		if lit {
			sunlit = append(sunlit, delta)
			if len(cur.hours) > 0 {
				segs = append(segs, cur)
				cur = segment{}
			}
		} else {
			dark = append(dark, delta)
			cur.hours = append(cur.hours, smp.Time.Sub(levels.Samples[0].Time).Hours())
			cur.levels = append(cur.levels, smp.Value)
		}
	}
	if len(cur.hours) > 0 {
		segs = append(segs, cur)
	}
	if len(sunlit) > 0 {
		res.MeanDeltaSunlit = Mean(sunlit)
	}
	if len(dark) > 0 {
		res.MeanDeltaDark = Mean(dark)
	}

	// Discharge rate: mean of per-night fitted slopes (segments with
	// at least 3 samples).
	var rates []float64
	for _, s := range segs {
		if len(s.hours) < 3 {
			continue
		}
		if fit, err := FitLine(s.hours, s.levels); err == nil {
			rates = append(rates, -fit.Slope)
		}
	}
	if len(rates) > 0 {
		res.DischargeRatePerHour = Mean(rates)
	}
	last := levels.Samples[len(levels.Samples)-1].Value
	if res.DischargeRatePerHour > 0 {
		res.HoursToEmpty = last / res.DischargeRatePerHour
	} else {
		res.HoursToEmpty = math.Inf(1)
	}
	return res, nil
}

// intervalSunlit reports whether the sun rose above the horizon at any
// point in [from, to]; sampled at 10-minute resolution.
func intervalSunlit(lat, lon float64, from, to time.Time) bool {
	if to.Before(from) {
		from, to = to, from
	}
	step := 10 * time.Minute
	for t := from; !t.After(to); t = t.Add(step) {
		if weather.Daylight(lat, lon, t) {
			return true
		}
	}
	return weather.Daylight(lat, lon, to)
}
