package analytics

import "math"

// Common Air Quality Index (CAQI), the European index city dashboards
// display (the "air quality indicators" of Fig. 6). The index is the
// maximum of per-pollutant sub-indices computed from breakpoint
// tables; 0–25 very low ... >100 very high.

// AQIBand labels a CAQI range.
type AQIBand string

// CAQI bands.
const (
	AQIVeryLow  AQIBand = "very-low"
	AQILow      AQIBand = "low"
	AQIMedium   AQIBand = "medium"
	AQIHigh     AQIBand = "high"
	AQIVeryHigh AQIBand = "very-high"
)

// caqiScale maps a concentration through a breakpoint grid onto 0-100+.
func caqiScale(v float64, grid [5]float64) float64 {
	// grid holds concentrations at index 0, 25, 50, 75, 100.
	if v <= grid[0] {
		return 0
	}
	for i := 1; i < 5; i++ {
		if v <= grid[i] {
			frac := (v - grid[i-1]) / (grid[i] - grid[i-1])
			return float64(i-1)*25 + frac*25
		}
	}
	// Extrapolate beyond the top breakpoint.
	return 100 + (v-grid[4])/(grid[4]-grid[3])*25
}

// CAQI sub-index breakpoint grids (hourly, µg/m³), per the CITEAIR
// roadside tables.
var (
	gridNO2  = [5]float64{0, 50, 100, 200, 400}
	gridPM10 = [5]float64{0, 25, 50, 90, 180}
	gridPM25 = [5]float64{0, 15, 30, 55, 110}
)

// CAQIResult is the index with its dominant pollutant.
type CAQIResult struct {
	Index    float64
	Band     AQIBand
	Dominant string
	SubNO2   float64
	SubPM10  float64
	SubPM25  float64
}

// CAQI computes the hourly roadside CAQI from NO2, PM10 and PM2.5
// concentrations in µg/m³.
func CAQI(no2, pm10, pm25 float64) CAQIResult {
	r := CAQIResult{
		SubNO2:  caqiScale(math.Max(0, no2), gridNO2),
		SubPM10: caqiScale(math.Max(0, pm10), gridPM10),
		SubPM25: caqiScale(math.Max(0, pm25), gridPM25),
	}
	r.Index = r.SubNO2
	r.Dominant = "no2"
	if r.SubPM10 > r.Index {
		r.Index = r.SubPM10
		r.Dominant = "pm10"
	}
	if r.SubPM25 > r.Index {
		r.Index = r.SubPM25
		r.Dominant = "pm25"
	}
	r.Band = bandFor(r.Index)
	return r
}

func bandFor(idx float64) AQIBand {
	switch {
	case idx <= 25:
		return AQIVeryLow
	case idx <= 50:
		return AQILow
	case idx <= 75:
		return AQIMedium
	case idx <= 100:
		return AQIHigh
	default:
		return AQIVeryHigh
	}
}
