package analytics

import (
	"math"

	"repro/internal/integrate"
)

// Calibration (§2.4): "we have co-located one of our sensor units to
// the only station in the pilot area. This allows to compare both
// absolute and relative accuracy and calibrate the local sensor and,
// through larger-scale correlated trends, the network, but with lower
// certainty."

// Calibration maps raw sensor readings onto the reference scale:
// corrected = (raw - Offset) / Gain.
type Calibration struct {
	Gain   float64
	Offset float64
	// R2 of the fit — calibration quality.
	R2 float64
	N  int
}

// Apply corrects one raw reading.
func (c Calibration) Apply(raw float64) float64 {
	if c.Gain == 0 {
		return raw
	}
	return (raw - c.Offset) / c.Gain
}

// ApplySeries corrects a whole series.
func (c Calibration) ApplySeries(ts integrate.TimeSeries) integrate.TimeSeries {
	out := integrate.TimeSeries{Name: ts.Name + ".cal", Unit: ts.Unit}
	for _, s := range ts.Samples {
		out.Samples = append(out.Samples, integrate.Sample{Time: s.Time, Value: c.Apply(s.Value)})
	}
	return out
}

// CalibrateAgainstReference fits sensor = Gain*reference + Offset from
// co-located, time-aligned series (sensor and reference must share a
// grid — use integrate.Align first).
func CalibrateAgainstReference(sensor, reference integrate.TimeSeries) (Calibration, error) {
	if len(sensor.Samples) != len(reference.Samples) {
		return Calibration{}, ErrLengthMismatch
	}
	xs := reference.Values()
	ys := sensor.Values()
	fit, err := FitLine(xs, ys)
	if err != nil {
		return Calibration{}, err
	}
	return Calibration{Gain: fit.Slope, Offset: fit.Intercept, R2: fit.R2, N: fit.N}, nil
}

// AccuracyReport compares a (possibly calibrated) sensor series to the
// reference: the "absolute and relative accuracy" numbers of §2.4.
type AccuracyReport struct {
	MAE  float64 // mean absolute error
	RMSE float64
	Bias float64 // mean signed error
	// R is Pearson correlation — relative accuracy (trend agreement).
	R float64
}

// Accuracy computes the report over aligned series.
func Accuracy(sensor, reference integrate.TimeSeries) (AccuracyReport, error) {
	if len(sensor.Samples) != len(reference.Samples) {
		return AccuracyReport{}, ErrLengthMismatch
	}
	if len(sensor.Samples) == 0 {
		return AccuracyReport{}, ErrNotEnoughData
	}
	var sumAbs, sumSq, sumErr float64
	n := float64(len(sensor.Samples))
	for i := range sensor.Samples {
		e := sensor.Samples[i].Value - reference.Samples[i].Value
		sumAbs += math.Abs(e)
		sumSq += e * e
		sumErr += e
	}
	r, err := Pearson(sensor.Values(), reference.Values())
	if err != nil {
		return AccuracyReport{}, err
	}
	return AccuracyReport{
		MAE:  sumAbs / n,
		RMSE: math.Sqrt(sumSq / n),
		Bias: sumErr / n,
		R:    r,
	}, nil
}

// PropagateCalibration transfers the co-located sensor's calibration
// to a remote sensor through correlated large-scale trends: both
// sensors see the same regional background, so regressing the remote
// sensor's daily means against the calibrated sensor's daily means
// yields a network-level (lower-certainty) correction.
//
// calibratedColocated must already be corrected (reference scale).
func PropagateCalibration(remote, calibratedColocated integrate.TimeSeries) (Calibration, error) {
	if len(remote.Samples) != len(calibratedColocated.Samples) {
		return Calibration{}, ErrLengthMismatch
	}
	// Daily means suppress local (street-level) differences and keep
	// the shared synoptic/background variation.
	remoteDaily := dailyMeans(remote)
	colocDaily := dailyMeans(calibratedColocated)
	n := len(remoteDaily)
	if len(colocDaily) < n {
		n = len(colocDaily)
	}
	if n < 3 {
		return Calibration{}, ErrNotEnoughData
	}
	fit, err := FitLine(colocDaily[:n], remoteDaily[:n])
	if err != nil {
		return Calibration{}, err
	}
	return Calibration{Gain: fit.Slope, Offset: fit.Intercept, R2: fit.R2, N: fit.N}, nil
}

func dailyMeans(ts integrate.TimeSeries) []float64 {
	var out []float64
	var day int = -1
	var sum float64
	var n int
	flush := func() {
		if n > 0 {
			out = append(out, sum/float64(n))
			sum, n = 0, 0
		}
	}
	for _, s := range ts.Samples {
		d := s.Time.YearDay() + s.Time.Year()*1000
		if d != day {
			flush()
			day = d
		}
		sum += s.Value
		n++
	}
	flush()
	return out
}
