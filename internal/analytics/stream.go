package analytics

import (
	"sync"
	"time"
)

// Stream processing (§2.1 lists "stream processing on measurement
// data" among the pipeline stages; §3 demonstrates "segmentation,
// chaining, and automation" of the data flow). These operators process
// live measurement feeds without buffering unbounded history.

// StreamPoint is one value flowing through an operator.
type StreamPoint struct {
	Time  time.Time
	Value float64
}

// WindowStat is a windowed aggregate emitted by SlidingWindow.
type WindowStat struct {
	Start, End time.Time
	Count      int
	Mean       float64
	Min, Max   float64
}

// SlidingWindow maintains a time-based window over a stream and
// reports aggregates. Safe for concurrent use.
type SlidingWindow struct {
	size time.Duration

	mu  sync.Mutex
	buf []StreamPoint
}

// NewSlidingWindow creates a window of the given duration.
func NewSlidingWindow(size time.Duration) *SlidingWindow {
	return &SlidingWindow{size: size}
}

// Push adds a point and evicts everything older than size before it.
func (w *SlidingWindow) Push(p StreamPoint) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = append(w.buf, p)
	cutoff := p.Time.Add(-w.size)
	i := 0
	for i < len(w.buf) && w.buf[i].Time.Before(cutoff) {
		i++
	}
	w.buf = w.buf[i:]
}

// Stat summarizes the current window contents.
func (w *SlidingWindow) Stat() WindowStat {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := WindowStat{Count: len(w.buf)}
	if len(w.buf) == 0 {
		return st
	}
	st.Start = w.buf[0].Time
	st.End = w.buf[len(w.buf)-1].Time
	st.Min = w.buf[0].Value
	st.Max = w.buf[0].Value
	var sum float64
	for _, p := range w.buf {
		sum += p.Value
		if p.Value < st.Min {
			st.Min = p.Value
		}
		if p.Value > st.Max {
			st.Max = p.Value
		}
	}
	st.Mean = sum / float64(len(w.buf))
	return st
}

// ThresholdAlert fires when a windowed mean crosses a limit for at
// least Hold consecutive pushes — debouncing the alert so a single
// noisy sample does not page anyone.
type ThresholdAlert struct {
	Window *SlidingWindow
	Limit  float64
	Hold   int

	over int
	on   bool
}

// AlertEvent reports a state change from a push.
type AlertEvent struct {
	Time   time.Time
	Raised bool // true = alert raised, false = cleared
	Mean   float64
}

// Push feeds a point; it returns a non-nil event when the alert state
// changes.
func (a *ThresholdAlert) Push(p StreamPoint) *AlertEvent {
	a.Window.Push(p)
	st := a.Window.Stat()
	if st.Mean > a.Limit {
		a.over++
	} else {
		a.over = 0
		if a.on {
			a.on = false
			return &AlertEvent{Time: p.Time, Raised: false, Mean: st.Mean}
		}
	}
	if a.over >= a.Hold && !a.on {
		a.on = true
		return &AlertEvent{Time: p.Time, Raised: true, Mean: st.Mean}
	}
	return nil
}

// EWMA is an exponentially weighted moving average smoother for
// dashboard sparklines.
type EWMA struct {
	Alpha float64
	val   float64
	init  bool
}

// Push updates the smoother and returns the smoothed value.
func (e *EWMA) Push(v float64) float64 {
	if !e.init {
		e.val = v
		e.init = true
		return v
	}
	e.val = e.Alpha*v + (1-e.Alpha)*e.val
	return e.val
}

// Value returns the current smoothed value.
func (e *EWMA) Value() float64 { return e.val }
