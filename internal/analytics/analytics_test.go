package analytics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/integrate"
)

func d(day, h, m int) time.Time {
	return time.Date(2017, time.March, day, h, m, 0, 0, time.UTC)
}

func series(name string, start time.Time, step time.Duration, vals ...float64) integrate.TimeSeries {
	ts := integrate.TimeSeries{Name: name}
	for i, v := range vals {
		ts.Samples = append(ts.Samples, integrate.Sample{Time: start.Add(time.Duration(i) * step), Value: v})
	}
	return ts
}

func TestBasicStats(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-9 {
		t.Fatalf("stddev = %v", s)
	}
	if med := Median(xs); med != 4.5 {
		t.Fatalf("median = %v", med)
	}
	if med := Median([]float64{3, 1, 2}); med != 2 {
		t.Fatalf("odd median = %v", med)
	}
	if mad := MAD([]float64{1, 1, 2, 2, 4, 6, 9}); mad != 1 {
		t.Fatalf("mad = %v", mad)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Median(nil)) {
		t.Fatal("empty inputs should be NaN")
	}
}

func TestPearsonKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect correlation: r=%v err=%v", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation: r=%v", r)
	}
	constant := []float64{3, 3, 3, 3, 3}
	r, err = Pearson(xs, constant)
	if err != nil || r != 0 {
		t.Fatalf("constant series: r=%v err=%v", r, err)
	}
	if _, err := Pearson(xs, xs[:2]); err != ErrLengthMismatch {
		t.Fatalf("length mismatch: %v", err)
	}
}

func TestPearsonBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 3 {
			return true
		}
		for _, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		ys := make([]float64, len(xs))
		for i, v := range xs {
			ys[i] = v*0.5 + float64(i%7)
		}
		r, err := Pearson(xs, ys)
		return err == nil && r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{1, 8, 27, 64, 125, 216} // nonlinear but monotone
	rho, err := Spearman(xs, ys)
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Fatalf("monotone: rho=%v err=%v", rho, err)
	}
}

func TestCrossCorrelationFindsLag(t *testing.T) {
	// ys = xs delayed by 3 steps.
	n := 200
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(float64(i) / 5)
	}
	for i := 3; i < n; i++ {
		ys[i] = xs[i-3]
	}
	xc, err := CrossCorrelation(xs, ys, 6)
	if err != nil {
		t.Fatal(err)
	}
	lag, r := BestLag(xc)
	if lag != 3 {
		t.Fatalf("best lag = %d (r=%v), want 3", lag, r)
	}
	if r < 0.9 {
		t.Fatalf("lagged correlation %v too weak", r)
	}
}

func TestFitLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 2x + 1
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Fatalf("fit: %+v", fit)
	}
	if fit.R2 < 0.9999 {
		t.Fatalf("R2 = %v", fit.R2)
	}
	if fit.Apply(10) != 21 {
		t.Fatalf("apply: %v", fit.Apply(10))
	}
	if _, err := FitLine([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("zero-variance x should error")
	}
}

func TestFitMultiRecoversCoefficients(t *testing.T) {
	// y = 3 + 2a - 1.5b
	n := 100
	a := make([]float64, n)
	b := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = float64(i % 13)
		b[i] = float64((i * 7) % 11)
		y[i] = 3 + 2*a[i] - 1.5*b[i]
	}
	fit, err := FitMulti([][]float64{a, b}, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Coef[0]-3) > 1e-9 || math.Abs(fit.Coef[1]-2) > 1e-9 || math.Abs(fit.Coef[2]+1.5) > 1e-9 {
		t.Fatalf("coefficients: %v", fit.Coef)
	}
	if fit.R2 < 0.999999 {
		t.Fatalf("R2 = %v", fit.R2)
	}
	if got := fit.Predict([]float64{2, 2}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("predict: %v", got)
	}
}

func TestDetectGaps(t *testing.T) {
	ts := integrate.TimeSeries{Name: "g", Samples: []integrate.Sample{
		{Time: d(1, 0, 0), Value: 1},
		{Time: d(1, 0, 5), Value: 2},
		{Time: d(1, 0, 30), Value: 3}, // 25-minute hole at 5-min cadence
		{Time: d(1, 0, 35), Value: 4},
	}}
	gaps := DetectGaps(ts, 5*time.Minute)
	if len(gaps) != 1 {
		t.Fatalf("gaps: %d", len(gaps))
	}
	if gaps[0].Missing != 4 {
		t.Fatalf("missing = %d, want 4", gaps[0].Missing)
	}
	c := Completeness(ts, 5*time.Minute)
	if math.Abs(c-4.0/8.0) > 1e-9 {
		t.Fatalf("completeness = %v", c)
	}
}

func TestImputeLinear(t *testing.T) {
	ts := integrate.TimeSeries{Name: "i", Samples: []integrate.Sample{
		{Time: d(1, 0, 0), Value: 0},
		{Time: d(1, 0, 30), Value: 30}, // 25-min gap at 5-min cadence
	}}
	out := Impute(ts, 5*time.Minute, ImputeLinear)
	if len(out.Samples) != 7 {
		t.Fatalf("imputed length: %d", len(out.Samples))
	}
	for i, s := range out.Samples {
		if math.Abs(s.Value-float64(i*5)) > 1e-9 {
			t.Fatalf("imputed sample %d = %v", i, s.Value)
		}
	}
}

func TestImputeLOCF(t *testing.T) {
	ts := integrate.TimeSeries{Name: "i", Samples: []integrate.Sample{
		{Time: d(1, 0, 0), Value: 7},
		{Time: d(1, 0, 15), Value: 9},
	}}
	out := Impute(ts, 5*time.Minute, ImputeLOCF)
	want := []float64{7, 7, 7, 9}
	for i, w := range want {
		if out.Samples[i].Value != w {
			t.Fatalf("locf %d = %v, want %v", i, out.Samples[i].Value, w)
		}
	}
}

func TestImputeDiurnal(t *testing.T) {
	// Two days of hourly data with a hole on day 2 at 06:00; the
	// imputed value should equal day 1's 06:00 reading.
	ts := integrate.TimeSeries{Name: "di"}
	for day := 1; day <= 2; day++ {
		for h := 0; h < 24; h++ {
			if day == 2 && h == 6 {
				continue
			}
			ts.Samples = append(ts.Samples, integrate.Sample{
				Time: d(day, h, 0), Value: float64(h * 10),
			})
		}
	}
	out := Impute(ts, time.Hour, ImputeDiurnal)
	var got float64
	for _, s := range out.Samples {
		if s.Time.Equal(d(2, 6, 0)) {
			got = s.Value
		}
	}
	if got != 60 {
		t.Fatalf("diurnal imputation = %v, want 60", got)
	}
}

func TestCalibrationRecoversTruth(t *testing.T) {
	// Sensor = 1.08*ref + 15 + noise; calibration must invert that.
	ref := integrate.TimeSeries{Name: "ref"}
	sensor := integrate.TimeSeries{Name: "sensor"}
	for i := 0; i < 200; i++ {
		truth := 410 + 30*math.Sin(float64(i)/20) + float64(i%7)
		noise := math.Sin(float64(i)*13.7) * 2
		ref.Samples = append(ref.Samples, integrate.Sample{Time: d(1, 0, i), Value: truth})
		sensor.Samples = append(sensor.Samples, integrate.Sample{Time: d(1, 0, i), Value: 1.08*truth + 15 + noise})
	}
	cal, err := CalibrateAgainstReference(sensor, ref)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cal.Gain-1.08) > 0.02 || math.Abs(cal.Offset-15) > 8 {
		t.Fatalf("calibration: gain=%v offset=%v", cal.Gain, cal.Offset)
	}
	// Corrected series must be far closer to the reference.
	before, _ := Accuracy(sensor, ref)
	after, _ := Accuracy(cal.ApplySeries(sensor), ref)
	if after.MAE >= before.MAE/3 {
		t.Fatalf("calibration did not help: MAE %v -> %v", before.MAE, after.MAE)
	}
	if math.Abs(after.Bias) > 2 {
		t.Fatalf("post-calibration bias %v", after.Bias)
	}
}

func TestAccuracyReport(t *testing.T) {
	a := series("a", d(1, 0, 0), time.Hour, 1, 2, 3, 4)
	b := series("b", d(1, 0, 0), time.Hour, 2, 3, 4, 5)
	rep, err := Accuracy(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MAE != 1 || rep.Bias != -1 || rep.RMSE != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if math.Abs(rep.R-1) > 1e-12 {
		t.Fatalf("R = %v", rep.R)
	}
}

func TestPropagateCalibration(t *testing.T) {
	// Remote sensor shares the regional trend with the co-located one
	// but has its own gain/offset.
	coloc := integrate.TimeSeries{Name: "coloc"}
	remote := integrate.TimeSeries{Name: "remote"}
	for day := 1; day <= 14; day++ {
		for h := 0; h < 24; h++ {
			regional := 410 + 15*math.Sin(float64(day)/3)
			localC := regional + 3*math.Sin(float64(h)/4)
			localR := regional + 2*math.Cos(float64(h)/5)
			coloc.Samples = append(coloc.Samples, integrate.Sample{Time: d(day, h, 0), Value: localC})
			remote.Samples = append(remote.Samples, integrate.Sample{Time: d(day, h, 0), Value: 1.15*localR - 20})
		}
	}
	cal, err := PropagateCalibration(remote, coloc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cal.Gain-1.15) > 0.1 {
		t.Fatalf("propagated gain %v, want ~1.15", cal.Gain)
	}
	corrected := cal.ApplySeries(remote)
	// Daily means of corrected remote should track coloc closely.
	rep, err := Accuracy(corrected, coloc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Bias) > 5 {
		t.Fatalf("propagated bias %v", rep.Bias)
	}
}

func TestDetectOutliers(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 400 + math.Sin(float64(i))*5
	}
	vals[42] = 900 // spike
	ts := series("o", d(1, 0, 0), time.Minute, vals...)
	out := DetectOutliers(ts, 3.5)
	if len(out) != 1 || out[0].Index != 42 {
		t.Fatalf("outliers: %+v", out)
	}
	if DetectOutliers(series("c", d(1, 0, 0), time.Minute, 5, 5, 5, 5, 5), 3.5) != nil {
		t.Fatal("constant series has no MAD outliers")
	}
}

func TestDetectStuck(t *testing.T) {
	ts := series("s", d(1, 0, 0), time.Minute,
		1, 2, 3, 7, 7, 7, 7, 7, 4, 5)
	runs := DetectStuck(ts, 5)
	if len(runs) != 1 || runs[0].Length != 5 || runs[0].Value != 7 {
		t.Fatalf("stuck runs: %+v", runs)
	}
	if DetectStuck(series("s2", d(1, 0, 0), time.Minute, 1, 2, 3), 3) != nil {
		t.Fatal("no stuck runs expected")
	}
}

func TestNetworkDeviation(t *testing.T) {
	mk := func(name string, bias float64) integrate.TimeSeries {
		ts := integrate.TimeSeries{Name: name}
		for i := 0; i < 50; i++ {
			base := 400 + 10*math.Sin(float64(i)/6)
			ts.Samples = append(ts.Samples, integrate.Sample{Time: d(1, 0, i), Value: base + bias})
		}
		return ts
	}
	dev := NetworkDeviation([]integrate.TimeSeries{
		mk("a", 0), mk("b", 1), mk("c", -1), mk("broken", 80),
	})
	if dev["broken"] < 10 {
		t.Fatalf("broken sensor score %v too low: %v", dev["broken"], dev)
	}
	if dev["a"] > 3 {
		t.Fatalf("healthy sensor scored too high: %v", dev)
	}
}

func TestCAQI(t *testing.T) {
	clean := CAQI(5, 5, 3)
	if clean.Band != AQIVeryLow {
		t.Fatalf("clean air band: %+v", clean)
	}
	dirty := CAQI(250, 100, 60)
	if dirty.Band != AQIHigh && dirty.Band != AQIVeryHigh {
		t.Fatalf("dirty air band: %+v", dirty)
	}
	if dirty.Index <= clean.Index {
		t.Fatal("dirty index must exceed clean")
	}
	pmHeavy := CAQI(10, 170, 5)
	if pmHeavy.Dominant != "pm10" {
		t.Fatalf("dominant: %+v", pmHeavy)
	}
	extreme := CAQI(800, 400, 300)
	if extreme.Band != AQIVeryHigh || extreme.Index <= 100 {
		t.Fatalf("extreme: %+v", extreme)
	}
}

func TestSlidingWindow(t *testing.T) {
	w := NewSlidingWindow(10 * time.Minute)
	base := d(1, 0, 0)
	for i := 0; i < 20; i++ {
		w.Push(StreamPoint{Time: base.Add(time.Duration(i) * time.Minute), Value: float64(i)})
	}
	st := w.Stat()
	// Window holds minutes 9..19 (cutoff at 19-10=9).
	if st.Count != 11 || st.Min != 9 || st.Max != 19 {
		t.Fatalf("window stat: %+v", st)
	}
	if math.Abs(st.Mean-14) > 1e-9 {
		t.Fatalf("window mean: %v", st.Mean)
	}
	empty := NewSlidingWindow(time.Minute).Stat()
	if empty.Count != 0 {
		t.Fatalf("empty window: %+v", empty)
	}
}

func TestThresholdAlert(t *testing.T) {
	a := &ThresholdAlert{Window: NewSlidingWindow(10 * time.Minute), Limit: 150, Hold: 3}
	base := d(1, 0, 0)
	var events []AlertEvent
	push := func(i int, v float64) {
		if ev := a.Push(StreamPoint{Time: base.Add(time.Duration(i) * time.Minute), Value: v}); ev != nil {
			events = append(events, *ev)
		}
	}
	// Normal values: no alert.
	for i := 0; i < 5; i++ {
		push(i, 50)
	}
	// One spike only: debounced.
	push(5, 500)
	push(6, 50)
	push(7, 50)
	push(8, 50)
	push(9, 50)
	push(10, 50)
	push(11, 50)
	if len(events) != 0 {
		t.Fatalf("premature events: %+v", events)
	}
	// Sustained pollution: alert fires once, then clears when it ends.
	for i := 12; i < 22; i++ {
		push(i, 400)
	}
	for i := 22; i < 40; i++ {
		push(i, 10)
	}
	if len(events) != 2 || !events[0].Raised || events[1].Raised {
		t.Fatalf("events: %+v", events)
	}
}

func TestEWMA(t *testing.T) {
	e := &EWMA{Alpha: 0.5}
	if v := e.Push(10); v != 10 {
		t.Fatalf("first push: %v", v)
	}
	if v := e.Push(20); v != 15 {
		t.Fatalf("second push: %v", v)
	}
	if e.Value() != 15 {
		t.Fatalf("value: %v", e.Value())
	}
}

func TestDiurnalProfile(t *testing.T) {
	ts := integrate.TimeSeries{Name: "d"}
	for day := 1; day <= 3; day++ {
		for h := 0; h < 24; h++ {
			ts.Samples = append(ts.Samples, integrate.Sample{
				Time:  d(day, h, 0),
				Value: 100 + 50*math.Sin(2*math.Pi*float64(h-9)/24+math.Pi/2),
			})
		}
	}
	p := Diurnal(ts)
	if p.Counts[0] != 3 {
		t.Fatalf("counts: %v", p.Counts[0])
	}
	if p.PeakHour() != 9 {
		t.Fatalf("peak hour = %d, want 9", p.PeakHour())
	}
}
