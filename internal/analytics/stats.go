// Package analytics implements the data analyses of the paper's §2.4:
// handling of missing data, grounding/calibration of the low-cost
// network against official reference stations, outlier and
// malfunctioning-sensor identification, the battery-level analysis of
// Fig. 4, the CO2-dynamics and traffic-correlation study of Fig. 5,
// air-quality indexing for the dashboards, and windowed stream
// operators for processing live measurement feeds.
package analytics

import (
	"errors"
	"math"
	"sort"
)

// Statistical errors.
var (
	ErrNotEnoughData  = errors.New("analytics: not enough data")
	ErrLengthMismatch = errors.New("analytics: series lengths differ")
)

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the middle value.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MAD returns the median absolute deviation (robust scale estimate).
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	med := Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	return Median(devs)
}

// Pearson returns the Pearson correlation coefficient of two
// equal-length series.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) < 2 {
		return 0, ErrNotEnoughData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil // a constant series correlates with nothing
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the rank correlation coefficient.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) < 2 {
		return 0, ErrNotEnoughData
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks assigns average ranks (ties share the mean of their positions).
func ranks(xs []float64) []float64 {
	type iv struct {
		i int
		v float64
	}
	s := make([]iv, len(xs))
	for i, v := range xs {
		s[i] = iv{i, v}
	}
	sort.Slice(s, func(a, b int) bool { return s[a].v < s[b].v })
	out := make([]float64, len(xs))
	for i := 0; i < len(s); {
		j := i
		for j+1 < len(s) && s[j+1].v == s[i].v {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[s[k].i] = avg
		}
		i = j + 1
	}
	return out
}

// CrossCorrelation computes Pearson correlation between xs and ys
// shifted by each lag in [-maxLag, maxLag] (positive lag: ys delayed
// relative to xs). It returns the correlations indexed by lag+maxLag.
func CrossCorrelation(xs, ys []float64, maxLag int) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, ErrLengthMismatch
	}
	if len(xs) < maxLag+2 {
		return nil, ErrNotEnoughData
	}
	out := make([]float64, 2*maxLag+1)
	for lag := -maxLag; lag <= maxLag; lag++ {
		var a, b []float64
		if lag >= 0 {
			a = xs[:len(xs)-lag]
			b = ys[lag:]
		} else {
			a = xs[-lag:]
			b = ys[:len(ys)+lag]
		}
		r, err := Pearson(a, b)
		if err != nil {
			return nil, err
		}
		out[lag+maxLag] = r
	}
	return out, nil
}

// BestLag returns the lag (in steps) with the largest absolute
// correlation from a CrossCorrelation result.
func BestLag(xcorr []float64) (lag int, r float64) {
	maxLag := (len(xcorr) - 1) / 2
	best := 0
	for i, v := range xcorr {
		if math.Abs(v) > math.Abs(xcorr[best]) {
			best = i
		}
	}
	return best - maxLag, xcorr[best]
}

// LinearFit is an ordinary-least-squares line y = Slope*x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination.
	R2 float64
	N  int
}

// FitLine fits y = a*x + b by least squares.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, ErrLengthMismatch
	}
	if len(xs) < 2 {
		return LinearFit{}, ErrNotEnoughData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		sxy += (xs[i] - mx) * (ys[i] - my)
		sxx += (xs[i] - mx) * (xs[i] - mx)
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("analytics: x has zero variance")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	// R²
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - my) * (ys[i] - my)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2, N: len(xs)}, nil
}

// Apply evaluates the fitted line at x.
func (f LinearFit) Apply(x float64) float64 { return f.Slope*x + f.Intercept }

// MultiFit is a multiple linear regression y = b0 + Σ bi*xi, solved by
// normal equations with Gaussian elimination. Used for the multi-factor
// CO2 attribution the paper flags as future work ("affected by many
// factors, including traffic, wind speed, temperature, humidity").
type MultiFit struct {
	Coef []float64 // [b0, b1, ..., bk]
	R2   float64
	N    int
}

// FitMulti regresses ys on the columns of xss (each inner slice is one
// predictor series).
func FitMulti(xss [][]float64, ys []float64) (MultiFit, error) {
	k := len(xss)
	n := len(ys)
	if k == 0 || n < k+2 {
		return MultiFit{}, ErrNotEnoughData
	}
	for _, xs := range xss {
		if len(xs) != n {
			return MultiFit{}, ErrLengthMismatch
		}
	}
	// Design matrix with intercept column.
	p := k + 1
	// Normal equations: (XᵀX) b = Xᵀy.
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p+1) // augmented with Xᵀy column
	}
	col := func(j, row int) float64 {
		if j == 0 {
			return 1
		}
		return xss[j-1][row]
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			var s float64
			for r := 0; r < n; r++ {
				s += col(i, r) * col(j, r)
			}
			xtx[i][j] = s
		}
		var s float64
		for r := 0; r < n; r++ {
			s += col(i, r) * ys[r]
		}
		xtx[i][p] = s
	}
	coef, err := solveGauss(xtx)
	if err != nil {
		return MultiFit{}, err
	}
	// R².
	my := Mean(ys)
	var ssRes, ssTot float64
	for r := 0; r < n; r++ {
		pred := coef[0]
		for j := 1; j < p; j++ {
			pred += coef[j] * xss[j-1][r]
		}
		ssRes += (ys[r] - pred) * (ys[r] - pred)
		ssTot += (ys[r] - my) * (ys[r] - my)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return MultiFit{Coef: coef, R2: r2, N: n}, nil
}

// Predict evaluates the regression at the given predictor values.
func (m MultiFit) Predict(xs []float64) float64 {
	out := m.Coef[0]
	for i, x := range xs {
		if i+1 < len(m.Coef) {
			out += m.Coef[i+1] * x
		}
	}
	return out
}

func solveGauss(aug [][]float64) ([]float64, error) {
	n := len(aug)
	for i := 0; i < n; i++ {
		// Partial pivot.
		max := i
		for r := i + 1; r < n; r++ {
			if math.Abs(aug[r][i]) > math.Abs(aug[max][i]) {
				max = r
			}
		}
		aug[i], aug[max] = aug[max], aug[i]
		if math.Abs(aug[i][i]) < 1e-12 {
			return nil, errors.New("analytics: singular design matrix")
		}
		for r := i + 1; r < n; r++ {
			f := aug[r][i] / aug[i][i]
			for c := i; c <= n; c++ {
				aug[r][c] -= f * aug[i][c]
			}
		}
	}
	out := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := aug[i][n]
		for c := i + 1; c < n; c++ {
			s -= aug[i][c] * out[c]
		}
		out[i] = s / aug[i][i]
	}
	return out, nil
}
