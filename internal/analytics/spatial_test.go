package analytics

import (
	"math"
	"testing"

	"repro/internal/geo"
)

var spatialCenter = geo.LatLon{Lat: 63.4305, Lon: 10.3951}

func ring(n int, radius float64, base, amp float64) []SensorReading {
	out := make([]SensorReading, n)
	for i := 0; i < n; i++ {
		brg := float64(i) * 360 / float64(n)
		out[i] = SensorReading{
			ID:    string(rune('a' + i)),
			Pos:   geo.Destination(spatialCenter, brg, radius),
			Value: base + amp*math.Sin(brg*math.Pi/180),
		}
	}
	return out
}

func TestInterpolateIDWExactAtSensors(t *testing.T) {
	readings := ring(6, 1000, 420, 15)
	surf, err := InterpolateIDW(readings, 100, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range readings {
		got, ok := surf.At(r.Pos)
		if !ok {
			t.Fatalf("sensor %s outside surface", r.ID)
		}
		// IDW is exact at sample points; grid discretization costs a
		// little.
		if math.Abs(got-r.Value) > 6 {
			t.Fatalf("surface at %s = %v, sensor %v", r.ID, got, r.Value)
		}
	}
}

func TestInterpolateIDWBounded(t *testing.T) {
	readings := ring(8, 1200, 420, 20)
	surf, err := InterpolateIDW(readings, 150, 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := surf.MinMax()
	var vLo, vHi float64 = math.Inf(1), math.Inf(-1)
	for _, r := range readings {
		vLo = math.Min(vLo, r.Value)
		vHi = math.Max(vHi, r.Value)
	}
	// IDW never extrapolates beyond the sample range.
	if lo < vLo-1e-9 || hi > vHi+1e-9 {
		t.Fatalf("surface [%v,%v] outside readings [%v,%v]", lo, hi, vLo, vHi)
	}
}

func TestInterpolateIDWCenterIsBlend(t *testing.T) {
	// Two sensors, equidistant center → mean value.
	readings := []SensorReading{
		{ID: "a", Pos: geo.Destination(spatialCenter, 90, 800), Value: 400},
		{ID: "b", Pos: geo.Destination(spatialCenter, 270, 800), Value: 500},
	}
	surf, err := InterpolateIDW(readings, 50, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := surf.At(spatialCenter)
	if !ok {
		t.Fatal("center outside surface")
	}
	if math.Abs(got-450) > 15 {
		t.Fatalf("midpoint value %v, want ~450", got)
	}
}

func TestInterpolateIDWErrors(t *testing.T) {
	if _, err := InterpolateIDW(nil, 100, 100, 2); err != ErrNoReadings {
		t.Fatalf("empty input: %v", err)
	}
}

func TestSurfaceAtOutside(t *testing.T) {
	readings := ring(4, 500, 420, 5)
	surf, _ := InterpolateIDW(readings, 100, 100, 2)
	if _, ok := surf.At(geo.Destination(spatialCenter, 0, 50000)); ok {
		t.Fatal("far point should be outside")
	}
}

func TestSurfaceCellCenterRoundTrip(t *testing.T) {
	readings := ring(4, 500, 420, 5)
	surf, _ := InterpolateIDW(readings, 100, 100, 2)
	p := surf.CellCenter(2, 3)
	v, ok := surf.At(p)
	if !ok {
		t.Fatal("cell center outside surface")
	}
	if v != surf.Values[3*surf.NX+2] {
		t.Fatal("cell center lookup mismatch")
	}
}

func TestCrossValidateIDW(t *testing.T) {
	// Smooth field: CV should predict well.
	readings := ring(12, 1000, 420, 10)
	rep, err := CrossValidateIDW(readings, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MAE > 8 {
		t.Fatalf("CV MAE %v too high for a smooth field", rep.MAE)
	}
	// Sparse network: CV degrades (the density-accuracy trade-off).
	sparse := ring(3, 1500, 420, 10)
	rep2, err := CrossValidateIDW(sparse, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.MAE < rep.MAE {
		t.Fatalf("sparser network should cross-validate worse: %v vs %v", rep2.MAE, rep.MAE)
	}
	if _, err := CrossValidateIDW(ring(2, 500, 400, 5), 2); err != ErrNotEnoughData {
		t.Fatalf("too few readings: %v", err)
	}
}
