package analytics

import (
	"errors"
	"math"

	"repro/internal/geo"
)

// Spatial interpolation — the paper's future work: "with more data
// collected, we will be able to tune models for emission distribution
// and dispersion ... and provide improved analysis with better models"
// (§4). The dense low-cost network's whole premise is spatial coverage;
// this turns point measurements into a city-wide surface.

// SensorReading is one sensor's current value at its site.
type SensorReading struct {
	ID    string
	Pos   geo.LatLon
	Value float64
}

// Surface is an interpolated concentration field on a regular grid.
type Surface struct {
	// Origin is the south-west corner; cells go east (X) and north (Y).
	Origin geo.LatLon
	// CellM is the cell size in meters.
	CellM float64
	// NX, NY are the grid dimensions.
	NX, NY int
	// Values[y*NX+x] is the interpolated value at the cell center.
	Values []float64
}

// At returns the surface value at a geographic point (nearest cell),
// and false outside the grid.
func (s *Surface) At(p geo.LatLon) (float64, bool) {
	enu := geo.NewENU(s.Origin)
	x, y := enu.Forward(p)
	cx := int(x / s.CellM)
	cy := int(y / s.CellM)
	if cx < 0 || cy < 0 || cx >= s.NX || cy >= s.NY {
		return 0, false
	}
	return s.Values[cy*s.NX+cx], true
}

// CellCenter returns the geographic center of cell (x, y).
func (s *Surface) CellCenter(x, y int) geo.LatLon {
	enu := geo.NewENU(s.Origin)
	return enu.Inverse((float64(x)+0.5)*s.CellM, (float64(y)+0.5)*s.CellM)
}

// MinMax returns the value range.
func (s *Surface) MinMax() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range s.Values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

// ErrNoReadings is returned when interpolation has no inputs.
var ErrNoReadings = errors.New("analytics: no sensor readings")

// InterpolateIDW builds a surface by inverse-distance-weighted
// interpolation (power p, typically 2) of the sensor readings over a
// bounding box padded by padM meters with the given cell size.
//
// IDW is the standard baseline for sparse urban sensor interpolation:
// exact at the sensor sites, smooth elsewhere, no tuning data needed —
// matching the paper's stage of "prototype different analysis
// approaches on top of the sensor streams".
func InterpolateIDW(readings []SensorReading, cellM, padM, power float64) (*Surface, error) {
	if len(readings) == 0 {
		return nil, ErrNoReadings
	}
	if cellM <= 0 {
		cellM = 100
	}
	if power <= 0 {
		power = 2
	}
	var pts []geo.LatLon
	for _, r := range readings {
		pts = append(pts, r.Pos)
	}
	box := geo.NewBBox(pts...).Pad(padM)
	origin := geo.LatLon{Lat: box.MinLat, Lon: box.MinLon}
	enu := geo.NewENU(origin)
	maxX, maxY := enu.Forward(geo.LatLon{Lat: box.MaxLat, Lon: box.MaxLon})
	nx := int(math.Ceil(maxX / cellM))
	ny := int(math.Ceil(maxY / cellM))
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	// Precompute sensor positions in the local frame.
	sx := make([]float64, len(readings))
	sy := make([]float64, len(readings))
	for i, r := range readings {
		sx[i], sy[i] = enu.Forward(r.Pos)
	}
	surf := &Surface{Origin: origin, CellM: cellM, NX: nx, NY: ny, Values: make([]float64, nx*ny)}
	for cy := 0; cy < ny; cy++ {
		for cx := 0; cx < nx; cx++ {
			px := (float64(cx) + 0.5) * cellM
			py := (float64(cy) + 0.5) * cellM
			var num, den float64
			exact := false
			for i, r := range readings {
				d := math.Hypot(px-sx[i], py-sy[i])
				if d < 1 {
					surf.Values[cy*nx+cx] = r.Value
					exact = true
					break
				}
				w := 1 / math.Pow(d, power)
				num += w * r.Value
				den += w
			}
			if !exact {
				surf.Values[cy*nx+cx] = num / den
			}
		}
	}
	return surf, nil
}

// CrossValidateIDW leave-one-out cross-validates the interpolation:
// each sensor is predicted from the others; the returned report
// quantifies how well the network density supports spatial inference
// (the paper's density-vs-accuracy trade-off).
func CrossValidateIDW(readings []SensorReading, power float64) (AccuracyReport, error) {
	if len(readings) < 3 {
		return AccuracyReport{}, ErrNotEnoughData
	}
	if power <= 0 {
		power = 2
	}
	var absSum, sqSum, biasSum float64
	var preds, truth []float64
	for i, target := range readings {
		var num, den float64
		for j, other := range readings {
			if j == i {
				continue
			}
			d := geo.Distance(target.Pos, other.Pos)
			if d < 1 {
				d = 1
			}
			w := 1 / math.Pow(d, power)
			num += w * other.Value
			den += w
		}
		pred := num / den
		e := pred - target.Value
		absSum += math.Abs(e)
		sqSum += e * e
		biasSum += e
		preds = append(preds, pred)
		truth = append(truth, target.Value)
	}
	n := float64(len(readings))
	r, err := Pearson(preds, truth)
	if err != nil {
		return AccuracyReport{}, err
	}
	return AccuracyReport{
		MAE:  absSum / n,
		RMSE: math.Sqrt(sqSum / n),
		Bias: biasSum / n,
		R:    r,
	}, nil
}
