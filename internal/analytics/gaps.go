package analytics

import (
	"time"

	"repro/internal/integrate"
)

// Gap handling (§2.2: "the usual issues of missing data ... being
// handled by standard methods in the analyses").

// Gap is one detected hole in a series.
type Gap struct {
	Start, End time.Time
	// Missing is the number of expected samples not observed.
	Missing int
}

// DetectGaps finds holes in a series with nominal sample interval
// `interval`: any consecutive pair of samples more than 1.5 intervals
// apart is a gap.
func DetectGaps(ts integrate.TimeSeries, interval time.Duration) []Gap {
	var gaps []Gap
	thresh := interval + interval/2
	for i := 1; i < len(ts.Samples); i++ {
		dt := ts.Samples[i].Time.Sub(ts.Samples[i-1].Time)
		if dt > thresh {
			gaps = append(gaps, Gap{
				Start:   ts.Samples[i-1].Time,
				End:     ts.Samples[i].Time,
				Missing: int(dt/interval) - 1,
			})
		}
	}
	return gaps
}

// Completeness returns the fraction of expected samples present over
// the series span at the nominal interval.
func Completeness(ts integrate.TimeSeries, interval time.Duration) float64 {
	start, end, ok := ts.Span()
	if !ok || interval <= 0 {
		return 0
	}
	expected := int(end.Sub(start)/interval) + 1
	if expected <= 0 {
		return 0
	}
	f := float64(len(ts.Samples)) / float64(expected)
	if f > 1 {
		f = 1
	}
	return f
}

// ImputeMethod selects the gap-filling strategy.
type ImputeMethod int

// Imputation methods.
const (
	// ImputeLinear interpolates linearly across the gap.
	ImputeLinear ImputeMethod = iota
	// ImputeLOCF carries the last observation forward.
	ImputeLOCF
	// ImputeDiurnal fills with the mean of same-time-of-day samples
	// observed elsewhere in the series — right for strongly diurnal
	// quantities like CO2 or traffic.
	ImputeDiurnal
)

// Impute fills gaps onto a regular grid at the given interval and
// returns the completed series. Samples outside gaps are preserved.
func Impute(ts integrate.TimeSeries, interval time.Duration, method ImputeMethod) integrate.TimeSeries {
	start, end, ok := ts.Span()
	if !ok {
		return ts
	}
	// Index existing samples by grid slot.
	byTime := make(map[int64]float64, len(ts.Samples))
	for _, s := range ts.Samples {
		byTime[s.Time.Unix()/int64(interval.Seconds())] = s.Value
	}
	// Diurnal profile if needed.
	var profile map[int][]float64
	if method == ImputeDiurnal {
		profile = map[int][]float64{}
		for _, s := range ts.Samples {
			slot := s.Time.Hour()
			profile[slot] = append(profile[slot], s.Value)
		}
	}

	out := integrate.TimeSeries{Name: ts.Name, Unit: ts.Unit}
	var lastVal float64
	var lastObs time.Time
	haveLast := false
	for t := start; !t.After(end); t = t.Add(interval) {
		key := t.Unix() / int64(interval.Seconds())
		if v, ok := byTime[key]; ok {
			out.Samples = append(out.Samples, integrate.Sample{Time: t, Value: v})
			lastVal, lastObs, haveLast = v, t, true
			continue
		}
		var v float64
		switch method {
		case ImputeLOCF:
			if !haveLast {
				continue
			}
			v = lastVal
		case ImputeDiurnal:
			hs := profile[t.Hour()]
			if len(hs) == 0 {
				if !haveLast {
					continue
				}
				v = lastVal
			} else {
				v = Mean(hs)
			}
		default: // linear between the last and next observed samples
			next, okNext := nextKnown(ts.Samples, t)
			if !haveLast || !okNext {
				continue
			}
			span := next.Time.Sub(lastObs).Seconds()
			if span <= 0 {
				v = lastVal
			} else {
				frac := t.Sub(lastObs).Seconds() / span
				v = lastVal + frac*(next.Value-lastVal)
			}
		}
		out.Samples = append(out.Samples, integrate.Sample{Time: t, Value: v})
	}
	return out
}

func nextKnown(samples []integrate.Sample, after time.Time) (integrate.Sample, bool) {
	for _, s := range samples {
		if s.Time.After(after) {
			return s, true
		}
	}
	return integrate.Sample{}, false
}
