package analytics

import (
	"math"
	"time"

	"repro/internal/integrate"
)

// CO2 dynamics — the paper's Fig. 5: "Dynamics of CO2 emissions and
// possible links to traffic in the form of a traffic jam factor ...
// we can conclude for this sensor location that traffic is not the
// only factor that accounts for the dynamics of the CO2 emission as
// they exhibit different patterns, and have no apparent correlation."

// DiurnalProfile is a mean-by-hour-of-day summary (the "pattern" panel
// of Fig. 5).
type DiurnalProfile struct {
	// Hours[h] is the mean value in hour-of-day h (0..23); NaN when
	// the hour was never observed.
	Hours [24]float64
	// Counts[h] is the number of samples behind Hours[h].
	Counts [24]int
}

// Diurnal computes the profile of a series.
func Diurnal(ts integrate.TimeSeries) DiurnalProfile {
	var sums [24]float64
	var p DiurnalProfile
	for _, s := range ts.Samples {
		h := s.Time.Hour()
		sums[h] += s.Value
		p.Counts[h]++
	}
	for h := 0; h < 24; h++ {
		if p.Counts[h] > 0 {
			p.Hours[h] = sums[h] / float64(p.Counts[h])
		}
	}
	return p
}

// PeakHour returns the hour with the highest mean.
func (p DiurnalProfile) PeakHour() int {
	best := 0
	for h := 1; h < 24; h++ {
		if p.Counts[h] > 0 && (p.Counts[best] == 0 || p.Hours[h] > p.Hours[best]) {
			best = h
		}
	}
	return best
}

// DynamicsStudy is the Fig. 5 analysis result for one sensor location.
type DynamicsStudy struct {
	// CO2Profile and TrafficProfile are the two diurnal patterns shown
	// side by side in the figure.
	CO2Profile     DiurnalProfile
	TrafficProfile DiurnalProfile
	// PearsonR / SpearmanR are the raw correlations between the
	// aligned series — the paper's "no apparent correlation".
	PearsonR  float64
	SpearmanR float64
	// CrossCorr holds lagged correlations (lag in steps of the aligned
	// grid, index = lag + MaxLagSteps).
	CrossCorr   []float64
	MaxLagSteps int
	BestLag     int
	BestLagR    float64
	// Attribution is the multi-factor regression of CO2 on traffic,
	// temperature, wind, and diurnal harmonics — the "many factors"
	// the paper points to. R2Traffic is the single-factor baseline.
	R2Traffic float64
	R2Full    float64
}

// StudyDynamics aligns a CO2 series with a traffic jam-factor series
// and the weather covariates, then reproduces the Fig. 5 analysis.
// All series must already be on a common grid (integrate.Align) with
// no NaNs (integrate.DropNaN).
func StudyDynamics(co2, jam integrate.TimeSeries, temperature, wind integrate.TimeSeries, maxLagSteps int) (DynamicsStudy, error) {
	n := len(co2.Samples)
	if n < maxLagSteps+4 {
		return DynamicsStudy{}, ErrNotEnoughData
	}
	if len(jam.Samples) != n || len(temperature.Samples) != n || len(wind.Samples) != n {
		return DynamicsStudy{}, ErrLengthMismatch
	}

	study := DynamicsStudy{
		CO2Profile:     Diurnal(co2),
		TrafficProfile: Diurnal(jam),
		MaxLagSteps:    maxLagSteps,
	}

	co2v, jamv := co2.Values(), jam.Values()
	var err error
	if study.PearsonR, err = Pearson(co2v, jamv); err != nil {
		return study, err
	}
	if study.SpearmanR, err = Spearman(co2v, jamv); err != nil {
		return study, err
	}
	if study.CrossCorr, err = CrossCorrelation(jamv, co2v, maxLagSteps); err != nil {
		return study, err
	}
	study.BestLag, study.BestLagR = BestLag(study.CrossCorr)

	// Single-factor baseline: CO2 ~ jam.
	if fit, err := FitLine(jamv, co2v); err == nil {
		study.R2Traffic = fit.R2
	}

	// Full model: CO2 ~ jam + temperature + wind + sin/cos(hour).
	sinH := make([]float64, n)
	cosH := make([]float64, n)
	for i, s := range co2.Samples {
		h := float64(s.Time.Hour()) + float64(s.Time.Minute())/60
		sinH[i] = sinTurn(h / 24)
		cosH[i] = cosTurn(h / 24)
	}
	full, err := FitMulti([][]float64{
		jamv, temperature.Values(), wind.Values(), sinH, cosH,
	}, co2v)
	if err == nil {
		study.R2Full = full.R2
	}
	return study, nil
}

// NoApparentCorrelation applies the paper's reading of Fig. 5: the raw
// linear association between CO2 and the jam factor is weak.
func (s DynamicsStudy) NoApparentCorrelation() bool {
	return math.Abs(s.PearsonR) < 0.35
}

// sinTurn/cosTurn evaluate sin/cos of a full turn fraction.
func sinTurn(frac float64) float64 { return math.Sin(2 * math.Pi * frac) }
func cosTurn(frac float64) float64 { return math.Cos(2 * math.Pi * frac) }

// ExtractHourSeries converts a TSDB-style aligned series into hour-of-
// day predictors. (Exposed for reuse by benches.)
func ExtractHourSeries(ts integrate.TimeSeries) (sinH, cosH []float64) {
	n := len(ts.Samples)
	sinH = make([]float64, n)
	cosH = make([]float64, n)
	for i, s := range ts.Samples {
		h := float64(s.Time.Hour()) + float64(s.Time.Minute())/60
		sinH[i] = sinTurn(h / 24)
		cosH[i] = cosTurn(h / 24)
	}
	return sinH, cosH
}

// WeekdayMask returns which samples fall on weekdays — used to study
// weekday/weekend contrasts in the dashboards.
func WeekdayMask(ts integrate.TimeSeries) []bool {
	out := make([]bool, len(ts.Samples))
	for i, s := range ts.Samples {
		wd := s.Time.Weekday()
		out[i] = wd != time.Saturday && wd != time.Sunday
	}
	return out
}
