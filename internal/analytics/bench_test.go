package analytics

import (
	"math"
	"testing"
	"time"

	"repro/internal/integrate"
)

func benchSeries(n int) integrate.TimeSeries {
	ts := integrate.TimeSeries{Name: "b"}
	start := time.Date(2017, time.March, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		ts.Samples = append(ts.Samples, integrate.Sample{
			Time:  start.Add(time.Duration(i) * 5 * time.Minute),
			Value: 410 + 20*math.Sin(float64(i)/40) + float64(i%7),
		})
	}
	return ts
}

func BenchmarkPearson(b *testing.B) {
	xs := benchSeries(4032).Values() // 14 days at 5 min
	ys := benchSeries(4032).Values()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Pearson(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpearman(b *testing.B) {
	xs := benchSeries(4032).Values()
	ys := benchSeries(4032).Values()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Spearman(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrossCorrelation(b *testing.B) {
	xs := benchSeries(336).Values() // 14 days hourly
	ys := benchSeries(336).Values()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CrossCorrelation(xs, ys, 12); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitMulti(b *testing.B) {
	n := 336
	ys := benchSeries(n).Values()
	xss := make([][]float64, 5)
	for k := range xss {
		xss[k] = make([]float64, n)
		for i := range xss[k] {
			xss[k][i] = math.Sin(float64(i)/float64(10+k)) + float64((i*k)%5)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitMulti(xss, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkImpute(b *testing.B) {
	ts := benchSeries(4032)
	// Punch holes.
	kept := ts.Samples[:0]
	for i, s := range ts.Samples {
		if i%10 != 3 && (i < 1000 || i > 1100) {
			kept = append(kept, s)
		}
	}
	ts.Samples = kept
	for _, m := range []struct {
		name   string
		method ImputeMethod
	}{{"linear", ImputeLinear}, {"locf", ImputeLOCF}, {"diurnal", ImputeDiurnal}} {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := Impute(ts, 5*time.Minute, m.method)
				if len(out.Samples) <= len(ts.Samples) {
					b.Fatal("no imputation happened")
				}
			}
		})
	}
}

func BenchmarkDetectOutliers(b *testing.B) {
	ts := benchSeries(4032)
	ts.Samples[100].Value = 2000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := DetectOutliers(ts, 3.5); len(out) == 0 {
			b.Fatal("spike not found")
		}
	}
}

func BenchmarkCAQI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CAQI(float64(i%300), float64(i%150), float64(i%80))
	}
}
