package analytics

import (
	"math"
	"testing"
	"time"

	"repro/internal/integrate"
)

const (
	tLat = 63.4305
	tLon = 10.3951
)

// syntheticBatterySeries builds a battery level trace with solar
// charging structure: +0.5%/sample during 09-15 UTC, -0.2% otherwise.
func syntheticBatterySeries(days int) integrate.TimeSeries {
	ts := integrate.TimeSeries{Name: "batt", Unit: "%"}
	level := 70.0
	start := time.Date(2017, time.June, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < days*288; i++ {
		tm := start.Add(time.Duration(i) * 5 * time.Minute)
		h := tm.Hour()
		if h >= 9 && h < 15 {
			level += 0.5
		} else {
			level -= 0.2
		}
		level = math.Max(0, math.Min(100, level))
		ts.Samples = append(ts.Samples, integrate.Sample{Time: tm, Value: level})
	}
	return ts
}

func TestAnalyzeBatteryFig4(t *testing.T) {
	levels := syntheticBatterySeries(3)
	res, err := AnalyzeBattery("node-1", levels, tLat, tLon)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deltas) != len(levels.Samples)-1 {
		t.Fatalf("deltas: %d", len(res.Deltas))
	}
	// The Fig 4 separation: sunlit deltas must average above dark ones.
	if res.MeanDeltaSunlit <= res.MeanDeltaDark {
		t.Fatalf("sunlit mean delta %v not above dark %v", res.MeanDeltaSunlit, res.MeanDeltaDark)
	}
	// Midsummer Trondheim daylight covers the charging hours, so the
	// sunlit mean must be positive (net charging).
	if res.MeanDeltaSunlit <= 0 {
		t.Fatalf("sunlit delta should be positive: %v", res.MeanDeltaSunlit)
	}
	// Discharge estimable and finite.
	if res.DischargeRatePerHour <= 0 {
		t.Fatalf("discharge rate: %v", res.DischargeRatePerHour)
	}
	if math.IsInf(res.HoursToEmpty, 1) || res.HoursToEmpty <= 0 {
		t.Fatalf("hours to empty: %v", res.HoursToEmpty)
	}
	if _, err := AnalyzeBattery("x", integrate.TimeSeries{}, tLat, tLon); err != ErrNotEnoughData {
		t.Fatalf("empty input: %v", err)
	}
}

func TestBatteryDeltaSunlitClassification(t *testing.T) {
	// Midwinter at Trondheim latitude: ~4 dark afternoon hours.
	ts := integrate.TimeSeries{Name: "b"}
	start := time.Date(2017, time.December, 21, 10, 0, 0, 0, time.UTC)
	for i := 0; i < 12*6; i++ { // 10:00 → 22:00
		ts.Samples = append(ts.Samples, integrate.Sample{
			Time: start.Add(time.Duration(i) * 10 * time.Minute), Value: 50,
		})
	}
	res, err := AnalyzeBattery("w", ts, tLat, tLon)
	if err != nil {
		t.Fatal(err)
	}
	var litCount, darkCount int
	for _, d := range res.Deltas {
		if d.Sunlit {
			litCount++
		} else {
			darkCount++
		}
	}
	if litCount == 0 || darkCount == 0 {
		t.Fatalf("expected both sunlit and dark deltas in a winter day: lit=%d dark=%d", litCount, darkCount)
	}
}

// syntheticDynamics builds CO2 and jam series where CO2 is driven by
// heating + diurnal mixing + a weak traffic term — the Fig. 5 regime.
func syntheticDynamics(days int) (co2, jam, temp, wind integrate.TimeSeries) {
	start := time.Date(2017, time.March, 6, 0, 0, 0, 0, time.UTC)
	for i := 0; i < days*24; i++ {
		tm := start.Add(time.Duration(i) * time.Hour)
		h := float64(tm.Hour())
		weekend := tm.Weekday() == time.Saturday || tm.Weekday() == time.Sunday
		j := 1.2*math.Exp(-0.5*math.Pow((h-8)/1.5, 2)) + 1.6*math.Exp(-0.5*math.Pow((h-16.5)/2, 2))
		if weekend {
			j *= 0.3
		}
		// Synoptic term keeps temperature from being an exact linear
		// combination of the diurnal harmonics (which would make the
		// regression design matrix singular).
		temperature := 2 + 4*math.Sin(2*math.Pi*(h-15)/24) + 3*math.Sin(float64(i)/23)
		windSpeed := 3 + 1.5*math.Sin(float64(i)/17)
		// CO2: nocturnal accumulation dominates; weak traffic term.
		mixing := 1.0 + 0.8*math.Max(0, math.Sin(2*math.Pi*(h-6)/24))
		co2v := 410 + 25/mixing + 8*math.Max(0, (10-temperature))/10 + 1.5*j + 2*math.Sin(float64(i)/11)
		co2.Samples = append(co2.Samples, integrate.Sample{Time: tm, Value: co2v})
		jam.Samples = append(jam.Samples, integrate.Sample{Time: tm, Value: j})
		temp.Samples = append(temp.Samples, integrate.Sample{Time: tm, Value: temperature})
		wind.Samples = append(wind.Samples, integrate.Sample{Time: tm, Value: windSpeed})
	}
	return co2, jam, temp, wind
}

func TestStudyDynamicsFig5(t *testing.T) {
	co2, jam, temp, wind := syntheticDynamics(14)
	study, err := StudyDynamics(co2, jam, temp, wind, 6)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline finding: no apparent raw correlation.
	if !study.NoApparentCorrelation() {
		t.Fatalf("raw CO2~jam correlation unexpectedly strong: r=%v", study.PearsonR)
	}
	// The profiles must differ in shape: traffic peaks at rush hours,
	// CO2 peaks overnight/morning under the shallow mixing layer.
	trafficPeak := study.TrafficProfile.PeakHour()
	co2Peak := study.CO2Profile.PeakHour()
	if trafficPeak == co2Peak {
		t.Fatalf("profiles should exhibit different patterns: both peak at %d", trafficPeak)
	}
	// The multi-factor model must explain far more variance than the
	// traffic-only model — "CO2 emission dynamic is a more complex
	// issue that may be affected by many factors".
	if study.R2Full < study.R2Traffic+0.2 {
		t.Fatalf("full model R2 %v should clearly beat traffic-only %v", study.R2Full, study.R2Traffic)
	}
	if len(study.CrossCorr) != 13 {
		t.Fatalf("cross-correlation lags: %d", len(study.CrossCorr))
	}
}

func TestStudyDynamicsErrors(t *testing.T) {
	co2, jam, temp, wind := syntheticDynamics(1)
	if _, err := StudyDynamics(co2, jam, temp, wind, 30); err != ErrNotEnoughData {
		t.Fatalf("short series: %v", err)
	}
	short := integrate.TimeSeries{Samples: co2.Samples[:5]}
	if _, err := StudyDynamics(co2, short, temp, wind, 2); err != ErrLengthMismatch {
		t.Fatalf("mismatch: %v", err)
	}
}

func TestWeekdayMask(t *testing.T) {
	ts := integrate.TimeSeries{}
	// March 6 2017 is a Monday; March 11 a Saturday.
	ts.Samples = append(ts.Samples,
		integrate.Sample{Time: time.Date(2017, 3, 6, 12, 0, 0, 0, time.UTC)},
		integrate.Sample{Time: time.Date(2017, 3, 11, 12, 0, 0, 0, time.UTC)},
	)
	mask := WeekdayMask(ts)
	if !mask[0] || mask[1] {
		t.Fatalf("mask: %v", mask)
	}
}
