package citygml

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geo"
)

var vejle = geo.LatLon{Lat: 55.7113, Lon: 9.5363}

func square(center geo.LatLon, sideM float64) []geo.LatLon {
	enu := geo.NewENU(center)
	h := sideM / 2
	return []geo.LatLon{
		enu.Inverse(-h, -h), enu.Inverse(h, -h), enu.Inverse(h, h), enu.Inverse(-h, h),
	}
}

func TestBuildingGeometry(t *testing.T) {
	b := Building{ID: "b1", Footprint: square(vejle, 20), HeightM: 10}
	if area := b.FootprintAreaM2(); math.Abs(area-400) > 1 {
		t.Fatalf("area = %v, want ~400", area)
	}
	if vol := b.VolumeM3(); math.Abs(vol-4000) > 10 {
		t.Fatalf("volume = %v, want ~4000", vol)
	}
	c := b.Centroid()
	if geo.Distance(c, vejle) > 1 {
		t.Fatalf("centroid off by %v m", geo.Distance(c, vejle))
	}
	if !b.Contains(vejle) {
		t.Fatal("center must be inside")
	}
	outside := geo.Destination(vejle, 90, 50)
	if b.Contains(outside) {
		t.Fatal("point 50m away must be outside")
	}
}

func TestModelValidation(t *testing.T) {
	m := NewModel("test")
	if err := m.AddBuilding(Building{ID: "x", Footprint: square(vejle, 10)[:2], HeightM: 5}); err != ErrBadFootprint {
		t.Fatalf("footprint: %v", err)
	}
	if err := m.AddBuilding(Building{ID: "x", Footprint: square(vejle, 10), HeightM: 0}); err != ErrBadHeight {
		t.Fatalf("height: %v", err)
	}
	if err := m.AddBuilding(Building{ID: "x", Footprint: square(vejle, 10), HeightM: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateCityStructure(t *testing.T) {
	m := GenerateCity("vejle", vejle, 1500, 7)
	st := m.Stats()
	if st.Buildings < 100 {
		t.Fatalf("city too sparse: %d buildings", st.Buildings)
	}
	if st.ByFunction[Residential] == 0 || st.ByFunction[Commercial] == 0 || st.ByFunction[Industrial] == 0 {
		t.Fatalf("functions missing: %v", st.ByFunction)
	}
	if st.MeanHeightM < 5 || st.MeanHeightM > 40 {
		t.Fatalf("mean height implausible: %v", st.MeanHeightM)
	}
	// Downtown must be denser than the outskirts.
	downtown := m.Density(vejle, 400)
	outskirts := m.Density(geo.Destination(vejle, 0, 1300), 400)
	if downtown <= outskirts {
		t.Fatalf("downtown density %v not above outskirts %v", downtown, outskirts)
	}
}

func TestGenerateCityDeterministic(t *testing.T) {
	a := GenerateCity("v", vejle, 1000, 3)
	b := GenerateCity("v", vejle, 1000, 3)
	if len(a.Buildings) != len(b.Buildings) {
		t.Fatal("same seed must reproduce")
	}
	if a.Buildings[5].HeightM != b.Buildings[5].HeightM {
		t.Fatal("heights differ across same-seed runs")
	}
}

func TestBuildingsNearAndAt(t *testing.T) {
	m := GenerateCity("v", vejle, 1200, 9)
	near := m.BuildingsNear(vejle, 300)
	if len(near) == 0 {
		t.Fatal("no buildings downtown")
	}
	// BuildingAt: use a building centroid.
	target := &m.Buildings[0]
	got := m.BuildingAt(target.Centroid())
	if got == nil {
		t.Fatal("centroid lookup failed")
	}
	if got.ID != target.ID && !got.Contains(target.Centroid()) {
		t.Fatalf("wrong building: %s", got.ID)
	}
	// Far away: nothing.
	if m.BuildingAt(geo.Destination(vejle, 0, 50000)) != nil {
		t.Fatal("remote point should hit nothing")
	}
}

func TestSensorEmbedding(t *testing.T) {
	m := GenerateCity("v", vejle, 800, 11)
	m.AddSensor(MeasuringPoint{ID: "node-1", Pos: vejle, HeightM: 3, Species: "co2", Value: 415})
	m.AddSensor(MeasuringPoint{ID: "node-2", Pos: geo.Destination(vejle, 90, 300), HeightM: 3, Species: "co2", Value: 430})
	if !m.UpdateSensorValue("node-1", 999) {
		t.Fatal("update failed")
	}
	if m.UpdateSensorValue("nope", 1) {
		t.Fatal("unknown sensor update should fail")
	}
	if m.Sensors[0].Value != 999 {
		t.Fatalf("value not updated: %v", m.Sensors[0].Value)
	}
	if m.Stats().SensorPoints != 2 {
		t.Fatalf("sensor count: %d", m.Stats().SensorPoints)
	}
}

func TestGMLRoundTrip(t *testing.T) {
	m := NewModel("vejle-test")
	if err := m.AddBuilding(Building{
		ID: "b1", Function: Commercial, Footprint: square(vejle, 30), HeightM: 18,
	}); err != nil {
		t.Fatal(err)
	}
	m.AddSensor(MeasuringPoint{ID: "s1", Pos: vejle, HeightM: 2.5, Species: "co2", Value: 412.5})

	data, err := m.ExportGML()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{"CityModel", "Building", "measuredHeight", "cityFurniture", "co2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("GML missing %q:\n%s", want, s[:min(400, len(s))])
		}
	}

	back, err := ParseGML(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "vejle-test" || len(back.Buildings) != 1 || len(back.Sensors) != 1 {
		t.Fatalf("round trip: %+v", back)
	}
	b := back.Buildings[0]
	if b.ID != "b1" || b.Function != Commercial || b.HeightM != 18 || len(b.Footprint) != 4 {
		t.Fatalf("building: %+v", b)
	}
	if math.Abs(b.FootprintAreaM2()-900) > 5 {
		t.Fatalf("area after round trip: %v", b.FootprintAreaM2())
	}
	sn := back.Sensors[0]
	if sn.ID != "s1" || sn.Value != 412.5 || sn.HeightM != 2.5 {
		t.Fatalf("sensor: %+v", sn)
	}
	if _, err := ParseGML([]byte("<bad")); err == nil {
		t.Fatal("bad XML should fail")
	}
}

func TestSortBuildingsByHeight(t *testing.T) {
	m := GenerateCity("v", vejle, 800, 13)
	m.SortBuildingsByHeight()
	for i := 1; i < len(m.Buildings); i++ {
		if m.Buildings[i].HeightM > m.Buildings[i-1].HeightM {
			t.Fatal("not sorted by height")
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
