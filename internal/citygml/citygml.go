// Package citygml implements the 3D city model integration of the
// paper's Fig. 7 and Table 1 ("Municipal 3D model of Vejle —
// integration into existing visualization tools. Use of city geometry
// in future emission modeling"): an LOD1 CityGML-style model in which
// each building is an extruded footprint polygon with a height,
// a synthetic city generator standing in for the municipal model,
// CityGML XML export, spatial queries over the building stock, and
// embedding of sensor measuring points with pollution colouring.
package citygml

import (
	"encoding/xml"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geo"
)

// BuildingFunction classifies a building's use.
type BuildingFunction string

// Building functions (CityGML code-list style).
const (
	Residential BuildingFunction = "residential"
	Commercial  BuildingFunction = "commercial"
	Industrial  BuildingFunction = "industrial"
	Public      BuildingFunction = "public"
)

// Building is one LOD1 building: a footprint ring extruded to a height.
type Building struct {
	ID       string
	Function BuildingFunction
	// Footprint is a closed ring (first point not repeated) in
	// geographic coordinates, wound counter-clockwise.
	Footprint []geo.LatLon
	// HeightM is the extrusion height above ground.
	HeightM float64
}

// Centroid returns the footprint centroid.
func (b *Building) Centroid() geo.LatLon {
	var lat, lon float64
	for _, p := range b.Footprint {
		lat += p.Lat
		lon += p.Lon
	}
	n := float64(len(b.Footprint))
	return geo.LatLon{Lat: lat / n, Lon: lon / n}
}

// FootprintAreaM2 returns the footprint area via the shoelace formula
// in a local projection.
func (b *Building) FootprintAreaM2() float64 {
	if len(b.Footprint) < 3 {
		return 0
	}
	enu := geo.NewENU(b.Footprint[0])
	var area float64
	n := len(b.Footprint)
	for i := 0; i < n; i++ {
		x1, y1 := enu.Forward(b.Footprint[i])
		x2, y2 := enu.Forward(b.Footprint[(i+1)%n])
		area += x1*y2 - x2*y1
	}
	return math.Abs(area) / 2
}

// VolumeM3 returns the LOD1 volume.
func (b *Building) VolumeM3() float64 { return b.FootprintAreaM2() * b.HeightM }

// Contains reports whether p lies inside the footprint (ray casting in
// the local plane).
func (b *Building) Contains(p geo.LatLon) bool {
	if len(b.Footprint) < 3 {
		return false
	}
	enu := geo.NewENU(b.Footprint[0])
	px, py := enu.Forward(p)
	inside := false
	n := len(b.Footprint)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		xi, yi := enu.Forward(b.Footprint[i])
		xj, yj := enu.Forward(b.Footprint[j])
		if (yi > py) != (yj > py) &&
			px < (xj-xi)*(py-yi)/(yj-yi)+xi {
			inside = !inside
		}
	}
	return inside
}

// Model is a city model: buildings plus embedded measuring points.
type Model struct {
	Name      string
	Buildings []Building
	Sensors   []MeasuringPoint

	grid *geo.Grid
}

// MeasuringPoint is an air-quality sensor embedded in the model
// (Fig. 7: "integrating different measuring points of air quality").
type MeasuringPoint struct {
	ID  string
	Pos geo.LatLon
	// HeightM above ground (mounting height).
	HeightM float64
	// Value is the latest measurement to display (e.g. CO2 ppm).
	Value float64
	// Species labels the displayed value.
	Species string
}

// Errors.
var (
	ErrBadFootprint = errors.New("citygml: footprint needs at least 3 points")
	ErrBadHeight    = errors.New("citygml: height must be positive")
)

// NewModel creates an empty model.
func NewModel(name string) *Model { return &Model{Name: name} }

// AddBuilding validates and adds a building.
func (m *Model) AddBuilding(b Building) error {
	if len(b.Footprint) < 3 {
		return ErrBadFootprint
	}
	if b.HeightM <= 0 {
		return ErrBadHeight
	}
	m.Buildings = append(m.Buildings, b)
	m.grid = nil // invalidate index
	return nil
}

// AddSensor embeds a measuring point.
func (m *Model) AddSensor(s MeasuringPoint) { m.Sensors = append(m.Sensors, s) }

// UpdateSensorValue sets the displayed value of a measuring point.
func (m *Model) UpdateSensorValue(id string, value float64) bool {
	for i := range m.Sensors {
		if m.Sensors[i].ID == id {
			m.Sensors[i].Value = value
			return true
		}
	}
	return false
}

func (m *Model) index() *geo.Grid {
	if m.grid != nil {
		return m.grid
	}
	if len(m.Buildings) == 0 {
		return nil
	}
	m.grid = geo.NewGrid(m.Buildings[0].Centroid(), 250)
	for i := range m.Buildings {
		m.grid.Insert(m.Buildings[i].ID, m.Buildings[i].Centroid())
	}
	return m.grid
}

// BuildingsNear returns buildings whose centroid lies within radius
// meters of p, nearest first.
func (m *Model) BuildingsNear(p geo.LatLon, radius float64) []*Building {
	g := m.index()
	if g == nil {
		return nil
	}
	byID := make(map[string]*Building, len(m.Buildings))
	for i := range m.Buildings {
		byID[m.Buildings[i].ID] = &m.Buildings[i]
	}
	var out []*Building
	for _, n := range g.Within(p, radius) {
		if b, ok := byID[n.ID]; ok {
			out = append(out, b)
		}
	}
	return out
}

// BuildingAt returns the building containing p, or nil.
func (m *Model) BuildingAt(p geo.LatLon) *Building {
	for _, b := range m.BuildingsNear(p, 500) {
		if b.Contains(p) {
			return b
		}
	}
	return nil
}

// Density returns built floor-area density (m² footprint per m²
// ground) within radius of p — the siting heuristic the paper's demo
// discusses ("choosing the sites of air quality monitoring, e.g.,
// according to the road network and building density").
func (m *Model) Density(p geo.LatLon, radius float64) float64 {
	var area float64
	for _, b := range m.BuildingsNear(p, radius) {
		area += b.FootprintAreaM2()
	}
	circle := math.Pi * radius * radius
	if circle <= 0 {
		return 0
	}
	return area / circle
}

// Stats summarizes the building stock.
type Stats struct {
	Buildings    int
	TotalAreaM2  float64
	TotalVolume  float64
	MeanHeightM  float64
	ByFunction   map[BuildingFunction]int
	SensorPoints int
}

// Stats computes model statistics.
func (m *Model) Stats() Stats {
	st := Stats{ByFunction: map[BuildingFunction]int{}, SensorPoints: len(m.Sensors)}
	var hsum float64
	for i := range m.Buildings {
		b := &m.Buildings[i]
		st.Buildings++
		st.TotalAreaM2 += b.FootprintAreaM2()
		st.TotalVolume += b.VolumeM3()
		hsum += b.HeightM
		st.ByFunction[b.Function]++
	}
	if st.Buildings > 0 {
		st.MeanHeightM = hsum / float64(st.Buildings)
	}
	return st
}

// --- synthetic city generator ----------------------------------------

// GenerateCity builds a synthetic municipal model: rectangular blocks
// of buildings on a rotated grid around the center, denser and taller
// downtown, with an industrial pocket — a stand-in for the Vejle
// municipal 3D model. Deterministic per seed.
func GenerateCity(name string, center geo.LatLon, radiusM float64, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel(name)
	enu := geo.NewENU(center)

	id := 0
	addRect := func(cx, cy, w, h, height float64, fn BuildingFunction) {
		id++
		half := []float64{-w / 2, w / 2}
		var ring []geo.LatLon
		for _, dy := range []float64{-h / 2, h / 2} {
			for _, dx := range half {
				ring = append(ring, enu.Inverse(cx+dx, cy+dy))
			}
		}
		// order corners counter-clockwise: (x-,y-), (x+,y-), (x+,y+), (x-,y+)
		ring[2], ring[3] = ring[3], ring[2]
		m.AddBuilding(Building{
			ID:        fmt.Sprintf("bldg-%04d", id),
			Function:  fn,
			Footprint: ring,
			HeightM:   height,
		})
	}

	// Street grid of ~90 m blocks out to the radius.
	step := 90.0
	for x := -radiusM; x <= radiusM; x += step {
		for y := -radiusM; y <= radiusM; y += step {
			d := math.Hypot(x, y)
			if d > radiusM {
				continue
			}
			// Downtown density falls off with distance.
			pBuild := 0.85 - 0.5*d/radiusM
			if rng.Float64() > pBuild {
				continue
			}
			frac := 1 - d/radiusM
			height := 6 + frac*30*rng.Float64() // up to ~36 m downtown
			w := 25 + rng.Float64()*35
			h := 20 + rng.Float64()*30
			fn := Residential
			switch {
			case d < radiusM*0.25 && rng.Float64() < 0.6:
				fn = Commercial
			case rng.Float64() < 0.05:
				fn = Public
			}
			addRect(x+rng.Float64()*20-10, y+rng.Float64()*20-10, w, h, height, fn)
		}
	}
	// Industrial pocket to the east.
	for i := 0; i < 6; i++ {
		addRect(radiusM*0.7+float64(i%3)*120, -radiusM*0.1+float64(i/3)*150,
			80+rng.Float64()*40, 60+rng.Float64()*30, 8+rng.Float64()*6, Industrial)
	}
	return m
}

// --- CityGML export ----------------------------------------------------

// gml document types (a faithful-in-spirit subset of CityGML 2.0 LOD1).
type gmlCityModel struct {
	XMLName xml.Name    `xml:"CityModel"`
	XMLNS   string      `xml:"xmlns,attr"`
	Name    string      `xml:"name"`
	Members []gmlMember `xml:"cityObjectMember"`
}

type gmlMember struct {
	Building *gmlBuilding `xml:"Building,omitempty"`
	Sensor   *gmlSensor   `xml:"cityFurniture,omitempty"`
}

type gmlBuilding struct {
	ID       string  `xml:"id,attr"`
	Function string  `xml:"function"`
	Height   float64 `xml:"measuredHeight"`
	PosList  string  `xml:"lod1Solid>posList"`
}

type gmlSensor struct {
	ID      string  `xml:"id,attr"`
	Species string  `xml:"species"`
	Value   float64 `xml:"value"`
	Pos     string  `xml:"pos"`
}

// ExportGML serializes the model to CityGML-flavoured XML.
func (m *Model) ExportGML() ([]byte, error) {
	doc := gmlCityModel{XMLNS: "http://www.opengis.net/citygml/2.0", Name: m.Name}
	for i := range m.Buildings {
		b := &m.Buildings[i]
		var pos string
		for j, p := range b.Footprint {
			if j > 0 {
				pos += " "
			}
			pos += fmt.Sprintf("%.6f %.6f 0", p.Lat, p.Lon)
		}
		doc.Members = append(doc.Members, gmlMember{Building: &gmlBuilding{
			ID: b.ID, Function: string(b.Function), Height: b.HeightM, PosList: pos,
		}})
	}
	for _, s := range m.Sensors {
		doc.Members = append(doc.Members, gmlMember{Sensor: &gmlSensor{
			ID: s.ID, Species: s.Species, Value: s.Value,
			Pos: fmt.Sprintf("%.6f %.6f %.1f", s.Pos.Lat, s.Pos.Lon, s.HeightM),
		}})
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("citygml: export: %w", err)
	}
	return append([]byte(xml.Header), out...), nil
}

// ParseGML reads a document produced by ExportGML back into a model.
func ParseGML(data []byte) (*Model, error) {
	var doc gmlCityModel
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("citygml: parse: %w", err)
	}
	m := NewModel(doc.Name)
	for _, mem := range doc.Members {
		if mem.Building != nil {
			b := Building{
				ID:       mem.Building.ID,
				Function: BuildingFunction(mem.Building.Function),
				HeightM:  mem.Building.Height,
			}
			var vals []float64
			for _, f := range splitFields(mem.Building.PosList) {
				var v float64
				fmt.Sscanf(f, "%g", &v)
				vals = append(vals, v)
			}
			for i := 0; i+2 < len(vals)+1 && i+1 < len(vals); i += 3 {
				b.Footprint = append(b.Footprint, geo.LatLon{Lat: vals[i], Lon: vals[i+1]})
			}
			if err := m.AddBuilding(b); err != nil {
				return nil, err
			}
		}
		if mem.Sensor != nil {
			var lat, lon, h float64
			fmt.Sscanf(mem.Sensor.Pos, "%g %g %g", &lat, &lon, &h)
			m.AddSensor(MeasuringPoint{
				ID: mem.Sensor.ID, Species: mem.Sensor.Species,
				Value: mem.Sensor.Value, Pos: geo.LatLon{Lat: lat, Lon: lon}, HeightM: h,
			})
		}
	}
	return m, nil
}

func splitFields(s string) []string {
	var out []string
	field := ""
	for _, c := range s {
		if c == ' ' || c == '\n' || c == '\t' {
			if field != "" {
				out = append(out, field)
				field = ""
			}
			continue
		}
		field += string(c)
	}
	if field != "" {
		out = append(out, field)
	}
	return out
}

// SortBuildingsByHeight orders tallest first (for rendering order and
// the wall display's skyline).
func (m *Model) SortBuildingsByHeight() {
	sort.Slice(m.Buildings, func(i, j int) bool { return m.Buildings[i].HeightM > m.Buildings[j].HeightM })
	m.grid = nil
}
