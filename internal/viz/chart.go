// Package viz renders the paper's visualizations: SVG line charts and
// scatter plots (the battery analysis of Fig. 4 and CO2 dynamics of
// Fig. 5), the network map of Fig. 3, dashboard panels (Fig. 6), the
// 3D city model view (Fig. 7), the combined wall display (Fig. 8),
// plus ASCII charts for terminal dashboards and GeoJSON export for
// integration into municipal GIS tools (Table 1, last row).
//
// Everything renders to bytes with no external dependencies.
package viz

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Series is one named line in a chart.
type Series struct {
	Name   string
	Color  string // CSS color; defaults assigned when empty
	Times  []time.Time
	Values []float64
}

// ScatterPoint is one point in a scatter plot with a class for
// colouring (Fig. 4 uses sunlit/dark classes).
type ScatterPoint struct {
	X, Y  float64
	Class int
}

// defaultPalette cycles for unstyled series.
var defaultPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// classPalette colours scatter classes (class 1 red = "sunlit" in
// Fig. 4's convention, class 0 blue).
var classPalette = []string{"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e"}

// ChartOptions configure a chart rendering.
type ChartOptions struct {
	Title         string
	Width, Height int
	XLabel        string
	YLabel        string
}

func (o *ChartOptions) defaults() {
	if o.Width <= 0 {
		o.Width = 800
	}
	if o.Height <= 0 {
		o.Height = 300
	}
}

const chartMargin = 50

// LineChartSVG renders one or more time series as an SVG line chart.
func LineChartSVG(series []Series, opt ChartOptions) []byte {
	opt.defaults()
	var b strings.Builder
	openSVG(&b, opt.Width, opt.Height)
	writeTitle(&b, opt)

	// Bounds.
	var tMin, tMax time.Time
	vMin, vMax := math.Inf(1), math.Inf(-1)
	empty := true
	for _, s := range series {
		for i, tm := range s.Times {
			if i >= len(s.Values) || math.IsNaN(s.Values[i]) {
				continue
			}
			if empty || tm.Before(tMin) {
				tMin = tm
			}
			if empty || tm.After(tMax) {
				tMax = tm
			}
			if s.Values[i] < vMin {
				vMin = s.Values[i]
			}
			if s.Values[i] > vMax {
				vMax = s.Values[i]
			}
			empty = false
		}
	}
	if empty {
		b.WriteString(`<text x="20" y="40" class="axis">no data</text>`)
		closeSVG(&b)
		return []byte(b.String())
	}
	if vMax == vMin {
		vMax = vMin + 1
	}
	span := tMax.Sub(tMin)
	if span <= 0 {
		span = time.Second
	}

	px := func(tm time.Time) float64 {
		return chartMargin + tm.Sub(tMin).Seconds()/span.Seconds()*float64(opt.Width-2*chartMargin)
	}
	py := func(v float64) float64 {
		return float64(opt.Height-chartMargin) - (v-vMin)/(vMax-vMin)*float64(opt.Height-2*chartMargin)
	}

	drawAxes(&b, opt, vMin, vMax, tMin, tMax)

	for si, s := range series {
		color := s.Color
		if color == "" {
			color = defaultPalette[si%len(defaultPalette)]
		}
		var pts []string
		for i, tm := range s.Times {
			if i >= len(s.Values) || math.IsNaN(s.Values[i]) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(tm), py(s.Values[i])))
		}
		if len(pts) > 0 {
			fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`,
				color, strings.Join(pts, " "))
		}
		// Legend entry.
		ly := 16 + si*16
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`, opt.Width-150, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" class="axis">%s</text>`, opt.Width-135, ly+9, escape(s.Name))
	}
	closeSVG(&b)
	return []byte(b.String())
}

// ScatterSVG renders a class-coloured scatter plot (Fig. 4 right
// panel: Δbattery vs time-of-day, coloured by sunlight).
func ScatterSVG(points []ScatterPoint, classNames []string, opt ChartOptions) []byte {
	opt.defaults()
	var b strings.Builder
	openSVG(&b, opt.Width, opt.Height)
	writeTitle(&b, opt)
	if len(points) == 0 {
		b.WriteString(`<text x="20" y="40" class="axis">no data</text>`)
		closeSVG(&b)
		return []byte(b.String())
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		xMin = math.Min(xMin, p.X)
		xMax = math.Max(xMax, p.X)
		yMin = math.Min(yMin, p.Y)
		yMax = math.Max(yMax, p.Y)
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	px := func(x float64) float64 {
		return chartMargin + (x-xMin)/(xMax-xMin)*float64(opt.Width-2*chartMargin)
	}
	py := func(y float64) float64 {
		return float64(opt.Height-chartMargin) - (y-yMin)/(yMax-yMin)*float64(opt.Height-2*chartMargin)
	}
	drawAxesNumeric(&b, opt, xMin, xMax, yMin, yMax)
	for _, p := range points {
		color := classPalette[p.Class%len(classPalette)]
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.2" fill="%s" fill-opacity="0.7"/>`,
			px(p.X), py(p.Y), color)
	}
	for ci, name := range classNames {
		ly := 16 + ci*16
		fmt.Fprintf(&b, `<circle cx="%d" cy="%d" r="5" fill="%s"/>`, opt.Width-145, ly+5, classPalette[ci%len(classPalette)])
		fmt.Fprintf(&b, `<text x="%d" y="%d" class="axis">%s</text>`, opt.Width-135, ly+9, escape(name))
	}
	closeSVG(&b)
	return []byte(b.String())
}

// BarChartSVG renders labeled values (used for diurnal profiles and
// the Table 1 national-statistics panel).
func BarChartSVG(labels []string, values []float64, opt ChartOptions) []byte {
	opt.defaults()
	var b strings.Builder
	openSVG(&b, opt.Width, opt.Height)
	writeTitle(&b, opt)
	if len(values) == 0 {
		b.WriteString(`<text x="20" y="40" class="axis">no data</text>`)
		closeSVG(&b)
		return []byte(b.String())
	}
	vMax := math.Inf(-1)
	vMin := 0.0
	for _, v := range values {
		vMax = math.Max(vMax, v)
		vMin = math.Min(vMin, v)
	}
	if vMax <= vMin {
		vMax = vMin + 1
	}
	plotW := float64(opt.Width - 2*chartMargin)
	plotH := float64(opt.Height - 2*chartMargin)
	bw := plotW / float64(len(values))
	py := func(v float64) float64 {
		return float64(opt.Height-chartMargin) - (v-vMin)/(vMax-vMin)*plotH
	}
	zero := py(math.Max(0, vMin))
	for i, v := range values {
		x := chartMargin + float64(i)*bw
		top := py(v)
		h := zero - top
		if h < 0 {
			top, h = zero, -h
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`,
			x+1, top, bw-2, h, defaultPalette[0])
		if i < len(labels) && (len(values) <= 30 || i%4 == 0) {
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" class="axis" text-anchor="middle">%s</text>`,
				x+bw/2, opt.Height-chartMargin+15, escape(labels[i]))
		}
	}
	closeSVG(&b)
	return []byte(b.String())
}

// --- shared SVG helpers ------------------------------------------------

func openSVG(b *strings.Builder, w, h int) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	b.WriteString(`<style>.axis{font:10px sans-serif;fill:#444}.title{font:bold 13px sans-serif;fill:#111}</style>`)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`, w, h)
}

func closeSVG(b *strings.Builder) { b.WriteString(`</svg>`) }

func writeTitle(b *strings.Builder, opt ChartOptions) {
	if opt.Title != "" {
		fmt.Fprintf(b, `<text x="%d" y="18" class="title">%s</text>`, chartMargin, escape(opt.Title))
	}
	if opt.YLabel != "" {
		fmt.Fprintf(b, `<text x="8" y="%d" class="axis" transform="rotate(-90 8 %d)">%s</text>`,
			opt.Height/2, opt.Height/2, escape(opt.YLabel))
	}
	if opt.XLabel != "" {
		fmt.Fprintf(b, `<text x="%d" y="%d" class="axis" text-anchor="middle">%s</text>`,
			opt.Width/2, opt.Height-8, escape(opt.XLabel))
	}
}

func drawAxes(b *strings.Builder, opt ChartOptions, vMin, vMax float64, tMin, tMax time.Time) {
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999"/>`,
		chartMargin, opt.Height-chartMargin, opt.Width-chartMargin, opt.Height-chartMargin)
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999"/>`,
		chartMargin, chartMargin, chartMargin, opt.Height-chartMargin)
	// Y ticks.
	for i := 0; i <= 4; i++ {
		v := vMin + float64(i)/4*(vMax-vMin)
		y := float64(opt.Height-chartMargin) - float64(i)/4*float64(opt.Height-2*chartMargin)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" class="axis" text-anchor="end">%.4g</text>`,
			chartMargin-4, y+3, v)
	}
	// X ticks: start, middle, end.
	for i := 0; i <= 2; i++ {
		tm := tMin.Add(time.Duration(float64(tMax.Sub(tMin)) * float64(i) / 2))
		x := chartMargin + float64(i)/2*float64(opt.Width-2*chartMargin)
		fmt.Fprintf(b, `<text x="%.1f" y="%d" class="axis" text-anchor="middle">%s</text>`,
			x, opt.Height-chartMargin+15, tm.Format("01-02 15:04"))
	}
}

func drawAxesNumeric(b *strings.Builder, opt ChartOptions, xMin, xMax, yMin, yMax float64) {
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999"/>`,
		chartMargin, opt.Height-chartMargin, opt.Width-chartMargin, opt.Height-chartMargin)
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999"/>`,
		chartMargin, chartMargin, chartMargin, opt.Height-chartMargin)
	for i := 0; i <= 4; i++ {
		v := yMin + float64(i)/4*(yMax-yMin)
		y := float64(opt.Height-chartMargin) - float64(i)/4*float64(opt.Height-2*chartMargin)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" class="axis" text-anchor="end">%.4g</text>`, chartMargin-4, y+3, v)
	}
	for i := 0; i <= 4; i++ {
		v := xMin + float64(i)/4*(xMax-xMin)
		x := chartMargin + float64(i)/4*float64(opt.Width-2*chartMargin)
		fmt.Fprintf(b, `<text x="%.1f" y="%d" class="axis" text-anchor="middle">%.4g</text>`,
			x, opt.Height-chartMargin+15, v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// ASCIIChart renders a single series as a terminal chart of the given
// size — the quick-look view used by the CLI tools.
func ASCIIChart(values []float64, width, height int) string {
	if len(values) == 0 || width < 2 || height < 2 {
		return "(no data)\n"
	}
	vMin, vMax := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		vMin = math.Min(vMin, v)
		vMax = math.Max(vMax, v)
	}
	if math.IsInf(vMin, 1) {
		return "(no data)\n"
	}
	if vMax == vMin {
		vMax = vMin + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for c := 0; c < width; c++ {
		// Sample the series at this column.
		idx := c * (len(values) - 1) / max(1, width-1)
		v := values[idx]
		if math.IsNaN(v) {
			continue
		}
		row := int((vMax - v) / (vMax - vMin) * float64(height-1))
		grid[row][c] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%8.4g ┤\n", vMax)
	for _, row := range grid {
		b.WriteString("         │")
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%8.4g ┼%s\n", vMin, strings.Repeat("─", width))
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
