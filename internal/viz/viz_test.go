package viz

import (
	"encoding/json"
	"encoding/xml"
	"strings"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/citygml"
	"repro/internal/dataport"
	"repro/internal/geo"
)

var center = geo.LatLon{Lat: 63.4305, Lon: 10.3951}

func t0() time.Time { return time.Date(2017, time.March, 7, 12, 0, 0, 0, time.UTC) }

func sampleSeries(n int) Series {
	s := Series{Name: "co2 [ppm]"}
	for i := 0; i < n; i++ {
		s.Times = append(s.Times, t0().Add(time.Duration(i)*5*time.Minute))
		s.Values = append(s.Values, 400+float64(i%20))
	}
	return s
}

// validSVG checks the output is well-formed XML with an svg root.
func validSVG(t *testing.T, data []byte) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(string(data)))
	seenSVG := false
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		if se, ok := tok.(xml.StartElement); ok && se.Name.Local == "svg" {
			seenSVG = true
		}
	}
	if !seenSVG {
		t.Fatalf("not a valid SVG: %.120s", data)
	}
}

func TestLineChartSVG(t *testing.T) {
	data := LineChartSVG([]Series{sampleSeries(50)}, ChartOptions{Title: "CO2", YLabel: "ppm"})
	validSVG(t, data)
	s := string(data)
	if !strings.Contains(s, "polyline") {
		t.Fatal("no polyline drawn")
	}
	if !strings.Contains(s, "CO2") {
		t.Fatal("title missing")
	}
	if !strings.Contains(s, "co2 [ppm]") {
		t.Fatal("legend missing")
	}
}

func TestLineChartMultipleSeries(t *testing.T) {
	a, b := sampleSeries(30), sampleSeries(30)
	b.Name = "second"
	data := LineChartSVG([]Series{a, b}, ChartOptions{})
	validSVG(t, data)
	if strings.Count(string(data), "polyline") != 2 {
		t.Fatal("expected two polylines")
	}
}

func TestLineChartEmpty(t *testing.T) {
	data := LineChartSVG(nil, ChartOptions{})
	validSVG(t, data)
	if !strings.Contains(string(data), "no data") {
		t.Fatal("empty chart should say so")
	}
}

func TestScatterSVGClasses(t *testing.T) {
	var pts []ScatterPoint
	for i := 0; i < 100; i++ {
		pts = append(pts, ScatterPoint{X: float64(i % 24), Y: float64(i%7) - 3, Class: i % 2})
	}
	data := ScatterSVG(pts, []string{"dark", "sunlit"}, ChartOptions{Title: "Δbattery vs hour"})
	validSVG(t, data)
	s := string(data)
	if strings.Count(s, "<circle") < 100 {
		t.Fatalf("points missing: %d circles", strings.Count(s, "<circle"))
	}
	if !strings.Contains(s, "sunlit") {
		t.Fatal("class legend missing")
	}
	// Both class colours present.
	if !strings.Contains(s, classPalette[0]) || !strings.Contains(s, classPalette[1]) {
		t.Fatal("class colours missing")
	}
}

func TestBarChartSVG(t *testing.T) {
	labels := []string{"a", "b", "c"}
	data := BarChartSVG(labels, []float64{3, 1, 2}, ChartOptions{Title: "bars"})
	validSVG(t, data)
	if strings.Count(string(data), "<rect") < 4 { // background + 3 bars
		t.Fatal("bars missing")
	}
	validSVG(t, BarChartSVG(nil, nil, ChartOptions{}))
}

func TestASCIIChart(t *testing.T) {
	out := ASCIIChart([]float64{1, 5, 3, 9, 2, 8}, 40, 8)
	if !strings.Contains(out, "*") {
		t.Fatal("no points plotted")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 { // header + 8 rows + footer
		t.Fatalf("chart height: %d lines", len(lines))
	}
	if ASCIIChart(nil, 10, 5) != "(no data)\n" {
		t.Fatal("empty handling")
	}
}

func testSnapshot() dataport.NetworkSnapshot {
	return dataport.NetworkSnapshot{
		Time: t0(),
		Sensors: []dataport.SensorNode{
			{ID: "s1", Pos: geo.Destination(center, 0, 500), Status: "ok", BatteryPct: 88},
			{ID: "s2", Pos: geo.Destination(center, 90, 800), Status: "silent", BatteryPct: 42},
			{ID: "s3", Pos: geo.Destination(center, 180, 650), Status: "battery-low", BatteryPct: 12},
		},
		Gateways: []dataport.GatewayNode{
			{ID: "gw1", Pos: center, Status: "ok"},
			{ID: "gw2", Pos: geo.Destination(center, 270, 1500), Status: "down"},
		},
		Links: []dataport.Link{
			{SensorID: "s1", GatewayID: "gw1", RSSI: -80, Live: true},
			{SensorID: "s3", GatewayID: "gw1", RSSI: -95, Live: false},
		},
	}
}

func TestNetworkMapSVG(t *testing.T) {
	data := NetworkMapSVG(testSnapshot(), 800, 600)
	validSVG(t, data)
	s := string(data)
	if strings.Count(s, "<circle") != 3 {
		t.Fatalf("sensor circles: %d", strings.Count(s, "<circle"))
	}
	// 2 gateway squares + background rect.
	if strings.Count(s, "<rect") != 3 {
		t.Fatalf("rects: %d", strings.Count(s, "<rect"))
	}
	if strings.Count(s, "<line") < 2 {
		t.Fatal("links missing")
	}
	// Live link dashed.
	if !strings.Contains(s, "stroke-dasharray") {
		t.Fatal("live transmission styling missing")
	}
	// Status colours: ok green, silent red, battery orange.
	for _, c := range []string{"#2ca02c", "#d62728", "#ff7f0e"} {
		if !strings.Contains(s, c) {
			t.Fatalf("status colour %s missing", c)
		}
	}
	validSVG(t, NetworkMapSVG(dataport.NetworkSnapshot{Time: t0()}, 400, 300))
}

func TestPollutionColor(t *testing.T) {
	lo := PollutionColor(400, 400, 500)
	hi := PollutionColor(500, 400, 500)
	mid := PollutionColor(450, 400, 500)
	if lo == hi || lo == mid {
		t.Fatalf("colour ramp flat: %s %s %s", lo, mid, hi)
	}
	if PollutionColor(1000, 400, 500) != hi {
		t.Fatal("above-range should clamp")
	}
	if PollutionColor(1, 5, 5) != "#888888" {
		t.Fatal("degenerate range should be gray")
	}
}

func TestCityModelSVG(t *testing.T) {
	m := citygml.GenerateCity("vejle", center, 600, 3)
	m.AddSensor(citygml.MeasuringPoint{ID: "n1", Pos: center, Species: "co2", Value: 420, HeightM: 3})
	m.AddSensor(citygml.MeasuringPoint{ID: "n2", Pos: geo.Destination(center, 90, 200), Species: "co2", Value: 480, HeightM: 3})
	data := CityModelSVG(m, 400, 500, 900, 650)
	validSVG(t, data)
	s := string(data)
	if strings.Count(s, "<polygon") < 2*50 {
		t.Fatalf("building polygons missing: %d", strings.Count(s, "<polygon"))
	}
	if strings.Count(s, "<circle") != 2 {
		t.Fatalf("sensor markers: %d", strings.Count(s, "<circle"))
	}
	validSVG(t, CityModelSVG(citygml.NewModel("empty"), 0, 1, 300, 200))
}

func TestNetworkGeoJSON(t *testing.T) {
	data, err := NetworkGeoJSON(testSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["type"] != "FeatureCollection" {
		t.Fatalf("type: %v", doc["type"])
	}
	features := doc["features"].([]any)
	if len(features) != 3+2+2 {
		t.Fatalf("features: %d", len(features))
	}
	// Coordinates are [lon, lat].
	first := features[0].(map[string]any)
	coords := first["geometry"].(map[string]any)["coordinates"].([]any)
	lon := coords[0].(float64)
	if lon < 10 || lon > 11 {
		t.Fatalf("lon/lat order wrong: %v", coords)
	}
}

func TestHeatmapSVG(t *testing.T) {
	readings := []analytics.SensorReading{
		{ID: "a", Pos: geo.Destination(center, 90, 800), Value: 400},
		{ID: "b", Pos: geo.Destination(center, 270, 800), Value: 500},
		{ID: "c", Pos: geo.Destination(center, 0, 600), Value: 450},
	}
	surf, err := analytics.InterpolateIDW(readings, 100, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := HeatmapSVG(surf, readings, "CO2 surface", 800, 600)
	validSVG(t, data)
	s := string(data)
	if strings.Count(s, "<rect") < surf.NX*surf.NY {
		t.Fatalf("heatmap cells missing: %d rects for %dx%d grid",
			strings.Count(s, "<rect"), surf.NX, surf.NY)
	}
	if strings.Count(s, "<circle") != 3 {
		t.Fatalf("sensor overlays: %d", strings.Count(s, "<circle"))
	}
	validSVG(t, HeatmapSVG(nil, nil, "empty", 300, 200))
}
