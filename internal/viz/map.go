package viz

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/citygml"
	"repro/internal/dataport"
	"repro/internal/geo"
)

// Network map — the paper's Fig. 3: "a visualization of the network
// itself ... of the structure of digital twins for sensors and
// gateways, their location, the connections and live data transmission
// between sensors and gateways."

// statusColor maps twin status to display colour.
func statusColor(status string) string {
	switch status {
	case "ok":
		return "#2ca02c"
	case "silent", "down":
		return "#d62728"
	case "battery-low":
		return "#ff7f0e"
	default: // pending
		return "#7f7f7f"
	}
}

// NetworkMapSVG renders a dataport snapshot as the Fig. 3 map.
func NetworkMapSVG(snap dataport.NetworkSnapshot, width, height int) []byte {
	if width <= 0 {
		width = 800
	}
	if height <= 0 {
		height = 600
	}
	var b strings.Builder
	openSVG(&b, width, height)
	fmt.Fprintf(&b, `<text x="10" y="18" class="title">CTT network — %s</text>`,
		snap.Time.Format("2006-01-02 15:04"))

	// Projection over all device positions.
	var pts []geo.LatLon
	for _, s := range snap.Sensors {
		pts = append(pts, s.Pos)
	}
	for _, g := range snap.Gateways {
		pts = append(pts, g.Pos)
	}
	if len(pts) == 0 {
		b.WriteString(`<text x="20" y="40" class="axis">no devices</text>`)
		closeSVG(&b)
		return []byte(b.String())
	}
	project := newProjector(pts, width, height, 40)

	// Links first (under the nodes).
	sensorPos := map[string]geo.LatLon{}
	for _, s := range snap.Sensors {
		sensorPos[s.ID] = s.Pos
	}
	gwPos := map[string]geo.LatLon{}
	for _, g := range snap.Gateways {
		gwPos[g.ID] = g.Pos
	}
	for _, l := range snap.Links {
		sp, ok1 := sensorPos[l.SensorID]
		gp, ok2 := gwPos[l.GatewayID]
		if !ok1 || !ok2 {
			continue
		}
		x1, y1 := project(sp)
		x2, y2 := project(gp)
		stroke, dash := "#bbbbbb", ""
		if l.Live {
			stroke, dash = "#1f77b4", ` stroke-dasharray="5,3"`
		}
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.2"%s/>`,
			x1, y1, x2, y2, stroke, dash)
	}

	// Gateways as squares, sensors as circles.
	for _, g := range snap.Gateways {
		x, y := project(g.Pos)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="14" height="14" fill="%s" stroke="#333"><title>%s (%s)</title></rect>`,
			x-7, y-7, statusColor(g.Status), escape(g.ID), g.Status)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" class="axis" text-anchor="middle">%s</text>`, x, y-10, escape(g.ID))
	}
	for _, s := range snap.Sensors {
		x, y := project(s.Pos)
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="6" fill="%s" stroke="#333"><title>%s (%s) batt %.0f%%</title></circle>`,
			x, y, statusColor(s.Status), escape(s.ID), s.Status, s.BatteryPct)
	}
	closeSVG(&b)
	return []byte(b.String())
}

// newProjector maps geographic coordinates into the SVG viewport with
// padding, preserving aspect ratio.
func newProjector(pts []geo.LatLon, width, height, pad int) func(geo.LatLon) (float64, float64) {
	box := geo.NewBBox(pts...)
	enu := geo.NewENU(box.Center())
	minX, minY := 1e18, 1e18
	maxX, maxY := -1e18, -1e18
	for _, p := range pts {
		x, y := enu.Forward(p)
		minX, maxX = minF(minX, x), maxF(maxX, x)
		minY, maxY = minF(minY, y), maxF(maxY, y)
	}
	spanX := maxX - minX
	spanY := maxY - minY
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	scale := minF(float64(width-2*pad)/spanX, float64(height-2*pad)/spanY)
	return func(p geo.LatLon) (float64, float64) {
		x, y := enu.Forward(p)
		sx := float64(pad) + (x-minX)*scale
		sy := float64(height-pad) - (y-minY)*scale // north up
		return sx, sy
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// --- Fig. 7: city model rendering --------------------------------------

// PollutionColor maps a CO2-like value onto a green→red ramp between
// lo and hi.
func PollutionColor(v, lo, hi float64) string {
	if hi <= lo {
		return "#888888"
	}
	f := (v - lo) / (hi - lo)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	r := int(60 + f*(220-60))
	g := int(180 - f*140)
	return fmt.Sprintf("#%02x%02x40", r, g)
}

// CityModelSVG renders a 2.5D oblique view of the city model with
// sensor measuring points coloured by their value (Fig. 7). Buildings
// are drawn back-to-front with height-shaded roofs.
func CityModelSVG(m *citygml.Model, loVal, hiVal float64, width, height int) []byte {
	if width <= 0 {
		width = 900
	}
	if height <= 0 {
		height = 650
	}
	var b strings.Builder
	openSVG(&b, width, height)
	fmt.Fprintf(&b, `<text x="10" y="18" class="title">%s — 3D city model with sensor data</text>`, escape(m.Name))

	var pts []geo.LatLon
	for i := range m.Buildings {
		pts = append(pts, m.Buildings[i].Centroid())
	}
	for _, s := range m.Sensors {
		pts = append(pts, s.Pos)
	}
	if len(pts) == 0 {
		b.WriteString(`<text x="20" y="40" class="axis">empty model</text>`)
		closeSVG(&b)
		return []byte(b.String())
	}
	project := newProjector(pts, width, height, 50)

	// Draw north-most buildings first so southern ones overlap them
	// (simple painter's algorithm for the oblique view).
	order := make([]int, len(m.Buildings))
	for i := range order {
		order[i] = i
	}
	sortByLatDesc(order, m)

	const hScale = 0.6 // vertical meters → pixels for the extrusion
	for _, bi := range order {
		bld := &m.Buildings[bi]
		if len(bld.Footprint) < 3 {
			continue
		}
		// Footprint polygon.
		var base []string
		for _, p := range bld.Footprint {
			x, y := project(p)
			base = append(base, fmt.Sprintf("%.1f,%.1f", x, y))
		}
		// Roof: base shifted up by height.
		dz := bld.HeightM * hScale
		var roof []string
		for _, p := range bld.Footprint {
			x, y := project(p)
			roof = append(roof, fmt.Sprintf("%.1f,%.1f", x, y-dz))
		}
		shade := 200 - int(minF(bld.HeightM, 40)*2.5)
		fmt.Fprintf(&b, `<polygon points="%s" fill="#%02x%02x%02x" stroke="#666" stroke-width="0.4"/>`,
			strings.Join(base, " "), shade, shade, shade)
		fmt.Fprintf(&b, `<polygon points="%s" fill="#%02x%02x%02x" stroke="#444" stroke-width="0.5"><title>%s %s %.0fm</title></polygon>`,
			strings.Join(roof, " "), shade+25, shade+25, shade+30, escape(bld.ID), bld.Function, bld.HeightM)
	}

	// Sensor measuring points: masts with value-coloured heads.
	for _, s := range m.Sensors {
		x, y := project(s.Pos)
		top := y - 28
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333" stroke-width="2"/>`, x, y, x, top)
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="8" fill="%s" stroke="#111"><title>%s %s=%.1f</title></circle>`,
			x, top, PollutionColor(s.Value, loVal, hiVal), escape(s.ID), escape(s.Species), s.Value)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" class="axis" text-anchor="middle">%.0f</text>`, x, top-11, s.Value)
	}
	closeSVG(&b)
	return []byte(b.String())
}

func sortByLatDesc(order []int, m *citygml.Model) {
	lat := make([]float64, len(order))
	for i, bi := range order {
		lat[i] = m.Buildings[bi].Centroid().Lat
	}
	// Insertion sort keeps this dependency-free and the n is small.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && lat[j] > lat[j-1]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
			lat[j], lat[j-1] = lat[j-1], lat[j]
		}
	}
}

// --- GeoJSON export -----------------------------------------------------

// geoJSON document fragments.
type geoFeature struct {
	Type       string         `json:"type"`
	Geometry   geoGeometry    `json:"geometry"`
	Properties map[string]any `json:"properties"`
}

type geoGeometry struct {
	Type        string `json:"type"`
	Coordinates any    `json:"coordinates"`
}

// NetworkGeoJSON exports a dataport snapshot as a GeoJSON
// FeatureCollection for municipal GIS tools.
func NetworkGeoJSON(snap dataport.NetworkSnapshot) ([]byte, error) {
	var features []geoFeature
	for _, s := range snap.Sensors {
		features = append(features, geoFeature{
			Type: "Feature",
			Geometry: geoGeometry{
				Type:        "Point",
				Coordinates: []float64{s.Pos.Lon, s.Pos.Lat},
			},
			Properties: map[string]any{
				"kind": "sensor", "id": s.ID, "status": s.Status,
				"battery_pct": s.BatteryPct,
			},
		})
	}
	for _, g := range snap.Gateways {
		features = append(features, geoFeature{
			Type: "Feature",
			Geometry: geoGeometry{
				Type:        "Point",
				Coordinates: []float64{g.Pos.Lon, g.Pos.Lat},
			},
			Properties: map[string]any{"kind": "gateway", "id": g.ID, "status": g.Status},
		})
	}
	for _, l := range snap.Links {
		var sp, gp geo.LatLon
		for _, s := range snap.Sensors {
			if s.ID == l.SensorID {
				sp = s.Pos
			}
		}
		for _, g := range snap.Gateways {
			if g.ID == l.GatewayID {
				gp = g.Pos
			}
		}
		features = append(features, geoFeature{
			Type: "Feature",
			Geometry: geoGeometry{
				Type: "LineString",
				Coordinates: [][]float64{
					{sp.Lon, sp.Lat}, {gp.Lon, gp.Lat},
				},
			},
			Properties: map[string]any{
				"kind": "link", "sensor": l.SensorID, "gateway": l.GatewayID,
				"rssi": l.RSSI, "live": l.Live,
			},
		})
	}
	doc := map[string]any{"type": "FeatureCollection", "features": features}
	return json.MarshalIndent(doc, "", "  ")
}
