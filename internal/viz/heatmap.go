package viz

import (
	"fmt"
	"strings"

	"repro/internal/analytics"
	"repro/internal/geo"
)

// HeatmapSVG renders an interpolated pollution surface as a coloured
// grid with the contributing sensors overlaid — the city-wide
// "emission distribution" view the paper's future work aims at (§4),
// built on the spatial interpolation in internal/analytics.
func HeatmapSVG(surf *analytics.Surface, readings []analytics.SensorReading, title string, width, height int) []byte {
	if width <= 0 {
		width = 800
	}
	if height <= 0 {
		height = 600
	}
	var b strings.Builder
	openSVG(&b, width, height)
	fmt.Fprintf(&b, `<text x="10" y="18" class="title">%s</text>`, escape(title))
	if surf == nil || surf.NX == 0 || surf.NY == 0 {
		b.WriteString(`<text x="20" y="40" class="axis">no surface</text>`)
		closeSVG(&b)
		return []byte(b.String())
	}

	lo, hi := surf.MinMax()
	pad := 40
	cellW := float64(width-2*pad) / float64(surf.NX)
	cellH := float64(height-2*pad) / float64(surf.NY)

	for cy := 0; cy < surf.NY; cy++ {
		for cx := 0; cx < surf.NX; cx++ {
			v := surf.Values[cy*surf.NX+cx]
			// North (max cy) at the top of the image.
			x := float64(pad) + float64(cx)*cellW
			y := float64(height-pad) - float64(cy+1)*cellH
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.2f" height="%.2f" fill="%s" fill-opacity="0.85"/>`,
				x, y, cellW+0.5, cellH+0.5, PollutionColor(v, lo, hi))
		}
	}

	// Overlay sensors with their measured values.
	var pts []geo.LatLon
	for _, r := range readings {
		pts = append(pts, r.Pos)
	}
	if len(pts) > 0 {
		// Project sensors onto the same grid frame.
		enu := geo.NewENU(surf.Origin)
		for _, r := range readings {
			sx, sy := enu.Forward(r.Pos)
			px := float64(pad) + sx/surf.CellM*cellW
			py := float64(height-pad) - sy/surf.CellM*cellH
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="6" fill="white" stroke="#111" stroke-width="1.5"><title>%s %.1f</title></circle>`,
				px, py, escape(r.ID), r.Value)
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" class="axis" text-anchor="middle">%.0f</text>`,
				px, py-10, r.Value)
		}
	}

	// Colour legend.
	for i := 0; i <= 20; i++ {
		v := lo + float64(i)/20*(hi-lo)
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="8" fill="%s"/>`,
			width-30, height-40-i*8, PollutionColor(v, lo, hi))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" class="axis" text-anchor="end">%.0f</text>`, width-34, height-36, lo)
	fmt.Fprintf(&b, `<text x="%d" y="%d" class="axis" text-anchor="end">%.0f</text>`, width-34, height-40-20*8+8, hi)

	closeSVG(&b)
	return []byte(b.String())
}
