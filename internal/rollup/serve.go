package rollup

// Query-side planner: the engine implements tsdb.RollupPlanner, so
// Execute hands it every downsampled per-series read. The planner
// picks the coarsest tier whose resolution divides the requested
// interval and whose statistics can reproduce the requested
// aggregator exactly, reads the derived stat series (no raw block
// decode), and re-buckets them to the query interval. Three ranges
// fall back to the raw scan so served buckets match a raw scan bucket
// for bucket: the partial bucket at the range start, the partial
// bucket at the range end, and everything at or after the series'
// sealed horizon (the unsealed tail).

import (
	"math"
	"strings"
	"time"

	"repro/internal/tsdb"
)

// ServeDownsample implements tsdb.RollupPlanner.
func (e *Engine) ServeDownsample(metric string, tags map[string]string, start, end int64, interval time.Duration, fn tsdb.Aggregator) ([]tsdb.Point, bool, error) {
	if strings.HasPrefix(metric, MetricPrefix) {
		return nil, false, nil // direct reads of derived series stay raw
	}
	iMS := interval.Milliseconds()
	if iMS <= 0 || start < 0 {
		return nil, false, nil
	}
	ti := e.pickTier(iMS, fn)
	if ti < 0 {
		e.fallbacks.Add(1)
		return nil, false, nil
	}
	sealedUntil, known := e.sealedHorizon(metric, tags, ti)
	if !known {
		e.fallbacks.Add(1)
		return nil, false, nil
	}

	// bLo: first bucket boundary at or after start; buckets before it
	// would cover pre-range points the query must exclude.
	bLo := start
	if rem := start % iMS; rem != 0 {
		bLo += iMS - rem
	}
	// A tier with finite retention has nothing before its cutoff even
	// when raw points are kept longer: clamp the tier-served range and
	// let the head raw scan cover the older buckets.
	if ret := e.tiers[ti].retention; ret > 0 {
		if retLo := e.cfg.Now().UnixMilli() - ret.Milliseconds(); retLo > 0 {
			if rem := retLo % iMS; rem != 0 {
				retLo += iMS - rem // align up: partial buckets stay raw
			}
			if retLo > bLo {
				bLo = retLo
			}
		}
	}
	// cut: first bucket boundary the tiers cannot fully cover —
	// either because the bucket extends past the sealed horizon or
	// past the requested end.
	hcut := sealedUntil - sealedUntil%iMS
	ecut := (end + 1) - (end+1)%iMS
	cut := hcut
	if ecut < cut {
		cut = ecut
	}
	if cut <= bLo {
		e.fallbacks.Add(1)
		return nil, false, nil
	}

	var out []tsdb.Point
	if bLo > start { // partial head bucket from raw
		raw, err := e.db.SeriesWindowExact(metric, tags, start, bLo-1)
		if err != nil {
			return nil, false, err
		}
		out = append(out, tsdb.Downsample(raw, interval, fn)...)
	}
	mid, err := e.readTier(ti, metric, tags, fn, bLo, cut, iMS)
	if err != nil {
		return nil, false, err
	}
	out = append(out, mid...)
	if cut <= end { // unsealed tail (and partial end bucket) from raw
		raw, err := e.db.SeriesWindowExact(metric, tags, cut, end)
		if err != nil {
			return nil, false, err
		}
		out = append(out, tsdb.Downsample(raw, interval, fn)...)
	}
	e.hits.Add(1)
	return out, true, nil
}

// pickTier returns the index of the coarsest tier that can serve a
// downsample of interval iMS with aggregator fn exactly, or -1.
func (e *Engine) pickTier(iMS int64, fn tsdb.Aggregator) int {
	for i := len(e.tiers) - 1; i >= 0; i-- {
		r := e.tiers[i].resMS
		if r > iMS || iMS%r != 0 {
			continue
		}
		switch fn {
		case tsdb.AggSum, tsdb.AggCount, tsdb.AggMin, tsdb.AggMax, tsdb.AggAvg:
			return i // composable across windows
		case tsdb.AggP50, tsdb.AggP95, tsdb.AggP99:
			// Percentiles don't compose; only an exact-resolution tier
			// stores them directly.
			if iMS == r {
				return i
			}
		}
		// AggDev and unknown aggregators: raw scan.
	}
	return -1
}

// sealedHorizon reads the series' sealed boundary for one tier.
func (e *Engine) sealedHorizon(metric string, tags map[string]string, ti int) (int64, bool) {
	key := tsdb.Series{Metric: metric, Tags: tags}.Key()
	sh := &e.shards[shardFor(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.series[key]
	if !ok {
		return 0, false
	}
	return st.tiers[ti].sealedUntil, true
}

// readTier reads derived stat series over [bLo, cut) and re-buckets
// them to the query interval.
func (e *Engine) readTier(ti int, metric string, tags map[string]string, fn tsdb.Aggregator, bLo, cut, iMS int64) ([]tsdb.Point, error) {
	spec := &e.tiers[ti]
	derived := spec.metricPrefix + metric
	read := func(stat string) ([]tsdb.Point, error) {
		st := make(map[string]string, len(tags)+1)
		for k, v := range tags {
			st[k] = v
		}
		st[StatTag] = stat
		return e.db.SeriesWindowExact(derived, st, bLo, cut-1)
	}

	exact := iMS == spec.resMS
	switch fn {
	case tsdb.AggAvg:
		if exact {
			return read("mean")
		}
		sums, err := read("sum")
		if err != nil {
			return nil, err
		}
		counts, err := read("count")
		if err != nil {
			return nil, err
		}
		return combineAvg(sums, counts, iMS), nil
	case tsdb.AggSum:
		pts, err := read("sum")
		return rebucket(pts, iMS, func(a, b float64) float64 { return a + b }), err
	case tsdb.AggCount:
		pts, err := read("count")
		return rebucket(pts, iMS, func(a, b float64) float64 { return a + b }), err
	case tsdb.AggMin:
		pts, err := read("min")
		return rebucket(pts, iMS, math.Min), err
	case tsdb.AggMax:
		pts, err := read("max")
		return rebucket(pts, iMS, math.Max), err
	case tsdb.AggP50, tsdb.AggP95, tsdb.AggP99:
		// exact by pickTier: each window is one query bucket already.
		return read(string(fn))
	}
	return nil, nil
}

// rebucket folds window points into coarser buckets with op. With
// iMS equal to the window resolution every bucket holds exactly one
// point and the fold is the identity.
func rebucket(pts []tsdb.Point, iMS int64, op func(a, b float64) float64) []tsdb.Point {
	if len(pts) == 0 {
		return nil
	}
	out := make([]tsdb.Point, 0, len(pts))
	cur := tsdb.Point{Timestamp: math.MinInt64}
	for _, p := range pts {
		b := p.Timestamp - p.Timestamp%iMS
		if b != cur.Timestamp {
			if cur.Timestamp != math.MinInt64 {
				out = append(out, cur)
			}
			cur = tsdb.Point{Timestamp: b, Value: p.Value}
			continue
		}
		cur.Value = op(cur.Value, p.Value)
	}
	out = append(out, cur)
	return out
}

// combineAvg merges per-window sums and counts into per-bucket means.
// The two series are written atomically per window, so they align;
// buckets missing a count (or with a zero count) are skipped rather
// than divided by zero.
func combineAvg(sums, counts []tsdb.Point, iMS int64) []tsdb.Point {
	s := rebucket(sums, iMS, func(a, b float64) float64 { return a + b })
	c := rebucket(counts, iMS, func(a, b float64) float64 { return a + b })
	cnt := make(map[int64]float64, len(c))
	for _, p := range c {
		cnt[p.Timestamp] = p.Value
	}
	out := make([]tsdb.Point, 0, len(s))
	for _, p := range s {
		if n := cnt[p.Timestamp]; n > 0 {
			out = append(out, tsdb.Point{Timestamp: p.Timestamp, Value: p.Value / n})
		}
	}
	return out
}
