package rollup

// Query-side planner: the engine implements tsdb.RollupPlanner, so
// ExecuteStream hands it every downsampled per-series read. The
// planner picks the coarsest tier whose resolution divides the
// requested interval and whose statistics can reproduce the requested
// aggregator exactly, reads the derived stat series (no raw block
// decode), and re-buckets them to the query interval — streaming each
// finished bucket to the caller's yield instead of materializing the
// window. Three ranges fall back to the raw scan so served buckets
// match a raw scan bucket for bucket: the partial bucket at the range
// start, the partial bucket at the range end, and everything at or
// after the series' sealed horizon (the unsealed tail).
//
// The same ServeDownsample path also ranks topk/bottomk selection:
// the query engine folds a candidate series' score straight off the
// streamed buckets, so when a tier covers the range, selection is
// served entirely from tier sums/counts and never decodes a raw
// member block.

import (
	"math"
	"strings"
	"time"

	"repro/internal/tsdb"
)

// ServeDownsample implements tsdb.RollupPlanner. The ok=false
// decisions all precede the first yield, as the interface requires.
func (e *Engine) ServeDownsample(series *tsdb.Ref, start, end int64, interval time.Duration, fn tsdb.Aggregator, yield func(tsdb.Point) error) (bool, error) {
	metric, tags := series.Metric(), series.Tags()
	if strings.HasPrefix(metric, MetricPrefix) {
		return false, nil // direct reads of derived series stay raw
	}
	iMS := interval.Milliseconds()
	if iMS <= 0 || start < 0 {
		return false, nil
	}
	ti := e.pickTier(iMS, fn)
	if ti < 0 {
		e.fallbacks.Add(1)
		return false, nil
	}
	sealedUntil, known := e.sealedHorizon(series.ID(), ti)
	if !known {
		e.fallbacks.Add(1)
		return false, nil
	}

	// bLo: first bucket boundary at or after start; buckets before it
	// would cover pre-range points the query must exclude.
	bLo := start
	if rem := start % iMS; rem != 0 {
		bLo += iMS - rem
	}
	// A tier with finite retention has nothing before its cutoff even
	// when raw points are kept longer: clamp the tier-served range and
	// let the head raw scan cover the older buckets.
	if ret := e.tiers[ti].retention; ret > 0 {
		if retLo := e.cfg.Now().UnixMilli() - ret.Milliseconds(); retLo > 0 {
			if rem := retLo % iMS; rem != 0 {
				retLo += iMS - rem // align up: partial buckets stay raw
			}
			if retLo > bLo {
				bLo = retLo
			}
		}
	}
	// cut: first bucket boundary the tiers cannot fully cover —
	// either because the bucket extends past the sealed horizon or
	// past the requested end.
	hcut := sealedUntil - sealedUntil%iMS
	ecut := (end + 1) - (end+1)%iMS
	cut := hcut
	if ecut < cut {
		cut = ecut
	}
	if cut <= bLo {
		e.fallbacks.Add(1)
		return false, nil
	}

	if bLo > start { // partial head bucket from raw
		if err := e.yieldRaw(metric, tags, start, bLo-1, interval, fn, yield); err != nil {
			return false, err
		}
	}
	if err := e.yieldTier(ti, metric, tags, fn, bLo, cut, iMS, yield); err != nil {
		return false, err
	}
	if cut <= end { // unsealed tail (and partial end bucket) from raw
		if err := e.yieldRaw(metric, tags, cut, end, interval, fn, yield); err != nil {
			return false, err
		}
	}
	e.hits.Add(1)
	return true, nil
}

// yieldRaw downsamples a raw window and streams its buckets.
func (e *Engine) yieldRaw(metric string, tags map[string]string, start, end int64, interval time.Duration, fn tsdb.Aggregator, yield func(tsdb.Point) error) error {
	raw, err := e.db.SeriesWindowExact(metric, tags, start, end)
	if err != nil {
		return err
	}
	for _, p := range tsdb.Downsample(raw, interval, fn) {
		if err := yield(p); err != nil {
			return err
		}
	}
	return nil
}

// pickTier returns the index of the coarsest tier that can serve a
// downsample of interval iMS with aggregator fn exactly, or -1.
func (e *Engine) pickTier(iMS int64, fn tsdb.Aggregator) int {
	for i := len(e.tiers) - 1; i >= 0; i-- {
		r := e.tiers[i].resMS
		if r > iMS || iMS%r != 0 {
			continue
		}
		switch fn {
		case tsdb.AggSum, tsdb.AggCount, tsdb.AggMin, tsdb.AggMax, tsdb.AggAvg:
			return i // composable across windows
		case tsdb.AggP50, tsdb.AggP95, tsdb.AggP99:
			// Percentiles don't compose; only an exact-resolution tier
			// stores them directly.
			if iMS == r {
				return i
			}
		}
		// AggDev and unknown aggregators: raw scan.
	}
	return -1
}

// sealedHorizon reads the series' sealed boundary for one tier.
func (e *Engine) sealedHorizon(id tsdb.SeriesID, ti int) (int64, bool) {
	sh := &e.shards[uint64(id)%engineShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.series[id]
	if !ok || st.skip {
		return 0, false
	}
	return st.tiers[ti].sealedUntil, true
}

// yieldTier reads derived stat series over [bLo, cut), re-buckets
// them to the query interval, and streams the buckets.
func (e *Engine) yieldTier(ti int, metric string, tags map[string]string, fn tsdb.Aggregator, bLo, cut, iMS int64, yield func(tsdb.Point) error) error {
	spec := &e.tiers[ti]
	derived := spec.metricPrefix + metric
	read := func(stat string) ([]tsdb.Point, error) {
		st := make(map[string]string, len(tags)+1)
		for k, v := range tags {
			st[k] = v
		}
		st[StatTag] = stat
		return e.db.SeriesWindowExact(derived, st, bLo, cut-1)
	}

	exact := iMS == spec.resMS
	switch fn {
	case tsdb.AggAvg:
		if exact {
			pts, err := read("mean")
			return yieldAll(pts, err, yield)
		}
		sums, err := read("sum")
		if err != nil {
			return err
		}
		counts, err := read("count")
		if err != nil {
			return err
		}
		return combineAvg(sums, counts, iMS, yield)
	case tsdb.AggSum:
		pts, err := read("sum")
		if err != nil {
			return err
		}
		return rebucket(pts, iMS, func(a, b float64) float64 { return a + b }, yield)
	case tsdb.AggCount:
		pts, err := read("count")
		if err != nil {
			return err
		}
		return rebucket(pts, iMS, func(a, b float64) float64 { return a + b }, yield)
	case tsdb.AggMin:
		pts, err := read("min")
		if err != nil {
			return err
		}
		return rebucket(pts, iMS, math.Min, yield)
	case tsdb.AggMax:
		pts, err := read("max")
		if err != nil {
			return err
		}
		return rebucket(pts, iMS, math.Max, yield)
	case tsdb.AggP50, tsdb.AggP95, tsdb.AggP99:
		// exact by pickTier: each window is one query bucket already.
		pts, err := read(string(fn))
		return yieldAll(pts, err, yield)
	}
	return nil
}

// yieldAll streams a read result, propagating the read error first.
func yieldAll(pts []tsdb.Point, err error, yield func(tsdb.Point) error) error {
	if err != nil {
		return err
	}
	for _, p := range pts {
		if err := yield(p); err != nil {
			return err
		}
	}
	return nil
}

// rebucket folds window points into coarser buckets with op,
// streaming each bucket as soon as its boundary passes. With iMS
// equal to the window resolution every bucket holds exactly one point
// and the fold is the identity.
func rebucket(pts []tsdb.Point, iMS int64, op func(a, b float64) float64, yield func(tsdb.Point) error) error {
	if len(pts) == 0 {
		return nil
	}
	cur := tsdb.Point{Timestamp: math.MinInt64}
	for _, p := range pts {
		b := p.Timestamp - p.Timestamp%iMS
		if b != cur.Timestamp {
			if cur.Timestamp != math.MinInt64 {
				if err := yield(cur); err != nil {
					return err
				}
			}
			cur = tsdb.Point{Timestamp: b, Value: p.Value}
			continue
		}
		cur.Value = op(cur.Value, p.Value)
	}
	return yield(cur)
}

// combineAvg merges per-window sums and counts into per-bucket means,
// streamed in timestamp order. The two series are written atomically
// per window, so they align; buckets missing a count (or with a zero
// count) are skipped rather than divided by zero. Both rebucketed
// series are in timestamp order already, so the pairing is a merge
// join — no timestamp map.
func combineAvg(sums, counts []tsdb.Point, iMS int64, yield func(tsdb.Point) error) error {
	var s, c []tsdb.Point
	if err := rebucket(sums, iMS, func(a, b float64) float64 { return a + b },
		func(p tsdb.Point) error { s = append(s, p); return nil }); err != nil {
		return err
	}
	if err := rebucket(counts, iMS, func(a, b float64) float64 { return a + b },
		func(p tsdb.Point) error { c = append(c, p); return nil }); err != nil {
		return err
	}
	ci := 0
	for _, p := range s {
		for ci < len(c) && c[ci].Timestamp < p.Timestamp {
			ci++
		}
		if ci < len(c) && c[ci].Timestamp == p.Timestamp && c[ci].Value > 0 {
			if err := yield(tsdb.Point{Timestamp: p.Timestamp, Value: p.Value / c[ci].Value}); err != nil {
				return err
			}
		}
	}
	return nil
}
