package rollup

// Open-window persistence: the engine's unsealed tail — per-series
// watermarks, per-tier sealed horizons, and the open windows' raw
// values — lives only in memory. Without persistence a restart seals
// nothing and forgets everything accumulated since the last watermark
// pass, so the first post-restart windows come out short (or, worse,
// re-aggregate points the store replays from its WAL on top of an
// empty sealedUntil and double-write derived series). With
// Config.StatePath set, the engine snapshots that state atomically
// (tmp + fsync + rename) on every background tick and on Close, and
// New reloads it, re-interning each series against the store — so the
// unsealed tail survives restarts exactly.
//
// File layout (little-endian; see docs/FORMAT.md §4):
//
//	magic "CTTRST1\n" (8)
//	tierCount u16, then per tier: resolutionMS i64
//	seriesCount u32, then per series:
//	  metric  str16        (u16 length + bytes)
//	  tagCount u16, per tag: key str16, value str16
//	  watermark i64
//	  per tier (tierCount entries):
//	    sealedUntil i64
//	    openCount u32, per window: start i64, valCount u32, vals f64...
//	crc32c u32 over everything before it
//
// A state file whose tier ladder differs from the running config is
// discarded wholesale (windows are keyed by tier index); a corrupt or
// truncated file is likewise discarded — the engine starts empty and
// the raw series, durable in the store, backfill nothing but future
// windows, which is the same behaviour as before persistence existed.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"repro/internal/tsdb"
)

// stateMagic heads every rollup state file.
const stateMagic = "CTTRST1\n"

var stateCRCTable = crc32.MakeTable(crc32.Castagnoli)

// appendStr16 appends a u16 length prefix and the string bytes.
func appendStr16(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// stateReader walks a state payload, latching the first framing error.
type stateReader struct {
	b   []byte
	off int
	err error
}

func (r *stateReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("rollup: truncated state at offset %d", r.off)
	}
}

func (r *stateReader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *stateReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *stateReader) i64() int64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *stateReader) f64() float64 {
	return math.Float64frombits(uint64(r.i64()))
}

func (r *stateReader) str16() string {
	n := int(r.u16())
	if r.err != nil || r.off+n > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// SaveState atomically writes the engine's open-window state to
// cfg.StatePath. Safe to call concurrently with ingest: each shard is
// serialized under its own lock, so the snapshot is per-series
// consistent (the only granularity sealing itself has).
func (e *Engine) SaveState() error {
	path := e.cfg.StatePath
	if path == "" {
		return fmt.Errorf("rollup: SaveState without Config.StatePath")
	}
	buf := make([]byte, 0, 4096)
	buf = append(buf, stateMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.tiers)))
	for i := range e.tiers {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.tiers[i].resMS))
	}
	countAt := len(buf)
	buf = append(buf, 0, 0, 0, 0) // seriesCount, patched below
	nSeries := 0
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for _, st := range sh.series {
			if st.skip {
				continue // skip-only states carry nothing to restore
			}
			nSeries++
			buf = appendStr16(buf, st.metric)
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(st.tags)))
			for k, v := range st.tags {
				buf = appendStr16(buf, k)
				buf = appendStr16(buf, v)
			}
			buf = binary.LittleEndian.AppendUint64(buf, uint64(st.watermark))
			for ti := range st.tiers {
				ts := &st.tiers[ti]
				buf = binary.LittleEndian.AppendUint64(buf, uint64(ts.sealedUntil))
				buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ts.open)))
				for w, win := range ts.open {
					buf = binary.LittleEndian.AppendUint64(buf, uint64(w))
					buf = binary.LittleEndian.AppendUint32(buf, uint32(len(win.vals)))
					for _, v := range win.vals {
						buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
					}
				}
			}
		}
		sh.mu.Unlock()
	}
	binary.LittleEndian.PutUint32(buf[countAt:], uint32(nSeries))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, stateCRCTable))

	tmp := path + ".tmp"
	f, err := e.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		e.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		e.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		e.fs.Remove(tmp)
		return err
	}
	if err := e.fs.Rename(tmp, path); err != nil {
		e.fs.Remove(tmp)
		return err
	}
	// Rename durability: fsync the directory so the new name survives
	// a crash. Best-effort — some filesystems reject directory fsync.
	_ = e.fs.SyncDir(filepath.Dir(path))
	return nil
}

// loadState restores the open-window state saved by SaveState,
// re-interning every series against the store. Called from New before
// the engine is subscribed to writes. Returns the number of series
// restored; a missing file restores zero with no error, and a corrupt
// or tier-mismatched file is discarded (zero restored, error
// describing why — callers may log it, the engine still starts).
func (e *Engine) loadState() (int, error) {
	raw, err := e.fs.ReadFile(e.cfg.StatePath)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	if len(raw) < len(stateMagic)+4 || string(raw[:len(stateMagic)]) != stateMagic {
		return 0, fmt.Errorf("rollup: %s: bad state magic", e.cfg.StatePath)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, stateCRCTable) != binary.LittleEndian.Uint32(tail) {
		return 0, fmt.Errorf("rollup: %s: state CRC mismatch", e.cfg.StatePath)
	}
	r := &stateReader{b: body, off: len(stateMagic)}
	nTiers := int(r.u16())
	if nTiers != len(e.tiers) {
		return 0, fmt.Errorf("rollup: %s: state has %d tiers, config has %d — discarding", e.cfg.StatePath, nTiers, len(e.tiers))
	}
	for i := 0; i < nTiers; i++ {
		if res := r.i64(); r.err == nil && res != e.tiers[i].resMS {
			return 0, fmt.Errorf("rollup: %s: tier %d resolution %dms != configured %dms — discarding", e.cfg.StatePath, i, res, e.tiers[i].resMS)
		}
	}
	nSeries := int(r.u32())
	restored := 0
	for si := 0; si < nSeries && r.err == nil; si++ {
		metric := r.str16()
		nTags := int(r.u16())
		var tags map[string]string
		if nTags > 0 {
			tags = make(map[string]string, nTags)
		}
		for ti := 0; ti < nTags; ti++ {
			k := r.str16()
			tags[k] = r.str16()
		}
		watermark := r.i64()
		tierStates := make([]tierState, nTiers)
		for ti := 0; ti < nTiers; ti++ {
			tierStates[ti].sealedUntil = r.i64()
			nOpen := int(r.u32())
			tierStates[ti].open = make(map[int64]*window, nOpen)
			for wi := 0; wi < nOpen && r.err == nil; wi++ {
				start := r.i64()
				nVals := int(r.u32())
				if r.err != nil || nVals < 0 || r.off+8*nVals > len(r.b) {
					r.fail()
					break
				}
				win := &window{vals: make([]float64, 0, nVals)}
				for vi := 0; vi < nVals; vi++ {
					win.vals = append(win.vals, r.f64())
				}
				tierStates[ti].open[start] = win
			}
		}
		if r.err != nil {
			break
		}
		ref, err := e.db.Intern(metric, tags)
		if err != nil {
			continue // series no longer internable; drop its tail
		}
		st := e.newSeriesState(ref)
		if st.skip {
			continue // config changed underneath: now a reserved series
		}
		st.watermark = watermark
		st.tiers = tierStates
		sh := &e.shards[uint64(ref.ID())%engineShards]
		sh.mu.Lock()
		sh.series[ref.ID()] = st
		sh.mu.Unlock()
		restored++
	}
	if r.err != nil {
		// Mid-file corruption: throw away everything — a partial
		// restore could resurrect some series' sealed horizons but not
		// others', and the all-or-nothing rule is what FORMAT.md
		// documents.
		for i := range e.shards {
			sh := &e.shards[i]
			sh.mu.Lock()
			sh.series = make(map[tsdb.SeriesID]*seriesState)
			sh.mu.Unlock()
		}
		return 0, fmt.Errorf("%w — discarding state", r.err)
	}
	return restored, nil
}
