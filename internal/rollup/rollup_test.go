package rollup

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/tsdb"
)

var t0 = time.Date(2017, time.March, 1, 10, 0, 0, 0, time.UTC)

func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

// genPoints produces a jittered ~cadence stream over span with
// out-of-order arrivals: points are shuffled within sliding groups,
// so a later-timestamped point regularly arrives before an earlier
// one inside the same (unsealed) window.
func genPoints(rng *rand.Rand, metric string, tags map[string]string, span, cadence time.Duration) []tsdb.DataPoint {
	var pts []tsdb.DataPoint
	v := 400.0
	for off := time.Duration(0); off < span; off += cadence {
		jitter := time.Duration(rng.Intn(int(cadence / 2)))
		v += rng.Float64()*4 - 2
		pts = append(pts, tsdb.DataPoint{
			Metric: metric, Tags: tags,
			Point: tsdb.Point{Timestamp: t0.Add(off + jitter).UnixMilli(), Value: v},
		})
	}
	// Shuffle within disjoint groups: arrivals are out of order by up
	// to a few minutes — inside the engine's grace allowance, so no
	// point is dropped as late.
	for i := 0; i+6 <= len(pts); i += 6 {
		g := pts[i : i+6]
		rng.Shuffle(len(g), func(a, b int) { g[a], g[b] = g[b], g[a] })
	}
	return pts
}

// TestWindowMatchesRawReaggregation is the property test of the
// ISSUE: every sealed rollup window must equal re-aggregating the raw
// points it covers, for every stored statistic, including points that
// arrived out of order inside the unsealed window.
func TestWindowMatchesRawReaggregation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	eng, err := New(db, Config{
		Tiers:      []Tier{{Resolution: time.Minute}, {Resolution: time.Hour}},
		Grace:      10 * time.Minute,
		FlushEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	tags := map[string]string{"sensor": "s1", "city": "trondheim"}
	pts := genPoints(rng, "air.co2", tags, 3*time.Hour, 20*time.Second)
	for _, dp := range pts {
		if err := db.Put(dp); err != nil {
			t.Fatal(err)
		}
	}
	if late := eng.Stats().Late; late != 0 {
		t.Fatalf("grace window too small for shuffled arrivals: %d late drops", late)
	}
	eng.FlushAll()

	for _, res := range []time.Duration{time.Minute, time.Hour} {
		resMS := res.Milliseconds()
		// Re-aggregate raw input per window.
		expect := map[int64][]float64{}
		for _, dp := range pts {
			w := dp.Timestamp - dp.Timestamp%resMS
			expect[w] = append(expect[w], dp.Value)
		}
		derived := MetricPrefix + formatRes(res) + ".air.co2"
		for _, s := range windowStats {
			st := map[string]string{"sensor": "s1", "city": "trondheim", StatTag: s.name}
			got, err := db.SeriesWindowExact(derived, st, 0, math.MaxInt64/2)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(expect) {
				t.Fatalf("%s %s: %d windows stored, want %d", res, s.name, len(got), len(expect))
			}
			for _, p := range got {
				vals, ok := expect[p.Timestamp]
				if !ok {
					t.Fatalf("%s %s: unexpected window at %d", res, s.name, p.Timestamp)
				}
				if want := s.agg.Apply(vals); !approxEq(p.Value, want) {
					t.Fatalf("%s %s window %d: got %v, want %v", res, s.name, p.Timestamp, p.Value, want)
				}
			}
		}
	}
}

// buildPair writes identical multi-series data into a plain store and
// a rollup-backed one.
func buildPair(t *testing.T, grace time.Duration) (*tsdb.DB, *tsdb.DB, *Engine) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	raw, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	rolled, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(rolled, Config{
		Tiers:      []Tier{{Resolution: time.Minute}, {Resolution: time.Hour}},
		Grace:      grace,
		FlushEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close(); raw.Close(); rolled.Close() })
	for i := 0; i < 3; i++ {
		tags := map[string]string{"sensor": fmt.Sprintf("s%d", i+1), "city": "vejle"}
		for _, dp := range genPoints(rng, "air.no2", tags, 4*time.Hour, 30*time.Second) {
			if err := raw.Put(dp); err != nil {
				t.Fatal(err)
			}
			if err := rolled.Put(dp); err != nil {
				t.Fatal(err)
			}
		}
	}
	if late := eng.Stats().Late; late != 0 {
		t.Fatalf("test data exceeded the grace window: %d late drops", late)
	}
	return raw, rolled, eng
}

func sameResults(t *testing.T, label string, a, b []tsdb.ResultSeries) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d series vs %d", label, len(a), len(b))
	}
	for i := range a {
		if len(a[i].Points) != len(b[i].Points) {
			t.Fatalf("%s series %d: %d points vs %d", label, i, len(a[i].Points), len(b[i].Points))
		}
		for j := range a[i].Points {
			pa, pb := a[i].Points[j], b[i].Points[j]
			if pa.Timestamp != pb.Timestamp || !approxEq(pa.Value, pb.Value) {
				t.Fatalf("%s series %d point %d: (%d,%v) vs (%d,%v)",
					label, i, j, pa.Timestamp, pa.Value, pb.Timestamp, pb.Value)
			}
		}
	}
}

// TestExecuteParity: with every window sealed, rollup-served queries
// must be bucket-for-bucket identical to raw scans, across
// aggregators, intervals, partial edge buckets and group-bys.
func TestExecuteParity(t *testing.T) {
	raw, rolled, eng := buildPair(t, 10*time.Minute)
	eng.FlushAll()

	// Mid-bucket start and an end beyond the data exercise the raw
	// head/tail edges around the tier-served middle.
	start := t0.Add(90 * time.Second).UnixMilli()
	end := t0.Add(5 * time.Hour).UnixMilli()
	for _, fn := range []tsdb.Aggregator{tsdb.AggAvg, tsdb.AggSum, tsdb.AggMin, tsdb.AggMax, tsdb.AggCount, tsdb.AggP50, tsdb.AggP95, tsdb.AggP99, tsdb.AggDev} {
		for _, iv := range []time.Duration{time.Minute, 5 * time.Minute, time.Hour} {
			for _, tags := range []map[string]string{{"sensor": "*"}, nil} {
				q := tsdb.Query{
					Metric: "air.no2", Tags: tags, Start: start, End: end,
					Aggregator: tsdb.AggAvg, Downsample: iv, DownsampleFn: fn,
				}
				want, err := raw.Execute(q)
				if err != nil {
					t.Fatal(err)
				}
				got, err := rolled.Execute(q)
				if err != nil {
					t.Fatal(err)
				}
				sameResults(t, fmt.Sprintf("fn=%s iv=%s tags=%v", fn, iv, tags), got, want)
			}
		}
	}
	st := eng.Stats()
	if st.QueryHits == 0 {
		t.Fatal("no query was served from rollup tiers")
	}
	// Percentiles at non-native intervals must have fallen back.
	if st.QueryFallbacks == 0 {
		t.Fatal("expected raw fallbacks for non-composable aggregators")
	}
}

// TestUnsealedTailFallback: before any window seals nothing can be
// served from tiers, and results still match a raw scan exactly.
func TestUnsealedTailFallback(t *testing.T) {
	raw, rolled, eng := buildPair(t, 24*time.Hour) // grace holds all windows open
	q := tsdb.Query{
		Metric: "air.no2", Tags: map[string]string{"sensor": "*"},
		Start: t0.UnixMilli(), End: t0.Add(4 * time.Hour).UnixMilli(),
		Aggregator: tsdb.AggAvg, Downsample: time.Minute,
	}
	want, err := raw.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rolled.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "unsealed", got, want)
	st := eng.Stats()
	if st.QueryHits != 0 {
		t.Fatalf("served %d downsamples from tiers with every window unsealed", st.QueryHits)
	}
	if st.Tiers[0].OpenWindows == 0 {
		t.Fatal("expected open windows")
	}

	eng.FlushAll()
	got, err = rolled.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "sealed", got, want)
	if eng.Stats().QueryHits == 0 {
		t.Fatal("expected tier-served downsamples after FlushAll")
	}
}

// TestTieredRetention: raw and each tier age out independently.
func TestTieredRetention(t *testing.T) {
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	eng, err := New(db, Config{
		Tiers: []Tier{
			{Resolution: time.Minute, Retention: 2 * time.Hour},
			{Resolution: time.Hour}, // keep forever
		},
		RawRetention: time.Hour,
		FlushEvery:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	tags := map[string]string{"sensor": "s1"}
	for off := time.Duration(0); off < 6*time.Hour; off += time.Minute {
		if err := db.Put(tsdb.DataPoint{
			Metric: "air.co2", Tags: tags,
			Point: tsdb.Point{Timestamp: t0.Add(off).UnixMilli(), Value: 400},
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.FlushAll()
	now := t0.Add(6 * time.Hour)
	removed, err := eng.ApplyRetention(now)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("retention removed nothing")
	}

	countIn := func(metric string, tg map[string]string, from, to time.Time) int {
		pts, err := db.SeriesWindowExact(metric, tg, from.UnixMilli(), to.UnixMilli()-1)
		if err != nil {
			t.Fatal(err)
		}
		return len(pts)
	}
	if n := countIn("air.co2", tags, t0, now.Add(-time.Hour)); n != 0 {
		t.Fatalf("%d raw points survived raw retention", n)
	}
	if n := countIn("air.co2", tags, now.Add(-time.Hour), now); n == 0 {
		t.Fatal("recent raw points were deleted")
	}
	mtags := map[string]string{"sensor": "s1", StatTag: "mean"}
	if n := countIn("rollup.1m.air.co2", mtags, t0, now.Add(-2*time.Hour)); n != 0 {
		t.Fatalf("%d 1m windows survived tier retention", n)
	}
	if n := countIn("rollup.1m.air.co2", mtags, now.Add(-2*time.Hour), now); n == 0 {
		t.Fatal("recent 1m windows were deleted")
	}
	if n := countIn("rollup.1h.air.co2", mtags, t0, now); n == 0 {
		t.Fatal("1h tier (infinite retention) lost windows")
	}
	if eng.Stats().RetentionDeleted == 0 {
		t.Fatal("retention counter not incremented")
	}
}

// TestLateArrivalDropped: with zero grace, a point behind the sealed
// horizon is excluded from rollups (and counted) but stays raw.
func TestLateArrivalDropped(t *testing.T) {
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	eng, err := New(db, Config{Tiers: []Tier{{Resolution: time.Minute}}, FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	tags := map[string]string{"sensor": "s1"}
	put := func(off time.Duration, v float64) {
		t.Helper()
		if err := db.Put(tsdb.DataPoint{
			Metric: "air.co2", Tags: tags,
			Point: tsdb.Point{Timestamp: t0.Add(off).UnixMilli(), Value: v},
		}); err != nil {
			t.Fatal(err)
		}
	}
	put(0, 400)
	put(30*time.Second, 410)
	put(70*time.Second, 420) // watermark passes 1m: first window seals
	put(45*time.Second, 999) // late for the sealed window

	st := eng.Stats()
	if st.Late != 1 {
		t.Fatalf("late = %d, want 1", st.Late)
	}
	got, err := db.SeriesWindowExact("rollup.1m.air.co2",
		map[string]string{"sensor": "s1", StatTag: "count"}, t0.UnixMilli(), t0.UnixMilli())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Value != 2 {
		t.Fatalf("sealed window count = %v, want one point of value 2", got)
	}
	// The raw series still holds all four points.
	raw, err := db.SeriesWindowExact("air.co2", tags, 0, math.MaxInt64/2)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 4 {
		t.Fatalf("raw points = %d, want 4", len(raw))
	}
}

// TestServeSkipsDerivedAndReserved: direct queries over the derived
// namespace and series carrying the reserved stat tag bypass rollups.
func TestServeSkipsDerivedAndReserved(t *testing.T) {
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	eng, err := New(db, Config{Tiers: []Tier{{Resolution: time.Minute}}, FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := db.Put(tsdb.DataPoint{
		Metric: "x", Tags: map[string]string{StatTag: "weird"},
		Point: tsdb.Point{Timestamp: t0.UnixMilli(), Value: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Skipped != 1 || st.Observed != 0 {
		t.Fatalf("skipped=%d observed=%d, want 1/0", st.Skipped, st.Observed)
	}
	derivedRef, err := db.Intern("rollup.1m.x", map[string]string{StatTag: "mean"})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := eng.ServeDownsample(derivedRef, 0, 1, time.Minute, tsdb.AggAvg,
		func(tsdb.Point) error { return nil }); ok {
		t.Fatal("served a downsample over the derived namespace")
	}
}

// TestServeRespectsTierRetention: when a tier's retention has aged
// out derived windows that raw points outlive, queries over the old
// range must come from raw, not silently go empty.
func TestServeRespectsTierRetention(t *testing.T) {
	now := t0.Add(6 * time.Hour)
	raw, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	rolled, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(rolled, Config{
		Tiers:      []Tier{{Resolution: time.Minute, Retention: 2 * time.Hour}},
		FlushEvery: -1,
		Now:        func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close(); raw.Close(); rolled.Close() })

	tags := map[string]string{"sensor": "s1"}
	for off := time.Duration(0); off < 6*time.Hour; off += time.Minute {
		dp := tsdb.DataPoint{
			Metric: "air.co2", Tags: tags,
			Point: tsdb.Point{Timestamp: t0.Add(off).UnixMilli(), Value: 400 + float64(off/time.Minute)},
		}
		if err := raw.Put(dp); err != nil {
			t.Fatal(err)
		}
		if err := rolled.Put(dp); err != nil {
			t.Fatal(err)
		}
	}
	eng.FlushAll()
	if _, err := eng.ApplyRetention(now); err != nil {
		t.Fatal(err)
	}

	q := tsdb.Query{
		Metric: "air.co2", Tags: map[string]string{"sensor": "s1"},
		Start: t0.UnixMilli(), End: now.UnixMilli(),
		Aggregator: tsdb.AggAvg, Downsample: time.Minute,
	}
	want, err := raw.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rolled.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "tier-retention", got, want)
	if eng.Stats().QueryHits == 0 {
		t.Fatal("recent range was not tier-served")
	}
}

// TestPruneDeadSeriesState: a series fully aged out by retention gets
// a new SeriesID if it ever returns, so the engine must drop its
// drained state instead of accumulating one entry per kill/revive
// cycle.
func TestPruneDeadSeriesState(t *testing.T) {
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	eng, err := New(db, Config{Tiers: []Tier{{Resolution: time.Minute}}, FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	tags := map[string]string{"sensor": "prune"}
	if err := db.Put(tsdb.DataPoint{Metric: "pr.m", Tags: tags,
		Point: tsdb.Point{Timestamp: t0.UnixMilli(), Value: 1}}); err != nil {
		t.Fatal(err)
	}
	// Count tracked (non-skip) states: sealing writes derived series,
	// whose skip-only states are expected and live.
	states := func() int {
		n := 0
		for i := range eng.shards {
			eng.shards[i].mu.Lock()
			for _, st := range eng.shards[i].series {
				if !st.skip {
					n++
				}
			}
			eng.shards[i].mu.Unlock()
		}
		return n
	}
	if states() == 0 {
		t.Fatal("observer did not create tracking state")
	}
	// Age the raw series out entirely (the derived windows too), then
	// flush far past the window end so everything seals and the dead
	// state drains.
	if _, err := db.DeleteBefore(t0.Add(time.Hour).UnixMilli()); err != nil {
		t.Fatal(err)
	}
	eng.Flush(t0.Add(2 * time.Hour))
	if n := states(); n != 0 {
		t.Fatalf("dead series state not pruned: %d entries remain", n)
	}
	// The series coming back (new SeriesID) tracks again.
	if err := db.Put(tsdb.DataPoint{Metric: "pr.m", Tags: tags,
		Point: tsdb.Point{Timestamp: t0.Add(3 * time.Hour).UnixMilli(), Value: 2}}); err != nil {
		t.Fatal(err)
	}
	if states() == 0 {
		t.Fatal("revived series not tracked")
	}
}
