package rollup

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/tsdb"
)

// stateCfg builds a two-tier config persisting to dir/rollup.state
// with the background loop disabled (tests drive saves explicitly).
func stateCfg(dir string) Config {
	return Config{
		Tiers:      []Tier{{Resolution: time.Minute}, {Resolution: time.Hour}},
		Grace:      5 * time.Minute,
		FlushEvery: -1,
		StatePath:  filepath.Join(dir, "rollup.state"),
	}
}

func putSeries(t *testing.T, db *tsdb.DB, metric string, n int, stepSec int) {
	t.Helper()
	tags := map[string]string{"sensor": "s1", "city": "trondheim"}
	for i := 0; i < n; i++ {
		dp := tsdb.DataPoint{
			Metric: metric, Tags: tags,
			Point: tsdb.Point{Timestamp: t0.Add(time.Duration(i*stepSec) * time.Second).UnixMilli(), Value: float64(i)},
		}
		if err := db.Put(dp); err != nil {
			t.Fatal(err)
		}
	}
}

// openWindows sums open windows across all tiers.
func openWindows(e *Engine) int {
	n := 0
	for _, ts := range e.Stats().Tiers {
		n += ts.OpenWindows
	}
	return n
}

// TestStateSurvivesRestart: the unsealed tail — open windows,
// watermarks, sealed horizons — must round-trip through Close/New, so
// a restarted engine seals the same windows with the same values a
// never-restarted one would.
func TestStateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	eng, err := New(db, stateCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	// 95 points at 30s: watermark-sealing covers the first ~42 1m
	// windows (grace 5m); the rest — and the whole 1h window — stay
	// open, i.e. there is real unsealed tail to lose.
	putSeries(t, db, "air.co2", 95, 30)
	before := eng.Stats()
	openBefore := openWindows(eng)
	if openBefore == 0 {
		t.Fatal("test needs open windows before restart")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// Close with StatePath must NOT force-flush the tail: the derived
	// write counter would jump if FlushAll had run.
	if after := eng.Stats(); after.PointsWritten != before.PointsWritten {
		t.Fatalf("Close force-flushed: written %d -> %d", before.PointsWritten, after.PointsWritten)
	}

	eng2, err := New(db, stateCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if got := eng2.Stats().StateErrors; got != 0 {
		t.Fatalf("restore counted %d state errors", got)
	}
	if got := openWindows(eng2); got != openBefore {
		t.Fatalf("open windows after restart = %d, want %d", got, openBefore)
	}

	// Drive the restored engine to seal everything and compare every
	// derived point against a control engine that never restarted.
	eng2.FlushAll()
	ctrlDB, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrlDB.Close()
	cfg := stateCfg(t.TempDir())
	cfg.StatePath = ""
	ctrl, err := New(ctrlDB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	putSeries(t, ctrlDB, "air.co2", 95, 30)
	ctrl.FlushAll()

	for _, tier := range []string{"1m", "1h"} {
		for _, stat := range []string{"count", "sum", "min", "max", "mean", "p50", "p95", "p99"} {
			metric := "rollup." + tier + ".air.co2"
			tags := map[string]string{"sensor": "s1", "city": "trondheim", "stat": stat}
			got, err := db.SeriesWindowExact(metric, tags, 0, 1<<62)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ctrlDB.SeriesWindowExact(metric, tags, 0, 1<<62)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s stat=%s: %d points after restart, control has %d", metric, stat, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s stat=%s point %d: got %+v want %+v", metric, stat, i, got[i], want[i])
				}
			}
		}
	}
}

// TestStateRestartNoDoubleCount: after a restart the restored sealed
// horizon must make WAL-replayed raw history look already-processed.
// Replaying those points through a fresh engine without state would
// re-seal every window and double-write the derived series.
func TestStateRestartNoDoubleCount(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	db, err := tsdb.Open(walDir)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(db, stateCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	putSeries(t, db, "air.co2", 95, 30)
	sealedBefore := eng.Stats().WindowsSealed
	if sealedBefore == 0 {
		t.Fatal("test needs sealed windows before restart")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the store replays its WAL (raw + derived points), then
	// the engine restores its state. Replay happens before the engine
	// subscribes, so nothing is observed — but a late write landing in
	// an already-sealed window must be counted late, not folded in.
	db2, err := tsdb.Open(walDir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	eng2, err := New(db2, stateCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	tags := map[string]string{"sensor": "s1", "city": "trondheim"}
	late := tsdb.DataPoint{
		Metric: "air.co2", Tags: tags,
		Point: tsdb.Point{Timestamp: t0.UnixMilli(), Value: 1}, // window 0: sealed long ago
	}
	if err := db2.Put(late); err != nil {
		t.Fatal(err)
	}
	st := eng2.Stats()
	if st.Late != 1 {
		t.Fatalf("late = %d, want 1 (sealed horizon lost across restart)", st.Late)
	}
	// And the sealed count-point for window 0 must still say 2 (the
	// original points), not have been re-sealed as a new window.
	got, err := db2.SeriesWindowExact("rollup.1m.air.co2",
		map[string]string{"sensor": "s1", "city": "trondheim", "stat": "count"}, 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no sealed count points survived restart")
	}
	if got[0].Timestamp != t0.UnixMilli() || got[0].Value != 2 {
		t.Fatalf("window-0 count = %+v, want {%d 2}", got[0], t0.UnixMilli())
	}
}

// TestStateCorruptDiscarded: a corrupt state file must not poison the
// engine — it starts empty, counts one state error, and a tier-ladder
// change likewise discards the file.
func TestStateCorruptDiscarded(t *testing.T) {
	dir := t.TempDir()
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	eng, err := New(db, stateCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	putSeries(t, db, "air.co2", 20, 30)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "rollup.state")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	eng2, err := New(db, stateCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	if got := eng2.Stats().StateErrors; got != 1 {
		t.Fatalf("corrupt state: StateErrors = %d, want 1", got)
	}
	if got := openWindows(eng2); got != 0 {
		t.Fatalf("corrupt state restored %d windows, want 0", got)
	}
	if err := eng2.Close(); err != nil { // rewrites a clean file
		t.Fatal(err)
	}

	// Tier-ladder mismatch: same file, different config — discarded.
	cfg := stateCfg(dir)
	cfg.Tiers = []Tier{{Resolution: 2 * time.Minute}}
	eng3, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng3.Close()
	if got := eng3.Stats().StateErrors; got != 1 {
		t.Fatalf("tier mismatch: StateErrors = %d, want 1", got)
	}
	if got := openWindows(eng3); got != 0 {
		t.Fatalf("tier mismatch restored %d windows, want 0", got)
	}
}
