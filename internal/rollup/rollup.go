// Package rollup is the continuous-aggregation engine of the CTT
// cloud: it subscribes to every write landing in the time-series
// store, maintains per-series aggregation windows at a ladder of
// resolutions (raw → 1m → 1h by default), and flushes each sealed
// window back into the store as derived series — one per statistic
// (count, sum, min, max, mean, p50, p95, p99) — under the
// rollup.<resolution>.<metric> namespace with a stat=<name> tag.
//
// The paper's pilots accumulate months of 5-minute sensor history
// ("historic data ... collected since January 2017", §3) that
// dashboards read almost exclusively downsampled; scanning raw
// Gorilla blocks for every hourly-average panel is wasted work. The
// engine instead answers those reads from the rollup tiers: it
// installs itself as the store's RollupPlanner, so any query whose
// downsample interval is a multiple of a tier resolution (and whose
// aggregator the tier can reproduce exactly) is served from the
// coarsest satisfying tier, skipping raw block decodes entirely. The
// unsealed tail window — and the partial buckets at the range edges —
// transparently fall back to the raw scan, so served results match a
// full raw scan bucket for bucket.
//
// Windows seal on a watermark: once a series' newest-seen timestamp
// (minus a configurable grace allowance for out-of-order arrivals)
// passes a window's end, the window is aggregated and written out. A
// background loop additionally seals by wall (or injected) clock, so
// idle series flush too, and applies per-tier retention: raw points
// and each rollup tier age out on their own schedules, turning the
// store into tiered storage — recent data at full resolution, months
// of history at 1m/1h.
package rollup

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/tsdb"
	"repro/internal/tsdb/fsio"
)

// MetricPrefix namespaces every derived series the engine writes.
// Writes under this prefix are never themselves rolled up.
const MetricPrefix = "rollup."

// StatTag is the tag key carrying the statistic name on derived
// series. Raw series that already use this tag key are not rolled up
// (they would collide with the derived namespace).
const StatTag = "stat"

// Tier is one rollup level: windows of Resolution, kept for
// Retention (0 = forever).
type Tier struct {
	Resolution time.Duration
	Retention  time.Duration
}

// Config tunes the engine. Zero values select the defaults.
type Config struct {
	// Tiers lists the rollup levels, finest first. Default:
	// 1m kept 7 days, 1h kept 90 days.
	Tiers []Tier
	// RawRetention ages out raw (non-derived) points older than this;
	// 0 keeps them forever.
	RawRetention time.Duration
	// Grace delays watermark sealing: a window seals only once the
	// series watermark passes its end by Grace, allowing out-of-order
	// arrivals that far behind the newest point. Default 0.
	Grace time.Duration
	// FlushEvery is the background seal/retention cadence. Default
	// 10s; negative disables the background loop entirely (callers
	// drive Flush/ApplyRetention themselves — tests and benches).
	FlushEvery time.Duration
	// Now injects the clock used for idle sealing and retention
	// cutoffs (simulated pilots run on simulated time). Default
	// time.Now.
	Now func() time.Time
	// StatePath, when set, persists the engine's unsealed tail — open
	// windows, watermarks, sealed horizons — to this file (atomic
	// tmp+rename, format "CTTRST1\n", see docs/FORMAT.md §4) on every
	// background tick and on Close, and restores it in New. With it
	// set, Close keeps open windows open across restarts instead of
	// force-flushing short windows via FlushAll.
	StatePath string
	// FS is the filesystem the state file is written through (default
	// fsio.OS); tests inject faults here.
	FS fsio.FS
}

// stats computed for every sealed window, in storage order.
var windowStats = []struct {
	name string
	agg  tsdb.Aggregator
}{
	{"count", tsdb.AggCount},
	{"sum", tsdb.AggSum},
	{"min", tsdb.AggMin},
	{"max", tsdb.AggMax},
	{"mean", tsdb.AggAvg},
	{"p50", tsdb.AggP50},
	{"p95", tsdb.AggP95},
	{"p99", tsdb.AggP99},
}

const engineShards = 16

// Engine is the continuous-aggregation subsystem over one store.
type Engine struct {
	db    *tsdb.DB
	cfg   Config
	fs    fsio.FS
	tiers []tierSpec

	shards [engineShards]engineShard

	removeObs func()
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	// counters
	observed  atomic.Uint64 // raw points seen by the observer
	late      atomic.Uint64 // points behind ≥1 tier's sealed horizon (once per point)
	skipped   atomic.Uint64 // points on series with a reserved stat tag
	sealedN   atomic.Uint64 // windows sealed
	written   atomic.Uint64 // derived points written back
	hits      atomic.Uint64 // per-series downsamples served from tiers
	fallbacks atomic.Uint64 // per-series downsamples that fell back to raw
	retained  atomic.Uint64 // points removed by retention
	retErrs   atomic.Uint64 // background retention/compaction passes that failed
	stateErrs atomic.Uint64 // state-file saves/loads that failed (state discarded)

	// obsHist, when installed, times each observeBatch call — the
	// rollup fold is on the store's observer fan-out path, so this is
	// the engine's share of ingest latency.
	obsHist atomic.Pointer[obs.Histogram]
}

// SetObserveHistogram installs a histogram receiving the duration of
// every observeBatch call. Nil-safe to leave uninstalled.
func (e *Engine) SetObserveHistogram(h *obs.Histogram) {
	e.obsHist.Store(h)
}

// tierSpec is a Tier with its derived values precomputed.
type tierSpec struct {
	res          time.Duration
	resMS        int64
	retention    time.Duration
	name         string // "1m", "1h", "90s"
	metricPrefix string // "rollup.1m."
}

type engineShard struct {
	mu     sync.Mutex
	series map[tsdb.SeriesID]*seriesState
}

type seriesState struct {
	ref       *tsdb.Ref // interned handle; dead ⇒ prunable once drained
	metric    string
	tags      map[string]string // interned canonical map: read-only
	skip      bool              // derived series / reserved stat tag: never rolled up
	countSkip bool              // reserved stat tag: count on the skipped counter
	watermark int64             // newest event timestamp seen (ms)
	tiers     []tierState
}

type tierState struct {
	open        map[int64]*window // by window start (ms)
	sealedUntil int64             // every window with start < sealedUntil is sealed
}

type window struct {
	vals []float64 // arrival order; re-aggregated exactly at seal time
}

// formatRes renders a resolution as the shortest of h/m/s units.
func formatRes(d time.Duration) string {
	switch {
	case d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	default:
		return fmt.Sprintf("%ds", d/time.Second)
	}
}

// New builds an engine over db, subscribes it to the store's write
// feed, installs it as the store's rollup planner, and (unless
// disabled) starts the background seal/retention loop. Call Close to
// flush open windows and detach.
func New(db *tsdb.DB, cfg Config) (*Engine, error) {
	if len(cfg.Tiers) == 0 {
		cfg.Tiers = []Tier{
			{Resolution: time.Minute, Retention: 7 * 24 * time.Hour},
			{Resolution: time.Hour, Retention: 90 * 24 * time.Hour},
		}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.FlushEvery == 0 {
		cfg.FlushEvery = 10 * time.Second
	}
	if cfg.FS == nil {
		cfg.FS = fsio.OS
	}
	e := &Engine{db: db, cfg: cfg, fs: cfg.FS, stop: make(chan struct{})}
	seen := map[int64]bool{}
	for _, t := range cfg.Tiers {
		if t.Resolution < time.Second {
			return nil, fmt.Errorf("rollup: tier resolution %v below 1s", t.Resolution)
		}
		ms := t.Resolution.Milliseconds()
		if seen[ms] {
			return nil, fmt.Errorf("rollup: duplicate tier resolution %v", t.Resolution)
		}
		seen[ms] = true
		name := formatRes(t.Resolution)
		e.tiers = append(e.tiers, tierSpec{
			res: t.Resolution, resMS: ms, retention: t.Retention,
			name: name, metricPrefix: MetricPrefix + name + ".",
		})
	}
	// Finest first, so serving can pick the coarsest satisfying tier
	// by scanning from the back.
	for i := 1; i < len(e.tiers); i++ {
		if e.tiers[i].resMS <= e.tiers[i-1].resMS {
			return nil, fmt.Errorf("rollup: tiers must be sorted by ascending resolution")
		}
	}
	for i := range e.shards {
		e.shards[i].series = make(map[tsdb.SeriesID]*seriesState)
	}
	if cfg.StatePath != "" {
		// Restore the unsealed tail before subscribing to writes: a
		// corrupt or tier-mismatched state file is discarded (the
		// engine starts empty, counted on stateErrs), never fatal.
		if _, err := e.loadState(); err != nil {
			e.stateErrs.Add(1)
		}
	}
	e.removeObs = db.AddBatchObserver(e.observeBatch)
	db.SetRollupPlanner(e)
	if cfg.FlushEvery > 0 {
		e.wg.Add(1)
		go e.loop()
	}
	return e, nil
}

// Close seals and flushes every open window, detaches the engine from
// the store, and stops the background loop.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		close(e.stop)
		e.wg.Wait()
		e.removeObs()
		if e.cfg.StatePath != "" {
			// Persist the unsealed tail instead of force-flushing it:
			// the next New restores these windows and they seal at
			// their natural boundaries. Only if the save fails do we
			// fall back to FlushAll so the data reaches the store.
			if err := e.SaveState(); err != nil {
				e.stateErrs.Add(1)
				e.FlushAll()
			}
		} else {
			e.FlushAll()
		}
		e.db.SetRollupPlanner(nil)
	})
	return nil
}

func (e *Engine) loop() {
	defer e.wg.Done()
	// Supervised: a panic in a seal/retention tick must not silently
	// end continuous aggregation for the process lifetime.
	obs.Supervised("rollup", nil, e.stop, e.loopBody)
}

func (e *Engine) loopBody() {
	ticker := time.NewTicker(e.cfg.FlushEvery)
	defer ticker.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-ticker.C:
			now := e.cfg.Now()
			e.Flush(now)
			if e.cfg.StatePath != "" {
				if err := e.SaveState(); err != nil {
					e.stateErrs.Add(1)
				}
			}
			if _, err := e.ApplyRetention(now); err != nil {
				// A corrupt block or a failed WAL compaction; nothing
				// the loop can do but keep serving — count it so the
				// failure is visible on /metrics instead of silent.
				e.retErrs.Add(1)
				continue
			}
		}
	}
}

// observeBatch is the store write hook, batch-granular: one call per
// stored batch, one engine-shard lock acquisition per shard touched
// by the batch, windows keyed by interned SeriesID — no key strings,
// no tag hashing, and the derived-series / reserved-tag skip decision
// is made once per series instead of once per point.
func (e *Engine) observeBatch(rps []tsdb.RefPoint) {
	if h := e.obsHist.Load(); h != nil {
		defer h.ObserveSince(time.Now())
	}
	var flush []tsdb.DataPoint
	for si := uint64(0); si < engineShards; si++ {
		sh := &e.shards[si]
		locked := false
		for i := range rps {
			id := uint64(rps[i].Ref.ID())
			if id%engineShards != si {
				continue
			}
			if !locked {
				sh.mu.Lock()
				locked = true
			}
			flush = e.observeOneLocked(sh, rps[i], flush)
		}
		if locked {
			sh.mu.Unlock()
		}
	}
	e.writeDerived(flush)
}

// observeOneLocked folds one point into every tier's open window of
// its series and seals whatever the advancing watermark has passed.
// Caller holds the shard lock.
func (e *Engine) observeOneLocked(sh *engineShard, rp tsdb.RefPoint, flush []tsdb.DataPoint) []tsdb.DataPoint {
	st, ok := sh.series[rp.Ref.ID()]
	if !ok {
		st = e.newSeriesState(rp.Ref)
		sh.series[rp.Ref.ID()] = st
	}
	if st.skip {
		if st.countSkip {
			e.skipped.Add(1)
		}
		return flush
	}
	e.observed.Add(1)
	if rp.Timestamp > st.watermark {
		st.watermark = rp.Timestamp
	}
	lateAny := false
	for i := range e.tiers {
		ts := &st.tiers[i]
		w := rp.Timestamp - rp.Timestamp%e.tiers[i].resMS
		if w < ts.sealedUntil {
			lateAny = true
			continue
		}
		win := ts.open[w]
		if win == nil {
			win = &window{}
			ts.open[w] = win
		}
		win.vals = append(win.vals, rp.Value)
	}
	if lateAny {
		e.late.Add(1)
	}
	return e.sealPassedLocked(st, st.watermark-e.cfg.Grace.Milliseconds(), flush)
}

// newSeriesState builds the tracking state for a first-seen series,
// deciding once whether it is ever rolled up. Derived (rollup.*)
// writes and series carrying the reserved stat tag keep a skip-only
// state so the per-point path is a single map hit.
func (e *Engine) newSeriesState(ref *tsdb.Ref) *seriesState {
	metric, tags := ref.Metric(), ref.Tags()
	st := &seriesState{ref: ref, metric: metric, tags: tags}
	if strings.HasPrefix(metric, MetricPrefix) {
		st.skip = true // derived write: never roll up rollups
		return st
	}
	if _, reserved := tags[StatTag]; reserved {
		st.skip, st.countSkip = true, true
		return st
	}
	st.tiers = make([]tierState, len(e.tiers))
	for i := range st.tiers {
		st.tiers[i].open = make(map[int64]*window)
	}
	return st
}

// sealPassedLocked seals, for every tier of st, each open window that
// ends at or before horizon, appending the derived points to out.
// Caller holds the shard lock.
func (e *Engine) sealPassedLocked(st *seriesState, horizon int64, out []tsdb.DataPoint) []tsdb.DataPoint {
	if st.skip || horizon <= 0 {
		return out
	}
	for i := range e.tiers {
		spec := &e.tiers[i]
		ts := &st.tiers[i]
		// hA: start of the window containing the horizon — every
		// window strictly before it has fully elapsed.
		hA := horizon - horizon%spec.resMS
		if hA <= ts.sealedUntil {
			continue
		}
		for w, win := range ts.open {
			if w < hA {
				out = e.appendWindowPoints(out, st, spec, w, win)
				delete(ts.open, w)
			}
		}
		ts.sealedUntil = hA
	}
	return out
}

// appendWindowPoints renders one sealed window as its derived stat
// points.
func (e *Engine) appendWindowPoints(out []tsdb.DataPoint, st *seriesState, spec *tierSpec, start int64, win *window) []tsdb.DataPoint {
	if len(win.vals) == 0 {
		return out
	}
	e.sealedN.Add(1)
	metric := spec.metricPrefix + st.metric
	for _, s := range windowStats {
		tags := make(map[string]string, len(st.tags)+1)
		for k, v := range st.tags {
			tags[k] = v
		}
		tags[StatTag] = s.name
		out = append(out, tsdb.DataPoint{
			Metric: metric,
			Tags:   tags,
			Point:  tsdb.Point{Timestamp: start, Value: s.agg.Apply(win.vals)},
		})
	}
	return out
}

// writeDerived stores sealed-window points. Runs outside the engine
// shard locks: the store's observers (including this engine, which
// skips the rollup namespace) fire synchronously on these writes.
func (e *Engine) writeDerived(dps []tsdb.DataPoint) {
	if len(dps) == 0 {
		return
	}
	res := e.db.AppendBatchValidated(dps)
	e.written.Add(uint64(res.Stored))
}

// Flush seals every window that has fully elapsed by the given clock
// (minus Grace) — how idle series' windows get sealed when no further
// writes advance their watermark.
func (e *Engine) Flush(now time.Time) {
	horizon := now.UnixMilli() - e.cfg.Grace.Milliseconds()
	for i := range e.shards {
		sh := &e.shards[i]
		var flush []tsdb.DataPoint
		sh.mu.Lock()
		for id, st := range sh.series {
			flush = e.sealPassedLocked(st, horizon, flush)
			// A series retention removed gets a fresh SeriesID if it
			// ever returns; once this state has nothing left to seal,
			// drop it so dead IDs don't accumulate forever.
			if st.ref != nil && !st.ref.Live() && openWindowsLocked(st) == 0 {
				delete(sh.series, id)
			}
		}
		sh.mu.Unlock()
		e.writeDerived(flush)
	}
}

// openWindowsLocked counts st's open windows across tiers. Caller
// holds the shard lock.
func openWindowsLocked(st *seriesState) int {
	n := 0
	for i := range st.tiers {
		n += len(st.tiers[i].open)
	}
	return n
}

// FlushAll unconditionally seals and flushes every open window,
// regardless of watermark or clock. Points arriving later for a
// flushed window are dropped from the rollups (counted as late); the
// raw series still records them.
func (e *Engine) FlushAll() {
	for i := range e.shards {
		sh := &e.shards[i]
		var flush []tsdb.DataPoint
		sh.mu.Lock()
		for _, st := range sh.series {
			if st.skip {
				continue
			}
			for ti := range e.tiers {
				spec := &e.tiers[ti]
				ts := &st.tiers[ti]
				for w, win := range ts.open {
					flush = e.appendWindowPoints(flush, st, spec, w, win)
					delete(ts.open, w)
					if end := w + spec.resMS; end > ts.sealedUntil {
						ts.sealedUntil = end
					}
				}
			}
		}
		sh.mu.Unlock()
		e.writeDerived(flush)
	}
}

// ApplyRetention ages out raw points and each rollup tier on their
// configured schedules, measured back from now. Returns the number of
// points removed.
func (e *Engine) ApplyRetention(now time.Time) (int, error) {
	nowMS := now.UnixMilli()
	total := 0
	if e.cfg.RawRetention > 0 {
		n, err := e.db.DeleteBeforeWhere(nowMS-e.cfg.RawRetention.Milliseconds(),
			func(metric string, _ map[string]string) bool {
				return !strings.HasPrefix(metric, MetricPrefix)
			})
		total += n
		if err != nil {
			e.retained.Add(uint64(total))
			return total, err
		}
	}
	for i := range e.tiers {
		spec := &e.tiers[i]
		if spec.retention <= 0 {
			continue
		}
		prefix := spec.metricPrefix
		n, err := e.db.DeleteBeforeWhere(nowMS-spec.retention.Milliseconds(),
			func(metric string, _ map[string]string) bool {
				return strings.HasPrefix(metric, prefix)
			})
		total += n
		if err != nil {
			e.retained.Add(uint64(total))
			return total, err
		}
	}
	e.retained.Add(uint64(total))
	if total > 0 {
		// Rewrite the WAL from the post-retention state (a no-op
		// without persistence) so the log tracks the live data instead
		// of growing forever. A deferred truncation (live replication
		// reader behind) is benign: the next pass retries.
		if err := e.db.CompactWAL(); err != nil && !errors.Is(err, tsdb.ErrTruncateDeferred) {
			return total, err
		}
	}
	return total, nil
}

// TierStat is the live state of one rollup level.
type TierStat struct {
	Name        string
	Resolution  time.Duration
	Retention   time.Duration
	OpenWindows int
	// LagMS is the largest gap, across series, between a series'
	// watermark and its sealed horizon — how far rollup serving trails
	// the freshest data.
	LagMS int64
}

// Stats is a snapshot of the engine's counters and per-tier state.
type Stats struct {
	Observed         uint64
	Late             uint64
	Skipped          uint64
	WindowsSealed    uint64
	PointsWritten    uint64
	QueryHits        uint64
	QueryFallbacks   uint64
	RetentionDeleted uint64
	RetentionErrors  uint64
	StateErrors      uint64
	Tiers            []TierStat
}

// Stats snapshots the engine.
func (e *Engine) Stats() Stats {
	st := Stats{
		Observed:         e.observed.Load(),
		Late:             e.late.Load(),
		Skipped:          e.skipped.Load(),
		WindowsSealed:    e.sealedN.Load(),
		PointsWritten:    e.written.Load(),
		QueryHits:        e.hits.Load(),
		QueryFallbacks:   e.fallbacks.Load(),
		RetentionDeleted: e.retained.Load(),
		RetentionErrors:  e.retErrs.Load(),
		StateErrors:      e.stateErrs.Load(),
	}
	for i := range e.tiers {
		st.Tiers = append(st.Tiers, TierStat{
			Name: e.tiers[i].name, Resolution: e.tiers[i].res, Retention: e.tiers[i].retention,
		})
	}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for _, s := range sh.series {
			for ti := range s.tiers {
				st.Tiers[ti].OpenWindows += len(s.tiers[ti].open)
				if lag := s.watermark - s.tiers[ti].sealedUntil; lag > st.Tiers[ti].LagMS {
					st.Tiers[ti].LagMS = lag
				}
			}
		}
		sh.mu.Unlock()
	}
	return st
}

// EmitMetrics appends the engine's metrics in the gateway's /metrics
// line format — the hook ctt-server registers via AddMetricsSource.
func (e *Engine) EmitMetrics(emit func(name string, v any)) {
	st := e.Stats()
	emit("ctt_rollup_points_observed_total", st.Observed)
	emit("ctt_rollup_late_dropped_total", st.Late)
	emit("ctt_rollup_skipped_total", st.Skipped)
	emit("ctt_rollup_windows_sealed_total", st.WindowsSealed)
	emit("ctt_rollup_points_written_total", st.PointsWritten)
	emit("ctt_rollup_query_hits_total", st.QueryHits)
	emit("ctt_rollup_query_fallbacks_total", st.QueryFallbacks)
	emit("ctt_rollup_retention_deleted_total", st.RetentionDeleted)
	emit("ctt_rollup_retention_errors_total", st.RetentionErrors)
	emit("ctt_rollup_state_errors_total", st.StateErrors)
	for _, t := range st.Tiers {
		emit(fmt.Sprintf("ctt_rollup_open_windows{tier=%q}", t.Name), t.OpenWindows)
		emit(fmt.Sprintf("ctt_rollup_lag_ms{tier=%q}", t.Name), t.LagMS)
	}
}
