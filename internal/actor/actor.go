// Package actor is a small actor runtime in the spirit of Akka, which
// the paper's dataport monitoring application is built on: "It is built
// with the Akka framework, which facilitates the creation of
// fault-tolerant applications based on the actor model. Actors are
// independent, supervised processes that encapsulate data and control
// logic and communicate via messages."
//
// The runtime provides:
//
//   - actors with unbounded mailboxes, processed by one goroutine each
//     (messages from one sender preserve order),
//   - a supervision hierarchy: children spawned by an actor are
//     supervised by it; a panic in a child applies the parent's
//     supervision strategy (restart with backoff budget, stop, or
//     resume),
//   - ask semantics (request/response with timeout) in addition to
//     fire-and-forget tell,
//   - lifecycle hooks (PreStart/PostStop) and dead-letter accounting.
package actor

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Receiver is the behaviour of an actor. Receive is called for every
// message, strictly sequentially per actor.
type Receiver interface {
	Receive(ctx *Context, msg any)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(ctx *Context, msg any)

// Receive implements Receiver.
func (f ReceiverFunc) Receive(ctx *Context, msg any) { f(ctx, msg) }

// PreStarter is implemented by receivers that want a hook before the
// first message (and after every restart).
type PreStarter interface {
	PreStart(ctx *Context)
}

// PostStopper is implemented by receivers that want a hook after the
// actor stops.
type PostStopper interface {
	PostStop()
}

// Directive tells the supervisor what to do with a failed child.
type Directive int

// Supervision directives.
const (
	// Restart recreates the receiver (via the spawn factory) and
	// resumes processing with the mailbox intact.
	Restart Directive = iota
	// Stop terminates the child permanently.
	Stop
	// Resume ignores the failure and continues with the next message.
	Resume
)

// Strategy decides the directive for a child failure.
type Strategy func(err any) Directive

// DefaultStrategy restarts on any failure.
func DefaultStrategy(any) Directive { return Restart }

// MaxRestarts bounds restarts per actor within RestartWindow before
// escalating to Stop.
const (
	MaxRestarts   = 5
	RestartWindow = time.Minute
)

// System owns the actor hierarchy.
type System struct {
	name        string
	mu          sync.Mutex
	actors      map[string]*Ref
	stopped     bool
	deadLetters atomic.Int64
	wg          sync.WaitGroup

	// OnDeadLetter, if set, observes undeliverable messages.
	OnDeadLetter func(target string, msg any)
}

// NewSystem creates an actor system.
func NewSystem(name string) *System {
	return &System{name: name, actors: make(map[string]*Ref)}
}

// Name returns the system name.
func (s *System) Name() string { return s.name }

// DeadLetters returns the count of messages sent to stopped or unknown
// actors.
func (s *System) DeadLetters() int64 { return s.deadLetters.Load() }

// Spawn creates a top-level actor. The factory is invoked to create
// (and on restart, recreate) the receiver.
func (s *System) Spawn(name string, factory func() Receiver) (*Ref, error) {
	return s.spawn(name, factory, nil, DefaultStrategy)
}

// SpawnWithStrategy creates a top-level actor with a custom supervision
// strategy applied to ITS children.
func (s *System) SpawnWithStrategy(name string, factory func() Receiver, strat Strategy) (*Ref, error) {
	return s.spawn(name, factory, nil, strat)
}

// Errors.
var (
	ErrSystemStopped = errors.New("actor: system stopped")
	ErrNameTaken     = errors.New("actor: name already in use")
	ErrAskTimeout    = errors.New("actor: ask timed out")
	ErrActorStopped  = errors.New("actor: actor stopped")
)

func (s *System) spawn(name string, factory func() Receiver, parent *Ref, strat Strategy) (*Ref, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return nil, ErrSystemStopped
	}
	path := name
	if parent != nil {
		path = parent.path + "/" + name
	}
	if _, exists := s.actors[path]; exists {
		return nil, fmt.Errorf("%w: %s", ErrNameTaken, path)
	}
	if strat == nil {
		strat = DefaultStrategy
	}
	r := &Ref{
		system:   s,
		path:     path,
		factory:  factory,
		parent:   parent,
		strategy: strat,
		signal:   make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	r.receiver = factory()
	s.actors[path] = r
	if parent != nil {
		parent.childMu.Lock()
		parent.children = append(parent.children, r)
		parent.childMu.Unlock()
	}
	s.wg.Add(1)
	go r.run()
	return r, nil
}

// Lookup finds an actor by path, or nil.
func (s *System) Lookup(path string) *Ref {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.actors[path]
}

// ActorPaths lists the paths of all live actors, unordered.
func (s *System) ActorPaths() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.actors))
	for p := range s.actors {
		out = append(out, p)
	}
	return out
}

// Shutdown stops every actor and waits for them to finish.
func (s *System) Shutdown() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	roots := make([]*Ref, 0)
	for _, r := range s.actors {
		if r.parent == nil {
			roots = append(roots, r)
		}
	}
	s.mu.Unlock()
	for _, r := range roots {
		r.StopActor()
	}
	s.wg.Wait()
}

func (s *System) unregister(path string) {
	s.mu.Lock()
	delete(s.actors, path)
	s.mu.Unlock()
}

func (s *System) deadLetter(target string, msg any) {
	s.deadLetters.Add(1)
	if s.OnDeadLetter != nil {
		s.OnDeadLetter(target, msg)
	}
}

// Ref is a handle to an actor.
type Ref struct {
	system   *System
	path     string
	factory  func() Receiver
	receiver Receiver
	parent   *Ref
	strategy Strategy

	mailMu  sync.Mutex
	mailbox []envelope
	signal  chan struct{}

	childMu  sync.Mutex
	children []*Ref

	stopping atomic.Bool
	done     chan struct{}

	restarts     int
	restartStart time.Time
}

type envelope struct {
	msg   any
	reply chan any
}

// Path returns the actor's hierarchical path.
func (r *Ref) Path() string { return r.path }

// Tell sends a message asynchronously. Messages to stopped actors are
// counted as dead letters.
func (r *Ref) Tell(msg any) {
	if r == nil {
		return
	}
	if r.stopping.Load() {
		r.system.deadLetter(r.path, msg)
		return
	}
	r.enqueue(envelope{msg: msg})
}

// Ask sends a message and waits for the actor to Reply, up to timeout.
func (r *Ref) Ask(msg any, timeout time.Duration) (any, error) {
	if r == nil || r.stopping.Load() {
		return nil, ErrActorStopped
	}
	reply := make(chan any, 1)
	r.enqueue(envelope{msg: msg, reply: reply})
	select {
	case v := <-reply:
		return v, nil
	case <-r.done:
		return nil, ErrActorStopped
	case <-time.After(timeout):
		return nil, ErrAskTimeout
	}
}

func (r *Ref) enqueue(e envelope) {
	r.mailMu.Lock()
	r.mailbox = append(r.mailbox, e)
	r.mailMu.Unlock()
	select {
	case r.signal <- struct{}{}:
	default:
	}
}

// StopActor stops the actor and all of its children, then waits for
// the actor's goroutine to exit.
func (r *Ref) StopActor() {
	if r == nil || !r.stopping.CompareAndSwap(false, true) {
		if r != nil {
			<-r.done
		}
		return
	}
	select {
	case r.signal <- struct{}{}:
	default:
	}
	<-r.done
}

// Stopped reports whether the actor has been stopped (or is stopping).
func (r *Ref) Stopped() bool { return r.stopping.Load() }

// Children returns the actor's live children.
func (r *Ref) Children() []*Ref {
	r.childMu.Lock()
	defer r.childMu.Unlock()
	out := make([]*Ref, 0, len(r.children))
	for _, c := range r.children {
		if !c.stopping.Load() {
			out = append(out, c)
		}
	}
	return out
}

func (r *Ref) run() {
	defer r.system.wg.Done()
	defer r.finalize()

	if ps, ok := r.receiver.(PreStarter); ok {
		r.safeHook(func() { ps.PreStart(&Context{system: r.system, self: r}) })
	}

	for {
		if r.stopping.Load() {
			return
		}
		r.mailMu.Lock()
		var batch []envelope
		if len(r.mailbox) > 0 {
			batch = r.mailbox
			r.mailbox = nil
		}
		r.mailMu.Unlock()
		if batch == nil {
			select {
			case <-r.signal:
				continue
			}
		}
		for i, e := range batch {
			if r.stopping.Load() {
				// Requeue undelivered messages as dead letters.
				for _, rest := range batch[i:] {
					r.system.deadLetter(r.path, rest.msg)
				}
				return
			}
			if !r.process(e) {
				// Stop directive: drop the rest as dead letters.
				for _, rest := range batch[i+1:] {
					r.system.deadLetter(r.path, rest.msg)
				}
				return
			}
		}
	}
}

// process runs one message; returns false if the actor must stop.
func (r *Ref) process(e envelope) (alive bool) {
	ctx := &Context{system: r.system, self: r, reply: e.reply}
	defer func() {
		if rec := recover(); rec != nil {
			alive = r.handleFailure(rec)
		}
	}()
	r.receiver.Receive(ctx, e.msg)
	if ctx.stopRequested {
		r.stopping.Store(true)
		return false
	}
	return true
}

// handleFailure applies the parent's strategy (or the default for
// top-level actors).
func (r *Ref) handleFailure(cause any) (alive bool) {
	strat := DefaultStrategy
	if r.parent != nil {
		strat = r.parent.strategy
	}
	switch strat(cause) {
	case Resume:
		return true
	case Stop:
		r.stopping.Store(true)
		return false
	default: // Restart
		now := time.Now()
		if now.Sub(r.restartStart) > RestartWindow {
			r.restartStart = now
			r.restarts = 0
		}
		r.restarts++
		if r.restarts > MaxRestarts {
			r.stopping.Store(true)
			return false
		}
		if ps, ok := r.receiver.(PostStopper); ok {
			r.safeHook(ps.PostStop)
		}
		r.receiver = r.factory()
		if ps, ok := r.receiver.(PreStarter); ok {
			r.safeHook(func() { ps.PreStart(&Context{system: r.system, self: r}) })
		}
		return true
	}
}

func (r *Ref) safeHook(f func()) {
	defer func() { recover() }()
	f()
}

func (r *Ref) finalize() {
	r.stopping.Store(true)
	// Stop children first (depth-first teardown).
	r.childMu.Lock()
	children := append([]*Ref(nil), r.children...)
	r.childMu.Unlock()
	for _, c := range children {
		c.StopActor()
	}
	if ps, ok := r.receiver.(PostStopper); ok {
		r.safeHook(ps.PostStop)
	}
	// Remaining mail becomes dead letters.
	r.mailMu.Lock()
	rest := r.mailbox
	r.mailbox = nil
	r.mailMu.Unlock()
	for _, e := range rest {
		r.system.deadLetter(r.path, e.msg)
	}
	r.system.unregister(r.path)
	close(r.done)
}

// Context is passed to Receive with per-message facilities.
type Context struct {
	system        *System
	self          *Ref
	reply         chan any
	stopRequested bool
}

// Self returns the current actor's ref.
func (c *Context) Self() *Ref { return c.self }

// System returns the owning system.
func (c *Context) System() *System { return c.system }

// Spawn creates a child actor supervised by the current actor.
func (c *Context) Spawn(name string, factory func() Receiver) (*Ref, error) {
	return c.system.spawn(name, factory, c.self, c.self.strategy)
}

// SpawnWithStrategy creates a supervised child whose own children use
// the given strategy.
func (c *Context) SpawnWithStrategy(name string, factory func() Receiver, strat Strategy) (*Ref, error) {
	return c.system.spawn(name, factory, c.self, strat)
}

// Reply answers an Ask. It is a no-op for Tell messages.
func (c *Context) Reply(v any) {
	if c.reply != nil {
		select {
		case c.reply <- v:
		default:
		}
	}
}

// StopSelf requests the actor to stop after the current message.
func (c *Context) StopSelf() { c.stopRequested = true }
