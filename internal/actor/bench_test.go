package actor

import (
	"sync/atomic"
	"testing"
	"time"
)

func BenchmarkTellThroughput(b *testing.B) {
	s := NewSystem("bench")
	defer s.Shutdown()
	var n atomic.Int64
	ref, err := s.Spawn("sink", func() Receiver {
		return ReceiverFunc(func(ctx *Context, msg any) { n.Add(1) })
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref.Tell(i)
	}
	for n.Load() < int64(b.N) {
		time.Sleep(time.Microsecond * 50)
	}
}

func BenchmarkAskRoundTrip(b *testing.B) {
	s := NewSystem("bench")
	defer s.Shutdown()
	ref, err := s.Spawn("echo", func() Receiver {
		return ReceiverFunc(func(ctx *Context, msg any) { ctx.Reply(msg) })
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ref.Ask(i, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTwinFanout approximates the dataport pattern: one message
// fanned to many twins.
func BenchmarkTwinFanout(b *testing.B) {
	s := NewSystem("bench")
	defer s.Shutdown()
	var n atomic.Int64
	const twins = 14 // 12 sensors + 2 gateways
	refs := make([]*Ref, twins)
	for i := range refs {
		ref, err := s.Spawn("twin"+string(rune('a'+i)), func() Receiver {
			return ReceiverFunc(func(ctx *Context, msg any) { n.Add(1) })
		})
		if err != nil {
			b.Fatal(err)
		}
		refs[i] = ref
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range refs {
			r.Tell(i)
		}
	}
	for n.Load() < int64(b.N*twins) {
		time.Sleep(50 * time.Microsecond)
	}
}
