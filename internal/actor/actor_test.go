package actor

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newSystem(t *testing.T) *System {
	t.Helper()
	s := NewSystem("test")
	t.Cleanup(s.Shutdown)
	return s
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not met in time")
}

// counter accumulates received ints.
type counter struct {
	sum atomic.Int64
	n   atomic.Int64
}

func (c *counter) Receive(ctx *Context, msg any) {
	if v, ok := msg.(int); ok {
		c.sum.Add(int64(v))
		c.n.Add(1)
	}
}

func TestTellDelivers(t *testing.T) {
	s := newSystem(t)
	c := &counter{}
	ref, err := s.Spawn("counter", func() Receiver { return c })
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		ref.Tell(i)
	}
	waitFor(t, 2*time.Second, func() bool { return c.n.Load() == 100 })
	if c.sum.Load() != 5050 {
		t.Fatalf("sum = %d, want 5050", c.sum.Load())
	}
}

func TestOrderingPreserved(t *testing.T) {
	s := newSystem(t)
	var mu sync.Mutex
	var got []int
	ref, _ := s.Spawn("order", func() Receiver {
		return ReceiverFunc(func(ctx *Context, msg any) {
			mu.Lock()
			got = append(got, msg.(int))
			mu.Unlock()
		})
	})
	for i := 0; i < 500; i++ {
		ref.Tell(i)
	}
	waitFor(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 500
	})
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != i {
			t.Fatalf("message %d out of order: got %d", i, v)
		}
	}
}

func TestAskReply(t *testing.T) {
	s := newSystem(t)
	ref, _ := s.Spawn("echo", func() Receiver {
		return ReceiverFunc(func(ctx *Context, msg any) {
			ctx.Reply("echo:" + msg.(string))
		})
	})
	got, err := ref.Ask("hi", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got != "echo:hi" {
		t.Fatalf("got %v", got)
	}
}

func TestAskTimeout(t *testing.T) {
	s := newSystem(t)
	ref, _ := s.Spawn("mute", func() Receiver {
		return ReceiverFunc(func(ctx *Context, msg any) { /* never replies */ })
	})
	_, err := ref.Ask("hello", 30*time.Millisecond)
	if err != ErrAskTimeout {
		t.Fatalf("got %v, want ErrAskTimeout", err)
	}
}

func TestSpawnDuplicateName(t *testing.T) {
	s := newSystem(t)
	mk := func() Receiver { return ReceiverFunc(func(*Context, any) {}) }
	if _, err := s.Spawn("dup", mk); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Spawn("dup", mk); err == nil {
		t.Fatal("duplicate name should fail")
	}
}

func TestChildSpawnAndLookup(t *testing.T) {
	s := newSystem(t)
	ready := make(chan *Ref, 1)
	parent, _ := s.Spawn("parent", func() Receiver {
		return ReceiverFunc(func(ctx *Context, msg any) {
			if msg == "spawn" {
				child, err := ctx.Spawn("child", func() Receiver {
					return ReceiverFunc(func(*Context, any) {})
				})
				if err != nil {
					t.Error(err)
				}
				ready <- child
			}
		})
	})
	parent.Tell("spawn")
	child := <-ready
	if child.Path() != "parent/child" {
		t.Fatalf("child path = %q", child.Path())
	}
	if s.Lookup("parent/child") != child {
		t.Fatal("lookup failed")
	}
	if len(parent.Children()) != 1 {
		t.Fatalf("children = %d", len(parent.Children()))
	}
}

func TestStopActorStopsChildren(t *testing.T) {
	s := newSystem(t)
	grandchildStopped := make(chan struct{})
	childReady := make(chan struct{})
	parent, _ := s.Spawn("p", func() Receiver {
		return ReceiverFunc(func(ctx *Context, msg any) {
			if msg == "init" {
				ctx.Spawn("c", func() Receiver {
					return &hookedReceiver{
						onStart: func(cctx *Context) {
							cctx.Spawn("g", func() Receiver {
								return &hookedReceiver{onStop: func() { close(grandchildStopped) }}
							})
							close(childReady)
						},
					}
				})
			}
		})
	})
	parent.Tell("init")
	<-childReady
	parent.StopActor()
	select {
	case <-grandchildStopped:
	case <-time.After(2 * time.Second):
		t.Fatal("grandchild not stopped with parent")
	}
	if !parent.Stopped() {
		t.Fatal("parent should be stopped")
	}
}

type hookedReceiver struct {
	onStart func(*Context)
	onStop  func()
}

func (h *hookedReceiver) Receive(*Context, any) {}
func (h *hookedReceiver) PreStart(ctx *Context) {
	if h.onStart != nil {
		h.onStart(ctx)
	}
}
func (h *hookedReceiver) PostStop() {
	if h.onStop != nil {
		h.onStop()
	}
}

func TestDeadLettersOnStoppedActor(t *testing.T) {
	s := newSystem(t)
	ref, _ := s.Spawn("short", func() Receiver {
		return ReceiverFunc(func(*Context, any) {})
	})
	ref.StopActor()
	before := s.DeadLetters()
	ref.Tell("too late")
	if s.DeadLetters() != before+1 {
		t.Fatalf("dead letters = %d, want %d", s.DeadLetters(), before+1)
	}
	if _, err := ref.Ask("x", time.Second); err != ErrActorStopped {
		t.Fatalf("ask on stopped: %v", err)
	}
}

func TestPanicRestartsActor(t *testing.T) {
	s := newSystem(t)
	var instances atomic.Int32
	var processed atomic.Int32
	ref, _ := s.Spawn("flaky", func() Receiver {
		instances.Add(1)
		return ReceiverFunc(func(ctx *Context, msg any) {
			if msg == "boom" {
				panic("kaboom")
			}
			processed.Add(1)
		})
	})
	ref.Tell("ok")
	ref.Tell("boom")
	ref.Tell("after") // must be processed by the restarted instance
	waitFor(t, 2*time.Second, func() bool { return processed.Load() == 2 })
	if instances.Load() != 2 {
		t.Fatalf("factory invoked %d times, want 2 (initial + restart)", instances.Load())
	}
}

func TestStopStrategyOnPanic(t *testing.T) {
	s := newSystem(t)
	stopAll := func(any) Directive { return Stop }
	childStopped := make(chan struct{})
	parent, _ := s.SpawnWithStrategy("sup", func() Receiver {
		return ReceiverFunc(func(ctx *Context, msg any) {
			if msg == "init" {
				ctx.Spawn("fragile", func() Receiver {
					return &panicOnBoom{stopped: childStopped}
				})
			}
		})
	}, stopAll)
	parent.Tell("init")
	waitFor(t, time.Second, func() bool { return s.Lookup("sup/fragile") != nil })
	s.Lookup("sup/fragile").Tell("boom")
	select {
	case <-childStopped:
	case <-time.After(2 * time.Second):
		t.Fatal("child not stopped by Stop directive")
	}
}

type panicOnBoom struct{ stopped chan struct{} }

func (p *panicOnBoom) Receive(ctx *Context, msg any) {
	if msg == "boom" {
		panic("boom")
	}
}
func (p *panicOnBoom) PostStop() { close(p.stopped) }

func TestResumeStrategyKeepsState(t *testing.T) {
	s := newSystem(t)
	resume := func(any) Directive { return Resume }
	var sum atomic.Int64
	parent, _ := s.SpawnWithStrategy("rsup", func() Receiver {
		return ReceiverFunc(func(ctx *Context, msg any) {
			if msg == "init" {
				ctx.Spawn("worker", func() Receiver {
					return ReceiverFunc(func(ctx *Context, m any) {
						if m == "boom" {
							panic("x")
						}
						sum.Add(int64(m.(int)))
					})
				})
			}
		})
	}, resume)
	parent.Tell("init")
	waitFor(t, time.Second, func() bool { return s.Lookup("rsup/worker") != nil })
	w := s.Lookup("rsup/worker")
	w.Tell(1)
	w.Tell("boom")
	w.Tell(2)
	waitFor(t, 2*time.Second, func() bool { return sum.Load() == 3 })
}

func TestMaxRestartsEscalatesToStop(t *testing.T) {
	s := newSystem(t)
	var instances atomic.Int32
	ref, _ := s.Spawn("alwaysboom", func() Receiver {
		instances.Add(1)
		return ReceiverFunc(func(ctx *Context, msg any) { panic("always") })
	})
	for i := 0; i < MaxRestarts+3; i++ {
		ref.Tell(i)
	}
	waitFor(t, 2*time.Second, func() bool { return ref.Stopped() })
	if n := instances.Load(); n > MaxRestarts+1 {
		t.Fatalf("instances = %d, want ≤ %d", n, MaxRestarts+1)
	}
}

func TestStopSelf(t *testing.T) {
	s := newSystem(t)
	ref, _ := s.Spawn("quitter", func() Receiver {
		return ReceiverFunc(func(ctx *Context, msg any) {
			if msg == "quit" {
				ctx.StopSelf()
			}
		})
	})
	ref.Tell("quit")
	waitFor(t, 2*time.Second, func() bool { return ref.Stopped() })
	if s.Lookup("quitter") != nil {
		t.Fatal("stopped actor still registered")
	}
}

func TestSystemShutdown(t *testing.T) {
	s := NewSystem("shut")
	var stops atomic.Int32
	for _, name := range []string{"a", "b", "c"} {
		s.Spawn(name, func() Receiver {
			return &hookedReceiver{onStop: func() { stops.Add(1) }}
		})
	}
	s.Shutdown()
	if stops.Load() != 3 {
		t.Fatalf("stopped %d actors, want 3", stops.Load())
	}
	if _, err := s.Spawn("late", func() Receiver { return &hookedReceiver{} }); err != ErrSystemStopped {
		t.Fatalf("spawn after shutdown: %v", err)
	}
	// Idempotent.
	s.Shutdown()
}

func TestOnDeadLetterCallback(t *testing.T) {
	s := newSystem(t)
	var gotTarget atomic.Value
	s.OnDeadLetter = func(target string, msg any) { gotTarget.Store(target) }
	ref, _ := s.Spawn("dl", func() Receiver { return ReceiverFunc(func(*Context, any) {}) })
	ref.StopActor()
	ref.Tell("x")
	if gotTarget.Load() != "dl" {
		t.Fatalf("dead letter callback got %v", gotTarget.Load())
	}
}

func TestActorPaths(t *testing.T) {
	s := newSystem(t)
	s.Spawn("one", func() Receiver { return ReceiverFunc(func(*Context, any) {}) })
	s.Spawn("two", func() Receiver { return ReceiverFunc(func(*Context, any) {}) })
	paths := s.ActorPaths()
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
}

func TestConcurrentTellers(t *testing.T) {
	s := newSystem(t)
	c := &counter{}
	ref, _ := s.Spawn("mt", func() Receiver { return c })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				ref.Tell(1)
			}
		}()
	}
	wg.Wait()
	waitFor(t, 3*time.Second, func() bool { return c.n.Load() == 2000 })
}
