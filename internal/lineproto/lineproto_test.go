package lineproto

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/tsdb"
)

func TestParseLine(t *testing.T) {
	good := []struct {
		line   string
		metric string
		tsMS   int64
		value  float64
		tags   map[string]string
	}{
		{"put air.co2 1488326400 412.5 sensor=s1", "air.co2", 1488326400000, 412.5,
			map[string]string{"sensor": "s1"}},
		{"put air.co2 1488326400123 412.5 sensor=s1 city=trondheim", "air.co2", 1488326400123, 412.5,
			map[string]string{"sensor": "s1", "city": "trondheim"}},
		{"  put   air.no2  1488326400  -7  sensor=s2  ", "air.no2", 1488326400000, -7,
			map[string]string{"sensor": "s2"}},
	}
	for _, g := range good {
		dp, err := ParseLine(g.line)
		if err != nil {
			t.Fatalf("ParseLine(%q): %v", g.line, err)
		}
		if dp.Metric != g.metric || dp.Timestamp != g.tsMS || dp.Value != g.value {
			t.Fatalf("ParseLine(%q) = %+v", g.line, dp)
		}
		for k, v := range g.tags {
			if dp.Tags[k] != v {
				t.Fatalf("ParseLine(%q) tag %s = %q, want %q", g.line, k, dp.Tags[k], v)
			}
		}
	}
	bad := []string{
		"puts air.co2 1488326400 412.5 sensor=s1", // unknown command
		"put air.co2 1488326400 412.5",            // no tags
		"put air.co2 nope 412.5 sensor=s1",        // bad timestamp
		"put air.co2 -5 412.5 sensor=s1",          // negative timestamp
		"put air.co2 1488326400 abc sensor=s1",    // bad value
		"put air.co2 1488326400 NaN sensor=s1",    // non-finite value
		"put air.co2 1488326400 412.5 sensor=",    // empty tag value
		"put air.co2 1488326400 412.5 =s1",        // empty tag key
		"put bad metric 1488326400 412.5 a=b",     // field misalignment
	}
	for _, line := range bad {
		if _, err := ParseLine(line); err == nil {
			t.Fatalf("ParseLine(%q) accepted", line)
		}
	}
}

// testStack assembles store → gateway → line listener.
func testStack(t *testing.T, cfg Config) (*tsdb.DB, *api.Gateway, *Server, net.Addr) {
	t.Helper()
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	gw := api.New(db, nil, api.Config{})
	srv := New(gw, cfg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); gw.Close(); db.Close() })
	return db, gw, srv, addr
}

// TestTelnetPutQueryableOverHTTP is the acceptance e2e: points
// written over the telnet listener are readable through the HTTP
// gateway's /api/query.
func TestTelnetPutQueryableOverHTTP(t *testing.T) {
	_, gw, srv, addr := testStack(t, Config{})
	web := httptest.NewServer(gw.Handler())
	defer web.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	base := int64(1488326400) // 2017-03-01 00:00:00 UTC, seconds
	var sb strings.Builder
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&sb, "put air.co2 %d %d sensor=telnet-1 city=trondheim\n", base+int64(i)*60, 400+i)
	}
	sb.WriteString("this is not a put line\n")
	sb.WriteString("version\n")
	if _, err := conn.Write([]byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	// The server replies to the malformed line and to version.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	br := bufio.NewReader(conn)
	for i := 0; i < 2; i++ {
		if _, err := br.ReadString('\n'); err != nil {
			t.Fatalf("expected reply line %d: %v", i, err)
		}
	}
	conn.Close()

	// The queue drains asynchronously; poll the HTTP query until the
	// points land.
	url := web.URL + "/api/query?start=1488326400&end=1488327000&m=sum:air.co2{sensor=telnet-1}"
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var out []struct {
			DPS map[string]float64 `json:"dps"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err == nil && len(out) == 1 && len(out[0].DPS) == 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("telnet points never became queryable; last result %+v", out)
		}
		time.Sleep(10 * time.Millisecond)
	}

	st := srv.Stats()
	if st.Points != 10 {
		t.Fatalf("points = %d, want 10", st.Points)
	}
	if st.Malformed != 1 {
		t.Fatalf("malformed = %d, want 1", st.Malformed)
	}
	if st.ConnsTotal != 1 {
		t.Fatalf("connsTotal = %d, want 1", st.ConnsTotal)
	}
}

// TestReadDeadline: an idle connection is closed by the server and
// counted as a timeout.
func TestReadDeadline(t *testing.T) {
	_, _, srv, addr := testStack(t, Config{ReadTimeout: 50 * time.Millisecond})
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection stayed open past the read deadline")
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().Timeouts == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timeout never counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestOversizedLine: a line beyond MaxLineLen is skipped and counted,
// and the connection keeps working.
func TestOversizedLine(t *testing.T) {
	db, _, srv, addr := testStack(t, Config{MaxLineLen: 64})
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	long := "put air.co2 1488326400 1 sensor=" + strings.Repeat("x", 200) + "\n"
	ok := "put air.co2 1488326400 1 sensor=s1\n"
	if _, err := conn.Write([]byte(long + ok)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Points < 1 || srv.Stats().Malformed < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("stats = %+v", srv.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The valid point made it to the store.
	for db.PointCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("valid point after oversized line never stored")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTelnetAuth: with an API key configured, puts before a
// successful "auth <key>" line are refused and counted; after auth
// the connection behaves normally.
func TestTelnetAuth(t *testing.T) {
	db, _, srv, addr := testStack(t, Config{APIKey: "sekrit"})
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	br := bufio.NewReader(conn)
	expectReply := func(want string) {
		t.Helper()
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading reply: %v", err)
		}
		if !strings.Contains(line, want) {
			t.Fatalf("reply %q, want it to contain %q", line, want)
		}
	}

	send := func(s string) {
		t.Helper()
		if _, err := conn.Write([]byte(s + "\n")); err != nil {
			t.Fatal(err)
		}
	}

	send("put air.co2 1488326400 415 sensor=s1") // unauthenticated
	expectReply("auth required")
	send("auth wrongkey")
	expectReply("invalid key")
	send("version") // stays available without auth
	expectReply("line protocol")
	send("auth sekrit")
	expectReply("auth ok")
	send("put air.co2 1488326400 415 sensor=s1")

	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Points < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("authenticated put never accepted: %+v", srv.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := srv.Stats(); st.AuthFails != 2 {
		t.Fatalf("authFails = %d, want 2 (refused put + bad key)", st.AuthFails)
	}
	for db.PointCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("authenticated point never stored")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTelnetAuthDefersToGateway: with no listener key configured, a
// keyed gateway's policy still protects the telnet edge — the
// listener defers to the sink's RequiresAPIKey/CheckAPIKey.
func TestTelnetAuthDefersToGateway(t *testing.T) {
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	gw := api.New(db, nil, api.Config{APIKey: "gwkey"})
	srv := New(gw, Config{}) // no listener key of its own
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); gw.Close(); db.Close() })

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	br := bufio.NewReader(conn)
	send := func(s string) {
		t.Helper()
		if _, err := conn.Write([]byte(s + "\n")); err != nil {
			t.Fatal(err)
		}
	}
	expect := func(want string) {
		t.Helper()
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading reply: %v", err)
		}
		if !strings.Contains(line, want) {
			t.Fatalf("reply %q, want it to contain %q", line, want)
		}
	}

	send("put air.co2 1488326400 415 sensor=s1")
	expect("auth required")
	send("auth gwkey")
	expect("auth ok")
	send("put air.co2 1488326400 415 sensor=s1")
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Points < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("gateway-keyed put never accepted: %+v", srv.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
