package lineproto

import (
	"fmt"
	"testing"

	"repro/internal/tsdb"
)

// benchSink interns against a real store and discards the enqueued
// batches — isolating parse + intern cost from queue and HTTP
// machinery.
type benchSink struct {
	db   *tsdb.DB
	refs int
}

func (s *benchSink) Enqueue(dps []tsdb.DataPoint) error { return nil }

func (s *benchSink) Intern(metric []byte, kvs [][]byte) (*tsdb.Ref, error) {
	return s.db.InternBytes(metric, kvs)
}

func (s *benchSink) EnqueueRefs(rps []tsdb.RefPoint) error {
	s.refs += len(rps)
	return nil
}

// BenchmarkParsePutLine measures the zero-copy telnet put parse: raw
// line bytes → split fields → interned series → RefPoint. After the
// first lap over the 16 sensors every iteration is a registry hit —
// no strings, no tag map, no allocation.
func BenchmarkParsePutLine(b *testing.B) {
	db, err := tsdb.Open("")
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	sink := &benchSink{db: db}
	s := New(sink, Config{})
	st := &connState{rs: sink}
	lines := make([][]byte, 16)
	for i := range lines {
		lines[i] = []byte(fmt.Sprintf("put air.co2 1488326400 415.5 sensor=n%02d city=trondheim", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.parsePutFast(lines[i%len(lines)], st); err != nil {
			b.Fatal(err)
		}
		if len(st.refs) == cap(st.refs) && len(st.refs) >= 128 {
			st.refs = st.refs[:0]
		}
	}
}

// BenchmarkParseLine is the string-path baseline the fast path
// replaces: strings.Fields, a fresh tag map, a DataPoint per line.
func BenchmarkParseLine(b *testing.B) {
	lines := make([]string, 16)
	for i := range lines {
		lines[i] = fmt.Sprintf("put air.co2 1488326400 415.5 sensor=n%02d city=trondheim", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseLine(lines[i%len(lines)]); err != nil {
			b.Fatal(err)
		}
	}
}
