// Package lineproto is a TCP listener speaking the OpenTSDB telnet
// line protocol — the "Telnet-style put" ingest the ROADMAP calls for
// and the chunked path constrained producers (LoRaWAN gateways,
// legacy collectors, a developer with nc) use instead of HTTP JSON:
//
//	put <metric> <timestamp> <value> <tag1=v1> [<tag2=v2> ...]
//
// One measurement per line; timestamps in epoch seconds or
// milliseconds; at least one tag, exactly as OpenTSDB requires. The
// listener parses statsdaemon-style — a buffered reader sliced at
// newlines, oversized lines skipped, per-connection read deadlines so
// a dead peer cannot pin a connection — and feeds parsed points into
// the same bounded ingest queue as the HTTP gateway, so both edges
// share one backpressure policy. Malformed lines are counted, answered
// with a one-line error (visible in an interactive nc session), and
// never abort the connection.
package lineproto

import (
	"bufio"
	"bytes"
	"crypto/subtle"
	"errors"
	"fmt"
	"math"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/tsdb"
)

// Sink receives parsed, validated points — implemented by
// api.Gateway, whose bounded queue and 429-style refusal the listener
// inherits.
type Sink interface {
	Enqueue(dps []tsdb.DataPoint) error
}

// refSink is the zero-copy fast path a sink may additionally offer —
// api.Gateway does: put lines are parsed as raw byte fields, resolved
// to interned series at the wire (strings and tag maps materialize
// only for never-before-seen series), and enqueued as compact
// (SeriesID, Point) batches.
type refSink interface {
	Intern(metric []byte, kvs [][]byte) (*tsdb.Ref, error)
	EnqueueRefs(rps []tsdb.RefPoint) error
}

// Config tunes the listener. Zero values select the defaults.
type Config struct {
	// ReadTimeout is the per-read deadline: a connection idle longer
	// is closed. Default 5m.
	ReadTimeout time.Duration
	// MaxLineLen bounds one line; longer lines are counted malformed
	// and skipped. Default 1024.
	MaxLineLen int
	// BatchSize caps points buffered per connection before they are
	// flushed to the sink. Default 128.
	BatchSize int
	// APIKey, when non-empty, requires each connection to authenticate
	// before its first put by sending the line "auth <key>" — the
	// telnet analogue of the gateway's X-API-Key header. Unauthorized
	// puts are refused with an error line and counted; version/exit
	// stay available unauthenticated. When empty, the listener defers
	// to the sink's own policy (api.Gateway's RequiresAPIKey /
	// CheckAPIKey), so keying the gateway cannot leave the telnet edge
	// accidentally open.
	APIKey string
}

// keyPolicy is the auth policy a sink may enforce — implemented by
// api.Gateway. A listener with no APIKey of its own defers to it.
type keyPolicy interface {
	RequiresAPIKey() bool
	CheckAPIKey(key string) bool
}

// authRequired reports whether connections must auth before putting.
func (s *Server) authRequired() bool {
	if s.cfg.APIKey != "" {
		return true
	}
	if kp, ok := s.sink.(keyPolicy); ok {
		return kp.RequiresAPIKey()
	}
	return false
}

// checkKey validates an auth attempt against the explicit listener
// key or, absent one, the sink's policy. Constant time either way.
func (s *Server) checkKey(key string) bool {
	if s.cfg.APIKey != "" {
		return subtle.ConstantTimeCompare([]byte(key), []byte(s.cfg.APIKey)) == 1
	}
	if kp, ok := s.sink.(keyPolicy); ok {
		return kp.CheckAPIKey(key)
	}
	return true
}

func (c *Config) setDefaults() {
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 5 * time.Minute
	}
	if c.MaxLineLen <= 0 {
		c.MaxLineLen = 1024
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 128
	}
}

// Server is the line-protocol listener.
type Server struct {
	sink Sink
	cfg  Config

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// counters
	connsTotal atomic.Uint64
	active     atomic.Int64
	lines      atomic.Uint64 // non-empty lines read
	points     atomic.Uint64 // points accepted into the queue
	malformed  atomic.Uint64 // lines rejected by the parser/validator
	dropped    atomic.Uint64 // parsed points refused by the sink
	degraded   atomic.Uint64 // of those, dropped because the store is degraded
	timeouts   atomic.Uint64 // connections closed by the read deadline
	authFails  atomic.Uint64 // puts refused or auth attempts rejected: bad/missing key

	// flushHist, when installed, times each batch flush into the sink
	// — queue reservation included, so it shows telnet backpressure.
	flushHist atomic.Pointer[obs.Histogram]

	rate ewmaRate
}

// SetFlushHistogram installs a histogram receiving the duration of
// every batch flush into the sink. Nil-safe to leave uninstalled.
func (s *Server) SetFlushHistogram(h *obs.Histogram) {
	s.flushHist.Store(h)
}

// New builds a server feeding sink. Call Start, then Close.
func New(sink Sink, cfg Config) *Server {
	cfg.setDefaults()
	return &Server{sink: sink, cfg: cfg, conns: make(map[net.Conn]struct{})}
}

// Start listens on addr and accepts connections until Close.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("lineproto: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("lineproto: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

// Close stops accepting, closes every live connection, and waits for
// the handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connsTotal.Add(1)
		s.active.Add(1)
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// connState is the per-connection scratch the zero-copy path reuses
// line after line: the line buffer, the split fields, the tag
// key/value slices, and the outgoing batch. Nothing here escapes per
// point on the fast path.
type connState struct {
	rs     refSink // non-nil when the sink offers the interned path
	line   []byte
	fields [][]byte
	kvs    [][]byte
	refs   []tsdb.RefPoint
	dps    []tsdb.DataPoint // fallback batch for plain sinks
}

func (st *connState) batchLen() int { return len(st.refs) + len(st.dps) }

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.active.Add(-1)
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	r := bufio.NewReaderSize(conn, 4096)
	st := &connState{}
	if rs, ok := s.sink.(refSink); ok {
		st.rs = rs
	}
	authed := !s.authRequired()
	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		line, err := s.readLine(conn, r, st)
		if len(line) != 0 {
			if quit := s.handleLine(conn, line, st, &authed); quit {
				s.flush(conn, st)
				return
			}
		}
		// Flush when the batch is full or no more input is already
		// buffered (the next read would block).
		if st.batchLen() >= s.cfg.BatchSize || (st.batchLen() > 0 && r.Buffered() == 0) {
			s.flush(conn, st)
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				s.timeouts.Add(1)
			}
			return // EOF, deadline, or closed
		}
	}
}

// readLine reads one newline-terminated line via ReadSlice into the
// connection's reused buffer, so memory stays bounded by the reader's
// buffer no matter how long the peer's line is: once a line overflows
// MaxLineLen its bytes are discarded as they stream in, and the line
// is counted malformed. The returned slice is valid until the next
// call.
func (s *Server) readLine(conn net.Conn, r *bufio.Reader, st *connState) ([]byte, error) {
	buf := st.line[:0]
	overflow := false
	for {
		frag, err := r.ReadSlice('\n')
		if !overflow {
			if len(buf)+len(frag) > s.cfg.MaxLineLen+1 { // +1: the trailing \n
				overflow = true
				buf = buf[:0]
			} else {
				buf = append(buf, frag...)
			}
		}
		if err == bufio.ErrBufferFull {
			continue // same line keeps streaming; frag already consumed
		}
		st.line = buf
		if overflow {
			s.malformed.Add(1)
			s.reply(conn, "err: line exceeds %d bytes", s.cfg.MaxLineLen)
			return nil, err
		}
		return bytes.TrimRight(buf, "\r\n"), err
	}
}

// handleLine processes one complete line; quit requests connection
// close (the telnet "exit" command). put lines take the zero-copy
// interned path when the sink supports it; command lines (rare) fall
// back to string handling.
func (s *Server) handleLine(conn net.Conn, line []byte, st *connState, authed *bool) (quit bool) {
	line = bytes.TrimSpace(line)
	if len(line) == 0 {
		return false
	}
	s.lines.Add(1)
	if isCommandLine(line) {
		return s.handleCommand(conn, string(line), authed)
	}
	if !*authed {
		s.authFails.Add(1)
		s.reply(conn, "err: auth required (send: auth <key>)")
		return false
	}
	if st.rs != nil {
		if err := s.parsePutFast(line, st); err != nil {
			s.malformed.Add(1)
			s.reply(conn, "err: %v", err)
		}
		return false
	}
	dp, err := ParseLine(string(line))
	if err != nil {
		s.malformed.Add(1)
		s.reply(conn, "err: %v", err)
		return false
	}
	st.dps = append(st.dps, dp)
	return false
}

// isCommandLine recognizes the non-put control lines. The string
// conversions in the comparisons do not allocate.
func isCommandLine(line []byte) bool {
	switch string(line) {
	case "exit", "quit", "version", "auth":
		return true
	}
	return bytes.HasPrefix(line, []byte("auth "))
}

// handleCommand runs one control line; quit requests connection close.
func (s *Server) handleCommand(conn net.Conn, line string, authed *bool) (quit bool) {
	switch {
	case line == "exit" || line == "quit":
		return true
	case line == "version":
		s.reply(conn, "ctt-tsdb line protocol, OpenTSDB telnet compatible")
		return false
	default: // auth
		key := strings.TrimSpace(strings.TrimPrefix(line, "auth"))
		if s.checkKey(key) {
			*authed = true
			s.reply(conn, "auth ok")
		} else {
			s.authFails.Add(1)
			s.reply(conn, "err: invalid key")
		}
		return false
	}
}

// parsePutFast parses one put line as raw byte fields and resolves it
// to an interned series — the zero-copy path: no strings, no tag map,
// no DataPoint unless the series is new. Mirrors ParseLine's grammar
// and error messages exactly.
func (s *Server) parsePutFast(line []byte, st *connState) error {
	fields := splitFieldsBytes(line, st.fields[:0])
	st.fields = fields
	if len(fields) == 0 || string(fields[0]) != "put" {
		return fmt.Errorf("unknown command %q (want: put <metric> <ts> <value> <tag=value> ...)", firstWordBytes(line))
	}
	if len(fields) < 5 {
		return fmt.Errorf("put needs metric, timestamp, value and at least one tag (got %d fields)", len(fields)-1)
	}
	ts, err := strconv.ParseInt(string(fields[2]), 10, 64)
	if err != nil {
		return fmt.Errorf("bad timestamp %q", fields[2])
	}
	if ts <= 0 {
		return fmt.Errorf("timestamp must be positive, got %q", fields[2])
	}
	val, err := strconv.ParseFloat(string(fields[3]), 64)
	if err != nil {
		return fmt.Errorf("bad value %q", fields[3])
	}
	if math.IsNaN(val) || math.IsInf(val, 0) {
		return fmt.Errorf("value must be finite, got %q", fields[3])
	}
	kvs := st.kvs[:0]
	for _, kv := range fields[4:] {
		eq := bytes.IndexByte(kv, '=')
		if eq <= 0 || eq == len(kv)-1 {
			st.kvs = kvs
			return fmt.Errorf("bad tag %q (want key=value)", kv)
		}
		kvs = append(kvs, kv[:eq], kv[eq+1:])
	}
	st.kvs = kvs
	tsMS := tsdb.NormalizeMillis(ts)
	if !tsdb.ValidTimestamp(tsMS) {
		return fmt.Errorf("%w: %d", tsdb.ErrBadTimestamp, tsMS)
	}
	ref, err := st.rs.Intern(fields[1], kvs)
	if err != nil {
		return err
	}
	st.refs = append(st.refs, tsdb.RefPoint{Ref: ref, Point: tsdb.Point{Timestamp: tsMS, Value: val}})
	return nil
}

// splitFieldsBytes splits on runs of ASCII whitespace, appending the
// subslices to out — strings.Fields without the strings.
func splitFieldsBytes(line []byte, out [][]byte) [][]byte {
	i := 0
	for i < len(line) {
		for i < len(line) && asciiSpace(line[i]) {
			i++
		}
		if i >= len(line) {
			break
		}
		j := i
		for j < len(line) && !asciiSpace(line[j]) {
			j++
		}
		out = append(out, line[i:j])
		i = j
	}
	return out
}

func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r'
}

func firstWordBytes(line []byte) []byte {
	if i := bytes.IndexByte(line, ' '); i > 0 {
		return line[:i]
	}
	return line
}

// flush hands the batch to the sink, translating queue refusal into a
// counted drop plus an error line — the telnet analogue of HTTP 429.
func (s *Server) flush(conn net.Conn, st *connState) {
	n := st.batchLen()
	if n == 0 {
		return
	}
	if h := s.flushHist.Load(); h != nil {
		defer h.ObserveSince(time.Now())
	}
	var err error
	if st.rs != nil {
		err = st.rs.EnqueueRefs(st.refs)
	} else {
		err = s.sink.Enqueue(st.dps)
	}
	if err != nil {
		s.dropped.Add(uint64(n))
		switch {
		case errors.Is(err, api.ErrQueueFull):
			s.reply(conn, "err: ingest queue full, %d points dropped; slow down", n)
		case errors.Is(err, tsdb.ErrDegraded):
			// Degraded is sticky until a restart: tell the peer to go
			// away rather than invite an immediate retry.
			s.degraded.Add(uint64(n))
			s.reply(conn, "err: store degraded, writes disabled, %d points dropped; retry much later", n)
		default:
			s.reply(conn, "err: %v", err)
		}
	} else {
		s.points.Add(uint64(n))
		s.rate.observe(n, time.Now())
	}
	st.refs = st.refs[:0]
	st.dps = st.dps[:0]
}

// reply best-effort writes one diagnostic line back to the peer.
func (s *Server) reply(conn net.Conn, format string, args ...any) {
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprintf(conn, format+"\n", args...)
}

// ParseLine parses one telnet put line into a validated data point.
func ParseLine(line string) (tsdb.DataPoint, error) {
	var dp tsdb.DataPoint
	fields := strings.Fields(line)
	if len(fields) == 0 || fields[0] != "put" {
		return dp, fmt.Errorf("unknown command %q (want: put <metric> <ts> <value> <tag=value> ...)", firstWord(line))
	}
	if len(fields) < 5 {
		return dp, fmt.Errorf("put needs metric, timestamp, value and at least one tag (got %d fields)", len(fields)-1)
	}
	ts, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return dp, fmt.Errorf("bad timestamp %q", fields[2])
	}
	if ts <= 0 {
		return dp, fmt.Errorf("timestamp must be positive, got %q", fields[2])
	}
	val, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return dp, fmt.Errorf("bad value %q", fields[3])
	}
	if math.IsNaN(val) || math.IsInf(val, 0) {
		return dp, fmt.Errorf("value must be finite, got %q", fields[3])
	}
	tags := make(map[string]string, len(fields)-4)
	for _, kv := range fields[4:] {
		eq := strings.IndexByte(kv, '=')
		if eq <= 0 || eq == len(kv)-1 {
			return dp, fmt.Errorf("bad tag %q (want key=value)", kv)
		}
		tags[kv[:eq]] = kv[eq+1:]
	}
	dp = tsdb.DataPoint{
		Metric: fields[1],
		Tags:   tags,
		Point:  tsdb.Point{Timestamp: tsdb.NormalizeMillis(ts), Value: val},
	}
	if err := dp.Validate(); err != nil {
		return dp, err
	}
	return dp, nil
}

func firstWord(line string) string {
	if i := strings.IndexByte(line, ' '); i > 0 {
		return line[:i]
	}
	return line
}

// Stats is a snapshot of the listener's counters.
type Stats struct {
	ConnsTotal  uint64
	ConnsActive int64
	Lines       uint64
	Points      uint64
	Malformed   uint64
	Dropped     uint64
	// DegradedDropped counts the subset of Dropped refused because the
	// store entered degraded read-only mode.
	DegradedDropped uint64
	Timeouts        uint64
	AuthFails       uint64
	// PointsPerSecond is the exponentially-weighted ingest rate.
	PointsPerSecond float64
}

// Stats snapshots the listener.
func (s *Server) Stats() Stats {
	return Stats{
		ConnsTotal:      s.connsTotal.Load(),
		ConnsActive:     s.active.Load(),
		Lines:           s.lines.Load(),
		Points:          s.points.Load(),
		Malformed:       s.malformed.Load(),
		Dropped:         s.dropped.Load(),
		DegradedDropped: s.degraded.Load(),
		Timeouts:        s.timeouts.Load(),
		AuthFails:       s.authFails.Load(),
		PointsPerSecond: s.rate.value(time.Now()),
	}
}

// EmitMetrics appends the listener's metrics in the gateway's
// /metrics line format — registered via Gateway.AddMetricsSource.
func (s *Server) EmitMetrics(emit func(name string, v any)) {
	st := s.Stats()
	emit("ctt_lineproto_connections_total", st.ConnsTotal)
	emit("ctt_lineproto_connections_active", st.ConnsActive)
	emit("ctt_lineproto_lines_total", st.Lines)
	emit("ctt_lineproto_points_total", st.Points)
	emit("ctt_lineproto_malformed_total", st.Malformed)
	emit("ctt_lineproto_dropped_total", st.Dropped)
	emit("ctt_lineproto_degraded_dropped_total", st.DegradedDropped)
	emit("ctt_lineproto_read_timeouts_total", st.Timeouts)
	emit("ctt_lineproto_auth_failures_total", st.AuthFails)
	emit("ctt_lineproto_rate_points_per_second", fmt.Sprintf("%.3f", st.PointsPerSecond))
}

// ewmaRate tracks an exponentially-weighted ingest rate (~10s time
// constant), decaying toward zero when idle.
type ewmaRate struct {
	mu   sync.Mutex
	rate float64
	last time.Time
}

func (e *ewmaRate) observe(n int, now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.last.IsZero() {
		e.last = now
		return
	}
	dt := now.Sub(e.last).Seconds()
	if dt <= 0 {
		return
	}
	inst := float64(n) / dt
	alpha := 1 - math.Exp(-dt/10)
	e.rate += alpha * (inst - e.rate)
	e.last = now
}

func (e *ewmaRate) value(now time.Time) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.last.IsZero() {
		return 0
	}
	if dt := now.Sub(e.last).Seconds(); dt > 0 {
		return e.rate * math.Exp(-dt/10)
	}
	return e.rate
}
