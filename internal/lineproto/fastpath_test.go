package lineproto

import (
	"testing"

	"repro/internal/tsdb"
)

// TestParsePutFastMatchesParseLine: the zero-copy parser and the
// exported string parser agree on every accepted point and every
// rejection message, line for line.
func TestParsePutFastMatchesParseLine(t *testing.T) {
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sink := &benchSink{db: db}
	s := New(sink, Config{})
	st := &connState{rs: sink}

	lines := []string{
		"put air.co2 1488326400 415.5 sensor=n01 city=trondheim",
		"put air.co2 1488326400123 415.5 sensor=n01", // already milliseconds
		"put air.co2 1488326400 -3.25 a=b",
		"get air.co2 1 2 a=b",
		"put air.co2",
		"put air.co2 notatime 415 a=b",
		"put air.co2 -5 415 a=b",
		"put air.co2 1488326400 notanumber a=b",
		"put air.co2 1488326400 NaN a=b",
		"put air.co2 1488326400 415 badtag",
		"put air.co2 1488326400 415 =v",
		"put air.co2 1488326400 415 k=",
		"put air.c$2 1488326400 415 a=b", // invalid metric char
		"put air.co2 1488326400 415 a=b c=",
	}
	for _, line := range lines {
		st.refs = st.refs[:0]
		fastErr := s.parsePutFast([]byte(line), st)
		dp, slowErr := ParseLine(line)
		if (fastErr == nil) != (slowErr == nil) {
			t.Fatalf("%q: fast err=%v, slow err=%v", line, fastErr, slowErr)
		}
		if fastErr != nil {
			if fastErr.Error() != slowErr.Error() {
				t.Errorf("%q: message diverged:\n fast: %v\n slow: %v", line, fastErr, slowErr)
			}
			continue
		}
		if len(st.refs) != 1 {
			t.Fatalf("%q: fast path produced %d points", line, len(st.refs))
		}
		rp := st.refs[0]
		if rp.Ref.Metric() != dp.Metric || rp.Point != dp.Point {
			t.Errorf("%q: fast point %+v (metric %s) != slow %+v", line, rp.Point, rp.Ref.Metric(), dp)
		}
		tags := rp.Ref.Tags()
		if len(tags) != len(dp.Tags) {
			t.Errorf("%q: tag counts diverge", line)
		}
		for k, v := range dp.Tags {
			if tags[k] != v {
				t.Errorf("%q: tag %s=%s missing from fast path", line, k, v)
			}
		}
	}
}
