package obs

import (
	"fmt"
	"regexp"
	"testing"
	"time"
)

func TestTraceID(t *testing.T) {
	tr := NewTrace("query", "/api/query")
	defer tr.Release()
	id := tr.ID()
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Fatalf("ID() = %q, want 16 lowercase hex digits", id)
	}
	if id != tr.ID() {
		t.Fatalf("ID not stable: %q then %q", id, tr.ID())
	}
	if formatTraceID(0) != "0000000000000000" {
		t.Fatalf("formatTraceID(0) = %q", formatTraceID(0))
	}
	var nilT *Trace
	if nilT.ID() != "" {
		t.Fatalf("nil trace ID = %q, want empty", nilT.ID())
	}

	// Fresh traces (even pooled ones) must get fresh, nonzero IDs.
	tr2 := NewTrace("query", "/api/query")
	defer tr2.Release()
	if tr2.ID() == id {
		t.Fatalf("two traces share ID %q", id)
	}
}

func TestCaptureSnapshotsTrace(t *testing.T) {
	tr := NewTrace("query", "/api/query?m=co2")
	tr.SetDetailed(true)
	parse := tr.StartSpan("parse")
	parse.End()
	scan := tr.StartSpan("scan")
	flush := scan.StartSpan("flush")
	flush.End()
	// scan stays open: the capture must mark it open.
	tr.Stage("member_prime").Add(3 * time.Millisecond)
	tr.Stage("member_prime").Add(2 * time.Millisecond)

	c := tr.Capture()
	id := tr.ID()
	scan.End()
	tr.Release() // capture must survive the pooled trace's reset

	if c.ID != id {
		t.Fatalf("capture ID = %q, want %q", c.ID, id)
	}
	if c.Name != "query" || c.Detail != "/api/query?m=co2" || !c.Detailed {
		t.Fatalf("capture header = %+v", c)
	}
	if len(c.Spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(c.Spans), c.Spans)
	}
	byName := map[string]CapturedSpan{}
	for _, sp := range c.Spans {
		byName[sp.Name] = sp
	}
	if byName["parse"].Parent != -1 || byName["scan"].Parent != -1 {
		t.Fatalf("root spans have parents: %+v", c.Spans)
	}
	if p := byName["flush"].Parent; c.Spans[p].Name != "scan" {
		t.Fatalf("flush parent = %q, want scan", c.Spans[p].Name)
	}
	if byName["parse"].Open() || byName["flush"].Open() {
		t.Fatalf("closed spans captured as open: %+v", c.Spans)
	}
	if !byName["scan"].Open() {
		t.Fatalf("open span captured as closed: %+v", byName["scan"])
	}
	if d := byName["scan"].Duration(c.Duration.Nanoseconds()); d <= 0 || d > c.Duration {
		t.Fatalf("open span duration %v outside (0, %v]", d, c.Duration)
	}
	if len(c.Stages) != 1 || c.Stages[0].Name != "member_prime" ||
		c.Stages[0].Duration != 5*time.Millisecond || c.Stages[0].Count != 2 {
		t.Fatalf("stages = %+v", c.Stages)
	}
}

func TestCaptureNil(t *testing.T) {
	var tr *Trace
	if c := tr.Capture(); c != nil {
		t.Fatalf("nil trace capture = %+v", c)
	}
}

func TestCaptureCountsDrops(t *testing.T) {
	tr := NewTrace("query", "")
	defer tr.Release()
	for i := 0; i < maxSpans+7; i++ {
		tr.StartSpan("s").End()
	}
	c := tr.Capture()
	if c.Dropped != 7 {
		t.Fatalf("capture Dropped = %d, want 7", c.Dropped)
	}
	if len(c.Spans) != maxSpans {
		t.Fatalf("capture kept %d spans, want %d", len(c.Spans), maxSpans)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(4)
	var ids []string
	for i := 0; i < 6; i++ {
		c := &TraceCapture{
			ID:    fmt.Sprintf("%016x", i+1),
			Start: time.Unix(int64(i), 0),
		}
		ids = append(ids, c.ID)
		r.Add(c)
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want ring size 4", got)
	}
	// The two oldest were evicted; the four newest are retrievable.
	for _, id := range ids[:2] {
		if r.Get(id) != nil {
			t.Fatalf("evicted trace %s still retained", id)
		}
	}
	for _, id := range ids[2:] {
		if r.Get(id) == nil {
			t.Fatalf("recent trace %s not retained", id)
		}
	}
	list := r.List()
	if len(list) != 4 {
		t.Fatalf("List returned %d captures, want 4", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i].Start.After(list[i-1].Start) {
			t.Fatalf("List not newest-first: %v after %v", list[i].Start, list[i-1].Start)
		}
	}
}

func TestRecorderDefaultsAndNil(t *testing.T) {
	if r := NewRecorder(0); len(r.slots) != DefaultRecorderSize {
		t.Fatalf("NewRecorder(0) size = %d, want %d", len(r.slots), DefaultRecorderSize)
	}
	var r *Recorder
	r.Add(&TraceCapture{ID: "x"}) // must not panic
	if r.Get("x") != nil || r.List() != nil || r.Len() != 0 {
		t.Fatal("nil recorder is not inert")
	}
	nr := NewRecorder(2)
	nr.Add(nil) // nil captures are dropped, not stored
	if nr.Len() != 0 {
		t.Fatalf("nil capture retained: Len = %d", nr.Len())
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			r.Add(&TraceCapture{ID: fmt.Sprintf("%016x", i)})
		}
	}()
	for i := 0; i < 1000; i++ {
		r.List()
		r.Get("0000000000000001")
	}
	<-done
	if got := r.Len(); got != 8 {
		t.Fatalf("Len = %d after 1000 adds into ring of 8", got)
	}
}
