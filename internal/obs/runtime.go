package obs

// Runtime self-metrics: gauges over the Go runtime (goroutines, heap,
// GC) read through runtime/metrics, plus the process-identity gauges
// every Prometheus target is expected to carry (build info, start
// time). The collector batches one metrics.Read per scrape — gauges
// registered from it share a short-lived sample cache, so a registry
// walk touching six runtime gauges costs one runtime sample, not six.

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"sync"
	"time"
)

// runtimeSamples is the fixed set of runtime/metrics this collector
// reads, in slot order.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds", // histogram; surfaced as total pause seconds
}

// sampleMaxAge bounds how stale the cached runtime sample may be. One
// registry walk reads several gauges back to back; they all see the
// same consistent sample, refreshed once.
const sampleMaxAge = 100 * time.Millisecond

// RuntimeCollector samples the Go runtime and registers the values as
// gauges on a Registry.
type RuntimeCollector struct {
	mu      sync.Mutex
	samples []metrics.Sample
	last    time.Time
}

// NewRuntimeCollector returns a collector with an empty cache.
func NewRuntimeCollector() *RuntimeCollector {
	c := &RuntimeCollector{samples: make([]metrics.Sample, len(runtimeSamples))}
	for i, name := range runtimeSamples {
		c.samples[i].Name = name
	}
	return c
}

// Register adds the collector's gauges to the registry:
//
//	ctt_go_goroutines             live goroutine count
//	ctt_go_heap_alloc_bytes       bytes in live + unswept heap objects
//	ctt_go_mem_total_bytes        total memory mapped by the runtime
//	ctt_go_gc_cycles_total        completed GC cycles
//	ctt_go_gc_pause_seconds_total cumulative stop-the-world pause time
func (c *RuntimeCollector) Register(r *Registry) {
	r.Gauge("ctt_go_goroutines", func() float64 { return c.value(0) })
	r.Gauge("ctt_go_heap_alloc_bytes", func() float64 { return c.value(1) })
	r.Gauge("ctt_go_mem_total_bytes", func() float64 { return c.value(2) })
	r.Gauge("ctt_go_gc_cycles_total", func() float64 { return c.value(3) })
	r.Gauge("ctt_go_gc_pause_seconds_total", func() float64 { return c.value(4) })
}

// value returns slot i of the (refreshed-if-stale) runtime sample as
// a float64.
func (c *RuntimeCollector) value(i int) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.last) > sampleMaxAge {
		metrics.Read(c.samples)
		c.last = now
	}
	s := c.samples[i].Value
	switch s.Kind() {
	case metrics.KindUint64:
		return float64(s.Uint64())
	case metrics.KindFloat64:
		return s.Float64()
	case metrics.KindFloat64Histogram:
		// /gc/pauses is distribution-only; reduce it to a total by
		// weighting each bucket's count with its lower edge (clamped at
		// 0 — the first edge is -Inf). A slight undercount, acceptable
		// for a trend gauge.
		h := s.Float64Histogram()
		var total float64
		for i, n := range h.Counts {
			edge := h.Buckets[i]
			if !(edge > 0) {
				continue
			}
			total += edge * float64(n)
		}
		return total
	default:
		return 0
	}
}

// processStart is when this process (strictly: this package) came up —
// the value behind ctt_process_start_time_seconds.
var processStart = time.Now()

// RegisterProcessMetrics adds the process-identity gauges:
//
//	ctt_build_info{version="...",goversion="..."} 1
//	ctt_process_start_time_seconds                unix seconds
//
// Version comes from debug.ReadBuildInfo (the module version, or
// "unknown" outside module builds); goversion from runtime.Version().
func RegisterProcessMetrics(r *Registry) {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	r.Gauge(fmt.Sprintf(`ctt_build_info{version=%q,goversion=%q}`, version, runtime.Version()),
		func() float64 { return 1 })
	r.Gauge("ctt_process_start_time_seconds",
		func() float64 { return float64(processStart.UnixNano()) / 1e9 })
}
