package obs

// Span tracer: a Trace is a pooled, fixed-capacity tree of monotonic-
// clock spans plus a set of named stage accumulators. Spans mark the
// coarse phases of a request (parse → plan → scan → flush); stages
// accumulate time spent in hot pipeline sections that run many times
// per request (k-way merge, group reduce, ordered-delivery wait),
// where a span per invocation would cost more than the work it
// measures. Every method is safe on a nil *Trace / zero Span, so
// uninstrumented paths pay a single nil check. Concurrent use is safe:
// span slots are claimed with an atomic counter and published with a
// ready flag, so /api/inflight can render a live trace while workers
// are still opening spans on it.

import (
	"context"
	"math/rand/v2"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

const (
	maxSpans  = 48
	maxStages = 24
)

type spanData struct {
	name   string
	parent int32        // span index, or -1 for the trace root
	start  int64        // ns since trace t0
	end    atomic.Int64 // ns since t0; -1 while open
	ready  atomic.Bool  // published: name/parent/start are visible
}

// Stage accumulates total duration and invocation count for one named
// pipeline section. Adds are two atomic ops; safe from any goroutine.
type Stage struct {
	name string
	ns   atomic.Int64
	n    atomic.Int64
}

// Add credits d to the stage.
func (s *Stage) Add(d time.Duration) {
	if s != nil {
		s.ns.Add(int64(d))
		s.n.Add(1)
	}
}

// Duration returns the accumulated time.
func (s *Stage) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.ns.Load())
}

// Count returns the number of Add calls.
func (s *Stage) Count() int64 {
	if s == nil {
		return 0
	}
	return s.n.Load()
}

// Trace is one request's span tree. Obtain with NewTrace, return with
// Release; the backing arrays are pooled and reused.
type Trace struct {
	name     string
	detail   string
	t0       time.Time
	detailed bool

	// id is a random 64-bit trace identifier, assigned by NewTrace and
	// stable for the trace's lifetime. It is what /api/inflight rows,
	// histogram exemplars and the flight recorder use to refer to one
	// request across surfaces.
	id uint64

	nspans  atomic.Int32
	spans   [maxSpans]spanData
	dropped atomic.Int32

	stageMu sync.Mutex
	nstages atomic.Int32
	stages  [maxStages]Stage

	// cur tracks the most recently opened unfinished span, for the
	// inflight listing's "current stage" column. Best-effort under
	// concurrency.
	cur atomic.Int32
}

var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// NewTrace returns a pooled trace rooted at now. name is the request
// kind ("query", "put"); detail identifies the request (URI).
func NewTrace(name, detail string) *Trace {
	t := tracePool.Get().(*Trace)
	t.name, t.detail = name, detail
	t.t0 = time.Now()
	t.detailed = false
	t.id = rand.Uint64() | 1 // nonzero, so 0 can mean "no trace"
	t.cur.Store(-1)
	return t
}

// Release resets the trace and returns it to the pool. The caller must
// not touch the trace (or any Span on it) afterwards.
func (t *Trace) Release() {
	if t == nil {
		return
	}
	n := t.spanCount()
	for i := 0; i < n; i++ {
		t.spans[i].name = ""
		t.spans[i].ready.Store(false)
		t.spans[i].end.Store(0)
	}
	t.nspans.Store(0)
	ns := int(t.nstages.Load())
	for i := 0; i < ns; i++ {
		t.stages[i].name = ""
		t.stages[i].ns.Store(0)
		t.stages[i].n.Store(0)
	}
	t.nstages.Store(0)
	t.dropped.Store(0)
	t.name, t.detail = "", ""
	tracePool.Put(t)
}

// ID renders the trace's random identifier as 16 lowercase hex
// digits — the form exemplars, the inflight listing and /api/traces
// all share. Empty for a nil trace.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return formatTraceID(t.id)
}

// formatTraceID renders a 64-bit trace id as fixed-width hex.
func formatTraceID(id uint64) string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// Name returns the trace's request kind.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Detail returns the trace's request identifier.
func (t *Trace) Detail() string {
	if t == nil {
		return ""
	}
	return t.detail
}

// Elapsed returns the time since the trace started.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.t0)
}

// SetDetailed enables per-point detail timing for this trace (the
// sampled mode: cursor sources wrap themselves in timers).
func (t *Trace) SetDetailed(on bool) {
	if t != nil {
		t.detailed = on
	}
}

// Detailed reports whether per-point detail timing is on.
func (t *Trace) Detailed() bool { return t != nil && t.detailed }

func (t *Trace) spanCount() int {
	n := int(t.nspans.Load())
	if n > maxSpans {
		n = maxSpans
	}
	return n
}

// Span is a lightweight handle onto one span slot of a trace. The zero
// Span (and any Span from a nil trace) is inert.
type Span struct {
	t *Trace
	i int32
}

// StartSpan opens a child of the trace root.
func (t *Trace) StartSpan(name string) Span { return t.startSpan(name, -1) }

// StartSpan opens a child of this span.
func (s Span) StartSpan(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return s.t.startSpan(name, s.i)
}

func (t *Trace) startSpan(name string, parent int32) Span {
	if t == nil {
		return Span{}
	}
	i := t.nspans.Add(1) - 1
	if int(i) >= maxSpans {
		t.dropped.Add(1)
		return Span{t: t, i: -1}
	}
	sd := &t.spans[i]
	sd.name = name
	sd.parent = parent
	sd.start = int64(time.Since(t.t0))
	sd.end.Store(-1)
	sd.ready.Store(true)
	t.cur.Store(i)
	return Span{t: t, i: i}
}

// End closes the span.
func (s Span) End() {
	if s.t == nil || s.i < 0 {
		return
	}
	sd := &s.t.spans[s.i]
	sd.end.Store(int64(time.Since(s.t.t0)))
	// Restore the parent as "current" if we were it (best-effort).
	s.t.cur.CompareAndSwap(s.i, sd.parent)
}

// Stage resolves (registering on first use) the named stage
// accumulator. The fast path is a lock-free scan of the registered
// names; registration takes a mutex. Returns nil (inert) when the
// trace is nil or the stage table is full.
func (t *Trace) Stage(name string) *Stage {
	if t == nil {
		return nil
	}
	n := int(t.nstages.Load())
	for i := 0; i < n; i++ {
		if t.stages[i].name == name {
			return &t.stages[i]
		}
	}
	t.stageMu.Lock()
	defer t.stageMu.Unlock()
	n = int(t.nstages.Load())
	for i := 0; i < n; i++ {
		if t.stages[i].name == name {
			return &t.stages[i]
		}
	}
	if n >= maxStages {
		return nil
	}
	st := &t.stages[n]
	st.name = name
	st.ns.Store(0)
	st.n.Store(0)
	t.nstages.Store(int32(n + 1)) // publish after name is set
	return st
}

// StageDuration returns the accumulated time of the named stage (0 if
// absent).
func (t *Trace) StageDuration(name string) time.Duration {
	return t.findStage(name).Duration()
}

// StageCount returns the invocation count of the named stage (0 if
// absent).
func (t *Trace) StageCount(name string) int64 {
	return t.findStage(name).Count()
}

// findStage is Stage without the registering slow path.
func (t *Trace) findStage(name string) *Stage {
	if t == nil {
		return nil
	}
	n := int(t.nstages.Load())
	for i := 0; i < n; i++ {
		if t.stages[i].name == name {
			return &t.stages[i]
		}
	}
	return nil
}

// CurrentStage names the most recently opened unfinished span — the
// inflight listing's "where is it now" column. Falls back to the trace
// name when no span is open.
func (t *Trace) CurrentStage() string {
	if t == nil {
		return ""
	}
	i := t.cur.Load()
	if i >= 0 && int(i) < t.spanCount() && t.spans[i].ready.Load() {
		return t.spans[i].name
	}
	return t.name
}

// RenderTree renders the span tree and stage totals as one line:
//
//	query 12.4ms {parse 81µs; scan 12.1ms {flush 0.3ms}} stages{member_prime=9.1ms/48 ...}
//
// Open spans render with the elapsed-so-far duration and a trailing
// "+". Safe to call on a live trace: only published spans appear.
func (t *Trace) RenderTree() string {
	if t == nil {
		return ""
	}
	n := t.spanCount()
	b := make([]byte, 0, 256)
	b = append(b, t.name...)
	b = append(b, ' ')
	b = appendDur(b, t.Elapsed())
	if n > 0 {
		b = append(b, " {"...)
		b = t.appendChildren(b, -1, n)
		b = append(b, '}')
	}
	if ns := int(t.nstages.Load()); ns > 0 {
		b = append(b, " stages{"...)
		first := true
		for i := 0; i < ns; i++ {
			st := &t.stages[i]
			cnt := st.n.Load()
			if cnt == 0 {
				continue
			}
			if !first {
				b = append(b, ' ')
			}
			first = false
			b = append(b, st.name...)
			b = append(b, '=')
			b = appendDur(b, time.Duration(st.ns.Load()))
			b = append(b, '/')
			b = strconv.AppendInt(b, cnt, 10)
		}
		b = append(b, '}')
	}
	if d := t.dropped.Load(); d > 0 {
		b = append(b, " dropped="...)
		b = strconv.AppendInt(b, int64(d), 10)
	}
	return string(b)
}

func (t *Trace) appendChildren(b []byte, parent int32, n int) []byte {
	first := true
	for i := 0; i < n; i++ {
		sd := &t.spans[i]
		if !sd.ready.Load() || sd.parent != parent {
			continue
		}
		if !first {
			b = append(b, "; "...)
		}
		first = false
		b = append(b, sd.name...)
		b = append(b, ' ')
		end := sd.end.Load()
		open := end < 0
		if open {
			end = int64(time.Since(t.t0))
		}
		b = appendDur(b, time.Duration(end-sd.start))
		if open {
			b = append(b, '+')
		}
		if t.hasChild(int32(i), n) {
			b = append(b, " {"...)
			b = t.appendChildren(b, int32(i), n)
			b = append(b, '}')
		}
	}
	return b
}

func (t *Trace) hasChild(parent int32, n int) bool {
	for i := 0; i < n; i++ {
		if t.spans[i].ready.Load() && t.spans[i].parent == parent {
			return true
		}
	}
	return false
}

// appendDur renders a duration rounded to the microsecond.
func appendDur(b []byte, d time.Duration) []byte {
	return append(b, d.Round(time.Microsecond).String()...)
}

// --- context plumbing --------------------------------------------------

type traceKey struct{}
type spanKey struct{}

// WithTrace attaches a trace to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// StartSpan opens a span as a child of the context's current span (or
// of the trace root), returning a derived context carrying the new
// span. With no trace attached it is a no-op returning ctx unchanged.
func StartSpan(ctx context.Context, name string) (context.Context, Span) {
	t := TraceFrom(ctx)
	if t == nil {
		return ctx, Span{}
	}
	var sp Span
	if parent, ok := ctx.Value(spanKey{}).(Span); ok && parent.t == t {
		sp = parent.StartSpan(name)
	} else {
		sp = t.StartSpan(name)
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}
