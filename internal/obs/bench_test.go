package obs

import (
	"testing"
	"time"
)

// The instrumentation-overhead guard: these primitives sit on ingest
// and query hot paths, so their per-op cost is benchmarked and gated
// alongside the paths they instrument.

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkStageAdd(b *testing.B) {
	tr := NewTrace("bench", "")
	defer tr.Release()
	st := tr.Stage("group_reduce")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Add(time.Microsecond)
	}
}

func BenchmarkTraceSpans(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := NewTrace("query", "/api/query")
		sp := tr.StartSpan("parse")
		sp.End()
		scan := tr.StartSpan("scan")
		scan.StartSpan("decode").End()
		scan.End()
		tr.Release()
	}
}

func BenchmarkNilTraceOverhead(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("scan")
		tr.Stage("group_reduce").Add(0)
		sp.End()
	}
}

func BenchmarkRegistryExpose(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 8; i++ {
		r.Counter("c" + string(rune('a'+i)) + "_total").Add(uint64(i))
	}
	r.Gauge("g_depth", func() float64 { return 12 })
	h := r.Histogram("lat_seconds", "", nil)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(r.Expose()) == 0 {
			b.Fatal("empty body")
		}
	}
}

func BenchmarkHistogramObserveExemplar(b *testing.B) {
	h := newHistogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveExemplar(0.0042, "0123456789abcdef")
	}
}

func BenchmarkTraceCapture(b *testing.B) {
	tr := NewTrace("query", "/api/query")
	sp := tr.StartSpan("parse")
	sp.End()
	scan := tr.StartSpan("scan")
	scan.StartSpan("decode").End()
	scan.End()
	tr.Stage("group_reduce").Add(time.Millisecond)
	defer tr.Release()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.Capture() == nil {
			b.Fatal("nil capture")
		}
	}
}

func BenchmarkRecorderAdd(b *testing.B) {
	r := NewRecorder(DefaultRecorderSize)
	c := &TraceCapture{ID: "0123456789abcdef"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add(c)
	}
}
