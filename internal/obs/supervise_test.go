package obs

import (
	"io"
	"log/slog"
	"sync/atomic"
	"testing"
	"time"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func TestSupervisedRestartsAfterPanic(t *testing.T) {
	basePanics, baseRestarts := LoopPanics(), LoopRestarts()
	stop := make(chan struct{})
	var runs atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		Supervised("test-loop", quietLogger(), stop, func() {
			if runs.Add(1) <= 3 {
				panic("boom")
			}
			// Fourth run: return normally, ending supervision.
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("supervised loop did not settle")
	}
	if got := runs.Load(); got != 4 {
		t.Fatalf("body ran %d times, want 4 (3 panics + 1 clean)", got)
	}
	if got := LoopPanics() - basePanics; got != 3 {
		t.Fatalf("LoopPanics advanced by %d, want 3", got)
	}
	if got := LoopRestarts() - baseRestarts; got != 3 {
		t.Fatalf("LoopRestarts advanced by %d, want 3", got)
	}
}

func TestSupervisedStopsOnStopAfterPanic(t *testing.T) {
	stop := make(chan struct{})
	close(stop) // already stopped: one panicked run, no restart
	var runs atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		Supervised("test-stop", quietLogger(), stop, func() {
			runs.Add(1)
			panic("boom")
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("supervised loop ignored stop")
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("body ran %d times after stop, want 1", got)
	}
}

func TestSupervisedCleanReturn(t *testing.T) {
	stop := make(chan struct{})
	ran := false
	Supervised("test-clean", quietLogger(), stop, func() { ran = true })
	if !ran {
		t.Fatal("body never ran")
	}
}
