// Package obs is the zero-dependency observability core of the CTT
// cloud: atomic counters and gauges, lock-cheap fixed-bucket
// histograms, and a pooled span tracer, rendered through a registry in
// Prometheus text exposition format. Everything here is stdlib-only
// and built for the hot path: counters and histogram observations are
// single atomic operations, registries snapshot values before any
// formatting happens, and the tracer costs nothing when no trace is
// attached (every method is nil-receiver safe).
package obs

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// DefBuckets are the default latency buckets, in seconds: 100µs .. 10s
// exponentially, covering everything from a WAL fsync to a pathological
// cold scan.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// Histogram is a fixed-bucket histogram. Observations are lock-free:
// one atomic add on the bucket counter plus a CAS loop folding the
// value into the float64 sum. Bucket bounds are immutable after
// construction. Each bucket additionally holds one exemplar slot — the
// last traced observation that landed in it, published as an atomic
// pointer swap — so the OpenMetrics exposition can link a latency
// bucket to the retained trace that produced it.
type Histogram struct {
	name      string // family name, e.g. "ctt_http_request_seconds"
	labels    string // inline label pairs without braces, e.g. `endpoint="query"`
	bounds    []float64
	counts    []atomic.Uint64 // len(bounds)+1; the last is the +Inf bucket
	sum       atomic.Uint64   // math.Float64bits of the running sum
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar is one traced observation attached to a histogram bucket:
// the observed value, the trace it belongs to, and when it happened.
// Immutable once published.
type Exemplar struct {
	Value   float64
	TraceID string
	Time    time.Time
}

func newHistogram(name, labels string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &Histogram{
		name:      name,
		labels:    labels,
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// Observe records one value. Nil-safe so partially-wired
// instrumentation costs nothing.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[h.bucket(v)].Add(1)
	h.addSum(v)
}

// ObserveExemplar records one value and publishes it as the bucket's
// exemplar, tagged with the trace it came from. Only traced (sampled
// or slow) requests take this path — it allocates one Exemplar — so
// the untraced hot path keeps Observe's zero-alloc cost, and every
// exemplar in the exposition points at a trace the flight recorder
// actually retained. An empty traceID degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	i := h.bucket(v)
	h.counts[i].Add(1)
	h.addSum(v)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, Time: time.Now()})
	}
}

// bucket returns the index of the bucket v falls into.
func (h *Histogram) bucket(v float64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// addSum folds v into the running float sum with a CAS loop.
func (h *Histogram) addSum(v float64) {
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0).Seconds())
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// histSnapshot is one histogram's values, read once before formatting.
type histSnapshot struct {
	name, labels string
	bounds       []float64
	counts       []uint64
	sum          float64
	exemplars    []*Exemplar // per bucket; entries may be nil
}

// snapshot reads the histogram without locking Observe out. Under
// concurrent observation the counts and sum are not read atomically as
// a pair, so one scrape can show a _sum that leads or trails
// _bucket/_count by the in-flight observations. Rates and quantiles —
// the values Prometheus derives — are unaffected; exact point-in-time
// _sum/_count agreement is deliberately not guaranteed.
func (h *Histogram) snapshot() histSnapshot {
	s := histSnapshot{
		name:   h.name,
		labels: h.labels,
		bounds: h.bounds,
		counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.counts[i] = h.counts[i].Load()
	}
	s.sum = math.Float64frombits(h.sum.Load())
	s.exemplars = make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		s.exemplars[i] = h.exemplars[i].Load()
	}
	return s
}

// Registry holds metrics and renders them in Prometheus text
// exposition format. Registration order is preserved for counters and
// gauges; histograms render after them, grouped by family so each
// family gets exactly one `# TYPE` header. Legacy emit-style sources
// (AddSource) render last. Expose snapshots every value first and
// formats entirely outside the registry lock.
type Registry struct {
	mu      sync.RWMutex
	scalars []scalarEntry
	hists   []*Histogram
	sources []func(emit func(name string, v any))
}

type scalarEntry struct {
	name    string // full name including any inline {labels}
	counter *Counter
	gauge   func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers and returns a counter. name may carry inline
// labels, e.g. `ctt_ingest_rejected_total{reason="queue_full"}`.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.mu.Lock()
	r.scalars = append(r.scalars, scalarEntry{name: name, counter: c})
	r.mu.Unlock()
	return c
}

// Gauge registers a gauge whose value is read from fn at scrape time.
func (r *Registry) Gauge(name string, fn func() float64) {
	r.mu.Lock()
	r.scalars = append(r.scalars, scalarEntry{name: name, gauge: fn})
	r.mu.Unlock()
}

// Histogram registers and returns a histogram. labels are inline label
// pairs without braces (`endpoint="query"`), empty for none; nil
// bounds select DefBuckets. Histograms sharing a family name share one
// `# TYPE` header in the rendered output.
func (r *Registry) Histogram(name, labels string, bounds []float64) *Histogram {
	h := newHistogram(name, labels, bounds)
	r.mu.Lock()
	r.hists = append(r.hists, h)
	r.mu.Unlock()
	return h
}

// AddSource registers a legacy emit-style metrics source (the form the
// rollup engine and line-protocol listener already speak). Sources run
// at scrape time, after the registry's own metrics, outside any
// registry lock.
func (r *Registry) AddSource(fn func(emit func(name string, v any))) {
	r.mu.Lock()
	r.sources = append(r.sources, fn)
	r.mu.Unlock()
}

// Expose renders the registry in Prometheus text exposition format.
// The registry lock is held only to copy the (append-only) entry
// slices; every value is snapshotted and formatted lock-free.
func (r *Registry) Expose() []byte { return r.expose(false) }

// ExposeOpenMetrics renders the registry in OpenMetrics flavor: the
// same families and values, with each histogram bucket carrying its
// last traced observation as an exemplar —
//
//	name_bucket{le="0.25"} 7 # {trace_id="a1b2..."} 0.231 1520879607.789
//
// — and the body terminated by the mandatory "# EOF" marker, so
// Prometheus scraping with exemplar storage enabled can link a
// latency bucket straight to GET /api/traces/{trace_id}.
func (r *Registry) ExposeOpenMetrics() []byte { return r.expose(true) }

func (r *Registry) expose(openmetrics bool) []byte {
	r.mu.RLock()
	scalars := r.scalars
	hists := r.hists
	sources := r.sources
	r.mu.RUnlock()

	// Snapshot phase: read every value before formatting anything.
	type scalarVal struct {
		name      string
		isCounter bool
		u         uint64
		f         float64
	}
	svals := make([]scalarVal, len(scalars))
	for i, e := range scalars {
		if e.counter != nil {
			svals[i] = scalarVal{name: e.name, isCounter: true, u: e.counter.Value()}
		} else {
			svals[i] = scalarVal{name: e.name, f: e.gauge()}
		}
	}
	hvals := make([]histSnapshot, len(hists))
	for i, h := range hists {
		hvals[i] = h.snapshot()
	}

	// Format phase.
	b := make([]byte, 0, 4096)
	for _, v := range svals {
		b = append(b, v.name...)
		b = append(b, ' ')
		if v.isCounter {
			b = strconv.AppendUint(b, v.u, 10)
		} else {
			b = appendMetricFloat(b, v.f)
		}
		b = append(b, '\n')
	}
	// Histograms grouped by family, in first-registration order, so
	// each family gets exactly one TYPE header.
	seen := map[string]bool{}
	for i := range hvals {
		fam := hvals[i].name
		if seen[fam] {
			continue
		}
		seen[fam] = true
		b = append(b, "# TYPE "...)
		b = append(b, fam...)
		b = append(b, " histogram\n"...)
		for j := i; j < len(hvals); j++ {
			if hvals[j].name == fam {
				b = appendHistogram(b, &hvals[j], openmetrics)
			}
		}
	}
	for _, src := range sources {
		src(func(name string, v any) {
			b = append(b, name...)
			b = append(b, ' ')
			b = appendEmitValue(b, v)
			b = append(b, '\n')
		})
	}
	if openmetrics {
		b = append(b, "# EOF\n"...)
	}
	return b
}

// Each visits every scalar value the registry can express as a number:
// counters and gauges under their registered names (inline labels
// included), then each histogram's _count and _sum. It is the
// machine-readable walk behind the self-scrape loop — the same values
// /metrics renders as text, delivered as (name, float) pairs with no
// formatting. Legacy emit-style sources are not visited (their values
// may be pre-formatted strings).
func (r *Registry) Each(fn func(name string, v float64)) {
	r.mu.RLock()
	scalars := r.scalars
	hists := r.hists
	r.mu.RUnlock()
	for _, e := range scalars {
		if e.counter != nil {
			fn(e.name, float64(e.counter.Value()))
		} else {
			fn(e.name, e.gauge())
		}
	}
	for _, h := range hists {
		s := h.snapshot()
		var n uint64
		for _, c := range s.counts {
			n += c
		}
		fn(histSeriesName(h.name, "_count", h.labels), float64(n))
		fn(histSeriesName(h.name, "_sum", h.labels), s.sum)
	}
}

// histSeriesName builds "name_suffix" or "name_suffix{labels}".
func histSeriesName(name, suffix, labels string) string {
	if labels == "" {
		return name + suffix
	}
	return name + suffix + "{" + labels + "}"
}

// appendHistogram renders one histogram's _bucket/_sum/_count lines
// from its snapshot. Bucket counts are cumulative; the +Inf bucket
// equals _count by construction, so monotonicity holds even against
// concurrent observations. In OpenMetrics mode each bucket holding an
// exemplar appends it after the count, "# {labels} value timestamp".
func appendHistogram(b []byte, s *histSnapshot, openmetrics bool) []byte {
	appendLabeled := func(b []byte, suffix, extra string) []byte {
		b = append(b, s.name...)
		b = append(b, suffix...)
		if s.labels != "" || extra != "" {
			b = append(b, '{')
			b = append(b, s.labels...)
			if s.labels != "" && extra != "" {
				b = append(b, ',')
			}
			b = append(b, extra...)
			b = append(b, '}')
		}
		return b
	}
	var cum uint64
	for i, c := range s.counts {
		cum += c
		le := "+Inf"
		if i < len(s.bounds) {
			le = strconv.FormatFloat(s.bounds[i], 'g', -1, 64)
		}
		b = appendLabeled(b, "_bucket", `le="`+le+`"`)
		b = append(b, ' ')
		b = strconv.AppendUint(b, cum, 10)
		if openmetrics && i < len(s.exemplars) {
			if ex := s.exemplars[i]; ex != nil {
				b = appendExemplar(b, ex)
			}
		}
		b = append(b, '\n')
	}
	b = appendLabeled(b, "_sum", "")
	b = append(b, ' ')
	b = appendMetricFloat(b, s.sum)
	b = append(b, '\n')
	b = appendLabeled(b, "_count", "")
	b = append(b, ' ')
	b = strconv.AppendUint(b, cum, 10)
	b = append(b, '\n')
	return b
}

// appendExemplar renders one OpenMetrics exemplar suffix:
//
//	# {trace_id="<16 hex>"} <value> <unix seconds>
//
// The timestamp keeps millisecond precision, which is what the
// recorder's retention granularity justifies.
func appendExemplar(b []byte, ex *Exemplar) []byte {
	b = append(b, ` # {trace_id="`...)
	b = append(b, ex.TraceID...)
	b = append(b, `"} `...)
	b = appendMetricFloat(b, ex.Value)
	b = append(b, ' ')
	b = strconv.AppendFloat(b, float64(ex.Time.UnixMilli())/1000, 'f', 3, 64)
	return b
}

// appendMetricFloat renders a gauge value: integral floats print as
// integers (matching the pre-registry /metrics output the tests pin),
// everything else in shortest-roundtrip form.
func appendMetricFloat(b []byte, f float64) []byte {
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

// appendEmitValue renders a legacy source value: ints and uints
// directly, floats via appendMetricFloat, strings verbatim (sources
// pre-format ratios), everything else through strconv-compatible
// fallbacks.
func appendEmitValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case float64:
		return appendMetricFloat(b, x)
	case string:
		return append(b, x...)
	default:
		return fmt.Append(b, v)
	}
}
