package obs

import (
	"sort"
	"sync"
)

// Inflight tracks live traces so an ops endpoint can list what the
// server is doing right now. Track/untrack are a mutex'd map insert
// and delete — request-granular, not hot-path.
type Inflight struct {
	mu  sync.Mutex
	set map[*Trace]struct{}
}

// NewInflight returns an empty tracker.
func NewInflight() *Inflight {
	return &Inflight{set: make(map[*Trace]struct{})}
}

// Track registers a live trace and returns its untrack function. The
// caller must untrack before releasing the trace.
func (f *Inflight) Track(t *Trace) func() {
	if f == nil || t == nil {
		return func() {}
	}
	f.mu.Lock()
	f.set[t] = struct{}{}
	f.mu.Unlock()
	return func() {
		f.mu.Lock()
		delete(f.set, t)
		f.mu.Unlock()
	}
}

// InflightEntry is one live request in a Snapshot. TraceID lets an
// operator follow a live query into /api/traces/{id} once it
// completes (and is captured by the flight recorder).
type InflightEntry struct {
	TraceID   string  `json:"trace_id"`
	Name      string  `json:"name"`
	Detail    string  `json:"detail"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Stage     string  `json:"stage"`
}

// Snapshot lists live traces, longest-running first. Entries are built
// while f.mu is held: untrack also takes f.mu and handlers untrack
// before Release, so a trace read here cannot be reset and repooled
// underneath us (its plain name/detail fields are only written by
// NewTrace/Release).
func (f *Inflight) Snapshot() []InflightEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := make([]InflightEntry, 0, len(f.set))
	for t := range f.set {
		out = append(out, InflightEntry{
			TraceID:   t.ID(),
			Name:      t.Name(),
			Detail:    t.Detail(),
			ElapsedMS: float64(t.Elapsed().Microseconds()) / 1000,
			Stage:     t.CurrentStage(),
		})
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ElapsedMS > out[j].ElapsedMS })
	return out
}
