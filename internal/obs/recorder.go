package obs

// Flight recorder: a Trace lives only while its request is in flight —
// the pooled span tree is reset on Release. Capture takes an immutable,
// heap-owned snapshot of the spans and stages just before that, and
// Recorder keeps the last N snapshots in a lock-light ring buffer so an
// operator can answer "why was that query slow?" after the fact via
// GET /api/traces/{id}. Writers claim slots with one atomic add and
// publish with one atomic pointer store; readers walk the slots with
// atomic loads — no mutex anywhere, so recording never contends with
// the request path and listing never stalls recording.

import (
	"sort"
	"sync/atomic"
	"time"
)

// CapturedSpan is one span of a trace snapshot. Parent indexes into
// the capture's Spans slice (-1 for children of the trace root);
// parents always precede their children. EndNS is -1 for a span still
// open at capture time.
type CapturedSpan struct {
	Name    string
	Parent  int
	StartNS int64
	EndNS   int64
}

// Open reports whether the span was still running when captured.
func (s CapturedSpan) Open() bool { return s.EndNS < 0 }

// Duration returns the span's length; for an open span, the time from
// its start to the capture instant.
func (s CapturedSpan) Duration(captureNS int64) time.Duration {
	if s.Open() {
		return time.Duration(captureNS - s.StartNS)
	}
	return time.Duration(s.EndNS - s.StartNS)
}

// CapturedStage is one stage accumulator of a trace snapshot.
type CapturedStage struct {
	Name     string
	Duration time.Duration
	Count    int64
}

// TraceCapture is an immutable snapshot of one trace, safe to retain
// and read long after the originating Trace is released and repooled.
type TraceCapture struct {
	ID       string
	Name     string
	Detail   string
	Start    time.Time
	Duration time.Duration
	Detailed bool
	Dropped  int
	Spans    []CapturedSpan
	Stages   []CapturedStage
}

// Capture snapshots the trace onto the heap: published spans, stage
// totals, drop count and elapsed time as of now. Call it just before
// Release; the result shares nothing with the pooled trace. Nil-safe.
func (t *Trace) Capture() *TraceCapture {
	if t == nil {
		return nil
	}
	c := &TraceCapture{
		ID:       t.ID(),
		Name:     t.name,
		Detail:   t.detail,
		Start:    t.t0,
		Duration: t.Elapsed(),
		Detailed: t.detailed,
		Dropped:  int(t.dropped.Load()),
	}
	n := t.spanCount()
	if n > 0 {
		// Unpublished slots (claimed, fields not yet visible) are
		// skipped, shifting indices; remap parents accordingly. A parent
		// always claims its slot before any child, so a single forward
		// pass sees every parent before its children.
		remap := make([]int, n)
		c.Spans = make([]CapturedSpan, 0, n)
		for i := 0; i < n; i++ {
			sd := &t.spans[i]
			if !sd.ready.Load() {
				remap[i] = -1
				continue
			}
			parent := -1
			if sd.parent >= 0 && int(sd.parent) < n {
				parent = remap[sd.parent]
			}
			remap[i] = len(c.Spans)
			c.Spans = append(c.Spans, CapturedSpan{
				Name:    sd.name,
				Parent:  parent,
				StartNS: sd.start,
				EndNS:   sd.end.Load(),
			})
		}
	}
	if ns := int(t.nstages.Load()); ns > 0 {
		c.Stages = make([]CapturedStage, 0, ns)
		for i := 0; i < ns; i++ {
			st := &t.stages[i]
			cnt := st.n.Load()
			if cnt == 0 {
				continue
			}
			c.Stages = append(c.Stages, CapturedStage{
				Name:     st.name,
				Duration: time.Duration(st.ns.Load()),
				Count:    cnt,
			})
		}
	}
	return c
}

// DefaultRecorderSize is the ring capacity NewRecorder uses when the
// caller passes size <= 0.
const DefaultRecorderSize = 256

// Recorder is the bounded trace ring. The zero value is unusable; a
// nil *Recorder is inert (Add drops, Get and List return nothing), so
// callers can compile the flight recorder out by configuration.
type Recorder struct {
	slots []atomic.Pointer[TraceCapture]
	next  atomic.Uint64
}

// NewRecorder returns a recorder retaining the last size captures
// (DefaultRecorderSize when size <= 0).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultRecorderSize
	}
	return &Recorder{slots: make([]atomic.Pointer[TraceCapture], size)}
}

// Add retains a capture, evicting the oldest entry once the ring is
// full. Safe for concurrent use; cost is one atomic add and one
// atomic store.
func (r *Recorder) Add(c *TraceCapture) {
	if r == nil || c == nil {
		return
	}
	i := (r.next.Add(1) - 1) % uint64(len(r.slots))
	r.slots[i].Store(c)
}

// Get returns the retained capture with the given ID, or nil.
func (r *Recorder) Get(id string) *TraceCapture {
	if r == nil {
		return nil
	}
	for i := range r.slots {
		if c := r.slots[i].Load(); c != nil && c.ID == id {
			return c
		}
	}
	return nil
}

// List returns the retained captures, newest first.
func (r *Recorder) List() []*TraceCapture {
	if r == nil {
		return nil
	}
	out := make([]*TraceCapture, 0, len(r.slots))
	for i := range r.slots {
		if c := r.slots[i].Load(); c != nil {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// Len reports how many captures are currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.slots {
		if r.slots[i].Load() != nil {
			n++
		}
	}
	return n
}
