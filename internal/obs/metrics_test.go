package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	r.Gauge("test_gauge", func() float64 { return 42 })
	r.Gauge(`test_labeled{k="v"}`, func() float64 { return 1.5 })
	body := string(r.Expose())
	for _, want := range []string{"test_total 5\n", "test_gauge 42\n", `test_labeled{k="v"} 1.5` + "\n"} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5, 0.05} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	body := string(r.Expose())
	for _, want := range []string{
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.01"} 1` + "\n",
		`lat_seconds_bucket{le="0.1"} 3` + "\n",
		`lat_seconds_bucket{le="1"} 4` + "\n",
		`lat_seconds_bucket{le="+Inf"} 5` + "\n",
		"lat_seconds_count 5\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}
	// The sum line parses to the observed total (within float noise).
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, "lat_seconds_sum "); ok {
			sum, err := strconv.ParseFloat(rest, 64)
			if err != nil || sum < 5.6 || sum > 5.61 {
				t.Errorf("sum = %q (err %v), want ≈5.605", rest, err)
			}
			return
		}
	}
	t.Errorf("missing lat_seconds_sum in:\n%s", body)
}

func TestHistogramFamilyGrouping(t *testing.T) {
	r := NewRegistry()
	r.Histogram("req_seconds", `endpoint="query"`, []float64{1}).Observe(0.5)
	r.Histogram("other_seconds", "", []float64{1}).Observe(0.5)
	r.Histogram("req_seconds", `endpoint="put"`, []float64{1}).Observe(2)
	body := string(r.Expose())
	if n := strings.Count(body, "# TYPE req_seconds histogram"); n != 1 {
		t.Errorf("req_seconds TYPE lines = %d, want 1:\n%s", n, body)
	}
	// Both label variants must render under the one header, before the
	// next family starts.
	qi := strings.Index(body, `req_seconds_bucket{endpoint="query",le="1"} 1`)
	pi := strings.Index(body, `req_seconds_bucket{endpoint="put",le="1"} 0`)
	oi := strings.Index(body, "# TYPE other_seconds histogram")
	if qi < 0 || pi < 0 || oi < 0 {
		t.Fatalf("missing expected lines in:\n%s", body)
	}
	if !(qi < oi && pi < oi) {
		t.Errorf("req_seconds family split across other families:\n%s", body)
	}
}

func TestLegacySource(t *testing.T) {
	r := NewRegistry()
	r.AddSource(func(emit func(name string, v any)) {
		emit("legacy_int", 7)
		emit("legacy_float", 0.125)
		emit("legacy_str", "0.333")
	})
	body := string(r.Expose())
	for _, want := range []string{"legacy_int 7\n", "legacy_float 0.125\n", "legacy_str 0.333\n"} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}
}

// TestExposeConcurrent scrapes while observing from many goroutines;
// under -race this is the registry's snapshot-before-format guarantee,
// and every scrape must still satisfy bucket monotonicity.
func TestExposeConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "", nil)
	c := r.Counter("conc_total")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(0.001)
					c.Inc()
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		body := string(r.Expose())
		assertBucketsMonotonic(t, body)
	}
	close(stop)
	wg.Wait()
}

// assertBucketsMonotonic parses every _bucket line and checks the
// cumulative counts never decrease within a series.
func assertBucketsMonotonic(t *testing.T, body string) {
	t.Helper()
	last := map[string]uint64{}
	for _, line := range strings.Split(body, "\n") {
		i := strings.Index(line, "_bucket{")
		if i < 0 {
			continue
		}
		j := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseUint(line[j+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		// Series key: name plus labels minus the le pair.
		key := line[:i]
		if prev, ok := last[key]; ok && v < prev {
			t.Fatalf("bucket counts not monotonic at %q: %d after %d", line, v, prev)
		}
		last[key] = v
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 {
		t.Fatal("nil histogram count")
	}
}
