package obs

import (
	"strings"
	"testing"
)

func TestRuntimeCollectorGauges(t *testing.T) {
	r := NewRegistry()
	NewRuntimeCollector().Register(r)
	vals := map[string]float64{}
	r.Each(func(name string, v float64) { vals[name] = v })

	if g := vals["ctt_go_goroutines"]; g < 1 {
		t.Fatalf("ctt_go_goroutines = %v, want >= 1", g)
	}
	if h := vals["ctt_go_heap_alloc_bytes"]; h <= 0 {
		t.Fatalf("ctt_go_heap_alloc_bytes = %v, want > 0", h)
	}
	if m := vals["ctt_go_mem_total_bytes"]; m < vals["ctt_go_heap_alloc_bytes"] {
		t.Fatalf("total %v < heap %v", m, vals["ctt_go_heap_alloc_bytes"])
	}
	for _, name := range []string{"ctt_go_gc_cycles_total", "ctt_go_gc_pause_seconds_total"} {
		v, ok := vals[name]
		if !ok || v < 0 {
			t.Fatalf("%s = %v (present=%v), want >= 0", name, v, ok)
		}
	}
}

func TestProcessMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r)
	body := string(r.Expose())
	if !strings.Contains(body, `ctt_build_info{version="`) ||
		!strings.Contains(body, `goversion="go`) {
		t.Fatalf("build info line missing from exposition:\n%s", body)
	}
	var start float64
	r.Each(func(name string, v float64) {
		if name == "ctt_process_start_time_seconds" {
			start = v
		}
	})
	// Any plausible unix time: after 2020, not in the far future.
	if start < 1.5e9 || start > 4e9 {
		t.Fatalf("ctt_process_start_time_seconds = %v", start)
	}
}
