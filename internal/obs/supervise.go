package obs

import (
	"log/slog"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Supervision for long-lived background loops (flusher, rollup tick,
// self-scraper): a panic inside the loop body must not silently kill
// the loop for the rest of the process lifetime. Supervised recovers,
// logs the stack, counts, and restarts the body with capped
// exponential backoff. These are package-level counters (exposed as
// ctt_loop_panics_total / ctt_loop_restarts_total) because loops live
// in several packages and a single pair of numbers is what an operator
// alerts on.

const (
	superviseBackoffBase = 100 * time.Millisecond
	superviseBackoffMax  = 5 * time.Second
)

var (
	loopPanics   atomic.Uint64
	loopRestarts atomic.Uint64
)

// LoopPanics reports the total number of panics recovered from
// supervised background loops.
func LoopPanics() uint64 { return loopPanics.Load() }

// LoopRestarts reports the total number of supervised-loop restarts.
func LoopRestarts() uint64 { return loopRestarts.Load() }

// Supervised runs body, recovering from panics and restarting it with
// capped exponential backoff until either body returns normally or
// stop closes. A nil logger falls back to slog.Default(). Consecutive
// panics double the restart delay up to superviseBackoffMax; the
// intact runs in between do not reset it (a loop that panics once per
// tick would otherwise hammer at the base delay forever).
func Supervised(name string, logger *slog.Logger, stop <-chan struct{}, body func()) {
	if logger == nil {
		logger = slog.Default()
	}
	backoff := superviseBackoffBase
	for {
		panicked := runRecovered(name, logger, body)
		if !panicked {
			return
		}
		select {
		case <-stop:
			return
		case <-time.After(backoff):
		}
		loopRestarts.Add(1)
		logger.Warn("supervised loop restarting", "loop", name, "backoff", backoff)
		if backoff *= 2; backoff > superviseBackoffMax {
			backoff = superviseBackoffMax
		}
	}
}

// runRecovered executes body once, converting a panic into a counted,
// logged, recovered event.
func runRecovered(name string, logger *slog.Logger, body func()) (panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			loopPanics.Add(1)
			logger.Error("supervised loop panic",
				"loop", name, "panic", r, "stack", string(debug.Stack()))
		}
	}()
	body()
	return false
}
