package obs

import (
	"context"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTrace("query", "/api/query?m=avg:air.co2")
	defer tr.Release()
	parse := tr.StartSpan("parse")
	parse.End()
	scan := tr.StartSpan("scan")
	inner := scan.StartSpan("decode")
	inner.End()
	scan.End()
	tree := tr.RenderTree()
	if !strings.HasPrefix(tree, "query ") {
		t.Errorf("tree %q does not start with trace name", tree)
	}
	// decode must render nested inside scan's braces.
	si := strings.Index(tree, "scan ")
	di := strings.Index(tree, "decode ")
	if si < 0 || di < 0 || di < si {
		t.Fatalf("nesting broken in %q", tree)
	}
	if !strings.Contains(tree[si:], "{decode") {
		t.Errorf("decode not nested under scan in %q", tree)
	}
	pi := strings.Index(tree, "parse ")
	if pi < 0 || pi > si {
		t.Errorf("parse should render before scan in %q", tree)
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewTrace("query", "")
	defer tr.Release()
	scan := tr.StartSpan("scan")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := scan.StartSpan("group")
			tr.Stage("group_reduce").Add(time.Microsecond)
			sp.End()
		}()
	}
	// Render while children are racing in: must not crash, must only
	// show published spans.
	for i := 0; i < 50; i++ {
		_ = tr.RenderTree()
		_ = tr.CurrentStage()
	}
	wg.Wait()
	scan.End()
	if got := tr.StageCount("group_reduce"); got != 8 {
		t.Fatalf("group_reduce count = %d, want 8", got)
	}
	if n := strings.Count(tr.RenderTree(), "group "); n != 8 {
		t.Fatalf("rendered %d group spans, want 8:\n%s", n, tr.RenderTree())
	}
}

func TestTracePoolReuse(t *testing.T) {
	tr := NewTrace("query", "first")
	tr.StartSpan("parse").End()
	tr.Stage("serialize").Add(time.Millisecond)
	tr.Release()
	// A fresh trace (possibly the same pooled object) must carry
	// nothing over.
	tr2 := NewTrace("put", "second")
	defer tr2.Release()
	if tr2.StageCount("serialize") != 0 {
		t.Fatal("stage leaked through the pool")
	}
	tree := tr2.RenderTree()
	if strings.Contains(tree, "parse") || strings.Contains(tree, "first") {
		t.Fatalf("span leaked through the pool: %q", tree)
	}
	if !strings.HasPrefix(tree, "put ") {
		t.Fatalf("bad fresh tree %q", tree)
	}
}

func TestSpanOverflowDrops(t *testing.T) {
	tr := NewTrace("query", "")
	defer tr.Release()
	for i := 0; i < maxSpans+10; i++ {
		tr.StartSpan("s").End()
	}
	tree := tr.RenderTree()
	if !strings.Contains(tree, "dropped=10") {
		t.Errorf("overflow not reported in %q", tree)
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	sp := tr.StartSpan("x")
	sp.End()
	child := sp.StartSpan("y")
	child.End()
	tr.Stage("s").Add(time.Second)
	if tr.RenderTree() != "" || tr.CurrentStage() != "" || tr.Elapsed() != 0 {
		t.Fatal("nil trace not inert")
	}
	tr.SetDetailed(true)
	if tr.Detailed() {
		t.Fatal("nil trace detailed")
	}
	tr.Release()
}

func TestContextPlumbing(t *testing.T) {
	tr := NewTrace("query", "")
	defer tr.Release()
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom lost the trace")
	}
	ctx2, scan := StartSpan(ctx, "scan")
	_, decode := StartSpan(ctx2, "decode")
	decode.End()
	scan.End()
	tree := tr.RenderTree()
	if !strings.Contains(tree, "scan") || !strings.Contains(tree, "{decode") {
		t.Fatalf("context spans not nested: %q", tree)
	}
	// No trace attached: a no-op.
	_, sp := StartSpan(context.Background(), "x")
	sp.End()
}

func TestInflightSnapshot(t *testing.T) {
	inf := NewInflight()
	tr := NewTrace("query", "/api/query?m=sum:x")
	defer tr.Release()
	untrack := inf.Track(tr)
	sp := tr.StartSpan("scan")
	snap := inf.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot len = %d, want 1", len(snap))
	}
	e := snap[0]
	if e.Name != "query" || e.Detail != "/api/query?m=sum:x" || e.Stage != "scan" {
		t.Fatalf("bad entry %+v", e)
	}
	sp.End()
	untrack()
	if len(inf.Snapshot()) != 0 {
		t.Fatal("untrack did not remove the trace")
	}
}

// TestRenderTreeGolden pins the RenderTree line format the slow-query
// log (and anyone grepping it) depends on: open spans carry a trailing
// "+", overflow renders as a trailing "dropped=N".
func TestRenderTreeGolden(t *testing.T) {
	tr := NewTrace("query", "")
	defer tr.Release()
	parse := tr.StartSpan("parse")
	parse.End()
	scan := tr.StartSpan("scan") // left open on purpose

	tree := tr.RenderTree()
	if !regexp.MustCompile(`^query [0-9.]+[µmn]?s \{parse [0-9.]+[µmn]?s; scan [0-9.]+[µmn]?s\+\}$`).MatchString(tree) {
		t.Fatalf("tree %q does not match pinned open-span format", tree)
	}
	scan.End()
	if tree = tr.RenderTree(); strings.Contains(tree, "+") {
		t.Fatalf("closed span still renders open marker: %q", tree)
	}

	tr2 := NewTrace("query", "")
	defer tr2.Release()
	for i := 0; i < maxSpans+3; i++ {
		tr2.StartSpan("s").End()
	}
	if tree = tr2.RenderTree(); !regexp.MustCompile(` dropped=3$`).MatchString(tree) {
		t.Fatalf("tree %q does not end with pinned dropped marker", tree)
	}
}
