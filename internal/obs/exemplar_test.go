package obs

import (
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestObserveExemplar(t *testing.T) {
	h := newHistogram("ctt_q", "", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "aaaaaaaaaaaaaaaa")
	h.ObserveExemplar(0.5, "bbbbbbbbbbbbbbbb")
	h.ObserveExemplar(0.6, "cccccccccccccccc") // replaces b's slot
	h.ObserveExemplar(5, "")                   // no trace: counts, no exemplar

	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	s := h.snapshot()
	if ex := s.exemplars[0]; ex == nil || ex.TraceID != "aaaaaaaaaaaaaaaa" || ex.Value != 0.05 {
		t.Fatalf("bucket 0 exemplar = %+v", s.exemplars[0])
	}
	if ex := s.exemplars[1]; ex == nil || ex.TraceID != "cccccccccccccccc" {
		t.Fatalf("bucket 1 exemplar not last-writer-wins: %+v", s.exemplars[1])
	}
	if s.exemplars[2] != nil {
		t.Fatalf("+Inf bucket grew an exemplar from empty trace ID: %+v", s.exemplars[2])
	}

	var nilH *Histogram
	nilH.ObserveExemplar(1, "x") // must not panic
}

// omExemplarLine pins the OpenMetrics exemplar syntax this package
// emits: bucket line, then " # {trace_id=\"...\"} value unix_ts".
var omExemplarLine = regexp.MustCompile(
	`^ctt_q_bucket\{le="[^"]+"\} \d+ # \{trace_id="[0-9a-f]{16}"\} [0-9.eE+-]+ \d+\.\d{3}$`)

func TestExposeOpenMetricsExemplars(t *testing.T) {
	r := NewRegistry()
	r.Counter("ctt_reqs_total").Inc()
	h := r.Histogram("ctt_q", "", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "0123456789abcdef")
	h.Observe(0.2)

	om := string(r.ExposeOpenMetrics())
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Fatalf("OpenMetrics body missing # EOF terminator:\n%s", om)
	}
	var exemplars int
	for _, line := range strings.Split(om, "\n") {
		if strings.Contains(line, "trace_id") {
			exemplars++
			if !omExemplarLine.MatchString(line) {
				t.Fatalf("exemplar line %q does not match pinned syntax", line)
			}
		}
	}
	if exemplars != 1 {
		t.Fatalf("got %d exemplar lines, want 1:\n%s", exemplars, om)
	}

	// The classic exposition stays exemplar-free and EOF-free, so
	// existing Prometheus text parsers are untouched.
	classic := string(r.Expose())
	if strings.Contains(classic, "trace_id") || strings.Contains(classic, "# EOF") {
		t.Fatalf("classic exposition leaked OpenMetrics syntax:\n%s", classic)
	}
}

func TestRegistryEach(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ctt_reqs_total")
	c.Add(3)
	r.Counter(`ctt_rej_total{reason="queue_full"}`).Inc()
	r.Gauge("ctt_depth", func() float64 { return 7.5 })
	h := r.Histogram("ctt_lat_seconds", `endpoint="query"`, []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	// Legacy emit-style sources must NOT be visited (string values).
	r.AddSource(func(emit func(name string, v any)) { emit("legacy", "0.99") })

	vals := map[string]float64{}
	r.Each(func(name string, v float64) { vals[name] = v })

	want := map[string]float64{
		"ctt_reqs_total":                          3,
		`ctt_rej_total{reason="queue_full"}`:      1,
		"ctt_depth":                               7.5,
		`ctt_lat_seconds_count{endpoint="query"}`: 2,
		`ctt_lat_seconds_sum{endpoint="query"}`:   2.5,
	}
	for name, v := range want {
		if got, ok := vals[name]; !ok || got != v {
			t.Fatalf("Each[%q] = %v (present=%v), want %v", name, got, ok, v)
		}
	}
	if _, ok := vals["legacy"]; ok {
		t.Fatal("Each visited a legacy source")
	}
}

func TestExemplarTimestampRendering(t *testing.T) {
	ex := &Exemplar{Value: 0.231, TraceID: "00000000000000ff",
		Time: time.UnixMilli(1520879607789)}
	got := string(appendExemplar(nil, ex))
	want := ` # {trace_id="00000000000000ff"} 0.231 1520879607.789`
	if got != want {
		t.Fatalf("appendExemplar = %q, want %q", got, want)
	}
}
