// Package decision implements the decision-support layer the paper
// frames as its goal and demonstrates to city officials (§3): siting
// new air-quality sensors "according to the road network and building
// density", and evaluating interventions such as "closing down certain
// streets (and being able to observe spillover and evasion effects in
// surrounding parts of the city)" (§1) by running counterfactual
// scenarios against the simulated city.
package decision

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/citygml"
	"repro/internal/emissions"
	"repro/internal/geo"
	"repro/internal/traffic"
)

// --- sensor placement ---------------------------------------------------

// Site is a candidate or chosen sensor location with its score parts.
type Site struct {
	Pos geo.LatLon
	// TrafficScore is the normalized nearby vehicle flow.
	TrafficScore float64
	// DensityScore is the normalized building density.
	DensityScore float64
	// CoveragePenalty is how much existing/chosen sensors already
	// cover this site (0 = uncovered).
	CoveragePenalty float64
	// Score is the combined objective.
	Score float64
}

// PlacementConfig tunes the siting objective.
type PlacementConfig struct {
	// CandidateSpacingM controls the candidate grid resolution.
	CandidateSpacingM float64
	// CoverageRadiusM is a sensor's representativeness radius; new
	// sites are discouraged inside existing coverage.
	CoverageRadiusM float64
	// TrafficWeight and DensityWeight combine the two demo criteria
	// ("according to the road network and building density").
	TrafficWeight float64
	DensityWeight float64
	// EvaluateAt is the instant used to sample traffic (rush hour
	// recommended).
	EvaluateAt time.Time
}

func (c *PlacementConfig) defaults() {
	if c.CandidateSpacingM <= 0 {
		c.CandidateSpacingM = 300
	}
	if c.CoverageRadiusM <= 0 {
		c.CoverageRadiusM = 500
	}
	if c.TrafficWeight == 0 && c.DensityWeight == 0 {
		c.TrafficWeight, c.DensityWeight = 0.6, 0.4
	}
	if c.EvaluateAt.IsZero() {
		c.EvaluateAt = time.Date(2017, time.March, 7, 8, 0, 0, 0, time.UTC)
	}
}

// ErrNoCandidates is returned when the area yields no candidate sites.
var ErrNoCandidates = errors.New("decision: no candidate sites")

// PlanPlacement greedily selects n new sensor sites within radiusM of
// center, maximizing traffic + building-density exposure while staying
// outside the coverage of existing and already-chosen sensors.
func PlanPlacement(
	tr *traffic.Network,
	model *citygml.Model,
	existing []geo.LatLon,
	center geo.LatLon,
	radiusM float64,
	n int,
	cfg PlacementConfig,
) ([]Site, error) {
	cfg.defaults()
	if n <= 0 {
		return nil, nil
	}

	// Candidate grid.
	var candidates []Site
	enu := geo.NewENU(center)
	var maxTraffic, maxDensity float64
	for x := -radiusM; x <= radiusM; x += cfg.CandidateSpacingM {
		for y := -radiusM; y <= radiusM; y += cfg.CandidateSpacingM {
			if math.Hypot(x, y) > radiusM {
				continue
			}
			pos := enu.Inverse(x, y)
			t := 0.0
			if tr != nil {
				t = tr.FlowNear(pos, cfg.CoverageRadiusM, cfg.EvaluateAt)
			}
			d := 0.0
			if model != nil {
				d = model.Density(pos, cfg.CoverageRadiusM)
			}
			candidates = append(candidates, Site{Pos: pos, TrafficScore: t, DensityScore: d})
			maxTraffic = math.Max(maxTraffic, t)
			maxDensity = math.Max(maxDensity, d)
		}
	}
	if len(candidates) == 0 {
		return nil, ErrNoCandidates
	}
	// Normalize.
	for i := range candidates {
		if maxTraffic > 0 {
			candidates[i].TrafficScore /= maxTraffic
		}
		if maxDensity > 0 {
			candidates[i].DensityScore /= maxDensity
		}
	}

	covered := append([]geo.LatLon(nil), existing...)
	var chosen []Site
	for len(chosen) < n {
		bestIdx := -1
		bestScore := math.Inf(-1)
		for i := range candidates {
			c := &candidates[i]
			c.CoveragePenalty = coverage(c.Pos, covered, cfg.CoverageRadiusM)
			c.Score = (cfg.TrafficWeight*c.TrafficScore + cfg.DensityWeight*c.DensityScore) *
				(1 - c.CoveragePenalty)
			if c.Score > bestScore {
				bestScore = c.Score
				bestIdx = i
			}
		}
		if bestIdx < 0 || bestScore <= 0 {
			break // everything worthwhile is covered
		}
		site := candidates[bestIdx]
		chosen = append(chosen, site)
		covered = append(covered, site.Pos)
		// Remove the chosen candidate.
		candidates = append(candidates[:bestIdx], candidates[bestIdx+1:]...)
	}
	return chosen, nil
}

// coverage returns 1 if p is on top of an existing sensor, decaying to
// 0 at the coverage radius.
func coverage(p geo.LatLon, sensors []geo.LatLon, radius float64) float64 {
	best := 0.0
	for _, s := range sensors {
		d := geo.Distance(p, s)
		if d < radius {
			best = math.Max(best, 1-d/radius)
		}
	}
	return best
}

// --- intervention scenarios ----------------------------------------------

// Intervention is a planned change to evaluate: closing (or derating)
// road segments for a period.
type Intervention struct {
	Name string
	// ClosedSegments lists road segment IDs to close.
	ClosedSegments []string
	// CapacityFactor in (0,1]: 0.05 ≈ full closure (residual access).
	CapacityFactor float64
	Start, End     time.Time
}

// ReceptorDelta is the change an intervention causes at one receptor
// (sensor site).
type ReceptorDelta struct {
	ID       string
	Pos      geo.LatLon
	Baseline float64 // mean concentration without the intervention
	Scenario float64 // mean concentration with it
	DeltaPct float64
}

// ScenarioResult compares baseline and intervention.
type ScenarioResult struct {
	Intervention Intervention
	Species      emissions.Species
	Receptors    []ReceptorDelta
	// CityDelta is the mean relative change across receptors.
	CityDeltaPct float64
	// SpilloverReceptors lists receptors whose concentration ROSE
	// while at least one other receptor clearly fell — displaced
	// rather than removed emissions: the "spillover and evasion
	// effects" the paper's introduction highlights.
	SpilloverReceptors []string
}

// Receptor is a named evaluation point (typically a sensor site).
type Receptor struct {
	ID  string
	Pos geo.LatLon
}

// EvaluateIntervention runs the truth field with and without the
// intervention and compares mean concentrations at the receptors over
// the intervention window, sampling hourly.
//
// The two runs share the identical weather and demand realization
// (same seeds), so the difference isolates the intervention — the
// counterfactual a real deployment can never observe, and the reason
// the paper wants model-based decision support.
func EvaluateIntervention(
	baseline *emissions.Field,
	buildScenario func() *emissions.Field, // fresh field with the intervention applied
	sp emissions.Species,
	receptors []Receptor,
	iv Intervention,
) (ScenarioResult, error) {
	if len(receptors) == 0 {
		return ScenarioResult{}, errors.New("decision: no receptors")
	}
	if !iv.End.After(iv.Start) {
		return ScenarioResult{}, fmt.Errorf("decision: empty intervention window")
	}
	scenario := buildScenario()

	res := ScenarioResult{Intervention: iv, Species: sp}
	var deltaSum float64
	for _, r := range receptors {
		var bSum, sSum float64
		var n int
		for t := iv.Start; t.Before(iv.End); t = t.Add(time.Hour) {
			bSum += baseline.Concentration(sp, r.Pos, t)
			sSum += scenario.Concentration(sp, r.Pos, t)
			n++
		}
		b := bSum / float64(n)
		s := sSum / float64(n)
		d := ReceptorDelta{
			ID: r.ID, Pos: r.Pos,
			Baseline: b, Scenario: s,
			DeltaPct: 100 * (s - b) / b,
		}
		res.Receptors = append(res.Receptors, d)
		deltaSum += d.DeltaPct
	}
	res.CityDeltaPct = deltaSum / float64(len(res.Receptors))
	anyFell := false
	for _, d := range res.Receptors {
		if d.DeltaPct < -1 {
			anyFell = true
		}
	}
	if anyFell {
		for _, d := range res.Receptors {
			if d.DeltaPct > 0.5 {
				res.SpilloverReceptors = append(res.SpilloverReceptors, d.ID)
			}
		}
	}
	sort.Slice(res.Receptors, func(i, j int) bool {
		return res.Receptors[i].DeltaPct < res.Receptors[j].DeltaPct
	})
	return res, nil
}

// CloseStreets applies an intervention to a traffic network (helper
// for building the scenario field): each listed segment is closed with
// its demand rerouted to open streets nearby.
func CloseStreets(tr *traffic.Network, iv Intervention) {
	f := iv.CapacityFactor
	if f <= 0 {
		f = 0.05
	}
	for _, seg := range iv.ClosedSegments {
		tr.AddClosure(traffic.Closure{
			SegmentID: seg,
			Start:     iv.Start,
			End:       iv.End,
			Residual:  f,
		})
	}
}
