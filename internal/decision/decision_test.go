package decision

import (
	"testing"
	"time"

	"repro/internal/citygml"
	"repro/internal/emissions"
	"repro/internal/geo"
	"repro/internal/traffic"
	"repro/internal/weather"
)

var center = geo.LatLon{Lat: 63.4305, Lon: 10.3951}

func rushHour() time.Time {
	return time.Date(2017, time.March, 7, 8, 0, 0, 0, time.UTC)
}

func testCity(t *testing.T) (*traffic.Network, *citygml.Model) {
	t.Helper()
	tr := traffic.NewNetwork(traffic.GenerateGridNetwork(center, 3000, 1), 1)
	model := citygml.GenerateCity("trondheim", center, 2500, 1)
	return tr, model
}

func TestPlanPlacementBasics(t *testing.T) {
	tr, model := testCity(t)
	sites, err := PlanPlacement(tr, model, nil, center, 2500, 4, PlacementConfig{EvaluateAt: rushHour()})
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 4 {
		t.Fatalf("sites: %d", len(sites))
	}
	// Chosen sites must spread out: pairwise distance above the
	// coverage radius discount makes identical picks impossible.
	for i := 0; i < len(sites); i++ {
		for j := i + 1; j < len(sites); j++ {
			if geo.Distance(sites[i].Pos, sites[j].Pos) < 100 {
				t.Fatalf("sites %d and %d are on top of each other", i, j)
			}
		}
	}
	// Scores decrease monotonically with greedy selection.
	for i := 1; i < len(sites); i++ {
		if sites[i].Score > sites[i-1].Score+1e-9 {
			t.Fatalf("greedy order violated: %v then %v", sites[i-1].Score, sites[i].Score)
		}
	}
	// The first site should score high on at least one criterion.
	if sites[0].TrafficScore < 0.3 && sites[0].DensityScore < 0.3 {
		t.Fatalf("best site scores low on both criteria: %+v", sites[0])
	}
}

func TestPlanPlacementAvoidsExistingSensors(t *testing.T) {
	tr, model := testCity(t)
	// Without constraints, find the top site first.
	free, err := PlanPlacement(tr, model, nil, center, 2500, 1, PlacementConfig{EvaluateAt: rushHour()})
	if err != nil {
		t.Fatal(err)
	}
	// Now place an existing sensor exactly there.
	constrained, err := PlanPlacement(tr, model, []geo.LatLon{free[0].Pos}, center, 2500, 1,
		PlacementConfig{EvaluateAt: rushHour()})
	if err != nil {
		t.Fatal(err)
	}
	if geo.Distance(constrained[0].Pos, free[0].Pos) < 250 {
		t.Fatalf("new site should avoid the covered area: %v m away",
			geo.Distance(constrained[0].Pos, free[0].Pos))
	}
}

func TestPlanPlacementEdgeCases(t *testing.T) {
	tr, model := testCity(t)
	if sites, err := PlanPlacement(tr, model, nil, center, 2500, 0, PlacementConfig{}); err != nil || sites != nil {
		t.Fatalf("n=0: %v %v", sites, err)
	}
	if _, err := PlanPlacement(tr, model, nil, center, 10, 1, PlacementConfig{CandidateSpacingM: 50000}); err != ErrNoCandidates {
		t.Fatalf("no candidates: %v", err)
	}
}

func TestEvaluateInterventionStreetClosure(t *testing.T) {
	// Baseline city.
	w := weather.NewModel(center.Lat, center.Lon, 1)
	trBase := traffic.NewNetwork(traffic.GenerateGridNetwork(center, 3000, 1), 1)
	baseline := emissions.NewField(w, trBase)

	// Close the busiest arterial for a week.
	iv := Intervention{
		Name:           "close-arterial",
		ClosedSegments: []string{trBase.Segments[0].ID},
		Start:          time.Date(2017, time.March, 6, 0, 0, 0, 0, time.UTC),
		End:            time.Date(2017, time.March, 13, 0, 0, 0, 0, time.UTC),
	}
	buildScenario := func() *emissions.Field {
		tr2 := traffic.NewNetwork(traffic.GenerateGridNetwork(center, 3000, 1), 1)
		CloseStreets(tr2, iv)
		return emissions.NewField(weather.NewModel(center.Lat, center.Lon, 1), tr2)
	}

	closedMid := trBase.Segments[0].Midpoint()
	receptors := []Receptor{
		{ID: "at-closure", Pos: closedMid},
		{ID: "nearby-1", Pos: geo.Destination(closedMid, 90, 900)},
		{ID: "nearby-2", Pos: geo.Destination(closedMid, 270, 900)},
		{ID: "far", Pos: geo.Destination(center, 200, 2600)},
	}
	res, err := EvaluateIntervention(baseline, buildScenario, emissions.NO2, receptors, iv)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]ReceptorDelta{}
	for _, d := range res.Receptors {
		byID[d.ID] = d
	}
	// At the closed street: NO2 falls.
	if byID["at-closure"].DeltaPct >= 0 {
		t.Fatalf("closure should cut NO2 at the street: %+v", byID["at-closure"])
	}
	// Evasion: at least one nearby receptor rises (rerouted traffic) or
	// falls far less than the closure site.
	n1, n2 := byID["nearby-1"].DeltaPct, byID["nearby-2"].DeltaPct
	if n1 <= byID["at-closure"].DeltaPct && n2 <= byID["at-closure"].DeltaPct {
		t.Fatalf("spillover missing: closure %+.2f%% vs nearby %+.2f%%/%+.2f%%",
			byID["at-closure"].DeltaPct, n1, n2)
	}
	// Receptors sorted ascending by delta.
	for i := 1; i < len(res.Receptors); i++ {
		if res.Receptors[i].DeltaPct < res.Receptors[i-1].DeltaPct {
			t.Fatal("receptors not sorted")
		}
	}
}

func TestEvaluateInterventionErrors(t *testing.T) {
	w := weather.NewModel(center.Lat, center.Lon, 1)
	tr := traffic.NewNetwork(traffic.GenerateGridNetwork(center, 3000, 1), 1)
	f := emissions.NewField(w, tr)
	iv := Intervention{Start: rushHour(), End: rushHour()}
	if _, err := EvaluateIntervention(f, func() *emissions.Field { return f }, emissions.NO2, nil, iv); err == nil {
		t.Fatal("no receptors should error")
	}
	recs := []Receptor{{ID: "x", Pos: center}}
	if _, err := EvaluateIntervention(f, func() *emissions.Field { return f }, emissions.NO2, recs, iv); err == nil {
		t.Fatal("empty window should error")
	}
}
