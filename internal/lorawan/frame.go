// Package lorawan simulates the LoRaWAN radio backbone the CTT project
// deploys: uplink frame encoding/decoding, LoRa airtime computation,
// a log-distance path-loss channel with shadowing, gateway reception
// with per-spreading-factor sensitivity, EU868 duty-cycle accounting,
// collision/capture behaviour, and adaptive data rate selection.
//
// The goal is not a certified MAC implementation but a faithful
// reproduction of every network phenomenon the paper's monitoring and
// analysis layers must cope with: packet loss growing with distance and
// spreading factor, multi-gateway reception of the same frame (dedup in
// the backend), duty-cycle-limited send rates, and gateway outages.
package lorawan

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame layout (uplink, simplified LoRaWAN 1.0):
//
//	MHDR(1) | DevAddr(4) | FCtrl(1) | FCnt(2) | FPort(1) | FRMPayload(n) | MIC(4)
const (
	headerLen = 1 + 4 + 1 + 2 + 1
	micLen    = 4
	// MaxPayload is the largest FRMPayload we accept; the true limit
	// depends on data rate (51 bytes at SF12 in EU868, 222 at SF7).
	MaxPayload = 222
)

// MHDR values for the frame types this simulation uses.
const (
	mhdrUnconfirmedUp = 0x40
	mhdrConfirmedUp   = 0x80
)

// Errors returned by the codec.
var (
	ErrFrameTooShort  = errors.New("lorawan: frame too short")
	ErrBadMIC         = errors.New("lorawan: message integrity check failed")
	ErrPayloadTooLong = fmt.Errorf("lorawan: payload exceeds %d bytes", MaxPayload)
	ErrBadMHDR        = errors.New("lorawan: unsupported MHDR")
)

// DevAddr is a 32-bit device address.
type DevAddr uint32

// String renders the address in the conventional hex form.
func (a DevAddr) String() string { return fmt.Sprintf("%08X", uint32(a)) }

// Uplink is a decoded uplink frame.
type Uplink struct {
	DevAddr   DevAddr
	FCnt      uint16
	FPort     uint8
	Confirmed bool
	Payload   []byte
}

// Encode serializes the uplink into wire bytes with a MIC.
func (u *Uplink) Encode() ([]byte, error) {
	if len(u.Payload) > MaxPayload {
		return nil, ErrPayloadTooLong
	}
	buf := make([]byte, headerLen+len(u.Payload)+micLen)
	if u.Confirmed {
		buf[0] = mhdrConfirmedUp
	} else {
		buf[0] = mhdrUnconfirmedUp
	}
	binary.LittleEndian.PutUint32(buf[1:5], uint32(u.DevAddr))
	buf[5] = 0 // FCtrl: no ADR bits in this simulation's frames
	binary.LittleEndian.PutUint16(buf[6:8], u.FCnt)
	buf[8] = u.FPort
	copy(buf[headerLen:], u.Payload)
	mic := computeMIC(buf[:headerLen+len(u.Payload)])
	binary.LittleEndian.PutUint32(buf[headerLen+len(u.Payload):], mic)
	return buf, nil
}

// Decode parses wire bytes into an uplink, validating the MIC.
func Decode(frame []byte) (*Uplink, error) {
	if len(frame) < headerLen+micLen {
		return nil, ErrFrameTooShort
	}
	if frame[0] != mhdrUnconfirmedUp && frame[0] != mhdrConfirmedUp {
		return nil, ErrBadMHDR
	}
	body := frame[:len(frame)-micLen]
	wantMIC := binary.LittleEndian.Uint32(frame[len(frame)-micLen:])
	if computeMIC(body) != wantMIC {
		return nil, ErrBadMIC
	}
	u := &Uplink{
		DevAddr:   DevAddr(binary.LittleEndian.Uint32(frame[1:5])),
		FCnt:      binary.LittleEndian.Uint16(frame[6:8]),
		FPort:     frame[8],
		Confirmed: frame[0] == mhdrConfirmedUp,
	}
	u.Payload = append(u.Payload, frame[headerLen:len(frame)-micLen]...)
	return u, nil
}

// computeMIC is an FNV-1a-based integrity check standing in for the
// AES-CMAC MIC of real LoRaWAN; it detects the corruption the channel
// model can inject without pulling in key management.
func computeMIC(body []byte) uint32 {
	var h uint32 = 2166136261
	for _, b := range body {
		h = (h ^ uint32(b)) * 16777619
	}
	return h
}
