package lorawan

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geo"
)

var (
	gwPos   = geo.LatLon{Lat: 63.4305, Lon: 10.3951}
	t0      = time.Date(2017, time.March, 7, 12, 0, 0, 0, time.UTC)
	payload = []byte{0x01, 0x67, 0x01, 0x10, 0x02, 0x68, 0x5A}
)

func TestFrameRoundTrip(t *testing.T) {
	u := &Uplink{DevAddr: 0x26011F42, FCnt: 1234, FPort: 2, Payload: payload}
	wire, err := u.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.DevAddr != u.DevAddr || got.FCnt != u.FCnt || got.FPort != u.FPort ||
		got.Confirmed != u.Confirmed || !bytes.Equal(got.Payload, u.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, u)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(addr uint32, fcnt uint16, port uint8, pl []byte) bool {
		if len(pl) > MaxPayload {
			pl = pl[:MaxPayload]
		}
		u := &Uplink{DevAddr: DevAddr(addr), FCnt: fcnt, FPort: port, Payload: pl, Confirmed: addr%2 == 0}
		wire, err := u.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		return got.DevAddr == u.DevAddr && got.FCnt == u.FCnt && got.FPort == u.FPort &&
			got.Confirmed == u.Confirmed && bytes.Equal(got.Payload, u.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	u := &Uplink{DevAddr: 1, FCnt: 1, FPort: 1, Payload: payload}
	wire, _ := u.Encode()
	for i := range wire {
		bad := append([]byte(nil), wire...)
		bad[i] ^= 0xFF
		if _, err := Decode(bad); err == nil && i != 5 {
			// FCtrl (index 5) is covered by the MIC too, so any flip must fail.
			t.Fatalf("corruption at byte %d not detected", i)
		}
	}
	if _, err := Decode(wire[:5]); err != ErrFrameTooShort {
		t.Fatalf("short frame: got %v", err)
	}
	if _, err := Decode(append([]byte{0x00}, wire[1:]...)); err != ErrBadMHDR {
		t.Fatalf("bad mhdr: got %v", err)
	}
}

func TestEncodeRejectsOversizedPayload(t *testing.T) {
	u := &Uplink{Payload: make([]byte, MaxPayload+1)}
	if _, err := u.Encode(); err != ErrPayloadTooLong {
		t.Fatalf("got %v", err)
	}
}

func TestAirtimeKnownValues(t *testing.T) {
	// Reference values from the Semtech LoRa calculator (125 kHz, CR4/5,
	// explicit header, preamble 8), with tolerance for rounding.
	cases := []struct {
		bytes  int
		sf     SpreadingFactor
		wantMS float64
	}{
		{13, SF7, 46.3},
		{13, SF12, 1155},
		{51, SF12, 2466},
		{51, SF7, 107},
	}
	for _, c := range cases {
		got := Airtime(c.bytes, c.sf).Seconds() * 1000
		if math.Abs(got-c.wantMS)/c.wantMS > 0.07 {
			t.Errorf("Airtime(%d, %v) = %.1f ms, want ~%.1f", c.bytes, c.sf, got, c.wantMS)
		}
	}
}

func TestAirtimeMonotone(t *testing.T) {
	// Airtime grows with payload size and spreading factor.
	for sf := SF7; sf <= SF12; sf++ {
		prev := time.Duration(0)
		for n := 0; n <= 51; n += 10 {
			at := Airtime(n, sf)
			if at <= prev && n > 0 {
				t.Fatalf("airtime not increasing with size at %v %d bytes", sf, n)
			}
			prev = at
		}
	}
	for n := 10; n <= 51; n += 20 {
		for sf := SF7; sf < SF12; sf++ {
			if Airtime(n, sf) >= Airtime(n, sf+1) {
				t.Fatalf("airtime not increasing with SF at %d bytes %v", n, sf)
			}
		}
	}
	if Airtime(-1, SF7) != 0 || Airtime(10, SpreadingFactor(6)) != 0 {
		t.Fatal("invalid input should yield 0")
	}
}

func TestMinInterval(t *testing.T) {
	at := Airtime(13, SF12)
	if got := MinInterval(at); got != time.Duration(float64(at)/DutyCycle) {
		t.Fatalf("MinInterval = %v", got)
	}
	// SF12 13-byte frame: ~1.2 s airtime → ≥ ~2 min interval at 1%.
	if MinInterval(at) < 90*time.Second {
		t.Fatalf("duty cycle interval %v suspiciously short", MinInterval(at))
	}
}

func TestSensitivityOrdering(t *testing.T) {
	for sf := SF7; sf < SF12; sf++ {
		if sf.Sensitivity() <= (sf + 1).Sensitivity() {
			t.Fatalf("sensitivity should improve (decrease) with SF: %v", sf)
		}
	}
}

func TestChannelPathLossDecay(t *testing.T) {
	ch := NewChannel(1)
	// Average over several links to wash out shadowing.
	avg := func(d float64) float64 {
		sum := 0.0
		for i := 0; i < 64; i++ {
			sum += ch.RSSI(string(rune('a'+i)), "gw", d, t0)
		}
		return sum / 64
	}
	near, mid, far := avg(100), avg(1000), avg(5000)
	if !(near > mid && mid > far) {
		t.Fatalf("RSSI should decay: %v %v %v", near, mid, far)
	}
	// 1 km urban: roughly -14..-140 window sanity.
	if mid > 0 || mid < -140 {
		t.Fatalf("1 km RSSI %v implausible", mid)
	}
}

func TestChannelDeterministicShadowing(t *testing.T) {
	ch1, ch2 := NewChannel(9), NewChannel(9)
	r1 := ch1.RSSI("dev1", "gw1", 1500, t0)
	r2 := ch2.RSSI("dev1", "gw1", 1500, t0)
	if r1 != r2 {
		t.Fatal("same seed must reproduce RSSI")
	}
	if ch1.RSSI("dev1", "gw1", 1500, t0.Add(time.Hour)) == r1 {
		t.Fatal("fading should vary across transmissions")
	}
}

func TestPickSF(t *testing.T) {
	if sf := PickSF(-100, 10); sf != SF7 {
		t.Fatalf("strong link should pick SF7, got %v", sf)
	}
	if sf := PickSF(-130, 3); sf <= SF9 {
		t.Fatalf("weak link should pick slow SF, got %v", sf)
	}
	if sf := PickSF(-200, 10); sf != SF12 {
		t.Fatalf("hopeless link should fall back to SF12, got %v", sf)
	}
}

func makeTx(dev string, pos geo.LatLon, sf SpreadingFactor, ch int, at time.Time) Transmission {
	u := &Uplink{DevAddr: 0x1000, FCnt: 1, FPort: 1, Payload: payload}
	wire, _ := u.Encode()
	return Transmission{DeviceID: dev, Frame: wire, Pos: pos, SF: sf, Chan: ch, Start: at}
}

func TestResolveCloseNodeReceived(t *testing.T) {
	gw := NewGateway("gw1", gwPos)
	n := NewNetwork(1, gw)
	tx := makeTx("dev1", geo.Destination(gwPos, 90, 500), SF9, 0, t0)
	recs := n.Resolve([]Transmission{tx})
	if len(recs) != 1 {
		t.Fatalf("expected 1 reception, got %d", len(recs))
	}
	r := recs[0]
	if r.GatewayID != "gw1" || r.DeviceID != "dev1" || r.SF != SF9 {
		t.Fatalf("bad reception %+v", r)
	}
	if !r.Time.After(t0) {
		t.Fatal("reception time should be after start (airtime)")
	}
	if _, err := Decode(r.Frame); err != nil {
		t.Fatalf("received frame should decode: %v", err)
	}
}

func TestResolveFarNodeLost(t *testing.T) {
	gw := NewGateway("gw1", gwPos)
	n := NewNetwork(1, gw)
	// 200 km away: no spreading factor closes that link at 14 dBm.
	tx := makeTx("dev1", geo.Destination(gwPos, 90, 200000), SF12, 0, t0)
	if recs := n.Resolve([]Transmission{tx}); len(recs) != 0 {
		t.Fatalf("expected loss, got %d receptions", len(recs))
	}
}

func TestResolveOfflineGateway(t *testing.T) {
	gw := NewGateway("gw1", gwPos)
	n := NewNetwork(1, gw)
	tx := makeTx("dev1", geo.Destination(gwPos, 90, 300), SF9, 0, t0)
	gw.SetOnline(false)
	if recs := n.Resolve([]Transmission{tx}); len(recs) != 0 {
		t.Fatal("offline gateway must not receive")
	}
	gw.SetOnline(true)
	if recs := n.Resolve([]Transmission{tx}); len(recs) != 1 {
		t.Fatal("back online gateway must receive")
	}
}

func TestResolveMultiGateway(t *testing.T) {
	gw1 := NewGateway("gw1", gwPos)
	gw2 := NewGateway("gw2", geo.Destination(gwPos, 0, 800))
	n := NewNetwork(1, gw1, gw2)
	tx := makeTx("dev1", geo.Destination(gwPos, 0, 400), SF10, 0, t0)
	recs := n.Resolve([]Transmission{tx})
	if len(recs) != 2 {
		t.Fatalf("expected reception at both gateways, got %d", len(recs))
	}
	if recs[0].GatewayID == recs[1].GatewayID {
		t.Fatal("receptions should come from distinct gateways")
	}
}

func TestResolveCollisionSameSFChannel(t *testing.T) {
	gw := NewGateway("gw1", gwPos)
	n := NewNetwork(1, gw)
	// Two equidistant nodes, same channel/SF, same instant: similar
	// power → both should be lost (no capture).
	a := makeTx("devA", geo.Destination(gwPos, 90, 400), SF9, 0, t0)
	b := makeTx("devB", geo.Destination(gwPos, 270, 400), SF9, 0, t0)
	recs := n.Resolve([]Transmission{a, b})
	if len(recs) > 1 {
		t.Fatalf("collision should lose at least one frame, got %d", len(recs))
	}
	// Capture effect: a much closer node survives.
	near := makeTx("devNear", geo.Destination(gwPos, 90, 60), SF9, 0, t0)
	far := makeTx("devFar", geo.Destination(gwPos, 270, 3000), SF9, 0, t0)
	recs = n.Resolve([]Transmission{near, far})
	foundNear := false
	for _, r := range recs {
		if r.DeviceID == "devNear" {
			foundNear = true
		}
		if r.DeviceID == "devFar" {
			t.Fatal("weak frame should be lost in capture")
		}
	}
	if !foundNear {
		t.Fatal("strong frame should survive collision via capture")
	}
}

func TestResolveNoCollisionAcrossSFOrChannel(t *testing.T) {
	gw := NewGateway("gw1", gwPos)
	n := NewNetwork(1, gw)
	a := makeTx("devA", geo.Destination(gwPos, 90, 300), SF9, 0, t0)
	b := makeTx("devB", geo.Destination(gwPos, 270, 300), SF10, 0, t0) // different SF
	c := makeTx("devC", geo.Destination(gwPos, 0, 300), SF9, 1, t0)    // different channel
	recs := n.Resolve([]Transmission{a, b, c})
	if len(recs) != 3 {
		t.Fatalf("orthogonal transmissions should all be received, got %d", len(recs))
	}
}

func TestResolveNoCollisionDisjointTimes(t *testing.T) {
	gw := NewGateway("gw1", gwPos)
	n := NewNetwork(1, gw)
	a := makeTx("devA", geo.Destination(gwPos, 90, 300), SF7, 0, t0)
	b := makeTx("devB", geo.Destination(gwPos, 270, 300), SF7, 0, t0.Add(5*time.Second))
	recs := n.Resolve([]Transmission{a, b})
	if len(recs) != 2 {
		t.Fatalf("non-overlapping transmissions should both be received, got %d", len(recs))
	}
}

func TestDutyCycleTracker(t *testing.T) {
	d := NewDutyCycleTracker()
	if !d.CanSend("dev1", t0) {
		t.Fatal("fresh device should be allowed to send")
	}
	at := Airtime(13, SF12)
	d.Record("dev1", t0, at)
	if d.CanSend("dev1", t0.Add(time.Second)) {
		t.Fatal("device must be blocked right after sending")
	}
	if !d.CanSend("dev1", t0.Add(MinInterval(at))) {
		t.Fatal("device should be allowed after the duty-cycle interval")
	}
	if !d.CanSend("dev2", t0) {
		t.Fatal("other devices unaffected")
	}
	if got := d.NextAllowed("dev1"); got != t0.Add(MinInterval(at)) {
		t.Fatalf("NextAllowed = %v", got)
	}
}

func TestNetworkGatewayLookup(t *testing.T) {
	gw := NewGateway("gw1", gwPos)
	n := NewNetwork(1, gw)
	if n.Gateway("gw1") != gw {
		t.Fatal("lookup failed")
	}
	if n.Gateway("nope") != nil {
		t.Fatal("unknown gateway should be nil")
	}
}

func TestDevAddrString(t *testing.T) {
	if DevAddr(0x26011F42).String() != "26011F42" {
		t.Fatalf("got %s", DevAddr(0x26011F42).String())
	}
}

func TestPacketLossGrowsWithDistance(t *testing.T) {
	// Statistical property: delivery ratio at SF7 should fall with
	// distance. Uses many independent links.
	ch := NewChannel(3)
	ratio := func(d float64) float64 {
		ok := 0
		const n = 400
		for i := 0; i < n; i++ {
			rssi := ch.RSSI(string(rune(i)), "gw", d, t0.Add(time.Duration(i)*time.Minute))
			if Received(rssi, SF7) {
				ok++
			}
		}
		return float64(ok) / n
	}
	near, far := ratio(500), ratio(6000)
	if near < 0.95 {
		t.Fatalf("near delivery ratio %v too low", near)
	}
	if far >= near {
		t.Fatalf("far delivery ratio %v should be below near %v", far, near)
	}
}
