package lorawan

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/geo"
)

func BenchmarkFrameCodec(b *testing.B) {
	u := &Uplink{DevAddr: 0x26011F42, FCnt: 1234, FPort: 1, Payload: make([]byte, 24)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire, err := u.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAirtime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for sf := SF7; sf <= SF12; sf++ {
			Airtime(24, sf)
		}
	}
}

func BenchmarkChannelRSSI(b *testing.B) {
	ch := NewChannel(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.RSSI("dev", "gw", 1500, t0.Add(time.Duration(i)*time.Minute))
	}
}

// BenchmarkResolve measures a radio round at deployment scale (12
// nodes, 2 gateways) and at a 10x denser hypothetical.
func BenchmarkResolve(b *testing.B) {
	for _, nodes := range []int{12, 120} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			gw1 := NewGateway("gw1", gwPos)
			gw2 := NewGateway("gw2", geo.Destination(gwPos, 60, 1800))
			n := NewNetwork(1, gw1, gw2)
			txs := make([]Transmission, nodes)
			for i := range txs {
				txs[i] = makeTx(fmt.Sprintf("dev%03d", i),
					geo.Destination(gwPos, float64(i*7), float64(300+i*13)),
					SpreadingFactor(9+i%3), i%Channels,
					t0.Add(time.Duration(i*137)*time.Millisecond))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Resolve(txs)
			}
		})
	}
}
