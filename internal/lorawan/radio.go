package lorawan

import (
	"fmt"
	"math"
	"time"
)

// SpreadingFactor is the LoRa spreading factor, SF7 (fast, short range)
// through SF12 (slow, long range).
type SpreadingFactor int

// Valid EU868 spreading factors.
const (
	SF7  SpreadingFactor = 7
	SF8  SpreadingFactor = 8
	SF9  SpreadingFactor = 9
	SF10 SpreadingFactor = 10
	SF11 SpreadingFactor = 11
	SF12 SpreadingFactor = 12
)

// String renders "SF7" .. "SF12".
func (sf SpreadingFactor) String() string { return fmt.Sprintf("SF%d", int(sf)) }

// Valid reports whether sf is a legal LoRa spreading factor.
func (sf SpreadingFactor) Valid() bool { return sf >= SF7 && sf <= SF12 }

// Sensitivity returns the receiver sensitivity in dBm for the spreading
// factor at 125 kHz bandwidth (Semtech SX1276 datasheet values).
func (sf SpreadingFactor) Sensitivity() float64 {
	switch sf {
	case SF7:
		return -123
	case SF8:
		return -126
	case SF9:
		return -129
	case SF10:
		return -132
	case SF11:
		return -134.5
	case SF12:
		return -137
	default:
		return 0
	}
}

// EU868 regional constants.
const (
	// BandwidthHz is the LoRa channel bandwidth used by CTT nodes.
	BandwidthHz = 125000
	// CodingRate denominator: 4/5.
	codingRateDenom = 5
	// preambleSymbols per LoRaWAN spec.
	preambleSymbols = 8
	// TxPowerDBm is the node transmit power (EU868 max 14 dBm ERP).
	TxPowerDBm = 14
	// DutyCycle is the EU868 sub-band duty cycle limit.
	DutyCycle = 0.01
	// Channels in the default EU868 plan.
	Channels = 8
)

// Airtime returns the on-air time of a LoRa frame with the given
// physical payload length (bytes) at the spreading factor, using the
// Semtech airtime formula with 125 kHz bandwidth, CR 4/5, explicit
// header, and low-data-rate optimization at SF11/SF12.
func Airtime(payloadBytes int, sf SpreadingFactor) time.Duration {
	if !sf.Valid() || payloadBytes < 0 {
		return 0
	}
	symbolTime := math.Pow(2, float64(sf)) / float64(BandwidthHz) // seconds
	de := 0.0
	if sf >= SF11 {
		de = 1 // low data rate optimization mandated for SF11/12 at 125 kHz
	}
	const ih = 0.0 // explicit header
	num := 8*float64(payloadBytes) - 4*float64(sf) + 28 + 16 - 20*ih
	den := 4 * (float64(sf) - 2*de)
	nPayload := 8 + math.Max(0, math.Ceil(num/den)*float64(codingRateDenom))
	tPreamble := (preambleSymbols + 4.25) * symbolTime
	tPayload := nPayload * symbolTime
	return time.Duration((tPreamble + tPayload) * float64(time.Second))
}

// MinInterval returns the minimum allowed interval between transmissions
// of frames with the given airtime under the duty-cycle limit.
func MinInterval(airtime time.Duration) time.Duration {
	return time.Duration(float64(airtime) / DutyCycle)
}

// Channel models large-scale path loss with log-normal shadowing and a
// small fast-fading term. It is deterministic given (seed, link, time
// bucket) so that repeated experiments reproduce.
type Channel struct {
	// PathLossExponent: ~2 free space, 2.7–3.5 urban. Default 2.9.
	PathLossExponent float64
	// ReferenceLossDB at 1 m for EU868 (~ 40 dB free space at 868 MHz
	// plus antenna/system losses).
	ReferenceLossDB float64
	// ShadowingSigmaDB is the log-normal shadowing standard deviation.
	ShadowingSigmaDB float64
	seed             int64
}

// NewChannel returns an urban channel model with standard parameters.
func NewChannel(seed int64) *Channel {
	return &Channel{
		PathLossExponent: 2.9,
		ReferenceLossDB:  40,
		ShadowingSigmaDB: 6,
		seed:             seed,
	}
}

// RSSI returns the received signal strength in dBm for a transmission
// over distanceM meters between the named endpoints at time t. The
// shadowing term is fixed per link (it models static obstructions) and
// the fading term varies per transmission.
func (c *Channel) RSSI(txID, rxID string, distanceM float64, t time.Time) float64 {
	if distanceM < 1 {
		distanceM = 1
	}
	pl := c.ReferenceLossDB + 10*c.PathLossExponent*math.Log10(distanceM)
	shadow := c.ShadowingSigmaDB * gaussNoise(c.seed, txID+"|"+rxID, 0)
	fade := 2.0 * gaussNoise(c.seed, txID+"|"+rxID, t.UnixNano())
	return TxPowerDBm - pl + shadow + fade
}

// SNR estimates the signal-to-noise ratio in dB given an RSSI, with the
// thermal noise floor for 125 kHz bandwidth (~ -117 dBm + NF 6 dB).
func (c *Channel) SNR(rssi float64) float64 {
	const noiseFloor = -111.0
	return rssi - noiseFloor
}

// Received reports whether a frame at the given RSSI is decodable at
// the spreading factor.
func Received(rssi float64, sf SpreadingFactor) bool {
	return rssi >= sf.Sensitivity()
}

// PickSF returns the lowest (fastest) spreading factor whose link
// budget closes for the given expected RSSI with marginDB of headroom —
// the core of LoRaWAN adaptive data rate (ADR).
func PickSF(expectedRSSI, marginDB float64) SpreadingFactor {
	for sf := SF7; sf <= SF12; sf++ {
		if expectedRSSI >= sf.Sensitivity()+marginDB {
			return sf
		}
	}
	return SF12
}

// gaussNoise returns a deterministic standard-normal draw keyed by
// (seed, link, bucket) — a sum of four uniform draws (Irwin-Hall,
// variance-corrected), avoiding a PRNG allocation per radio event.
func gaussNoise(seed int64, key string, bucket int64) float64 {
	h := uint64(seed) * 0x9E3779B97F4A7C15
	for _, ch := range key {
		h = (h ^ uint64(ch)) * 0x100000001B3
	}
	h ^= uint64(bucket) * 0xC2B2AE3D27D4EB4F
	var sum float64
	for i := 0; i < 4; i++ {
		h ^= h >> 30
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
		h *= 0x94D049BB133111EB
		h ^= h >> 31
		sum += float64(h>>11) / float64(1<<53)
	}
	// Sum of 4 U(0,1): mean 2, variance 1/3 → scale by √3.
	return (sum - 2) * 1.7320508075688772
}
