package lorawan

import (
	"sort"
	"time"

	"repro/internal/geo"
)

// Gateway is a LoRaWAN gateway: a fixed receiver forwarding every
// decodable frame to the network server. Gateways can be taken offline
// to reproduce the outage scenarios the dataport must detect.
type Gateway struct {
	ID  string
	Pos geo.LatLon

	online bool
}

// NewGateway creates an online gateway.
func NewGateway(id string, pos geo.LatLon) *Gateway {
	return &Gateway{ID: id, Pos: pos, online: true}
}

// Online reports whether the gateway is receiving.
func (g *Gateway) Online() bool { return g.online }

// SetOnline switches the gateway on or off.
func (g *Gateway) SetOnline(v bool) { g.online = v }

// Transmission is one radio uplink attempt from a device.
type Transmission struct {
	DeviceID string // stable device identifier (for the channel model)
	Frame    []byte // encoded LoRaWAN frame
	Pos      geo.LatLon
	SF       SpreadingFactor
	Chan     int // channel index, 0..Channels-1
	Start    time.Time
}

// End returns when the transmission stops occupying the air.
func (t Transmission) End() time.Time { return t.Start.Add(Airtime(len(t.Frame), t.SF)) }

// Reception is a frame successfully received by one gateway. The same
// transmission commonly produces several receptions (one per in-range
// gateway); deduplication is the network server's job.
type Reception struct {
	GatewayID string
	DeviceID  string
	Frame     []byte
	RSSI      float64
	SNR       float64
	SF        SpreadingFactor
	Chan      int
	Time      time.Time // end of reception
}

// Network resolves transmissions into per-gateway receptions, applying
// path loss, shadowing, and collision/capture rules.
type Network struct {
	Channel  *Channel
	Gateways []*Gateway
}

// NewNetwork assembles a radio network over the given gateways.
func NewNetwork(seed int64, gws ...*Gateway) *Network {
	return &Network{Channel: NewChannel(seed), Gateways: gws}
}

// Gateway returns the gateway with the given ID, or nil.
func (n *Network) Gateway(id string) *Gateway {
	for _, g := range n.Gateways {
		if g.ID == id {
			return g
		}
	}
	return nil
}

// Resolve takes a batch of transmissions (typically everything sent in
// one simulation tick) and returns the resulting receptions across all
// online gateways, sorted by reception time then gateway ID.
//
// Collision rule: two transmissions on the same channel and spreading
// factor whose air times overlap interfere. At a given gateway the
// stronger frame survives if it is at least CaptureThresholdDB stronger
// (capture effect); otherwise both are lost. Different SFs are quasi-
// orthogonal and do not collide in this model.
func (n *Network) Resolve(txs []Transmission) []Reception {
	var out []Reception
	for i, tx := range txs {
		for _, gw := range n.Gateways {
			if !gw.online {
				continue
			}
			d := geo.Distance(tx.Pos, gw.Pos)
			rssi := n.Channel.RSSI(tx.DeviceID, gw.ID, d, tx.Start)
			if !Received(rssi, tx.SF) {
				continue
			}
			if n.collided(txs, i, gw, rssi) {
				continue
			}
			out = append(out, Reception{
				GatewayID: gw.ID,
				DeviceID:  tx.DeviceID,
				Frame:     tx.Frame,
				RSSI:      rssi,
				SNR:       n.Channel.SNR(rssi),
				SF:        tx.SF,
				Chan:      tx.Chan,
				Time:      tx.End(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Time.Equal(out[j].Time) {
			return out[i].Time.Before(out[j].Time)
		}
		if out[i].GatewayID != out[j].GatewayID {
			return out[i].GatewayID < out[j].GatewayID
		}
		return out[i].DeviceID < out[j].DeviceID
	})
	return out
}

// CaptureThresholdDB is the power advantage needed for a frame to
// survive a same-SF, same-channel collision.
const CaptureThresholdDB = 6

func (n *Network) collided(txs []Transmission, i int, gw *Gateway, rssi float64) bool {
	tx := txs[i]
	for j, other := range txs {
		if j == i || other.Chan != tx.Chan || other.SF != tx.SF {
			continue
		}
		if !overlaps(tx.Start, tx.End(), other.Start, other.End()) {
			continue
		}
		otherRSSI := n.Channel.RSSI(other.DeviceID, gw.ID, geo.Distance(other.Pos, gw.Pos), other.Start)
		if rssi < otherRSSI+CaptureThresholdDB {
			return true
		}
	}
	return false
}

func overlaps(aStart, aEnd, bStart, bEnd time.Time) bool {
	return aStart.Before(bEnd) && bStart.Before(aEnd)
}

// DutyCycleTracker enforces the EU868 duty-cycle limit per device.
type DutyCycleTracker struct {
	nextAllowed map[string]time.Time
}

// NewDutyCycleTracker returns an empty tracker.
func NewDutyCycleTracker() *DutyCycleTracker {
	return &DutyCycleTracker{nextAllowed: make(map[string]time.Time)}
}

// CanSend reports whether the device may transmit at t.
func (d *DutyCycleTracker) CanSend(deviceID string, t time.Time) bool {
	return !t.Before(d.nextAllowed[deviceID])
}

// Record notes a transmission and advances the device's next allowed
// send time per the duty-cycle rule.
func (d *DutyCycleTracker) Record(deviceID string, t time.Time, airtime time.Duration) {
	d.nextAllowed[deviceID] = t.Add(MinInterval(airtime))
}

// NextAllowed returns when the device may next transmit (zero time if
// it has never transmitted).
func (d *DutyCycleTracker) NextAllowed(deviceID string) time.Time {
	return d.nextAllowed[deviceID]
}
