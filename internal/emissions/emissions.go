// Package emissions models the "true" urban pollutant field that the
// low-cost sensor network observes. The paper's analyses — calibration
// against official stations, CO2-vs-traffic dynamics (Fig. 5), and the
// demo's synthetic pollution-injection scenarios — all need an
// underlying field with realistic structure:
//
//   - a traffic source term taken from the traffic simulator,
//   - a residential/commercial heating term that grows as temperature
//     falls (a major CO2/PM confounder in Nordic cities),
//   - optional industrial point sources with Gaussian-plume–style
//     downwind spread,
//   - a regional background with seasonal and synoptic variation,
//   - wind- and stability-dependent dilution (low wind + shallow
//     nocturnal mixing concentrates pollution; the classic reason
//     morning rush hour is dirtier than the evening one).
//
// Concentrations: CO2 in ppm; NO2, PM10, PM2.5 in µg/m³.
package emissions

import (
	"math"
	"time"

	"repro/internal/geo"
	"repro/internal/traffic"
	"repro/internal/weather"
)

// Species enumerates the pollutants the CTT sensor units measure.
type Species int

const (
	// CO2 in parts per million.
	CO2 Species = iota
	// NO2 in µg/m³.
	NO2
	// PM10 in µg/m³.
	PM10
	// PM25 is PM2.5 in µg/m³.
	PM25
)

// AllSpecies lists every modeled pollutant.
var AllSpecies = []Species{CO2, NO2, PM10, PM25}

// String returns the conventional label.
func (s Species) String() string {
	switch s {
	case CO2:
		return "co2"
	case NO2:
		return "no2"
	case PM10:
		return "pm10"
	case PM25:
		return "pm25"
	default:
		return "unknown"
	}
}

// Unit returns the measurement unit for the species.
func (s Species) Unit() string {
	if s == CO2 {
		return "ppm"
	}
	return "ug/m3"
}

// PointSource is an industrial emitter (factory, harbor, construction
// site) with a fixed location and per-species emission strengths.
// The demo scenario in the paper injects synthetic pollution this way.
type PointSource struct {
	ID       string
	Pos      geo.LatLon
	Strength map[Species]float64 // concentration contribution at 100 m downwind, neutral conditions
	Active   func(t time.Time) bool
}

// Field computes ground-truth concentrations anywhere in the pilot city.
type Field struct {
	Weather *weather.Model
	Traffic *traffic.Network
	Sources []PointSource

	// TrafficRadius is how far (meters) road segments contribute to a
	// receptor point. Default 800 m.
	TrafficRadius float64
	// Background levels per species.
	Background map[Species]float64
}

// NewField assembles the truth field from its drivers.
func NewField(w *weather.Model, tr *traffic.Network) *Field {
	return &Field{
		Weather:       w,
		Traffic:       tr,
		TrafficRadius: 800,
		Background: map[Species]float64{
			CO2:  405, // global background, ppm (2017)
			NO2:  8,
			PM10: 10,
			PM25: 6,
		},
	}
}

// AddSource registers an industrial/synthetic point source.
func (f *Field) AddSource(s PointSource) { f.Sources = append(f.Sources, s) }

// dilution returns a unitless dilution divisor at time t. Strong wind
// and a deep daytime mixing layer dilute; calm, stable nights (and
// especially cold winter inversions) concentrate.
func (f *Field) dilution(t time.Time) float64 {
	c := f.Weather.At(t)
	// Mixing-layer proxy: solar elevation drives convective mixing.
	sun := weather.SunAt(f.Weather.Lat, f.Weather.Lon, t)
	mix := 0.45 + 0.8*math.Max(0, math.Sin(sun.Elevation*math.Pi/180))
	wind := 0.5 + c.WindSpeedMS/3.5
	return mix * wind
}

// heatingDemand returns a unitless heating intensity based on how far
// the temperature is below the 15°C heating threshold.
func (f *Field) heatingDemand(t time.Time) float64 {
	c := f.Weather.At(t)
	return math.Max(0, 15-c.TemperatureC) / 15
}

// Concentration returns the true concentration of a species at point p
// and time t.
func (f *Field) Concentration(sp Species, p geo.LatLon, t time.Time) float64 {
	bg := f.backgroundAt(sp, t)
	dil := f.dilution(t)

	// Traffic term: local flow within TrafficRadius, per-species factor.
	var trafficTerm float64
	if f.Traffic != nil {
		flow := f.Traffic.FlowNear(p, f.TrafficRadius, t)
		trafficTerm = flow * trafficFactor(sp) / dil
	}

	// Heating term (area source, weakly spatial).
	heating := f.heatingDemand(t) * heatingFactor(sp) / dil

	// Point sources: Gaussian-plume–flavoured downwind kernel.
	var point float64
	if len(f.Sources) > 0 {
		c := f.Weather.At(t)
		for _, src := range f.Sources {
			if src.Active != nil && !src.Active(t) {
				continue
			}
			strength, ok := src.Strength[sp]
			if !ok || strength == 0 {
				continue
			}
			point += plumeKernel(src.Pos, p, c.WindDirDeg, c.WindSpeedMS) * strength
		}
	}

	return bg + trafficTerm + heating + point
}

// backgroundAt gives the regional background with a gentle seasonal
// cycle (CO2 peaks in late northern winter before spring drawdown).
func (f *Field) backgroundAt(sp Species, t time.Time) float64 {
	base := f.Background[sp]
	doy := float64(t.YearDay())
	switch sp {
	case CO2:
		return base + 4*math.Cos(2*math.Pi*(doy-105)/365.25)
	case PM10, PM25:
		// Spring road-dust season bump typical of studded-tyre cities.
		return base * (1 + 0.3*math.Exp(-0.5*math.Pow((doy-95)/25, 2)))
	default:
		return base
	}
}

// trafficFactor converts local vehicle flow (vph) into concentration.
func trafficFactor(sp Species) float64 {
	switch sp {
	case CO2:
		return 0.004 // ppm per vph
	case NO2:
		return 0.004
	case PM10:
		return 0.0018
	case PM25:
		return 0.0009
	default:
		return 0
	}
}

// heatingFactor converts heating demand into concentration.
func heatingFactor(sp Species) float64 {
	switch sp {
	case CO2:
		return 28 // ppm at full demand, neutral dilution
	case NO2:
		return 5
	case PM10:
		return 9 // wood stoves
	case PM25:
		return 8
	default:
		return 0
	}
}

// plumeKernel returns the unitless downwind dispersion weight of a
// source at a receptor: 1 at the 100 m reference distance directly
// downwind, decaying with distance and crosswind offset, scaled down by
// wind speed (more wind, more dilution along the plume).
func plumeKernel(src, receptor geo.LatLon, windFromDeg, windSpeed float64) float64 {
	d := geo.Distance(src, receptor)
	if d < 1 {
		d = 1
	}
	if d > 20000 {
		return 0
	}
	// Direction the plume travels = direction wind blows TO.
	plumeDir := math.Mod(windFromDeg+180, 360)
	brg := geo.Bearing(src, receptor)
	// Angular offset between plume axis and receptor bearing.
	off := math.Abs(math.Mod(brg-plumeDir+540, 360) - 180)
	// Along-wind decay ~1/d; crosswind Gaussian with ~20° sigma.
	along := 100 / d
	cross := math.Exp(-0.5 * math.Pow(off/20, 2))
	speed := 1 / (0.5 + windSpeed/2)
	return along * cross * speed
}
