package emissions

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/traffic"
	"repro/internal/weather"
)

var center = geo.LatLon{Lat: 63.4305, Lon: 10.3951}

func testField(t *testing.T) *Field {
	t.Helper()
	w := weather.NewModel(center.Lat, center.Lon, 1)
	tr := traffic.NewNetwork(traffic.GenerateGridNetwork(center, 3000, 1), 1)
	return NewField(w, tr)
}

func at(mo time.Month, d, h int) time.Time {
	return time.Date(2017, mo, d, h, 0, 0, 0, time.UTC)
}

func TestSpeciesStrings(t *testing.T) {
	cases := map[Species][2]string{
		CO2:  {"co2", "ppm"},
		NO2:  {"no2", "ug/m3"},
		PM10: {"pm10", "ug/m3"},
		PM25: {"pm25", "ug/m3"},
	}
	for sp, want := range cases {
		if sp.String() != want[0] || sp.Unit() != want[1] {
			t.Errorf("%v: got (%s,%s) want %v", sp, sp.String(), sp.Unit(), want)
		}
	}
	if Species(42).String() != "unknown" {
		t.Error("unknown species should say so")
	}
}

func TestConcentrationAboveBackground(t *testing.T) {
	f := testField(t)
	for _, sp := range AllSpecies {
		c := f.Concentration(sp, center, at(time.March, 7, 8))
		if c <= f.Background[sp]*0.8 {
			t.Errorf("%v concentration %v below background %v", sp, c, f.Background[sp])
		}
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Errorf("%v concentration not finite: %v", sp, c)
		}
	}
}

func TestWeekdayRushElevatesCO2OverWeekend(t *testing.T) {
	// Note: comparing 08:00 against 03:00 does NOT show higher CO2 at
	// rush hour here, because the shallow nocturnal mixing layer
	// concentrates pollution at night — exactly the confounding the
	// paper reports in Fig. 5 ("traffic is not the only factor").
	// To isolate the traffic term we compare the same hour of day
	// (same dilution in expectation) across weekdays vs weekends.
	f := testField(t)
	var weekday, weekend float64
	var nWD, nWE int
	// Average over all of March at the morning rush hours to drown the
	// synoptic weather noise that moves any single day by ±10 ppm.
	for d := 1; d <= 31; d++ {
		for _, h := range []int{7, 8, 9} {
			ts := at(time.March, d, h)
			c := f.Concentration(CO2, center, ts)
			if wd := ts.Weekday(); wd == time.Saturday || wd == time.Sunday {
				weekend += c
				nWE++
			} else {
				weekday += c
				nWD++
			}
		}
	}
	if weekday/float64(nWD) <= weekend/float64(nWE) {
		t.Fatalf("weekday morning CO2 %v not above weekend %v", weekday/float64(nWD), weekend/float64(nWE))
	}
}

func TestWinterAboveSummerCO2(t *testing.T) {
	// Heating demand should push winter CO2 above summer at same hour.
	f := testField(t)
	var winter, summer float64
	for d := 1; d <= 20; d++ {
		winter += f.Concentration(CO2, center, at(time.January, d, 12))
		summer += f.Concentration(CO2, center, at(time.July, d, 12))
	}
	if winter <= summer {
		t.Fatalf("winter CO2 %v not above summer %v", winter/20, summer/20)
	}
}

func TestCityCenterDirtierThanOutskirts(t *testing.T) {
	f := testField(t)
	far := geo.Destination(center, 45, 15000)
	var c0, c1 float64
	for d := 6; d <= 10; d++ {
		c0 += f.Concentration(NO2, center, at(time.March, d, 8))
		c1 += f.Concentration(NO2, far, at(time.March, d, 8))
	}
	if c0 <= c1 {
		t.Fatalf("center NO2 %v not above outskirts %v", c0/5, c1/5)
	}
}

func TestPointSourceDownwind(t *testing.T) {
	f := testField(t)
	src := PointSource{
		ID:       "factory",
		Pos:      geo.Destination(center, 270, 2000), // 2 km west
		Strength: map[Species]float64{PM10: 120},
	}
	f.AddSource(src)
	// Find an instant where wind blows roughly from the west (225-315).
	var when time.Time
	for h := 0; h < 24*30; h++ {
		ts := at(time.March, 1, 0).Add(time.Duration(h) * time.Hour)
		dir := f.Weather.At(ts).WindDirDeg
		if dir > 240 && dir < 300 {
			when = ts
			break
		}
	}
	if when.IsZero() {
		t.Skip("no westerly wind found in a month of simulation")
	}
	downwind := f.Concentration(PM10, geo.Destination(src.Pos, 90, 300), when) // east of source
	upwind := f.Concentration(PM10, geo.Destination(src.Pos, 270, 300), when)  // west of source
	if downwind <= upwind {
		t.Fatalf("downwind PM10 %v not above upwind %v", downwind, upwind)
	}
}

func TestPointSourceActiveWindow(t *testing.T) {
	f := testField(t)
	on := at(time.March, 7, 12)
	off := at(time.March, 8, 12)
	f.AddSource(PointSource{
		ID:       "burst",
		Pos:      center,
		Strength: map[Species]float64{NO2: 500},
		Active:   func(ts time.Time) bool { return ts.Day() == 7 },
	})
	// The plume only reaches receptors downwind; probe a ring around
	// the source and compare the maximum enhancement.
	maxAt := func(ts time.Time) float64 {
		var best float64
		for brg := 0.0; brg < 360; brg += 30 {
			p := geo.Destination(center, brg, 120)
			if c := f.Concentration(NO2, p, ts); c > best {
				best = c
			}
		}
		return best
	}
	cOn := maxAt(on)
	cOff := maxAt(off)
	if cOn <= cOff+5 {
		t.Fatalf("active source should raise downwind NO2: on=%v off=%v", cOn, cOff)
	}
}

func TestPlumeKernelGeometry(t *testing.T) {
	src := center
	// Wind from north (0) → plume travels south (180).
	south := geo.Destination(src, 180, 500)
	north := geo.Destination(src, 0, 500)
	kS := plumeKernel(src, south, 0, 3)
	kN := plumeKernel(src, north, 0, 3)
	if kS <= kN {
		t.Fatalf("downwind kernel %v not above upwind %v", kS, kN)
	}
	// Decays with distance.
	farther := geo.Destination(src, 180, 2000)
	if plumeKernel(src, farther, 0, 3) >= kS {
		t.Fatal("kernel should decay with distance")
	}
	// More wind → more dilution.
	if plumeKernel(src, south, 0, 10) >= kS {
		t.Fatal("kernel should shrink with wind speed")
	}
	// Beyond cutoff.
	if plumeKernel(src, geo.Destination(src, 180, 30000), 0, 3) != 0 {
		t.Fatal("kernel should be zero beyond cutoff")
	}
}

func TestNocturnalInversionConcentrates(t *testing.T) {
	// Same traffic flow should yield higher concentration under the
	// shallow nocturnal mixing layer than under daytime convection.
	f := testField(t)
	day := f.dilution(at(time.June, 15, 12))
	night := f.dilution(at(time.June, 15, 0))
	if night >= day {
		t.Fatalf("night dilution %v should be below day %v", night, day)
	}
}

func TestDeterministicField(t *testing.T) {
	f1 := testField(t)
	f2 := testField(t)
	ts := at(time.April, 2, 9)
	if f1.Concentration(CO2, center, ts) != f2.Concentration(CO2, center, ts) {
		t.Fatal("field should be deterministic")
	}
}

func TestFieldWithoutTraffic(t *testing.T) {
	w := weather.NewModel(center.Lat, center.Lon, 2)
	f := NewField(w, nil)
	c := f.Concentration(CO2, center, at(time.March, 7, 8))
	if c < 380 || c > 480 {
		t.Fatalf("no-traffic CO2 %v outside plausible range", c)
	}
}
