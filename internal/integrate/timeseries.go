// Package integrate implements the external data integration of the
// paper's Table 1: official air-quality measurements (NILU), remote
// sensing (NASA OCO-2 CO2 soundings), commercial traffic density
// (here.com), municipal traffic counts, national GHG statistics, and
// the time-alignment machinery needed to bring these "highly
// heterogeneous data, with different timescales, measurement
// frequencies, spatial distributions and granularities" (§2.2) onto a
// common timeline with the sensor network.
package integrate

import (
	"errors"
	"math"
	"sort"
	"time"
)

// Sample is one timestamped observation.
type Sample struct {
	Time  time.Time
	Value float64
}

// TimeSeries is an ordered sequence of samples from one source.
type TimeSeries struct {
	Name    string
	Unit    string
	Samples []Sample
}

// Sort orders samples chronologically (stable for equal times).
func (ts *TimeSeries) Sort() {
	sort.SliceStable(ts.Samples, func(i, j int) bool {
		return ts.Samples[i].Time.Before(ts.Samples[j].Time)
	})
}

// Span returns the first and last sample times.
func (ts TimeSeries) Span() (start, end time.Time, ok bool) {
	if len(ts.Samples) == 0 {
		return time.Time{}, time.Time{}, false
	}
	return ts.Samples[0].Time, ts.Samples[len(ts.Samples)-1].Time, true
}

// Values extracts the value column.
func (ts TimeSeries) Values() []float64 {
	out := make([]float64, len(ts.Samples))
	for i, s := range ts.Samples {
		out[i] = s.Value
	}
	return out
}

// ResampleMethod selects how values map onto a new time grid.
type ResampleMethod int

// Resampling methods.
const (
	// Linear interpolates between neighbouring samples.
	Linear ResampleMethod = iota
	// Previous holds the last observed value (step function) — right
	// for slowly updated sources like national statistics.
	Previous
	// MeanInBucket averages samples falling inside each grid interval —
	// right for downscaling high-frequency sources.
	MeanInBucket
)

// Alignment errors.
var (
	ErrEmptySeries = errors.New("integrate: empty series")
	ErrBadInterval = errors.New("integrate: non-positive interval")
)

// Resample maps a series onto a regular grid [start, end] with the
// given interval. Grid points outside the series span yield NaN
// (missing), which downstream gap-handling deals with explicitly.
func Resample(ts TimeSeries, start, end time.Time, interval time.Duration, method ResampleMethod) (TimeSeries, error) {
	if len(ts.Samples) == 0 {
		return TimeSeries{}, ErrEmptySeries
	}
	if interval <= 0 {
		return TimeSeries{}, ErrBadInterval
	}
	ts.Sort()
	out := TimeSeries{Name: ts.Name, Unit: ts.Unit}
	for t := start; !t.After(end); t = t.Add(interval) {
		var v float64
		switch method {
		case Previous:
			v = previousAt(ts.Samples, t)
		case MeanInBucket:
			v = meanIn(ts.Samples, t, t.Add(interval))
		default:
			v = linearAt(ts.Samples, t)
		}
		out.Samples = append(out.Samples, Sample{Time: t, Value: v})
	}
	return out, nil
}

func linearAt(s []Sample, t time.Time) float64 {
	i := sort.Search(len(s), func(i int) bool { return !s[i].Time.Before(t) })
	if i < len(s) && s[i].Time.Equal(t) {
		return s[i].Value
	}
	if i == 0 || i == len(s) {
		return math.NaN()
	}
	a, b := s[i-1], s[i]
	span := b.Time.Sub(a.Time).Seconds()
	if span <= 0 {
		return a.Value
	}
	frac := t.Sub(a.Time).Seconds() / span
	return a.Value + frac*(b.Value-a.Value)
}

func previousAt(s []Sample, t time.Time) float64 {
	i := sort.Search(len(s), func(i int) bool { return s[i].Time.After(t) })
	if i == 0 {
		return math.NaN()
	}
	return s[i-1].Value
}

func meanIn(s []Sample, from, to time.Time) float64 {
	var sum float64
	var n int
	for _, smp := range s {
		if !smp.Time.Before(from) && smp.Time.Before(to) {
			sum += smp.Value
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Align resamples several heterogeneous series onto one shared grid,
// returning them in input order. The grid spans the intersection of
// all series' spans, so every aligned series has data coverage.
func Align(series []TimeSeries, interval time.Duration, method ResampleMethod) ([]TimeSeries, error) {
	if len(series) == 0 {
		return nil, ErrEmptySeries
	}
	var start, end time.Time
	for i := range series {
		s, e, ok := series[i].Span()
		if !ok {
			return nil, ErrEmptySeries
		}
		if i == 0 || s.After(start) {
			start = s
		}
		if i == 0 || e.Before(end) {
			end = e
		}
	}
	if end.Before(start) {
		return nil, errors.New("integrate: series spans do not overlap")
	}
	// Snap the grid origin to a whole interval for stable bucketing.
	start = start.Truncate(interval)
	if start.Before(seriesMaxStart(series)) {
		start = start.Add(interval)
	}
	out := make([]TimeSeries, len(series))
	for i := range series {
		r, err := Resample(series[i], start, end, interval, method)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func seriesMaxStart(series []TimeSeries) time.Time {
	var m time.Time
	for i := range series {
		if s, _, ok := series[i].Span(); ok && (m.IsZero() || s.After(m)) {
			m = s
		}
	}
	return m
}

// DropNaN returns a copy with NaN samples removed from every series at
// the same indices (a sample is dropped when ANY series has NaN there).
// All series must share a grid (same length).
func DropNaN(series []TimeSeries) []TimeSeries {
	if len(series) == 0 {
		return nil
	}
	n := len(series[0].Samples)
	keep := make([]bool, n)
	for i := 0; i < n; i++ {
		keep[i] = true
		for _, s := range series {
			if i >= len(s.Samples) || math.IsNaN(s.Samples[i].Value) {
				keep[i] = false
				break
			}
		}
	}
	out := make([]TimeSeries, len(series))
	for si, s := range series {
		out[si] = TimeSeries{Name: s.Name, Unit: s.Unit}
		for i := 0; i < n && i < len(s.Samples); i++ {
			if keep[i] {
				out[si].Samples = append(out[si].Samples, s.Samples[i])
			}
		}
	}
	return out
}
