package integrate

import (
	"math"
	"time"

	"repro/internal/emissions"
	"repro/internal/geo"
)

// Satellite simulates the NASA OCO-2 integration (Table 1 row 2):
// "ground truth top-down measurements for certain emission types,
// large-scale coverage, low spatial resolution". OCO-2 is a polar
// sun-synchronous orbiter whose narrow swath revisits a given city
// only every ~16 days, returning column-averaged CO2 (XCO2) soundings
// with a footprint of a few km — coarse, sparse, but unbiased.
type Satellite struct {
	// RevisitDays between overpasses of the target area.
	RevisitDays int
	// FootprintM is the sounding footprint diameter.
	FootprintM float64
	// SwathSoundings per overpass over the city.
	SwathSoundings int
	// OverpassHourUTC: OCO-2 crosses mid-day local; fixed here.
	OverpassHourUTC int

	field *emissions.Field
}

// NewSatellite builds an OCO-2-like sampler of the truth field.
func NewSatellite(field *emissions.Field) *Satellite {
	return &Satellite{
		RevisitDays:     16,
		FootprintM:      2250,
		SwathSoundings:  8,
		OverpassHourUTC: 12,
		field:           field,
	}
}

// Sounding is one column-CO2 retrieval.
type Sounding struct {
	Time time.Time
	Pos  geo.LatLon
	// XCO2 is the column-averaged dry-air CO2 mole fraction in ppm.
	XCO2 float64
	// Uncertainty (1σ) of the retrieval.
	Uncertainty float64
}

// Overpasses lists the overpass times within [start, end).
func (s *Satellite) Overpasses(start, end time.Time) []time.Time {
	var out []time.Time
	// Anchor the cycle to a fixed epoch so results are stable.
	epoch := time.Date(2017, time.January, 3, 0, 0, 0, 0, time.UTC)
	period := time.Duration(s.RevisitDays) * 24 * time.Hour
	// First overpass at or after start.
	n := int(math.Ceil(start.Sub(epoch).Hours() / 24 / float64(s.RevisitDays)))
	if n < 0 {
		n = 0
	}
	for {
		day := epoch.Add(time.Duration(n) * period)
		t := time.Date(day.Year(), day.Month(), day.Day(), s.OverpassHourUTC, 26, 0, 0, time.UTC)
		if !t.Before(end) {
			return out
		}
		if !t.Before(start) {
			out = append(out, t)
		}
		n++
	}
}

// Retrieve returns the soundings of one overpass near the city center:
// a north-south line of footprints crossing the area. The XCO2 value
// is the truth field smoothed over the footprint plus the column
// background (the local surface enhancement is diluted ~20x through
// the column — why satellite data grounds large-scale modeling but
// cannot replace in-situ sensors).
func (s *Satellite) Retrieve(center geo.LatLon, at time.Time) []Sounding {
	var out []Sounding
	for i := 0; i < s.SwathSoundings; i++ {
		off := float64(i-s.SwathSoundings/2) * s.FootprintM
		pos := geo.Destination(center, 0, off)
		// Footprint average: sample the field at the footprint center
		// and at 4 surrounding points.
		var sum float64
		pts := []geo.LatLon{
			pos,
			geo.Destination(pos, 0, s.FootprintM/3),
			geo.Destination(pos, 90, s.FootprintM/3),
			geo.Destination(pos, 180, s.FootprintM/3),
			geo.Destination(pos, 270, s.FootprintM/3),
		}
		for _, p := range pts {
			sum += s.field.Concentration(emissions.CO2, p, at)
		}
		surface := sum / float64(len(pts))
		background := 405.0
		xco2 := background + (surface-background)/20 +
			0.4*deterministicNoise("oco2", at.Unix()+int64(i))
		out = append(out, Sounding{
			Time:        at,
			Pos:         pos,
			XCO2:        xco2,
			Uncertainty: 0.5,
		})
	}
	return out
}

// CampaignSeries runs Retrieve over every overpass in a window and
// returns the swath-mean XCO2 as a (sparse) time series, ready for
// alignment against ground data.
func (s *Satellite) CampaignSeries(center geo.LatLon, start, end time.Time) TimeSeries {
	ts := TimeSeries{Name: "oco2.xco2", Unit: "ppm"}
	for _, t := range s.Overpasses(start, end) {
		soundings := s.Retrieve(center, t)
		var sum float64
		for _, snd := range soundings {
			sum += snd.XCO2
		}
		ts.Samples = append(ts.Samples, Sample{Time: t, Value: sum / float64(len(soundings))})
	}
	return ts
}
