package integrate

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/emissions"
	"repro/internal/geo"
)

// ReferenceStation simulates an official air-quality measurement
// station (the paper's NILU integration, Table 1 row 1): a
// high-accuracy instrument at a fixed site, publishing hourly values.
// It samples the same truth field the low-cost sensors observe, with
// two orders of magnitude less error — which is what makes it usable
// as "ground truth for certain pollution types, grounding and
// calibrating measurements".
type ReferenceStation struct {
	ID    string
	Pos   geo.LatLon
	field *emissions.Field
	// NoiseSigma is the instrument error (µg/m³ or ppm); reference
	// instruments are ~0.1% of the low-cost units'.
	NoiseSigma float64
}

// NewReferenceStation places a reference station on the truth field.
func NewReferenceStation(id string, pos geo.LatLon, field *emissions.Field) *ReferenceStation {
	return &ReferenceStation{ID: id, Pos: pos, field: field, NoiseSigma: 0.5}
}

// Observe returns the station's hourly series for a species covering
// [start, end).
func (r *ReferenceStation) Observe(sp emissions.Species, start, end time.Time) TimeSeries {
	ts := TimeSeries{Name: r.ID + "." + sp.String(), Unit: sp.Unit()}
	for t := start.Truncate(time.Hour); t.Before(end); t = t.Add(time.Hour) {
		truth := r.field.Concentration(sp, r.Pos, t)
		// Deterministic small instrument noise derived from the hour.
		noise := r.NoiseSigma * deterministicNoise(r.ID, t.Unix())
		ts.Samples = append(ts.Samples, Sample{Time: t, Value: truth + noise})
	}
	return ts
}

func deterministicNoise(key string, bucket int64) float64 {
	h := uint64(1469598103934665603)
	for _, c := range key {
		h = (h ^ uint64(c)) * 1099511628211
	}
	h ^= uint64(bucket) * 0x9E3779B97F4A7C15
	// Map to roughly standard normal via sum of uniforms.
	var sum float64
	for i := 0; i < 4; i++ {
		h = h*6364136223846793005 + 1442695040888963407
		sum += float64(h>>11) / float64(1<<53)
	}
	return (sum - 2) * 1.7 // variance ≈ 1
}

// --- REST API (the integration surface) ------------------------------

// stationReading is the JSON document the station API serves.
type stationReading struct {
	Station string    `json:"station"`
	Species string    `json:"species"`
	Unit    string    `json:"unit"`
	Time    time.Time `json:"time"`
	Value   float64   `json:"value"`
}

// StationServer exposes reference stations over HTTP, standing in for
// the national institute's open-data API.
type StationServer struct {
	mu       sync.Mutex
	stations map[string]*ReferenceStation
	srv      *http.Server
	ln       net.Listener
}

// NewStationServer creates a server over the given stations.
func NewStationServer(stations ...*ReferenceStation) *StationServer {
	m := make(map[string]*ReferenceStation, len(stations))
	for _, s := range stations {
		m[s.ID] = s
	}
	return &StationServer{stations: m}
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves until Close.
func (s *StationServer) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("integrate: station server: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/observations", s.handleObservations)
	s.srv = &http.Server{Handler: mux}
	s.ln = ln
	go s.srv.Serve(ln)
	return ln.Addr(), nil
}

// Close shuts the server down.
func (s *StationServer) Close() error {
	if s.srv != nil {
		return s.srv.Close()
	}
	return nil
}

// handleObservations serves
// /v1/observations?station=ID&species=co2&from=RFC3339&to=RFC3339
func (s *StationServer) handleObservations(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	s.mu.Lock()
	st := s.stations[q.Get("station")]
	s.mu.Unlock()
	if st == nil {
		http.Error(w, "unknown station", http.StatusNotFound)
		return
	}
	sp, ok := speciesByName(q.Get("species"))
	if !ok {
		http.Error(w, "unknown species", http.StatusBadRequest)
		return
	}
	from, err1 := time.Parse(time.RFC3339, q.Get("from"))
	to, err2 := time.Parse(time.RFC3339, q.Get("to"))
	if err1 != nil || err2 != nil || !to.After(from) {
		http.Error(w, "bad time range", http.StatusBadRequest)
		return
	}
	series := st.Observe(sp, from, to)
	out := make([]stationReading, 0, len(series.Samples))
	for _, smp := range series.Samples {
		out = append(out, stationReading{
			Station: st.ID, Species: sp.String(), Unit: sp.Unit(),
			Time: smp.Time, Value: smp.Value,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func speciesByName(name string) (emissions.Species, bool) {
	for _, sp := range emissions.AllSpecies {
		if sp.String() == name {
			return sp, true
		}
	}
	return 0, false
}

// StationClient fetches observations from a StationServer — the
// integration client the analytics pipeline uses.
type StationClient struct {
	BaseURL string
	HTTP    *http.Client
}

// NewStationClient targets a server base URL like "http://host:port".
func NewStationClient(baseURL string) *StationClient {
	return &StationClient{BaseURL: baseURL, HTTP: &http.Client{Timeout: 10 * time.Second}}
}

// Fetch retrieves a station's series for a species over [from, to).
func (c *StationClient) Fetch(station string, sp emissions.Species, from, to time.Time) (TimeSeries, error) {
	url := fmt.Sprintf("%s/v1/observations?station=%s&species=%s&from=%s&to=%s",
		c.BaseURL, station, sp.String(),
		from.UTC().Format(time.RFC3339), to.UTC().Format(time.RFC3339))
	resp, err := c.HTTP.Get(url)
	if err != nil {
		return TimeSeries{}, fmt.Errorf("integrate: fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return TimeSeries{}, fmt.Errorf("integrate: station API status %d", resp.StatusCode)
	}
	var readings []stationReading
	if err := json.NewDecoder(resp.Body).Decode(&readings); err != nil {
		return TimeSeries{}, fmt.Errorf("integrate: decode: %w", err)
	}
	ts := TimeSeries{Name: station + "." + sp.String(), Unit: sp.Unit()}
	for _, r := range readings {
		ts.Samples = append(ts.Samples, Sample{Time: r.Time, Value: r.Value})
	}
	return ts, nil
}
