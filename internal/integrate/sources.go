package integrate

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geo"
	"repro/internal/traffic"
)

// TrafficFeed wraps the traffic simulator as the here.com continuous
// jam-factor feed (Table 1 row 3): "estimate traffic emissions by
// correlating continuous external traffic density to emission
// measurements".
type TrafficFeed struct {
	Network *traffic.Network
	// Interval between feed updates (here.com updates every minute;
	// the paper's analyses use coarser grids).
	Interval time.Duration
}

// NewTrafficFeed wraps a network with a 5-minute feed cadence.
func NewTrafficFeed(n *traffic.Network) *TrafficFeed {
	return &TrafficFeed{Network: n, Interval: 5 * time.Minute}
}

// JamFactorSeries returns the city-wide jam factor over [start, end).
func (f *TrafficFeed) JamFactorSeries(start, end time.Time) TimeSeries {
	ts := TimeSeries{Name: "here.jamfactor", Unit: "jf"}
	for t := start; t.Before(end); t = t.Add(f.Interval) {
		ts.Samples = append(ts.Samples, Sample{Time: t, Value: f.Network.CityJamFactor(t)})
	}
	return ts
}

// SegmentJamSeries returns one segment's jam factor over [start, end).
func (f *TrafficFeed) SegmentJamSeries(segmentID string, start, end time.Time) (TimeSeries, error) {
	ts := TimeSeries{Name: "here.jamfactor." + segmentID, Unit: "jf"}
	for t := start; t.Before(end); t = t.Add(f.Interval) {
		obs, err := f.Network.At(segmentID, t)
		if err != nil {
			return TimeSeries{}, err
		}
		ts.Samples = append(ts.Samples, Sample{Time: t, Value: obs.JamFactor})
	}
	return ts, nil
}

// NearbyJamSeries averages the jam factor of segments within radius
// meters of a sensor position — the per-location indicator shown on
// the Fig. 6 dashboard.
func (f *TrafficFeed) NearbyJamSeries(pos geo.LatLon, radius float64, start, end time.Time) TimeSeries {
	var ids []string
	for i := range f.Network.Segments {
		s := &f.Network.Segments[i]
		if geo.Distance(s.Midpoint(), pos) <= radius {
			ids = append(ids, s.ID)
		}
	}
	ts := TimeSeries{Name: "here.jamfactor.nearby", Unit: "jf"}
	for t := start; t.Before(end); t = t.Add(f.Interval) {
		var sum float64
		var n int
		for _, id := range ids {
			if obs, err := f.Network.At(id, t); err == nil {
				sum += obs.JamFactor
				n++
			}
		}
		v := 0.0
		if n > 0 {
			v = sum / float64(n)
		}
		ts.Samples = append(ts.Samples, Sample{Time: t, Value: v})
	}
	return ts
}

// MunicipalCounts wraps short-period municipal count campaigns
// (Table 1 row 4: "validate traffic estimations, but only available
// for short periods").
type MunicipalCounts struct {
	Network *traffic.Network
}

// Campaign returns hourly counts for a segment as a time series.
func (m *MunicipalCounts) Campaign(segmentID string, start time.Time, days int) (TimeSeries, error) {
	counts, err := m.Network.CountCampaign(segmentID, start, days)
	if err != nil {
		return TimeSeries{}, err
	}
	ts := TimeSeries{Name: "municipal.counts." + segmentID, Unit: "veh/h"}
	for _, c := range counts {
		ts.Samples = append(ts.Samples, Sample{Time: c.Hour, Value: float64(c.Vehicles)})
	}
	return ts, nil
}

// --- national statistics ---------------------------------------------

// SectorEmission is one sector's annual GHG emission estimate.
type SectorEmission struct {
	Sector string
	// KtCO2e is kilotonnes of CO2-equivalent per year.
	KtCO2e float64
	// UncertaintyPct is the 1σ relative uncertainty — the paper notes
	// downscaled national data comes "often with high uncertainties".
	UncertaintyPct float64
}

// NationalInventory is the national statistics office's annual GHG
// inventory (Table 1 row 6).
type NationalInventory struct {
	Year       int
	Country    string
	Population int
	Sectors    []SectorEmission
}

// NorwayInventory2016 returns a stylized national inventory with the
// sector structure of the Norwegian 2016 GHG account (~53 Mt CO2e).
func NorwayInventory2016() NationalInventory {
	return NationalInventory{
		Year: 2016, Country: "NO", Population: 5236000,
		Sectors: []SectorEmission{
			{Sector: "oil-gas", KtCO2e: 14800, UncertaintyPct: 5},
			{Sector: "industry", KtCO2e: 11900, UncertaintyPct: 8},
			{Sector: "road-transport", KtCO2e: 9400, UncertaintyPct: 10},
			{Sector: "other-transport", KtCO2e: 6900, UncertaintyPct: 15},
			{Sector: "agriculture", KtCO2e: 4500, UncertaintyPct: 25},
			{Sector: "heating", KtCO2e: 1100, UncertaintyPct: 30},
			{Sector: "waste", KtCO2e: 1400, UncertaintyPct: 35},
			{Sector: "other", KtCO2e: 3000, UncertaintyPct: 40},
		},
	}
}

// CityEstimate is a downscaled city-level emission estimate.
type CityEstimate struct {
	City       string
	Population int
	Sector     string
	// KtCO2e per year attributed to the city.
	KtCO2e float64
	// Low/High bound the 1σ interval.
	Low, High float64
}

// Downscale attributes national sector emissions to a city by
// population share — the standard (and coarse) per-capita method.
// Uncertainty combines the national figure's uncertainty with a
// downscaling penalty, reflecting the paper's caveat.
func (inv NationalInventory) Downscale(city string, population int) ([]CityEstimate, error) {
	if population <= 0 || inv.Population <= 0 {
		return nil, fmt.Errorf("integrate: bad population %d/%d", population, inv.Population)
	}
	share := float64(population) / float64(inv.Population)
	const downscalePenaltyPct = 20 // extra relative uncertainty from per-capita attribution
	out := make([]CityEstimate, 0, len(inv.Sectors))
	for _, s := range inv.Sectors {
		v := s.KtCO2e * share
		relU := s.UncertaintyPct + downscalePenaltyPct
		u := v * relU / 100
		out = append(out, CityEstimate{
			City: city, Population: population, Sector: s.Sector,
			KtCO2e: v, Low: v - u, High: v + u,
		})
	}
	return out, nil
}

// Total sums city estimates across sectors (with uncertainty added in
// quadrature).
func Total(estimates []CityEstimate) CityEstimate {
	var total CityEstimate
	var varSum float64
	for _, e := range estimates {
		total.KtCO2e += e.KtCO2e
		sigma := (e.High - e.Low) / 2
		varSum += sigma * sigma
		total.City = e.City
		total.Population = e.Population
	}
	total.Sector = "total"
	sigma := math.Sqrt(varSum)
	total.Low = total.KtCO2e - sigma
	total.High = total.KtCO2e + sigma
	return total
}
