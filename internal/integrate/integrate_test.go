package integrate

import (
	"math"
	"testing"
	"time"

	"repro/internal/emissions"
	"repro/internal/geo"
	"repro/internal/traffic"
	"repro/internal/weather"
)

var center = geo.LatLon{Lat: 63.4305, Lon: 10.3951}

func testField(t *testing.T) (*emissions.Field, *traffic.Network) {
	t.Helper()
	w := weather.NewModel(center.Lat, center.Lon, 1)
	tr := traffic.NewNetwork(traffic.GenerateGridNetwork(center, 3000, 1), 1)
	return emissions.NewField(w, tr), tr
}

func day(d, h int) time.Time {
	return time.Date(2017, time.March, d, h, 0, 0, 0, time.UTC)
}

func mkSeries(name string, start time.Time, step time.Duration, vals ...float64) TimeSeries {
	ts := TimeSeries{Name: name}
	for i, v := range vals {
		ts.Samples = append(ts.Samples, Sample{Time: start.Add(time.Duration(i) * step), Value: v})
	}
	return ts
}

func TestResampleLinear(t *testing.T) {
	ts := mkSeries("a", day(1, 0), time.Hour, 0, 10, 20)
	got, err := Resample(ts, day(1, 0), day(1, 2), 30*time.Minute, Linear)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 5, 10, 15, 20}
	if len(got.Samples) != len(want) {
		t.Fatalf("got %d samples", len(got.Samples))
	}
	for i, w := range want {
		if math.Abs(got.Samples[i].Value-w) > 1e-9 {
			t.Fatalf("sample %d = %v, want %v", i, got.Samples[i].Value, w)
		}
	}
}

func TestResampleOutsideSpanIsNaN(t *testing.T) {
	ts := mkSeries("a", day(1, 1), time.Hour, 5, 6)
	got, err := Resample(ts, day(1, 0), day(1, 3), time.Hour, Linear)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.Samples[0].Value) {
		t.Fatal("before-span sample should be NaN")
	}
	if !math.IsNaN(got.Samples[3].Value) {
		t.Fatal("after-span sample should be NaN")
	}
}

func TestResamplePrevious(t *testing.T) {
	ts := mkSeries("a", day(1, 0), 2*time.Hour, 1, 2)
	got, err := Resample(ts, day(1, 0), day(1, 3), time.Hour, Previous)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 2, 2}
	for i, w := range want {
		if got.Samples[i].Value != w {
			t.Fatalf("sample %d = %v, want %v", i, got.Samples[i].Value, w)
		}
	}
}

func TestResampleMeanInBucket(t *testing.T) {
	// 4 samples per hour; hourly mean buckets.
	ts := mkSeries("a", day(1, 0), 15*time.Minute, 1, 2, 3, 4, 10, 20, 30, 40)
	got, err := Resample(ts, day(1, 0), day(1, 1), time.Hour, MeanInBucket)
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples[0].Value != 2.5 || got.Samples[1].Value != 25 {
		t.Fatalf("bucket means: %v, %v", got.Samples[0].Value, got.Samples[1].Value)
	}
}

func TestResampleErrors(t *testing.T) {
	if _, err := Resample(TimeSeries{}, day(1, 0), day(1, 1), time.Hour, Linear); err != ErrEmptySeries {
		t.Fatalf("empty: %v", err)
	}
	ts := mkSeries("a", day(1, 0), time.Hour, 1)
	if _, err := Resample(ts, day(1, 0), day(1, 1), 0, Linear); err != ErrBadInterval {
		t.Fatalf("bad interval: %v", err)
	}
}

func TestAlignHeterogeneousSeries(t *testing.T) {
	// Hourly reference data vs 5-minute sensor data.
	ref := mkSeries("ref", day(1, 0), time.Hour, 10, 12, 14, 16, 18, 20)
	sensor := TimeSeries{Name: "sensor"}
	for i := 0; i < 60; i++ {
		sensor.Samples = append(sensor.Samples, Sample{
			Time:  day(1, 0).Add(time.Duration(i) * 5 * time.Minute),
			Value: float64(i),
		})
	}
	aligned, err := Align([]TimeSeries{ref, sensor}, time.Hour, Linear)
	if err != nil {
		t.Fatal(err)
	}
	if len(aligned) != 2 {
		t.Fatalf("aligned %d series", len(aligned))
	}
	if len(aligned[0].Samples) != len(aligned[1].Samples) {
		t.Fatalf("grids differ: %d vs %d", len(aligned[0].Samples), len(aligned[1].Samples))
	}
	for i := range aligned[0].Samples {
		if !aligned[0].Samples[i].Time.Equal(aligned[1].Samples[i].Time) {
			t.Fatal("timestamps not aligned")
		}
	}
}

func TestAlignNonOverlapping(t *testing.T) {
	a := mkSeries("a", day(1, 0), time.Hour, 1, 2)
	b := mkSeries("b", day(5, 0), time.Hour, 1, 2)
	if _, err := Align([]TimeSeries{a, b}, time.Hour, Linear); err == nil {
		t.Fatal("non-overlapping spans should error")
	}
}

func TestDropNaN(t *testing.T) {
	a := TimeSeries{Name: "a", Samples: []Sample{
		{day(1, 0), 1}, {day(1, 1), math.NaN()}, {day(1, 2), 3},
	}}
	b := TimeSeries{Name: "b", Samples: []Sample{
		{day(1, 0), 4}, {day(1, 1), 5}, {day(1, 2), 6},
	}}
	out := DropNaN([]TimeSeries{a, b})
	if len(out[0].Samples) != 2 || len(out[1].Samples) != 2 {
		t.Fatalf("NaN row not dropped: %d/%d", len(out[0].Samples), len(out[1].Samples))
	}
	if out[1].Samples[1].Value != 6 {
		t.Fatalf("wrong survivor: %v", out[1].Samples[1].Value)
	}
}

func TestReferenceStationAccuracy(t *testing.T) {
	field, _ := testField(t)
	st := NewReferenceStation("nilu-1", center, field)
	series := st.Observe(emissions.CO2, day(1, 0), day(3, 0))
	if len(series.Samples) != 48 {
		t.Fatalf("expected 48 hourly samples, got %d", len(series.Samples))
	}
	// Station error must be small relative to truth.
	var sumAbs float64
	for _, s := range series.Samples {
		truth := field.Concentration(emissions.CO2, center, s.Time)
		sumAbs += math.Abs(s.Value - truth)
	}
	if mean := sumAbs / 48; mean > 2 {
		t.Fatalf("reference station too noisy: mean abs err %v", mean)
	}
}

func TestStationServerAndClient(t *testing.T) {
	field, _ := testField(t)
	st := NewReferenceStation("nilu-1", center, field)
	srv := NewStationServer(st)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := NewStationClient("http://" + addr.String())
	got, err := client.Fetch("nilu-1", emissions.NO2, day(1, 0), day(1, 6))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != 6 {
		t.Fatalf("fetched %d samples, want 6", len(got.Samples))
	}
	want := st.Observe(emissions.NO2, day(1, 0), day(1, 6))
	for i := range want.Samples {
		if math.Abs(got.Samples[i].Value-want.Samples[i].Value) > 1e-9 {
			t.Fatalf("sample %d mismatch over HTTP", i)
		}
	}
	// Error paths.
	if _, err := client.Fetch("nope", emissions.CO2, day(1, 0), day(1, 1)); err == nil {
		t.Fatal("unknown station should fail")
	}
}

func TestSatelliteOverpassSchedule(t *testing.T) {
	field, _ := testField(t)
	sat := NewSatellite(field)
	passes := sat.Overpasses(day(1, 0), time.Date(2017, time.May, 1, 0, 0, 0, 0, time.UTC))
	if len(passes) < 3 || len(passes) > 5 {
		t.Fatalf("expected ~4 overpasses in 2 months at 16-day revisit, got %d", len(passes))
	}
	for i := 1; i < len(passes); i++ {
		if gap := passes[i].Sub(passes[i-1]); gap != 16*24*time.Hour {
			t.Fatalf("overpass gap %v, want 384h", gap)
		}
	}
}

func TestSatelliteSoundings(t *testing.T) {
	field, _ := testField(t)
	sat := NewSatellite(field)
	passes := sat.Overpasses(day(1, 0), day(28, 0))
	if len(passes) == 0 {
		t.Fatal("no overpasses in a month")
	}
	snds := sat.Retrieve(center, passes[0])
	if len(snds) != sat.SwathSoundings {
		t.Fatalf("soundings: %d", len(snds))
	}
	for _, s := range snds {
		// XCO2 must look like a column value: near background, far from
		// surface enhancement levels.
		if s.XCO2 < 395 || s.XCO2 > 420 {
			t.Fatalf("XCO2 %v implausible for a column retrieval", s.XCO2)
		}
		if s.Uncertainty <= 0 {
			t.Fatal("uncertainty must be positive")
		}
	}
}

func TestSatelliteCampaignSparse(t *testing.T) {
	field, _ := testField(t)
	sat := NewSatellite(field)
	series := sat.CampaignSeries(center, day(1, 0), time.Date(2017, time.June, 1, 0, 0, 0, 0, time.UTC))
	// ~3 months / 16 days ≈ 5-6 points: the "low spatial/temporal
	// resolution" characteristic.
	if len(series.Samples) < 4 || len(series.Samples) > 7 {
		t.Fatalf("campaign samples: %d", len(series.Samples))
	}
}

func TestTrafficFeedSeries(t *testing.T) {
	_, tr := testField(t)
	feed := NewTrafficFeed(tr)
	ts := feed.JamFactorSeries(day(7, 0), day(8, 0)) // Tuesday
	if len(ts.Samples) != 288 {
		t.Fatalf("samples: %d, want 288 (5-min over a day)", len(ts.Samples))
	}
	// Rush hour jam must exceed night jam.
	byHour := map[int]float64{}
	for _, s := range ts.Samples {
		byHour[s.Time.Hour()] += s.Value
	}
	if byHour[8] <= byHour[3] {
		t.Fatalf("rush jam %v not above night %v", byHour[8]/12, byHour[3]/12)
	}
}

func TestSegmentAndNearbyJam(t *testing.T) {
	_, tr := testField(t)
	feed := NewTrafficFeed(tr)
	seg := tr.Segments[0].ID
	ts, err := feed.SegmentJamSeries(seg, day(7, 8), day(7, 9))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Samples) != 12 {
		t.Fatalf("segment samples: %d", len(ts.Samples))
	}
	if _, err := feed.SegmentJamSeries("nope", day(7, 8), day(7, 9)); err == nil {
		t.Fatal("unknown segment should error")
	}
	near := feed.NearbyJamSeries(center, 1500, day(7, 8), day(7, 9))
	if len(near.Samples) != 12 {
		t.Fatalf("nearby samples: %d", len(near.Samples))
	}
}

func TestMunicipalCounts(t *testing.T) {
	_, tr := testField(t)
	mc := &MunicipalCounts{Network: tr}
	ts, err := mc.Campaign(tr.Segments[0].ID, day(6, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Samples) != 48 {
		t.Fatalf("campaign samples: %d", len(ts.Samples))
	}
}

func TestNationalDownscale(t *testing.T) {
	inv := NorwayInventory2016()
	est, err := inv.Downscale("trondheim", 190000)
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != len(inv.Sectors) {
		t.Fatalf("sector count: %d", len(est))
	}
	share := 190000.0 / 5236000.0
	for i, e := range est {
		want := inv.Sectors[i].KtCO2e * share
		if math.Abs(e.KtCO2e-want) > 1e-9 {
			t.Fatalf("downscale %s: %v want %v", e.Sector, e.KtCO2e, want)
		}
		if e.High <= e.KtCO2e || e.Low >= e.KtCO2e {
			t.Fatalf("uncertainty bounds wrong: %+v", e)
		}
		// Downscaling must widen relative uncertainty.
		rel := (e.High - e.KtCO2e) / e.KtCO2e * 100
		if rel <= inv.Sectors[i].UncertaintyPct {
			t.Fatalf("downscaled uncertainty %v should exceed national %v", rel, inv.Sectors[i].UncertaintyPct)
		}
	}
	total := Total(est)
	var sum float64
	for _, e := range est {
		sum += e.KtCO2e
	}
	if math.Abs(total.KtCO2e-sum) > 1e-9 {
		t.Fatalf("total: %v want %v", total.KtCO2e, sum)
	}
	if _, err := inv.Downscale("x", 0); err == nil {
		t.Fatal("zero population should error")
	}
}
