package core

import (
	"testing"
	"time"

	"repro/internal/sensors"
	"repro/internal/tsdb"
)

func newSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestEndToEndDirect(t *testing.T) {
	s := newSystem(t, TrondheimConfig(1))
	if len(s.Nodes) != 12 {
		t.Fatalf("Trondheim pilot must have 12 nodes, got %d", len(s.Nodes))
	}
	ticks, err := s.Run(2 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if ticks != 24 {
		t.Fatalf("ticks = %d", ticks)
	}
	// Radio losses exist but most uplinks must land.
	if got := s.IngestCount(); got < 12*24*7/10 {
		t.Fatalf("ingested %d uplinks, expected most of %d", got, 12*24)
	}
	// CO2 must be queryable per sensor.
	res, err := s.DB.Execute(tsdb.Query{
		Metric:     MetricCO2,
		Tags:       map[string]string{"sensor": "*"},
		Start:      s.Start.UnixMilli(),
		End:        s.Now().UnixMilli(),
		Aggregator: tsdb.AggAvg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 10 {
		t.Fatalf("expected ~12 sensor series, got %d", len(res))
	}
	for _, rs := range res {
		if len(rs.Points) == 0 {
			t.Fatalf("series %v empty", rs.Tags)
		}
		for _, p := range rs.Points {
			if p.Value < 300 || p.Value > 800 {
				t.Fatalf("implausible CO2 %v for %v", p.Value, rs.Tags)
			}
		}
	}
	// Traffic feed must be stored.
	res, err = s.DB.Execute(tsdb.Query{
		Metric:     "traffic.jamfactor",
		Start:      s.Start.UnixMilli(),
		End:        s.Now().UnixMilli(),
		Aggregator: tsdb.AggAvg,
	})
	if err != nil || len(res) != 1 || len(res[0].Points) != 24 {
		t.Fatalf("traffic series: %v err %v", res, err)
	}
}

func TestEndToEndMQTT(t *testing.T) {
	cfg := VejleConfig(2)
	cfg.Transport = MQTT
	s := newSystem(t, cfg)
	if len(s.Nodes) != 2 {
		t.Fatalf("Vejle pilot must have 2 nodes, got %d", len(s.Nodes))
	}
	if _, err := s.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	// 2 nodes × 12 ticks, modulo radio loss.
	if got := s.IngestCount(); got < 12 {
		t.Fatalf("MQTT path ingested only %d uplinks", got)
	}
	res, err := s.DB.Execute(tsdb.Query{
		Metric:     MetricCO2,
		Tags:       map[string]string{"sensor": "*"},
		Start:      s.Start.UnixMilli(),
		End:        s.Now().UnixMilli(),
		Aggregator: tsdb.AggAvg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("series: %d", len(res))
	}
	// Broker stats must show traffic (proof the real TCP path ran).
	pub, delivered, _ := s.Broker.Stats()
	if pub == 0 || delivered == 0 {
		t.Fatalf("broker unused: pub=%d delivered=%d", pub, delivered)
	}
}

func TestDataportSeesNetwork(t *testing.T) {
	s := newSystem(t, TrondheimConfig(3))
	if _, err := s.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Dataport.Snapshot(s.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Sensors) != 12 || len(snap.Gateways) != 2 {
		t.Fatalf("snapshot: %d sensors %d gateways", len(snap.Sensors), len(snap.Gateways))
	}
	okCount := 0
	for _, sn := range snap.Sensors {
		if sn.Status == "ok" {
			okCount++
		}
	}
	if okCount < 10 {
		t.Fatalf("healthy sensors: %d", okCount)
	}
	if len(snap.Links) == 0 {
		t.Fatal("no radio links recorded")
	}
	// No alarms on a healthy run.
	alarms, err := s.Dataport.Tick(s.Now())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range alarms {
		if a.Kind != "sensor-battery-low" { // possible after a long night, not an error
			t.Fatalf("unexpected alarm on healthy network: %+v", a)
		}
	}
}

func TestGatewayOutageDetectedEndToEnd(t *testing.T) {
	// Vejle has a single gateway: taking it offline silences the whole
	// radio side while the backbone stays up → grouped gateway alarm.
	s := newSystem(t, VejleConfig(4))
	if _, err := s.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	s.Radio.Gateway("gw-01").SetOnline(false)
	if _, err := s.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	alarms, err := s.Dataport.Tick(s.Now())
	if err != nil {
		t.Fatal(err)
	}
	var gwAlarm, sensorAlarm int
	for _, a := range alarms {
		switch a.Kind {
		case "gateway-outage":
			gwAlarm++
		case "sensor-silent":
			sensorAlarm++
		}
	}
	if gwAlarm != 1 {
		t.Fatalf("expected 1 gateway alarm, got %d (%+v)", gwAlarm, alarms)
	}
	if sensorAlarm != 0 {
		t.Fatalf("sensor alarms should be grouped: %d (%+v)", sensorAlarm, alarms)
	}
}

func TestBatteryTelemetryStored(t *testing.T) {
	s := newSystem(t, VejleConfig(5))
	if _, err := s.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	res, err := s.DB.Execute(tsdb.Query{
		Metric:     MetricBattery,
		Tags:       map[string]string{"sensor": "ctt-node-01"},
		Start:      s.Start.UnixMilli(),
		End:        s.Now().UnixMilli(),
		Aggregator: tsdb.AggAvg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Points) == 0 {
		t.Fatal("battery telemetry missing")
	}
	for _, p := range res[0].Points {
		if p.Value <= 0 || p.Value > 100 {
			t.Fatalf("battery %v out of range", p.Value)
		}
	}
}

func TestWALPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := VejleConfig(6)
	cfg.WALDir = dir
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	want := s.DB.PointCount()
	if want == 0 {
		t.Fatal("nothing stored")
	}
	s.Close()

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.DB.PointCount(); got != want {
		t.Fatalf("recovered %d points, want %d", got, want)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, int) {
		s := newSystem(t, TrondheimConfig(42))
		s.Run(time.Hour)
		return s.IngestCount(), s.DB.PointCount()
	}
	i1, p1 := run()
	i2, p2 := run()
	if i1 != i2 || p1 != p2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", i1, p1, i2, p2)
	}
}

func TestNodeLookup(t *testing.T) {
	s := newSystem(t, VejleConfig(7))
	if s.Node("ctt-node-01") == nil {
		t.Fatal("node lookup failed")
	}
	if s.Node("nope") != nil {
		t.Fatal("unknown node should be nil")
	}
}

func TestDownlinkCommandDirect(t *testing.T) {
	s := newSystem(t, VejleConfig(8))
	if _, err := s.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	payload, err := sensorsEncodeSetInterval(t, 15)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SendCommand("ctt-node-01", payload); err != nil {
		t.Fatal(err)
	}
	// The command arrives in the class-A window after the next uplink.
	if _, err := s.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := s.Node("ctt-node-01").Config.Interval; got != 15*time.Minute {
		t.Fatalf("interval after downlink = %v, want 15m", got)
	}
	// Unknown device errors.
	if err := s.SendCommand("nope", payload); err == nil {
		t.Fatal("unknown device should error")
	}
}

func TestDownlinkCommandOverMQTT(t *testing.T) {
	cfg := VejleConfig(9)
	cfg.Transport = MQTT
	s := newSystem(t, cfg)
	if _, err := s.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	payload, err := sensorsEncodeSetInterval(t, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Publishes to the TTN "down" topic over the real broker.
	if err := s.SendCommand("ctt-node-02", payload); err != nil {
		t.Fatal(err)
	}
	// Allow the broker to deliver, then run a tick so the class-A
	// window fires.
	waitFor(t, 2*time.Second, func() bool { return s.NS.PendingDownlinks() == 1 })
	if _, err := s.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := s.Node("ctt-node-02").Config.Interval; got != 20*time.Minute {
		t.Fatalf("interval after MQTT downlink = %v, want 20m", got)
	}
}

// helpers for the downlink tests.
func sensorsEncodeSetInterval(t *testing.T, minutes int) ([]byte, error) {
	t.Helper()
	return sensors.EncodeSetInterval(minutes)
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not met in time")
}
