package core

import (
	"fmt"

	"repro/internal/dataport"
	"repro/internal/mqtt"
	"repro/internal/tsdb"
	"repro/internal/ttn"
)

// Ingestor is the storage end of the pipeline: it parses TTN uplink
// messages and fans them into the time-series database (one metric per
// measured quantity, tagged by sensor and city) and into the dataport
// digital twins. It implements ttn.Publisher so the Direct transport
// can call it synchronously, and HandleMQTT for the broker path.
type Ingestor struct {
	db       *tsdb.DB
	dp       *dataport.Dataport
	city     string
	onIngest func()
}

// Metric names written per uplink.
const (
	MetricCO2      = "air.co2"
	MetricNO2      = "air.no2"
	MetricPM10     = "air.pm10"
	MetricPM25     = "air.pm25"
	MetricTemp     = "env.temperature"
	MetricHumidity = "env.humidity"
	MetricPressure = "env.pressure"
	MetricBattery  = "node.battery"
	MetricRSSI     = "net.rssi"
)

// Publish implements ttn.Publisher (Direct transport).
func (ing *Ingestor) Publish(topic string, payload []byte, qos byte, retain bool) error {
	return ing.handle(payload)
}

// HandleMQTT processes a message delivered by the broker.
func (ing *Ingestor) HandleMQTT(m mqtt.Message) {
	// Subscription handlers must not fail the connection; parse errors
	// are counted by dropping silently here and surfacing through
	// storage counts in tests.
	ing.handle(m.Payload)
}

func (ing *Ingestor) handle(payload []byte) error {
	msg, err := ttn.ParseUplink(payload)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if msg.Fields == nil {
		return fmt.Errorf("core: uplink %s has no decoded fields", msg.DevID)
	}
	m := msg.Fields
	ts := msg.Metadata.Time.UnixMilli()
	tags := map[string]string{"sensor": msg.DevID, "city": ing.city}

	put := func(metric string, v float64) error {
		return ing.db.Put(tsdb.DataPoint{
			Metric: metric, Tags: tags,
			Point: tsdb.Point{Timestamp: ts, Value: v},
		})
	}
	for _, kv := range []struct {
		metric string
		v      float64
	}{
		{MetricCO2, m.CO2},
		{MetricNO2, m.NO2},
		{MetricPM10, m.PM10},
		{MetricPM25, m.PM25},
		{MetricTemp, m.TemperatureC},
		{MetricHumidity, m.HumidityPct},
		{MetricPressure, m.PressureHPa},
		{MetricBattery, m.BatteryPct},
	} {
		if err := put(kv.metric, kv.v); err != nil {
			return fmt.Errorf("core: store %s: %w", kv.metric, err)
		}
	}
	// Best-gateway RSSI as link-quality telemetry.
	var gwIDs []string
	bestRSSI := 0.0
	for i, g := range msg.Metadata.Gateways {
		gwIDs = append(gwIDs, g.GatewayID)
		if i == 0 {
			bestRSSI = g.RSSI
			if err := put(MetricRSSI, g.RSSI); err != nil {
				return fmt.Errorf("core: store rssi: %w", err)
			}
		}
	}

	ing.dp.ObserveUplink(dataport.UplinkObservation{
		DeviceID:   msg.DevID,
		GatewayIDs: gwIDs,
		Time:       msg.Metadata.Time,
		BatteryPct: m.BatteryPct,
		FCnt:       msg.Counter,
		RSSI:       bestRSSI,
	})
	if ing.onIngest != nil {
		ing.onIngest()
	}
	return nil
}
