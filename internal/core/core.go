// Package core assembles the complete CTT system of the paper's
// Fig. 1: a city-wide IoT sensor network (simulated sensor nodes and
// LoRaWAN radio), the cloud data-collection path (TTN network server →
// MQTT → time-series database), the dataport monitoring application,
// external data integration, and the analysis/visualization layer.
//
// The system advances on a simulated clock in fixed ticks. Each tick:
//
//  1. every sensor node decides whether to sample and transmit,
//  2. the radio network resolves transmissions into gateway receptions,
//  3. the TTN backend deduplicates and publishes uplink JSON,
//  4. the ingestor stores measurements in the TSDB and feeds the
//     dataport's digital twins,
//  5. external feeds (traffic jam factor) are ingested alongside.
//
// Two transports are supported: Direct (the TTN backend hands uplinks
// straight to the ingestor — fast, fully deterministic, used by the
// benches) and MQTT (uplinks travel through the real TCP broker in
// internal/mqtt — used by the demo binaries and integration tests).
package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dataport"
	"repro/internal/emissions"
	"repro/internal/geo"
	"repro/internal/lorawan"
	"repro/internal/mqtt"
	"repro/internal/sensors"
	"repro/internal/traffic"
	"repro/internal/tsdb"
	"repro/internal/ttn"
	"repro/internal/weather"
)

// Transport selects how uplinks travel from the TTN backend to storage.
type Transport int

// Transports.
const (
	// Direct wires the network server straight into the ingestor.
	Direct Transport = iota
	// MQTT routes uplinks through a real TCP broker.
	MQTT
)

// Config describes a deployment.
type Config struct {
	City   string
	Center geo.LatLon
	Seed   int64
	// Sensors and gateways to deploy. When empty, Deploy* helpers
	// populate them.
	SensorPositions  []geo.LatLon
	GatewayPositions []geo.LatLon
	// Interval is the sensor reporting interval (paper: 5 minutes).
	Interval time.Duration
	// Start is the simulation epoch (paper: data collected since
	// January 2017).
	Start time.Time
	// Transport selects Direct or MQTT.
	Transport Transport
	// WALDir enables TSDB persistence when non-empty.
	WALDir string
	// Storage, when non-nil, opens the store with full durable-block
	// options (data dir, flush cadence, compaction) instead of the
	// WAL-only WALDir path. Storage.Now defaults to the simulated
	// clock so flush cutoffs track simulation time.
	Storage *tsdb.Options
	// CityRadiusM bounds the synthetic road network.
	CityRadiusM float64
}

// System is a running CTT deployment.
type System struct {
	Config

	Weather  *weather.Model
	Traffic  *traffic.Network
	Field    *emissions.Field
	Radio    *lorawan.Network
	Nodes    []*sensors.Node
	NS       *ttn.NetworkServer
	DB       *tsdb.DB
	Dataport *dataport.Dataport

	// MQTT path (nil in Direct mode).
	Broker    *mqtt.Broker
	pubClient *mqtt.Client
	subClient *mqtt.Client

	ingestor *Ingestor
	now      time.Time

	mu          sync.Mutex
	ingestCount int
	ingestCond  *sync.Cond
}

// AppID is the TTN application identifier used throughout.
const AppID = "ctt"

// New assembles a system. Call Close when done.
func New(cfg Config) (*System, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Minute
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2017, time.January, 1, 0, 0, 0, 0, time.UTC)
	}
	if cfg.CityRadiusM <= 0 {
		cfg.CityRadiusM = 3000
	}
	if len(cfg.GatewayPositions) == 0 {
		cfg.GatewayPositions = []geo.LatLon{cfg.Center}
	}

	s := &System{Config: cfg, now: cfg.Start}
	s.ingestCond = sync.NewCond(&s.mu)

	s.Weather = weather.NewModel(cfg.Center.Lat, cfg.Center.Lon, cfg.Seed)
	s.Traffic = traffic.NewNetwork(traffic.GenerateGridNetwork(cfg.Center, cfg.CityRadiusM, cfg.Seed), cfg.Seed)
	s.Field = emissions.NewField(s.Weather, s.Traffic)

	var gws []*lorawan.Gateway
	for i, pos := range cfg.GatewayPositions {
		gws = append(gws, lorawan.NewGateway(fmt.Sprintf("gw-%02d", i+1), pos))
	}
	s.Radio = lorawan.NewNetwork(cfg.Seed, gws...)

	var db *tsdb.DB
	var err error
	if cfg.Storage != nil {
		opts := *cfg.Storage
		if opts.Dir == "" {
			opts.Dir = cfg.WALDir
		}
		if opts.Now == nil {
			// Flush-age cutoffs must track the simulated clock, not the
			// wall clock — pilots replay months of 2017 history in
			// seconds of real time.
			opts.Now = s.Now
		}
		db, err = tsdb.OpenOptions(opts)
	} else {
		db, err = tsdb.Open(cfg.WALDir)
	}
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s.DB = db

	dp, err := dataport.New(dataport.Config{DefaultInterval: cfg.Interval})
	if err != nil {
		db.Close()
		return nil, fmt.Errorf("core: %w", err)
	}
	s.Dataport = dp
	for _, gw := range gws {
		if err := dp.RegisterGateway(gw.ID, gw.Pos); err != nil {
			s.Close()
			return nil, err
		}
	}

	s.ingestor = &Ingestor{db: db, dp: dp, city: cfg.City, onIngest: s.noteIngest}

	// Transport wiring.
	switch cfg.Transport {
	case MQTT:
		broker := mqtt.NewBroker()
		addr, err := broker.Start("127.0.0.1:0")
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("core: broker: %w", err)
		}
		s.Broker = broker
		pub, err := mqtt.Dial(addr.String(), "ttn-backend", mqtt.DialOptions{})
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("core: publisher: %w", err)
		}
		s.pubClient = pub
		sub, err := mqtt.Dial(addr.String(), "ingestor", mqtt.DialOptions{})
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("core: subscriber: %w", err)
		}
		s.subClient = sub
		if err := sub.Subscribe(ttn.UplinkWildcard(AppID), 1, func(m mqtt.Message) {
			s.ingestor.HandleMQTT(m)
		}); err != nil {
			s.Close()
			return nil, fmt.Errorf("core: subscribe: %w", err)
		}
		s.NS = ttn.NewNetworkServer(AppID, mqttPublisher{pub})
		// Applications schedule downlinks over MQTT (TTN v2 "down"
		// topics); the network server consumes them from the broker.
		if err := sub.Subscribe(ttn.DownlinkWildcard(AppID), 1, func(m mqtt.Message) {
			if dev := ttn.DeviceIDFromDownlinkTopic(AppID, m.Topic); dev != "" {
				s.NS.QueueDownlink(dev, m.Payload)
			}
		}); err != nil {
			s.Close()
			return nil, fmt.Errorf("core: subscribe down: %w", err)
		}
	default:
		s.NS = ttn.NewNetworkServer(AppID, s.ingestor)
	}

	// Deploy sensor nodes.
	for i, pos := range cfg.SensorPositions {
		id := fmt.Sprintf("ctt-node-%02d", i+1)
		addr := lorawan.DevAddr(0x26010000 + uint32(i) + 1)
		node := sensors.NewNode(sensors.Config{
			ID: id, DevAddr: addr, Pos: pos,
			Interval: cfg.Interval, Seed: cfg.Seed + int64(i)*101,
		}, s.Field, s.Weather)
		s.Nodes = append(s.Nodes, node)
		s.NS.Register(ttn.Device{ID: id, DevAddr: addr})
		if err := dp.RegisterSensor(id, pos, cfg.Interval); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// mqttPublisher adapts the MQTT client to the ttn.Publisher interface.
type mqttPublisher struct{ c *mqtt.Client }

func (p mqttPublisher) Publish(topic string, payload []byte, qos byte, retain bool) error {
	return p.c.Publish(topic, payload, qos, retain)
}

func (s *System) noteIngest() {
	s.mu.Lock()
	s.ingestCount++
	s.ingestCond.Broadcast()
	s.mu.Unlock()
}

// IngestCount returns the number of uplinks stored so far.
func (s *System) IngestCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ingestCount
}

// waitIngested blocks until at least n uplinks have been stored (used
// to make the async MQTT path deterministic) or the timeout passes.
func (s *System) waitIngested(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.ingestCount < n {
		if time.Now().After(deadline) {
			return false
		}
		// Cond has no timed wait; poll in small slices.
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
		s.mu.Lock()
	}
	return true
}

// Now returns the current simulated time. Safe to call concurrently
// with StepBy (servers read the clock from HTTP handlers while a
// ticker goroutine steps the simulation).
func (s *System) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Node returns the node with the given ID, or nil.
func (s *System) Node(id string) *sensors.Node {
	for _, n := range s.Nodes {
		if n.ID == id {
			return n
		}
	}
	return nil
}

// Step advances the simulation by one tick of the configured interval.
func (s *System) Step() error { return s.StepBy(s.Interval) }

// StepBy advances the simulation by d, processing one radio round at
// the new time.
func (s *System) StepBy(d time.Duration) error {
	s.mu.Lock()
	s.now = s.now.Add(d)
	t := s.now
	s.mu.Unlock()

	// 1. Sensor nodes sample/transmit.
	var txs []lorawan.Transmission
	for _, n := range s.Nodes {
		if tx := n.Step(t); tx != nil {
			txs = append(txs, *tx)
		}
	}
	// 2. Radio resolution.
	recs := s.Radio.Resolve(txs)
	// 3+4. Backend ingest; flush the dedup window within the tick.
	before := s.IngestCount()
	if _, err := s.NS.Ingest(recs, t); err != nil {
		return fmt.Errorf("core: ingest: %w", err)
	}
	published, err := s.NS.Ingest(nil, t.Add(3*time.Second))
	if err != nil {
		return fmt.Errorf("core: flush: %w", err)
	}
	if s.Transport == MQTT {
		// The broker path is asynchronous; wait for the ingestor.
		s.waitIngested(before+len(published), 5*time.Second)
	}
	// Class-A receive windows: each device whose uplink was received
	// gets any pending downlink immediately after.
	for _, msg := range published {
		node := s.Node(msg.DevID)
		if node == nil {
			continue
		}
		if payload, ok := s.NS.PopDownlink(node.DevAddr); ok {
			node.HandleDownlink(payload)
		}
	}
	// Backbone liveness accompanies the tick (MQTT keepalive stand-in).
	s.Dataport.ObserveBackbone(t)

	// 5. External feeds: city jam factor into the TSDB.
	if s.Traffic != nil {
		jf := s.Traffic.CityJamFactor(t)
		if err := s.DB.Put(tsdb.DataPoint{
			Metric: "traffic.jamfactor",
			Tags:   map[string]string{"city": s.City},
			Point:  tsdb.Point{Timestamp: t.UnixMilli(), Value: jf},
		}); err != nil {
			return fmt.Errorf("core: traffic ingest: %w", err)
		}
	}
	return nil
}

// SendCommand schedules a downlink command for a device. In Direct
// mode it queues on the network server; in MQTT mode it publishes to
// the device's TTN "down" topic, exactly as an external application
// would ("cloud sensor management ... through the event-driven MQTT
// communication protocol", §2.1).
func (s *System) SendCommand(devID string, payload []byte) error {
	if s.Transport == MQTT {
		return s.pubClient.Publish(ttn.DownlinkTopic(AppID, devID), payload, 1, false)
	}
	return s.NS.QueueDownlink(devID, payload)
}

// Run advances the simulation for the given duration, returning the
// number of ticks executed.
func (s *System) Run(d time.Duration) (int, error) {
	ticks := int(d / s.Interval)
	for i := 0; i < ticks; i++ {
		if err := s.Step(); err != nil {
			return i, err
		}
	}
	return ticks, nil
}

// Close tears everything down.
func (s *System) Close() error {
	if s.subClient != nil {
		s.subClient.Close()
	}
	if s.pubClient != nil {
		s.pubClient.Close()
	}
	if s.Broker != nil {
		s.Broker.Close()
	}
	if s.Dataport != nil {
		s.Dataport.Close()
	}
	if s.DB != nil {
		return s.DB.Close()
	}
	return nil
}
