package core

import (
	"time"

	"repro/internal/geo"
)

// Pilot deployments (paper §3): "two use cases of deploying our
// systems in Vejle, Denmark and Trondheim, Norway, where two and
// twelve sensors were deployed respectively to collect air quality
// data ... The sensor data is collected at a five-minute interval.
// The demo also uses historic data saved in our time-series database,
// collected since January 2017."

// City centers of the two pilots.
var (
	TrondheimCenter = geo.LatLon{Lat: 63.4305, Lon: 10.3951}
	VejleCenter     = geo.LatLon{Lat: 55.7113, Lon: 9.5363}
)

// PilotStart is the start of historic data collection.
var PilotStart = time.Date(2017, time.January, 1, 0, 0, 0, 0, time.UTC)

// TrondheimConfig is the 12-sensor pilot: nodes spread over the city
// center, two gateways for coverage, one node co-located with the
// official air-quality station for calibration (§2.4).
func TrondheimConfig(seed int64) Config {
	var sensorsPos []geo.LatLon
	// Node 1 is co-located with the reference station downtown.
	sensorsPos = append(sensorsPos, TrondheimCenter)
	// Remaining 11 nodes ring the city at varying distances.
	dists := []float64{600, 900, 1200, 1500, 1800, 800, 1100, 1600, 2100, 1400, 2400}
	for i, d := range dists {
		bearing := float64(i) * 33.0
		sensorsPos = append(sensorsPos, geo.Destination(TrondheimCenter, bearing, d))
	}
	return Config{
		City:             "trondheim",
		Center:           TrondheimCenter,
		Seed:             seed,
		SensorPositions:  sensorsPos,
		GatewayPositions: []geo.LatLon{TrondheimCenter, geo.Destination(TrondheimCenter, 60, 1800)},
		Interval:         5 * time.Minute,
		Start:            PilotStart,
		CityRadiusM:      3000,
	}
}

// VejleConfig is the 2-sensor pilot, whose city model integration is
// the Fig. 7 demo.
func VejleConfig(seed int64) Config {
	return Config{
		City:   "vejle",
		Center: VejleCenter,
		Seed:   seed,
		SensorPositions: []geo.LatLon{
			geo.Destination(VejleCenter, 120, 400),
			geo.Destination(VejleCenter, 300, 900),
		},
		GatewayPositions: []geo.LatLon{VejleCenter},
		Interval:         5 * time.Minute,
		Start:            PilotStart,
		CityRadiusM:      2000,
	}
}

// ColocatedNodeID is the Trondheim node placed at the reference
// station.
const ColocatedNodeID = "ctt-node-01"
