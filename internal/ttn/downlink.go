package ttn

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/lorawan"
)

// Downlink scheduling: the network server queues at most one pending
// downlink per device (TTN v2 semantics); it is delivered in the
// class-A receive window following the device's next uplink.

// ErrUnknownDevice is returned when queueing for an unregistered
// device.
var ErrUnknownDevice = errors.New("ttn: unknown device")

// QueueDownlink schedules a payload for a device, replacing any
// previously queued downlink.
func (ns *NetworkServer) QueueDownlink(devID string, payload []byte) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	for addr, dev := range ns.devices {
		if dev.ID == devID {
			if ns.downlinks == nil {
				ns.downlinks = make(map[lorawan.DevAddr][]byte)
			}
			ns.downlinks[addr] = append([]byte(nil), payload...)
			return nil
		}
	}
	return fmt.Errorf("%w: %q", ErrUnknownDevice, devID)
}

// PopDownlink removes and returns the pending downlink for a device
// address (called right after an uplink is received — the class-A
// window).
func (ns *NetworkServer) PopDownlink(addr lorawan.DevAddr) ([]byte, bool) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	payload, ok := ns.downlinks[addr]
	if ok {
		delete(ns.downlinks, addr)
	}
	return payload, ok
}

// PendingDownlinks reports how many downlinks are queued.
func (ns *NetworkServer) PendingDownlinks() int {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return len(ns.downlinks)
}

// DownlinkTopic is the MQTT topic on which applications schedule
// downlinks for a device (TTN v2 shape).
func DownlinkTopic(appID, devID string) string {
	return appID + "/devices/" + devID + "/down"
}

// DownlinkWildcard matches all devices' downlink topics.
func DownlinkWildcard(appID string) string {
	return appID + "/devices/+/down"
}

// DeviceIDFromDownlinkTopic extracts the device ID from a downlink
// topic, or "" if the topic has the wrong shape.
func DeviceIDFromDownlinkTopic(appID, topic string) string {
	prefix := appID + "/devices/"
	if !strings.HasPrefix(topic, prefix) || !strings.HasSuffix(topic, "/down") {
		return ""
	}
	dev := strings.TrimSuffix(strings.TrimPrefix(topic, prefix), "/down")
	if dev == "" || strings.Contains(dev, "/") {
		return ""
	}
	return dev
}
