// Package ttn simulates The Things Network backend the paper's
// backbone forwards into (Fig. 2, stages 3–5): a LoRaWAN network
// server that deduplicates multi-gateway receptions of the same frame,
// validates frame counters against replays, decodes application
// payloads, and publishes TTN-v2-style JSON uplink messages over MQTT
// on topics of the form
//
//	<appID>/devices/<devID>/up
//
// The MQTT dependency is an interface so the network server can run
// against the real broker in internal/mqtt or a test double.
package ttn

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/lorawan"
	"repro/internal/sensors"
)

// Publisher abstracts the MQTT client (or any transport).
type Publisher interface {
	Publish(topic string, payload []byte, qos byte, retain bool) error
}

// Device is a registered end device.
type Device struct {
	ID      string // human name, e.g. "ctt-node-03"
	DevAddr lorawan.DevAddr
}

// GatewayMeta is per-gateway reception metadata attached to an uplink.
type GatewayMeta struct {
	GatewayID string  `json:"gtw_id"`
	RSSI      float64 `json:"rssi"`
	SNR       float64 `json:"snr"`
}

// UplinkMessage is the JSON document published per deduplicated uplink,
// following the shape of TTN v2 data API messages.
type UplinkMessage struct {
	AppID      string               `json:"app_id"`
	DevID      string               `json:"dev_id"`
	DevAddr    string               `json:"dev_addr"`
	Port       uint8                `json:"port"`
	Counter    uint16               `json:"counter"`
	PayloadRaw []byte               `json:"payload_raw"` // base64 in JSON
	Fields     *sensors.Measurement `json:"payload_fields,omitempty"`
	Metadata   Metadata             `json:"metadata"`
}

// Metadata carries reception context.
type Metadata struct {
	Time     time.Time     `json:"time"`
	DataRate string        `json:"data_rate"`
	Channel  int           `json:"frequency_channel"`
	Gateways []GatewayMeta `json:"gateways"`
}

// Stats counts network-server activity.
type Stats struct {
	FramesIn       uint64 // gateway receptions ingested
	UplinksOut     uint64 // deduplicated uplinks published
	Duplicates     uint64 // receptions merged into an existing uplink
	ReplaysDropped uint64
	DecodeErrors   uint64
	UnknownDevice  uint64
}

// NetworkServer is the TTN backend simulation.
type NetworkServer struct {
	AppID string
	// DedupWindow: receptions of the same (DevAddr, FCnt) within this
	// window count as one uplink. LoRa reception spread across
	// gateways is sub-second; 2 s is the TTN default neighbourhood.
	DedupWindow time.Duration

	pub Publisher

	mu        sync.Mutex
	devices   map[lorawan.DevAddr]Device
	lastFCnt  map[lorawan.DevAddr]uint16
	seenFCnt  map[lorawan.DevAddr]bool
	pending   map[dedupKey]*pendingUplink
	downlinks map[lorawan.DevAddr][]byte
	stats     Stats
}

type dedupKey struct {
	addr lorawan.DevAddr
	fcnt uint16
}

type pendingUplink struct {
	uplink   *lorawan.Uplink
	deviceID string
	sf       lorawan.SpreadingFactor
	ch       int
	first    time.Time
	gateways []GatewayMeta
}

// NewNetworkServer creates a network server publishing via pub.
func NewNetworkServer(appID string, pub Publisher) *NetworkServer {
	return &NetworkServer{
		AppID:       appID,
		DedupWindow: 2 * time.Second,
		pub:         pub,
		devices:     make(map[lorawan.DevAddr]Device),
		lastFCnt:    make(map[lorawan.DevAddr]uint16),
		seenFCnt:    make(map[lorawan.DevAddr]bool),
		pending:     make(map[dedupKey]*pendingUplink),
	}
}

// Register adds a device to the application.
func (ns *NetworkServer) Register(d Device) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.devices[d.DevAddr] = d
}

// Stats returns a snapshot of the counters.
func (ns *NetworkServer) Stats() Stats {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.stats
}

// Ingest processes a batch of gateway receptions at simulated time now,
// then flushes every pending uplink whose dedup window has expired.
// It returns the uplink messages published in this call.
func (ns *NetworkServer) Ingest(recs []lorawan.Reception, now time.Time) ([]*UplinkMessage, error) {
	ns.mu.Lock()
	for _, rec := range recs {
		ns.stats.FramesIn++
		up, err := lorawan.Decode(rec.Frame)
		if err != nil {
			ns.stats.DecodeErrors++
			continue
		}
		dev, ok := ns.devices[up.DevAddr]
		if !ok {
			ns.stats.UnknownDevice++
			continue
		}
		key := dedupKey{up.DevAddr, up.FCnt}
		if p, ok := ns.pending[key]; ok {
			p.gateways = append(p.gateways, GatewayMeta{rec.GatewayID, rec.RSSI, rec.SNR})
			ns.stats.Duplicates++
			continue
		}
		// Frame-counter replay protection: a frame counter at or below
		// the last accepted one is a replay, unless the counter wrapped
		// (small counters after large are accepted as wrap).
		if ns.seenFCnt[up.DevAddr] {
			last := ns.lastFCnt[up.DevAddr]
			if up.FCnt <= last && !(last > 65000 && up.FCnt < 1000) {
				ns.stats.ReplaysDropped++
				continue
			}
		}
		ns.pending[key] = &pendingUplink{
			uplink:   up,
			deviceID: dev.ID,
			sf:       rec.SF,
			ch:       rec.Chan,
			first:    now,
			gateways: []GatewayMeta{{rec.GatewayID, rec.RSSI, rec.SNR}},
		}
		ns.lastFCnt[up.DevAddr] = up.FCnt
		ns.seenFCnt[up.DevAddr] = true
	}

	// Flush expired dedup windows.
	var due []*pendingUplink
	for key, p := range ns.pending {
		if now.Sub(p.first) >= ns.DedupWindow {
			due = append(due, p)
			delete(ns.pending, key)
		}
	}
	ns.mu.Unlock()

	sort.Slice(due, func(i, j int) bool {
		if !due[i].first.Equal(due[j].first) {
			return due[i].first.Before(due[j].first)
		}
		return due[i].deviceID < due[j].deviceID
	})
	var out []*UplinkMessage
	for _, p := range due {
		msg, err := ns.publish(p)
		if err != nil {
			return out, err
		}
		out = append(out, msg)
	}
	return out, nil
}

// Flush publishes every pending uplink regardless of window age — used
// at simulation end.
func (ns *NetworkServer) Flush() ([]*UplinkMessage, error) {
	ns.mu.Lock()
	var due []*pendingUplink
	for key, p := range ns.pending {
		due = append(due, p)
		delete(ns.pending, key)
	}
	ns.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].first.Before(due[j].first) })
	var out []*UplinkMessage
	for _, p := range due {
		msg, err := ns.publish(p)
		if err != nil {
			return out, err
		}
		out = append(out, msg)
	}
	return out, nil
}

func (ns *NetworkServer) publish(p *pendingUplink) (*UplinkMessage, error) {
	// Sort gateway metadata by descending RSSI (best reception first),
	// matching TTN behaviour.
	sort.Slice(p.gateways, func(i, j int) bool { return p.gateways[i].RSSI > p.gateways[j].RSSI })

	msg := &UplinkMessage{
		AppID:      ns.AppID,
		DevID:      p.deviceID,
		DevAddr:    p.uplink.DevAddr.String(),
		Port:       p.uplink.FPort,
		Counter:    p.uplink.FCnt,
		PayloadRaw: p.uplink.Payload,
		Metadata: Metadata{
			Time:     p.first,
			DataRate: fmt.Sprintf("%s/125kHz", p.sf),
			Channel:  p.ch,
			Gateways: p.gateways,
		},
	}
	if m, err := sensors.DecodeMeasurement(p.uplink.Payload); err == nil {
		m.Time = p.first
		msg.Fields = &m
	}

	data, err := json.Marshal(msg)
	if err != nil {
		return nil, fmt.Errorf("ttn: marshal uplink: %w", err)
	}
	topic := UplinkTopic(ns.AppID, p.deviceID)
	if ns.pub != nil {
		if err := ns.pub.Publish(topic, data, 1, false); err != nil {
			return nil, fmt.Errorf("ttn: publish: %w", err)
		}
	}
	ns.mu.Lock()
	ns.stats.UplinksOut++
	ns.mu.Unlock()
	return msg, nil
}

// UplinkTopic returns the MQTT topic for a device's uplinks.
func UplinkTopic(appID, devID string) string {
	return appID + "/devices/" + devID + "/up"
}

// UplinkWildcard returns the filter matching all device uplinks of an
// application.
func UplinkWildcard(appID string) string {
	return appID + "/devices/+/up"
}

// ParseUplink decodes a published uplink JSON document.
func ParseUplink(payload []byte) (*UplinkMessage, error) {
	var msg UplinkMessage
	if err := json.Unmarshal(payload, &msg); err != nil {
		return nil, fmt.Errorf("ttn: parse uplink: %w", err)
	}
	return &msg, nil
}
