package ttn

import "testing"

func TestQueueAndPopDownlink(t *testing.T) {
	ns, _ := newServer(t)
	if err := ns.QueueDownlink("node-01", []byte{0x01, 0x0A}); err != nil {
		t.Fatal(err)
	}
	if ns.PendingDownlinks() != 1 {
		t.Fatalf("pending: %d", ns.PendingDownlinks())
	}
	payload, ok := ns.PopDownlink(0x1001)
	if !ok || len(payload) != 2 || payload[0] != 0x01 {
		t.Fatalf("pop: %v %v", payload, ok)
	}
	if _, ok := ns.PopDownlink(0x1001); ok {
		t.Fatal("downlink should be consumed")
	}
}

func TestQueueDownlinkUnknownDevice(t *testing.T) {
	ns, _ := newServer(t)
	if err := ns.QueueDownlink("nope", []byte{1}); err == nil {
		t.Fatal("unknown device should error")
	}
}

func TestQueueDownlinkReplaces(t *testing.T) {
	ns, _ := newServer(t)
	ns.QueueDownlink("node-01", []byte{0x01, 0x05})
	ns.QueueDownlink("node-01", []byte{0x01, 0x0F})
	payload, _ := ns.PopDownlink(0x1001)
	if payload[1] != 0x0F {
		t.Fatalf("latest downlink should win: %v", payload)
	}
	if ns.PendingDownlinks() != 0 {
		t.Fatal("queue should hold one per device")
	}
}

func TestDownlinkTopicHelpers(t *testing.T) {
	if DownlinkTopic("ctt", "n1") != "ctt/devices/n1/down" {
		t.Fatal("topic wrong")
	}
	if DownlinkWildcard("ctt") != "ctt/devices/+/down" {
		t.Fatal("wildcard wrong")
	}
	cases := map[string]string{
		"ctt/devices/n1/down":   "n1",
		"ctt/devices/n1/up":     "",
		"other/devices/n1/down": "",
		"ctt/devices//down":     "",
		"ctt/devices/a/b/down":  "",
	}
	for topic, want := range cases {
		if got := DeviceIDFromDownlinkTopic("ctt", topic); got != want {
			t.Errorf("DeviceIDFromDownlinkTopic(%q) = %q, want %q", topic, got, want)
		}
	}
}
