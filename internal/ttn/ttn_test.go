package ttn

import (
	"sync"
	"testing"
	"time"

	"repro/internal/lorawan"
	"repro/internal/sensors"
)

var t0 = time.Date(2017, time.March, 7, 12, 0, 0, 0, time.UTC)

// memPub captures published messages.
type memPub struct {
	mu   sync.Mutex
	msgs []struct {
		topic   string
		payload []byte
	}
}

func (p *memPub) Publish(topic string, payload []byte, qos byte, retain bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.msgs = append(p.msgs, struct {
		topic   string
		payload []byte
	}{topic, payload})
	return nil
}

func (p *memPub) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.msgs)
}

func makeReception(t *testing.T, addr lorawan.DevAddr, fcnt uint16, gw string, rssi float64) lorawan.Reception {
	t.Helper()
	m := sensors.Measurement{CO2: 420, TemperatureC: 5, BatteryPct: 80, PressureHPa: 1010}
	up := &lorawan.Uplink{DevAddr: addr, FCnt: fcnt, FPort: 1, Payload: sensors.EncodeMeasurement(m)}
	frame, err := up.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return lorawan.Reception{
		GatewayID: gw, DeviceID: "dev", Frame: frame,
		RSSI: rssi, SNR: 8, SF: lorawan.SF9, Chan: 2, Time: t0,
	}
}

func newServer(t *testing.T) (*NetworkServer, *memPub) {
	t.Helper()
	pub := &memPub{}
	ns := NewNetworkServer("ctt", pub)
	ns.Register(Device{ID: "node-01", DevAddr: 0x1001})
	return ns, pub
}

func TestIngestPublishesAfterWindow(t *testing.T) {
	ns, pub := newServer(t)
	rec := makeReception(t, 0x1001, 1, "gw1", -80)
	msgs, err := ns.Ingest([]lorawan.Reception{rec}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 0 || pub.count() != 0 {
		t.Fatal("uplink should be held during dedup window")
	}
	msgs, err = ns.Ingest(nil, t0.Add(3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || pub.count() != 1 {
		t.Fatalf("expected publish after window: msgs=%d pubs=%d", len(msgs), pub.count())
	}
	m := msgs[0]
	if m.DevID != "node-01" || m.Counter != 1 || m.AppID != "ctt" {
		t.Fatalf("bad message: %+v", m)
	}
	if m.Fields == nil || m.Fields.CO2 != 420 {
		t.Fatalf("decoded fields missing: %+v", m.Fields)
	}
	if m.Metadata.DataRate != "SF9/125kHz" {
		t.Fatalf("data rate: %s", m.Metadata.DataRate)
	}
}

func TestDedupAcrossGateways(t *testing.T) {
	ns, _ := newServer(t)
	recs := []lorawan.Reception{
		makeReception(t, 0x1001, 7, "gw1", -85),
		makeReception(t, 0x1001, 7, "gw2", -70),
		makeReception(t, 0x1001, 7, "gw3", -95),
	}
	ns.Ingest(recs, t0)
	msgs, _ := ns.Ingest(nil, t0.Add(3*time.Second))
	if len(msgs) != 1 {
		t.Fatalf("3 receptions should dedup to 1 uplink, got %d", len(msgs))
	}
	gws := msgs[0].Metadata.Gateways
	if len(gws) != 3 {
		t.Fatalf("gateway metadata lost: %d", len(gws))
	}
	// Best RSSI first.
	if gws[0].GatewayID != "gw2" || gws[0].RSSI != -70 {
		t.Fatalf("gateways not sorted by RSSI: %+v", gws)
	}
	st := ns.Stats()
	if st.Duplicates != 2 || st.UplinksOut != 1 || st.FramesIn != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestReplayRejected(t *testing.T) {
	ns, _ := newServer(t)
	ns.Ingest([]lorawan.Reception{makeReception(t, 0x1001, 5, "gw1", -80)}, t0)
	ns.Ingest(nil, t0.Add(3*time.Second))
	// Replay of the same counter after the window: must be dropped.
	ns.Ingest([]lorawan.Reception{makeReception(t, 0x1001, 5, "gw1", -80)}, t0.Add(10*time.Second))
	msgs, _ := ns.Ingest(nil, t0.Add(20*time.Second))
	if len(msgs) != 0 {
		t.Fatal("replayed frame must not publish")
	}
	if ns.Stats().ReplaysDropped != 1 {
		t.Fatalf("stats: %+v", ns.Stats())
	}
	// Older counter too.
	ns.Ingest([]lorawan.Reception{makeReception(t, 0x1001, 3, "gw1", -80)}, t0.Add(30*time.Second))
	if ns.Stats().ReplaysDropped != 2 {
		t.Fatalf("stats: %+v", ns.Stats())
	}
}

func TestCounterWrapAccepted(t *testing.T) {
	ns, _ := newServer(t)
	ns.Ingest([]lorawan.Reception{makeReception(t, 0x1001, 65530, "gw1", -80)}, t0)
	ns.Ingest(nil, t0.Add(3*time.Second))
	ns.Ingest([]lorawan.Reception{makeReception(t, 0x1001, 2, "gw1", -80)}, t0.Add(10*time.Second))
	msgs, _ := ns.Ingest(nil, t0.Add(20*time.Second))
	if len(msgs) != 1 {
		t.Fatal("wrapped counter should be accepted")
	}
}

func TestUnknownDeviceDropped(t *testing.T) {
	ns, _ := newServer(t)
	ns.Ingest([]lorawan.Reception{makeReception(t, 0x9999, 1, "gw1", -80)}, t0)
	msgs, _ := ns.Ingest(nil, t0.Add(3*time.Second))
	if len(msgs) != 0 || ns.Stats().UnknownDevice != 1 {
		t.Fatalf("unknown device: msgs=%d stats=%+v", len(msgs), ns.Stats())
	}
}

func TestCorruptFrameCounted(t *testing.T) {
	ns, _ := newServer(t)
	rec := makeReception(t, 0x1001, 1, "gw1", -80)
	rec.Frame[10] ^= 0xFF
	ns.Ingest([]lorawan.Reception{rec}, t0)
	if ns.Stats().DecodeErrors != 1 {
		t.Fatalf("stats: %+v", ns.Stats())
	}
}

func TestFlush(t *testing.T) {
	ns, pub := newServer(t)
	ns.Ingest([]lorawan.Reception{makeReception(t, 0x1001, 1, "gw1", -80)}, t0)
	msgs, err := ns.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || pub.count() != 1 {
		t.Fatal("flush should publish pending uplinks")
	}
}

func TestUplinkJSONRoundTrip(t *testing.T) {
	ns, pub := newServer(t)
	ns.Ingest([]lorawan.Reception{makeReception(t, 0x1001, 9, "gw1", -77)}, t0)
	ns.Flush()
	parsed, err := ParseUplink(pub.msgs[0].payload)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.DevID != "node-01" || parsed.Counter != 9 {
		t.Fatalf("parsed: %+v", parsed)
	}
	if parsed.Fields == nil || parsed.Fields.CO2 != 420 {
		t.Fatalf("fields: %+v", parsed.Fields)
	}
	if pub.msgs[0].topic != "ctt/devices/node-01/up" {
		t.Fatalf("topic: %s", pub.msgs[0].topic)
	}
	if _, err := ParseUplink([]byte("{bad")); err == nil {
		t.Fatal("bad json should error")
	}
}

func TestTopicHelpers(t *testing.T) {
	if UplinkTopic("app", "dev") != "app/devices/dev/up" {
		t.Fatal("topic wrong")
	}
	if UplinkWildcard("app") != "app/devices/+/up" {
		t.Fatal("wildcard wrong")
	}
}

func TestMultipleDevicesIndependentCounters(t *testing.T) {
	ns, _ := newServer(t)
	ns.Register(Device{ID: "node-02", DevAddr: 0x1002})
	ns.Ingest([]lorawan.Reception{
		makeReception(t, 0x1001, 1, "gw1", -80),
		makeReception(t, 0x1002, 1, "gw1", -82),
	}, t0)
	msgs, _ := ns.Ingest(nil, t0.Add(3*time.Second))
	if len(msgs) != 2 {
		t.Fatalf("both devices should publish, got %d", len(msgs))
	}
}
