package dataport

import (
	"time"

	"repro/internal/geo"
)

// NetworkSnapshot is the dataport's view of the network for the Fig. 3
// visualization: "the structure of digital twins for sensors and
// gateways, their location, the connections and live data transmission
// between sensors and gateways".
type NetworkSnapshot struct {
	Time     time.Time
	Sensors  []SensorNode
	Gateways []GatewayNode
	Links    []Link
}

// SensorNode is one sensor in the network view.
type SensorNode struct {
	ID         string
	Pos        geo.LatLon
	LastSeen   time.Time
	BatteryPct float64
	Status     string // "ok" | "silent" | "battery-low" | "pending"
	// Received / LostFrames summarize the radio link quality (counter
	// gaps = transmitted-but-lost uplinks).
	Received   int
	LostFrames int
}

// GatewayNode is one gateway in the network view.
type GatewayNode struct {
	ID       string
	Pos      geo.LatLon
	LastSeen time.Time
	Status   string // "ok" | "down" | "pending"
}

// Link is a recently used sensor→gateway radio link.
type Link struct {
	SensorID  string
	GatewayID string
	RSSI      float64
	LastUsed  time.Time
	// Live marks links used within the last reporting interval —
	// rendered as active transmissions.
	Live bool
}

// Snapshot collects twin state into a renderable network graph.
func (d *Dataport) Snapshot(now time.Time) (NetworkSnapshot, error) {
	sensorsSt, gatewaysSt, _, err := d.collect(now)
	if err != nil {
		return NetworkSnapshot{}, err
	}
	snap := NetworkSnapshot{Time: now}
	for _, s := range sensorsSt {
		status := "ok"
		switch {
		case !s.Seen:
			status = "pending"
		case s.Silent:
			status = "silent"
		case s.BatteryLow:
			status = "battery-low"
		}
		snap.Sensors = append(snap.Sensors, SensorNode{
			ID: s.ID, Pos: s.Pos, LastSeen: s.LastSeen,
			BatteryPct: s.BatteryPct, Status: status,
			Received: s.Received, LostFrames: s.LostFrames,
		})
		if s.Seen && s.LastGateway != "" {
			snap.Links = append(snap.Links, Link{
				SensorID:  s.ID,
				GatewayID: s.LastGateway,
				RSSI:      s.LastRSSI,
				LastUsed:  s.LastSeen,
				Live:      now.Sub(s.LastSeen) <= s.Interval,
			})
		}
	}
	for _, g := range gatewaysSt {
		status := "ok"
		switch {
		case !g.Seen:
			status = "pending"
		case g.Down:
			status = "down"
		}
		snap.Gateways = append(snap.Gateways, GatewayNode{
			ID: g.ID, Pos: g.Pos, LastSeen: g.LastSeen, Status: status,
		})
	}
	return snap, nil
}

// Watchdog is the external liveness monitor (the paper uses the
// AppBeat service): it probes the dataport's own activity and raises
// an alarm if the monitor itself has gone quiet.
type Watchdog struct {
	// MaxQuiet is the longest tolerated dataport inactivity.
	MaxQuiet time.Duration
}

// Check probes the dataport at simulated time now. It returns a
// non-nil alarm when the dataport has been inactive for too long.
func (w Watchdog) Check(d *Dataport, now time.Time) *Alarm {
	last := d.LastActivity()
	if last.IsZero() || now.Sub(last) <= w.MaxQuiet {
		return nil
	}
	return &Alarm{
		Time:     now,
		Severity: Critical,
		Kind:     AlarmBackboneDown,
		Subject:  "dataport",
		Message:  "dataport unresponsive (watchdog)",
	}
}
