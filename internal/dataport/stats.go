package dataport

import "time"

// Stats is a cheap point-in-time summary of the monitoring state, for
// the HTTP gateway's /metrics endpoint.
type Stats struct {
	Sensors      int
	Gateways     int
	Alarms       int // total alarms raised so far
	LastActivity time.Time
}

// Stats reports registered twin counts and the alarm-log length.
func (d *Dataport) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{
		Sensors:      len(d.sensors),
		Gateways:     len(d.gateways),
		Alarms:       len(d.alarmLog),
		LastActivity: d.lastActivity,
	}
}
