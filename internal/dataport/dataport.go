// Package dataport reproduces the paper's monitoring application
// (§2.3): an actor-based system in which every real-world device —
// sensor node, gateway, and the cloud backbone — has a dedicated actor
// acting as its digital twin. Twins track state in real time, monitor
// all communication, and trigger alarms when data is not received as
// expected.
//
// Key behaviours from the paper:
//
//   - "a single missing measurement is expected occasionally. Based on
//     the measurement frequency of individual sensors, it takes some
//     cycles to determine a failure with certainty" — a sensor is
//     declared silent only after MissedCycles expected intervals;
//   - "sensor nodes can adapt their frequency based on battery levels,
//     a complex model of the sensor node and its status is needed" —
//     the twin stretches its expectation when the last reported
//     battery level is below the node's low-battery threshold;
//   - "on higher levels, failures can be grouped so that for example a
//     distinction can be drawn between sensor failures versus a
//     gateway outage that would make a set of sensors invisible" —
//     when a gateway is down and the silent sensors are exactly those
//     that relied on it, one gateway alarm replaces the sensor alarms;
//   - "if the dataport itself fails, it is detected by an external
//     watchdog service" — Watchdog plays the AppBeat role;
//   - the dataport "drives a visualization of the network itself"
//     (Fig. 3) — Snapshot exports the twin graph for rendering.
package dataport

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/actor"
	"repro/internal/geo"
)

// Severity grades an alarm.
type Severity int

// Severities.
const (
	Info Severity = iota
	Warning
	Critical
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// AlarmKind classifies alarms.
type AlarmKind string

// Alarm kinds.
const (
	AlarmSensorSilent  AlarmKind = "sensor-silent"
	AlarmSensorBattery AlarmKind = "sensor-battery-low"
	AlarmGatewayOutage AlarmKind = "gateway-outage"
	AlarmBackboneDown  AlarmKind = "backbone-down"
	AlarmRecovered     AlarmKind = "recovered"
)

// Alarm is one monitoring event.
type Alarm struct {
	Time     time.Time
	Severity Severity
	Kind     AlarmKind
	Subject  string // device / gateway / component id
	Message  string
}

// MissedCycles is how many expected reporting intervals may elapse
// before a sensor twin declares the node silent.
const MissedCycles = 3

// LowBatteryPct mirrors the node firmware threshold at which reporting
// frequency halves; the twin must expect the longer interval.
const LowBatteryPct = 25

// --- twin state (owned by actors) -----------------------------------

// UplinkObservation is the dataport's view of one uplink (from the
// MQTT feed or injected directly in tests).
type UplinkObservation struct {
	DeviceID   string
	GatewayIDs []string
	Time       time.Time
	BatteryPct float64
	FCnt       uint16
	RSSI       float64 // best gateway RSSI
}

// sensorStatus is the twin's externally visible state.
type sensorStatus struct {
	ID          string
	Pos         geo.LatLon
	LastSeen    time.Time
	Seen        bool
	BatteryPct  float64
	FCnt        uint16
	LastGateway string
	LastRSSI    float64
	Interval    time.Duration
	Silent      bool
	BatteryLow  bool
	// Received counts uplinks seen by the twin; LostFrames counts
	// frame-counter gaps (uplinks the node sent that never arrived) —
	// the per-sensor missing-data pattern §2.3 calls out.
	Received   int
	LostFrames int
}

type gatewayStatus struct {
	ID       string
	Pos      geo.LatLon
	LastSeen time.Time
	Seen     bool
	Down     bool
}

// messages
type obsMsg struct{ obs UplinkObservation }
type gwSeenMsg struct {
	t    time.Time
	rssi float64
}
type statusReq struct{ now time.Time }

// sensorTwin is the digital twin actor for one sensor node.
type sensorTwin struct {
	st sensorStatus
}

func (s *sensorTwin) Receive(ctx *actor.Context, msg any) {
	switch m := msg.(type) {
	case obsMsg:
		if s.st.Seen && m.obs.FCnt > s.st.FCnt+1 {
			// Counter gap: frames were transmitted but never arrived.
			s.st.LostFrames += int(m.obs.FCnt-s.st.FCnt) - 1
		}
		s.st.Received++
		s.st.Seen = true
		s.st.LastSeen = m.obs.Time
		s.st.BatteryPct = m.obs.BatteryPct
		s.st.FCnt = m.obs.FCnt
		s.st.LastRSSI = m.obs.RSSI
		if len(m.obs.GatewayIDs) > 0 {
			s.st.LastGateway = m.obs.GatewayIDs[0]
		}
		s.st.BatteryLow = m.obs.BatteryPct < LowBatteryPct
	case statusReq:
		st := s.st
		st.Silent = s.overdue(m.now)
		ctx.Reply(st)
	}
}

// overdue applies the paper's "some cycles, battery-aware" rule.
func (s *sensorTwin) overdue(now time.Time) bool {
	if !s.st.Seen {
		return false // never seen: provisioning, not failure
	}
	expect := s.st.Interval
	if s.st.BatteryLow {
		expect *= 2
	}
	return now.Sub(s.st.LastSeen) > time.Duration(MissedCycles)*expect
}

// gatewayTwin is the digital twin actor for one gateway.
type gatewayTwin struct {
	st       gatewayStatus
	interval time.Duration // expected max quiet period given its sensors
}

func (g *gatewayTwin) Receive(ctx *actor.Context, msg any) {
	switch m := msg.(type) {
	case gwSeenMsg:
		g.st.Seen = true
		g.st.LastSeen = m.t
	case statusReq:
		st := g.st
		st.Down = g.st.Seen && m.now.Sub(g.st.LastSeen) > time.Duration(MissedCycles)*g.interval
		ctx.Reply(st)
	}
}

// backboneTwin watches the TTN/MQTT data path (Fig. 2 stages 3-5).
type backboneTwin struct {
	lastSeen time.Time
	seen     bool
	maxQuiet time.Duration
}

type backboneSeenMsg struct{ t time.Time }
type backboneStatus struct {
	Down     bool
	LastSeen time.Time
}

func (b *backboneTwin) Receive(ctx *actor.Context, msg any) {
	switch m := msg.(type) {
	case backboneSeenMsg:
		b.seen = true
		b.lastSeen = m.t
	case statusReq:
		down := b.seen && m.now.Sub(b.lastSeen) > b.maxQuiet
		ctx.Reply(backboneStatus{Down: down, LastSeen: b.lastSeen})
	}
}

// --- the dataport -----------------------------------------------------

// Config tunes the dataport.
type Config struct {
	// DefaultInterval is the assumed reporting interval for sensors
	// (the paper's deployments report every 5 minutes).
	DefaultInterval time.Duration
	// BackboneQuiet is the longest acceptable silence on the whole
	// data path before a backbone alarm.
	BackboneQuiet time.Duration
	// AskTimeout bounds internal twin queries.
	AskTimeout time.Duration
}

// Dataport is the monitoring application.
type Dataport struct {
	cfg    Config
	system *actor.System
	root   *actor.Ref

	mu           sync.Mutex
	sensors      map[string]*actor.Ref
	gateways     map[string]*actor.Ref
	backbone     *actor.Ref
	alarmState   map[string]AlarmKind // active alarm per subject (dedup)
	lastActivity time.Time
	alarmLog     []Alarm
}

// New creates a dataport.
func New(cfg Config) (*Dataport, error) {
	if cfg.DefaultInterval <= 0 {
		cfg.DefaultInterval = 5 * time.Minute
	}
	if cfg.BackboneQuiet <= 0 {
		cfg.BackboneQuiet = 15 * time.Minute
	}
	if cfg.AskTimeout <= 0 {
		cfg.AskTimeout = 2 * time.Second
	}
	sys := actor.NewSystem("dataport")
	root, err := sys.Spawn("monitor", func() actor.Receiver {
		return actor.ReceiverFunc(func(*actor.Context, any) {})
	})
	if err != nil {
		return nil, err
	}
	d := &Dataport{
		cfg:        cfg,
		system:     sys,
		root:       root,
		sensors:    make(map[string]*actor.Ref),
		gateways:   make(map[string]*actor.Ref),
		alarmState: make(map[string]AlarmKind),
	}
	d.backbone, err = sys.Spawn("backbone", func() actor.Receiver {
		return &backboneTwin{maxQuiet: cfg.BackboneQuiet}
	})
	if err != nil {
		sys.Shutdown()
		return nil, err
	}
	return d, nil
}

// Close shuts the actor system down.
func (d *Dataport) Close() { d.system.Shutdown() }

// RegisterSensor creates the digital twin for a sensor node.
func (d *Dataport) RegisterSensor(id string, pos geo.LatLon, interval time.Duration) error {
	if interval <= 0 {
		interval = d.cfg.DefaultInterval
	}
	ref, err := d.system.Spawn("sensor-"+id, func() actor.Receiver {
		return &sensorTwin{st: sensorStatus{ID: id, Pos: pos, Interval: interval}}
	})
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.sensors[id] = ref
	d.mu.Unlock()
	return nil
}

// RegisterGateway creates the digital twin for a gateway.
func (d *Dataport) RegisterGateway(id string, pos geo.LatLon) error {
	interval := d.cfg.DefaultInterval
	ref, err := d.system.Spawn("gateway-"+id, func() actor.Receiver {
		return &gatewayTwin{st: gatewayStatus{ID: id, Pos: pos}, interval: interval}
	})
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.gateways[id] = ref
	d.mu.Unlock()
	return nil
}

// ObserveUplink feeds one uplink observation to the relevant twins.
// Incoming data "contains meta-data that identifies the originating
// sensor and the gateway from which it was received" (§2.3).
func (d *Dataport) ObserveUplink(obs UplinkObservation) {
	d.mu.Lock()
	sref := d.sensors[obs.DeviceID]
	grefs := make([]*actor.Ref, 0, len(obs.GatewayIDs))
	for _, g := range obs.GatewayIDs {
		if ref, ok := d.gateways[g]; ok {
			grefs = append(grefs, ref)
		}
	}
	bref := d.backbone
	d.lastActivity = obs.Time
	d.mu.Unlock()

	if sref != nil {
		sref.Tell(obsMsg{obs})
	}
	for _, g := range grefs {
		g.Tell(gwSeenMsg{t: obs.Time, rssi: obs.RSSI})
	}
	bref.Tell(backboneSeenMsg{t: obs.Time})
}

// ObserveBackbone records a liveness signal for the TTN/MQTT data path
// itself — the "Ping" path in the paper's Fig. 2. The MQTT keepalive or
// a TTN status endpoint provides this in deployment; it lets the
// dataport distinguish "radio side is silent" (gateway/sensor alarms)
// from "the cloud path is down" (backbone alarm).
func (d *Dataport) ObserveBackbone(now time.Time) {
	d.mu.Lock()
	bref := d.backbone
	d.lastActivity = now
	d.mu.Unlock()
	bref.Tell(backboneSeenMsg{t: now})
}

// Heartbeat records dataport liveness for the external watchdog.
func (d *Dataport) Heartbeat(now time.Time) {
	d.mu.Lock()
	d.lastActivity = now
	d.mu.Unlock()
}

// LastActivity returns the dataport's most recent processing time.
func (d *Dataport) LastActivity() time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastActivity
}

// AlarmLog returns all alarms raised so far.
func (d *Dataport) AlarmLog() []Alarm {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Alarm(nil), d.alarmLog...)
}

// Tick evaluates every twin at simulated time now and returns newly
// raised (or recovery) alarms, applying hierarchical grouping.
func (d *Dataport) Tick(now time.Time) ([]Alarm, error) {
	d.Heartbeat(now)
	sensorsSt, gatewaysSt, backboneSt, err := d.collect(now)
	if err != nil {
		return nil, err
	}

	var alarms []Alarm
	raise := func(kind AlarmKind, severity Severity, subject, msg string) {
		d.mu.Lock()
		prev, active := d.alarmState[subject]
		if !active || prev != kind {
			d.alarmState[subject] = kind
			a := Alarm{Time: now, Severity: severity, Kind: kind, Subject: subject, Message: msg}
			alarms = append(alarms, a)
			d.alarmLog = append(d.alarmLog, a)
		}
		d.mu.Unlock()
	}
	clear := func(subject string) {
		d.mu.Lock()
		if _, active := d.alarmState[subject]; active {
			delete(d.alarmState, subject)
			a := Alarm{Time: now, Severity: Info, Kind: AlarmRecovered, Subject: subject, Message: subject + " recovered"}
			alarms = append(alarms, a)
			d.alarmLog = append(d.alarmLog, a)
		}
		d.mu.Unlock()
	}

	// Backbone outage dominates everything: if the whole data path is
	// silent, per-device alarms are meaningless.
	if backboneSt.Down {
		raise(AlarmBackboneDown, Critical, "backbone",
			fmt.Sprintf("no data through TTN/MQTT path since %s", backboneSt.LastSeen.Format(time.RFC3339)))
		return alarms, nil
	}
	clear("backbone")

	// Gateway-level grouping: a down gateway explains the silence of
	// sensors that last reported through it.
	downGateways := map[string]bool{}
	for _, g := range gatewaysSt {
		if g.Down {
			downGateways[g.ID] = true
			raise(AlarmGatewayOutage, Critical, g.ID,
				fmt.Sprintf("gateway %s silent since %s", g.ID, g.LastSeen.Format(time.RFC3339)))
		} else {
			clear(g.ID)
		}
	}

	for _, s := range sensorsSt {
		switch {
		case s.Silent && downGateways[s.LastGateway]:
			// Suppressed: grouped under the gateway outage. Make sure a
			// stale per-sensor alarm doesn't linger.
			d.mu.Lock()
			delete(d.alarmState, s.ID)
			d.mu.Unlock()
		case s.Silent:
			raise(AlarmSensorSilent, Warning, s.ID,
				fmt.Sprintf("sensor %s missed >%d reporting cycles (last seen %s)",
					s.ID, MissedCycles, s.LastSeen.Format(time.RFC3339)))
		case s.Seen && s.BatteryLow:
			raise(AlarmSensorBattery, Warning, s.ID,
				fmt.Sprintf("sensor %s battery %.1f%%", s.ID, s.BatteryPct))
		default:
			clear(s.ID)
		}
	}
	return alarms, nil
}

func (d *Dataport) collect(now time.Time) ([]sensorStatus, []gatewayStatus, backboneStatus, error) {
	d.mu.Lock()
	srefs := make(map[string]*actor.Ref, len(d.sensors))
	for k, v := range d.sensors {
		srefs[k] = v
	}
	grefs := make(map[string]*actor.Ref, len(d.gateways))
	for k, v := range d.gateways {
		grefs[k] = v
	}
	bref := d.backbone
	d.mu.Unlock()

	var sensorsSt []sensorStatus
	for _, ref := range srefs {
		v, err := ref.Ask(statusReq{now}, d.cfg.AskTimeout)
		if err != nil {
			return nil, nil, backboneStatus{}, fmt.Errorf("dataport: sensor twin query: %w", err)
		}
		sensorsSt = append(sensorsSt, v.(sensorStatus))
	}
	sort.Slice(sensorsSt, func(i, j int) bool { return sensorsSt[i].ID < sensorsSt[j].ID })

	var gatewaysSt []gatewayStatus
	for _, ref := range grefs {
		v, err := ref.Ask(statusReq{now}, d.cfg.AskTimeout)
		if err != nil {
			return nil, nil, backboneStatus{}, fmt.Errorf("dataport: gateway twin query: %w", err)
		}
		gatewaysSt = append(gatewaysSt, v.(gatewayStatus))
	}
	sort.Slice(gatewaysSt, func(i, j int) bool { return gatewaysSt[i].ID < gatewaysSt[j].ID })

	bv, err := bref.Ask(statusReq{now}, d.cfg.AskTimeout)
	if err != nil {
		return nil, nil, backboneStatus{}, fmt.Errorf("dataport: backbone twin query: %w", err)
	}
	return sensorsSt, gatewaysSt, bv.(backboneStatus), nil
}
