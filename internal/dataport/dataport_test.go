package dataport

import (
	"testing"
	"time"

	"repro/internal/geo"
)

var (
	gwPos = geo.LatLon{Lat: 63.4305, Lon: 10.3951}
	t0    = time.Date(2017, time.March, 7, 12, 0, 0, 0, time.UTC)
)

func newDataport(t *testing.T) *Dataport {
	t.Helper()
	d, err := New(Config{DefaultInterval: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func obs(dev, gw string, at time.Time, batt float64) UplinkObservation {
	return UplinkObservation{
		DeviceID:   dev,
		GatewayIDs: []string{gw},
		Time:       at,
		BatteryPct: batt,
		RSSI:       -85,
	}
}

// feed sends observations for all devices through a gateway at the
// standard 5-minute cadence for n cycles starting at start. The cloud
// path heartbeat accompanies every cycle (in deployment the MQTT
// keepalive provides it continuously).
func feed(d *Dataport, devs []string, gw string, start time.Time, n int) time.Time {
	ts := start
	for i := 0; i < n; i++ {
		for _, dev := range devs {
			d.ObserveUplink(obs(dev, gw, ts, 80))
		}
		d.ObserveBackbone(ts)
		ts = ts.Add(5 * time.Minute)
	}
	return ts
}

func TestNoAlarmOnHealthyNetwork(t *testing.T) {
	d := newDataport(t)
	d.RegisterGateway("gw1", gwPos)
	d.RegisterSensor("s1", gwPos, 0)
	end := feed(d, []string{"s1"}, "gw1", t0, 10)
	alarms, err := d.Tick(end)
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) != 0 {
		t.Fatalf("healthy network raised alarms: %+v", alarms)
	}
}

func TestSingleMissedUplinkNoAlarm(t *testing.T) {
	// Paper: "a single missing measurement is expected occasionally".
	d := newDataport(t)
	d.RegisterGateway("gw1", gwPos)
	d.RegisterSensor("s1", gwPos, 0)
	end := feed(d, []string{"s1"}, "gw1", t0, 5)
	// One missed cycle: tick at end+5m (gap of ~10m < 3 cycles).
	alarms, err := d.Tick(end.Add(5 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range alarms {
		if a.Kind == AlarmSensorSilent {
			t.Fatalf("one missed uplink should not alarm: %+v", a)
		}
	}
}

func TestSensorSilentAfterMissedCycles(t *testing.T) {
	d := newDataport(t)
	d.RegisterGateway("gw1", gwPos)
	d.RegisterSensor("s1", gwPos, 0)
	d.RegisterSensor("s2", gwPos, 0)
	end := feed(d, []string{"s1", "s2"}, "gw1", t0, 5)
	// s2 keeps reporting; s1 goes quiet.
	ts := end
	for i := 0; i < 6; i++ {
		d.ObserveUplink(obs("s2", "gw1", ts, 80))
		ts = ts.Add(5 * time.Minute)
	}
	alarms, err := d.Tick(ts)
	if err != nil {
		t.Fatal(err)
	}
	var silent []string
	for _, a := range alarms {
		if a.Kind == AlarmSensorSilent {
			silent = append(silent, a.Subject)
		}
	}
	if len(silent) != 1 || silent[0] != "s1" {
		t.Fatalf("expected exactly s1 silent, got %v (all: %+v)", silent, alarms)
	}
}

func TestAlarmDeduplicated(t *testing.T) {
	d := newDataport(t)
	d.RegisterGateway("gw1", gwPos)
	d.RegisterSensor("s1", gwPos, 0)
	end := feed(d, []string{"s1"}, "gw1", t0, 3)
	late := end.Add(time.Hour)
	d.ObserveBackbone(late) // cloud path alive; only the radio side is quiet
	a1, _ := d.Tick(late)
	d.ObserveBackbone(late.Add(5 * time.Minute))
	a2, _ := d.Tick(late.Add(5 * time.Minute))
	if len(a1) != 1 {
		t.Fatalf("first tick should raise one alarm, got %+v", a1)
	}
	if len(a2) != 0 {
		t.Fatalf("repeated tick should not re-raise: %+v", a2)
	}
}

func TestRecoveryEmitsRecoveredAlarm(t *testing.T) {
	d := newDataport(t)
	d.RegisterGateway("gw1", gwPos)
	d.RegisterSensor("s1", gwPos, 0)
	d.RegisterSensor("s2", gwPos, 0) // keeps the gateway demonstrably alive
	end := feed(d, []string{"s1", "s2"}, "gw1", t0, 3)
	late := end.Add(time.Hour)
	d.ObserveUplink(obs("s2", "gw1", late, 80))
	d.Tick(late)
	// Node comes back.
	d.ObserveUplink(obs("s1", "gw1", late.Add(time.Minute), 80))
	alarms, _ := d.Tick(late.Add(2 * time.Minute))
	found := false
	for _, a := range alarms {
		if a.Kind == AlarmRecovered && a.Subject == "s1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected recovery alarm, got %+v", alarms)
	}
}

func TestBatteryAwareExpectation(t *testing.T) {
	// A node that reported low battery halves its frequency; the twin
	// must NOT alarm within the stretched window.
	d := newDataport(t)
	d.RegisterGateway("gw1", gwPos)
	d.RegisterSensor("s1", gwPos, 0)
	d.RegisterSensor("s2", gwPos, 0) // keeps the gateway demonstrably alive
	// Report with low battery.
	d.ObserveUplink(obs("s1", "gw1", t0, 12)) // below 25%
	// 20 minutes later: within 3 × (2×5m) = 30m → no alarm.
	d.ObserveUplink(obs("s2", "gw1", t0.Add(20*time.Minute), 80))
	alarms, _ := d.Tick(t0.Add(20 * time.Minute))
	for _, a := range alarms {
		if a.Kind == AlarmSensorSilent {
			t.Fatalf("battery-aware window violated: %+v", a)
		}
	}
	// 40 minutes later: beyond the stretched window → silent.
	d.ObserveUplink(obs("s2", "gw1", t0.Add(40*time.Minute), 80))
	alarms, _ = d.Tick(t0.Add(40 * time.Minute))
	foundSilent := false
	for _, a := range alarms {
		if a.Kind == AlarmSensorSilent && a.Subject == "s1" {
			foundSilent = true
		}
	}
	if !foundSilent {
		t.Fatalf("silent alarm expected beyond stretched window, got %+v", alarms)
	}
}

func TestBatteryLowAlarm(t *testing.T) {
	d := newDataport(t)
	d.RegisterGateway("gw1", gwPos)
	d.RegisterSensor("s1", gwPos, 0)
	d.ObserveUplink(obs("s1", "gw1", t0, 15))
	alarms, _ := d.Tick(t0.Add(time.Minute))
	found := false
	for _, a := range alarms {
		if a.Kind == AlarmSensorBattery && a.Subject == "s1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected battery alarm, got %+v", alarms)
	}
}

func TestGatewayOutageGroupsSensorAlarms(t *testing.T) {
	// Paper: "a distinction can be drawn between sensor failures versus
	// a gateway outage that would make a set of sensors invisible".
	d := newDataport(t)
	d.RegisterGateway("gw1", gwPos)
	devs := []string{"s1", "s2", "s3", "s4"}
	for _, dev := range devs {
		d.RegisterSensor(dev, gwPos, 0)
	}
	end := feed(d, devs, "gw1", t0, 5)
	// Radio side goes silent simultaneously (gateway failure); the
	// cloud path stays up.
	late := end.Add(time.Hour)
	d.ObserveBackbone(late)
	alarms, err := d.Tick(late)
	if err != nil {
		t.Fatal(err)
	}
	var gw, sensor int
	for _, a := range alarms {
		switch a.Kind {
		case AlarmGatewayOutage:
			gw++
		case AlarmSensorSilent:
			sensor++
		}
	}
	if gw != 1 {
		t.Fatalf("expected 1 gateway alarm, got %d (%+v)", gw, alarms)
	}
	if sensor != 0 {
		t.Fatalf("sensor alarms should be grouped under the gateway outage, got %d", sensor)
	}
}

func TestSensorFailureNotGroupedWhenGatewayAlive(t *testing.T) {
	d := newDataport(t)
	d.RegisterGateway("gw1", gwPos)
	d.RegisterSensor("s1", gwPos, 0)
	d.RegisterSensor("s2", gwPos, 0)
	end := feed(d, []string{"s1", "s2"}, "gw1", t0, 5)
	// s2 keeps the gateway alive; s1 dies.
	ts := end
	for i := 0; i < 12; i++ {
		d.ObserveUplink(obs("s2", "gw1", ts, 80))
		ts = ts.Add(5 * time.Minute)
	}
	alarms, _ := d.Tick(ts)
	var gw, sensor int
	for _, a := range alarms {
		switch a.Kind {
		case AlarmGatewayOutage:
			gw++
		case AlarmSensorSilent:
			sensor++
		}
	}
	if gw != 0 || sensor != 1 {
		t.Fatalf("want 0 gateway + 1 sensor alarm, got %d/%d (%+v)", gw, sensor, alarms)
	}
}

func TestBackboneOutageDominates(t *testing.T) {
	d, err := New(Config{DefaultInterval: 5 * time.Minute, BackboneQuiet: 15 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.RegisterGateway("gw1", gwPos)
	d.RegisterSensor("s1", gwPos, 0)
	end := feed(d, []string{"s1"}, "gw1", t0, 5)
	// Total silence for an hour: backbone alarm only.
	alarms, _ := d.Tick(end.Add(time.Hour))
	if len(alarms) != 1 || alarms[0].Kind != AlarmBackboneDown {
		t.Fatalf("want single backbone alarm, got %+v", alarms)
	}
}

func TestSnapshotGraph(t *testing.T) {
	d := newDataport(t)
	d.RegisterGateway("gw1", gwPos)
	d.RegisterGateway("gw2", geo.Destination(gwPos, 90, 2000))
	d.RegisterSensor("s1", geo.Destination(gwPos, 0, 500), 0)
	d.RegisterSensor("s2", geo.Destination(gwPos, 180, 700), 0)
	d.ObserveUplink(obs("s1", "gw1", t0, 80))
	d.ObserveUplink(obs("s2", "gw2", t0, 15))

	snap, err := d.Snapshot(t0.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Sensors) != 2 || len(snap.Gateways) != 2 {
		t.Fatalf("snapshot sizes: %d sensors %d gateways", len(snap.Sensors), len(snap.Gateways))
	}
	if len(snap.Links) != 2 {
		t.Fatalf("links: %d, want 2", len(snap.Links))
	}
	for _, l := range snap.Links {
		if !l.Live {
			t.Fatalf("fresh link should be live: %+v", l)
		}
	}
	status := map[string]string{}
	for _, s := range snap.Sensors {
		status[s.ID] = s.Status
	}
	if status["s1"] != "ok" || status["s2"] != "battery-low" {
		t.Fatalf("statuses: %v", status)
	}
}

func TestSnapshotPendingBeforeFirstUplink(t *testing.T) {
	d := newDataport(t)
	d.RegisterGateway("gw1", gwPos)
	d.RegisterSensor("s1", gwPos, 0)
	snap, err := d.Snapshot(t0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Sensors[0].Status != "pending" || snap.Gateways[0].Status != "pending" {
		t.Fatalf("unseen devices should be pending: %+v", snap)
	}
	if len(snap.Links) != 0 {
		t.Fatal("no links before first uplink")
	}
}

func TestWatchdog(t *testing.T) {
	d := newDataport(t)
	w := Watchdog{MaxQuiet: 10 * time.Minute}
	if a := w.Check(d, t0); a != nil {
		t.Fatalf("fresh dataport (never active) should not alarm: %+v", a)
	}
	d.Heartbeat(t0)
	if a := w.Check(d, t0.Add(5*time.Minute)); a != nil {
		t.Fatalf("active dataport should not alarm: %+v", a)
	}
	a := w.Check(d, t0.Add(30*time.Minute))
	if a == nil || a.Subject != "dataport" {
		t.Fatalf("stalled dataport should alarm: %+v", a)
	}
}

func TestDuplicateRegistration(t *testing.T) {
	d := newDataport(t)
	if err := d.RegisterSensor("s1", gwPos, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterSensor("s1", gwPos, 0); err == nil {
		t.Fatal("duplicate sensor registration should fail")
	}
}

func TestAlarmLogAccumulates(t *testing.T) {
	d := newDataport(t)
	d.RegisterGateway("gw1", gwPos)
	d.RegisterSensor("s1", gwPos, 0)
	end := feed(d, []string{"s1"}, "gw1", t0, 3)
	d.Tick(end.Add(time.Hour))
	if len(d.AlarmLog()) == 0 {
		t.Fatal("alarm log empty after alarm")
	}
}

func TestSeverityString(t *testing.T) {
	if Info.String() != "info" || Warning.String() != "warning" || Critical.String() != "critical" {
		t.Fatal("severity names wrong")
	}
}

func TestFrameLossTracking(t *testing.T) {
	d := newDataport(t)
	d.RegisterGateway("gw1", gwPos)
	d.RegisterSensor("s1", gwPos, 0)
	send := func(fcnt uint16, at time.Time) {
		o := obs("s1", "gw1", at, 80)
		o.FCnt = fcnt
		d.ObserveUplink(o)
	}
	send(1, t0)
	send(2, t0.Add(5*time.Minute))
	send(5, t0.Add(20*time.Minute)) // frames 3 and 4 lost on air
	send(6, t0.Add(25*time.Minute))
	snap, err := d.Snapshot(t0.Add(26 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	s := snap.Sensors[0]
	if s.Received != 4 {
		t.Fatalf("received = %d, want 4", s.Received)
	}
	if s.LostFrames != 2 {
		t.Fatalf("lost frames = %d, want 2", s.LostFrames)
	}
}
