package mqtt

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Handler receives messages delivered to a subscription.
type Handler func(Message)

// Client is an MQTT 3.1.1 client. Create with Dial; it runs a reader
// goroutine until Close or connection loss.
type Client struct {
	conn     net.Conn
	clientID string

	mu       sync.Mutex
	handlers map[string]Handler // filter -> handler
	pending  map[uint16]chan struct{}
	nextPID  uint16
	closed   bool
	err      error

	writeMu  sync.Mutex
	done     chan struct{}
	wg       sync.WaitGroup
	keepstop chan struct{}
}

// ErrClientClosed is returned by operations on a closed client.
var ErrClientClosed = errors.New("mqtt: client closed")

// DialOptions tune the client connection.
type DialOptions struct {
	// KeepAlive interval; 0 disables client pings.
	KeepAlive time.Duration
	// ConnectTimeout bounds the TCP + CONNECT handshake (default 10 s).
	ConnectTimeout time.Duration
}

// Dial connects to a broker and performs the CONNECT handshake.
func Dial(addr, clientID string, opts DialOptions) (*Client, error) {
	if clientID == "" {
		return nil, errors.New("mqtt: client id required")
	}
	timeout := opts.ConnectTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("mqtt dial: %w", err)
	}

	// CONNECT: protocol "MQTT", level 4, clean session.
	body := appendString(nil, "MQTT")
	body = append(body, 4, 0x02) // level, flags: clean session
	ka := uint16(opts.KeepAlive / time.Second)
	body = appendUint16(body, ka)
	body = appendString(body, clientID)

	conn.SetDeadline(time.Now().Add(timeout))
	if err := WritePacket(conn, Packet{Type: CONNECT, Body: body}); err != nil {
		conn.Close()
		return nil, err
	}
	ack, err := ReadPacket(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("mqtt connack: %w", err)
	}
	if ack.Type != CONNACK || len(ack.Body) < 2 {
		conn.Close()
		return nil, errors.New("mqtt: expected CONNACK")
	}
	if ack.Body[1] != 0 {
		conn.Close()
		return nil, fmt.Errorf("mqtt: connection refused, code %d", ack.Body[1])
	}
	conn.SetDeadline(time.Time{})

	c := &Client{
		conn:     conn,
		clientID: clientID,
		handlers: make(map[string]Handler),
		pending:  make(map[uint16]chan struct{}),
		nextPID:  1,
		done:     make(chan struct{}),
		keepstop: make(chan struct{}),
	}
	c.wg.Add(1)
	go c.readLoop()
	if opts.KeepAlive > 0 {
		c.wg.Add(1)
		go c.pingLoop(opts.KeepAlive)
	}
	return c, nil
}

// ClientID returns the identifier used at CONNECT.
func (c *Client) ClientID() string { return c.clientID }

// Err returns the error that terminated the connection, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close sends DISCONNECT and tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()

	c.writeMu.Lock()
	WritePacket(c.conn, Packet{Type: DISCONNECT})
	c.writeMu.Unlock()
	close(c.keepstop)
	c.conn.Close()
	c.wg.Wait()
	return nil
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil && !c.closed {
		c.err = err
	}
	wasClosed := c.closed
	c.closed = true
	pend := c.pending
	c.pending = map[uint16]chan struct{}{}
	c.mu.Unlock()
	for _, ch := range pend {
		close(ch)
	}
	if !wasClosed {
		close(c.keepstop)
		c.conn.Close()
	}
	select {
	case <-c.done:
	default:
		close(c.done)
	}
}

func (c *Client) readLoop() {
	defer c.wg.Done()
	for {
		pkt, err := ReadPacket(c.conn)
		if err != nil {
			c.fail(err)
			return
		}
		switch pkt.Type {
		case PUBLISH:
			c.dispatch(pkt)
		case PUBACK, SUBACK, UNSUBACK:
			f := &fieldReader{buf: pkt.Body}
			pid := f.uint16()
			c.mu.Lock()
			if ch, ok := c.pending[pid]; ok {
				delete(c.pending, pid)
				close(ch)
			}
			c.mu.Unlock()
		case PINGRESP:
			// keepalive satisfied
		default:
			c.fail(fmt.Errorf("mqtt: unexpected %v from broker", pkt.Type))
			return
		}
	}
}

func (c *Client) dispatch(pkt Packet) {
	qos := (pkt.Flags >> 1) & 0x03
	f := &fieldReader{buf: pkt.Body}
	topic := f.string()
	var pid uint16
	if qos >= 1 {
		pid = f.uint16()
	}
	if f.err != nil {
		return
	}
	payload := append([]byte(nil), f.rest()...)
	if qos == 1 {
		c.writeMu.Lock()
		WritePacket(c.conn, Packet{Type: PUBACK, Body: appendUint16(nil, pid)})
		c.writeMu.Unlock()
	}

	c.mu.Lock()
	var hs []Handler
	for filter, h := range c.handlers {
		if TopicMatches(filter, topic) {
			hs = append(hs, h)
		}
	}
	c.mu.Unlock()
	msg := Message{Topic: topic, Payload: payload, QoS: qos, Retain: pkt.Flags&0x01 != 0}
	for _, h := range hs {
		h(msg)
	}
}

func (c *Client) pingLoop(interval time.Duration) {
	defer c.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.keepstop:
			return
		case <-t.C:
			c.writeMu.Lock()
			err := WritePacket(c.conn, Packet{Type: PINGREQ})
			c.writeMu.Unlock()
			if err != nil {
				c.fail(err)
				return
			}
		}
	}
}

func (c *Client) allocPID() (uint16, chan struct{}, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, nil, ErrClientClosed
	}
	pid := c.nextPID
	c.nextPID++
	if c.nextPID == 0 {
		c.nextPID = 1
	}
	ch := make(chan struct{})
	c.pending[pid] = ch
	return pid, ch, nil
}

// Publish sends an application message. QoS 0 returns after the write;
// QoS 1 waits for the broker's PUBACK (or timeout).
func (c *Client) Publish(topic string, payload []byte, qos byte, retain bool) error {
	if err := ValidateTopicName(topic); err != nil {
		return err
	}
	if qos > 1 {
		return errors.New("mqtt: only QoS 0 and 1 supported")
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	c.mu.Unlock()

	var pid uint16
	var ack chan struct{}
	if qos == 1 {
		var err error
		pid, ack, err = c.allocPID()
		if err != nil {
			return err
		}
	}
	c.writeMu.Lock()
	err := WritePacket(c.conn, buildPublish(topic, payload, qos, retain, pid))
	c.writeMu.Unlock()
	if err != nil {
		c.fail(err)
		return err
	}
	if qos == 1 {
		select {
		case <-ack:
			if e := c.Err(); e != nil {
				return e
			}
			return nil
		case <-time.After(10 * time.Second):
			return errors.New("mqtt: PUBACK timeout")
		}
	}
	return nil
}

// Subscribe registers a handler for a topic filter and waits for the
// broker's SUBACK.
func (c *Client) Subscribe(filter string, qos byte, h Handler) error {
	if err := ValidateTopicFilter(filter); err != nil {
		return err
	}
	if qos > 1 {
		return errors.New("mqtt: only QoS 0 and 1 supported")
	}
	pid, ack, err := c.allocPID()
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.handlers[filter] = h
	c.mu.Unlock()

	body := appendUint16(nil, pid)
	body = appendString(body, filter)
	body = append(body, qos)
	c.writeMu.Lock()
	err = WritePacket(c.conn, Packet{Type: SUBSCRIBE, Flags: 0x02, Body: body})
	c.writeMu.Unlock()
	if err != nil {
		c.fail(err)
		return err
	}
	select {
	case <-ack:
		if e := c.Err(); e != nil {
			return e
		}
		return nil
	case <-time.After(10 * time.Second):
		return errors.New("mqtt: SUBACK timeout")
	}
}

// Unsubscribe removes a subscription.
func (c *Client) Unsubscribe(filter string) error {
	pid, ack, err := c.allocPID()
	if err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.handlers, filter)
	c.mu.Unlock()

	body := appendUint16(nil, pid)
	body = appendString(body, filter)
	c.writeMu.Lock()
	err = WritePacket(c.conn, Packet{Type: UNSUBSCRIBE, Flags: 0x02, Body: body})
	c.writeMu.Unlock()
	if err != nil {
		c.fail(err)
		return err
	}
	select {
	case <-ack:
		return nil
	case <-time.After(10 * time.Second):
		return errors.New("mqtt: UNSUBACK timeout")
	}
}
