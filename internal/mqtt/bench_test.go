package mqtt

import (
	"sync/atomic"
	"testing"
	"time"
)

func benchBroker(b *testing.B) (*Broker, string) {
	b.Helper()
	br := NewBroker()
	addr, err := br.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { br.Close() })
	return br, addr.String()
}

func benchDial(b *testing.B, addr, id string) *Client {
	b.Helper()
	c, err := Dial(addr, id, DialOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

// BenchmarkPublishQoS0 measures fire-and-forget throughput end to end
// (publisher → broker → subscriber) over real TCP.
func BenchmarkPublishQoS0(b *testing.B) {
	_, addr := benchBroker(b)
	sub := benchDial(b, addr, "bench-sub")
	pub := benchDial(b, addr, "bench-pub")
	var got atomic.Int64
	if err := sub.Subscribe("bench/#", 0, func(Message) { got.Add(1) }); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Publish("bench/t", payload, 0, false); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Drain outside the timed region; under heavy QoS0 load the broker
	// may shed messages to a slow subscriber (by design), so this wait
	// is best-effort.
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() < int64(b.N) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	b.ReportMetric(float64(got.Load())/float64(b.N), "delivered-ratio")
}

// BenchmarkPublishQoS1 measures acknowledged publish latency (each
// publish waits for PUBACK).
func BenchmarkPublishQoS1(b *testing.B) {
	_, addr := benchBroker(b)
	pub := benchDial(b, addr, "bench-pub1")
	payload := make([]byte, 256)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Publish("bench/q1", payload, 1, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopicMatch(b *testing.B) {
	filters := []string{"ctt/devices/+/up", "ctt/#", "ctt/devices/node-07/up", "+/+/+/up"}
	topic := "ctt/devices/node-07/up"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range filters {
			TopicMatches(f, topic)
		}
	}
}

func BenchmarkPacketCodec(b *testing.B) {
	pkt := buildPublish("ctt/devices/node-07/up", make([]byte, 256), 1, false, 42)
	buf := make([]byte, 0, 512)
	w := &sliceWriter{buf: buf}
	b.SetBytes(int64(len(pkt.Body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.buf = w.buf[:0]
		if err := WritePacket(w, pkt); err != nil {
			b.Fatal(err)
		}
		r := &sliceReader{buf: w.buf}
		if _, err := ReadPacket(r); err != nil {
			b.Fatal(err)
		}
	}
}

type sliceWriter struct{ buf []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

type sliceReader struct {
	buf []byte
	off int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	n := copy(p, r.buf[r.off:])
	r.off += n
	return n, nil
}
