package mqtt

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"
)

// Message is an application message flowing through the broker.
type Message struct {
	Topic   string
	Payload []byte
	QoS     byte
	Retain  bool
}

// Broker is a standalone MQTT 3.1.1 broker over TCP. The zero value is
// not usable; create one with NewBroker, then Start it.
type Broker struct {
	mu       sync.Mutex
	ln       net.Listener
	sessions map[string]*session // by client ID
	retained map[string]Message  // by topic
	closed   bool
	wg       sync.WaitGroup

	// Logger receives connection-level diagnostics; nil disables.
	Logger *log.Logger

	// stats
	published uint64
	delivered uint64
	dropped   uint64
}

// NewBroker creates a broker (not yet listening).
func NewBroker() *Broker {
	return &Broker{
		sessions: make(map[string]*session),
		retained: make(map[string]Message),
	}
}

// Start begins accepting connections on addr (e.g. "127.0.0.1:0").
// It returns the bound address.
func (b *Broker) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mqtt broker: %w", err)
	}
	b.mu.Lock()
	b.ln = ln
	b.closed = false
	b.mu.Unlock()
	b.wg.Add(1)
	go b.acceptLoop(ln)
	return ln.Addr(), nil
}

// Addr returns the listener address (nil before Start).
func (b *Broker) Addr() net.Addr {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.ln == nil {
		return nil
	}
	return b.ln.Addr()
}

// Close stops the listener and disconnects every session.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	ln := b.ln
	sessions := make([]*session, 0, len(b.sessions))
	for _, s := range b.sessions {
		sessions = append(sessions, s)
	}
	b.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, s := range sessions {
		s.close()
	}
	b.wg.Wait()
	return err
}

// Stats reports message counters: published (received by the broker),
// delivered (fanned out), dropped (undeliverable to a slow session).
func (b *Broker) Stats() (published, delivered, dropped uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.published, b.delivered, b.dropped
}

func (b *Broker) logf(format string, args ...any) {
	if b.Logger != nil {
		b.Logger.Printf(format, args...)
	}
}

func (b *Broker) acceptLoop(ln net.Listener) {
	defer b.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.serve(conn)
		}()
	}
}

// session is one connected client.
type session struct {
	broker   *Broker
	conn     net.Conn
	clientID string
	subs     map[string]byte // filter -> max QoS
	out      chan Packet
	done     chan struct{}
	closeOne sync.Once
	mu       sync.Mutex
	keep     time.Duration
}

func (s *session) close() {
	s.closeOne.Do(func() {
		close(s.done)
		s.conn.Close()
	})
}

func (b *Broker) serve(conn net.Conn) {
	// CONNECT must arrive promptly.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	pkt, err := ReadPacket(conn)
	if err != nil || pkt.Type != CONNECT {
		conn.Close()
		return
	}
	clientID, keepalive, err := parseConnect(pkt)
	if err != nil {
		// 0x02: identifier rejected / malformed
		WritePacket(conn, Packet{Type: CONNACK, Body: []byte{0, 0x02}})
		conn.Close()
		return
	}

	s := &session{
		broker:   b,
		conn:     conn,
		clientID: clientID,
		subs:     make(map[string]byte),
		out:      make(chan Packet, 256),
		done:     make(chan struct{}),
		keep:     keepalive,
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		conn.Close()
		return
	}
	if old, ok := b.sessions[clientID]; ok {
		// MQTT 3.1.1: a second connection with the same client ID
		// disconnects the first.
		old.close()
	}
	b.sessions[clientID] = s
	b.mu.Unlock()

	if err := WritePacket(conn, Packet{Type: CONNACK, Body: []byte{0, 0}}); err != nil {
		b.removeSession(s)
		conn.Close()
		return
	}
	b.logf("mqtt: client %q connected from %s", clientID, conn.RemoteAddr())

	go s.writeLoop()
	s.readLoop()
	b.removeSession(s)
	s.close()
	b.logf("mqtt: client %q disconnected", clientID)
}

func (b *Broker) removeSession(s *session) {
	b.mu.Lock()
	if b.sessions[s.clientID] == s {
		delete(b.sessions, s.clientID)
	}
	b.mu.Unlock()
}

func parseConnect(p Packet) (clientID string, keepalive time.Duration, err error) {
	f := &fieldReader{buf: p.Body}
	proto := f.string()
	level := f.byte()
	flags := f.byte()
	ka := f.uint16()
	cid := f.string()
	if f.err != nil {
		return "", 0, f.err
	}
	if proto != "MQTT" || level != 4 {
		return "", 0, fmt.Errorf("mqtt: unsupported protocol %q level %d", proto, level)
	}
	if flags&0x01 != 0 { // reserved bit must be zero
		return "", 0, errors.New("mqtt: reserved connect flag set")
	}
	if cid == "" {
		return "", 0, errors.New("mqtt: empty client id")
	}
	return cid, time.Duration(ka) * time.Second, nil
}

func (s *session) readLoop() {
	for {
		if s.keep > 0 {
			// Spec: disconnect after 1.5x keepalive without traffic.
			s.conn.SetReadDeadline(time.Now().Add(s.keep + s.keep/2))
		} else {
			s.conn.SetReadDeadline(time.Time{})
		}
		pkt, err := ReadPacket(s.conn)
		if err != nil {
			return
		}
		switch pkt.Type {
		case PUBLISH:
			if err := s.handlePublish(pkt); err != nil {
				return
			}
		case SUBSCRIBE:
			if err := s.handleSubscribe(pkt); err != nil {
				return
			}
		case UNSUBSCRIBE:
			if err := s.handleUnsubscribe(pkt); err != nil {
				return
			}
		case PINGREQ:
			s.send(Packet{Type: PINGRESP})
		case PUBACK:
			// QoS1 delivery ack from the client; this broker does not
			// retransmit, so the ack needs no bookkeeping.
		case DISCONNECT:
			return
		default:
			// Protocol violation: close the network connection.
			return
		}
	}
}

func (s *session) writeLoop() {
	for {
		select {
		case <-s.done:
			return
		case pkt := <-s.out:
			s.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
			if err := WritePacket(s.conn, pkt); err != nil {
				s.close()
				return
			}
		}
	}
}

// send enqueues a packet for the session, dropping if the queue is
// full (slow consumer) — the counter records it.
func (s *session) send(pkt Packet) bool {
	select {
	case s.out <- pkt:
		return true
	case <-s.done:
		return false
	default:
		s.broker.mu.Lock()
		s.broker.dropped++
		s.broker.mu.Unlock()
		return false
	}
}

func (s *session) handlePublish(p Packet) error {
	qos := (p.Flags >> 1) & 0x03
	retain := p.Flags&0x01 != 0
	if qos > 1 {
		return fmt.Errorf("mqtt: QoS %d not supported", qos)
	}
	f := &fieldReader{buf: p.Body}
	topic := f.string()
	var pid uint16
	if qos == 1 {
		pid = f.uint16()
	}
	if f.err != nil {
		return f.err
	}
	if err := ValidateTopicName(topic); err != nil {
		return err
	}
	payload := append([]byte(nil), f.rest()...)

	msg := Message{Topic: topic, Payload: payload, QoS: qos, Retain: retain}
	s.broker.route(msg)

	if retain {
		s.broker.mu.Lock()
		if len(payload) == 0 {
			delete(s.broker.retained, topic) // empty retained payload clears
		} else {
			s.broker.retained[topic] = msg
		}
		s.broker.mu.Unlock()
	}
	if qos == 1 {
		s.send(Packet{Type: PUBACK, Body: appendUint16(nil, pid)})
	}
	return nil
}

// route fans a message out to every matching subscription.
func (b *Broker) route(msg Message) {
	b.mu.Lock()
	b.published++
	targets := make([]*session, 0, 4)
	qoss := make([]byte, 0, 4)
	for _, sess := range b.sessions {
		sess.mu.Lock()
		best, found := byte(0), false
		for filter, q := range sess.subs {
			if TopicMatches(filter, msg.Topic) {
				found = true
				if q > best {
					best = q
				}
			}
		}
		sess.mu.Unlock()
		if found {
			targets = append(targets, sess)
			qoss = append(qoss, best)
		}
	}
	b.mu.Unlock()

	for i, sess := range targets {
		qos := msg.QoS
		if qoss[i] < qos {
			qos = qoss[i]
		}
		if sess.send(buildPublish(msg.Topic, msg.Payload, qos, false, 1)) {
			b.mu.Lock()
			b.delivered++
			b.mu.Unlock()
		}
	}
}

func buildPublish(topic string, payload []byte, qos byte, retain bool, pid uint16) Packet {
	body := appendString(nil, topic)
	if qos > 0 {
		body = appendUint16(body, pid)
	}
	body = append(body, payload...)
	flags := qos << 1
	if retain {
		flags |= 0x01
	}
	return Packet{Type: PUBLISH, Flags: flags, Body: body}
}

func (s *session) handleSubscribe(p Packet) error {
	if p.Flags != 0x02 {
		return errors.New("mqtt: SUBSCRIBE flags must be 0010")
	}
	f := &fieldReader{buf: p.Body}
	pid := f.uint16()
	var filters []string
	var codes []byte
	for f.remaining() > 0 && f.err == nil {
		filter := f.string()
		qos := f.byte()
		if f.err != nil {
			break
		}
		if ValidateTopicFilter(filter) != nil || qos > 1 {
			codes = append(codes, 0x80) // failure
			continue
		}
		s.mu.Lock()
		s.subs[filter] = qos
		s.mu.Unlock()
		filters = append(filters, filter)
		codes = append(codes, qos)
	}
	if f.err != nil {
		return f.err
	}
	if len(codes) == 0 {
		return errors.New("mqtt: SUBSCRIBE with no filters")
	}
	s.send(Packet{Type: SUBACK, Body: append(appendUint16(nil, pid), codes...)})

	// Deliver retained messages matching the new filters.
	s.broker.mu.Lock()
	var retained []Message
	for _, filter := range filters {
		for topic, msg := range s.broker.retained {
			if TopicMatches(filter, topic) {
				retained = append(retained, msg)
			}
		}
	}
	s.broker.mu.Unlock()
	for _, msg := range retained {
		s.send(buildPublish(msg.Topic, msg.Payload, 0, true, 0))
	}
	return nil
}

func (s *session) handleUnsubscribe(p Packet) error {
	f := &fieldReader{buf: p.Body}
	pid := f.uint16()
	for f.remaining() > 0 && f.err == nil {
		filter := f.string()
		if f.err != nil {
			break
		}
		s.mu.Lock()
		delete(s.subs, filter)
		s.mu.Unlock()
	}
	if f.err != nil {
		return f.err
	}
	s.send(Packet{Type: UNSUBACK, Body: appendUint16(nil, pid)})
	return nil
}
