package mqtt

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// startBroker runs a broker on an ephemeral port and tears it down with
// the test.
func startBroker(t *testing.T) (*Broker, string) {
	t.Helper()
	b := NewBroker()
	addr, err := b.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b, addr.String()
}

func dial(t *testing.T, addr, id string) *Client {
	t.Helper()
	c, err := Dial(addr, id, DialOptions{})
	if err != nil {
		t.Fatalf("dial %s: %v", id, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not met in time")
}

func TestRemainingLengthRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 127, 128, 16383, 16384, 2097151, 2097152} {
		enc := encodeRemainingLength(n)
		got, err := decodeRemainingLength(bytes.NewReader(enc))
		if err != nil || got != n {
			t.Fatalf("round trip %d: got %d err %v", n, got, err)
		}
	}
}

func TestRemainingLengthProperty(t *testing.T) {
	f := func(n uint32) bool {
		v := int(n % MaxPacketSize)
		enc := encodeRemainingLength(v)
		got, err := decodeRemainingLength(bytes.NewReader(enc))
		return err == nil && got == v && len(enc) <= 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := Packet{Type: PUBLISH, Flags: 0x03, Body: []byte("hello world")}
	if err := WritePacket(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPacket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != want.Type || got.Flags != want.Flags || !bytes.Equal(got.Body, want.Body) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, want)
	}
}

func TestTopicValidation(t *testing.T) {
	if err := ValidateTopicName("a/b/c"); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTopicName(""); err != ErrEmptyTopic {
		t.Fatalf("empty: %v", err)
	}
	if err := ValidateTopicName("a/+/c"); err != ErrWildcardInTopic {
		t.Fatalf("wildcard: %v", err)
	}
	for _, ok := range []string{"a/b", "+", "#", "a/+/c", "a/b/#", "+/+/#"} {
		if err := ValidateTopicFilter(ok); err != nil {
			t.Errorf("filter %q should be valid: %v", ok, err)
		}
	}
	for _, bad := range []string{"", "a/#/b", "a+/b", "a/b#"} {
		if err := ValidateTopicFilter(bad); err == nil {
			t.Errorf("filter %q should be invalid", bad)
		}
	}
}

func TestTopicMatching(t *testing.T) {
	cases := []struct {
		filter, topic string
		want          bool
	}{
		{"a/b/c", "a/b/c", true},
		{"a/b/c", "a/b/d", false},
		{"a/+/c", "a/b/c", true},
		{"a/+/c", "a/b/d", false},
		{"a/#", "a/b/c/d", true},
		{"a/#", "a", true}, // MQTT 3.1.1 §4.7.1.2: "sport/#" also matches "sport"
		{"#", "anything/at/all", true},
		{"+", "one", true},
		{"+", "one/two", false},
		{"a/b", "a/b/c", false},
		{"a/b/c", "a/b", false},
	}
	for _, c := range cases {
		if got := TopicMatches(c.filter, c.topic); got != c.want {
			t.Errorf("TopicMatches(%q, %q) = %v, want %v", c.filter, c.topic, got, c.want)
		}
	}
}

func TestPublishSubscribeQoS0(t *testing.T) {
	_, addr := startBroker(t)
	sub := dial(t, addr, "sub1")
	pub := dial(t, addr, "pub1")

	var got atomic.Value
	if err := sub.Subscribe("sensors/+/co2", 0, func(m Message) { got.Store(m) }); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("sensors/node7/co2", []byte("415.2"), 0, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return got.Load() != nil })
	m := got.Load().(Message)
	if m.Topic != "sensors/node7/co2" || string(m.Payload) != "415.2" {
		t.Fatalf("got %+v", m)
	}
}

func TestPublishQoS1Acked(t *testing.T) {
	_, addr := startBroker(t)
	sub := dial(t, addr, "subq")
	pub := dial(t, addr, "pubq")

	var count atomic.Int32
	if err := sub.Subscribe("t/q1", 1, func(m Message) { count.Add(1) }); err != nil {
		t.Fatal(err)
	}
	// Publish waits for PUBACK — returning nil means the broker acked.
	if err := pub.Publish("t/q1", []byte("x"), 1, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return count.Load() == 1 })
}

func TestNoDeliveryWithoutSubscription(t *testing.T) {
	_, addr := startBroker(t)
	sub := dial(t, addr, "sub2")
	pub := dial(t, addr, "pub2")

	var n atomic.Int32
	if err := sub.Subscribe("only/this", 0, func(Message) { n.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("other/topic", []byte("x"), 0, false); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("only/this", []byte("y"), 0, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return n.Load() == 1 })
	time.Sleep(50 * time.Millisecond)
	if n.Load() != 1 {
		t.Fatalf("got %d deliveries, want 1", n.Load())
	}
}

func TestRetainedMessage(t *testing.T) {
	_, addr := startBroker(t)
	pub := dial(t, addr, "pub3")
	if err := pub.Publish("status/gw1", []byte("online"), 0, true); err != nil {
		t.Fatal(err)
	}
	// A later subscriber must receive the retained message.
	sub := dial(t, addr, "sub3")
	var got atomic.Value
	if err := sub.Subscribe("status/#", 0, func(m Message) { got.Store(m) }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return got.Load() != nil })
	m := got.Load().(Message)
	if string(m.Payload) != "online" || !m.Retain {
		t.Fatalf("retained delivery wrong: %+v", m)
	}

	// Empty retained payload clears it.
	if err := pub.Publish("status/gw1", nil, 0, true); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	sub2 := dial(t, addr, "sub3b")
	var got2 atomic.Value
	if err := sub2.Subscribe("status/#", 0, func(m Message) { got2.Store(m) }); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got2.Load() != nil {
		t.Fatal("cleared retained message still delivered")
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	_, addr := startBroker(t)
	sub := dial(t, addr, "sub4")
	pub := dial(t, addr, "pub4")

	var n atomic.Int32
	if err := sub.Subscribe("u/t", 0, func(Message) { n.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("u/t", []byte("1"), 0, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return n.Load() == 1 })
	if err := sub.Unsubscribe("u/t"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("u/t", []byte("2"), 0, false); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if n.Load() != 1 {
		t.Fatalf("delivery after unsubscribe: %d", n.Load())
	}
}

func TestMultipleSubscribersFanOut(t *testing.T) {
	_, addr := startBroker(t)
	pub := dial(t, addr, "pub5")
	const nSubs = 5
	var wg sync.WaitGroup
	wg.Add(nSubs)
	var total atomic.Int32
	for i := 0; i < nSubs; i++ {
		c := dial(t, addr, "fan"+string(rune('0'+i)))
		once := sync.Once{}
		if err := c.Subscribe("fan/t", 0, func(Message) {
			total.Add(1)
			once.Do(wg.Done)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Publish("fan/t", []byte("x"), 0, false); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatalf("fan-out incomplete: %d/%d", total.Load(), nSubs)
	}
}

func TestDuplicateClientIDKicksOld(t *testing.T) {
	_, addr := startBroker(t)
	c1 := dial(t, addr, "dup")
	_ = dial(t, addr, "dup") // same id: c1 must be disconnected
	waitFor(t, 2*time.Second, func() bool {
		return c1.Err() != nil
	})
}

func TestBrokerStats(t *testing.T) {
	b, addr := startBroker(t)
	sub := dial(t, addr, "stats-sub")
	pub := dial(t, addr, "stats-pub")
	var n atomic.Int32
	if err := sub.Subscribe("s/#", 0, func(Message) { n.Add(1) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := pub.Publish("s/x", []byte{byte(i)}, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, func() bool { return n.Load() == 10 })
	p, d, _ := b.Stats()
	if p != 10 || d != 10 {
		t.Fatalf("stats published=%d delivered=%d, want 10/10", p, d)
	}
}

func TestClientPublishValidation(t *testing.T) {
	_, addr := startBroker(t)
	c := dial(t, addr, "val")
	if err := c.Publish("bad/+/topic", nil, 0, false); err == nil {
		t.Fatal("wildcard publish should fail")
	}
	if err := c.Publish("t", nil, 2, false); err == nil {
		t.Fatal("QoS 2 should be rejected")
	}
	if err := c.Subscribe("bad/#/x", 0, func(Message) {}); err == nil {
		t.Fatal("bad filter should fail")
	}
}

func TestClientCloseIdempotent(t *testing.T) {
	_, addr := startBroker(t)
	c, err := Dial(addr, "closer", DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("t", nil, 0, false); err != ErrClientClosed {
		t.Fatalf("publish after close: %v", err)
	}
}

func TestKeepAlivePing(t *testing.T) {
	_, addr := startBroker(t)
	c, err := Dial(addr, "ka", DialOptions{KeepAlive: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Survive several keepalive periods with no app traffic: the ping
	// loop must keep the session alive.
	time.Sleep(300 * time.Millisecond)
	if err := c.Publish("ka/ok", []byte("still here"), 0, false); err != nil {
		t.Fatalf("connection died despite keepalive: %v", err)
	}
}

func TestBrokerCloseDisconnectsClients(t *testing.T) {
	b := NewBroker()
	addr, err := b.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr.String(), "bc", DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return c.Err() != nil })
	// Closing again is fine.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHighThroughputQoS0(t *testing.T) {
	_, addr := startBroker(t)
	sub := dial(t, addr, "ht-sub")
	pub := dial(t, addr, "ht-pub")
	const n = 200
	var seen atomic.Int32
	if err := sub.Subscribe("ht/#", 0, func(Message) { seen.Add(1) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := pub.Publish("ht/t", []byte{byte(i)}, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return seen.Load() == n })
}
