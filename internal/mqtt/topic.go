package mqtt

import (
	"errors"
	"strings"
)

// Topic validation and wildcard matching per MQTT 3.1.1 §4.7.
//
// Topic names (in PUBLISH) must not contain wildcards. Topic filters
// (in SUBSCRIBE) may use '+' to match exactly one level and '#' to
// match any number of trailing levels ('#' must be last and occupy a
// whole level).

// Topic errors.
var (
	ErrEmptyTopic        = errors.New("mqtt: empty topic")
	ErrWildcardInTopic   = errors.New("mqtt: wildcard in topic name")
	ErrBadWildcardFilter = errors.New("mqtt: malformed wildcard in topic filter")
)

// ValidateTopicName checks a PUBLISH topic.
func ValidateTopicName(topic string) error {
	if topic == "" {
		return ErrEmptyTopic
	}
	if strings.ContainsAny(topic, "+#") {
		return ErrWildcardInTopic
	}
	return nil
}

// ValidateTopicFilter checks a SUBSCRIBE filter.
func ValidateTopicFilter(filter string) error {
	if filter == "" {
		return ErrEmptyTopic
	}
	levels := strings.Split(filter, "/")
	for i, l := range levels {
		switch {
		case l == "#":
			if i != len(levels)-1 {
				return ErrBadWildcardFilter
			}
		case l == "+":
			// single-level wildcard: fine anywhere
		case strings.ContainsAny(l, "+#"):
			return ErrBadWildcardFilter
		}
	}
	return nil
}

// TopicMatches reports whether a topic name matches a topic filter.
// Assumes both have been validated.
func TopicMatches(filter, topic string) bool {
	fl := strings.Split(filter, "/")
	tl := strings.Split(topic, "/")
	for i, f := range fl {
		if f == "#" {
			return true
		}
		if i >= len(tl) {
			return false
		}
		if f == "+" {
			continue
		}
		if f != tl[i] {
			return false
		}
	}
	return len(fl) == len(tl)
}
