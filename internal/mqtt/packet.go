// Package mqtt implements the subset of MQTT 3.1.1 the CTT backbone
// uses as its event-driven transport (paper §2.1: "Data forwarding and
// cloud sensor management was built through the event-driven MQTT
// communication protocol"). It provides a standalone TCP broker and a
// client, supporting CONNECT/CONNACK, PUBLISH with QoS 0 and 1,
// SUBSCRIBE/UNSUBSCRIBE with + and # wildcards, retained messages,
// keepalive with PINGREQ/PINGRESP, and DISCONNECT.
//
// The wire format follows the MQTT 3.1.1 specification (fixed header
// with variable-length remaining length, UTF-8 strings with 16-bit
// length prefixes), so the pipeline exercises a real protocol over real
// sockets rather than an in-process bus.
package mqtt

import (
	"errors"
	"fmt"
	"io"
)

// PacketType is the MQTT control packet type (high nibble of byte 1).
type PacketType byte

// MQTT 3.1.1 control packet types.
const (
	CONNECT     PacketType = 1
	CONNACK     PacketType = 2
	PUBLISH     PacketType = 3
	PUBACK      PacketType = 4
	SUBSCRIBE   PacketType = 8
	SUBACK      PacketType = 9
	UNSUBSCRIBE PacketType = 10
	UNSUBACK    PacketType = 11
	PINGREQ     PacketType = 12
	PINGRESP    PacketType = 13
	DISCONNECT  PacketType = 14
)

// String names the packet type for logs and errors.
func (t PacketType) String() string {
	switch t {
	case CONNECT:
		return "CONNECT"
	case CONNACK:
		return "CONNACK"
	case PUBLISH:
		return "PUBLISH"
	case PUBACK:
		return "PUBACK"
	case SUBSCRIBE:
		return "SUBSCRIBE"
	case SUBACK:
		return "SUBACK"
	case UNSUBSCRIBE:
		return "UNSUBSCRIBE"
	case UNSUBACK:
		return "UNSUBACK"
	case PINGREQ:
		return "PINGREQ"
	case PINGRESP:
		return "PINGRESP"
	case DISCONNECT:
		return "DISCONNECT"
	default:
		return fmt.Sprintf("UNKNOWN(%d)", byte(t))
	}
}

// Packet is a raw decoded control packet: type, flags (low nibble of
// the first byte) and the variable header + payload bytes.
type Packet struct {
	Type  PacketType
	Flags byte
	Body  []byte
}

// Codec errors.
var (
	ErrMalformedLength = errors.New("mqtt: malformed remaining length")
	ErrPacketTooLarge  = errors.New("mqtt: packet exceeds maximum size")
	ErrTruncated       = errors.New("mqtt: truncated packet")
	ErrBadString       = errors.New("mqtt: malformed UTF-8 string field")
)

// MaxPacketSize bounds accepted packets; sensor uplinks are tiny, so
// 1 MiB is generous and protects the broker from hostile peers.
const MaxPacketSize = 1 << 20

// WritePacket encodes and writes one control packet.
func WritePacket(w io.Writer, p Packet) error {
	if len(p.Body) > MaxPacketSize {
		return ErrPacketTooLarge
	}
	header := []byte{byte(p.Type)<<4 | (p.Flags & 0x0F)}
	header = append(header, encodeRemainingLength(len(p.Body))...)
	if _, err := w.Write(header); err != nil {
		return err
	}
	if len(p.Body) > 0 {
		if _, err := w.Write(p.Body); err != nil {
			return err
		}
	}
	return nil
}

// ReadPacket reads one control packet from the stream.
func ReadPacket(r io.Reader) (Packet, error) {
	var first [1]byte
	if _, err := io.ReadFull(r, first[:]); err != nil {
		return Packet{}, err
	}
	n, err := decodeRemainingLength(r)
	if err != nil {
		return Packet{}, err
	}
	if n > MaxPacketSize {
		return Packet{}, ErrPacketTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Packet{}, ErrTruncated
		}
		return Packet{}, err
	}
	return Packet{
		Type:  PacketType(first[0] >> 4),
		Flags: first[0] & 0x0F,
		Body:  body,
	}, nil
}

// encodeRemainingLength implements the MQTT variable-length encoding
// (7 bits per byte, continuation bit 0x80, up to 4 bytes).
func encodeRemainingLength(n int) []byte {
	var out []byte
	for {
		b := byte(n % 128)
		n /= 128
		if n > 0 {
			b |= 0x80
		}
		out = append(out, b)
		if n == 0 {
			return out
		}
	}
}

func decodeRemainingLength(r io.Reader) (int, error) {
	mult := 1
	val := 0
	for i := 0; i < 4; i++ {
		var b [1]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, ErrTruncated
		}
		val += int(b[0]&0x7F) * mult
		if b[0]&0x80 == 0 {
			return val, nil
		}
		mult *= 128
	}
	return 0, ErrMalformedLength
}

// --- field helpers -------------------------------------------------

func appendString(buf []byte, s string) []byte {
	buf = append(buf, byte(len(s)>>8), byte(len(s)))
	return append(buf, s...)
}

func appendUint16(buf []byte, v uint16) []byte {
	return append(buf, byte(v>>8), byte(v))
}

// fieldReader walks the body of a packet, consuming typed fields.
type fieldReader struct {
	buf []byte
	off int
	err error
}

func (f *fieldReader) string() string {
	if f.err != nil {
		return ""
	}
	if f.off+2 > len(f.buf) {
		f.err = ErrBadString
		return ""
	}
	n := int(f.buf[f.off])<<8 | int(f.buf[f.off+1])
	f.off += 2
	if f.off+n > len(f.buf) {
		f.err = ErrBadString
		return ""
	}
	s := string(f.buf[f.off : f.off+n])
	f.off += n
	return s
}

func (f *fieldReader) uint16() uint16 {
	if f.err != nil {
		return 0
	}
	if f.off+2 > len(f.buf) {
		f.err = ErrTruncated
		return 0
	}
	v := uint16(f.buf[f.off])<<8 | uint16(f.buf[f.off+1])
	f.off += 2
	return v
}

func (f *fieldReader) byte() byte {
	if f.err != nil {
		return 0
	}
	if f.off >= len(f.buf) {
		f.err = ErrTruncated
		return 0
	}
	b := f.buf[f.off]
	f.off++
	return b
}

func (f *fieldReader) rest() []byte {
	if f.err != nil {
		return nil
	}
	return f.buf[f.off:]
}

func (f *fieldReader) remaining() int { return len(f.buf) - f.off }
