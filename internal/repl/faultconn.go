package repl

// FaultConn is the network-link twin of fsio.FaultFS: a net.Conn
// wrapper that injects plan-driven faults — connection resets,
// partial writes, stalls — at chosen operation numbers, so the
// seeded-schedule torture methodology from the disk layer extends to
// the replication link.

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ConnOp identifies one kind of connection operation.
type ConnOp uint8

const (
	ConnRead ConnOp = iota
	ConnWrite
)

func (op ConnOp) String() string {
	if op == ConnRead {
		return "read"
	}
	return "write"
}

// ErrConnReset is the error injected by a Reset fault.
var ErrConnReset = errors.New("repl: injected connection reset")

// ConnFault describes what to inject at one operation.
type ConnFault struct {
	// Err is the error returned to the caller; defaults to
	// ErrConnReset when Reset is set.
	Err error
	// Reset closes the underlying connection first, so the peer
	// observes the failure too.
	Reset bool
	// Partial applies to Write: the first half of the buffer reaches
	// the peer before the error, modeling a torn frame mid-flight.
	Partial bool
	// Stall sleeps before attempting the operation, modeling a hung
	// link (the peer's deadlines decide what happens next).
	Stall time.Duration
}

// ConnPlan decides, for each operation, whether to inject a fault. It
// runs under the FaultConn mutex with a 1-based operation number
// counting every Read and Write, so plan closures may keep private
// state without locking. Returning nil lets the operation through.
type ConnPlan func(op ConnOp, n int64) *ConnFault

// FaultConn wraps a net.Conn and injects faults per its plan. The
// zero plan passes everything through.
type FaultConn struct {
	net.Conn

	mu   sync.Mutex
	plan ConnPlan
	ops  int64
}

// NewFaultConn wraps inner with the given plan (nil = passthrough).
func NewFaultConn(inner net.Conn, plan ConnPlan) *FaultConn {
	return &FaultConn{Conn: inner, plan: plan}
}

func (c *FaultConn) next(op ConnOp) *ConnFault {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops++
	if c.plan == nil {
		return nil
	}
	return c.plan(op, c.ops)
}

func (c *FaultConn) fire(f *ConnFault) error {
	if f.Stall > 0 {
		time.Sleep(f.Stall)
	}
	if f.Reset {
		c.Conn.Close()
	}
	if f.Err != nil {
		return f.Err
	}
	if f.Reset {
		return ErrConnReset
	}
	return nil
}

func (c *FaultConn) Read(p []byte) (int, error) {
	if f := c.next(ConnRead); f != nil {
		if err := c.fire(f); err != nil {
			return 0, err
		}
	}
	return c.Conn.Read(p)
}

func (c *FaultConn) Write(p []byte) (int, error) {
	if f := c.next(ConnWrite); f != nil {
		if f.Partial && len(p) > 1 {
			n, _ := c.Conn.Write(p[:len(p)/2])
			if err := c.fire(f); err != nil {
				return n, err
			}
			return n, ErrConnReset
		}
		if err := c.fire(f); err != nil {
			return 0, err
		}
	}
	return c.Conn.Write(p)
}
