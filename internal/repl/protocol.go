// Package repl implements WAL-streaming replication: a primary-side
// server that snapshots the store and tails the WAL to followers over
// a length-prefixed framed TCP protocol, and a follower that
// bootstraps from the snapshot, applies the live stream through the
// normal batch-append path, and persists its resume position
// atomically with the data it covers (tsdb.AppendRefsAt).
//
// Wire format (all integers little-endian):
//
//	frame: len(4) | type(1) | payload | crc32(4)
//
// len counts everything after itself (type + payload + crc); crc is
// IEEE over type + payload. Frame types:
//
//	hello     (1) C→S: ver(1) | epoch(8) | hasPos(1) | gen(8) | off(8) | key(str)
//	welcome   (2) S→C: ver(1) | epoch(8) | mode(1)           mode: 0 resume, 1 snapshot
//	snapfile  (3) S→C: kind(1) | size(8) | name(str)         kind: 0 wal, 1 block, 2 aux
//	snapdata  (4) S→C: raw file bytes
//	snapend   (5) S→C: gen(8) | off(8)
//	dict      (6) S→C: raw WAL series records (chunked arbitrarily)
//	data      (7) S→C: gen(8) | off(8) | sentNano(8) | raw WAL bytes
//	gen       (8) S→C: gen(8) | base(8)                      log rewritten; dict follows
//	heartbeat (9) S→C: gen(8) | eof(8) | sentNano(8)
//	error    (10) S→C: code(1) | msg(str)
//
// str is a 16-bit length prefix + bytes (the WAL's string codec). The
// payload of data/dict frames is a byte range of the primary's WAL v2
// file — records keep their own CRCs — and may split records at
// either end; the follower reassembles.
package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"time"
)

const (
	protoVersion = 1

	// maxFrame bounds one frame's post-length size; data chunks are
	// far smaller (256 KiB), so anything near the cap is a protocol
	// violation, not load.
	maxFrame = 8 << 20
)

const (
	fHello     = 1
	fWelcome   = 2
	fSnapFile  = 3
	fSnapData  = 4
	fSnapEnd   = 5
	fDict      = 6
	fData      = 7
	fGen       = 8
	fHeartbeat = 9
	fError     = 10
)

const (
	modeResume   = 0
	modeSnapshot = 1
)

const (
	snapKindWAL   = 0
	snapKindBlock = 1
	snapKindAux   = 2
)

// Error codes carried by fError frames.
const (
	codeFenced   = 1 // peer epoch ahead of ours: refuse to serve a newer era
	codeResync   = 2 // position not servable: re-bootstrap from snapshot
	codeAuth     = 3
	codeShutdown = 4
	codeProto    = 5
)

var errFrameTooLarge = errors.New("repl: frame exceeds size limit")
var errFrameCorrupt = errors.New("repl: frame crc mismatch")

// RemoteError is an fError frame surfaced as a Go error.
type RemoteError struct {
	Code byte
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("repl: remote error %d: %s", e.Code, e.Msg)
}

// IsFenced reports whether err is a remote epoch-fencing refusal.
func IsFenced(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == codeFenced
}

// IsResync reports whether err demands a snapshot re-bootstrap.
func IsResync(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == codeResync
}

// writeFrame sends one frame under a fresh write deadline. buf is a
// reusable scratch buffer returned for the next call.
func writeFrame(conn net.Conn, buf []byte, timeout time.Duration, typ byte, payload []byte) ([]byte, error) {
	n := 1 + len(payload) + 4
	if n > maxFrame {
		return buf, errFrameTooLarge
	}
	buf = buf[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = append(buf, typ)
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(buf[4:])
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	if timeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return buf, err
		}
	}
	_, err := conn.Write(buf)
	return buf, err
}

// readFrame reads one frame. The returned payload aliases an internal
// allocation owned by the caller. An fError frame is decoded and
// returned as *RemoteError.
func readFrame(br *bufio.Reader) (typ byte, payload []byte, err error) {
	var lenb [4]byte
	if _, err := io.ReadFull(br, lenb[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n < 5 || n > maxFrame {
		return 0, nil, errFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return 0, nil, err
	}
	crc := binary.LittleEndian.Uint32(body[n-4:])
	if crc32.ChecksumIEEE(body[:n-4]) != crc {
		return 0, nil, errFrameCorrupt
	}
	typ, payload = body[0], body[1:n-4]
	if typ == fError {
		code, msg := byte(0), ""
		if len(payload) >= 1 {
			code = payload[0]
			if s, _, err := readStr(payload, 1); err == nil {
				msg = s
			}
		}
		return typ, payload, &RemoteError{Code: code, Msg: msg}
	}
	return typ, payload, nil
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func readStr(p []byte, off int) (string, int, error) {
	if off+2 > len(p) {
		return "", off, errFrameCorrupt
	}
	n := int(binary.LittleEndian.Uint16(p[off:]))
	off += 2
	if off+n > len(p) {
		return "", off, errFrameCorrupt
	}
	return string(p[off : off+n]), off + n, nil
}

// sendError best-effort ships an fError before the caller closes the
// connection.
func sendError(conn net.Conn, timeout time.Duration, code byte, msg string) {
	payload := append([]byte{code}, appendStr(nil, msg)...)
	_, _ = writeFrame(conn, nil, timeout, fError, payload)
}
