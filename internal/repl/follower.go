package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tsdb"
	"repro/internal/tsdb/fsio"
)

// DialFunc opens the replication link; tests wrap the result in a
// FaultConn.
type DialFunc func(addr string) (net.Conn, error)

func defaultDial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 5*time.Second)
}

// walName mirrors the store's WAL file name; the wire carries the name
// too, but the follower never trusts it beyond validation.
const walName = "tsdb.wal"

var errResyncNeeded = errors.New("repl: primary demands snapshot re-sync")

// BootstrapConfig parameterizes the pre-open bootstrap handshake.
type BootstrapConfig struct {
	Dir     string
	Primary string
	Key     string
	Dial    DialFunc
	FS      fsio.FS
	Logger  *slog.Logger
	// Timeout bounds each handshake/transfer read (default 30s).
	Timeout time.Duration
}

// BootstrapResult is what Bootstrap leaves behind: a data directory
// ready for tsdb.Open, the position to commit once the DB is up, and —
// when the primary answered — the still-open session for the follower
// loop to consume (the stream continues on the same connection).
type BootstrapResult struct {
	Pos    tsdb.ReplPos
	HasPos bool
	// Snapshot reports that the directory was wiped and re-seeded from
	// the primary (Pos must be committed via CommitReplPos after open).
	Snapshot bool
	// Offline reports that the primary was unreachable but the local
	// directory is resumable: the follower starts serving stale reads
	// and keeps dialing in the background.
	Offline bool

	sess *session
}

// session is a handshaken connection whose next frames are stream
// frames (dict/data/...). The bufio reader must travel with the conn:
// it may already hold buffered stream bytes.
type session struct {
	conn net.Conn
	br   *bufio.Reader
}

// Bootstrap prepares dir for follower duty before the DB is opened. A
// resumable directory (durable position, same epoch) is kept and the
// primary asked to resume; otherwise the directory is wiped and
// re-seeded from a primary snapshot. A fenced refusal (this node has
// seen a newer epoch than the primary — the operator pointed a
// promoted node at a stale primary) is a hard error. An unreachable
// primary is fatal only when the directory is not resumable.
func Bootstrap(cfg BootstrapConfig) (*BootstrapResult, error) {
	if cfg.FS == nil {
		cfg.FS = fsio.OS
	}
	if cfg.Dial == nil {
		cfg.Dial = defaultDial
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}

	pos, resumable := tsdb.ReadWALReplState(cfg.Dir, cfg.FS)
	offline := func(err error) (*BootstrapResult, error) {
		if !resumable {
			return nil, fmt.Errorf("repl: bootstrap needs a reachable primary (no resumable local state): %w", err)
		}
		cfg.Logger.Warn("repl bootstrap: primary unreachable, starting offline from local state", "err", err)
		return &BootstrapResult{Pos: pos, HasPos: true, Offline: true}, nil
	}

	conn, err := cfg.Dial(cfg.Primary)
	if err != nil {
		return offline(err)
	}
	br := bufio.NewReaderSize(conn, 256<<10)
	epoch, mode, err := handshake(conn, br, cfg.Timeout, cfg.Key, pos, resumable)
	if err != nil {
		conn.Close()
		if IsFenced(err) {
			return nil, fmt.Errorf("repl: bootstrap refused: %w (re-seed this node or point it at the current primary)", err)
		}
		return offline(err)
	}
	if mode == modeResume {
		return &BootstrapResult{Pos: pos, HasPos: true, sess: &session{conn: conn, br: br}}, nil
	}

	// Snapshot mode: wipe whatever is local and receive the primary's
	// files verbatim. Their own CRCs (block trailers, WAL records)
	// vouch for content; the frame CRCs vouched for transit.
	if err := wipeDataDir(cfg.Dir, cfg.FS); err != nil {
		conn.Close()
		return nil, err
	}
	snapPos, err := receiveSnapshot(cfg, conn, br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("repl: snapshot bootstrap: %w", err)
	}
	snapPos.Epoch = epoch
	cfg.Logger.Info("repl bootstrap: snapshot received", "gen", snapPos.Gen, "off", snapPos.Off, "epoch", epoch)
	return &BootstrapResult{Pos: snapPos, HasPos: true, Snapshot: true, sess: &session{conn: conn, br: br}}, nil
}

// handshake sends hello and reads welcome on an open connection.
func handshake(conn net.Conn, br *bufio.Reader, timeout time.Duration, key string, pos tsdb.ReplPos, resumable bool) (epoch uint64, mode byte, err error) {
	h := helloMsg{ver: protoVersion, key: key}
	if resumable {
		h.hasPos, h.epoch, h.gen, h.off = true, pos.Epoch, pos.Gen, pos.Off
	}
	if _, err = writeFrame(conn, nil, timeout, fHello, encodeHello(h)); err != nil {
		return 0, 0, err
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	typ, payload, err := readFrame(br)
	if err != nil {
		return 0, 0, err
	}
	if typ != fWelcome {
		return 0, 0, fmt.Errorf("repl: expected welcome, got frame type %d", typ)
	}
	epoch, mode, err = parseWelcome(payload)
	if err != nil {
		return 0, 0, err
	}
	if resumable && mode == modeResume && epoch != pos.Epoch {
		return 0, 0, fmt.Errorf("repl: resume welcome with epoch %d != ours %d", epoch, pos.Epoch)
	}
	return epoch, mode, nil
}

// wipeDataDir removes the store files a snapshot replaces: the WAL,
// the block directory tree, and known aux state. Unknown files are
// left alone.
func wipeDataDir(dir string, fs fsio.FS) error {
	for _, name := range []string{walName, "rollup.state"} {
		if err := fs.Remove(filepath.Join(dir, name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("repl: wipe %s: %w", name, err)
		}
	}
	blocks := filepath.Join(dir, "blocks")
	ents, err := fs.ReadDir(blocks)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	for _, e := range ents {
		if e.IsDir() {
			continue // the block layer keeps a flat dir; leave surprises alone
		}
		if err := fs.Remove(filepath.Join(blocks, e.Name())); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("repl: wipe block %s: %w", e.Name(), err)
		}
	}
	return fs.SyncDir(blocks)
}

func validSnapName(name string) bool {
	return name != "" && name != "." && name != ".." &&
		!strings.ContainsAny(name, "/\\") && !strings.Contains(name, "..")
}

// receiveSnapshot consumes snapfile/snapdata frames until snapend,
// writing and fsyncing each file, then fsyncing the directories.
func receiveSnapshot(cfg BootstrapConfig, conn net.Conn, br *bufio.Reader) (tsdb.ReplPos, error) {
	blocks := filepath.Join(cfg.Dir, "blocks")
	if err := cfg.FS.MkdirAll(blocks, 0o755); err != nil {
		return tsdb.ReplPos{}, err
	}
	var cur fsio.File
	var curName string
	var remaining int64
	closeCur := func() error {
		if cur == nil {
			return nil
		}
		if remaining != 0 {
			cur.Close()
			return fmt.Errorf("short snapshot file %s: %d bytes missing", curName, remaining)
		}
		if err := cur.Sync(); err != nil {
			cur.Close()
			return err
		}
		err := cur.Close()
		cur = nil
		return err
	}
	defer func() {
		if cur != nil {
			cur.Close()
		}
	}()

	for {
		conn.SetReadDeadline(time.Now().Add(cfg.Timeout))
		typ, payload, err := readFrame(br)
		if err != nil {
			return tsdb.ReplPos{}, err
		}
		switch typ {
		case fSnapFile:
			if err := closeCur(); err != nil {
				return tsdb.ReplPos{}, err
			}
			if len(payload) < 1+8+2 {
				return tsdb.ReplPos{}, errFrameCorrupt
			}
			kind := payload[0]
			size := int64(binary.LittleEndian.Uint64(payload[1:]))
			name, _, err := readStr(payload, 9)
			if err != nil {
				return tsdb.ReplPos{}, err
			}
			if size < 0 || !validSnapName(name) {
				return tsdb.ReplPos{}, fmt.Errorf("bad snapshot file %q size %d", name, size)
			}
			var path string
			switch kind {
			case snapKindWAL:
				path = filepath.Join(cfg.Dir, walName)
			case snapKindBlock:
				path = filepath.Join(blocks, name)
			case snapKindAux:
				path = filepath.Join(cfg.Dir, name)
			default:
				return tsdb.ReplPos{}, fmt.Errorf("unknown snapshot kind %d", kind)
			}
			if cur, err = cfg.FS.Create(path); err != nil {
				return tsdb.ReplPos{}, err
			}
			curName, remaining = name, size
		case fSnapData:
			if cur == nil {
				return tsdb.ReplPos{}, errors.New("snapdata before snapfile")
			}
			if int64(len(payload)) > remaining {
				return tsdb.ReplPos{}, fmt.Errorf("snapshot file %s overran declared size", curName)
			}
			if _, err := cur.Write(payload); err != nil {
				return tsdb.ReplPos{}, err
			}
			remaining -= int64(len(payload))
		case fSnapEnd:
			if err := closeCur(); err != nil {
				return tsdb.ReplPos{}, err
			}
			if len(payload) != 16 {
				return tsdb.ReplPos{}, errFrameCorrupt
			}
			if err := cfg.FS.SyncDir(blocks); err != nil {
				return tsdb.ReplPos{}, err
			}
			if err := cfg.FS.SyncDir(cfg.Dir); err != nil {
				return tsdb.ReplPos{}, err
			}
			return tsdb.ReplPos{
				Gen: binary.LittleEndian.Uint64(payload),
				Off: int64(binary.LittleEndian.Uint64(payload[8:])),
			}, nil
		default:
			return tsdb.ReplPos{}, fmt.Errorf("unexpected frame type %d during snapshot", typ)
		}
	}
}

// FollowerConfig configures the live-stream apply loop.
type FollowerConfig struct {
	DB      *tsdb.DB
	Primary string
	Key     string
	Dial    DialFunc
	Logger  *slog.Logger
	// Heartbeat is the primary's cadence; reads time out after 4x this
	// (default 1s).
	Heartbeat time.Duration
	// MinBackoff/MaxBackoff bound the capped-exponential reconnect
	// schedule (defaults 100ms / 5s).
	MinBackoff time.Duration
	MaxBackoff time.Duration
}

// Follower consumes the replication stream and applies it through the
// DB's normal batch path, reconnecting with capped-exponential backoff
// and resuming from the durable position.
type Follower struct {
	cfg FollowerConfig

	startOnce sync.Once
	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{}

	mu   sync.Mutex
	conn net.Conn

	connected     atomic.Bool
	resync        atomic.Bool
	lastFrameNano atomic.Int64
	bytesIn       atomic.Uint64
}

// NewFollower builds a follower; Start begins streaming.
func NewFollower(cfg FollowerConfig) *Follower {
	if cfg.Dial == nil {
		cfg.Dial = defaultDial
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.MinBackoff <= 0 {
		cfg.MinBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	return &Follower{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
}

// Start runs the apply loop in the background, consuming boot's open
// session first when present (boot may be nil or offline).
func (f *Follower) Start(boot *BootstrapResult) {
	var sess *session
	if boot != nil {
		sess = boot.sess
	}
	f.startOnce.Do(func() {
		go f.run(sess)
	})
}

// Close stops the loop and waits for it.
func (f *Follower) Close() {
	f.closeOnce.Do(func() {
		close(f.stop)
		f.mu.Lock()
		if f.conn != nil {
			f.conn.Close()
		}
		f.mu.Unlock()
	})
	<-f.done
}

// Promote stops replication and flips the DB into a writable primary
// under a freshly fenced epoch. Returns the new epoch.
func (f *Follower) Promote() (uint64, error) {
	f.Close()
	epoch := f.cfg.DB.ReplEpoch() + 1
	pos, err := f.cfg.DB.DetachReplica(epoch)
	if err != nil {
		return 0, err
	}
	return pos.Epoch, nil
}

// FollowerStats is a point-in-time snapshot for /metrics and /healthz.
type FollowerStats struct {
	Connected bool
	// ResyncRequired: the primary revoked our position mid-run; a
	// restart (which re-bootstraps via snapshot) is needed.
	ResyncRequired bool
	// LagSeconds is now minus the primary clock stamp on the last
	// frame; negative clock skew clamps to 0. Meaningless (-1) before
	// any frame arrived.
	LagSeconds float64
	BytesIn    uint64
	Epoch      uint64
}

// Stats reports the follower's live state.
func (f *Follower) Stats() FollowerStats {
	st := FollowerStats{
		Connected:      f.connected.Load(),
		ResyncRequired: f.resync.Load(),
		BytesIn:        f.bytesIn.Load(),
		Epoch:          f.cfg.DB.ReplEpoch(),
		LagSeconds:     -1,
	}
	if last := f.lastFrameNano.Load(); last > 0 {
		lag := time.Duration(time.Now().UnixNano() - last)
		if lag < 0 {
			lag = 0
		}
		st.LagSeconds = lag.Seconds()
	}
	return st
}

func (f *Follower) run(sess *session) {
	defer close(f.done)
	backoff := f.cfg.MinBackoff
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		if sess == nil {
			conn, err := f.cfg.Dial(f.cfg.Primary)
			if err == nil {
				f.setConn(conn)
				sess = &session{conn: conn, br: bufio.NewReaderSize(conn, 256<<10)}
				if err = f.handshakeLive(sess); err != nil {
					f.setConn(nil)
					conn.Close()
					sess = nil
				}
			}
			if err != nil {
				if f.noteTerminal(err) {
					backoff = f.cfg.MaxBackoff
				}
				if !sleepCtx(f.stop, jitter(backoff)) {
					return
				}
				backoff *= 2
				if backoff > f.cfg.MaxBackoff {
					backoff = f.cfg.MaxBackoff
				}
				continue
			}
		}
		backoff = f.cfg.MinBackoff
		err := f.stream(sess)
		sess = nil
		select {
		case <-f.stop:
			return
		default:
		}
		if err != nil && !errors.Is(err, io.EOF) {
			f.cfg.Logger.Warn("repl stream ended", "err", err)
		}
		if f.noteTerminal(err) {
			backoff = f.cfg.MaxBackoff
		}
		if !sleepCtx(f.stop, jitter(backoff)) {
			return
		}
	}
}

// noteTerminal classifies errors that persist until operator action —
// a resync demand or an epoch fence — whichever path raised them (the
// stream or a reconnect handshake, where a snapshot answer means the
// primary no longer holds our position). Reports whether to back off
// to the cap.
func (f *Follower) noteTerminal(err error) bool {
	switch {
	case errors.Is(err, errResyncNeeded) || IsResync(err):
		// Terminal until restart: wiping a live DB out from under
		// readers is not survivable in-process. Keep serving stale
		// reads; flag it on /healthz; retry slowly in case the
		// primary's answer changes (e.g. it was mid-recovery).
		if !f.resync.Swap(true) {
			f.cfg.Logger.Warn("repl: primary demands snapshot re-sync; restart this process to re-seed")
		}
		return true
	case IsFenced(err):
		f.cfg.Logger.Error("repl: fenced by primary; this node has a newer epoch — re-seed or re-point it")
		return true
	}
	return false
}

// handshakeLive re-handshakes a mid-run reconnect. A snapshot answer
// here is a resync demand: the in-process store cannot be re-seeded.
func (f *Follower) handshakeLive(sess *session) error {
	pos, ok := f.cfg.DB.ReplPosition()
	if !ok || pos.Detached {
		return errors.New("repl: follower position missing or detached")
	}
	_, mode, err := handshake(sess.conn, sess.br, 10*time.Second, f.cfg.Key, pos, true)
	if err != nil {
		return err
	}
	if mode != modeResume {
		return errResyncNeeded
	}
	f.resync.Store(false)
	return nil
}

// setConn registers the live connection so Close can sever it. Close
// signals f.stop *before* it takes f.mu, so a registration that
// slipped past Close's own conn-close (the conn was dialed but not yet
// registered at that instant) is guaranteed to observe the closed stop
// channel here and severs the conn itself — otherwise a healthy,
// heartbeating stream would never error and Close would wait on
// f.done forever.
func (f *Follower) setConn(conn net.Conn) {
	f.mu.Lock()
	f.conn = conn
	f.mu.Unlock()
	if conn != nil {
		select {
		case <-f.stop:
			conn.Close()
		default:
		}
	}
}

// stream consumes one session until error, applying frames.
func (f *Follower) stream(sess *session) error {
	f.setConn(sess.conn)
	defer func() {
		f.setConn(nil)
		sess.conn.Close()
		f.connected.Store(false)
	}()
	f.connected.Store(true)

	pos, ok := f.cfg.DB.ReplPosition()
	if !ok {
		return errors.New("repl: no committed position to stream from")
	}
	dec := newRecDecoder(f.cfg.DB)
	readTimeout := 4 * f.cfg.Heartbeat
	for {
		sess.conn.SetReadDeadline(time.Now().Add(readTimeout))
		typ, payload, err := readFrame(sess.br)
		if err != nil {
			return err
		}
		f.bytesIn.Add(uint64(len(payload)))
		switch typ {
		case fDict:
			if err := dec.feedDict(payload); err != nil {
				return err
			}
		case fData:
			if len(payload) < 24 {
				return errFrameCorrupt
			}
			gen := binary.LittleEndian.Uint64(payload)
			off := int64(binary.LittleEndian.Uint64(payload[8:]))
			sent := int64(binary.LittleEndian.Uint64(payload[16:]))
			if gen != pos.Gen || off != pos.Off+int64(len(dec.part)) {
				return fmt.Errorf("repl: stream position mismatch: frame %d/%d, applied %d/%d(+%d)",
					gen, off, pos.Gen, pos.Off, len(dec.part))
			}
			consumed, err := dec.feed(payload[24:])
			if err != nil {
				return err
			}
			f.lastFrameNano.Store(sent)
			if consumed == 0 {
				continue
			}
			next := pos
			next.Off += consumed
			if len(dec.batch) > 0 {
				res := f.cfg.DB.AppendRefsAt(dec.batch, next)
				if len(res.Errors) > 0 || res.Stored != len(dec.batch) {
					return fmt.Errorf("repl: apply failed: stored %d/%d: %v", res.Stored, len(dec.batch), firstErr(res))
				}
				dec.batch = dec.batch[:0]
			}
			// Skip-only advances (flush markers, upstream positions)
			// move the in-memory cursor; the durable position rides
			// with the next real batch. A crash in between replays the
			// skip records — which skip again.
			pos = next
		case fGen:
			if len(payload) != 16 {
				return errFrameCorrupt
			}
			if len(dec.part) > 0 {
				return errors.New("repl: gen switch inside a partial record")
			}
			pos.Gen = binary.LittleEndian.Uint64(payload)
			pos.Off = int64(binary.LittleEndian.Uint64(payload[8:]))
			dec.reset() // new file, new fid namespace; dict follows
		case fHeartbeat:
			if len(payload) != 24 {
				return errFrameCorrupt
			}
			f.lastFrameNano.Store(int64(binary.LittleEndian.Uint64(payload[16:])))
		default:
			return fmt.Errorf("repl: unexpected frame type %d in stream", typ)
		}
	}
}

func firstErr(res tsdb.BatchResult) error {
	if len(res.Errors) > 0 {
		return res.Errors[0]
	}
	return nil
}

func jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int63n(int64(d)/2+1))
}

// sleepCtx sleeps d unless stop closes first; reports whether to keep
// running.
func sleepCtx(stop <-chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-stop:
		return false
	case <-t.C:
		return true
	}
}

// recDecoder reassembles WAL records from stream chunks and turns them
// into interned batches. Frame boundaries are arbitrary: a record may
// span fData frames (part buffers the tail), but never a gen switch.
type recDecoder struct {
	db    *tsdb.DB
	fids  map[uint32]*tsdb.Ref
	part  []byte
	batch []tsdb.RefPoint
}

func newRecDecoder(db *tsdb.DB) *recDecoder {
	return &recDecoder{db: db, fids: make(map[uint32]*tsdb.Ref)}
}

func (d *recDecoder) reset() {
	d.fids = make(map[uint32]*tsdb.Ref)
	d.part = d.part[:0]
	d.batch = d.batch[:0]
}

// feedDict consumes dictionary bytes: series records only, no offset
// accounting (the dict is a replay of an earlier file region).
func (d *recDecoder) feedDict(data []byte) error {
	if _, err := d.feed(data); err != nil {
		return err
	}
	if len(d.batch) > 0 {
		return errors.New("repl: point records in dictionary")
	}
	return nil
}

// feed consumes complete records from part+data, interning series and
// collecting points into batch. It returns how many stream bytes are
// now fully consumed (the offset advance those records cover); the
// incomplete tail stays buffered.
func (d *recDecoder) feed(data []byte) (consumed int64, err error) {
	prev := len(d.part)
	d.part = append(d.part, data...)
	p := d.part
	total := 0
	for {
		if len(p)-total < 8 {
			break
		}
		n := binary.LittleEndian.Uint32(p[total+4:])
		if n == 0 || int64(n) > maxFrame {
			return 0, fmt.Errorf("repl: implausible wal record length %d", n)
		}
		if len(p)-total < 8+int(n) {
			break
		}
		rec := p[total : total+8+int(n)]
		if crc32.ChecksumIEEE(rec[8:]) != binary.LittleEndian.Uint32(rec) {
			return 0, errors.New("repl: wal record crc mismatch in stream")
		}
		if err := d.apply(rec[8:]); err != nil {
			return 0, err
		}
		total += 8 + int(n)
	}
	d.part = append(d.part[:0], p[total:]...)
	if total == 0 {
		return 0, nil
	}
	return int64(total - prev), nil
}

// apply dispatches one verified record payload.
func (d *recDecoder) apply(payload []byte) error {
	switch payload[0] {
	case 1: // series
		return d.applySeries(payload[1:])
	case 2: // points
		return d.applyPoints(payload[1:])
	case 3: // block marker: flush-local, never meaningful on a replica
		return errors.New("repl: unexpected block record in stream")
	case 4, 5, 6: // flush marker, replpos, gen: primary-local bookkeeping
		return nil
	default:
		return fmt.Errorf("repl: unknown wal record type %d in stream", payload[0])
	}
}

func (d *recDecoder) applySeries(p []byte) error {
	if len(p) < 4 {
		return errFrameCorrupt
	}
	fid := binary.LittleEndian.Uint32(p)
	metric, off, err := readStr(p, 4)
	if err != nil {
		return err
	}
	if off+2 > len(p) {
		return errFrameCorrupt
	}
	nTags := int(binary.LittleEndian.Uint16(p[off:]))
	off += 2
	tags := make(map[string]string, nTags)
	for i := 0; i < nTags; i++ {
		var k, v string
		if k, off, err = readStr(p, off); err != nil {
			return err
		}
		if v, off, err = readStr(p, off); err != nil {
			return err
		}
		tags[k] = v
	}
	ref, err := d.db.Intern(metric, tags)
	if err != nil {
		return fmt.Errorf("repl: intern %s: %w", metric, err)
	}
	d.fids[fid] = ref
	return nil
}

func (d *recDecoder) applyPoints(p []byte) error {
	if len(p) < 2 {
		return errFrameCorrupt
	}
	n := int(binary.LittleEndian.Uint16(p))
	if len(p) != 2+n*20 {
		return errFrameCorrupt
	}
	off := 2
	for i := 0; i < n; i++ {
		fid := binary.LittleEndian.Uint32(p[off:])
		ref, ok := d.fids[fid]
		if !ok {
			return fmt.Errorf("repl: point for unannounced series fid %d", fid)
		}
		d.batch = append(d.batch, tsdb.RefPoint{
			Ref: ref,
			Point: tsdb.Point{
				Timestamp: int64(binary.LittleEndian.Uint64(p[off+4:])),
				Value:     math.Float64frombits(binary.LittleEndian.Uint64(p[off+12:])),
			},
		})
		off += 20
	}
	return nil
}
