package repl

// Link-fault torture: a primary ingesting continuously while the
// replication link fails on a seeded schedule — resets, partial
// writes, stalls — interleaved with WAL rewrites on the primary and a
// full follower restart. The invariants, per seed:
//
//  1. Once the link heals, the follower reaches exact parity: every
//     series' point set is byte-identical to the primary's (so no
//     acknowledged point is missing after any number of reconnects).
//  2. No record is applied twice (a duplicate would surface as extra
//     points in the exact per-series comparison).
//  3. Follower restarts mid-run resume from the durable position and
//     never fail fatally.
//
// CTT_REPL_TORTURE overrides the seed count; -short caps the depth.

import (
	"math/rand"
	"net"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/tsdb"
)

// tortureSeeds reports how many seeded schedules to run.
func tortureSeeds(t *testing.T) int {
	if v := os.Getenv("CTT_REPL_TORTURE"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad CTT_REPL_TORTURE=%q", v)
		}
		return n
	}
	if testing.Short() {
		return 3
	}
	return 8
}

// faultDialer wraps every dialed conn in a FaultConn driven by one
// seeded rng shared across connections (each conn has its own op
// counter, the schedule decisions share the stream).
type faultDialer struct {
	mu      sync.Mutex
	rng     *rand.Rand
	healed  bool
	resets  int
	partial int
	stalls  int
}

func (fd *faultDialer) plan(op ConnOp, n int64) *ConnFault {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	if fd.healed || n < 4 { // let every session at least handshake
		return nil
	}
	switch fd.rng.Intn(40) {
	case 0:
		fd.resets++
		return &ConnFault{Reset: true}
	case 1:
		if op == ConnWrite {
			fd.partial++
			return &ConnFault{Partial: true, Reset: true}
		}
		fd.resets++
		return &ConnFault{Reset: true}
	case 2:
		fd.stalls++
		return &ConnFault{Stall: 30 * time.Millisecond}
	}
	return nil
}

func (fd *faultDialer) dial(addr string) (net.Conn, error) {
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	return NewFaultConn(c, fd.plan), nil
}

func (fd *faultDialer) heal() {
	fd.mu.Lock()
	fd.healed = true
	fd.mu.Unlock()
}

func TestTortureLinkFaults(t *testing.T) {
	seeds := tortureSeeds(t)
	batches := 120
	if testing.Short() {
		batches = 40
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(strconv.Itoa(seed), func(t *testing.T) {
			runTortureSeed(t, int64(seed), batches)
		})
	}
}

// spawnReplica boots a follower over a (possibly faulty) link,
// retrying the bootstrap like a supervisor loop would.
func spawnReplica(t *testing.T, rdir, primary string, dial DialFunc) *replica {
	t.Helper()
	for attempt := 0; ; attempt++ {
		boot, err := Bootstrap(BootstrapConfig{Dir: rdir, Primary: primary, Dial: dial, Timeout: 2 * time.Second})
		if err != nil {
			if attempt > 50 {
				t.Fatalf("bootstrap never succeeded: %v", err)
			}
			continue
		}
		db := openStore(t, rdir)
		if boot.Snapshot {
			if err := db.CommitReplPos(boot.Pos); err != nil {
				t.Fatal(err)
			}
		}
		fol := NewFollower(FollowerConfig{
			DB: db, Primary: primary, Dial: dial,
			Heartbeat: 50 * time.Millisecond, MinBackoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond,
		})
		fol.Start(boot)
		return &replica{dir: rdir, db: db, fol: fol}
	}
}

func runTortureSeed(t *testing.T, seed int64, batches int) {
	pdb := openStore(t, t.TempDir())
	defer pdb.Close()
	srv := startPrimary(t, pdb, "")
	fd := &faultDialer{rng: rand.New(rand.NewSource(seed))}

	rdir := t.TempDir()
	rep := spawnReplica(t, rdir, srv.Addr().String(), fd.dial)

	sensors := []string{"s0", "s1", "s2"}
	n := 0
	restartAt := batches / 2
	for b := 0; b < batches; b++ {
		for _, s := range sensors {
			put(t, pdb, "m.torture", s, n)
		}
		n++
		switch {
		case b%17 == 13:
			// WAL rewrite under fire: must defer or remap, never lose
			// bytes a follower hasn't streamed.
			if err := pdb.CompactWAL(); err != nil && err != tsdb.ErrTruncateDeferred {
				t.Fatalf("compact under faults: %v", err)
			}
		case b%23 == 7:
			if err := pdb.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		if b == restartAt {
			// Full follower restart mid-run: durable position resume.
			rep.close()
			rep = spawnReplica(t, rdir, srv.Addr().String(), fd.dial)
		}
		time.Sleep(time.Millisecond)
	}

	// Heal the link and require exact convergence. A primary WAL
	// rewrite that outran a disconnected follower demands a snapshot
	// re-sync, which is terminal for the process (healthz flags it);
	// model the orchestrator restart that answers it.
	fd.heal()
	deadline := time.Now().Add(30 * time.Second)
	for pdb.PointCount() != rep.db.PointCount() || pdb.SeriesCount() != rep.db.SeriesCount() {
		if rep.fol.Stats().ResyncRequired {
			rep.close()
			rep = spawnReplica(t, rdir, srv.Addr().String(), fd.dial)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no parity: primary %d pts, replica %d pts (resync=%v)",
				pdb.PointCount(), rep.db.PointCount(), rep.fol.Stats().ResyncRequired)
		}
		time.Sleep(5 * time.Millisecond)
	}
	defer rep.close()
	for _, s := range sensors {
		assertSeriesEqual(t, pdb, rep.db, "m.torture", s)
	}
	t.Logf("seed %d: %d resets, %d partial writes, %d stalls", seed, fd.resets, fd.partial, fd.stalls)
}
