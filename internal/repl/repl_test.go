package repl

import (
	"bufio"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/tsdb"
)

var testBase = time.Date(2017, time.March, 1, 0, 0, 0, 0, time.UTC).UnixMilli()

func openStore(t *testing.T, dir string) *tsdb.DB {
	t.Helper()
	db, err := tsdb.OpenOptions(tsdb.Options{
		Dir: dir, DurableBlocks: true,
		FlushInterval: -1, CompactInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func put(t *testing.T, db *tsdb.DB, metric, sensor string, i int) {
	t.Helper()
	err := db.Put(tsdb.DataPoint{
		Metric: metric,
		Tags:   map[string]string{"sensor": sensor},
		Point:  tsdb.Point{Timestamp: testBase + int64(i)*60000, Value: float64(i)},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func startPrimary(t *testing.T, db *tsdb.DB, key string) *Server {
	t.Helper()
	srv := NewServer(ServerConfig{
		DB:        db,
		Heartbeat: 50 * time.Millisecond,
		Authorize: func(k string) bool { return key == "" || k == key },
		Aux:       []string{"rollup.state"},
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// replica bundles a follower node's moving parts for tests.
type replica struct {
	dir string
	db  *tsdb.DB
	fol *Follower
}

// startReplica bootstraps dir from the primary and starts the apply
// loop. dial, when non-nil, replaces the network dialer (fault tests).
func startReplica(t *testing.T, dir, primary, key string, dial DialFunc) *replica {
	t.Helper()
	boot, err := Bootstrap(BootstrapConfig{Dir: dir, Primary: primary, Key: key, Dial: dial})
	if err != nil {
		t.Fatal(err)
	}
	db := openStore(t, dir)
	if boot.Snapshot {
		if err := db.CommitReplPos(boot.Pos); err != nil {
			t.Fatal(err)
		}
	}
	fol := NewFollower(FollowerConfig{
		DB: db, Primary: primary, Key: key, Dial: dial,
		Heartbeat:  50 * time.Millisecond,
		MinBackoff: 5 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
	})
	fol.Start(boot)
	return &replica{dir: dir, db: db, fol: fol}
}

func (r *replica) close() {
	r.fol.Close()
	r.db.Close()
}

// waitParity polls until the replica holds the same points as the
// primary (or the deadline passes).
func waitParity(t *testing.T, p, r *tsdb.DB, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if p.PointCount() == r.PointCount() && p.SeriesCount() == r.SeriesCount() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no parity after %v: primary %d pts/%d series, replica %d pts/%d series",
				timeout, p.PointCount(), p.SeriesCount(), r.PointCount(), r.SeriesCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertSeriesEqual compares one series' exact point set on both nodes.
func assertSeriesEqual(t *testing.T, p, r *tsdb.DB, metric, sensor string) {
	t.Helper()
	tags := map[string]string{"sensor": sensor}
	want, err := p.SeriesWindowExact(metric, tags, 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.SeriesWindowExact(metric, tags, 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s{sensor=%s}: replica has %d points, primary %d", metric, sensor, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s{sensor=%s}[%d]: replica %+v != primary %+v", metric, sensor, i, got[i], want[i])
		}
	}
}

func TestSnapshotBootstrapAndCatchUp(t *testing.T) {
	pdb := openStore(t, t.TempDir())
	defer pdb.Close()
	for i := 0; i < 400; i++ {
		put(t, pdb, "m.cpu", "a", i)
		put(t, pdb, "m.mem", "b", i)
	}
	// Seal part of the history into block files so the snapshot ships
	// blocks + WAL, not just a log.
	if _, err := pdb.FlushBlocks(); err != nil {
		t.Fatal(err)
	}
	srv := startPrimary(t, pdb, "sekrit")

	rep := startReplica(t, t.TempDir(), srv.Addr().String(), "sekrit", nil)
	defer rep.close()
	waitParity(t, pdb, rep.db, 5*time.Second)
	assertSeriesEqual(t, pdb, rep.db, "m.cpu", "a")
	assertSeriesEqual(t, pdb, rep.db, "m.mem", "b")

	// Live writes keep flowing.
	for i := 400; i < 500; i++ {
		put(t, pdb, "m.cpu", "a", i)
	}
	waitParity(t, pdb, rep.db, 5*time.Second)
	assertSeriesEqual(t, pdb, rep.db, "m.cpu", "a")
	if !rep.fol.Stats().Connected {
		t.Fatal("follower should report connected")
	}
	if lag := rep.fol.Stats().LagSeconds; lag < 0 || lag > 10 {
		t.Fatalf("implausible lag %v", lag)
	}
}

func TestBadKeyRefused(t *testing.T) {
	pdb := openStore(t, t.TempDir())
	defer pdb.Close()
	srv := startPrimary(t, pdb, "sekrit")
	_, err := Bootstrap(BootstrapConfig{Dir: t.TempDir(), Primary: srv.Addr().String(), Key: "wrong"})
	if err == nil {
		t.Fatal("bootstrap with a bad key should fail")
	}
}

func TestReconnectResumesWithoutDuplicates(t *testing.T) {
	pdb := openStore(t, t.TempDir())
	defer pdb.Close()
	for i := 0; i < 50; i++ {
		put(t, pdb, "m.rc", "a", i)
	}
	srv := startPrimary(t, pdb, "")

	// A dialer that remembers the live conn so the test can cut it.
	var mu sync.Mutex
	var last net.Conn
	dial := func(addr string) (net.Conn, error) {
		c, err := defaultDial(addr)
		if err == nil {
			mu.Lock()
			last = c
			mu.Unlock()
		}
		return c, err
	}
	rep := startReplica(t, t.TempDir(), srv.Addr().String(), "", dial)
	defer rep.close()
	waitParity(t, pdb, rep.db, 5*time.Second)

	// Cut the link mid-stream, keep writing, and verify the follower
	// reconnects, resumes from its durable position, and applies each
	// record exactly once.
	mu.Lock()
	last.Close()
	mu.Unlock()
	for i := 50; i < 150; i++ {
		put(t, pdb, "m.rc", "a", i)
	}
	waitParity(t, pdb, rep.db, 5*time.Second)
	assertSeriesEqual(t, pdb, rep.db, "m.rc", "a")
}

func TestFollowerRestartResumes(t *testing.T) {
	pdb := openStore(t, t.TempDir())
	defer pdb.Close()
	for i := 0; i < 80; i++ {
		put(t, pdb, "m.restart", "a", i)
	}
	srv := startPrimary(t, pdb, "")

	dir := t.TempDir()
	rep := startReplica(t, dir, srv.Addr().String(), "", nil)
	waitParity(t, pdb, rep.db, 5*time.Second)
	rep.close() // clean shutdown: position is durable

	for i := 80; i < 160; i++ {
		put(t, pdb, "m.restart", "a", i)
	}

	// Restart: this must resume, not re-snapshot.
	boot, err := Bootstrap(BootstrapConfig{Dir: dir, Primary: srv.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	if boot.Snapshot {
		t.Fatal("restart with a durable position must resume, not re-seed")
	}
	db2 := openStore(t, dir)
	fol2 := NewFollower(FollowerConfig{
		DB: db2, Primary: srv.Addr().String(),
		Heartbeat: 50 * time.Millisecond, MinBackoff: 5 * time.Millisecond,
	})
	fol2.Start(boot)
	defer func() { fol2.Close(); db2.Close() }()
	waitParity(t, pdb, db2, 5*time.Second)
	assertSeriesEqual(t, pdb, db2, "m.restart", "a")
}

func TestOfflineStartWithDeadPrimary(t *testing.T) {
	pdb := openStore(t, t.TempDir())
	for i := 0; i < 30; i++ {
		put(t, pdb, "m.off", "a", i)
	}
	srv := startPrimary(t, pdb, "")
	dir := t.TempDir()
	rep := startReplica(t, dir, srv.Addr().String(), "", nil)
	waitParity(t, pdb, rep.db, 5*time.Second)
	rep.close()
	srv.Close()
	pdb.Close()

	// Primary gone: a resumable replica still starts and serves its
	// stale state; a fresh directory cannot.
	boot, err := Bootstrap(BootstrapConfig{Dir: dir, Primary: "127.0.0.1:1"})
	if err != nil {
		t.Fatalf("offline bootstrap of a resumable dir: %v", err)
	}
	if !boot.Offline || boot.Snapshot {
		t.Fatalf("boot = %+v, want offline resume", boot)
	}
	db2 := openStore(t, dir)
	defer db2.Close()
	pts, err := db2.SeriesWindowExact("m.off", map[string]string{"sensor": "a"}, 0, 1<<62)
	if err != nil || len(pts) != 30 {
		t.Fatalf("stale reads: %d points, err %v; want 30", len(pts), err)
	}
	if _, err := Bootstrap(BootstrapConfig{Dir: t.TempDir(), Primary: "127.0.0.1:1"}); err == nil {
		t.Fatal("fresh dir with a dead primary must fail bootstrap")
	}
}

func TestPromotionFencesOldPrimary(t *testing.T) {
	pdir, rdir := t.TempDir(), t.TempDir()
	pdb := openStore(t, pdir)
	for i := 0; i < 60; i++ {
		put(t, pdb, "m.promo", "a", i)
	}
	srv := startPrimary(t, pdb, "")
	rep := startReplica(t, rdir, srv.Addr().String(), "", nil)
	waitParity(t, pdb, rep.db, 5*time.Second)

	// Promote: replication stops, the epoch fences, writes land.
	epoch, err := rep.fol.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("promoted epoch = %d, want 2", epoch)
	}
	put(t, rep.db, "m.promo", "a", 60)
	if rep.db.ReplEpoch() != 2 {
		t.Fatalf("ReplEpoch = %d after promotion", rep.db.ReplEpoch())
	}

	// The old primary refuses a client from the newer era...
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pos, _ := rep.db.ReplPosition()
	_, _, err = handshakeConn(conn, pos)
	if !IsFenced(err) {
		t.Fatalf("old primary handshake = %v, want fenced", err)
	}

	// ...and rejoining the new primary re-seeds the old one: its epoch
	// is stale, so resume is refused in favor of a snapshot.
	rep.fol.Close()
	psrv2 := NewServer(ServerConfig{DB: rep.db, Heartbeat: 50 * time.Millisecond})
	if err := psrv2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer psrv2.Close()
	srv.Close()
	pdb.Close()
	boot, err := Bootstrap(BootstrapConfig{Dir: pdir, Primary: psrv2.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	if !boot.Snapshot {
		t.Fatal("stale old primary must be re-seeded by snapshot, not resumed")
	}
	if boot.Pos.Epoch != 2 {
		t.Fatalf("re-seeded epoch = %d, want 2", boot.Pos.Epoch)
	}
	rep.db.Close()
}

// handshakeConn performs a raw client handshake claiming pos.
func handshakeConn(conn net.Conn, pos tsdb.ReplPos) (uint64, byte, error) {
	return handshake(conn, bufio.NewReader(conn), 2*time.Second, "", pos, true)
}

func TestWipeValidation(t *testing.T) {
	for _, name := range []string{"../evil", "a/b", `a\b`, "..", ""} {
		if validSnapName(name) {
			t.Fatalf("validSnapName(%q) = true", name)
		}
	}
	if !validSnapName("blk-000123.ctt") {
		t.Fatal("plain file name rejected")
	}
}

func TestGenerationSwitchMidStream(t *testing.T) {
	pdb := openStore(t, t.TempDir())
	defer pdb.Close()
	for i := 0; i < 40; i++ {
		put(t, pdb, "m.gen", "a", i)
	}
	srv := startPrimary(t, pdb, "")
	rep := startReplica(t, t.TempDir(), srv.Addr().String(), "", nil)
	defer rep.close()
	waitParity(t, pdb, rep.db, 5*time.Second)

	// A WAL rewrite on the primary remaps the caught-up lease; the
	// follower must cross the generation boundary and keep applying.
	if err := pdb.CompactWAL(); err != nil {
		t.Fatal(err)
	}
	for i := 40; i < 120; i++ {
		put(t, pdb, "m.gen", "a", i)
		if i == 80 {
			if err := pdb.CompactWAL(); err != nil {
				t.Logf("second compact: %v", err) // deferred is fine
			}
		}
	}
	waitParity(t, pdb, rep.db, 5*time.Second)
	assertSeriesEqual(t, pdb, rep.db, "m.gen", "a")
}
