package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tsdb"
)

// ServerConfig configures a primary-side replication server.
type ServerConfig struct {
	DB     *tsdb.DB
	Logger *slog.Logger

	// Authorize validates the key carried in a hello frame; nil allows
	// every connection (tests, trusted networks).
	Authorize func(key string) bool

	// Aux names extra snapshot files relative to the data dir (e.g.
	// rollup.state); missing ones are skipped.
	Aux []string

	// Heartbeat is the idle-stream heartbeat cadence (default 1s).
	Heartbeat time.Duration

	// WriteTimeout bounds every frame write, so a stalled follower
	// cannot wedge a session — or, mid-snapshot, the store's opMu —
	// forever (default 30s).
	WriteTimeout time.Duration

	// MaxLagBytes is a connected follower's lease budget: WAL
	// truncation defers while the follower is behind by less, and
	// revokes the lease (forcing a snapshot re-sync) past it.
	// Default 256 MiB.
	MaxLagBytes int64
}

// Server accepts follower connections and streams the WAL to them.
type Server struct {
	cfg ServerConfig

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	stop   chan struct{}
	wg     sync.WaitGroup

	connected atomic.Int64
	sessions  atomic.Uint64
	snapshots atomic.Uint64
	bytesOut  atomic.Uint64
}

// NewServer builds a server; call Start (or Serve) to accept.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.MaxLagBytes <= 0 {
		cfg.MaxLagBytes = 256 << 20
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	return &Server{cfg: cfg, conns: make(map[net.Conn]struct{}), stop: make(chan struct{})}
}

// Start listens on addr and serves in the background.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("repl: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.serve(ln)
	}()
	return nil
}

// Addr reports the bound listener address (nil before Start).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				time.Sleep(50 * time.Millisecond)
				continue
			}
			s.cfg.Logger.Warn("repl accept failed", "err", err)
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.session(conn)
		}()
	}
}

// Close stops accepting, terminates every session, and waits for them.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.stop)
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// ServerStats is a point-in-time metrics snapshot.
type ServerStats struct {
	Connected int64
	Sessions  uint64
	Snapshots uint64
	BytesOut  uint64
}

// Stats reports live counters for /metrics.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Connected: s.connected.Load(),
		Sessions:  s.sessions.Load(),
		Snapshots: s.snapshots.Load(),
		BytesOut:  s.bytesOut.Load(),
	}
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

// session drives one follower connection: handshake, snapshot or
// resume, then the live stream until the link breaks or the server
// stops.
func (s *Server) session(conn net.Conn) {
	defer s.dropConn(conn)
	s.sessions.Add(1)
	log := s.cfg.Logger.With("peer", conn.RemoteAddr().String())

	br := bufio.NewReaderSize(conn, 64<<10)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, payload, err := readFrame(br)
	if err != nil || typ != fHello {
		sendError(conn, s.cfg.WriteTimeout, codeProto, "expected hello")
		return
	}
	hello, err := parseHello(payload)
	if err != nil {
		sendError(conn, s.cfg.WriteTimeout, codeProto, err.Error())
		return
	}
	if hello.ver != protoVersion {
		sendError(conn, s.cfg.WriteTimeout, codeProto, fmt.Sprintf("protocol version %d unsupported", hello.ver))
		return
	}
	if s.cfg.Authorize != nil && !s.cfg.Authorize(hello.key) {
		sendError(conn, s.cfg.WriteTimeout, codeAuth, "bad replication key")
		return
	}
	epoch := s.cfg.DB.ReplEpoch()
	if hello.epoch > epoch {
		// The follower has seen a newer era than ours: serving it would
		// roll it back onto a stale timeline. This is the fence that
		// refuses a rejoining old primary's clients.
		log.Warn("repl session fenced", "peer_epoch", hello.epoch, "epoch", epoch)
		sendError(conn, s.cfg.WriteTimeout, codeFenced, fmt.Sprintf("peer epoch %d ahead of %d", hello.epoch, epoch))
		return
	}

	var rd *tsdb.WALReader
	var buf []byte
	if hello.hasPos && hello.epoch == epoch {
		rd, err = s.cfg.DB.WALTail(hello.gen, hello.off, s.cfg.MaxLagBytes)
		if err != nil && !errors.Is(err, tsdb.ErrWALResyncRequired) {
			sendError(conn, s.cfg.WriteTimeout, codeResync, err.Error())
			return
		}
	}
	if rd != nil {
		if buf, err = writeFrame(conn, buf, s.cfg.WriteTimeout, fWelcome, helloWelcome(epoch, modeResume)); err != nil {
			rd.Close()
			return
		}
		// WALTail may have chained the position forward through log
		// rewrites the follower slept through; announce where the
		// stream actually starts before any data flows.
		if gen, off := rd.Pos(); gen != hello.gen || off != hello.off {
			hdr := make([]byte, 0, 16)
			hdr = binary.LittleEndian.AppendUint64(hdr, gen)
			hdr = binary.LittleEndian.AppendUint64(hdr, uint64(off))
			if buf, err = writeFrame(conn, buf, s.cfg.WriteTimeout, fGen, hdr); err != nil {
				rd.Close()
				return
			}
		}
		log.Info("repl session resumed", "gen", hello.gen, "off", hello.off)
	} else {
		if buf, err = writeFrame(conn, buf, s.cfg.WriteTimeout, fWelcome, helloWelcome(epoch, modeSnapshot)); err != nil {
			return
		}
		rd, buf, err = s.sendSnapshot(conn, buf)
		if err != nil {
			log.Warn("repl snapshot failed", "err", err)
			sendError(conn, s.cfg.WriteTimeout, codeShutdown, err.Error())
			return
		}
		s.snapshots.Add(1)
		gen, off := rd.Pos()
		log.Info("repl session bootstrapped", "gen", gen, "off", off)
	}
	defer rd.Close()

	// Watch for the peer hanging up: followers send nothing after
	// hello, so any read completion means the link is gone.
	peerGone := make(chan struct{})
	go func() {
		defer close(peerGone)
		conn.SetReadDeadline(time.Time{})
		one := make([]byte, 256)
		for {
			if _, err := br.Read(one); err != nil {
				return
			}
		}
	}()

	if buf, err = s.sendDict(conn, rd, buf); err != nil {
		return
	}

	s.connected.Add(1)
	defer s.connected.Add(-1)
	stop := make(chan struct{})
	var stopOnce sync.Once
	defer stopOnce.Do(func() { close(stop) })
	go func() {
		select {
		case <-s.stop:
		case <-peerGone:
		case <-stop:
		}
		stopOnce.Do(func() { close(stop) })
		conn.Close() // unblocks any in-flight frame write
	}()

	chunk := make([]byte, 256<<10)
	hdr := make([]byte, 0, 32)
	for {
		ev, err := rd.Next(chunk, stop, s.cfg.Heartbeat)
		if err != nil {
			switch {
			case errors.Is(err, tsdb.ErrWALReaderStopped):
				sendError(conn, s.cfg.WriteTimeout, codeShutdown, "primary shutting down")
			case errors.Is(err, tsdb.ErrWALResyncRequired):
				log.Warn("repl lease revoked: follower too far behind truncation")
				sendError(conn, s.cfg.WriteTimeout, codeResync, "lease revoked: snapshot re-sync required")
			default:
				log.Warn("repl stream read failed", "err", err)
			}
			return
		}
		switch ev.Kind {
		case tsdb.WALData:
			hdr = hdr[:0]
			hdr = binary.LittleEndian.AppendUint64(hdr, ev.Gen)
			hdr = binary.LittleEndian.AppendUint64(hdr, uint64(ev.Off))
			hdr = binary.LittleEndian.AppendUint64(hdr, uint64(time.Now().UnixNano()))
			payload := append(hdr, ev.Data...)
			if buf, err = writeFrame(conn, buf, s.cfg.WriteTimeout, fData, payload); err != nil {
				return
			}
			s.bytesOut.Add(uint64(len(payload)))
		case tsdb.WALRemap:
			hdr = hdr[:0]
			hdr = binary.LittleEndian.AppendUint64(hdr, ev.Gen)
			hdr = binary.LittleEndian.AppendUint64(hdr, uint64(ev.Off))
			if buf, err = writeFrame(conn, buf, s.cfg.WriteTimeout, fGen, hdr); err != nil {
				return
			}
			if buf, err = s.sendDict(conn, rd, buf); err != nil {
				return
			}
		case tsdb.WALIdle:
			hdr = hdr[:0]
			hdr = binary.LittleEndian.AppendUint64(hdr, ev.Gen)
			hdr = binary.LittleEndian.AppendUint64(hdr, uint64(ev.Off))
			hdr = binary.LittleEndian.AppendUint64(hdr, uint64(time.Now().UnixNano()))
			if buf, err = writeFrame(conn, buf, s.cfg.WriteTimeout, fHeartbeat, hdr); err != nil {
				return
			}
		}
	}
}

// sendSnapshot streams the full store state and returns the live
// tailer lease positioned at the snapshot watermark.
func (s *Server) sendSnapshot(conn net.Conn, buf []byte) (*tsdb.WALReader, []byte, error) {
	chunk := make([]byte, 256<<10)
	rd, err := s.cfg.DB.StreamSnapshot(s.cfg.Aux, s.cfg.MaxLagBytes, func(sf tsdb.SnapshotFile) error {
		kind := byte(snapKindWAL)
		switch sf.Kind {
		case "block":
			kind = snapKindBlock
		case "aux":
			kind = snapKindAux
		}
		hdr := make([]byte, 0, 32)
		hdr = append(hdr, kind)
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(sf.Size))
		hdr = appendStr(hdr, sf.Name)
		var werr error
		if buf, werr = writeFrame(conn, buf, s.cfg.WriteTimeout, fSnapFile, hdr); werr != nil {
			return werr
		}
		remaining := sf.Size
		for remaining > 0 {
			n := int64(len(chunk))
			if n > remaining {
				n = remaining
			}
			if _, rerr := io.ReadFull(sf.R, chunk[:n]); rerr != nil {
				return fmt.Errorf("repl: snapshot read %s: %w", sf.Name, rerr)
			}
			if buf, werr = writeFrame(conn, buf, s.cfg.WriteTimeout, fSnapData, chunk[:n]); werr != nil {
				return werr
			}
			s.bytesOut.Add(uint64(n))
			remaining -= n
		}
		return nil
	})
	if err != nil {
		return nil, buf, err
	}
	gen, off := rd.Pos()
	end := make([]byte, 0, 16)
	end = binary.LittleEndian.AppendUint64(end, gen)
	end = binary.LittleEndian.AppendUint64(end, uint64(off))
	if buf, err = writeFrame(conn, buf, s.cfg.WriteTimeout, fSnapEnd, end); err != nil {
		rd.Close()
		return nil, buf, err
	}
	return rd, buf, nil
}

// sendDict ships the dictionary prefix — every series record before
// the reader's position in the current file — chunked into fDict
// frames at arbitrary byte boundaries (the follower reassembles).
func (s *Server) sendDict(conn net.Conn, rd *tsdb.WALReader, buf []byte) ([]byte, error) {
	dict, err := rd.DictPrefix()
	if err != nil {
		return buf, err
	}
	for off := 0; ; off += 256 << 10 {
		end := off + 256<<10
		if end > len(dict) {
			end = len(dict)
		}
		if buf, err = writeFrame(conn, buf, s.cfg.WriteTimeout, fDict, dict[off:end]); err != nil {
			return buf, err
		}
		s.bytesOut.Add(uint64(end - off))
		if end == len(dict) {
			return buf, nil
		}
	}
}

type helloMsg struct {
	ver    byte
	epoch  uint64
	hasPos bool
	gen    uint64
	off    int64
	key    string
}

func parseHello(p []byte) (helloMsg, error) {
	if len(p) < 1+8+1+8+8+2 {
		return helloMsg{}, errors.New("repl: short hello")
	}
	h := helloMsg{
		ver:    p[0],
		epoch:  binary.LittleEndian.Uint64(p[1:]),
		hasPos: p[9] != 0,
		gen:    binary.LittleEndian.Uint64(p[10:]),
		off:    int64(binary.LittleEndian.Uint64(p[18:])),
	}
	key, _, err := readStr(p, 26)
	if err != nil {
		return helloMsg{}, err
	}
	h.key = key
	return h, nil
}

func encodeHello(h helloMsg) []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, h.ver)
	buf = binary.LittleEndian.AppendUint64(buf, h.epoch)
	if h.hasPos {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, h.gen)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(h.off))
	return appendStr(buf, h.key)
}

func helloWelcome(epoch uint64, mode byte) []byte {
	buf := make([]byte, 0, 16)
	buf = append(buf, protoVersion)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	return append(buf, mode)
}

func parseWelcome(p []byte) (epoch uint64, mode byte, err error) {
	if len(p) != 10 {
		return 0, 0, errors.New("repl: short welcome")
	}
	if p[0] != protoVersion {
		return 0, 0, fmt.Errorf("repl: protocol version %d unsupported", p[0])
	}
	return binary.LittleEndian.Uint64(p[1:]), p[9], nil
}
