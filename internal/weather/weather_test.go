package weather

import (
	"math"
	"testing"
	"time"
)

const (
	tLat = 63.4305 // Trondheim
	tLon = 10.3951
)

func date(y int, m time.Month, d, h, min int) time.Time {
	return time.Date(y, m, d, h, min, 0, 0, time.UTC)
}

func TestSunNoonIsHigh(t *testing.T) {
	// Local solar noon in Trondheim (lon 10.4°E) is ~11:18 UTC.
	noon := SunAt(tLat, tLon, date(2017, time.June, 21, 11, 18))
	midnight := SunAt(tLat, tLon, date(2017, time.June, 21, 23, 18))
	if noon.Elevation < 45 || noon.Elevation > 55 {
		// 90 - 63.43 + 23.44 ≈ 50° at summer solstice.
		t.Fatalf("solstice noon elevation = %v, want ~50", noon.Elevation)
	}
	if midnight.Elevation > 5 {
		t.Fatalf("solstice midnight elevation = %v, want near/below horizon", midnight.Elevation)
	}
}

func TestSunWinterSolsticeLow(t *testing.T) {
	noon := SunAt(tLat, tLon, date(2017, time.December, 21, 11, 18))
	// 90 - 63.43 - 23.44 ≈ 3.1°.
	if noon.Elevation < 0 || noon.Elevation > 8 {
		t.Fatalf("winter noon elevation = %v, want ~3", noon.Elevation)
	}
}

func TestSunDeclinationBounds(t *testing.T) {
	for doy := 1; doy <= 365; doy += 7 {
		p := SunAt(tLat, tLon, date(2017, time.January, 1, 12, 0).AddDate(0, 0, doy-1))
		if math.Abs(p.Declination) > 23.46 {
			t.Fatalf("declination %v out of bounds on doy %d", p.Declination, doy)
		}
	}
}

func TestSunAzimuthRoughlySouthAtNoon(t *testing.T) {
	p := SunAt(tLat, tLon, date(2017, time.March, 21, 11, 18))
	if p.Azimuth < 160 || p.Azimuth > 200 {
		t.Fatalf("noon azimuth = %v, want ~180 (south)", p.Azimuth)
	}
}

func TestClearSkyIrradiance(t *testing.T) {
	if ClearSkyIrradiance(-5) != 0 {
		t.Fatal("below-horizon irradiance must be 0")
	}
	low := ClearSkyIrradiance(10)
	high := ClearSkyIrradiance(60)
	if low <= 0 || high <= low {
		t.Fatalf("irradiance not increasing with elevation: %v vs %v", low, high)
	}
	if high > 1100 {
		t.Fatalf("irradiance %v unphysically high", high)
	}
}

func TestDaylightSummerVsWinter(t *testing.T) {
	// Midsummer in Trondheim: sun up at 03:00 UTC. Midwinter: down at 15:00.
	if !Daylight(tLat, tLon, date(2017, time.June, 21, 9, 0)) {
		t.Fatal("midsummer morning should be daylight")
	}
	if Daylight(tLat, tLon, date(2017, time.December, 21, 20, 0)) {
		t.Fatal("midwinter evening should be dark")
	}
}

func TestModelDeterministic(t *testing.T) {
	m1 := NewModel(tLat, tLon, 42)
	m2 := NewModel(tLat, tLon, 42)
	at := date(2017, time.March, 5, 14, 30)
	c1, c2 := m1.At(at), m2.At(at)
	if c1 != c2 {
		t.Fatalf("same seed should give identical conditions: %+v vs %+v", c1, c2)
	}
	m3 := NewModel(tLat, tLon, 43)
	if m3.At(at) == c1 {
		t.Fatal("different seeds should differ")
	}
}

func TestModelSeasonalCycle(t *testing.T) {
	m := NewModel(tLat, tLon, 7)
	// Average over many samples to wash out noise.
	avg := func(month time.Month) float64 {
		sum, n := 0.0, 0
		for d := 1; d <= 28; d++ {
			for h := 0; h < 24; h += 3 {
				sum += m.At(date(2017, month, d, h, 0)).TemperatureC
				n++
			}
		}
		return sum / float64(n)
	}
	july, january := avg(time.July), avg(time.January)
	if july-january < 8 {
		t.Fatalf("summer-winter difference %v too small", july-january)
	}
}

func TestModelDiurnalCycle(t *testing.T) {
	m := NewModel(tLat, tLon, 8)
	// Afternoon should on average be warmer than pre-dawn.
	sumPM, sumAM := 0.0, 0.0
	for d := 1; d <= 28; d++ {
		sumPM += m.At(date(2017, time.June, d, 14, 0)).TemperatureC
		sumAM += m.At(date(2017, time.June, d, 3, 0)).TemperatureC
	}
	if sumPM <= sumAM {
		t.Fatalf("afternoon not warmer than night: %v vs %v", sumPM/28, sumAM/28)
	}
}

func TestModelBounds(t *testing.T) {
	m := NewModel(tLat, tLon, 9)
	for d := 0; d < 365; d += 3 {
		for h := 0; h < 24; h += 2 {
			c := m.At(date(2017, time.January, 1, h, 0).AddDate(0, 0, d))
			if c.HumidityPct < 0 || c.HumidityPct > 100 {
				t.Fatalf("humidity out of range: %v", c.HumidityPct)
			}
			if c.CloudCover < 0 || c.CloudCover > 1 {
				t.Fatalf("cloud cover out of range: %v", c.CloudCover)
			}
			if c.WindSpeedMS <= 0 {
				t.Fatalf("wind speed must be positive: %v", c.WindSpeedMS)
			}
			if c.WindDirDeg < 0 || c.WindDirDeg >= 360 {
				t.Fatalf("wind direction out of range: %v", c.WindDirDeg)
			}
			if c.IrradianceWM2 < 0 {
				t.Fatalf("irradiance negative: %v", c.IrradianceWM2)
			}
			if c.TemperatureC < -40 || c.TemperatureC > 45 {
				t.Fatalf("temperature implausible: %v", c.TemperatureC)
			}
		}
	}
}

func TestModelContinuity(t *testing.T) {
	// Adjacent 5-minute samples should not jump wildly (smooth noise).
	m := NewModel(tLat, tLon, 10)
	prev := m.At(date(2017, time.April, 10, 0, 0))
	for i := 1; i < 288; i++ {
		cur := m.At(date(2017, time.April, 10, 0, 0).Add(time.Duration(i) * 5 * time.Minute))
		if math.Abs(cur.TemperatureC-prev.TemperatureC) > 1.5 {
			t.Fatalf("temperature jump %v→%v at step %d", prev.TemperatureC, cur.TemperatureC, i)
		}
		prev = cur
	}
}

func TestIrradianceNightZero(t *testing.T) {
	m := NewModel(tLat, tLon, 11)
	c := m.At(date(2017, time.December, 21, 23, 0))
	if c.IrradianceWM2 != 0 {
		t.Fatalf("night irradiance = %v, want 0", c.IrradianceWM2)
	}
}
