package weather

import (
	"math"
	"time"
)

// Conditions is a snapshot of ambient weather at a location and instant.
// These are the covariates the paper lists as confounders of CO2
// dynamics ("traffic, wind speed, temperature, humidity and other
// weather conditions, as well as daily and seasonal patterns").
type Conditions struct {
	Time          time.Time
	TemperatureC  float64 // near-surface air temperature, °C
	HumidityPct   float64 // relative humidity, %
	PressureHPa   float64 // sea-level pressure, hPa
	WindSpeedMS   float64 // wind speed at 10 m, m/s
	WindDirDeg    float64 // direction wind blows FROM, degrees from north
	CloudCover    float64 // fraction [0,1]
	IrradianceWM2 float64 // global horizontal irradiance after clouds, W/m²
}

// Model is a deterministic stochastic weather generator for one city.
// Given the same seed and query times it reproduces the same series.
// The generator is continuous in time: querying at any instant returns
// a consistent value (smooth noise is derived from hashed time buckets,
// interpolated), so multiple consumers (sensors, dispersion, reference
// stations) observe the same weather.
type Model struct {
	Lat, Lon float64
	seed     int64

	// Climate parameters; defaults approximate a Nordic coastal city.
	AnnualMeanC    float64 // annual mean temperature
	SeasonalAmplC  float64 // seasonal (summer-winter) half-swing
	DiurnalAmplC   float64 // day-night half-swing
	MeanWindMS     float64
	MeanPressure   float64
	BaseHumidity   float64
	CloudBase      float64 // mean cloud cover fraction
	CloudVariation float64
}

// NewModel creates a weather model for a location with Nordic-city
// default climate and the given seed.
func NewModel(lat, lon float64, seed int64) *Model {
	return &Model{
		Lat: lat, Lon: lon, seed: seed,
		AnnualMeanC:    6.0,
		SeasonalAmplC:  9.0,
		DiurnalAmplC:   4.0,
		MeanWindMS:     3.5,
		MeanPressure:   1013.0,
		BaseHumidity:   75,
		CloudBase:      0.55,
		CloudVariation: 0.35,
	}
}

// At returns the weather conditions at time t.
func (m *Model) At(t time.Time) Conditions {
	t = t.UTC()
	doy := float64(t.YearDay())
	hour := float64(t.Hour()) + float64(t.Minute())/60 + float64(t.Second())/3600

	// Seasonal cycle peaks ~July 20 (doy 201) in the northern hemisphere.
	seasonal := m.SeasonalAmplC * math.Cos(2*math.Pi*(doy-201)/365.25)
	// Diurnal cycle peaks mid-afternoon (~15:00 local solar time).
	localHour := math.Mod(hour+m.Lon/15+24, 24)
	diurnal := m.DiurnalAmplC * math.Cos(2*math.Pi*(localHour-15)/24)

	// Synoptic-scale noise: smooth pseudo-random walk over ~6h buckets.
	synoptic := 3.0 * m.smoothNoise(t, 6*time.Hour, 1)
	temp := m.AnnualMeanC + seasonal + diurnal + synoptic

	cloud := clamp(m.CloudBase+m.CloudVariation*m.smoothNoise(t, 3*time.Hour, 2), 0, 1)

	sun := SunAt(m.Lat, m.Lon, t)
	irr := ClearSkyIrradiance(sun.Elevation) * (1 - 0.75*cloud)

	wind := math.Max(0.1, m.MeanWindMS*(1+0.6*m.smoothNoise(t, 4*time.Hour, 3)))
	// Prevailing south-westerly with slow meander.
	windDir := math.Mod(225+60*m.smoothNoise(t, 8*time.Hour, 4)+360, 360)

	hum := clamp(m.BaseHumidity-1.2*(temp-m.AnnualMeanC)+8*m.smoothNoise(t, 5*time.Hour, 5), 15, 100)
	press := m.MeanPressure + 12*m.smoothNoise(t, 12*time.Hour, 6)

	return Conditions{
		Time:          t,
		TemperatureC:  temp,
		HumidityPct:   hum,
		PressureHPa:   press,
		WindSpeedMS:   wind,
		WindDirDeg:    windDir,
		CloudCover:    cloud,
		IrradianceWM2: irr,
	}
}

// smoothNoise returns a smooth pseudo-random signal in [-1, 1] that is
// a deterministic function of (seed, stream, time). It linearly
// interpolates white noise defined on fixed time buckets, which yields
// continuity without storing state.
func (m *Model) smoothNoise(t time.Time, bucket time.Duration, stream int64) float64 {
	b := t.UnixNano() / int64(bucket)
	frac := float64(t.UnixNano()%int64(bucket)) / float64(bucket)
	// Cosine interpolation for C1-ish smoothness.
	w := (1 - math.Cos(frac*math.Pi)) / 2
	n0 := hashNoise(m.seed, stream, b)
	n1 := hashNoise(m.seed, stream, b+1)
	return n0*(1-w) + n1*w
}

// hashNoise maps (seed, stream, bucket) to a deterministic value in
// [-1, 1] with a splitmix64-style finalizer (no allocation; this sits
// on the hot path of every weather query).
func hashNoise(seed, stream, bucket int64) float64 {
	h := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(stream)*0xC2B2AE3D27D4EB4F ^ uint64(bucket)*0x165667B19E3779F9
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11)/float64(1<<53)*2 - 1
}
