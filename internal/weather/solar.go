// Package weather simulates the meteorological environment of a pilot
// city: solar geometry and irradiance (which drive the solar-charged
// sensor nodes analyzed in the paper's Fig. 4), near-surface temperature
// with diurnal and seasonal cycles, a wind process (which drives the
// emission-dispersion substrate), humidity, pressure, and cloud cover.
//
// Everything is deterministic for a given seed and simulated time, so
// experiments are reproducible and tests never touch the wall clock.
package weather

import (
	"math"
	"time"
)

// SolarPosition describes the sun's position in the sky at a location
// and instant.
type SolarPosition struct {
	// Elevation is the angle of the sun above the horizon in degrees;
	// negative values mean the sun is below the horizon (night).
	Elevation float64
	// Azimuth is degrees clockwise from north.
	Azimuth float64
	// Declination is the solar declination in degrees.
	Declination float64
}

// SunAt computes the solar position for a latitude/longitude (degrees)
// at time t (interpreted in UTC). It uses the standard low-precision
// astronomical formulas (Cooper's declination + equation of time),
// accurate to a fraction of a degree — plenty for battery-charging and
// daylight classification.
func SunAt(lat, lon float64, t time.Time) SolarPosition {
	t = t.UTC()
	doy := float64(t.YearDay())
	// Fractional hour of day in UTC.
	hour := float64(t.Hour()) + float64(t.Minute())/60 + float64(t.Second())/3600

	// Solar declination (Cooper 1969).
	decl := 23.45 * math.Sin(2*math.Pi*(284+doy)/365)

	// Equation of time in minutes (Spencer-style approximation).
	b := 2 * math.Pi * (doy - 81) / 364
	eot := 9.87*math.Sin(2*b) - 7.53*math.Cos(b) - 1.5*math.Sin(b)

	// True solar time in hours: UTC hour + longitude offset + EoT.
	tst := hour + lon/15 + eot/60
	// Hour angle: degrees from solar noon, negative before noon.
	ha := (tst - 12) * 15

	latR := lat * math.Pi / 180
	declR := decl * math.Pi / 180
	haR := ha * math.Pi / 180

	sinEl := math.Sin(latR)*math.Sin(declR) + math.Cos(latR)*math.Cos(declR)*math.Cos(haR)
	el := math.Asin(clamp(sinEl, -1, 1))

	// Azimuth measured clockwise from north.
	cosAz := (math.Sin(declR) - math.Sin(latR)*sinEl) / (math.Cos(latR) * math.Cos(el))
	az := math.Acos(clamp(cosAz, -1, 1)) * 180 / math.Pi
	if ha > 0 {
		az = 360 - az
	}

	return SolarPosition{
		Elevation:   el * 180 / math.Pi,
		Azimuth:     az,
		Declination: decl,
	}
}

// ClearSkyIrradiance returns the global horizontal irradiance in W/m²
// under a clear sky for the given solar elevation in degrees, using a
// simple air-mass attenuation model (Meinel). Zero when the sun is
// below the horizon.
func ClearSkyIrradiance(elevationDeg float64) float64 {
	if elevationDeg <= 0 {
		return 0
	}
	elR := elevationDeg * math.Pi / 180
	airMass := 1 / math.Sin(elR)
	// Direct-normal irradiance attenuated through the atmosphere, plus a
	// small diffuse fraction.
	const solarConstant = 1353 // W/m² at top of atmosphere
	dni := solarConstant * math.Pow(0.7, math.Pow(airMass, 0.678))
	ghi := dni*math.Sin(elR) + 0.1*dni
	return ghi
}

// Daylight reports whether the sun is above the horizon at lat/lon at t.
// This is the classifier used by the Fig. 4 battery analysis ("could the
// node have been charged by sunlight since the previous package").
func Daylight(lat, lon float64, t time.Time) bool {
	return SunAt(lat, lon, t).Elevation > 0
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
