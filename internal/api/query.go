package api

// Query path: GET /api/query with OpenTSDB metric specs
// (m=avg:1h-avg:rate:air.co2{sensor=*}, optionally wrapped in
// topk(5,...) / bottomk(5,...) server-side selection) or POST with a
// JSON request body. Requests are validated up front (a malformed
// query is a 400 with a structured error body, never a partial 200);
// results then stream to the client series by series — chunked JSON
// array or NDJSON — through internal/api/encode.go, and completed
// streams land in an LRU cache keyed on the canonical query (including
// K and the response framing) and the time range aligned to
// Config.CacheAlign, so repeated dashboard polls within one alignment
// bucket cost one store read.

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/tsdb"
)

// subQuery is one metric selection within a query request.
type subQuery struct {
	Aggregator string            `json:"aggregator"`
	Metric     string            `json:"metric"`
	Tags       map[string]string `json:"tags"`
	Downsample string            `json:"downsample"` // "1h-avg"
	Rate       bool              `json:"rate"`
	// TopK/BottomK, when >0, keep only the K series ranking highest or
	// lowest by the mean of their result points (at most one of the
	// two). GET form: m=topk(5,sum:air.co2{sensor=*}).
	TopK    int `json:"topk"`
	BottomK int `json:"bottomk"`
}

// queryRequest is the POST /api/query body.
type queryRequest struct {
	Start   json.RawMessage `json:"start"`
	End     json.RawMessage `json:"end"`
	Queries []subQuery      `json:"queries"`
}

// queryResult is one output series, OpenTSDB-style: dps maps the
// timestamp (milliseconds, as a string key) to the value. The result
// keeps the store's point slice and serializes it directly — building
// the dps object append-only in timestamp order instead of through a
// map[string]float64, whose per-key string allocations and marshal-
// time key sort dominated cold-query encoding cost.
type queryResult struct {
	Metric string
	Tags   map[string]string
	Points []tsdb.Point
}

// MarshalJSON renders the OpenTSDB wire shape. Duplicate timestamps
// keep the last value, matching the old map semantics.
func (qr queryResult) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 64+len(qr.Points)*24)
	b = append(b, `{"metric":`...)
	mb, err := json.Marshal(qr.Metric)
	if err != nil {
		return nil, err
	}
	b = append(b, mb...)
	b = append(b, `,"tags":`...)
	tags := qr.Tags
	if tags == nil {
		tags = map[string]string{}
	}
	tb, err := json.Marshal(tags)
	if err != nil {
		return nil, err
	}
	b = append(b, tb...)
	b = append(b, `,"dps":{`...)
	first := true
	for i, p := range qr.Points {
		if i+1 < len(qr.Points) && qr.Points[i+1].Timestamp == p.Timestamp {
			continue // duplicate key: last wins, like the old map
		}
		if !first {
			b = append(b, ',')
		}
		first = false
		b = append(b, '"')
		b = strconv.AppendInt(b, p.Timestamp, 10)
		b = append(b, '"', ':')
		b, err = appendJSONFloat(b, p.Value)
		if err != nil {
			return nil, err
		}
	}
	b = append(b, '}', '}')
	return b, nil
}

// appendJSONFloat appends a float the way encoding/json renders
// float64 values ('f' format, switching to exponent form outside
// [1e-6, 1e21) and trimming the two-digit exponent's leading zero),
// so streamed bodies stay byte-compatible with reflective marshaling.
func appendJSONFloat(b []byte, f float64) ([]byte, error) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil, fmt.Errorf("unsupported value: %v", f)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, nil
}

// queryState carries what the slow-query log needs out of a request.
type queryState struct {
	cacheStatus string
	series      int
	points      int
}

func (g *Gateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	nreq := g.queryReqs.Add(1)
	tr := obs.NewTrace("query", r.URL.RequestURI())
	if s := g.cfg.TraceSample; s > 0 && nreq%uint64(s) == 0 {
		tr.SetDetailed(true)
	}
	untrack := g.inflight.Track(tr)
	st := queryState{cacheStatus: "miss"}
	defer func() {
		elapsed := tr.Elapsed()
		g.recordTrace(tr, g.histQuery, elapsed)
		untrack()
		g.maybeLogSlow(tr, r, &st, elapsed)
		tr.Release()
	}()

	sp := tr.StartSpan("parse")
	var (
		start, end int64
		subs       []subQuery
		err        error
	)
	switch r.Method {
	case http.MethodGet:
		start, end, subs, err = parseQueryParams(r, g.cfg.Now)
	case http.MethodPost:
		start, end, subs, err = parseQueryBody(r, g.cfg.Now)
	default:
		sp.End()
		httpError(w, http.StatusMethodNotAllowed, "GET or POST required")
		return
	}
	if err != nil {
		sp.End()
		g.queryErrs.Add(1)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Convert and validate every sub-query before the first response
	// byte: once streaming starts the status is committed, so anything
	// malformed — unknown aggregator, bad downsample, inverted range —
	// must 400 here, never 200 with a broken or empty stream.
	queries := make([]tsdb.Query, len(subs))
	for i, sq := range subs {
		q, qerr := sq.toTSDB(start, end)
		if qerr == nil {
			qerr = q.Validate()
		}
		if qerr != nil {
			sp.End()
			g.queryErrs.Add(1)
			httpError(w, http.StatusBadRequest, "%v", qerr)
			return
		}
		q.Trace = tr
		queries[i] = q
	}
	sp.End()

	ndjson := wantsNDJSON(r)
	key := g.cacheKey(start, end, subs, ndjson)
	if body, ok := g.cache.get(key); ok {
		st.cacheStatus = "hit"
		writeQueryBody(w, r, body, "hit", ndjson)
		return
	}

	// Cache miss: stream series to the client as the store yields
	// them. The encoder flushes after every series, tees the plain
	// bytes for the cache, and — if the store fails mid-scan, after a
	// 200 is already on the wire — ends the stream with an explicit
	// truncation marker instead of a silently short result.
	//
	// Register the fill before the first store read: a write landing
	// in this range while we scan poisons the token, and put discards
	// a poisoned body instead of caching a result the write's own
	// invalidation could no longer reach.
	metrics := make([]string, 0, len(subs))
	for _, sq := range subs {
		metrics = append(metrics, sq.Metric)
	}
	fill := g.cache.beginFill(start, end, metrics)
	defer g.cache.endFill(fill)
	scan := tr.StartSpan("scan")
	serialize := tr.Stage("serialize")
	enc := newStreamEncoder(w, r, "miss")
	var streamErr error
	for _, q := range queries {
		if streamErr = g.exec(q, func(rs tsdb.ResultSeries) error {
			st.series++
			st.points += len(rs.Points)
			t0 := time.Now()
			err := enc.series(toQueryResult(rs))
			serialize.Add(time.Since(t0))
			return err
		}); streamErr != nil {
			break
		}
	}
	scan.End()
	if streamErr != nil {
		g.queryErrs.Add(1)
		if !enc.started {
			// Nothing on the wire yet: a clean error status is still
			// possible.
			enc.abort()
			httpError(w, http.StatusInternalServerError, "%v", streamErr)
			return
		}
		enc.finish(streamErr)
		return
	}
	sp = tr.StartSpan("flush")
	body, cacheable := enc.finish(nil)
	sp.End()
	if cacheable {
		g.cache.put(key, body, start, end, metrics, fill)
	}
}

// maybeLogSlow emits the slow-query record: one structured line with
// the full span tree (per-stage durations and counts), result sizes,
// cache status and the planner decision — whether the range was served
// from rollup tiers, raw block scans, or a mix.
func (g *Gateway) maybeLogSlow(tr *obs.Trace, r *http.Request, st *queryState, elapsed time.Duration) {
	if g.cfg.SlowQuery <= 0 || elapsed < g.cfg.SlowQuery {
		return
	}
	served, raw := tr.StageCount("rollup_serve"), tr.StageCount("rollup_fallback")
	planner := "raw"
	switch {
	case served > 0 && raw > 0:
		planner = "mixed"
	case served > 0:
		planner = "rollup"
	}
	g.cfg.Logger.Warn("slow query",
		"uri", r.URL.RequestURI(),
		"trace_id", tr.ID(),
		"elapsed", elapsed.Round(time.Microsecond).String(),
		"cache", st.cacheStatus,
		"series", st.series,
		"points", st.points,
		"planner", planner,
		"trace", tr.RenderTree(),
	)
}

// toQueryResult converts a store result series to the OpenTSDB wire
// shape; the point slice is carried through and serialized directly.
func toQueryResult(rs tsdb.ResultSeries) queryResult {
	return queryResult{Metric: rs.Metric, Tags: rs.Tags, Points: rs.Points}
}

// writeQueryBody sends a fully cached query result, gzip-compressed
// when the client advertises support (cached bodies are stored plain
// and compressed per response, so one entry serves both kinds of
// client).
func writeQueryBody(w http.ResponseWriter, r *http.Request, body []byte, cacheStatus string, ndjson bool) {
	ct := ctJSON
	if ndjson {
		ct = ctNDJSON
	}
	w.Header().Set("Content-Type", ct)
	w.Header().Set("X-Cache", cacheStatus)
	w.Header().Set("Vary", "Accept-Encoding, Accept")
	if acceptsGzip(r) {
		w.Header().Set("Content-Encoding", "gzip")
		zw := gzip.NewWriter(w)
		zw.Write(body)
		zw.Close()
		return
	}
	w.Write(body)
}

// acceptsGzip reports whether the request's Accept-Encoding lists
// gzip with a non-zero quality.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, q, hasQ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(enc) != "gzip" && strings.TrimSpace(enc) != "*" {
			continue
		}
		if hasQ {
			if v := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(q), "q=")); v == "0" || v == "0.0" {
				return false
			}
		}
		return true
	}
	return false
}

// toTSDB converts a subQuery to a store query.
func (sq subQuery) toTSDB(start, end int64) (tsdb.Query, error) {
	q := tsdb.Query{
		Metric:     sq.Metric,
		Tags:       sq.Tags,
		Start:      start,
		End:        end,
		Aggregator: tsdb.Aggregator(sq.Aggregator),
		Rate:       sq.Rate,
	}
	if sq.Metric == "" {
		return q, fmt.Errorf("metric required")
	}
	if sq.Downsample != "" {
		interval, fn, err := parseDownsample(sq.Downsample)
		if err != nil {
			return q, err
		}
		q.Downsample = interval
		q.DownsampleFn = fn
	}
	switch {
	case sq.TopK < 0 || sq.BottomK < 0:
		return q, fmt.Errorf("topk/bottomk must be positive")
	case sq.TopK > 0 && sq.BottomK > 0:
		return q, fmt.Errorf("topk and bottomk are mutually exclusive")
	case sq.TopK > 0:
		q.SeriesLimit = sq.TopK
	case sq.BottomK > 0:
		q.SeriesLimit = sq.BottomK
		q.LimitLowest = true
	}
	return q, nil
}

// parseQueryParams handles GET ?start=&end=&m=agg:[ds:][rate:]metric{tags}.
func parseQueryParams(r *http.Request, now func() time.Time) (int64, int64, []subQuery, error) {
	v := r.URL.Query()
	start, end, err := parseRange(v.Get("start"), v.Get("end"), now)
	if err != nil {
		return 0, 0, nil, err
	}
	ms := v["m"]
	if len(ms) == 0 {
		return 0, 0, nil, fmt.Errorf("at least one m= metric spec required")
	}
	var subs []subQuery
	for _, spec := range ms {
		sq, err := parseMetricSpec(spec)
		if err != nil {
			return 0, 0, nil, err
		}
		subs = append(subs, sq)
	}
	return start, end, subs, nil
}

// maxQueryBody bounds a POST /api/query request body (1 MiB).
const maxQueryBody = 1 << 20

// parseQueryBody handles the POST JSON request.
func parseQueryBody(r *http.Request, now func() time.Time) (int64, int64, []subQuery, error) {
	var req queryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxQueryBody)).Decode(&req); err != nil {
		return 0, 0, nil, fmt.Errorf("bad JSON body: %v", err)
	}
	start, end, err := parseRange(rawToString(req.Start), rawToString(req.End), now)
	if err != nil {
		return 0, 0, nil, err
	}
	if len(req.Queries) == 0 {
		return 0, 0, nil, fmt.Errorf("at least one query required")
	}
	return start, end, req.Queries, nil
}

// rawToString renders a JSON scalar (number or string) as its text.
func rawToString(raw json.RawMessage) string {
	s := strings.TrimSpace(string(raw))
	return strings.Trim(s, `"`)
}

// parseRange resolves start/end expressions; end defaults to now.
func parseRange(startS, endS string, now func() time.Time) (int64, int64, error) {
	if startS == "" {
		return 0, 0, fmt.Errorf("start required")
	}
	start, err := parseTime(startS, now)
	if err != nil {
		return 0, 0, fmt.Errorf("bad start: %v", err)
	}
	end := now().UnixMilli()
	if endS != "" {
		end, err = parseTime(endS, now)
		if err != nil {
			return 0, 0, fmt.Errorf("bad end: %v", err)
		}
	}
	return start, end, nil
}

// parseTime accepts unix seconds, unix milliseconds, RFC3339, or a
// relative "1h-ago" / "30m-ago" / "2d-ago" expression.
func parseTime(s string, now func() time.Time) (int64, error) {
	if strings.HasSuffix(s, "-ago") {
		d, err := parseDuration(strings.TrimSuffix(s, "-ago"))
		if err != nil {
			return 0, err
		}
		return now().Add(-d).UnixMilli(), nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return normalizeMillis(n), nil
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return 0, fmt.Errorf("unrecognized time %q", s)
	}
	return t.UnixMilli(), nil
}

// parseDuration extends time.ParseDuration with OpenTSDB's d (days)
// and w (weeks) suffixes.
func parseDuration(s string) (time.Duration, error) {
	if n := len(s); n > 1 {
		switch s[n-1] {
		case 'd':
			if v, err := strconv.ParseFloat(s[:n-1], 64); err == nil {
				return time.Duration(v * 24 * float64(time.Hour)), nil
			}
		case 'w':
			if v, err := strconv.ParseFloat(s[:n-1], 64); err == nil {
				return time.Duration(v * 7 * 24 * float64(time.Hour)), nil
			}
		}
	}
	return time.ParseDuration(s)
}

// parseDownsample splits "1h-avg" into interval and aggregator.
func parseDownsample(s string) (time.Duration, tsdb.Aggregator, error) {
	i := strings.IndexByte(s, '-')
	if i <= 0 || i == len(s)-1 {
		return 0, "", fmt.Errorf("bad downsample %q (want e.g. 1h-avg)", s)
	}
	d, err := parseDuration(s[:i])
	if err != nil {
		return 0, "", fmt.Errorf("bad downsample interval %q: %v", s[:i], err)
	}
	fn := tsdb.Aggregator(s[i+1:])
	if !fn.Valid() {
		return 0, "", fmt.Errorf("bad downsample aggregator %q", s[i+1:])
	}
	return d, fn, nil
}

// parseMetricSpec parses OpenTSDB's m= syntax:
// <agg>:[<interval>-<dsagg>:][rate:]<metric>[{k=v,k=*}], optionally
// wrapped in a server-side series selection: topk(<K>,<spec>) or
// bottomk(<K>,<spec>).
func parseMetricSpec(spec string) (subQuery, error) {
	var sq subQuery
	for _, wrap := range []struct {
		prefix string
		lowest bool
	}{{"topk(", false}, {"bottomk(", true}} {
		if !strings.HasPrefix(spec, wrap.prefix) {
			continue
		}
		if !strings.HasSuffix(spec, ")") {
			return sq, fmt.Errorf("unterminated %s...) in %q", wrap.prefix, spec)
		}
		kS, inner, ok := strings.Cut(spec[len(wrap.prefix):len(spec)-1], ",")
		if !ok {
			return sq, fmt.Errorf("%s...) needs a count and a metric spec in %q", wrap.prefix, spec)
		}
		k, err := strconv.Atoi(strings.TrimSpace(kS))
		if err != nil || k <= 0 {
			return sq, fmt.Errorf("bad series count %q in %q (want a positive integer)", kS, spec)
		}
		sq, err = parseMetricSpec(strings.TrimSpace(inner))
		if err != nil {
			return sq, err
		}
		if sq.TopK > 0 || sq.BottomK > 0 {
			return sq, fmt.Errorf("nested topk/bottomk in %q", spec)
		}
		if wrap.lowest {
			sq.BottomK = k
		} else {
			sq.TopK = k
		}
		return sq, nil
	}
	parts := strings.Split(spec, ":")
	if len(parts) < 2 {
		return sq, fmt.Errorf("bad metric spec %q (want agg:metric)", spec)
	}
	sq.Aggregator = parts[0]
	for _, mid := range parts[1 : len(parts)-1] {
		switch {
		case mid == "rate":
			sq.Rate = true
		case strings.Contains(mid, "-"):
			sq.Downsample = mid
		default:
			return sq, fmt.Errorf("bad metric spec component %q", mid)
		}
	}
	m := parts[len(parts)-1]
	if i := strings.IndexByte(m, '{'); i >= 0 {
		if !strings.HasSuffix(m, "}") {
			return sq, fmt.Errorf("unterminated tag filter in %q", m)
		}
		tags := map[string]string{}
		for _, kv := range strings.Split(m[i+1:len(m)-1], ",") {
			if kv == "" {
				continue
			}
			j := strings.IndexByte(kv, '=')
			if j <= 0 {
				return sq, fmt.Errorf("bad tag filter %q", kv)
			}
			tags[kv[:j]] = kv[j+1:]
		}
		sq.Tags = tags
		m = m[:i]
	}
	sq.Metric = m
	return sq, nil
}

// cacheKey canonicalises a request; start/end are aligned down to the
// cache bucket so rolling dashboard queries share entries. The
// alignment interval bounds result staleness. Cached bodies are
// post-selection serialized results, so the key carries the topk/
// bottomk count and the response framing alongside the query shape —
// topk(3,...) and topk(5,...) of the same spec are distinct entries.
func (g *Gateway) cacheKey(start, end int64, subs []subQuery, ndjson bool) string {
	align := g.cfg.CacheAlign.Milliseconds()
	if align > 0 {
		start -= start % align
		end -= end % align
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%d|%t", start, end, ndjson)
	for _, sq := range subs {
		keys := make([]string, 0, len(sq.Tags))
		for k := range sq.Tags {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		// %q-quote every free-form component so delimiter characters
		// inside POSTed values can't make two different queries
		// collide on one cache key.
		fmt.Fprintf(&b, "|%q:%q:%q:%t:%d:%d{", sq.Aggregator, sq.Downsample, sq.Metric, sq.Rate, sq.TopK, sq.BottomK)
		for _, k := range keys {
			fmt.Fprintf(&b, "%q=%q,", k, sq.Tags[k])
		}
		b.WriteByte('}')
	}
	return b.String()
}
