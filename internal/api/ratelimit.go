package api

// Per-client token-bucket rate limiting for the ingest path. Buckets
// refill continuously at rate tokens/second up to burst; a batch of n
// points spends n tokens or is refused with the time until enough
// tokens accrue (the Retry-After answer).

import (
	"sync"
	"time"
)

type rateLimiter struct {
	rate  float64 // tokens per second; 0 disables limiting
	burst float64

	mu      sync.Mutex
	clients map[string]*bucket
	sweep   time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// Bucket-table hygiene: prune entries idle longer than idleTTL
// whenever the table exceeds maxClients at a spend.
const (
	maxClients = 10000
	idleTTL    = 10 * time.Minute
)

func newRateLimiter(rate, burst float64) *rateLimiter {
	return &rateLimiter{rate: rate, burst: burst, clients: make(map[string]*bucket)}
}

// allowN spends n tokens from the client's bucket. When refused, the
// returned duration is how long until n tokens will be available.
func (rl *rateLimiter) allowN(client string, n float64, now time.Time) (bool, time.Duration) {
	if rl.rate <= 0 {
		return true, 0
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b, ok := rl.clients[client]
	if !ok {
		b = &bucket{tokens: rl.burst, last: now}
		rl.clients[client] = b
		rl.maybePrune(now)
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * rl.rate
		if b.tokens > rl.burst {
			b.tokens = rl.burst
		}
	}
	b.last = now
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	deficit := n - b.tokens
	return false, time.Duration(deficit / rl.rate * float64(time.Second))
}

// refund returns n tokens to the client's bucket (capped at burst) —
// used when a batch was charged but then not stored (queue full).
func (rl *rateLimiter) refund(client string, n float64) {
	if rl.rate <= 0 {
		return
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b, ok := rl.clients[client]
	if !ok {
		return
	}
	b.tokens += n
	if b.tokens > rl.burst {
		b.tokens = rl.burst
	}
}

// maybePrune evicts long-idle buckets. Caller holds rl.mu.
func (rl *rateLimiter) maybePrune(now time.Time) {
	if len(rl.clients) <= maxClients || now.Sub(rl.sweep) < time.Minute {
		return
	}
	rl.sweep = now
	for k, b := range rl.clients {
		if now.Sub(b.last) > idleTTL {
			delete(rl.clients, k)
		}
	}
}
