// Package api is the network-facing gateway of the CTT cloud: an
// OpenTSDB-compatible HTTP service over the embedded time-series
// store. The paper's Data Port feeds urban emission measurements into
// an OpenTSDB instance that dashboards and analysts query over HTTP;
// this package reproduces that surface:
//
//	POST /api/put      — JSON batches of data points, through a bounded
//	                     ingest queue with worker-pool batching,
//	                     backpressure (429 + Retry-After) and per-client
//	                     token-bucket rate limiting
//	GET  /api/query    — aggregated, downsampled, rate-converted reads
//	POST /api/query      with an LRU result cache keyed on the query and
//	                     an aligned time bucket
//	GET  /api/suggest  — metric/tag-key/tag-value discovery
//	GET  /api/stream   — server-sent events pushing matching points to
//	                     live dashboard subscribers
//	GET  /metrics      — Prometheus text exposition: the pre-existing
//	                     counters and gauges plus latency histograms for
//	                     every pipeline stage (request, ingest batch,
//	                     queue wait, WAL append/fsync, insert, fan-out)
//	GET  /healthz      — liveness with saturation detail: queue headroom,
//	                     WAL size and fsync age, subsystem lag; 503 with
//	                     a reason when the ingest queue is near capacity
//	GET  /api/inflight — live requests with elapsed time, current stage
//	                     and trace ID
//	GET  /api/traces   — the trace flight recorder: recently retained
//	                     request traces (slow or sampled), and
//	                     /api/traces/{id} for one full span tree
//
// Every query carries an obs.Trace through the store's streaming
// executor; queries slower than Config.SlowQuery log their full span
// tree as one structured line and are captured — along with every
// TraceSample'd query — into a bounded flight recorder, so the span
// tree stays fetchable after the request completes. The request
// histograms attach those trace IDs as OpenMetrics exemplars
// (GET /metrics?format=openmetrics).
package api

import (
	"crypto/subtle"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataport"
	"repro/internal/obs"
	"repro/internal/tsdb"
)

// Config tunes the gateway. Zero values select the defaults.
type Config struct {
	// QueueSize bounds the ingest queue (points). Default 4096.
	QueueSize int
	// Workers is the number of batching writer goroutines. Default 4.
	Workers int
	// BatchSize caps points per tsdb.AppendBatch call. Default 256.
	BatchSize int
	// RateLimit is the sustained per-client ingest budget in
	// points/second; 0 disables rate limiting.
	RateLimit float64
	// RateBurst is the token-bucket depth. Default max(RateLimit, 1).
	RateBurst float64
	// CacheSize bounds the query-result cache (entries). 0 selects
	// the default of 128; negative disables caching entirely.
	CacheSize int
	// CacheAlign aligns query time ranges to this bucket for cache
	// keying — the bound on result staleness. Default 10s.
	CacheAlign time.Duration
	// StreamBuffer is the per-subscriber event buffer; events beyond it
	// are dropped (slow-consumer protection). Default 256.
	StreamBuffer int
	// Heartbeat is the SSE keep-alive comment interval. Default 15s.
	Heartbeat time.Duration
	// APIKey, when non-empty, requires every data request (/api/put,
	// /api/query, /api/suggest, /api/stream) to carry the key in an
	// X-API-Key header; mismatches are 401s, counted on /metrics.
	// Ops endpoints (/metrics, /healthz) stay open.
	APIKey string
	// Now injects a clock for relative time parsing and cache
	// alignment (simulated pilots run on simulated time). Default
	// time.Now.
	Now func() time.Time
	// SlowQuery, when >0, logs every query whose total handling time
	// exceeds it: one structured line with the full span tree,
	// per-stage durations, result sizes and the planner decision.
	SlowQuery time.Duration
	// TraceSample turns on per-point detail timing (block decode, head
	// scan, downsample fold) for every Nth query; 0 disables detail.
	// The coarse per-stage numbers are always collected. Sampled
	// queries are also captured into the trace flight recorder.
	TraceSample int
	// TraceRetain sizes the trace flight recorder ring — how many
	// completed request traces /api/traces can serve after the fact.
	// 0 selects the default (obs.DefaultRecorderSize); negative
	// disables retention entirely.
	TraceRetain int
	// Logger receives the gateway's structured output (slow queries).
	// Default slog.Default().
	Logger *slog.Logger
}

func (c *Config) setDefaults() {
	if c.QueueSize <= 0 {
		c.QueueSize = 4096
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.RateBurst <= 0 {
		c.RateBurst = c.RateLimit
		if c.RateBurst < 1 {
			c.RateBurst = 1
		}
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.CacheAlign <= 0 {
		c.CacheAlign = 10 * time.Second
	}
	if c.StreamBuffer <= 0 {
		c.StreamBuffer = 256
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 15 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
}

// Gateway is the HTTP ingest/query service.
type Gateway struct {
	db  *tsdb.DB
	dp  *dataport.Dataport // optional; enriches /metrics
	cfg Config

	queue  chan tsdb.RefPoint
	qmu    sync.Mutex
	closed bool
	wg     sync.WaitGroup

	limiter *rateLimiter
	cache   *queryCache
	hub     *streamHub

	// exec streams query results from the store. It defaults to
	// db.ExecuteStream; tests substitute it to exercise mid-stream
	// failures and flushing without corrupting a real store.
	exec func(q tsdb.Query, yield func(tsdb.ResultSeries) error) error

	// removeObservers detaches the gateway's store observers (live
	// stream fan-out, cache invalidation) on Close.
	removeObservers []func()

	// reg is the metrics registry behind /metrics; inflight the live
	// request table behind /api/inflight; recorder the trace flight
	// recorder behind /api/traces (nil when disabled).
	reg      *obs.Registry
	inflight *obs.Inflight
	recorder *obs.Recorder

	// per-endpoint request latency plus the ingest queue-wait
	// histogram (marks recorded in EnqueueRefs, popped in worker).
	histQuery     *obs.Histogram // ctt_http_request_seconds{endpoint="query"}
	histPut       *obs.Histogram // ctt_http_request_seconds{endpoint="put"}
	histSuggest   *obs.Histogram // ctt_http_request_seconds{endpoint="suggest"}
	histQueueWait *obs.Histogram // ctt_ingest_queue_wait_seconds

	// queue-wait marks: enqueue timestamps tagged with the cumulative
	// enqueue sequence; a worker whose dequeue counter passes a mark's
	// sequence observes its age. Bounded, so a stalled consumer costs
	// sampling coverage, never memory.
	markMu sync.Mutex
	marks  []queueMark
	enqSeq int64
	deqSeq atomic.Int64

	// role tracks replica mode (read-only + primary address + the
	// promotion hook behind /api/promote).
	role roleState

	// healthSources contribute subsystem detail (rollup watermark lag)
	// to /healthz without the gateway importing those packages.
	hsMu          sync.Mutex
	healthSources []func(m map[string]any)

	// counters
	ingested    atomic.Uint64 // points stored
	storeErrors atomic.Uint64 // points rejected by the store (post-queue)
	rejectFull  atomic.Uint64 // points refused: queue full
	rejectRate  atomic.Uint64 // points refused: rate limited
	invalid     atomic.Uint64 // points refused: validation
	putReqs     atomic.Uint64
	queryReqs   atomic.Uint64
	queryErrs   atomic.Uint64
	authFails   atomic.Uint64 // requests refused: missing/wrong API key
	panics      atomic.Uint64 // handler panics recovered by the middleware

	rate ewmaRate

	srv *http.Server
	ln  net.Listener
}

// New builds a gateway over db and starts its ingest workers. dp may
// be nil. Call Close to drain and stop.
func New(db *tsdb.DB, dp *dataport.Dataport, cfg Config) *Gateway {
	g := newGateway(db, dp, cfg)
	g.startWorkers()
	return g
}

// newGateway assembles a gateway without launching workers (tests
// fill the queue deterministically before starting them).
func newGateway(db *tsdb.DB, dp *dataport.Dataport, cfg Config) *Gateway {
	cfg.setDefaults()
	g := &Gateway{
		db:      db,
		dp:      dp,
		cfg:     cfg,
		queue:   make(chan tsdb.RefPoint, cfg.QueueSize),
		limiter: newRateLimiter(cfg.RateLimit, cfg.RateBurst),
		cache:   newQueryCache(cfg.CacheSize),
		hub:     newStreamHub(cfg.StreamBuffer),
		exec:    db.ExecuteStream,
	}
	// Every stored point — whether it arrived over HTTP, telnet, or
	// from an in-process writer like the simulated pilot — feeds the
	// live stream and invalidates cached queries covering its range.
	// One batch-granular observer serves both: a 256-point batch costs
	// one fan-out call, not 512.
	g.removeObservers = append(g.removeObservers,
		db.AddBatchObserver(func(rps []tsdb.RefPoint) {
			for _, rp := range rps {
				g.cache.invalidate(rp.Ref.Metric(), rp.Timestamp)
			}
			g.hub.publishBatch(rps)
		}),
	)
	g.initObs()
	return g
}

// initObs builds the metrics registry: gauges over the gateway's and
// store's existing counters (names and order preserved from the
// pre-registry /metrics), the latency histograms, and the store-side
// ingest instrumentation.
func (g *Gateway) initObs() {
	reg := obs.NewRegistry()
	g.reg = reg
	g.inflight = obs.NewInflight()
	if g.cfg.TraceRetain >= 0 {
		g.recorder = obs.NewRecorder(g.cfg.TraceRetain)
	}

	obs.RegisterProcessMetrics(reg)
	obs.NewRuntimeCollector().Register(reg)
	reg.Gauge("ctt_traces_retained", func() float64 { return float64(g.recorder.Len()) })

	reg.Gauge("ctt_ingest_queue_depth", func() float64 { return float64(len(g.queue)) })
	reg.Gauge("ctt_ingest_queue_capacity", func() float64 { return float64(cap(g.queue)) })
	reg.Gauge("ctt_ingest_points_total", func() float64 { return float64(g.ingested.Load()) })
	reg.Gauge("ctt_ingest_store_errors_total", func() float64 { return float64(g.storeErrors.Load()) })
	reg.Gauge(`ctt_ingest_rejected_total{reason="queue_full"}`, func() float64 { return float64(g.rejectFull.Load()) })
	reg.Gauge(`ctt_ingest_rejected_total{reason="rate_limited"}`, func() float64 { return float64(g.rejectRate.Load()) })
	reg.Gauge(`ctt_ingest_rejected_total{reason="invalid"}`, func() float64 { return float64(g.invalid.Load()) })
	reg.Gauge("ctt_ingest_rate_points_per_second", func() float64 { return g.rate.value(time.Now()) })
	reg.Gauge("ctt_put_requests_total", func() float64 { return float64(g.putReqs.Load()) })
	reg.Gauge("ctt_query_requests_total", func() float64 { return float64(g.queryReqs.Load()) })
	reg.Gauge("ctt_query_errors_total", func() float64 { return float64(g.queryErrs.Load()) })
	reg.Gauge("ctt_auth_failures_total", func() float64 { return float64(g.authFails.Load()) })
	reg.Gauge("ctt_panics_total", func() float64 { return float64(g.panics.Load()) })
	reg.Gauge("ctt_loop_panics_total", func() float64 { return float64(obs.LoopPanics()) })
	reg.Gauge("ctt_loop_restarts_total", func() float64 { return float64(obs.LoopRestarts()) })
	reg.Gauge("ctt_degraded", func() float64 {
		if g.db.Degraded() != nil {
			return 1
		}
		return 0
	})
	reg.Gauge(`ctt_storage_errors_total{op="wal_append"}`, func() float64 { return float64(g.db.StorageErrors().WALAppend) })
	reg.Gauge(`ctt_storage_errors_total{op="wal_fsync"}`, func() float64 { return float64(g.db.StorageErrors().WALFsync) })
	reg.Gauge(`ctt_storage_errors_total{op="flush"}`, func() float64 { return float64(g.db.StorageErrors().Flush) })
	reg.Gauge(`ctt_storage_errors_total{op="compact"}`, func() float64 { return float64(g.db.StorageErrors().Compact) })
	reg.Gauge("ctt_query_cache_hits_total", func() float64 { h, _, _ := g.cache.stats(); return float64(h) })
	reg.Gauge("ctt_query_cache_misses_total", func() float64 { _, m, _ := g.cache.stats(); return float64(m) })
	reg.Gauge("ctt_query_cache_invalidations_total", func() float64 { _, _, inv := g.cache.stats(); return float64(inv) })
	reg.Gauge("ctt_query_cache_hit_ratio", func() float64 {
		h, m, _ := g.cache.stats()
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	})
	reg.Gauge("ctt_stream_subscribers", func() float64 { return float64(g.hub.subscriberCount()) })
	reg.Gauge("ctt_stream_dropped_total", func() float64 { return float64(g.hub.droppedCount()) })
	reg.Gauge("ctt_tsdb_series", func() float64 { return float64(g.db.SeriesCount()) })
	reg.Gauge("ctt_tsdb_points", func() float64 { return float64(g.db.PointCount()) })
	reg.Gauge("ctt_tsdb_compressed_bytes", func() float64 { return float64(g.db.CompressedBytes()) })
	reg.Gauge("ctt_wal_bytes", func() float64 { return float64(g.db.WALBytes()) })
	reg.Gauge("ctt_tsdb_compression_ratio", func() float64 {
		// Raw size baseline: 16 bytes/point (int64 ts + float64 value).
		c := g.db.CompressedBytes()
		if c == 0 {
			return 0
		}
		return float64(g.db.PointCount()*16) / float64(c)
	})
	if g.db.DiskStats().Enabled {
		reg.Gauge("ctt_disk_bytes", func() float64 { return float64(g.db.DiskStats().Bytes) })
		reg.Gauge("ctt_disk_block_files", func() float64 { return float64(g.db.DiskStats().Files) })
		reg.Gauge("ctt_disk_chunks", func() float64 { return float64(g.db.DiskStats().Chunks) })
		reg.Gauge("ctt_disk_quarantined_total", func() float64 { return float64(g.db.DiskStats().Quarantined) })
		reg.Gauge("ctt_disk_read_errors_total", func() float64 { return float64(g.db.DiskStats().ReadErrors) })
		reg.Gauge("ctt_disk_flush_errors_total", func() float64 { return float64(g.db.DiskStats().FlushErrors) })
		reg.Gauge("ctt_disk_flushes_total", func() float64 { return float64(g.db.DiskStats().Flushes) })
		reg.Gauge("ctt_disk_compactions_total", func() float64 { return float64(g.db.DiskStats().Compactions) })
		reg.Gauge("ctt_last_flush_age_seconds", func() float64 {
			st := g.db.DiskStats()
			if st.LastFlush.IsZero() {
				return -1 // no flush yet this process
			}
			return time.Since(st.LastFlush).Seconds()
		})
	}
	if g.dp != nil {
		reg.Gauge("ctt_dataport_sensors", func() float64 { return float64(g.dp.Stats().Sensors) })
		reg.Gauge("ctt_dataport_gateways", func() float64 { return float64(g.dp.Stats().Gateways) })
		reg.Gauge("ctt_dataport_alarms_total", func() float64 { return float64(g.dp.Stats().Alarms) })
	}

	g.histQuery = reg.Histogram("ctt_http_request_seconds", `endpoint="query"`, nil)
	g.histPut = reg.Histogram("ctt_http_request_seconds", `endpoint="put"`, nil)
	g.histSuggest = reg.Histogram("ctt_http_request_seconds", `endpoint="suggest"`, nil)
	g.histQueueWait = reg.Histogram("ctt_ingest_queue_wait_seconds", "", nil)
	g.db.SetInstrumentation(&tsdb.Instrumentation{
		IngestBatch: reg.Histogram("ctt_ingest_batch_seconds", "", nil),
		WALAppend:   reg.Histogram("ctt_wal_append_seconds", "", nil),
		WALFsync:    reg.Histogram("ctt_wal_fsync_seconds", "", nil),
		Insert:      reg.Histogram("ctt_tsdb_insert_seconds", "", nil),
		Fanout:      reg.Histogram("ctt_tsdb_fanout_seconds", "", nil),
		Flush:       reg.Histogram("ctt_flush_seconds", "", nil),
		Compact:     reg.Histogram("ctt_compact_seconds", "", nil),
	})
}

// Registry exposes the gateway's metrics registry so sibling
// subsystems can register their own histograms next to the gateway's.
func (g *Gateway) Registry() *obs.Registry { return g.reg }

// AddMetricsSource registers fn to append lines to /metrics — how the
// rollup engine and line-protocol listener surface their counters on
// the gateway's one instrumentation endpoint.
func (g *Gateway) AddMetricsSource(fn func(emit func(name string, v any))) {
	g.reg.AddSource(fn)
}

// AddHealthSource registers fn to fold subsystem detail into the
// /healthz body (the rollup engine reports its watermark lag here).
func (g *Gateway) AddHealthSource(fn func(m map[string]any)) {
	g.hsMu.Lock()
	g.healthSources = append(g.healthSources, fn)
	g.hsMu.Unlock()
}

func (g *Gateway) startWorkers() {
	for i := 0; i < g.cfg.Workers; i++ {
		g.wg.Add(1)
		go g.worker()
	}
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/put", g.requireKey(g.handlePut))
	mux.HandleFunc("/api/query", g.requireKey(g.handleQuery))
	mux.HandleFunc("/api/suggest", g.requireKey(g.handleSuggest))
	mux.HandleFunc("/api/stream", g.requireKey(g.handleStream))
	mux.HandleFunc("/api/promote", g.requireKey(g.handlePromote))
	mux.HandleFunc("/api/inflight", g.requireKey(g.handleInflight))
	mux.HandleFunc("/api/traces", g.requireKey(g.handleTraces))
	mux.HandleFunc("/api/traces/", g.requireKey(g.handleTraces))
	mux.HandleFunc("/metrics", g.handleMetrics)
	mux.HandleFunc("/healthz", g.handleHealthz)
	return g.withRecover(mux)
}

// recoverWriter tracks whether the handler already wrote to the
// response, so the recover middleware knows whether a clean 500 is
// still possible or the stream must be torn down instead.
type recoverWriter struct {
	http.ResponseWriter
	wrote bool
}

func (rw *recoverWriter) WriteHeader(code int) {
	rw.wrote = true
	rw.ResponseWriter.WriteHeader(code)
}

func (rw *recoverWriter) Write(p []byte) (int, error) {
	rw.wrote = true
	return rw.ResponseWriter.Write(p)
}

// Flush passes through so SSE streaming keeps working behind the
// middleware.
func (rw *recoverWriter) Flush() {
	if f, ok := rw.ResponseWriter.(http.Flusher); ok {
		rw.wrote = true
		f.Flush()
	}
}

// withRecover contains handler panics per request: one poisoned
// request must not kill the whole server, and a half-written response
// must not be completed as if it were healthy. If nothing has been
// written yet the client gets a clean 500; mid-stream the connection
// is aborted (via http.ErrAbortHandler) so the client sees a torn
// transfer, never a silently truncated body. http.ErrAbortHandler
// itself passes through uncounted — it is the standard way handlers
// abort deliberately.
func (g *Gateway) withRecover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rw := &recoverWriter{ResponseWriter: w}
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if err, ok := rec.(error); ok && err == http.ErrAbortHandler {
				panic(rec)
			}
			g.panics.Add(1)
			g.cfg.Logger.Error("handler panic",
				"method", r.Method, "path", r.URL.Path,
				"panic", rec, "stack", string(debug.Stack()))
			if !rw.wrote {
				httpError(rw, http.StatusInternalServerError, "internal server error")
				return
			}
			// Response already underway: abort the connection so the
			// client cannot mistake the truncated body for a complete one.
			panic(http.ErrAbortHandler)
		}()
		next.ServeHTTP(rw, r)
	})
}

// requireKey gates a data endpoint behind Config.APIKey. With no key
// configured it is a pass-through.
func (g *Gateway) requireKey(h http.HandlerFunc) http.HandlerFunc {
	if g.cfg.APIKey == "" {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if !g.CheckAPIKey(r.Header.Get("X-API-Key")) {
			g.authFails.Add(1)
			httpError(w, http.StatusUnauthorized, "missing or invalid X-API-Key")
			return
		}
		h(w, r)
	}
}

// RequiresAPIKey reports whether the gateway demands a key on data
// requests. The telnet listener (internal/lineproto) consults it, so
// configuring the gateway's key once protects both ingest edges.
func (g *Gateway) RequiresAPIKey() bool { return g.cfg.APIKey != "" }

// CheckAPIKey reports whether key matches the configured API key, in
// constant time. With no key configured every caller is authorized.
// Together with RequiresAPIKey this is the one auth policy shared
// with the telnet listener.
func (g *Gateway) CheckAPIKey(key string) bool {
	if g.cfg.APIKey == "" {
		return true
	}
	return subtle.ConstantTimeCompare([]byte(key), []byte(g.cfg.APIKey)) == 1
}

// Start serves on addr until Close.
func (g *Gateway) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("api: %w", err)
	}
	g.ln = ln
	// No WriteTimeout: /api/stream holds SSE connections open
	// indefinitely. Header-read and idle timeouts still bound
	// slow-loris and abandoned keep-alive connections.
	g.srv = &http.Server{
		Handler:           g.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go g.srv.Serve(ln)
	return ln.Addr(), nil
}

// Close stops accepting writes, drains the queue, and shuts the
// server and stream hub down.
func (g *Gateway) Close() error {
	g.qmu.Lock()
	if !g.closed {
		g.closed = true
		close(g.queue)
	}
	g.qmu.Unlock()
	g.wg.Wait()
	for _, remove := range g.removeObservers {
		remove()
	}
	g.hub.closeAll()
	if g.srv != nil {
		return g.srv.Close()
	}
	return nil
}

// clientKey identifies a client for rate limiting: the remote IP.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// --- /api/suggest ------------------------------------------------------

func (g *Gateway) handleSuggest(w http.ResponseWriter, r *http.Request) {
	defer g.histSuggest.ObserveSince(time.Now())
	q := r.URL.Query()
	max := 25
	if v := q.Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "bad max %q (want a positive integer)", v)
			return
		}
		max = n
	}
	prefix := q.Get("q")
	var out []string
	switch t := q.Get("type"); t {
	case "metrics":
		out = g.db.SuggestMetrics(prefix, max)
	case "tagk":
		out = g.db.SuggestTagKeys(prefix, max)
	case "tagv":
		out = g.db.SuggestTagValues(prefix, max)
	default:
		httpError(w, http.StatusBadRequest, "type must be metrics, tagk or tagv")
		return
	}
	if out == nil {
		out = []string{}
	}
	writeJSON(w, http.StatusOK, out)
}

// --- /metrics ----------------------------------------------------------

// handleMetrics serves the registry. Expose snapshots every value and
// formats entirely outside the registry lock, so a slow scrape can
// never stall registration or another scrape. ?format=openmetrics
// (or an Accept header naming application/openmetrics-text) selects
// the OpenMetrics flavor, whose histogram buckets carry trace-linked
// exemplars.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsOpenMetrics(r) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		w.Write(g.reg.ExposeOpenMetrics())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(g.reg.Expose())
}

// wantsOpenMetrics reports whether the scrape asked for the
// OpenMetrics exposition, by query parameter or Accept header.
func wantsOpenMetrics(r *http.Request) bool {
	if r.URL.Query().Get("format") == "openmetrics" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text")
}

// --- /healthz ----------------------------------------------------------

// healthSaturation is the queue-occupancy fraction at which /healthz
// flips to 503: ingest is still accepting, but the next burst will 429,
// so load balancers should stop routing new producers here.
const healthSaturation = 0.95

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	depth, capacity := len(g.queue), cap(g.queue)
	m := map[string]any{
		"status":                "ok",
		"ingest_queue_depth":    depth,
		"ingest_queue_capacity": capacity,
		"wal_bytes":             g.db.WALBytes(),
	}
	if ro, primary := g.ReadOnly(); ro {
		m["role"] = "replica"
		m["primary"] = primary
	} else {
		m["role"] = "primary"
	}
	if t, ok := g.db.WALLastSync(); ok {
		m["wal_last_fsync_age_ms"] = time.Since(t).Milliseconds()
	}
	if ds := g.db.DiskStats(); ds.Enabled {
		m["disk_bytes"] = ds.Bytes
		m["disk_block_files"] = ds.Files
		m["disk_quarantined"] = ds.Quarantined
		m["disk_flush_errors"] = ds.FlushErrors
		m["wal_truncation_pending"] = ds.WALTruncationPending
		if !ds.LastFlush.IsZero() {
			m["last_flush_age_ms"] = time.Since(ds.LastFlush).Milliseconds()
		}
	}
	g.hsMu.Lock()
	srcs := g.healthSources
	g.hsMu.Unlock()
	for _, fn := range srcs {
		fn(m)
	}
	code := http.StatusOK
	// A health source may flip the status itself (ctt-server's flush-lag
	// source does); any non-"ok" status serves 503 so load balancers see
	// subsystem saturation, not just queue pressure.
	if s, _ := m["status"].(string); s != "" && s != "ok" {
		code = http.StatusServiceUnavailable
	}
	if capacity > 0 && float64(depth) >= healthSaturation*float64(capacity) {
		m["status"] = "saturated"
		m["reason"] = fmt.Sprintf("ingest queue %d/%d is over %.0f%% full", depth, capacity, healthSaturation*100)
		code = http.StatusServiceUnavailable
	}
	retryAfter := "1"
	// Degraded wins over saturation: the store has stopped accepting
	// writes until an operator intervenes, which matters more to a load
	// balancer than transient queue pressure — and warrants a longer
	// back-off.
	if derr := g.db.Degraded(); derr != nil {
		m["status"] = "degraded"
		m["degraded_error"] = derr.Error()
		if since, ok := g.db.DegradedSince(); ok {
			m["degraded_for_ms"] = time.Since(since).Milliseconds()
		}
		code = http.StatusServiceUnavailable
		retryAfter = "30"
	}
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfter)
	}
	writeJSON(w, code, m)
}

// --- /api/inflight -----------------------------------------------------

// handleInflight lists live requests, longest-running first, each with
// its elapsed time and the pipeline stage it last entered.
func (g *Gateway) handleInflight(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.inflight.Snapshot())
}

// ewmaRate tracks an exponentially-weighted ingest rate.
type ewmaRate struct {
	mu   sync.Mutex
	rate float64
	last time.Time
}

// observe credits n points at time now.
func (e *ewmaRate) observe(n int, now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.last.IsZero() {
		e.last, e.rate = now, 0
		return
	}
	dt := now.Sub(e.last).Seconds()
	if dt <= 0 {
		return
	}
	inst := float64(n) / dt
	// ~10s time constant.
	alpha := 1 - math.Exp(-dt/10)
	e.rate += alpha * (inst - e.rate)
	e.last = now
}

func (e *ewmaRate) value(now time.Time) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.last.IsZero() {
		return 0
	}
	// Decay toward zero when idle.
	if dt := now.Sub(e.last).Seconds(); dt > 0 {
		return e.rate * math.Exp(-dt/10)
	}
	return e.rate
}
