// Package api is the network-facing gateway of the CTT cloud: an
// OpenTSDB-compatible HTTP service over the embedded time-series
// store. The paper's Data Port feeds urban emission measurements into
// an OpenTSDB instance that dashboards and analysts query over HTTP;
// this package reproduces that surface:
//
//	POST /api/put      — JSON batches of data points, through a bounded
//	                     ingest queue with worker-pool batching,
//	                     backpressure (429 + Retry-After) and per-client
//	                     token-bucket rate limiting
//	GET  /api/query    — aggregated, downsampled, rate-converted reads
//	POST /api/query      with an LRU result cache keyed on the query and
//	                     an aligned time bucket
//	GET  /api/suggest  — metric/tag-key/tag-value discovery
//	GET  /api/stream   — server-sent events pushing matching points to
//	                     live dashboard subscribers
//	GET  /metrics      — self-instrumentation (ingest rate, queue depth,
//	                     cache hit ratio, compression ratio)
package api

import (
	"crypto/subtle"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataport"
	"repro/internal/tsdb"
)

// Config tunes the gateway. Zero values select the defaults.
type Config struct {
	// QueueSize bounds the ingest queue (points). Default 4096.
	QueueSize int
	// Workers is the number of batching writer goroutines. Default 4.
	Workers int
	// BatchSize caps points per tsdb.AppendBatch call. Default 256.
	BatchSize int
	// RateLimit is the sustained per-client ingest budget in
	// points/second; 0 disables rate limiting.
	RateLimit float64
	// RateBurst is the token-bucket depth. Default max(RateLimit, 1).
	RateBurst float64
	// CacheSize bounds the query-result cache (entries). 0 selects
	// the default of 128; negative disables caching entirely.
	CacheSize int
	// CacheAlign aligns query time ranges to this bucket for cache
	// keying — the bound on result staleness. Default 10s.
	CacheAlign time.Duration
	// StreamBuffer is the per-subscriber event buffer; events beyond it
	// are dropped (slow-consumer protection). Default 256.
	StreamBuffer int
	// Heartbeat is the SSE keep-alive comment interval. Default 15s.
	Heartbeat time.Duration
	// APIKey, when non-empty, requires every data request (/api/put,
	// /api/query, /api/suggest, /api/stream) to carry the key in an
	// X-API-Key header; mismatches are 401s, counted on /metrics.
	// Ops endpoints (/metrics, /healthz) stay open.
	APIKey string
	// Now injects a clock for relative time parsing and cache
	// alignment (simulated pilots run on simulated time). Default
	// time.Now.
	Now func() time.Time
}

func (c *Config) setDefaults() {
	if c.QueueSize <= 0 {
		c.QueueSize = 4096
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.RateBurst <= 0 {
		c.RateBurst = c.RateLimit
		if c.RateBurst < 1 {
			c.RateBurst = 1
		}
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.CacheAlign <= 0 {
		c.CacheAlign = 10 * time.Second
	}
	if c.StreamBuffer <= 0 {
		c.StreamBuffer = 256
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 15 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Gateway is the HTTP ingest/query service.
type Gateway struct {
	db  *tsdb.DB
	dp  *dataport.Dataport // optional; enriches /metrics
	cfg Config

	queue  chan tsdb.RefPoint
	qmu    sync.Mutex
	closed bool
	wg     sync.WaitGroup

	limiter *rateLimiter
	cache   *queryCache
	hub     *streamHub

	// exec streams query results from the store. It defaults to
	// db.ExecuteStream; tests substitute it to exercise mid-stream
	// failures and flushing without corrupting a real store.
	exec func(q tsdb.Query, yield func(tsdb.ResultSeries) error) error

	// removeObservers detaches the gateway's store observers (live
	// stream fan-out, cache invalidation) on Close.
	removeObservers []func()

	// extraMetrics are additional /metrics emitters registered by
	// sibling subsystems (rollup engine, line-protocol listener).
	emMu         sync.RWMutex
	extraMetrics []func(emit func(name string, v any))

	// counters
	ingested    atomic.Uint64 // points stored
	storeErrors atomic.Uint64 // points rejected by the store (post-queue)
	rejectFull  atomic.Uint64 // points refused: queue full
	rejectRate  atomic.Uint64 // points refused: rate limited
	invalid     atomic.Uint64 // points refused: validation
	putReqs     atomic.Uint64
	queryReqs   atomic.Uint64
	queryErrs   atomic.Uint64
	authFails   atomic.Uint64 // requests refused: missing/wrong API key

	rate ewmaRate

	srv *http.Server
	ln  net.Listener
}

// New builds a gateway over db and starts its ingest workers. dp may
// be nil. Call Close to drain and stop.
func New(db *tsdb.DB, dp *dataport.Dataport, cfg Config) *Gateway {
	g := newGateway(db, dp, cfg)
	g.startWorkers()
	return g
}

// newGateway assembles a gateway without launching workers (tests
// fill the queue deterministically before starting them).
func newGateway(db *tsdb.DB, dp *dataport.Dataport, cfg Config) *Gateway {
	cfg.setDefaults()
	g := &Gateway{
		db:      db,
		dp:      dp,
		cfg:     cfg,
		queue:   make(chan tsdb.RefPoint, cfg.QueueSize),
		limiter: newRateLimiter(cfg.RateLimit, cfg.RateBurst),
		cache:   newQueryCache(cfg.CacheSize),
		hub:     newStreamHub(cfg.StreamBuffer),
		exec:    db.ExecuteStream,
	}
	// Every stored point — whether it arrived over HTTP, telnet, or
	// from an in-process writer like the simulated pilot — feeds the
	// live stream and invalidates cached queries covering its range.
	// One batch-granular observer serves both: a 256-point batch costs
	// one fan-out call, not 512.
	g.removeObservers = append(g.removeObservers,
		db.AddBatchObserver(func(rps []tsdb.RefPoint) {
			for _, rp := range rps {
				g.cache.invalidate(rp.Ref.Metric(), rp.Timestamp)
			}
			g.hub.publishBatch(rps)
		}),
	)
	return g
}

// AddMetricsSource registers fn to append lines to /metrics — how the
// rollup engine and line-protocol listener surface their counters on
// the gateway's one instrumentation endpoint.
func (g *Gateway) AddMetricsSource(fn func(emit func(name string, v any))) {
	g.emMu.Lock()
	g.extraMetrics = append(g.extraMetrics, fn)
	g.emMu.Unlock()
}

func (g *Gateway) startWorkers() {
	for i := 0; i < g.cfg.Workers; i++ {
		g.wg.Add(1)
		go g.worker()
	}
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/put", g.requireKey(g.handlePut))
	mux.HandleFunc("/api/query", g.requireKey(g.handleQuery))
	mux.HandleFunc("/api/suggest", g.requireKey(g.handleSuggest))
	mux.HandleFunc("/api/stream", g.requireKey(g.handleStream))
	mux.HandleFunc("/metrics", g.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	return mux
}

// requireKey gates a data endpoint behind Config.APIKey. With no key
// configured it is a pass-through.
func (g *Gateway) requireKey(h http.HandlerFunc) http.HandlerFunc {
	if g.cfg.APIKey == "" {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if !g.CheckAPIKey(r.Header.Get("X-API-Key")) {
			g.authFails.Add(1)
			httpError(w, http.StatusUnauthorized, "missing or invalid X-API-Key")
			return
		}
		h(w, r)
	}
}

// RequiresAPIKey reports whether the gateway demands a key on data
// requests. The telnet listener (internal/lineproto) consults it, so
// configuring the gateway's key once protects both ingest edges.
func (g *Gateway) RequiresAPIKey() bool { return g.cfg.APIKey != "" }

// CheckAPIKey reports whether key matches the configured API key, in
// constant time. With no key configured every caller is authorized.
// Together with RequiresAPIKey this is the one auth policy shared
// with the telnet listener.
func (g *Gateway) CheckAPIKey(key string) bool {
	if g.cfg.APIKey == "" {
		return true
	}
	return subtle.ConstantTimeCompare([]byte(key), []byte(g.cfg.APIKey)) == 1
}

// Start serves on addr until Close.
func (g *Gateway) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("api: %w", err)
	}
	g.ln = ln
	g.srv = &http.Server{Handler: g.Handler()}
	go g.srv.Serve(ln)
	return ln.Addr(), nil
}

// Close stops accepting writes, drains the queue, and shuts the
// server and stream hub down.
func (g *Gateway) Close() error {
	g.qmu.Lock()
	if !g.closed {
		g.closed = true
		close(g.queue)
	}
	g.qmu.Unlock()
	g.wg.Wait()
	for _, remove := range g.removeObservers {
		remove()
	}
	g.hub.closeAll()
	if g.srv != nil {
		return g.srv.Close()
	}
	return nil
}

// clientKey identifies a client for rate limiting: the remote IP.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// --- /api/suggest ------------------------------------------------------

func (g *Gateway) handleSuggest(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	max := 25
	if v := q.Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "bad max %q (want a positive integer)", v)
			return
		}
		max = n
	}
	prefix := q.Get("q")
	var out []string
	switch t := q.Get("type"); t {
	case "metrics":
		out = g.db.SuggestMetrics(prefix, max)
	case "tagk":
		out = g.db.SuggestTagKeys(prefix, max)
	case "tagv":
		out = g.db.SuggestTagValues(prefix, max)
	default:
		httpError(w, http.StatusBadRequest, "type must be metrics, tagk or tagv")
		return
	}
	if out == nil {
		out = []string{}
	}
	writeJSON(w, http.StatusOK, out)
}

// --- /metrics ----------------------------------------------------------

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	emit := func(name string, v any) {
		fmt.Fprintf(&b, "%s %v\n", name, v)
	}
	emit("ctt_ingest_queue_depth", len(g.queue))
	emit("ctt_ingest_queue_capacity", cap(g.queue))
	emit("ctt_ingest_points_total", g.ingested.Load())
	emit("ctt_ingest_store_errors_total", g.storeErrors.Load())
	emit(`ctt_ingest_rejected_total{reason="queue_full"}`, g.rejectFull.Load())
	emit(`ctt_ingest_rejected_total{reason="rate_limited"}`, g.rejectRate.Load())
	emit(`ctt_ingest_rejected_total{reason="invalid"}`, g.invalid.Load())
	emit("ctt_ingest_rate_points_per_second", fmt.Sprintf("%.3f", g.rate.value(time.Now())))
	emit("ctt_put_requests_total", g.putReqs.Load())
	emit("ctt_query_requests_total", g.queryReqs.Load())
	emit("ctt_query_errors_total", g.queryErrs.Load())
	emit("ctt_auth_failures_total", g.authFails.Load())
	hits, misses, invalidated := g.cache.stats()
	emit("ctt_query_cache_hits_total", hits)
	emit("ctt_query_cache_misses_total", misses)
	emit("ctt_query_cache_invalidations_total", invalidated)
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	emit("ctt_query_cache_hit_ratio", fmt.Sprintf("%.3f", ratio))
	emit("ctt_stream_subscribers", g.hub.subscriberCount())
	emit("ctt_stream_dropped_total", g.hub.droppedCount())

	series := g.db.SeriesCount()
	points := g.db.PointCount()
	compressed := g.db.CompressedBytes()
	emit("ctt_tsdb_series", series)
	emit("ctt_tsdb_points", points)
	emit("ctt_tsdb_compressed_bytes", compressed)
	emit("ctt_wal_bytes", g.db.WALBytes())
	// Raw size baseline: 16 bytes per point (int64 ts + float64 value).
	if compressed > 0 {
		emit("ctt_tsdb_compression_ratio", fmt.Sprintf("%.3f", float64(points*16)/float64(compressed)))
	}
	if g.dp != nil {
		st := g.dp.Stats()
		emit("ctt_dataport_sensors", st.Sensors)
		emit("ctt_dataport_gateways", st.Gateways)
		emit("ctt_dataport_alarms_total", st.Alarms)
	}
	g.emMu.RLock()
	for _, src := range g.extraMetrics {
		src(emit)
	}
	g.emMu.RUnlock()
	w.Write([]byte(b.String()))
}

// ewmaRate tracks an exponentially-weighted ingest rate.
type ewmaRate struct {
	mu   sync.Mutex
	rate float64
	last time.Time
}

// observe credits n points at time now.
func (e *ewmaRate) observe(n int, now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.last.IsZero() {
		e.last, e.rate = now, 0
		return
	}
	dt := now.Sub(e.last).Seconds()
	if dt <= 0 {
		return
	}
	inst := float64(n) / dt
	// ~10s time constant.
	alpha := 1 - math.Exp(-dt/10)
	e.rate += alpha * (inst - e.rate)
	e.last = now
}

func (e *ewmaRate) value(now time.Time) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.last.IsZero() {
		return 0
	}
	// Decay toward zero when idle.
	if dt := now.Sub(e.last).Seconds(); dt > 0 {
		return e.rate * math.Exp(-dt/10)
	}
	return e.rate
}
