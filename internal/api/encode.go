package api

// Streaming result encoding for /api/query: result series are written
// to the client one at a time as the store yields them — chunked JSON
// array by default, NDJSON (one series object per line) when the
// client sends Accept: application/x-ndjson — with gzip composing on
// top for clients that advertise it. The response is flushed after
// every series, so the first bytes reach the client while the scan is
// still running and no full result body is ever resident. While
// streaming, the plain encoded bytes are teed into a bounded buffer;
// a stream that completes under the cache's entry cap is inserted
// into the query cache, so the next aligned poll is a plain cached
// write.

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// Media types the query path serves.
const (
	ctJSON   = "application/json"
	ctNDJSON = "application/x-ndjson"
)

// wantsNDJSON reports whether the request explicitly asks for NDJSON
// framing. Only the exact media type opts in — a wildcard Accept
// (every browser and curl default) keeps the JSON array shape.
func wantsNDJSON(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt, q, hasQ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mt) != ctNDJSON {
			continue
		}
		if hasQ {
			if v := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(q), "q=")); v == "0" || v == "0.0" {
				return false
			}
		}
		return true
	}
	return false
}

// streamEncoder writes query results incrementally. It is not safe
// for concurrent use; one request owns one encoder.
type streamEncoder struct {
	http  http.ResponseWriter
	flush http.Flusher // nil when the writer cannot flush
	gzip  *gzip.Writer // nil for identity responses
	tee   *cappedBuffer

	ndjson  bool
	started bool // response headers + array opener written
	n       int  // series written so far
}

// newStreamEncoder builds an encoder for one request. Headers are not
// written until the first series (or finish), so callers can still
// answer 4xx for errors caught before any data is produced.
func newStreamEncoder(w http.ResponseWriter, r *http.Request, cacheStatus string) *streamEncoder {
	e := &streamEncoder{http: w, ndjson: wantsNDJSON(r), tee: &cappedBuffer{cap: maxCacheBody}}
	ct := ctJSON
	if e.ndjson {
		ct = ctNDJSON
	}
	w.Header().Set("Content-Type", ct)
	w.Header().Set("X-Cache", cacheStatus)
	w.Header().Set("Vary", "Accept-Encoding, Accept")
	if f, ok := w.(http.Flusher); ok {
		e.flush = f
	}
	if acceptsGzip(r) {
		w.Header().Set("Content-Encoding", "gzip")
		e.gzip = gzip.NewWriter(w)
	}
	return e
}

// write sends bytes to the client and the cache tee.
func (e *streamEncoder) write(p []byte) error {
	e.tee.Write(p)
	var err error
	if e.gzip != nil {
		_, err = e.gzip.Write(p)
	} else {
		_, err = e.http.Write(p)
	}
	return err
}

// begin writes the response preamble. JSON array framing opens the
// array; NDJSON has no preamble.
func (e *streamEncoder) begin() error {
	if e.started {
		return nil
	}
	e.started = true
	if !e.ndjson {
		return e.write([]byte{'['})
	}
	return nil
}

// series encodes one result series and flushes it to the client.
func (e *streamEncoder) series(qr queryResult) error {
	if err := e.begin(); err != nil {
		return err
	}
	// Call the marshaler directly: json.Marshal would re-parse the
	// output to compact it, doubling the encoding cost for nothing.
	body, err := qr.MarshalJSON()
	if err != nil {
		return err
	}
	if e.ndjson {
		body = append(body, '\n')
	} else if e.n > 0 {
		if err := e.write([]byte{','}); err != nil {
			return err
		}
	}
	if err := e.write(body); err != nil {
		return err
	}
	e.n++
	e.flushNow()
	return nil
}

// flushNow pushes buffered bytes to the wire so the client sees the
// series before the scan finishes.
func (e *streamEncoder) flushNow() {
	if e.gzip != nil {
		e.gzip.Flush()
	}
	if e.flush != nil {
		e.flush.Flush()
	}
}

// finish completes the stream. A non-nil streamErr means the store
// failed mid-scan: by then a 200 and partial data may already be on
// the wire, so the encoder appends an explicit truncation marker —
// a final {"error": ...} element (JSON array) or line (NDJSON) —
// instead of ending cleanly, and the result is not cacheable. It
// returns the plain encoded body and whether it may be cached.
func (e *streamEncoder) finish(streamErr error) (body []byte, cacheable bool) {
	e.begin()
	if streamErr != nil {
		marker, _ := json.Marshal(map[string]any{
			"error": map[string]any{
				"code":    http.StatusInternalServerError,
				"message": fmt.Sprintf("result truncated: %v", streamErr),
			},
		})
		if e.ndjson {
			marker = append(marker, '\n')
		} else if e.n > 0 {
			e.write([]byte{','})
		}
		e.write(marker)
	}
	if !e.ndjson {
		e.write([]byte{']'})
	}
	if e.gzip != nil {
		e.gzip.Close()
	}
	e.flushNow()
	return e.tee.Bytes(), streamErr == nil && !e.tee.overflowed
}

// abort cancels a stream no byte of which has been written, clearing
// the streaming headers so the caller can still send a plain error
// response. Must not be called after the first series.
func (e *streamEncoder) abort() {
	h := e.http.Header()
	h.Del("Content-Encoding")
	h.Del("X-Cache")
	h.Del("Content-Type")
}

// cappedBuffer accumulates writes up to cap bytes; one byte more and
// it discards everything and stops buffering — the stream stays
// cheap, the entry just isn't cached.
type cappedBuffer struct {
	cap        int
	buf        []byte
	overflowed bool
}

func (b *cappedBuffer) Write(p []byte) (int, error) {
	if !b.overflowed {
		if len(b.buf)+len(p) > b.cap {
			b.overflowed = true
			b.buf = nil
		} else {
			b.buf = append(b.buf, p...)
		}
	}
	return len(p), nil
}

func (b *cappedBuffer) Bytes() []byte { return b.buf }
