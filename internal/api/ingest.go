package api

// Ingest path: POST /api/put accepts a single OpenTSDB-style JSON
// data point or an array of them. Points pass a per-client token
// bucket, then an all-or-nothing reservation on the bounded ingest
// queue; worker goroutines drain the queue in batches into
// tsdb.AppendBatch. A full queue answers 429 with Retry-After instead
// of blocking the producer or dropping silently.

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/tsdb"
)

// Enqueue errors.
var (
	ErrQueueFull = errors.New("api: ingest queue full")
	ErrClosed    = errors.New("api: gateway closed")
)

// putPoint is the OpenTSDB /api/put JSON shape. Timestamp and value
// use flexible decoders because real OpenTSDB accepts both bare and
// string-quoted numbers.
type putPoint struct {
	Metric    string            `json:"metric"`
	Timestamp flexInt64         `json:"timestamp"`
	Value     flexFloat64       `json:"value"`
	Tags      map[string]string `json:"tags"`
}

// flexInt64 decodes 1488326400 or "1488326400".
type flexInt64 int64

func (v *flexInt64) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return fmt.Errorf("bad integer %s", b)
	}
	*v = flexInt64(n)
	return nil
}

// flexFloat64 decodes 412.5 or "412.5".
type flexFloat64 float64

func (v *flexFloat64) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("bad number %s", b)
	}
	*v = flexFloat64(f)
	return nil
}

// toDataPoint normalises an HTTP point: second-precision timestamps
// (OpenTSDB's default) are scaled to the store's milliseconds.
func (p putPoint) toDataPoint() tsdb.DataPoint {
	return tsdb.DataPoint{
		Metric: p.Metric,
		Tags:   p.Tags,
		Point:  tsdb.Point{Timestamp: normalizeMillis(int64(p.Timestamp)), Value: float64(p.Value)},
	}
}

// normalizeMillis routes timestamps through the store's one
// seconds-vs-milliseconds rule, shared with the telnet listener.
func normalizeMillis(n int64) int64 { return tsdb.NormalizeMillis(n) }

// maxPutBody bounds a single /api/put request body (8 MiB).
const maxPutBody = 8 << 20

func (g *Gateway) handlePut(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	g.putReqs.Add(1)
	// Constrained producers may gzip the batch; the size cap applies
	// to the decompressed bytes, so a compressed bomb cannot buy more
	// buffer than a plain request.
	var reader io.Reader = r.Body
	switch enc := strings.TrimSpace(strings.ToLower(r.Header.Get("Content-Encoding"))); enc {
	case "", "identity":
	case "gzip":
		zr, err := gzip.NewReader(io.LimitReader(r.Body, maxPutBody+1))
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad gzip body: %v", err)
			return
		}
		defer zr.Close()
		reader = zr
	default:
		httpError(w, http.StatusUnsupportedMediaType, "unsupported Content-Encoding %q", enc)
		return
	}
	body, err := io.ReadAll(io.LimitReader(reader, maxPutBody+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxPutBody {
		httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", maxPutBody)
		return
	}
	pts, err := decodePutBody(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(pts) == 0 {
		httpError(w, http.StatusBadRequest, "no data points")
		return
	}

	// Validate up front so the response can report bad points; only
	// valid ones cost rate-limit tokens and contend for queue space.
	var (
		dps      []tsdb.DataPoint
		failures []string
	)
	for i, p := range pts {
		// The store accepts timestamp 0 (the epoch), but over HTTP a
		// missing/zero timestamp is almost always an omitted field —
		// reject it instead of silently burying the point in 1970.
		if p.Timestamp <= 0 {
			failures = append(failures, fmt.Sprintf("point %d: timestamp required", i))
			continue
		}
		// A stored NaN/Inf (reachable via quoted "NaN") would make
		// every query over its range fail to marshal — reject at the
		// edge.
		if math.IsNaN(float64(p.Value)) || math.IsInf(float64(p.Value), 0) {
			failures = append(failures, fmt.Sprintf("point %d: value must be finite", i))
			continue
		}
		dp := p.toDataPoint()
		if err := dp.Validate(); err != nil {
			failures = append(failures, fmt.Sprintf("point %d: %v", i, err))
			continue
		}
		dps = append(dps, dp)
	}
	g.invalid.Add(uint64(len(failures)))

	// An all-invalid batch stores nothing but still cost a parse and
	// validation pass; charge one token so a flood of garbage can't
	// bypass the rate limiter entirely at full CPU cost.
	if len(dps) == 0 && g.cfg.RateLimit > 0 {
		if ok, retry := g.limiter.allowN(clientKey(r), 1, time.Now()); !ok {
			w.Header().Set("Retry-After", retryAfterSeconds(retry))
			httpError(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
	}

	if len(dps) > 0 {
		// A valid batch bigger than the token bucket or the whole
		// queue could never be accepted no matter how long the client
		// waits: 413 — before any tokens are spent — instead of an
		// unwinnable 429.
		if g.cfg.RateLimit > 0 && float64(len(dps)) > g.cfg.RateBurst {
			httpError(w, http.StatusRequestEntityTooLarge,
				"batch of %d valid points exceeds rate-limit burst %g; split it", len(dps), g.cfg.RateBurst)
			return
		}
		if len(dps) > g.cfg.QueueSize {
			httpError(w, http.StatusRequestEntityTooLarge,
				"batch of %d valid points exceeds queue capacity %d; split it", len(dps), g.cfg.QueueSize)
			return
		}
		client := clientKey(r)
		if ok, retry := g.limiter.allowN(client, float64(len(dps)), time.Now()); !ok {
			g.rejectRate.Add(uint64(len(dps)))
			w.Header().Set("Retry-After", retryAfterSeconds(retry))
			httpError(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
		if err := g.Enqueue(dps); err != nil {
			// Nothing was stored: hand the spent tokens back so the
			// retry the 429 invites isn't then rate-limited.
			g.limiter.refund(client, float64(len(dps)))
			if errors.Is(err, ErrQueueFull) {
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusTooManyRequests, "ingest queue full")
				return
			}
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
	}

	switch {
	case len(failures) == 0 && !r.URL.Query().Has("details"):
		w.WriteHeader(http.StatusNoContent) // OpenTSDB's success answer
	case len(failures) == 0:
		writeJSON(w, http.StatusOK, putResponse{Success: len(dps), Errors: []string{}})
	case len(dps) == 0:
		writeJSON(w, http.StatusBadRequest, putResponse{Failed: len(failures), Errors: failures})
	default:
		writeJSON(w, http.StatusOK, putResponse{Success: len(dps), Failed: len(failures), Errors: failures})
	}
}

type putResponse struct {
	Success int      `json:"success"`
	Failed  int      `json:"failed"`
	Errors  []string `json:"errors"`
}

// decodePutBody accepts either one JSON object or a JSON array.
func decodePutBody(body []byte) ([]putPoint, error) {
	i := 0
	for i < len(body) && (body[i] == ' ' || body[i] == '\t' || body[i] == '\n' || body[i] == '\r') {
		i++
	}
	if i < len(body) && body[i] == '[' {
		var pts []putPoint
		if err := json.Unmarshal(body, &pts); err != nil {
			return nil, fmt.Errorf("bad JSON array: %v", err)
		}
		return pts, nil
	}
	var p putPoint
	if err := json.Unmarshal(body, &p); err != nil {
		return nil, fmt.Errorf("bad JSON object: %v", err)
	}
	return []putPoint{p}, nil
}

// Enqueue reserves queue space for the whole batch and enqueues it —
// all points or none, so callers can retry a 429 without partial
// writes. Safe for concurrent use. Every point must already have
// passed DataPoint.Validate (the HTTP handler validates at the edge;
// in-process feeders must do the same): workers store the queue's
// contents without re-checking.
func (g *Gateway) Enqueue(dps []tsdb.DataPoint) error {
	g.qmu.Lock()
	defer g.qmu.Unlock()
	if g.closed {
		return ErrClosed
	}
	// Producers all hold qmu and consumers only free space, so the
	// capacity check cannot be invalidated before the sends below.
	if cap(g.queue)-len(g.queue) < len(dps) {
		g.rejectFull.Add(uint64(len(dps)))
		return ErrQueueFull
	}
	for _, dp := range dps {
		g.queue <- dp
	}
	return nil
}

// QueueDepth reports the current ingest backlog.
func (g *Gateway) QueueDepth() int { return len(g.queue) }

// worker drains the queue in batches into the store.
func (g *Gateway) worker() {
	defer g.wg.Done()
	batch := make([]tsdb.DataPoint, 0, g.cfg.BatchSize)
	for dp := range g.queue {
		batch = append(batch[:0], dp)
	fill:
		for len(batch) < g.cfg.BatchSize {
			select {
			case next, ok := <-g.queue:
				if !ok {
					break fill
				}
				batch = append(batch, next)
			default:
				break fill
			}
		}
		// Points were validated at the HTTP edge before enqueueing.
		res := g.db.AppendBatchValidated(batch)
		g.ingested.Add(uint64(res.Stored))
		g.storeErrors.Add(uint64(len(res.Errors)))
		g.rate.observe(res.Stored, time.Now())
	}
}

// retryAfterSeconds formats a duration as whole seconds, minimum 1.
func retryAfterSeconds(d time.Duration) string {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return fmt.Sprintf("%d", s)
}

// --- small HTTP helpers shared across handlers -------------------------

// errorBody is the structured error envelope every non-2xx JSON
// response uses, OpenTSDB-style: {"error":{"code":400,"message":...}}.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: errorDetail{Code: code, Message: fmt.Sprintf(format, args...)}})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
