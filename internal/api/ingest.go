package api

// Ingest path: POST /api/put accepts a single OpenTSDB-style JSON
// data point or an array of them. The body is decoded streamingly —
// one array element at a time into pooled scratch (body buffer,
// element struct, tag map), each element resolved to an interned
// tsdb series at the edge — so a 100-point batch costs a handful of
// pooled buffers instead of a map and struct per point. Points pass a
// per-client token bucket, then an all-or-nothing reservation on the
// bounded ingest queue; worker goroutines drain the queue in batches
// into tsdb.AppendRefs. A full queue answers 429 with Retry-After
// instead of blocking the producer or dropping silently.

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/tsdb"
)

// Enqueue errors.
var (
	ErrQueueFull = errors.New("api: ingest queue full")
	ErrClosed    = errors.New("api: gateway closed")
)

// putPoint is the OpenTSDB /api/put JSON shape. Timestamp and value
// use flexible decoders because real OpenTSDB accepts both bare and
// string-quoted numbers. Metric and tags stay raw: RawMessage reuses
// its backing array across decodes of the same struct, and the raw
// bytes feed tsdb.InternBytes directly — a previously-seen series
// resolves without materializing a single string or map entry.
type putPoint struct {
	Metric    json.RawMessage `json:"metric"`
	Timestamp flexInt64       `json:"timestamp"`
	Value     flexFloat64     `json:"value"`
	Tags      json.RawMessage `json:"tags"`
}

// unquoteNumber strips exactly one matched pair of surrounding quotes
// from a raw JSON token. Anything else — stray, unbalanced or nested
// quotes like `""12""` or `12"` — is left for the numeric parser to
// reject, so lax trimming cannot turn a malformed token into a number.
func unquoteNumber(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		inner := s[1 : len(s)-1]
		if !strings.Contains(inner, `"`) {
			return inner
		}
	}
	return s
}

// flexInt64 decodes 1488326400 or "1488326400".
type flexInt64 int64

func (v *flexInt64) UnmarshalJSON(b []byte) error {
	n, err := strconv.ParseInt(unquoteNumber(string(b)), 10, 64)
	if err != nil {
		return fmt.Errorf("bad integer %s", b)
	}
	*v = flexInt64(n)
	return nil
}

// flexFloat64 decodes 412.5 or "412.5".
type flexFloat64 float64

func (v *flexFloat64) UnmarshalJSON(b []byte) error {
	f, err := strconv.ParseFloat(unquoteNumber(string(b)), 64)
	if err != nil {
		return fmt.Errorf("bad number %s", b)
	}
	*v = flexFloat64(f)
	return nil
}

// normalizeMillis routes timestamps through the store's one
// seconds-vs-milliseconds rule, shared with the telnet listener.
func normalizeMillis(n int64) int64 { return tsdb.NormalizeMillis(n) }

// maxPutBody bounds a single /api/put request body (8 MiB).
const maxPutBody = 8 << 20

// putScratch is the pooled per-request decode state: the body buffer,
// the one reused element struct (whose RawMessage fields keep their
// backing arrays), the key/value slice fed to InternBytes, and the
// interned point slice handed to the queue. Everything is reused
// across requests; nothing per-point escapes to the heap once the
// pool is warm.
type putScratch struct {
	body     []byte
	point    putPoint
	kvs      [][]byte
	fallback map[string]string // escaped-tags rarity: stdlib decode target
	pts      []tsdb.RefPoint
	failures []string
}

var putScratchPool = sync.Pool{New: func() any {
	return &putScratch{body: make([]byte, 0, 64<<10)}
}}

// reset prepares the scratch for one request.
func (sc *putScratch) reset() {
	sc.body = sc.body[:0]
	sc.pts = sc.pts[:0]
	sc.failures = sc.failures[:0]
}

// resetPoint clears the reused element between decodes; the
// RawMessage fields are reset to length zero so their capacity
// carries over.
func (sc *putScratch) resetPoint() {
	p := &sc.point
	if p.Metric != nil {
		p.Metric = p.Metric[:0]
	}
	p.Timestamp = 0
	p.Value = 0
	if p.Tags != nil {
		p.Tags = p.Tags[:0]
	}
}

// readAllInto is io.ReadAll into a reused buffer.
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

func (g *Gateway) handlePut(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if g.rejectReadOnly(w) {
		return
	}
	g.putReqs.Add(1)
	tr := obs.NewTrace("put", r.URL.Path)
	untrack := g.inflight.Track(tr)
	defer func() {
		// Slow puts land in the flight recorder like slow queries do.
		g.recordTrace(tr, g.histPut, tr.Elapsed())
		untrack()
		tr.Release()
	}()
	// Constrained producers may gzip the batch; the size cap applies
	// to the decompressed bytes, so a compressed bomb cannot buy more
	// buffer than a plain request.
	var reader io.Reader = r.Body
	switch enc := strings.TrimSpace(strings.ToLower(r.Header.Get("Content-Encoding"))); enc {
	case "", "identity":
	case "gzip":
		zr, err := gzip.NewReader(io.LimitReader(r.Body, maxPutBody+1))
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad gzip body: %v", err)
			return
		}
		defer zr.Close()
		reader = zr
	default:
		httpError(w, http.StatusUnsupportedMediaType, "unsupported Content-Encoding %q", enc)
		return
	}
	sc := putScratchPool.Get().(*putScratch)
	defer putScratchPool.Put(sc)
	sc.reset()
	var err error
	sp := tr.StartSpan("read_body")
	sc.body, err = readAllInto(sc.body, io.LimitReader(reader, maxPutBody+1))
	sp.End()
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(sc.body) > maxPutBody {
		httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", maxPutBody)
		return
	}
	sp = tr.StartSpan("decode")
	total, err := g.decodePutBody(sc)
	sp.End()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if total == 0 {
		httpError(w, http.StatusBadRequest, "no data points")
		return
	}
	g.invalid.Add(uint64(len(sc.failures)))
	dps, failures := sc.pts, sc.failures

	// An all-invalid batch stores nothing but still cost a parse and
	// validation pass; charge one token so a flood of garbage can't
	// bypass the rate limiter entirely at full CPU cost.
	if len(dps) == 0 && g.cfg.RateLimit > 0 {
		if ok, retry := g.limiter.allowN(clientKey(r), 1, time.Now()); !ok {
			w.Header().Set("Retry-After", retryAfterSeconds(retry))
			httpError(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
	}

	if len(dps) > 0 {
		// A valid batch bigger than the token bucket or the whole
		// queue could never be accepted no matter how long the client
		// waits: 413 — before any tokens are spent — instead of an
		// unwinnable 429.
		if g.cfg.RateLimit > 0 && float64(len(dps)) > g.cfg.RateBurst {
			httpError(w, http.StatusRequestEntityTooLarge,
				"batch of %d valid points exceeds rate-limit burst %g; split it", len(dps), g.cfg.RateBurst)
			return
		}
		if len(dps) > g.cfg.QueueSize {
			httpError(w, http.StatusRequestEntityTooLarge,
				"batch of %d valid points exceeds queue capacity %d; split it", len(dps), g.cfg.QueueSize)
			return
		}
		client := clientKey(r)
		if ok, retry := g.limiter.allowN(client, float64(len(dps)), time.Now()); !ok {
			g.rejectRate.Add(uint64(len(dps)))
			w.Header().Set("Retry-After", retryAfterSeconds(retry))
			httpError(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
		sp = tr.StartSpan("enqueue")
		err := g.EnqueueRefs(dps)
		sp.End()
		if err != nil {
			// Nothing was stored: hand the spent tokens back so the
			// retry the 429 invites isn't then rate-limited.
			g.limiter.refund(client, float64(len(dps)))
			if errors.Is(err, ErrQueueFull) {
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusTooManyRequests, "ingest queue full")
				return
			}
			if errors.Is(err, tsdb.ErrDegraded) {
				// Sticky until an operator restarts over a healthy
				// disk, so invite a much later retry than queue
				// pressure would.
				w.Header().Set("Retry-After", "30")
				httpError(w, http.StatusServiceUnavailable, "store degraded, writes disabled: %v", err)
				return
			}
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
	}

	switch {
	case len(failures) == 0 && !r.URL.Query().Has("details"):
		w.WriteHeader(http.StatusNoContent) // OpenTSDB's success answer
	case len(failures) == 0:
		writeJSON(w, http.StatusOK, putResponse{Success: len(dps), Errors: []string{}})
	case len(dps) == 0:
		writeJSON(w, http.StatusBadRequest, putResponse{Failed: len(failures), Errors: failures})
	default:
		writeJSON(w, http.StatusOK, putResponse{Success: len(dps), Failed: len(failures), Errors: failures})
	}
}

type putResponse struct {
	Success int      `json:"success"`
	Failed  int      `json:"failed"`
	Errors  []string `json:"errors"`
}

// decodePutBody accepts either one JSON object or a JSON array,
// decoding array elements one at a time into the scratch's reused
// element and resolving each to an interned series immediately, so
// the only per-request products are the RefPoint slice and the
// failure messages. Returns the total number of elements seen.
func (g *Gateway) decodePutBody(sc *putScratch) (int, error) {
	body := sc.body
	i := 0
	for i < len(body) && (body[i] == ' ' || body[i] == '\t' || body[i] == '\n' || body[i] == '\r') {
		i++
	}
	if i < len(body) && body[i] != '[' {
		sc.resetPoint()
		if err := json.Unmarshal(body, &sc.point); err != nil {
			return 0, fmt.Errorf("bad JSON object: %v", err)
		}
		if err := g.appendPoint(sc, 0); err != nil {
			return 0, fmt.Errorf("bad JSON object: %v", err)
		}
		return 1, nil
	}
	dec := json.NewDecoder(bytes.NewReader(body[i:]))
	tok, err := dec.Token()
	if err != nil {
		return 0, fmt.Errorf("bad JSON array: %v", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return 0, fmt.Errorf("bad JSON array: unexpected %v", tok)
	}
	n := 0
	for dec.More() {
		sc.resetPoint()
		if err := dec.Decode(&sc.point); err != nil {
			return 0, fmt.Errorf("bad JSON array: %v", err)
		}
		if err := g.appendPoint(sc, n); err != nil {
			return 0, fmt.Errorf("bad JSON array: %v", err)
		}
		n++
	}
	if _, err := dec.Token(); err != nil {
		return 0, fmt.Errorf("bad JSON array: %v", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return 0, fmt.Errorf("bad JSON array: trailing data after ]")
	}
	return n, nil
}

// appendPoint validates the scratch's decoded element and either
// interns it onto sc.pts or records a per-point failure message for
// index i. The returned error is reserved for malformed JSON shapes
// (metric or tags of the wrong type), which reject the whole batch
// like any other syntax error.
func (g *Gateway) appendPoint(sc *putScratch, i int) error {
	p := &sc.point
	// The store accepts timestamp 0 (the epoch), but over HTTP a
	// missing/zero timestamp is almost always an omitted field —
	// reject it instead of silently burying the point in 1970.
	if p.Timestamp <= 0 {
		sc.failures = append(sc.failures, fmt.Sprintf("point %d: timestamp required", i))
		return nil
	}
	// A stored NaN/Inf (reachable via quoted "NaN") would make
	// every query over its range fail to marshal — reject at the
	// edge.
	if math.IsNaN(float64(p.Value)) || math.IsInf(float64(p.Value), 0) {
		sc.failures = append(sc.failures, fmt.Sprintf("point %d: value must be finite", i))
		return nil
	}
	ts := normalizeMillis(int64(p.Timestamp))
	if !tsdb.ValidTimestamp(ts) {
		sc.failures = append(sc.failures, fmt.Sprintf("point %d: %v", i, fmt.Errorf("%w: %d", tsdb.ErrBadTimestamp, ts)))
		return nil
	}
	ref, perPoint, err := g.resolveSeries(sc)
	if err != nil {
		return err
	}
	if perPoint != nil {
		sc.failures = append(sc.failures, fmt.Sprintf("point %d: %v", i, perPoint))
		return nil
	}
	sc.pts = append(sc.pts, tsdb.RefPoint{
		Ref:   ref,
		Point: tsdb.Point{Timestamp: ts, Value: float64(p.Value)},
	})
	return nil
}

// resolveSeries interns the element's raw metric and tags. perPoint
// carries validation rejections (empty metric, no tags, bad
// characters); err carries JSON shape violations. The common path —
// plain strings, no escapes — feeds raw bytes straight to
// InternBytes; anything carrying escape sequences takes the stdlib
// route once.
func (g *Gateway) resolveSeries(sc *putScratch) (ref *tsdb.Ref, perPoint, err error) {
	p := &sc.point
	mraw, traw := []byte(p.Metric), []byte(p.Tags)
	if len(mraw) == 0 || string(mraw) == "null" {
		return nil, tsdb.ErrEmptyMetric, nil
	}
	if len(traw) == 0 || string(traw) == "null" {
		return nil, tsdb.ErrNoTags, nil
	}
	if bytes.IndexByte(mraw, '\\') >= 0 || bytes.IndexByte(traw, '\\') >= 0 {
		var metric string
		if uerr := json.Unmarshal(mraw, &metric); uerr != nil {
			return nil, nil, fmt.Errorf("metric must be a string")
		}
		if sc.fallback == nil {
			sc.fallback = make(map[string]string, 8)
		} else {
			clear(sc.fallback)
		}
		if uerr := json.Unmarshal(traw, &sc.fallback); uerr != nil {
			return nil, nil, fmt.Errorf("tags must be an object of strings")
		}
		ref, ierr := g.db.Intern(metric, sc.fallback)
		return ref, ierr, nil
	}
	if len(mraw) < 2 || mraw[0] != '"' || mraw[len(mraw)-1] != '"' {
		return nil, nil, fmt.Errorf("metric must be a string")
	}
	kvs, serr := scanTagsObject(traw, sc.kvs[:0])
	sc.kvs = kvs
	if serr != nil {
		return nil, nil, serr
	}
	ref, ierr := g.db.InternBytes(mraw[1:len(mraw)-1], kvs)
	return ref, ierr, nil
}

// scanTagsObject splits a raw, escape-free, syntax-valid JSON object
// of string values into alternating key/value byte subslices. The
// decoder already validated the syntax; this only rejects non-string
// shapes.
func scanTagsObject(raw []byte, kvs [][]byte) ([][]byte, error) {
	errShape := fmt.Errorf("tags must be an object of strings")
	i := skipJSONSpace(raw, 0)
	if i >= len(raw) || raw[i] != '{' {
		return kvs, errShape
	}
	i = skipJSONSpace(raw, i+1)
	if i < len(raw) && raw[i] == '}' {
		return kvs, nil
	}
	for {
		k, next, ok := scanPlainJSONString(raw, i)
		if !ok {
			return kvs, errShape
		}
		i = skipJSONSpace(raw, next)
		if i >= len(raw) || raw[i] != ':' {
			return kvs, errShape
		}
		i = skipJSONSpace(raw, i+1)
		v, next, ok := scanPlainJSONString(raw, i)
		if !ok {
			return kvs, errShape
		}
		kvs = append(kvs, k, v)
		i = skipJSONSpace(raw, next)
		switch {
		case i < len(raw) && raw[i] == ',':
			i = skipJSONSpace(raw, i+1)
		case i < len(raw) && raw[i] == '}':
			return kvs, nil
		default:
			return kvs, errShape
		}
	}
}

func skipJSONSpace(b []byte, i int) int {
	for i < len(b) && (b[i] == ' ' || b[i] == '\t' || b[i] == '\n' || b[i] == '\r') {
		i++
	}
	return i
}

// scanPlainJSONString returns the unquoted bytes of an escape-free
// string starting at i and the index past its closing quote.
func scanPlainJSONString(b []byte, i int) ([]byte, int, bool) {
	if i >= len(b) || b[i] != '"' {
		return nil, 0, false
	}
	j := i + 1
	for j < len(b) && b[j] != '"' {
		j++
	}
	if j >= len(b) {
		return nil, 0, false
	}
	return b[i+1 : j], j + 1, true
}

// Intern resolves a series against the gateway's store from raw byte
// fields — the hook the telnet listener's zero-copy parser uses so
// both edges intern at the wire.
func (g *Gateway) Intern(metric []byte, kvs [][]byte) (*tsdb.Ref, error) {
	return g.db.InternBytes(metric, kvs)
}

// EnqueueRefs reserves queue space for the whole batch of interned
// points and enqueues it — all points or none, so callers can retry a
// 429 without partial writes. Safe for concurrent use. Timestamps
// must already be validated; workers store the queue's contents
// without re-checking.
func (g *Gateway) EnqueueRefs(rps []tsdb.RefPoint) error {
	g.qmu.Lock()
	defer g.qmu.Unlock()
	if g.closed {
		return ErrClosed
	}
	// Fail fast while degraded: queueing points the store is certain
	// to reject just delays the 503 by one queue traversal and burns
	// worker time on batches that cannot be stored.
	if err := g.db.Degraded(); err != nil {
		return err
	}
	// Producers all hold qmu and consumers only free space, so the
	// capacity check cannot be invalidated before the sends below.
	if cap(g.queue)-len(g.queue) < len(rps) {
		g.rejectFull.Add(uint64(len(rps)))
		return ErrQueueFull
	}
	for _, rp := range rps {
		g.queue <- rp
	}
	g.recordQueueMark(len(rps))
	return nil
}

// queueMark tags the enqueue time of a batch's last point with the
// cumulative enqueue sequence. Workers observe a mark's age into the
// queue-wait histogram once their dequeue counter passes its sequence
// — batch-granular queue-wait sampling with no per-point timestamps.
type queueMark struct {
	seq int64
	t   time.Time
}

// maxQueueMarks bounds the mark backlog: past it, waits go unsampled
// (workers stalled that long are visible on the histogram already).
const maxQueueMarks = 1024

func (g *Gateway) recordQueueMark(n int) {
	g.markMu.Lock()
	g.enqSeq += int64(n)
	if len(g.marks) < maxQueueMarks {
		g.marks = append(g.marks, queueMark{seq: g.enqSeq, t: time.Now()})
	}
	g.markMu.Unlock()
}

// drainQueueMarks observes every mark the dequeue counter has passed.
func (g *Gateway) drainQueueMarks(deq int64) {
	g.markMu.Lock()
	i := 0
	for i < len(g.marks) && g.marks[i].seq <= deq {
		g.histQueueWait.ObserveSince(g.marks[i].t)
		i++
	}
	if i > 0 {
		g.marks = append(g.marks[:0], g.marks[i:]...)
	}
	g.markMu.Unlock()
}

// Enqueue is EnqueueRefs for callers still holding DataPoints (the
// MQTT ingestor, tests): each point is resolved to its interned
// series here at the edge. Every point must already have passed
// DataPoint.Validate.
func (g *Gateway) Enqueue(dps []tsdb.DataPoint) error {
	rps := make([]tsdb.RefPoint, len(dps))
	for i := range dps {
		ref, err := g.db.Intern(dps[i].Metric, dps[i].Tags)
		if err != nil {
			return err
		}
		rps[i] = tsdb.RefPoint{Ref: ref, Point: dps[i].Point}
	}
	return g.EnqueueRefs(rps)
}

// QueueDepth reports the current ingest backlog.
func (g *Gateway) QueueDepth() int { return len(g.queue) }

// worker drains the queue in batches into the store.
func (g *Gateway) worker() {
	defer g.wg.Done()
	batch := make([]tsdb.RefPoint, 0, g.cfg.BatchSize)
	for rp := range g.queue {
		batch = append(batch[:0], rp)
	fill:
		for len(batch) < g.cfg.BatchSize {
			select {
			case next, ok := <-g.queue:
				if !ok {
					break fill
				}
				batch = append(batch, next)
			default:
				break fill
			}
		}
		g.drainQueueMarks(g.deqSeq.Add(int64(len(batch))))
		// Points were validated at the edge before enqueueing; the
		// whole batch WAL-commits with one lock acquisition and fans
		// out to observers as one call.
		res := g.db.AppendRefs(batch)
		g.ingested.Add(uint64(res.Stored))
		g.storeErrors.Add(uint64(len(res.Errors)))
		g.rate.observe(res.Stored, time.Now())
	}
}

// retryAfterSeconds formats a duration as whole seconds, minimum 1.
func retryAfterSeconds(d time.Duration) string {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return fmt.Sprintf("%d", s)
}

// --- small HTTP helpers shared across handlers -------------------------

// errorBody is the structured error envelope every non-2xx JSON
// response uses, OpenTSDB-style: {"error":{"code":400,"message":...}}.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: errorDetail{Code: code, Message: fmt.Sprintf(format, args...)}})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
