package api

// Live streaming: GET /api/stream holds the connection open and
// pushes every stored data point that matches the subscriber's filter
// as a server-sent event — the push channel live dashboards attach to
// instead of polling /api/query. Slow consumers lose events rather
// than stall the ingest path; drops are counted and exposed on
// /metrics.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tsdb"
)

type streamHub struct {
	buffer int
	// nsubs mirrors len(subs) so publish — called for every stored
	// point — can skip the mutex entirely in the common case of no
	// live stream subscribers.
	nsubs   atomic.Int64
	mu      sync.RWMutex
	subs    map[*subscriber]struct{}
	closed  bool
	dropped atomic.Uint64
}

type subscriber struct {
	ch           chan tsdb.DataPoint
	metricPrefix string
	tags         map[string]string
}

func newStreamHub(buffer int) *streamHub {
	return &streamHub{buffer: buffer, subs: make(map[*subscriber]struct{})}
}

// publishBatch fans a stored batch out to matching subscribers
// without blocking (a full subscriber buffer drops the event), with
// one subscriber-set lock acquisition for the whole batch.
func (h *streamHub) publishBatch(rps []tsdb.RefPoint) {
	if h.nsubs.Load() == 0 {
		return
	}
	// Read lock: concurrent publishers (ingest workers + the pilot)
	// only read the subscriber set; the non-blocking channel sends are
	// safe in parallel.
	h.mu.RLock()
	defer h.mu.RUnlock()
	for _, rp := range rps {
		dp := tsdb.DataPoint{Metric: rp.Ref.Metric(), Tags: rp.Ref.Tags(), Point: rp.Point}
		for sub := range h.subs {
			if !sub.matches(dp) {
				continue
			}
			select {
			case sub.ch <- dp:
			default:
				h.dropped.Add(1)
			}
		}
	}
}

func (s *subscriber) matches(dp tsdb.DataPoint) bool {
	if s.metricPrefix != "" && !strings.HasPrefix(dp.Metric, s.metricPrefix) {
		return false
	}
	for k, v := range s.tags {
		tv, ok := dp.Tags[k]
		if !ok || (v != "*" && v != tv) {
			return false
		}
	}
	return true
}

func (h *streamHub) subscribe(metricPrefix string, tags map[string]string) (*subscriber, bool) {
	sub := &subscriber{
		ch:           make(chan tsdb.DataPoint, h.buffer),
		metricPrefix: metricPrefix,
		tags:         tags,
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, false
	}
	h.subs[sub] = struct{}{}
	h.nsubs.Store(int64(len(h.subs)))
	return sub, true
}

func (h *streamHub) unsubscribe(sub *subscriber) {
	h.mu.Lock()
	if _, ok := h.subs[sub]; ok {
		delete(h.subs, sub)
		h.nsubs.Store(int64(len(h.subs)))
	}
	h.mu.Unlock()
}

// closeAll disconnects every subscriber and refuses new ones.
func (h *streamHub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	for sub := range h.subs {
		close(sub.ch)
		delete(h.subs, sub)
	}
	h.nsubs.Store(0)
}

func (h *streamHub) subscriberCount() int {
	return int(h.nsubs.Load())
}

func (h *streamHub) droppedCount() uint64 { return h.dropped.Load() }

// streamEvent is the SSE payload for one point.
type streamEvent struct {
	Metric    string            `json:"metric"`
	Tags      map[string]string `json:"tags"`
	Timestamp int64             `json:"timestamp"` // ms
	Value     float64           `json:"value"`
}

// handleStream serves GET /api/stream?metric=<prefix>&tag.<k>=<v>
// [&backfill=<dur>]. Filters: metric is a prefix match; tag.* entries
// must all match ("*" accepts any present value). No filter streams
// everything. With backfill, matching points stored in the trailing
// window are replayed from the store first — streamed series by
// series through tsdb.ScanSeries, flushed as they go — as
// "event: backfill" frames, then a ": live" comment marks the switch
// to pushed events. The subscription is created before the scan and
// its buffer is drained between replayed series (those arrivals
// interleave as ordinary "event: point" frames), so a long replay
// under hot ingest keeps the same slow-consumer drop policy as the
// live stream instead of guaranteeing loss once the buffer fills;
// the seam can duplicate a point at the boundary.
func (g *Gateway) handleStream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	q := r.URL.Query()
	tags := map[string]string{}
	for key, vals := range q {
		if strings.HasPrefix(key, "tag.") && len(vals) > 0 {
			tags[strings.TrimPrefix(key, "tag.")] = vals[0]
		}
	}
	backfillStart := int64(-1)
	if bf := q.Get("backfill"); bf != "" {
		d, err := parseDuration(bf)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, "bad backfill %q (want a positive duration, e.g. 15m)", bf)
			return
		}
		backfillStart = g.cfg.Now().Add(-d).UnixMilli()
	}
	sub, ok := g.hub.subscribe(q.Get("metric"), tags)
	if !ok {
		httpError(w, http.StatusServiceUnavailable, "gateway closing")
		return
	}
	defer g.hub.unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fmt.Fprint(w, ": connected\n\n")
	flusher.Flush()

	if backfillStart >= 0 {
		// drainLive forwards any live events buffered during the
		// replay so the subscription buffer cannot fill up (and start
		// dropping) while a long scan is still writing history.
		drainLive := func() {
			for {
				select {
				case dp, ok := <-sub.ch:
					if !ok {
						return // hub closed; the live loop below exits too
					}
					if payload, err := json.Marshal(streamEvent{
						Metric: dp.Metric, Tags: dp.Tags,
						Timestamp: dp.Timestamp, Value: dp.Value,
					}); err == nil {
						fmt.Fprintf(w, "event: point\ndata: %s\n\n", payload)
					}
				default:
					return
				}
			}
		}
		err := g.db.ScanSeries(q.Get("metric"), tags, backfillStart, g.cfg.Now().UnixMilli(),
			func(metric string, stags map[string]string, pts []tsdb.Point) error {
				if r.Context().Err() != nil {
					return r.Context().Err() // client went away mid-replay
				}
				for _, p := range pts {
					payload, err := json.Marshal(streamEvent{
						Metric: metric, Tags: stags,
						Timestamp: p.Timestamp, Value: p.Value,
					})
					if err != nil {
						continue
					}
					fmt.Fprintf(w, "event: backfill\ndata: %s\n\n", payload)
				}
				flusher.Flush()
				drainLive()
				return nil
			})
		if err != nil {
			// The stream is already committed: surface the truncated
			// replay as a comment, keep the live feed running.
			fmt.Fprintf(w, ": backfill truncated: %v\n\n", err)
		}
		fmt.Fprint(w, ": live\n\n")
		flusher.Flush()
	}

	heartbeat := time.NewTicker(g.cfg.Heartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			fmt.Fprint(w, ": keep-alive\n\n")
			flusher.Flush()
		case dp, ok := <-sub.ch:
			if !ok {
				return // hub closed
			}
			payload, err := json.Marshal(streamEvent{
				Metric: dp.Metric, Tags: dp.Tags,
				Timestamp: dp.Timestamp, Value: dp.Value,
			})
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: point\ndata: %s\n\n", payload)
			flusher.Flush()
		}
	}
}
