package api

// Trace flight-recorder endpoints: GET /api/traces lists the recently
// retained request traces (newest first), GET /api/traces/{id} returns
// one trace's full span tree as nested JSON. Traces are retained by
// the epilogue of the query and put handlers — always for requests
// slower than Config.SlowQuery, and for every Config.TraceSample'd
// query — so the IDs surfaced by /api/inflight, the slow-query log and
// the OpenMetrics exemplars all resolve here once the request is done.

import (
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// traceSummary is one /api/traces list row.
type traceSummary struct {
	ID         string             `json:"id"`
	Name       string             `json:"name"`
	Detail     string             `json:"detail"`
	Start      time.Time          `json:"start"`
	DurationMS float64            `json:"duration_ms"`
	Detailed   bool               `json:"detailed"`
	Spans      int                `json:"spans"`
	Dropped    int                `json:"dropped,omitempty"`
	Stages     map[string]float64 `json:"stages,omitempty"` // total ms per stage
}

// traceDetail is the /api/traces/{id} body: the summary fields plus
// the span tree and per-stage counts.
type traceDetail struct {
	ID         string       `json:"id"`
	Name       string       `json:"name"`
	Detail     string       `json:"detail"`
	Start      time.Time    `json:"start"`
	DurationMS float64      `json:"duration_ms"`
	Detailed   bool         `json:"detailed"`
	Dropped    int          `json:"dropped,omitempty"`
	Spans      []*spanNode  `json:"spans"`
	Stages     []stageEntry `json:"stages"`
}

type spanNode struct {
	Name       string      `json:"name"`
	StartMS    float64     `json:"start_ms"` // offset from trace start
	DurationMS float64     `json:"duration_ms"`
	Open       bool        `json:"open,omitempty"` // still running at capture
	Children   []*spanNode `json:"children,omitempty"`
}

type stageEntry struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
	Count      int64   `json:"count"`
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func (g *Gateway) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if g.recorder == nil {
		httpError(w, http.StatusNotFound, "trace retention is disabled (TraceRetain < 0)")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/api/traces")
	id = strings.TrimPrefix(id, "/")
	if id == "" {
		g.listTraces(w)
		return
	}
	c := g.recorder.Get(id)
	if c == nil {
		httpError(w, http.StatusNotFound, "no retained trace %q (evicted, never captured, or still in flight)", id)
		return
	}
	writeJSON(w, http.StatusOK, captureDetail(c))
}

func (g *Gateway) listTraces(w http.ResponseWriter) {
	caps := g.recorder.List()
	out := make([]traceSummary, 0, len(caps))
	for _, c := range caps {
		s := traceSummary{
			ID:         c.ID,
			Name:       c.Name,
			Detail:     c.Detail,
			Start:      c.Start,
			DurationMS: ms(c.Duration),
			Detailed:   c.Detailed,
			Spans:      len(c.Spans),
			Dropped:    c.Dropped,
		}
		if len(c.Stages) > 0 {
			s.Stages = make(map[string]float64, len(c.Stages))
			for _, st := range c.Stages {
				s.Stages[st.Name] = ms(st.Duration)
			}
		}
		out = append(out, s)
	}
	writeJSON(w, http.StatusOK, out)
}

// captureDetail converts a flat capture (parent indices) into the
// nested span tree the detail endpoint serves.
func captureDetail(c *obs.TraceCapture) traceDetail {
	d := traceDetail{
		ID:         c.ID,
		Name:       c.Name,
		Detail:     c.Detail,
		Start:      c.Start,
		DurationMS: ms(c.Duration),
		Detailed:   c.Detailed,
		Dropped:    c.Dropped,
		Spans:      []*spanNode{},
		Stages:     make([]stageEntry, 0, len(c.Stages)),
	}
	captureNS := c.Duration.Nanoseconds()
	nodes := make([]*spanNode, len(c.Spans))
	for i, sp := range c.Spans {
		nodes[i] = &spanNode{
			Name:       sp.Name,
			StartMS:    ms(time.Duration(sp.StartNS)),
			DurationMS: ms(sp.Duration(captureNS)),
			Open:       sp.Open(),
		}
		// Parents precede children in capture order, so the parent node
		// always exists by the time a child links to it.
		if sp.Parent >= 0 {
			p := nodes[sp.Parent]
			p.Children = append(p.Children, nodes[i])
		} else {
			d.Spans = append(d.Spans, nodes[i])
		}
	}
	for _, st := range c.Stages {
		d.Stages = append(d.Stages, stageEntry{Name: st.Name, DurationMS: ms(st.Duration), Count: st.Count})
	}
	return d
}

// recordTrace is the shared handler epilogue: observe the request
// latency on hist — with the trace ID attached as an exemplar when the
// trace is retained — and feed the flight recorder. A trace is
// retained when it was slow (past Config.SlowQuery) or when it was one
// of the TraceSample'd detailed traces. Returns whether the trace was
// retained, so callers can log the ID knowing it is resolvable.
func (g *Gateway) recordTrace(tr *obs.Trace, hist *obs.Histogram, elapsed time.Duration) bool {
	secs := elapsed.Seconds()
	slow := g.cfg.SlowQuery > 0 && elapsed >= g.cfg.SlowQuery
	if g.recorder == nil || (!slow && !tr.Detailed()) {
		hist.Observe(secs)
		return false
	}
	c := tr.Capture()
	g.recorder.Add(c)
	hist.ObserveExemplar(secs, c.ID)
	return true
}
