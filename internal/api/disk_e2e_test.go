package api

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/tsdb"
)

// diskE2EOpen opens a durable-block store in dir and serves it through
// a fresh gateway — one "process" of the restart test.
func diskE2EOpen(t *testing.T, dir string) (*tsdb.DB, *Gateway, *httptest.Server) {
	t.Helper()
	db, err := tsdb.OpenOptions(tsdb.Options{
		Dir:             dir,
		DurableBlocks:   true,
		FlushInterval:   -1, // tests drive FlushBlocks explicitly
		CompactInterval: -1,
		FlushAge:        30 * time.Minute,
		Now:             func() time.Time { return time.Date(2017, time.April, 1, 0, 0, 0, 0, time.UTC) },
	})
	if err != nil {
		t.Fatal(err)
	}
	g := New(db, nil, Config{})
	srv := httptest.NewServer(g.Handler())
	return db, g, srv
}

// TestDiskRestartE2E is the ISSUE's end-to-end durability check at the
// HTTP boundary: ingest through /api/put, flush to block files, tear
// the whole stack down, restart over the same data dir, and require
// the /api/query response bytes to be identical — the flushed history
// now comes off disk (and the truncated WAL tail), not the old heap.
func TestDiskRestartE2E(t *testing.T) {
	dir := t.TempDir()
	db, g, srv := diskE2EOpen(t, dir)

	const n = 600
	const startTS = int64(1488326400) // 2017-03-01 00:00:00 UTC, seconds
	resp := putJSON(t, srv.URL+"/api/put", putBody(n, "air.co2", "n1", startTS))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("put status = %d, want 204", resp.StatusCode)
	}
	waitIngested(t, g, n)

	if _, err := db.FlushBlocks(); err != nil {
		t.Fatal(err)
	}
	st := db.DiskStats()
	if st.Files == 0 {
		t.Fatalf("no block files after flush: %+v", st)
	}
	walAfterFlush := db.WALBytes()

	queryURL := srv.URL + "/api/query?start=" + "1488326400" + "&end=" + "1488327100" +
		"&m=avg:air.co2{sensor=*}"
	readBody := func(url string) []byte {
		t.Helper()
		r, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("query status = %d, want 200", r.StatusCode)
		}
		b, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	before := readBody(queryURL)

	// "Restart": close the gateway and store completely, reopen over
	// the same directory.
	srv.Close()
	g.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, g2, srv2 := diskE2EOpen(t, dir)
	defer func() { srv2.Close(); g2.Close(); db2.Close() }()

	if got := db2.DiskStats().Files; got == 0 {
		t.Fatal("restart found no block files")
	}
	if got := db2.WALBytes(); got > walAfterFlush {
		t.Fatalf("WAL grew across restart: %d > %d", got, walAfterFlush)
	}
	if got := db2.PointCount(); got != n {
		t.Fatalf("PointCount after restart = %d, want %d", got, n)
	}
	queryURL2 := srv2.URL + "/api/query?start=" + "1488326400" + "&end=" + "1488327100" +
		"&m=avg:air.co2{sensor=*}"
	after := readBody(queryURL2)
	if string(before) != string(after) {
		t.Fatalf("query bytes differ across restart:\nbefore: %s\nafter:  %s", before, after)
	}

	// /healthz must now carry the disk fields.
	hr, err := http.Get(srv2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	for _, want := range []string{`"disk_block_files"`, `"disk_bytes"`, `"wal_truncation_pending"`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/healthz missing %s: %s", want, body)
		}
	}
}
