package api

// queryCache is a small LRU over marshaled query responses. Entries
// are keyed on the canonical query string with the time range aligned
// to Config.CacheAlign. On top of that staleness bound, the cache is
// actively invalidated: every write landing in the store drops the
// entries whose metric and time range cover the written point, so a
// dashboard polling a range that just received data re-reads the
// store instead of serving the stale bucket.

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Byte bounds: entries bigger than maxCacheBody are never cached, and
// total retained bytes stay under maxCacheBytes — the entry-count cap
// alone would let a few huge result bodies pin unbounded memory.
const (
	maxCacheBody  = 1 << 20  // 1 MiB per entry
	maxCacheBytes = 64 << 20 // 64 MiB total
)

type queryCache struct {
	mu      sync.Mutex
	cap     int
	bytes   int
	entries map[string]*list.Element
	order   *list.List // front = most recent
	// byMetric indexes live entries by each metric they cover, so
	// per-point invalidation only scans entries that could match.
	byMetric map[string]map[*list.Element]struct{}
	// count mirrors len(entries) so invalidate — called for every
	// stored point — skips the mutex entirely while the cache is
	// empty (the common state during bulk ingest).
	count       atomic.Int64
	hits        atomic.Uint64
	misses      atomic.Uint64
	invalidated atomic.Uint64
}

type cacheEntry struct {
	key  string
	body []byte
	// start/end bound the cached query's time range (ms); metrics
	// lists the metrics it touched — what invalidation matches on.
	start, end int64
	metrics    []string
}

// newQueryCache returns a cache holding up to capacity entries;
// capacity <= 0 disables caching (every get misses, put is a no-op).
func newQueryCache(capacity int) *queryCache {
	return &queryCache{
		cap:      capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		byMetric: make(map[string]map[*list.Element]struct{}),
	}
}

func (c *queryCache) get(key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).body, true
}

func (c *queryCache) put(key string, body []byte, start, end int64, metrics []string) {
	if c.cap <= 0 || len(body) > maxCacheBody {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += len(body) - len(e.body)
		c.unindex(el, e)
		e.body, e.start, e.end, e.metrics = body, start, end, metrics
		c.index(el, e)
		c.order.MoveToFront(el)
	} else {
		e := &cacheEntry{key: key, body: body, start: start, end: end, metrics: metrics}
		el := c.order.PushFront(e)
		c.entries[key] = el
		c.index(el, e)
		c.bytes += len(body)
	}
	for len(c.entries) > c.cap || c.bytes > maxCacheBytes {
		c.remove(c.order.Back())
	}
	c.count.Store(int64(len(c.entries)))
}

// invalidate drops every entry whose query covered metric at time
// tsMS. Called from the store's write observer for each stored point.
func (c *queryCache) invalidate(metric string, tsMS int64) {
	if c.cap <= 0 || c.count.Load() == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	set, ok := c.byMetric[metric]
	if !ok {
		return
	}
	var doomed []*list.Element
	for el := range set {
		e := el.Value.(*cacheEntry)
		if e.start <= tsMS && tsMS <= e.end {
			doomed = append(doomed, el)
		}
	}
	for _, el := range doomed {
		c.remove(el)
		c.invalidated.Add(1)
	}
	c.count.Store(int64(len(c.entries)))
}

// remove drops one entry. Caller holds c.mu.
func (c *queryCache) remove(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.order.Remove(el)
	c.bytes -= len(e.body)
	delete(c.entries, e.key)
	c.unindex(el, e)
}

func (c *queryCache) index(el *list.Element, e *cacheEntry) {
	for _, m := range e.metrics {
		set, ok := c.byMetric[m]
		if !ok {
			set = make(map[*list.Element]struct{})
			c.byMetric[m] = set
		}
		set[el] = struct{}{}
	}
}

func (c *queryCache) unindex(el *list.Element, e *cacheEntry) {
	for _, m := range e.metrics {
		if set, ok := c.byMetric[m]; ok {
			delete(set, el)
			if len(set) == 0 {
				delete(c.byMetric, m)
			}
		}
	}
}

func (c *queryCache) stats() (hits, misses, invalidated uint64) {
	return c.hits.Load(), c.misses.Load(), c.invalidated.Load()
}
