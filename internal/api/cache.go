package api

// queryCache is a small LRU over marshaled query responses. Entries
// are keyed on the canonical query string with the time range aligned
// to Config.CacheAlign. On top of that staleness bound, the cache is
// actively invalidated: every write landing in the store drops the
// entries whose metric and time range cover the written point, so a
// dashboard polling a range that just received data re-reads the
// store instead of serving the stale bucket.

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Byte bounds: entries bigger than maxCacheBody are never cached, and
// total retained bytes stay under maxCacheBytes — the entry-count cap
// alone would let a few huge result bodies pin unbounded memory.
const (
	maxCacheBody  = 1 << 20  // 1 MiB per entry
	maxCacheBytes = 64 << 20 // 64 MiB total
)

type queryCache struct {
	mu      sync.Mutex
	cap     int
	bytes   int
	entries map[string]*list.Element
	order   *list.List // front = most recent
	// byMetric indexes live entries by each metric they cover, so
	// per-point invalidation only scans entries that could match.
	byMetric map[string]map[*list.Element]struct{}
	// fills tracks in-flight cache fills by metric. A query registers
	// its metrics and range here before it reads the store; a write
	// landing inside that range poisons the fill, and a poisoned fill
	// is discarded instead of inserted. Without this, a look-aside
	// race goes permanent: the store read happens before a write
	// commits, the write's invalidation finds no entry to drop, the
	// stale body is inserted after — and if no further write touches
	// that metric, every later query hits the stale entry forever.
	fills map[string]map[*cacheFill]struct{}
	// count mirrors len(entries) so invalidate — called for every
	// stored point — skips the mutex entirely while the cache is
	// empty (the common state during bulk ingest). fillCount does the
	// same for in-flight fills.
	count       atomic.Int64
	fillCount   atomic.Int64
	hits        atomic.Uint64
	misses      atomic.Uint64
	invalidated atomic.Uint64
}

// cacheFill is one in-flight fill registration. All fields are
// guarded by queryCache.mu after construction.
type cacheFill struct {
	start, end int64
	metrics    []string
	poisoned   bool
	done       bool
}

type cacheEntry struct {
	key  string
	body []byte
	// start/end bound the cached query's time range (ms); metrics
	// lists the metrics it touched — what invalidation matches on.
	start, end int64
	metrics    []string
}

// newQueryCache returns a cache holding up to capacity entries;
// capacity <= 0 disables caching (every get misses, put is a no-op).
func newQueryCache(capacity int) *queryCache {
	return &queryCache{
		cap:      capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		byMetric: make(map[string]map[*list.Element]struct{}),
		fills:    make(map[string]map[*cacheFill]struct{}),
	}
}

// beginFill registers an intent to cache a result covering metrics
// over [start, end] (ms). Call before the first store read; pass the
// token to put, and endFill it on every other exit path. Returns nil
// when caching is disabled.
func (c *queryCache) beginFill(start, end int64, metrics []string) *cacheFill {
	if c.cap <= 0 {
		return nil
	}
	f := &cacheFill{start: start, end: end, metrics: metrics}
	c.mu.Lock()
	for _, m := range metrics {
		set, ok := c.fills[m]
		if !ok {
			set = make(map[*cacheFill]struct{})
			c.fills[m] = set
		}
		set[f] = struct{}{}
	}
	c.fillCount.Add(1)
	c.mu.Unlock()
	return f
}

// endFill deregisters a fill without inserting anything (the abandon
// path). Safe on nil and after put already consumed the token.
func (c *queryCache) endFill(f *cacheFill) {
	if f == nil {
		return
	}
	c.mu.Lock()
	c.dropFill(f)
	c.mu.Unlock()
}

// dropFill deregisters f once. Caller holds c.mu.
func (c *queryCache) dropFill(f *cacheFill) {
	if f.done {
		return
	}
	f.done = true
	for _, m := range f.metrics {
		if set, ok := c.fills[m]; ok {
			delete(set, f)
			if len(set) == 0 {
				delete(c.fills, m)
			}
		}
	}
	c.fillCount.Add(-1)
}

func (c *queryCache) get(key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).body, true
}

// put inserts a result body, consuming the fill token from beginFill.
// The poison check and the insert happen under one lock hold, so an
// invalidation can never land between them.
func (c *queryCache) put(key string, body []byte, start, end int64, metrics []string, f *cacheFill) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	clean := f == nil || !f.poisoned
	if f != nil {
		c.dropFill(f)
	}
	if !clean || len(body) > maxCacheBody {
		return
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += len(body) - len(e.body)
		c.unindex(el, e)
		e.body, e.start, e.end, e.metrics = body, start, end, metrics
		c.index(el, e)
		c.order.MoveToFront(el)
	} else {
		e := &cacheEntry{key: key, body: body, start: start, end: end, metrics: metrics}
		el := c.order.PushFront(e)
		c.entries[key] = el
		c.index(el, e)
		c.bytes += len(body)
	}
	for len(c.entries) > c.cap || c.bytes > maxCacheBytes {
		c.remove(c.order.Back())
	}
	c.count.Store(int64(len(c.entries)))
}

// invalidate drops every entry whose query covered metric at time
// tsMS, and poisons every in-flight fill it would have dropped had it
// already been inserted. Called from the store's write observer for
// each stored point.
func (c *queryCache) invalidate(metric string, tsMS int64) {
	if c.cap <= 0 || (c.count.Load() == 0 && c.fillCount.Load() == 0) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for f := range c.fills[metric] {
		if f.start <= tsMS && tsMS <= f.end {
			f.poisoned = true
		}
	}
	set, ok := c.byMetric[metric]
	if !ok {
		return
	}
	var doomed []*list.Element
	for el := range set {
		e := el.Value.(*cacheEntry)
		if e.start <= tsMS && tsMS <= e.end {
			doomed = append(doomed, el)
		}
	}
	for _, el := range doomed {
		c.remove(el)
		c.invalidated.Add(1)
	}
	c.count.Store(int64(len(c.entries)))
}

// remove drops one entry. Caller holds c.mu.
func (c *queryCache) remove(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.order.Remove(el)
	c.bytes -= len(e.body)
	delete(c.entries, e.key)
	c.unindex(el, e)
}

func (c *queryCache) index(el *list.Element, e *cacheEntry) {
	for _, m := range e.metrics {
		set, ok := c.byMetric[m]
		if !ok {
			set = make(map[*list.Element]struct{})
			c.byMetric[m] = set
		}
		set[el] = struct{}{}
	}
}

func (c *queryCache) unindex(el *list.Element, e *cacheEntry) {
	for _, m := range e.metrics {
		if set, ok := c.byMetric[m]; ok {
			delete(set, el)
			if len(set) == 0 {
				delete(c.byMetric, m)
			}
		}
	}
}

func (c *queryCache) stats() (hits, misses, invalidated uint64) {
	return c.hits.Load(), c.misses.Load(), c.invalidated.Load()
}
