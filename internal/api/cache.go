package api

// queryCache is a small LRU over marshaled query responses. Entries
// are keyed on the canonical query string with the time range aligned
// to Config.CacheAlign, so the cache never serves results staler than
// one alignment bucket.

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Byte bounds: entries bigger than maxCacheBody are never cached, and
// total retained bytes stay under maxCacheBytes — the entry-count cap
// alone would let a few huge result bodies pin unbounded memory.
const (
	maxCacheBody  = 1 << 20  // 1 MiB per entry
	maxCacheBytes = 64 << 20 // 64 MiB total
)

type queryCache struct {
	mu      sync.Mutex
	cap     int
	bytes   int
	entries map[string]*list.Element
	order   *list.List // front = most recent
	hits    atomic.Uint64
	misses  atomic.Uint64
}

type cacheEntry struct {
	key  string
	body []byte
}

// newQueryCache returns a cache holding up to capacity entries;
// capacity <= 0 disables caching (every get misses, put is a no-op).
func newQueryCache(capacity int) *queryCache {
	return &queryCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

func (c *queryCache) get(key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).body, true
}

func (c *queryCache) put(key string, body []byte) {
	if c.cap <= 0 || len(body) > maxCacheBody {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += len(body) - len(e.body)
		e.body = body
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
		c.bytes += len(body)
	}
	for len(c.entries) > c.cap || c.bytes > maxCacheBytes {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		e := oldest.Value.(*cacheEntry)
		c.bytes -= len(e.body)
		delete(c.entries, e.key)
	}
}

func (c *queryCache) stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
