package api

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/tsdb"
)

func newTestGateway(t *testing.T, cfg Config) (*Gateway, *httptest.Server) {
	t.Helper()
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	g := New(db, nil, cfg)
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		srv.Close()
		g.Close()
		db.Close()
	})
	return g, srv
}

// waitIngested polls until the gateway has stored n points.
func waitIngested(t *testing.T, g *Gateway, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for g.ingested.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d ingested points (have %d)", n, g.ingested.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func putJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func putBody(n int, metric, sensor string, startTS int64) string {
	var b bytes.Buffer
	b.WriteByte('[')
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"metric":%q,"timestamp":%d,"value":%d,"tags":{"sensor":%q,"city":"trondheim"}}`,
			metric, startTS+int64(i), 400+i, sensor)
	}
	b.WriteByte(']')
	return b.String()
}

func TestPutSingleObject(t *testing.T) {
	g, srv := newTestGateway(t, Config{})
	resp := putJSON(t, srv.URL+"/api/put",
		`{"metric":"air.co2","timestamp":1488326400,"value":412.5,"tags":{"sensor":"n1"}}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status = %d, want 204", resp.StatusCode)
	}
	waitIngested(t, g, 1)
}

func TestPutValidation(t *testing.T) {
	_, srv := newTestGateway(t, Config{})

	// All invalid → 400 with per-point errors.
	resp := putJSON(t, srv.URL+"/api/put", `[{"metric":"","timestamp":1488326400,"value":1,"tags":{"a":"b"}}]`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("all-invalid status = %d, want 400", resp.StatusCode)
	}
	var pr putResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Failed != 1 || len(pr.Errors) != 1 {
		t.Errorf("response = %+v, want 1 failure", pr)
	}

	// Mixed batch with ?details → 200 summary.
	mixed := `[{"metric":"air.co2","timestamp":1488326400,"value":1,"tags":{"sensor":"n1"}},
	           {"metric":"bad metric!","timestamp":1488326400,"value":1,"tags":{"sensor":"n1"}}]`
	resp2 := putJSON(t, srv.URL+"/api/put?details=1", mixed)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("mixed status = %d, want 200", resp2.StatusCode)
	}
	if err := json.NewDecoder(resp2.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Success != 1 || pr.Failed != 1 {
		t.Errorf("mixed response = %+v, want success=1 failed=1", pr)
	}

	// Non-finite values (reachable via quoted "NaN") would poison
	// every query over their range with JSON marshal errors → 400.
	for _, v := range []string{"NaN", "Inf", "-Inf"} {
		respNaN := putJSON(t, srv.URL+"/api/put",
			`{"metric":"air.co2","timestamp":1488326400,"value":"`+v+`","tags":{"sensor":"n1"}}`)
		respNaN.Body.Close()
		if respNaN.StatusCode != http.StatusBadRequest {
			t.Errorf("value=%q status = %d, want 400", v, respNaN.StatusCode)
		}
	}

	// Missing timestamp → rejected, not silently stored at the epoch.
	respTS := putJSON(t, srv.URL+"/api/put", `{"metric":"air.co2","value":1,"tags":{"sensor":"n1"}}`)
	defer respTS.Body.Close()
	if respTS.StatusCode != http.StatusBadRequest {
		t.Errorf("missing-timestamp status = %d, want 400", respTS.StatusCode)
	}

	// Garbage body → 400.
	resp3 := putJSON(t, srv.URL+"/api/put", `{not json`)
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage status = %d, want 400", resp3.StatusCode)
	}

	// GET → 405.
	resp4, err := http.Get(srv.URL + "/api/put")
	if err != nil {
		t.Fatal(err)
	}
	defer resp4.Body.Close()
	if resp4.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp4.StatusCode)
	}
}

func TestEndToEndIngestQuery(t *testing.T) {
	// CacheAlign generous so the repeat query is a guaranteed hit.
	g, srv := newTestGateway(t, Config{CacheAlign: time.Hour})
	start := int64(1488326400) // 2017-03-01 in seconds

	for _, sensor := range []string{"n1", "n2"} {
		resp := putJSON(t, srv.URL+"/api/put", putBody(10, "air.co2", sensor, start))
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("put %s status = %d, want 204", sensor, resp.StatusCode)
		}
	}
	waitIngested(t, g, 20)

	// Grouped by sensor → two series.
	url := fmt.Sprintf("%s/api/query?start=%d&end=%d&m=avg:air.co2{sensor=*}",
		srv.URL, start, start+100)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first query X-Cache = %q, want miss", got)
	}
	var res []wireResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d series, want 2 (res=%v)", len(res), res)
	}
	for _, rs := range res {
		if rs.Metric != "air.co2" {
			t.Errorf("metric = %q", rs.Metric)
		}
		if len(rs.DPS) != 10 {
			t.Errorf("series %v has %d points, want 10", rs.Tags, len(rs.DPS))
		}
		// Values were 400..409 at ms timestamps start*1000 + i*1000.
		if v, ok := rs.DPS[fmt.Sprint(start*1000)]; !ok || v != 400 {
			t.Errorf("first point = %v (present=%v), want 400", v, ok)
		}
	}

	// Same query again → served from cache.
	resp2, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second query X-Cache = %q, want hit", got)
	}

	// Downsampled sum across sensors, POST form.
	body := fmt.Sprintf(`{"start":%d,"end":%d,"queries":[{"aggregator":"sum","metric":"air.co2","downsample":"10s-avg"}]}`,
		start, start+100)
	resp3, err := http.Post(srv.URL+"/api/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("POST query status = %d", resp3.StatusCode)
	}
	var res3 []wireResult
	if err := json.NewDecoder(resp3.Body).Decode(&res3); err != nil {
		t.Fatal(err)
	}
	if len(res3) != 1 {
		t.Fatalf("POST query got %d series, want 1", len(res3))
	}
}

func TestQueryBadRequests(t *testing.T) {
	_, srv := newTestGateway(t, Config{})
	for _, url := range []string{
		"/api/query",                               // no start
		"/api/query?start=1488326400",              // no m
		"/api/query?start=1488326400&m=bogus",      // no agg:metric
		"/api/query?start=1488326400&m=nope:air.x", // unknown aggregator
		"/api/query?start=xyz&m=avg:air.x",         // bad time
		"/api/query?start=2&end=1&m=avg:air.x",     // inverted range
		"/api/query?start=1&m=avg:air.x{sensor}",   // bad tag filter
		"/api/query?start=1&m=avg:1z-avg:air.x",    // bad downsample
		"/api/query?start=1&m=avg:weird:air.x",     // bad middle component
	} {
		resp, err := http.Get(srv.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", url, resp.StatusCode)
		}
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// No workers: the queue only fills.
	g := newGateway(db, nil, Config{QueueSize: 8})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	// Fill the queue to capacity.
	var fill []tsdb.DataPoint
	for i := 0; i < 8; i++ {
		fill = append(fill, tsdb.DataPoint{
			Metric: "air.co2",
			Tags:   map[string]string{"sensor": "n1"},
			Point:  tsdb.Point{Timestamp: int64(1000 + i), Value: 1},
		})
	}
	if err := g.Enqueue(fill); err != nil {
		t.Fatal(err)
	}

	resp := putJSON(t, srv.URL+"/api/put", putBody(1, "air.co2", "n1", 1488326400))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}

	// A batch that could never fit is 413, not a retriable 429.
	respBig := putJSON(t, srv.URL+"/api/put", putBody(9, "air.co2", "n1", 1488326400))
	defer respBig.Body.Close()
	if respBig.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch status = %d, want 413", respBig.StatusCode)
	}

	// Draining restores service.
	g.startWorkers()
	waitIngested(t, g, 8)
	resp2 := putJSON(t, srv.URL+"/api/put", putBody(1, "air.co2", "n1", 1488326400))
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNoContent {
		t.Fatalf("after drain status = %d, want 204", resp2.StatusCode)
	}
	g.Close()
}

func TestRateLimit(t *testing.T) {
	_, srv := newTestGateway(t, Config{RateLimit: 1, RateBurst: 5})

	// Burst of 5 accepted.
	resp := putJSON(t, srv.URL+"/api/put", putBody(5, "air.co2", "n1", 1488326400))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("burst status = %d, want 204", resp.StatusCode)
	}
	// Immediate follow-up of 5 exceeds the bucket.
	resp2 := putJSON(t, srv.URL+"/api/put", putBody(5, "air.co2", "n1", 1488326500))
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget status = %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("rate-limited 429 without Retry-After")
	}

	// A batch bigger than the burst can never pass: 413, not 429.
	resp3 := putJSON(t, srv.URL+"/api/put", putBody(6, "air.co2", "n1", 1488326600))
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-burst status = %d, want 413", resp3.StatusCode)
	}
}

func TestPutQuotedNumerics(t *testing.T) {
	g, srv := newTestGateway(t, Config{})
	// Real OpenTSDB accepts string-quoted timestamps/values.
	resp := putJSON(t, srv.URL+"/api/put",
		`{"metric":"air.co2","timestamp":"1488326400","value":"412.5","tags":{"sensor":"n1"}}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("quoted-numerics status = %d, want 204", resp.StatusCode)
	}
	waitIngested(t, g, 1)
	resp2, err := http.Get(srv.URL + "/api/query?start=1488326399&end=1488326401&m=avg:air.co2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var res []wireResult
	if err := json.NewDecoder(resp2.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].DPS["1488326400000"] != 412.5 {
		t.Errorf("stored quoted point = %+v, want 412.5 at 1488326400000", res)
	}
}

func TestRateLimitThrottlesInvalidFlood(t *testing.T) {
	_, srv := newTestGateway(t, Config{RateLimit: 1, RateBurst: 3})
	// All-invalid batches cost one token each; the flood must
	// eventually be answered 429 instead of free 400s forever.
	got429 := false
	for i := 0; i < 10; i++ {
		resp := putJSON(t, srv.URL+"/api/put", `{"metric":"air.co2","value":1,"tags":{"s":"x"}}`)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			got429 = true
			break
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if !got429 {
		t.Error("10 all-invalid batches were never rate limited")
	}
}

func TestPutBareDetailsFlag(t *testing.T) {
	_, srv := newTestGateway(t, Config{})
	// OpenTSDB's documented form is a valueless ?details flag.
	resp := putJSON(t, srv.URL+"/api/put?details", putBody(2, "air.co2", "n1", 1488326400))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 with summary", resp.StatusCode)
	}
	var pr putResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Success != 2 || pr.Failed != 0 {
		t.Errorf("summary = %+v, want success=2", pr)
	}
}

func TestRateLimitRefundOnQueueFull(t *testing.T) {
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// No workers yet, so the queue stays full until we start them.
	g := newGateway(db, nil, Config{QueueSize: 4, RateLimit: 1, RateBurst: 4})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	var fill []tsdb.DataPoint
	for i := 0; i < 4; i++ {
		fill = append(fill, tsdb.DataPoint{
			Metric: "air.co2",
			Tags:   map[string]string{"sensor": "seed"},
			Point:  tsdb.Point{Timestamp: int64(1000 + i), Value: 1},
		})
	}
	if err := g.Enqueue(fill); err != nil {
		t.Fatal(err)
	}

	// The put is charged 4 tokens, hits the full queue, and must get
	// them back.
	resp := putJSON(t, srv.URL+"/api/put", putBody(4, "air.co2", "n1", 1488326400))
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full-queue status = %d, want 429", resp.StatusCode)
	}

	g.startWorkers()
	waitIngested(t, g, 4)

	// With the refund, the retry has its full burst available; without
	// it, the bucket would be empty (refill is only 1 token/sec).
	resp2 := putJSON(t, srv.URL+"/api/put", putBody(4, "air.co2", "n1", 1488326400))
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNoContent {
		t.Fatalf("retry after drain status = %d, want 204 (tokens not refunded?)", resp2.StatusCode)
	}
	g.Close()
}

func TestSuggest(t *testing.T) {
	g, srv := newTestGateway(t, Config{})
	resp := putJSON(t, srv.URL+"/api/put", putBody(1, "air.co2", "node-01", 1488326400))
	resp.Body.Close()
	resp = putJSON(t, srv.URL+"/api/put", putBody(1, "env.temperature", "node-02", 1488326400))
	resp.Body.Close()
	waitIngested(t, g, 2)

	for _, tc := range []struct {
		url  string
		want []string
	}{
		{"/api/suggest?type=metrics&q=air.", []string{"air.co2"}},
		{"/api/suggest?type=metrics", []string{"air.co2", "env.temperature"}},
		{"/api/suggest?type=tagk", []string{"city", "sensor"}},
		{"/api/suggest?type=tagv&q=node-", []string{"node-01", "node-02"}},
		{"/api/suggest?type=tagv&q=node-&max=1", []string{"node-01"}},
	} {
		res, err := http.Get(srv.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		err = json.NewDecoder(res.Body).Decode(&got)
		res.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("%s = %v, want %v", tc.url, got, tc.want)
		}
	}

	res, err := http.Get(srv.URL + "/api/suggest?type=bogus")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus type status = %d, want 400", res.StatusCode)
	}
}

func TestStream(t *testing.T) {
	g, srv := newTestGateway(t, Config{Heartbeat: time.Hour})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		srv.URL+"/api/stream?metric=air.&tag.sensor=n1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)

	// First frame confirms the subscription is live.
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), ": connected") {
		t.Fatalf("expected connect comment, got %q (err %v)", sc.Text(), sc.Err())
	}

	// A matching and two non-matching points.
	resp2 := putJSON(t, srv.URL+"/api/put", `[
	  {"metric":"node.battery","timestamp":1488326400,"value":97,"tags":{"sensor":"n1"}},
	  {"metric":"air.co2","timestamp":1488326401,"value":404,"tags":{"sensor":"n2"}},
	  {"metric":"air.co2","timestamp":1488326402,"value":415,"tags":{"sensor":"n1"}}]`)
	resp2.Body.Close()
	waitIngested(t, g, 3)

	var dataLine string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			dataLine = strings.TrimPrefix(line, "data: ")
			break
		}
	}
	if dataLine == "" {
		t.Fatalf("no event received: %v", sc.Err())
	}
	var ev streamEvent
	if err := json.Unmarshal([]byte(dataLine), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Metric != "air.co2" || ev.Tags["sensor"] != "n1" || ev.Value != 415 {
		t.Errorf("event = %+v, want the matching air.co2/n1 point", ev)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	g, srv := newTestGateway(t, Config{})
	resp := putJSON(t, srv.URL+"/api/put", putBody(5, "air.co2", "n1", 1488326400))
	resp.Body.Close()
	waitIngested(t, g, 5)

	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(res.Body)
	body := buf.String()
	for _, want := range []string{
		"ctt_ingest_queue_depth ",
		"ctt_ingest_queue_capacity 4096",
		"ctt_ingest_points_total 5",
		`ctt_ingest_rejected_total{reason="queue_full"} 0`,
		"ctt_query_cache_hit_ratio ",
		"ctt_tsdb_series 1",
		"ctt_tsdb_points 5",
		"ctt_ingest_rate_points_per_second ",
		"ctt_stream_subscribers 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}

func TestParseTime(t *testing.T) {
	now := func() time.Time { return time.UnixMilli(1_500_000_000_000) }
	for _, tc := range []struct {
		in   string
		want int64
	}{
		{"1488326400", 1488326400000},    // seconds
		{"1488326400000", 1488326400000}, // milliseconds
		{"2017-03-01T00:00:00Z", 1488326400000},
		{"1h-ago", 1_500_000_000_000 - 3600_000},
		{"2d-ago", 1_500_000_000_000 - 2*24*3600_000},
	} {
		got, err := parseTime(tc.in, now)
		if err != nil {
			t.Errorf("parseTime(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseTime(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
	if _, err := parseTime("not-a-time", now); err == nil {
		t.Error("parseTime accepted garbage")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newQueryCache(2)
	c.put("a", []byte("1"), 0, 0, nil, nil)
	c.put("b", []byte("2"), 0, 0, nil, nil)
	if _, ok := c.get("a"); !ok { // refresh a
		t.Fatal("a missing")
	}
	c.put("c", []byte("3"), 0, 0, nil, nil) // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should have survived")
	}
	hits, misses, _ := c.stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d/%d, want 2 hits 1 miss", hits, misses)
	}
}

func TestCacheByteBounds(t *testing.T) {
	c := newQueryCache(1000)
	// Oversized bodies are never cached.
	c.put("huge", make([]byte, maxCacheBody+1), 0, 0, nil, nil)
	if _, ok := c.get("huge"); ok {
		t.Error("oversized body was cached")
	}
	// Total bytes stay under maxCacheBytes: 100 entries of ~1 MiB
	// exceed 64 MiB, so early ones must be evicted.
	for i := 0; i < 100; i++ {
		c.put(fmt.Sprintf("k%03d", i), make([]byte, maxCacheBody), 0, 0, nil, nil)
	}
	if c.bytes > maxCacheBytes {
		t.Errorf("cache holds %d bytes, cap %d", c.bytes, maxCacheBytes)
	}
	if _, ok := c.get("k000"); ok {
		t.Error("oldest entry survived byte-bound eviction")
	}
	if _, ok := c.get("k099"); !ok {
		t.Error("newest entry missing")
	}
}

// TestCacheFillPoisoning pins the look-aside race fix: a write that
// lands between a query's store read and its cache insert must keep
// the (now stale) body out of the cache — otherwise, with no later
// write to invalidate it, the stale entry would be served forever.
func TestCacheFillPoisoning(t *testing.T) {
	c := newQueryCache(10)

	// Write inside the fill's range while the "scan" is in flight:
	// the body read before that write must not be inserted.
	f := c.beginFill(100, 200, []string{"m.a"})
	c.invalidate("m.a", 150)
	c.put("k1", []byte("stale"), 100, 200, []string{"m.a"}, f)
	if _, ok := c.get("k1"); ok {
		t.Error("poisoned fill was cached")
	}

	// A write outside the range, or to another metric, is harmless.
	f = c.beginFill(100, 200, []string{"m.a"})
	c.invalidate("m.a", 300)
	c.invalidate("m.b", 150)
	c.put("k2", []byte("fresh"), 100, 200, []string{"m.a"}, f)
	if _, ok := c.get("k2"); !ok {
		t.Error("unpoisoned fill was not cached")
	}

	// Abandoned fills deregister; endFill after put is a no-op, and
	// the registry drains back to empty either way.
	f = c.beginFill(100, 200, []string{"m.a"})
	c.endFill(f)
	c.endFill(f)
	if n := c.fillCount.Load(); n != 0 {
		t.Errorf("fillCount = %d after drain, want 0", n)
	}
	if len(c.fills) != 0 {
		t.Errorf("fills registry not empty: %v", c.fills)
	}
}

// TestPutGzip: a gzip-compressed /api/put batch is decoded and
// stored; a garbage gzip body is a 400, not a hang or a store write.
func TestPutGzip(t *testing.T) {
	g, srv := newTestGateway(t, Config{})
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte(putBody(5, "air.co2", "gz-1", 1488326400)))
	zw.Close()

	req, err := http.NewRequest(http.MethodPost, srv.URL+"/api/put", &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("gzip put status = %d, want 204", resp.StatusCode)
	}
	waitIngested(t, g, 5)

	req2, _ := http.NewRequest(http.MethodPost, srv.URL+"/api/put", strings.NewReader("not gzip at all"))
	req2.Header.Set("Content-Encoding", "gzip")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage gzip status = %d, want 400", resp2.StatusCode)
	}

	req3, _ := http.NewRequest(http.MethodPost, srv.URL+"/api/put", strings.NewReader("{}"))
	req3.Header.Set("Content-Encoding", "deflate")
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("deflate status = %d, want 415", resp3.StatusCode)
	}
}

// TestQueryGzipResponse: /api/query honours Accept-Encoding: gzip on
// both cache misses and hits, and plain clients still get plain JSON.
func TestQueryGzipResponse(t *testing.T) {
	g, srv := newTestGateway(t, Config{})
	resp := putJSON(t, srv.URL+"/api/put", putBody(10, "air.co2", "gz-2", 1488326400))
	resp.Body.Close()
	waitIngested(t, g, 10)

	url := srv.URL + "/api/query?start=1488326400&end=1488327000&m=avg:air.co2"
	fetch := func(acceptGzip bool) (*http.Response, []byte) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, url, nil)
		if acceptGzip {
			// Setting the header explicitly disables the transport's
			// transparent decompression: we see the raw bytes.
			req.Header.Set("Accept-Encoding", "gzip")
		}
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	for _, cache := range []string{"miss", "hit"} {
		resp, body := fetch(true)
		if got := resp.Header.Get("X-Cache"); got != cache {
			t.Fatalf("X-Cache = %q, want %q", got, cache)
		}
		if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
			t.Fatalf("Content-Encoding = %q, want gzip (%s)", enc, cache)
		}
		zr, err := gzip.NewReader(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", cache, err)
		}
		plain, err := io.ReadAll(zr)
		if err != nil {
			t.Fatal(err)
		}
		var out []wireResult
		if err := json.Unmarshal(plain, &out); err != nil {
			t.Fatalf("%s: gunzipped body is not the query result: %v", cache, err)
		}
		if len(out) != 1 || len(out[0].DPS) != 10 {
			t.Fatalf("%s: unexpected result %+v", cache, out)
		}
	}

	resp2, body := fetch(false)
	if enc := resp2.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("plain client got Content-Encoding %q", enc)
	}
	var out []wireResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("plain body: %v", err)
	}
}

// TestCacheInvalidationOnWrite: a write landing inside a cached
// query's time range drops the entry, so the next poll sees the new
// point instead of waiting out the alignment bucket.
func TestCacheInvalidationOnWrite(t *testing.T) {
	now := time.Date(2017, time.March, 2, 0, 0, 0, 0, time.UTC)
	g, srv := newTestGateway(t, Config{
		CacheAlign: time.Hour, // coarse alignment: only invalidation can refresh
		Now:        func() time.Time { return now },
	})
	resp := putJSON(t, srv.URL+"/api/put", putBody(10, "air.co2", "inv-1", 1488326400))
	resp.Body.Close()
	waitIngested(t, g, 10)

	url := srv.URL + "/api/query?start=1488326400&end=1488330000&m=avg:air.co2"
	query := func() (string, int) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out []wireResult
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 {
			t.Fatalf("got %d series", len(out))
		}
		return resp.Header.Get("X-Cache"), len(out[0].DPS)
	}

	if c, n := query(); c != "miss" || n != 10 {
		t.Fatalf("first query: cache=%s n=%d", c, n)
	}
	if c, _ := query(); c != "hit" {
		t.Fatalf("second query: cache=%s, want hit", c)
	}

	// A write inside the cached range invalidates...
	resp2 := putJSON(t, srv.URL+"/api/put",
		`{"metric":"air.co2","timestamp":1488327000,"value":555,"tags":{"sensor":"inv-1","city":"trondheim"}}`)
	resp2.Body.Close()
	waitIngested(t, g, 11)
	if c, n := query(); c != "miss" || n != 11 {
		t.Fatalf("post-write query: cache=%s n=%d, want miss/11", c, n)
	}
	if c, _ := query(); c != "hit" {
		t.Fatal("cache did not repopulate")
	}

	// ... a write to another metric, or outside the range, does not.
	resp3 := putJSON(t, srv.URL+"/api/put",
		`{"metric":"air.no2","timestamp":1488327000,"value":5,"tags":{"sensor":"inv-1"}}`)
	resp3.Body.Close()
	resp4 := putJSON(t, srv.URL+"/api/put",
		`{"metric":"air.co2","timestamp":1489000000,"value":5,"tags":{"sensor":"inv-1","city":"trondheim"}}`)
	resp4.Body.Close()
	waitIngested(t, g, 13)
	if c, _ := query(); c != "hit" {
		t.Fatal("unrelated writes invalidated the entry")
	}
	if _, _, inv := g.cache.stats(); inv == 0 {
		t.Fatal("invalidation counter not incremented")
	}
}
