package api

// Flight-recorder and self-scrape tests: /api/traces serves retained
// traces whose IDs match what the OpenMetrics exemplars advertise, the
// openmetrics exposition flavor is opt-in and well-formed, and the
// self-scrape loop lands ctt.self.* series that /api/query can read
// back like any sensor data.

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp
}

func TestTracesEndpoint(t *testing.T) {
	// TraceSample=1 marks every query detailed, so every query is
	// retained regardless of speed.
	g, srv := newTestGateway(t, Config{TraceSample: 1})
	resp := putJSON(t, srv.URL+"/api/put", putBody(10, "tr.test", "s1", 1488326400000))
	resp.Body.Close()
	waitIngested(t, g, 10)
	qr, err := http.Get(srv.URL + "/api/query?start=1488326000000&end=1488327000000&m=avg:tr.test")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, qr.Body)
	qr.Body.Close()

	// Retention happens in the handler's deferred epilogue; poll briefly.
	var list []map[string]any
	deadline := time.Now().Add(5 * time.Second)
	for len(list) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no trace retained after a sampled query")
		}
		time.Sleep(time.Millisecond)
		getJSON(t, srv.URL+"/api/traces", &list)
	}

	row := list[0]
	id, _ := row["id"].(string)
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Fatalf("listed trace id = %q, want 16 hex digits", id)
	}
	if row["name"] != "query" || row["detailed"] != true {
		t.Fatalf("trace summary = %+v", row)
	}
	if !strings.Contains(row["detail"].(string), "tr.test") {
		t.Fatalf("trace detail = %q, want the query URI", row["detail"])
	}

	var detail struct {
		ID    string `json:"id"`
		Spans []struct {
			Name     string          `json:"name"`
			Children json.RawMessage `json:"children"`
		} `json:"spans"`
		Stages []struct {
			Name  string `json:"name"`
			Count int64  `json:"count"`
		} `json:"stages"`
	}
	if r := getJSON(t, srv.URL+"/api/traces/"+id, &detail); r.StatusCode != http.StatusOK {
		t.Fatalf("trace detail status = %d", r.StatusCode)
	}
	if detail.ID != id || len(detail.Spans) == 0 {
		t.Fatalf("trace detail = %+v, want the span tree", detail)
	}
	spanNames := map[string]bool{}
	for _, sp := range detail.Spans {
		spanNames[sp.Name] = true
	}
	if !spanNames["parse"] {
		t.Fatalf("detail spans %v missing the parse phase", spanNames)
	}
	stageNames := map[string]bool{}
	for _, st := range detail.Stages {
		stageNames[st.Name] = true
	}
	if !stageNames["match_series"] {
		t.Fatalf("detail stages %v missing match_series", stageNames)
	}

	if r := getJSON(t, srv.URL+"/api/traces/ffffffffffffffff", nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace id status = %d, want 404", r.StatusCode)
	}
}

func TestTracesDisabled(t *testing.T) {
	_, srv := newTestGateway(t, Config{TraceRetain: -1})
	if r := getJSON(t, srv.URL+"/api/traces", nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled recorder status = %d, want 404", r.StatusCode)
	}
}

// TestOpenMetricsExemplarsResolve is the cross-surface contract: scrape
// /metrics in OpenMetrics flavor after a slow query, and every exemplar
// trace_id must resolve on /api/traces/{id}.
func TestOpenMetricsExemplarsResolve(t *testing.T) {
	g, srv := newTestGateway(t, Config{
		SlowQuery: time.Nanosecond,
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	resp := putJSON(t, srv.URL+"/api/put", putBody(10, "om.test", "s1", 1488326400000))
	resp.Body.Close()
	waitIngested(t, g, 10)
	qr, err := http.Get(srv.URL + "/api/query?start=1488326000000&end=1488327000000&m=avg:om.test")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, qr.Body)
	qr.Body.Close()

	var body string
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(body, "trace_id") {
		if time.Now().After(deadline) {
			t.Fatalf("no exemplar after a slow query; body:\n%s", body)
		}
		time.Sleep(time.Millisecond)
		mr, err := http.Get(srv.URL + "/metrics?format=openmetrics")
		if err != nil {
			t.Fatal(err)
		}
		if ct := mr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text; version=1.0.0") {
			t.Fatalf("openmetrics content type = %q", ct)
		}
		b, _ := io.ReadAll(mr.Body)
		mr.Body.Close()
		body = string(b)
	}

	p := parseExposition(t, body)
	p.checkHistograms(t)
	if !p.sawEOF {
		t.Fatal("openmetrics body missing # EOF terminator")
	}
	if len(p.exemplars) == 0 {
		t.Fatal("parser saw no exemplars")
	}
	resolved := map[string]bool{}
	for bucket, id := range p.exemplars {
		if resolved[id] {
			continue
		}
		if r := getJSON(t, srv.URL+"/api/traces/"+id, nil); r.StatusCode != http.StatusOK {
			t.Errorf("exemplar on %s: trace %s not retained (status %d)", bucket, id, r.StatusCode)
		}
		resolved[id] = true
	}

	// The Accept header selects the same flavor; the classic endpoint
	// stays classic (no EOF, no exemplars) for existing scrapers.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	ar, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := io.ReadAll(ar.Body)
	ar.Body.Close()
	if !strings.HasSuffix(string(ab), "# EOF\n") {
		t.Error("Accept negotiation did not select OpenMetrics")
	}
	classic := scrape(t, srv.URL)
	if strings.Contains(classic, "trace_id") || strings.Contains(classic, "# EOF") {
		t.Error("classic /metrics leaked OpenMetrics syntax")
	}
}

// TestSelfScrape soaks the self-ingestion loop: a few scrapes must
// produce ctt.self.* series readable through /api/query with the
// src=self tag, including runtime collector values.
func TestSelfScrape(t *testing.T) {
	base := time.Date(2017, time.March, 1, 12, 0, 0, 0, time.UTC)
	now := base
	g, srv := newTestGateway(t, Config{Now: func() time.Time { return now }})
	g.reg.Counter(`ctt_selftest_total{reason="soak"}`).Add(9)
	s := NewSelfScraper(g, SelfScrapeConfig{Interval: time.Hour}) // loop not started; scrape by hand

	for i := 0; i < 3; i++ {
		now = base.Add(time.Duration(i) * 15 * time.Second)
		if stored := s.ScrapeOnce(); stored == 0 {
			t.Fatalf("scrape %d stored no points", i)
		}
	}

	for _, metric := range []string{
		"ctt.self.go_goroutines",
		"ctt.self.ingest_queue_depth",
	} {
		var res []struct {
			Metric string             `json:"metric"`
			Tags   map[string]string  `json:"tags"`
			DPS    map[string]float64 `json:"dps"`
		}
		url := fmt.Sprintf("%s/api/query?start=%d&end=%d&m=avg:%s",
			srv.URL, base.Add(-time.Minute).UnixMilli(), base.Add(time.Minute).UnixMilli(), metric)
		if r := getJSON(t, url, &res); r.StatusCode != http.StatusOK {
			t.Fatalf("query %s status = %d", metric, r.StatusCode)
		}
		if len(res) != 1 {
			t.Fatalf("query %s returned %d series, want 1", metric, len(res))
		}
		if res[0].Tags["src"] != "self" {
			t.Fatalf("%s tags = %v, want src=self", metric, res[0].Tags)
		}
		if len(res[0].DPS) != 3 {
			t.Fatalf("%s has %d points, want 3", metric, len(res[0].DPS))
		}
	}

	// Inline-labeled registry entries become tags on the self series.
	var res []struct {
		Tags map[string]string  `json:"tags"`
		DPS  map[string]float64 `json:"dps"`
	}
	url := fmt.Sprintf("%s/api/query?start=%d&end=%d&m=avg:ctt.self.selftest_total",
		srv.URL, base.Add(-time.Minute).UnixMilli(), base.Add(time.Minute).UnixMilli())
	if r := getJSON(t, url, &res); r.StatusCode != http.StatusOK || len(res) != 1 {
		t.Fatalf("labeled self series query status=%d res=%v", r.StatusCode, res)
	}
	if res[0].Tags["reason"] != "soak" || res[0].Tags["src"] != "self" {
		t.Fatalf("labeled self series tags = %v, want reason=soak src=self", res[0].Tags)
	}
	for _, v := range res[0].DPS {
		if v != 9 {
			t.Fatalf("labeled self series value = %v, want 9", v)
		}
	}

	// A second scraper pass reuses interned refs; the skip counter only
	// grows for permanently unrepresentable entries (none twice over).
	skippedBefore := s.skipped.Load()
	now = base.Add(time.Minute)
	s.ScrapeOnce()
	if s.skipped.Load() < skippedBefore {
		t.Fatal("skip counter went backwards")
	}
	if got := s.scrapes.Load(); got != 4 {
		t.Fatalf("scrapes counter = %d, want 4", got)
	}
}
