package api

// Replica role support: a gateway serving a replication follower
// accepts the full read surface but refuses writes with 503 plus the
// primary's address, and exposes POST /api/promote to flip the node
// into a writable primary (the promotion mechanics — stopping the
// stream, fencing the epoch — live in the hook ctt-server installs).

import (
	"net/http"
	"sync"
)

type roleState struct {
	mu        sync.Mutex
	readOnly  bool
	primary   string
	promote   func() (uint64, error)
	promoting sync.Mutex
}

// SetReplica flips the gateway read-only: writes are refused with 503
// naming primary, and promote becomes the POST /api/promote action
// (expected to stop replication, fence a new epoch, and return it).
func (g *Gateway) SetReplica(primary string, promote func() (uint64, error)) {
	g.role.mu.Lock()
	g.role.readOnly = true
	g.role.primary = primary
	g.role.promote = promote
	g.role.mu.Unlock()
}

// SetWritable clears replica mode (after promotion).
func (g *Gateway) SetWritable() {
	g.role.mu.Lock()
	g.role.readOnly = false
	g.role.promote = nil
	g.role.mu.Unlock()
}

// ReadOnly reports replica mode and the primary's address.
func (g *Gateway) ReadOnly() (bool, string) {
	g.role.mu.Lock()
	defer g.role.mu.Unlock()
	return g.role.readOnly, g.role.primary
}

// rejectReadOnly writes the 503 write-refusal when the gateway is a
// replica; it reports whether the request was handled.
func (g *Gateway) rejectReadOnly(w http.ResponseWriter) bool {
	ro, primary := g.ReadOnly()
	if !ro {
		return false
	}
	w.Header().Set("Retry-After", "5")
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":   "replica is read-only",
		"primary": primary,
	})
	return true
}

// handlePromote implements POST /api/promote (admin-keyed via
// requireKey): flip a follower into a writable primary. Idempotent on
// an already-writable node.
func (g *Gateway) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	// One promotion at a time; losers observe the flipped role.
	g.role.promoting.Lock()
	defer g.role.promoting.Unlock()
	g.role.mu.Lock()
	ro, promote := g.role.readOnly, g.role.promote
	g.role.mu.Unlock()
	if !ro {
		writeJSON(w, http.StatusOK, map[string]any{"role": "primary", "promoted": false})
		return
	}
	if promote == nil {
		httpError(w, http.StatusInternalServerError, "no promotion hook installed")
		return
	}
	epoch, err := promote()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "promotion failed: %v", err)
		return
	}
	g.SetWritable()
	g.cfg.Logger.Info("promoted to primary", "epoch", epoch)
	writeJSON(w, http.StatusOK, map[string]any{"role": "primary", "promoted": true, "epoch": epoch})
}
