package api

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/tsdb"
	"repro/internal/tsdb/fsio"
)

// TestDegradedModeE2E is the ISSUE's disk-failure drill at the HTTP
// boundary: ENOSPC on every block-file write makes repeated flushes
// fail until the store degrades, after which writes answer 503 with
// Retry-After while queries keep serving, /healthz reports the
// degraded state with its originating error, and /metrics exposes
// ctt_degraded plus the per-op storage error counters.
func TestDegradedModeE2E(t *testing.T) {
	ffs := fsio.NewFaultFS(fsio.OS)
	db, err := tsdb.OpenOptions(tsdb.Options{
		Dir:             t.TempDir(),
		DurableBlocks:   true,
		FlushInterval:   -1,
		CompactInterval: -1,
		FlushAge:        30 * time.Minute,
		Now:             func() time.Time { return time.Date(2017, time.April, 1, 0, 0, 0, 0, time.UTC) },
		FS:              ffs,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := New(db, nil, Config{})
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		srv.Close()
		g.Close()
		db.Close()
	})

	const n = 600
	const startTS = int64(1488326400) // 2017-03-01, well past FlushAge
	resp := putJSON(t, srv.URL+"/api/put", putBody(n, "air.co2", "n1", startTS))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("put status = %d, want 204", resp.StatusCode)
	}
	waitIngested(t, g, n)

	// The disk fills: every block-file create fails from here on.
	ffs.SetPlan(func(op fsio.Op, path string, opn int64) *fsio.Fault {
		if op == fsio.OpCreate && strings.Contains(path, "blocks") {
			return &fsio.Fault{Err: syscall.ENOSPC}
		}
		return nil
	})
	for i := 0; i < 10 && db.Degraded() == nil; i++ {
		if _, err := db.FlushBlocks(); err == nil {
			t.Fatalf("flush %d succeeded on a full disk", i)
		}
	}
	if db.Degraded() == nil {
		t.Fatal("store did not degrade after repeated flush failures")
	}

	// Writes: 503 with a long Retry-After.
	resp = putJSON(t, srv.URL+"/api/put", putBody(1, "air.co2", "n1", startTS+n))
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("put while degraded = %d (%s), want 503", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "30" {
		t.Fatalf("put Retry-After = %q, want 30", got)
	}

	// Reads: still serving everything already held.
	qr, err := http.Get(srv.URL + "/api/query?start=1488326400&end=1488327100&m=avg:air.co2{sensor=*}")
	if err != nil {
		t.Fatal(err)
	}
	qbody, _ := io.ReadAll(qr.Body)
	qr.Body.Close()
	if qr.StatusCode != http.StatusOK {
		t.Fatalf("query while degraded = %d (%s), want 200", qr.StatusCode, qbody)
	}
	if !strings.Contains(string(qbody), "air.co2") {
		t.Fatalf("query body missing series: %s", qbody)
	}

	// /healthz: 503, status degraded, the cause, and Retry-After.
	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while degraded = %d, want 503", hr.StatusCode)
	}
	if got := hr.Header.Get("Retry-After"); got != "30" {
		t.Fatalf("healthz Retry-After = %q, want 30", got)
	}
	var hm map[string]any
	if err := json.Unmarshal(hbody, &hm); err != nil {
		t.Fatal(err)
	}
	if hm["status"] != "degraded" {
		t.Fatalf("healthz status = %v, want degraded", hm["status"])
	}
	if s, _ := hm["degraded_error"].(string); !strings.Contains(s, "degraded") {
		t.Fatalf("healthz degraded_error = %q, want the originating error", s)
	}

	// /metrics: the degraded gauge and per-op storage error counters.
	mr, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	ms := string(mbody)
	if !strings.Contains(ms, "ctt_degraded 1") {
		t.Fatal("metrics missing ctt_degraded 1")
	}
	if !strings.Contains(ms, `ctt_storage_errors_total{op="flush"}`) {
		t.Fatal("metrics missing flush storage error counter")
	}
	for _, line := range strings.Split(ms, "\n") {
		if strings.HasPrefix(line, `ctt_storage_errors_total{op="flush"} `) {
			if strings.TrimPrefix(line, `ctt_storage_errors_total{op="flush"} `) == "0" {
				t.Fatalf("flush storage error counter still zero: %s", line)
			}
		}
	}
}

// TestEnqueueRefsDegradedFailFast: points must not be queued for
// workers to burn on a store that is certain to reject them.
func TestEnqueueRefsDegradedFailFast(t *testing.T) {
	ffs := fsio.NewFaultFS(fsio.OS)
	db, err := tsdb.OpenOptions(tsdb.Options{
		Dir: t.TempDir(), DurableBlocks: true,
		FlushInterval: -1, CompactInterval: -1, FS: ffs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	g := newGateway(db, nil, Config{})
	defer g.Close()

	ffs.SetPlan(func(op fsio.Op, path string, opn int64) *fsio.Fault {
		if op == fsio.OpSync {
			return &fsio.Fault{Err: syscall.EIO}
		}
		return nil
	})
	if err := db.Sync(); err == nil {
		t.Fatal("sync succeeded through failing fsync")
	}

	ref, err := db.Intern("deg.q", map[string]string{"s": "1"})
	if err != nil {
		t.Fatal(err)
	}
	err = g.EnqueueRefs([]tsdb.RefPoint{{Ref: ref, Point: tsdb.Point{Timestamp: 1, Value: 1}}})
	if err == nil {
		t.Fatal("EnqueueRefs accepted points into a degraded store")
	}
	if len(g.queue) != 0 {
		t.Fatalf("queue holds %d points after degraded refusal", len(g.queue))
	}
}

// TestPanicRecoveryMiddleware: a panicking handler answers 500, is
// counted, and the server keeps serving afterwards.
func TestPanicRecoveryMiddleware(t *testing.T) {
	g, srv := newTestGateway(t, Config{})

	boom := true
	orig := g.exec
	g.exec = func(q tsdb.Query, yield func(tsdb.ResultSeries) error) error {
		if boom {
			panic("kaboom")
		}
		return orig(q, yield)
	}

	resp, err := http.Get(srv.URL + "/api/query?start=0&end=10&m=avg:air.co2")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d (%s), want 500", resp.StatusCode, body)
	}
	if g.panics.Load() != 1 {
		t.Fatalf("panics counter = %d, want 1", g.panics.Load())
	}

	// The next request on the same server succeeds: one poisoned
	// request did not take the process down.
	boom = false
	resp2, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("healthz after recovered panic = %d, want 200", resp2.StatusCode)
	}

	mr, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(mbody), "ctt_panics_total 1") {
		t.Fatal("metrics missing ctt_panics_total 1")
	}
}

// TestHealthzSaturatedRetryAfter: saturation shedding advertises a
// short Retry-After so producers back off instead of hammering.
func TestHealthzSaturatedRetryAfter(t *testing.T) {
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	g := newGateway(db, nil, Config{QueueSize: 100})
	defer g.Close()
	ref, err := db.Intern("sat.ra", map[string]string{"s": "1"})
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]tsdb.RefPoint, 96)
	for i := range pts {
		pts[i] = tsdb.RefPoint{Ref: ref, Point: tsdb.Point{Timestamp: int64(i + 1), Value: 1}}
	}
	if err := g.EnqueueRefs(pts); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	g.handleHealthz(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz = %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("saturated Retry-After = %q, want 1", got)
	}
}
