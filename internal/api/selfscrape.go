package api

// Self-scrape: the server dogfoods its own store. A SelfScraper
// periodically walks the gateway's obs Registry (which includes the
// runtime collector's gauges — goroutines, heap, GC — next to queue
// depth, WAL bytes and cache hit ratio) and writes every numeric value
// as an ordinary data point under a configurable metric prefix,
// straight through tsdb.AppendRefs. The points ride the normal write
// path — batch observers fan them out to /api/stream subscribers and
// the rollup engine, so the server's own health history is queryable
// via /api/query, downsampled by internal/rollup, and chartable on the
// dashboard's /ops page.
//
// Series refs are interned once and cached, so a steady-state scrape
// is a registry walk plus one AppendRefs batch — no per-scrape string
// or map construction. Writes bypass the bounded ingest queue on
// purpose: when the queue saturates is exactly when the self-telemetry
// of the saturation must still be recorded.

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/tsdb"
)

// SelfScrapeConfig tunes a SelfScraper. Zero values select defaults.
type SelfScrapeConfig struct {
	// Prefix is the metric namespace self points land under; a
	// registry entry "ctt_ingest_queue_depth" becomes
	// "<prefix>.ingest_queue_depth". Default "ctt.self".
	Prefix string
	// Interval between scrapes. Default 15s.
	Interval time.Duration
}

func (c *SelfScrapeConfig) setDefaults() {
	if c.Prefix == "" {
		c.Prefix = "ctt.self"
	}
	if c.Interval <= 0 {
		c.Interval = 15 * time.Second
	}
}

// SelfScraper samples a gateway's metrics registry into its store.
type SelfScraper struct {
	g   *Gateway
	cfg SelfScrapeConfig

	// refs caches the interned series per registry entry name. Entries
	// that cannot form a valid tsdb series (label values outside the
	// store's charset, e.g. ctt_build_info's "(devel)") cache nil and
	// are skipped thereafter.
	mu   sync.Mutex
	refs map[string]*tsdb.Ref
	pts  []tsdb.RefPoint // reused scratch batch

	scrapes atomic.Uint64
	points  atomic.Uint64
	skipped atomic.Uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewSelfScraper builds a scraper over the gateway's registry and
// store and registers its own meta-counters on that registry. Call
// Start to begin the loop (or ScrapeOnce directly).
func NewSelfScraper(g *Gateway, cfg SelfScrapeConfig) *SelfScraper {
	cfg.setDefaults()
	s := &SelfScraper{
		g:    g,
		cfg:  cfg,
		refs: make(map[string]*tsdb.Ref),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	g.reg.Gauge("ctt_self_scrapes_total", func() float64 { return float64(s.scrapes.Load()) })
	g.reg.Gauge("ctt_self_scrape_points_total", func() float64 { return float64(s.points.Load()) })
	g.reg.Gauge("ctt_self_scrape_skipped_total", func() float64 { return float64(s.skipped.Load()) })
	return s
}

// Start launches the scrape loop, supervised so a panic inside a
// scrape (a misbehaving gauge callback) restarts the loop instead of
// silently ending self-telemetry for the process lifetime. Close
// stops it.
func (s *SelfScraper) Start() {
	go func() {
		defer close(s.done)
		obs.Supervised("selfscrape", s.g.cfg.Logger, s.stop, func() {
			ticker := time.NewTicker(s.cfg.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-ticker.C:
					s.ScrapeOnce()
				}
			}
		})
	}()
}

// Close stops the loop and waits for an in-flight scrape to finish.
// Safe to call more than once; a scraper that was never Started must
// not be Closed.
func (s *SelfScraper) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// ScrapeOnce samples the registry now and appends the batch, stamping
// every point with the gateway's clock (the simulated pilot's time
// when one is wired, so self series line up with the pilot's data on
// queries and dashboards). Returns the number of points stored.
func (s *SelfScraper) ScrapeOnce() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.g.cfg.Now().UnixMilli()
	s.pts = s.pts[:0]
	s.g.reg.Each(func(name string, v float64) {
		// NaN/Inf gauges (idle ratios) would be rejected by queries
		// later; a dead ref means the series failed validation once.
		if v != v {
			s.skipped.Add(1)
			return
		}
		ref := s.refFor(name)
		if ref == nil {
			s.skipped.Add(1)
			return
		}
		s.pts = append(s.pts, tsdb.RefPoint{Ref: ref, Point: tsdb.Point{Timestamp: ts, Value: v}})
	})
	res := s.g.db.AppendRefs(s.pts)
	s.scrapes.Add(1)
	s.points.Add(uint64(res.Stored))
	return res.Stored
}

// refFor resolves (and caches) the interned series for one registry
// entry name. "ctt_ingest_rejected_total{reason="queue_full"}" maps to
// metric "<prefix>.ingest_rejected_total" with tags
// {reason: queue_full, src: self}; the src tag satisfies the store's
// at-least-one-tag rule and marks the series as self-telemetry.
func (s *SelfScraper) refFor(name string) *tsdb.Ref {
	if ref, ok := s.refs[name]; ok {
		return ref
	}
	base, rawLabels, hasLabels := strings.Cut(name, "{")
	tags := map[string]string{"src": "self"}
	ok := true
	if hasLabels {
		ok = parseInlineLabels(strings.TrimSuffix(rawLabels, "}"), tags)
	}
	var ref *tsdb.Ref
	if ok {
		metric := s.cfg.Prefix + "." + strings.TrimPrefix(base, "ctt_")
		// Intern validates the charset; anything unrepresentable (build
		// info versions and the like) caches as a permanent skip.
		ref, _ = s.g.db.Intern(metric, tags)
	}
	s.refs[name] = ref
	return ref
}

// parseInlineLabels splits `k="v",k2="v2"` into tags. Returns false on
// anything malformed rather than guessing.
func parseInlineLabels(raw string, tags map[string]string) bool {
	for _, pair := range strings.Split(raw, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return false
		}
		tags[strings.TrimSpace(k)] = v[1 : len(v)-1]
	}
	return true
}
