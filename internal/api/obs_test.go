package api

// Observability tests: /metrics speaks valid Prometheus text
// exposition (checked with a small grammar parser, not substring
// spot-checks), histograms stay monotonic while ingest runs
// concurrently with scrapes, /healthz flips to 503 under queue
// saturation, slow queries log their span tree, and /api/inflight
// lists live requests.

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/tsdb"
)

// metricLine matches one exposition line: name, optional {labels},
// and a value parseable as a Go float (Prometheus accepts +Inf/NaN,
// which strconv also parses).
var metricLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$`)

// typeLine matches a histogram family header.
var typeLine = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) histogram$`)

// omExemplar matches (and splits off) the OpenMetrics exemplar suffix
// a bucket line may carry: ` # {trace_id="<16 hex>"} <value> <unix.ms>`.
var omExemplar = regexp.MustCompile(`^(.*\S) # \{trace_id="([0-9a-f]{16})"\} ([0-9.eE+-]+) (\d+\.\d{3})$`)

// parsedMetrics is the result of parseExposition: scalar values keyed
// by full name (including labels), and per-histogram-series cumulative
// bucket counts keyed by family+labels-without-le.
type parsedMetrics struct {
	values    map[string]float64
	families  map[string]bool     // families declared histogram by # TYPE
	buckets   map[string][]uint64 // cumulative counts in le order per series
	counts    map[string]uint64   // _count per series
	exemplars map[string]string   // bucket line (incl. le) -> trace_id
	sawEOF    bool                // body ended with the OpenMetrics "# EOF"
}

// parseExposition validates every line of a /metrics body against the
// text-format grammar and collects values. Any malformed line fails
// the test immediately.
func parseExposition(t *testing.T, body string) *parsedMetrics {
	t.Helper()
	p := &parsedMetrics{
		values:    map[string]float64{},
		families:  map[string]bool{},
		buckets:   map[string][]uint64{},
		counts:    map[string]uint64{},
		exemplars: map[string]string{},
	}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if p.sawEOF {
			t.Fatalf("line %d: content after # EOF: %q", ln+1, line)
		}
		if m := typeLine.FindStringSubmatch(line); m != nil {
			if p.families[m[1]] {
				t.Fatalf("line %d: duplicate # TYPE for family %s", ln+1, m[1])
			}
			p.families[m[1]] = true
			continue
		}
		if line == "# EOF" {
			p.sawEOF = true
			continue
		}
		exTrace := ""
		if m := omExemplar.FindStringSubmatch(line); m != nil {
			line, exTrace = m[1], m[2]
			if _, err := strconv.ParseFloat(m[3], 64); err != nil {
				t.Fatalf("line %d: bad exemplar value %q: %v", ln+1, m[3], err)
			}
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		m := metricLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: not a metric line: %q", ln+1, line)
		}
		name, labels, valS := m[1], m[2], m[3]
		if exTrace != "" {
			if !strings.HasSuffix(name, "_bucket") {
				t.Fatalf("line %d: exemplar on non-bucket line %q", ln+1, line)
			}
			p.exemplars[name+labels] = exTrace
		}
		v, err := strconv.ParseFloat(valS, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valS, err)
		}
		p.values[name+labels] = v
		switch {
		case strings.HasSuffix(name, "_bucket"):
			fam := strings.TrimSuffix(name, "_bucket")
			if !p.families[fam] {
				t.Fatalf("line %d: bucket for %s before its # TYPE header", ln+1, fam)
			}
			key := fam + stripLE(labels)
			p.buckets[key] = append(p.buckets[key], uint64(v))
		case strings.HasSuffix(name, "_count"):
			fam := strings.TrimSuffix(name, "_count")
			if p.families[fam] {
				p.counts[fam+labels] = uint64(v)
			}
		}
	}
	return p
}

// stripLE removes the le="..." pair from a label set so bucket lines
// of one histogram series share a key.
var leRE = regexp.MustCompile(`,?le="[^"]*"`)

func stripLE(labels string) string {
	s := leRE.ReplaceAllString(labels, "")
	s = strings.TrimPrefix(s, "{")
	s = strings.TrimSuffix(s, "}")
	s = strings.Trim(s, ",")
	if s == "" {
		return ""
	}
	return "{" + s + "}"
}

// checkHistograms asserts bucket monotonicity and +Inf == _count for
// every histogram series seen.
func (p *parsedMetrics) checkHistograms(t *testing.T) {
	t.Helper()
	for key, counts := range p.buckets {
		for i := 1; i < len(counts); i++ {
			if counts[i] < counts[i-1] {
				t.Errorf("%s: bucket counts not monotonic: %v", key, counts)
				break
			}
		}
		if n, ok := p.counts[key]; ok && counts[len(counts)-1] != n {
			t.Errorf("%s: +Inf bucket %d != _count %d", key, counts[len(counts)-1], n)
		}
	}
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestMetricsExposition(t *testing.T) {
	g, srv := newTestGateway(t, Config{})
	resp := putJSON(t, srv.URL+"/api/put", putBody(10, "obs.test", "s1", 1488326400000))
	resp.Body.Close()
	waitIngested(t, g, 10)
	// One query so the query histogram and the store stages have data.
	qr, err := http.Get(srv.URL + "/api/query?start=1488326000000&end=1488327000000&m=avg:obs.test")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, qr.Body)
	qr.Body.Close()

	p := parseExposition(t, scrape(t, srv.URL))
	p.checkHistograms(t)

	for _, fam := range []string{
		"ctt_http_request_seconds",
		"ctt_ingest_batch_seconds",
		"ctt_ingest_queue_wait_seconds",
		"ctt_tsdb_insert_seconds",
	} {
		if !p.families[fam] {
			t.Errorf("missing histogram family %s", fam)
		}
	}
	if n := p.counts[`ctt_http_request_seconds{endpoint="query"}`]; n != 1 {
		t.Errorf("query histogram count = %d, want 1", n)
	}
	if n := p.counts[`ctt_http_request_seconds{endpoint="put"}`]; n != 1 {
		t.Errorf("put histogram count = %d, want 1", n)
	}
	if p.counts["ctt_ingest_batch_seconds"] == 0 {
		t.Error("ingest batch histogram recorded nothing")
	}
	if v := p.values["ctt_ingest_points_total"]; v != 10 {
		t.Errorf("ctt_ingest_points_total = %v, want 10", v)
	}
}

// TestMetricsConcurrentScrape scrapes while ingest is running; under
// -race this pins the snapshot-then-format exposition path, and every
// scrape must still parse and stay bucket-monotonic mid-write.
func TestMetricsConcurrentScrape(t *testing.T) {
	g, srv := newTestGateway(t, Config{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ts := int64(1488326400000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp := putJSON(t, srv.URL+"/api/put", putBody(8, "obs.conc", "s1", ts))
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ts += 8000
		}
	}()
	for i := 0; i < 50; i++ {
		p := parseExposition(t, scrape(t, srv.URL))
		p.checkHistograms(t)
	}
	close(stop)
	wg.Wait()
	waitIngested(t, g, 8)
}

func TestHealthzOK(t *testing.T) {
	_, srv := newTestGateway(t, Config{})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m["status"] != "ok" {
		t.Errorf("status = %v, want ok", m["status"])
	}
	for _, k := range []string{"ingest_queue_depth", "ingest_queue_capacity", "wal_bytes"} {
		if _, ok := m[k]; !ok {
			t.Errorf("healthz body missing %q", k)
		}
	}
}

// TestHealthzSaturated fills the queue of a worker-less gateway past
// the saturation threshold and expects 503 with a reason.
func TestHealthzSaturated(t *testing.T) {
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	g := newGateway(db, nil, Config{QueueSize: 100})
	g.AddHealthSource(func(m map[string]any) { m["extra_detail"] = 42 })
	ref, err := db.Intern("obs.sat", map[string]string{"s": "1"})
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]tsdb.RefPoint, 96)
	for i := range pts {
		pts[i] = tsdb.RefPoint{Ref: ref, Point: tsdb.Point{Timestamp: int64(i + 1), Value: 1}}
	}
	if err := g.EnqueueRefs(pts); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	g.handleHealthz(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz = %d, want 503", rec.Code)
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["status"] != "saturated" || m["reason"] == nil {
		t.Errorf("body = %v, want saturated status with reason", m)
	}
	if m["extra_detail"] != float64(42) {
		t.Errorf("health source detail missing: %v", m)
	}
	// startWorkers was never called; close drains nothing.
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

// syncBuffer is a goroutine-safe log sink: the slow-query line is
// written from the handler goroutine while the test polls for it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	g, srv := newTestGateway(t, Config{
		SlowQuery: time.Nanosecond, // everything is slow
		Logger:    slog.New(slog.NewTextHandler(&buf, nil)),
	})
	resp := putJSON(t, srv.URL+"/api/put", putBody(20, "obs.slow", "s1", 1488326400000))
	resp.Body.Close()
	waitIngested(t, g, 20)
	qr, err := http.Get(srv.URL + "/api/query?start=1488326000000&end=1488327000000&m=avg:10s-avg:obs.slow")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, qr.Body)
	qr.Body.Close()

	// The log line lands in the handler's deferred epilogue, which can
	// run a hair after the response body closes.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(buf.String(), "slow query") {
		if time.Now().After(deadline) {
			t.Fatalf("no slow-query line logged; log: %q", buf.String())
		}
		time.Sleep(time.Millisecond)
	}
	line := buf.String()
	// Golden field set: dashboards and log pipelines key on these exact
	// attribute names, so renames must be deliberate.
	for _, field := range []string{
		"uri=", "trace_id=", "elapsed=", "cache=",
		"series=", "points=", "planner=", "trace=",
	} {
		if !strings.Contains(line, field) {
			t.Errorf("slow-query line missing field %q: %s", field, line)
		}
	}
	if !regexp.MustCompile(`trace_id=[0-9a-f]{16}\b`).MatchString(line) {
		t.Errorf("slow-query trace_id not 16 hex digits: %s", line)
	}
	// The span tree must name the pipeline stages end to end.
	for _, stage := range []string{
		"parse", "scan", "match_series", "member_prime",
		"group_reduce", "serialize",
	} {
		if !strings.Contains(line, stage) {
			t.Errorf("slow-query line missing stage %q: %s", stage, line)
		}
	}
	if !strings.Contains(line, "series=1") {
		t.Errorf("slow-query line missing result sizes: %s", line)
	}
}

func TestInflightEndpoint(t *testing.T) {
	g, srv := newTestGateway(t, Config{})
	// Park the store executor so the query stays in flight while the
	// test looks at it.
	release := make(chan struct{})
	entered := make(chan struct{})
	g.exec = func(q tsdb.Query, yield func(tsdb.ResultSeries) error) error {
		close(entered)
		<-release
		return nil
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(srv.URL + "/api/query?start=1488326000000&m=avg:obs.inflight")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-entered
	resp, err := http.Get(srv.URL + "/api/inflight")
	if err != nil {
		t.Fatal(err)
	}
	var entries []struct {
		TraceID   string  `json:"trace_id"`
		Name      string  `json:"name"`
		Detail    string  `json:"detail"`
		ElapsedMS float64 `json:"elapsed_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, e := range entries {
		if e.Name == "query" && strings.Contains(e.Detail, "obs.inflight") {
			found = true
			// The row's trace ID is what /api/traces/{id} resolves once
			// the request lands in the flight recorder.
			if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(e.TraceID) {
				t.Errorf("inflight trace_id = %q, want 16 hex digits", e.TraceID)
			}
		}
	}
	if !found {
		t.Errorf("inflight = %+v, want a live query entry", entries)
	}
	close(release)
	<-done

	// Drained: the listing empties again.
	resp, err = http.Get(srv.URL + "/api/inflight")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if s := strings.TrimSpace(string(body)); s != "[]" {
		t.Errorf("idle inflight = %s, want []", s)
	}
}
