package api

import (
	"net/http"
	"strings"
	"testing"
)

// TestFlexStrictQuoting: the flexible number decoders accept a bare
// number or one fully quoted one — nothing else. The old
// strings.Trim-based unquoting accepted malformed tokens like
// `""12""` (trimming both quote pairs) and `12"` (trimming the stray
// quote); both must now be 400s.
func TestFlexStrictQuoting(t *testing.T) {
	cases := []struct {
		raw string
		ok  bool
	}{
		{`1488326400`, true},
		{`"1488326400"`, true},
		{`""12""`, false},
		{`12"`, false},
		{`"12`, false},
		{`"`, false},
		{`""`, false},
		{`"12"12"`, false},
		{`"  12"`, false}, // inner whitespace is not a number
	}
	for _, c := range cases {
		var i flexInt64
		if err := i.UnmarshalJSON([]byte(c.raw)); (err == nil) != c.ok {
			t.Errorf("flexInt64(%s): ok=%v, want %v", c.raw, err == nil, c.ok)
		}
		var f flexFloat64
		if err := f.UnmarshalJSON([]byte(c.raw)); (err == nil) != c.ok {
			t.Errorf("flexFloat64(%s): ok=%v, want %v", c.raw, err == nil, c.ok)
		}
	}
	// Float-only shapes.
	var f flexFloat64
	if err := f.UnmarshalJSON([]byte(`"412.5"`)); err != nil || float64(f) != 412.5 {
		t.Errorf("flexFloat64 quoted float: %v %v", f, err)
	}
	if err := f.UnmarshalJSON([]byte(`412.5"`)); err == nil {
		t.Error(`flexFloat64 accepted 412.5"`)
	}
}

// TestPutRejectsMalformedQuotedNumbers: the strictness reaches the
// HTTP edge — a batch whose timestamp wears mismatched quotes is a
// 400, not a stored point.
func TestPutRejectsMalformedQuotedNumbers(t *testing.T) {
	g, srv := newTestGateway(t, Config{})

	body := `[{"metric":"air.co2","timestamp":"1488326400","value":"415","tags":{"sensor":"ok"}}]`
	resp, err := http.Post(srv.URL+"/api/put", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("fully-quoted numbers must still work: status %d", resp.StatusCode)
	}
	waitIngested(t, g, 1)

	bad := `[{"metric":"air.co2","timestamp":"1488326400\"","value":415,"tags":{"sensor":"bad"}}]`
	resp, err = http.Post(srv.URL+"/api/put", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed quoted timestamp accepted: status %d", resp.StatusCode)
	}
}
