package api

// Tests for the streaming query pipeline: chunked JSON-array parity
// with a materialized reference, NDJSON framing, gzip composition,
// first-byte-before-scan-completion (via a flushing recorder),
// mid-stream store-error truncation, topk/bottomk selection and its
// cache keying, API-key auth, and /api/stream backfill catch-up.

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/tsdb"
)

// newStreamTestGateway is newTestGateway plus access to the store.
func newStreamTestGateway(t *testing.T, cfg Config) (*tsdb.DB, *Gateway, *httptest.Server) {
	t.Helper()
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	g := New(db, nil, cfg)
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		srv.Close()
		g.Close()
		db.Close()
	})
	return db, g, srv
}

// seedWide writes sensors×points 1s-cadence points straight into the
// store (validated shape, no HTTP round-trips).
func seedWide(t *testing.T, db *tsdb.DB, sensors, points int) {
	t.Helper()
	var batch []tsdb.DataPoint
	for s := 0; s < sensors; s++ {
		tags := map[string]string{"sensor": fmt.Sprintf("w%03d", s), "city": "t"}
		for i := 0; i < points; i++ {
			batch = append(batch, tsdb.DataPoint{
				Metric: "air.co2", Tags: tags,
				Point: tsdb.Point{Timestamp: 1488326400000 + int64(i)*1000, Value: float64(400 + s + i%7)},
			})
		}
	}
	if res := db.AppendBatch(batch); len(res.Errors) > 0 {
		t.Fatalf("seed errors: %v", res.Errors[0])
	}
}

const wideQuery = "/api/query?start=1488326400&end=1488330000&m=avg:air.co2{sensor=*}"

// wireResult is the decoded /api/query response shape: dps as the
// timestamp-keyed map the OpenTSDB wire format uses.
type wireResult struct {
	Metric string             `json:"metric"`
	Tags   map[string]string  `json:"tags"`
	DPS    map[string]float64 `json:"dps"`
}

// toWire converts a store result to the decoded wire shape.
func toWire(rs tsdb.ResultSeries) wireResult {
	w := wireResult{Metric: rs.Metric, Tags: rs.Tags, DPS: make(map[string]float64, len(rs.Points))}
	if w.Tags == nil {
		w.Tags = map[string]string{}
	}
	for _, p := range rs.Points {
		w.DPS[strconv.FormatInt(p.Timestamp, 10)] = p.Value
	}
	return w
}

// referenceResults materializes the query the buffered path would
// have produced, through the same store.
func referenceResults(t *testing.T, db *tsdb.DB) []wireResult {
	t.Helper()
	res, err := db.Execute(tsdb.Query{
		Metric: "air.co2", Tags: map[string]string{"sensor": "*"},
		Start: 1488326400000, End: 1488330000000, Aggregator: tsdb.AggAvg,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]wireResult, 0, len(res))
	for _, rs := range res {
		out = append(out, toWire(rs))
	}
	return out
}

// sortResults orders series for comparison.
func sortResults(rs []wireResult) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Tags["sensor"] < rs[j].Tags["sensor"] })
}

// TestQueryStreamedParity: a >64KB response arrives chunked and
// decodes to exactly what the buffered path produced.
func TestQueryStreamedParity(t *testing.T) {
	db, _, srv := newStreamTestGateway(t, Config{CacheSize: -1})
	seedWide(t, db, 40, 120) // ~40 series × 120 dps ≈ well over 64KB

	resp, err := http.Get(srv.URL + wideQuery)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if len(body) <= 64<<10 {
		t.Fatalf("test body only %d bytes; raise the seed so streaming is exercised past 64KB", len(body))
	}
	// No Content-Length on a streamed response: net/http chunks it.
	if resp.ContentLength != -1 {
		t.Errorf("ContentLength = %d, want -1 (chunked stream)", resp.ContentLength)
	}
	var got []wireResult
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("streamed body is not a JSON array: %v", err)
	}
	want := referenceResults(t, db)
	sortResults(got)
	sortResults(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed result differs from buffered reference (%d vs %d series)", len(got), len(want))
	}
}

// TestQueryNDJSON: Accept: application/x-ndjson switches framing to
// one series object per line, same content, correct content type.
func TestQueryNDJSON(t *testing.T) {
	db, _, srv := newStreamTestGateway(t, Config{CacheSize: -1})
	seedWide(t, db, 5, 20)

	req, _ := http.NewRequest(http.MethodGet, srv.URL+wideQuery, nil)
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ctNDJSON {
		t.Fatalf("Content-Type = %q, want %q", ct, ctNDJSON)
	}
	body, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d NDJSON lines, want 5:\n%s", len(lines), body)
	}
	var got []wireResult
	for i, ln := range lines {
		var qr wireResult
		if err := json.Unmarshal([]byte(ln), &qr); err != nil {
			t.Fatalf("line %d is not a JSON object: %v (%q)", i, err, ln)
		}
		got = append(got, qr)
	}
	want := referenceResults(t, db)
	sortResults(got)
	sortResults(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("NDJSON content differs from the JSON-array result")
	}

	// A wildcard Accept must NOT opt into NDJSON.
	req2, _ := http.NewRequest(http.MethodGet, srv.URL+wideQuery, nil)
	req2.Header.Set("Accept", "*/*")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != ctJSON {
		t.Fatalf("wildcard Accept got Content-Type %q, want %q", ct, ctJSON)
	}
}

// TestQueryNDJSONGzip: gzip composes over the NDJSON stream.
func TestQueryNDJSONGzip(t *testing.T) {
	db, _, srv := newStreamTestGateway(t, Config{CacheSize: -1})
	seedWide(t, db, 5, 20)

	req, _ := http.NewRequest(http.MethodGet, srv.URL+wideQuery, nil)
	req.Header.Set("Accept", "application/x-ndjson")
	req.Header.Set("Accept-Encoding", "gzip") // explicit: transport stays transparent-off
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", enc)
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(plain), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("gunzipped NDJSON has %d lines, want 5", len(lines))
	}
	for _, ln := range lines {
		var qr wireResult
		if err := json.Unmarshal([]byte(ln), &qr); err != nil {
			t.Fatalf("bad NDJSON line after gunzip: %v", err)
		}
	}
}

// flushRecorder records the body length at every Flush — how the
// first-byte test observes bytes reaching the wire mid-scan.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushLens []int
}

func (f *flushRecorder) Flush() { f.flushLens = append(f.flushLens, f.Body.Len()) }

// TestQueryStreamsBeforeScanCompletes: with a store scan that keeps
// yielding after the first series, the response writer must already
// have flushed the first series' bytes — first byte beats scan end.
func TestQueryStreamsBeforeScanCompletes(t *testing.T) {
	_, g, _ := newStreamTestGateway(t, Config{CacheSize: -1})

	mkSeries := func(i int) tsdb.ResultSeries {
		return tsdb.ResultSeries{
			Metric: "air.co2",
			Tags:   map[string]string{"sensor": fmt.Sprintf("f%d", i)},
			Points: []tsdb.Point{{Timestamp: int64(i) * 1000, Value: float64(i)}},
		}
	}
	// flushedAtYield[i] = bytes already flushed to the recorder when
	// series i was produced by the (still running) scan.
	var flushedAtYield []int
	rec := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	g.exec = func(q tsdb.Query, yield func(tsdb.ResultSeries) error) error {
		for i := 0; i < 3; i++ {
			flushed := 0
			if n := len(rec.flushLens); n > 0 {
				flushed = rec.flushLens[n-1]
			}
			flushedAtYield = append(flushedAtYield, flushed)
			if err := yield(mkSeries(i)); err != nil {
				return err
			}
		}
		return nil
	}

	req := httptest.NewRequest(http.MethodGet, wideQuery, nil)
	g.handleQuery(rec, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	total := rec.Body.Len()
	if len(rec.flushLens) < 3 {
		t.Fatalf("only %d flushes for 3 series", len(rec.flushLens))
	}
	// When the scan produced series 2 and 3, earlier series' bytes
	// must already have been flushed — and be strictly less than the
	// final body, i.e. the response was genuinely incremental.
	if flushedAtYield[1] == 0 || flushedAtYield[1] >= total {
		t.Fatalf("second yield saw %d flushed bytes of %d total; stream not incremental", flushedAtYield[1], total)
	}
	if flushedAtYield[2] <= flushedAtYield[1] {
		t.Fatalf("flushed bytes did not grow per series: %v", flushedAtYield)
	}
	var out []wireResult
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || len(out) != 3 {
		t.Fatalf("final body invalid: %v (%d series)", err, len(out))
	}
}

// TestQueryMidStreamError: a store failure after series are on the
// wire must end the stream with an explicit truncation marker (and
// never cache the partial body); a failure before the first byte is
// still a clean 500.
func TestQueryMidStreamError(t *testing.T) {
	_, g, srv := newStreamTestGateway(t, Config{CacheAlign: time.Hour})

	boom := errors.New("block decode failed")
	g.exec = func(q tsdb.Query, yield func(tsdb.ResultSeries) error) error {
		if err := yield(tsdb.ResultSeries{
			Metric: "air.co2", Tags: map[string]string{"sensor": "ok"},
			Points: []tsdb.Point{{Timestamp: 1000, Value: 1}},
		}); err != nil {
			return err
		}
		return boom
	}

	get := func(accept string) (*http.Response, string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, srv.URL+wideQuery, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, string(body)
	}

	// JSON array: final element is the error marker.
	resp, body := get("")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (headers were already committed)", resp.StatusCode)
	}
	var raw []json.RawMessage
	if err := json.Unmarshal([]byte(body), &raw); err != nil {
		t.Fatalf("truncated body is not valid JSON: %v\n%s", err, body)
	}
	if len(raw) != 2 {
		t.Fatalf("%d elements, want series + marker:\n%s", len(raw), body)
	}
	var marker errorBody
	if err := json.Unmarshal(raw[1], &marker); err != nil || !strings.Contains(marker.Error.Message, "truncated") {
		t.Fatalf("last element is not a truncation marker: %s", raw[1])
	}

	// The partial result must not have been cached.
	resp2, _ := get("")
	if c := resp2.Header.Get("X-Cache"); c != "miss" {
		t.Fatalf("partial body was served from cache (X-Cache=%s)", c)
	}

	// NDJSON: the marker is the final line.
	_, nd := get("application/x-ndjson")
	lines := strings.Split(strings.TrimRight(nd, "\n"), "\n")
	if len(lines) != 2 || !strings.Contains(lines[1], "truncated") {
		t.Fatalf("NDJSON truncation marker missing:\n%s", nd)
	}

	// Failure before any series: clean 500, structured error body.
	g.exec = func(q tsdb.Query, yield func(tsdb.ResultSeries) error) error { return boom }
	resp3, body3 := get("")
	if resp3.StatusCode != http.StatusInternalServerError {
		t.Fatalf("pre-stream failure status = %d, want 500", resp3.StatusCode)
	}
	if enc := resp3.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("500 carries Content-Encoding %q", enc)
	}
	var eb errorBody
	if err := json.Unmarshal([]byte(body3), &eb); err != nil || eb.Error.Code != 500 {
		t.Fatalf("500 body not structured: %s", body3)
	}
}

// TestQueryTopK: the m=topk(...) syntax returns exactly K series with
// brute-force parity, bottomk the inverse, and the cache keys on K.
func TestQueryTopK(t *testing.T) {
	db, _, srv := newStreamTestGateway(t, Config{CacheAlign: time.Hour})
	seedWide(t, db, 8, 30) // sensor w007 has the highest values, w000 the lowest

	get := func(m string) []wireResult {
		t.Helper()
		resp, err := http.Get(srv.URL + "/api/query?start=1488326400&end=1488330000&m=" + m)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("m=%s status %d: %s", m, resp.StatusCode, body)
		}
		var out []wireResult
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	top2 := get("topk(2,avg:air.co2{sensor=*})")
	if len(top2) != 2 || top2[0].Tags["sensor"] != "w007" || top2[1].Tags["sensor"] != "w006" {
		t.Fatalf("topk(2) = %v", tagsOf(top2))
	}
	bot2 := get("bottomk(2,avg:air.co2{sensor=*})")
	if len(bot2) != 2 || bot2[0].Tags["sensor"] != "w000" || bot2[1].Tags["sensor"] != "w001" {
		t.Fatalf("bottomk(2) = %v", tagsOf(bot2))
	}

	// Brute-force parity: topk(K) must equal the K best-ranked series
	// of the unlimited query.
	full := get("avg:air.co2{sensor=*}")
	if len(full) != 8 {
		t.Fatalf("unlimited returned %d series", len(full))
	}
	scores := map[string]float64{}
	for _, qr := range full {
		var pts []tsdb.Point
		for _, v := range qr.DPS {
			pts = append(pts, tsdb.Point{Value: v})
		}
		scores[qr.Tags["sensor"]] = tsdb.SeriesScore(pts)
	}
	ref := append([]wireResult(nil), full...)
	sort.Slice(ref, func(i, j int) bool {
		return scores[ref[i].Tags["sensor"]] > scores[ref[j].Tags["sensor"]]
	})
	top3 := get("topk(3,avg:air.co2{sensor=*})")
	for i := 0; i < 3; i++ {
		if top3[i].Tags["sensor"] != ref[i].Tags["sensor"] {
			t.Fatalf("topk(3) rank %d = %s, want %s", i, top3[i].Tags["sensor"], ref[i].Tags["sensor"])
		}
		if !reflect.DeepEqual(top3[i].DPS, ref[i].DPS) {
			t.Fatalf("topk(3) rank %d points differ from reference", i)
		}
	}

	// Cache keys on K: topk(2) (already cached) stays 2 series on a
	// hit; topk(3) is its own entry, not a truncation or extension of
	// the other.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/api/query?start=1488326400&end=1488330000&m=topk(2,avg:air.co2{sensor=*})", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if c := resp.Header.Get("X-Cache"); c != "hit" {
		t.Fatalf("repeat topk(2) X-Cache = %s, want hit", c)
	}
	var hit []wireResult
	if err := json.NewDecoder(resp.Body).Decode(&hit); err != nil || len(hit) != 2 {
		t.Fatalf("cached topk(2) returned %d series (%v)", len(hit), err)
	}
}

func tagsOf(rs []wireResult) []string {
	var out []string
	for _, r := range rs {
		out = append(out, r.Tags["sensor"])
	}
	return out
}

// TestQueryTopKPost: the JSON body form of topk/bottomk.
func TestQueryTopKPost(t *testing.T) {
	db, _, srv := newStreamTestGateway(t, Config{CacheSize: -1})
	seedWide(t, db, 6, 10)

	body := `{"start":1488326400,"end":1488330000,"queries":[{"aggregator":"avg","metric":"air.co2","tags":{"sensor":"*"},"topk":2}]}`
	resp, err := http.Post(srv.URL+"/api/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []wireResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Tags["sensor"] != "w005" {
		t.Fatalf("POST topk = %v", tagsOf(out))
	}

	// topk and bottomk together are rejected up front.
	bad := `{"start":1,"queries":[{"aggregator":"avg","metric":"air.co2","topk":2,"bottomk":2}]}`
	resp2, err := http.Post(srv.URL+"/api/query", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("topk+bottomk status = %d, want 400", resp2.StatusCode)
	}
}

// TestAPIKeyAuth: with a key configured, data endpoints demand
// X-API-Key, failures are counted on /metrics, and ops endpoints
// stay open.
func TestAPIKeyAuth(t *testing.T) {
	g, srv := newTestGateway(t, Config{APIKey: "sekrit"})

	do := func(method, path, key string, body string) *http.Response {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, _ := http.NewRequest(method, srv.URL+path, rd)
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	pt := `{"metric":"air.co2","timestamp":1488326400,"value":1,"tags":{"sensor":"n1"}}`
	if r := do(http.MethodPost, "/api/put", "", pt); r.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated put = %d, want 401", r.StatusCode)
	}
	if r := do(http.MethodGet, "/api/query?start=1&m=avg:air.co2", "wrong", ""); r.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong-key query = %d, want 401", r.StatusCode)
	}
	if r := do(http.MethodPost, "/api/put", "sekrit", pt); r.StatusCode != http.StatusNoContent {
		t.Fatalf("authenticated put = %d, want 204", r.StatusCode)
	}
	waitIngested(t, g, 1)
	if r := do(http.MethodGet, "/api/query?start=1&m=avg:air.co2", "sekrit", ""); r.StatusCode != http.StatusOK {
		t.Fatalf("authenticated query = %d, want 200", r.StatusCode)
	}
	// /api/inflight exposes live request URIs (query params and all),
	// so it is gated like the data endpoints, not open like /healthz.
	if r := do(http.MethodGet, "/api/inflight", "", ""); r.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated inflight = %d, want 401", r.StatusCode)
	}
	if r := do(http.MethodGet, "/api/inflight", "sekrit", ""); r.StatusCode != http.StatusOK {
		t.Fatalf("authenticated inflight = %d, want 200", r.StatusCode)
	}
	// /api/traces replays full request URIs too — same gate.
	if r := do(http.MethodGet, "/api/traces", "", ""); r.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated traces = %d, want 401", r.StatusCode)
	}
	if r := do(http.MethodGet, "/api/traces", "sekrit", ""); r.StatusCode != http.StatusOK {
		t.Fatalf("authenticated traces = %d, want 200", r.StatusCode)
	}
	if r := do(http.MethodGet, "/healthz", "", ""); r.StatusCode != http.StatusOK {
		t.Fatalf("/healthz gated = %d, want open", r.StatusCode)
	}

	mr := do(http.MethodGet, "/metrics", "", "")
	if mr.StatusCode != http.StatusOK {
		t.Fatalf("/metrics gated = %d, want open", mr.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mr.Body)
	if !strings.Contains(buf.String(), "ctt_auth_failures_total 4") {
		t.Fatalf("/metrics missing auth failure count:\n%s", buf.String())
	}
}

// TestStreamBackfill: backfill=<dur> replays the stored window as
// "event: backfill" frames before the ": live" switch, then keeps
// pushing live events on the same connection.
func TestStreamBackfill(t *testing.T) {
	now := time.Date(2017, time.March, 1, 12, 0, 0, 0, time.UTC)
	db, g, srv := newStreamTestGateway(t, Config{
		Heartbeat: time.Hour,
		Now:       func() time.Time { return now },
	})

	// Five historical points 10 minutes back, plus one outside the
	// backfill window.
	hist := now.Add(-10 * time.Minute).UnixMilli()
	var batch []tsdb.DataPoint
	for i := 0; i < 5; i++ {
		batch = append(batch, tsdb.DataPoint{
			Metric: "air.co2", Tags: map[string]string{"sensor": "bf"},
			Point: tsdb.Point{Timestamp: hist + int64(i)*1000, Value: float64(i)},
		})
	}
	batch = append(batch, tsdb.DataPoint{
		Metric: "air.co2", Tags: map[string]string{"sensor": "bf"},
		Point: tsdb.Point{Timestamp: now.Add(-3 * time.Hour).UnixMilli(), Value: 99},
	})
	if res := db.AppendBatch(batch); len(res.Errors) > 0 {
		t.Fatal(res.Errors[0])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		srv.URL+"/api/stream?metric=air.&backfill=1h", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)

	var backfilled []streamEvent
	sawLive := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, ": live"):
			sawLive = true
		case strings.HasPrefix(line, "data: "):
			var ev streamEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatal(err)
			}
			backfilled = append(backfilled, ev)
		}
		if sawLive {
			break
		}
	}
	if !sawLive {
		t.Fatalf("no ': live' switch seen: %v", sc.Err())
	}
	if len(backfilled) != 5 {
		t.Fatalf("backfill replayed %d events, want 5 (window must exclude the 3h-old point)", len(backfilled))
	}
	for i, ev := range backfilled {
		if ev.Timestamp != hist+int64(i)*1000 {
			t.Fatalf("backfill event %d at %d, want %d (ordered replay)", i, ev.Timestamp, hist+int64(i)*1000)
		}
	}

	// Live events still flow after the catch-up.
	if err := g.Enqueue([]tsdb.DataPoint{{
		Metric: "air.co2", Tags: map[string]string{"sensor": "bf"},
		Point: tsdb.Point{Timestamp: now.UnixMilli(), Value: 415},
	}}); err != nil {
		t.Fatal(err)
	}
	gotLive := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			var ev streamEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(sc.Text(), "data: ")), &ev); err != nil {
				t.Fatal(err)
			}
			if ev.Value == 415 {
				gotLive = true
				break
			}
		}
	}
	if !gotLive {
		t.Fatalf("live event not delivered after backfill: %v", sc.Err())
	}

	// A malformed backfill duration is a 400, not an open stream.
	resp2, err := http.Get(srv.URL + "/api/stream?backfill=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad backfill status = %d, want 400", resp2.StatusCode)
	}
}

// TestQueryStructuredErrors: malformed queries — including every
// topk/bottomk mis-spelling — are 400s with the structured error
// envelope, decided before any stream bytes.
func TestQueryStructuredErrors(t *testing.T) {
	_, srv := newTestGateway(t, Config{})
	for _, tc := range []string{
		"/api/query?start=1&m=nope:air.x",                          // unknown aggregator
		"/api/query?start=1&m=avg",                                 // no metric
		"/api/query?start=1&m=avg:1h-bogus:air.x",                  // bad downsample fn
		"/api/query?start=1&m=topk(0,avg:air.x)",                   // zero count
		"/api/query?start=1&m=topk(-2,avg:air.x)",                  // negative count
		"/api/query?start=1&m=topk(x,avg:air.x)",                   // non-numeric count
		"/api/query?start=1&m=topk(2)",                             // no inner spec
		"/api/query?start=1&m=topk(2,avg:air.x",                    // unterminated
		"/api/query?start=1&m=bottomk(2,topk(2,avg:air.x))",        // nested selection
		"/api/query?start=1&m=topk(2,nope:air.x)",                  // bad inner aggregator
		"/api/query?start=2000000000&end=1000000000&m=avg:air.x",   // inverted range
		"/api/query?start=1&m=" + strings.Repeat("topk(2,", 1)[:6], // mangled prefix "topk(2"
	} {
		resp, err := http.Get(srv.URL + tc)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", tc, resp.StatusCode, body)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Code != 400 || eb.Error.Message == "" {
			t.Errorf("%s: error body not structured: %s", tc, body)
		}
	}
}
