package tsdb

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/tsdb/fsio"
)

// DB is the time-series store. It shards series across a fixed set of
// locks by series-key hash, keeps a mutable head buffer per series, and
// seals full heads into Gorilla-compressed blocks. Writers resolve
// series through the interning registry (see intern.go) so the hot
// path never sorts tags or builds key strings for a known series.
type DB struct {
	shards [numShards]shard
	reg    registry
	wal    *wal // nil when persistence is disabled
	idx    suggestIndex

	// walGate serializes WAL compaction (write lock) against in-flight
	// append+insert sequences (read lock), so a compaction snapshot can
	// never miss a point that was logged but not yet inserted. Taken
	// only when a WAL is attached.
	walGate sync.RWMutex

	// observers is a copy-on-write list so the write hot path can fan
	// points out (live stream, rollup engine, cache invalidation)
	// without taking a lock. obsMu serialises registration only.
	obsMu     sync.Mutex
	observers atomic.Pointer[[]*observerEntry]
	legacyObs func() // remove func for the SetObserver slot

	// planner, when installed, serves downsampled per-series reads
	// from pre-aggregated rollup tiers instead of raw block scans.
	planner atomic.Pointer[RollupPlanner]

	// scanPar bounds the parallel group scan; ≤0 means GOMAXPROCS.
	scanPar atomic.Int32

	// instr, when installed, receives per-stage ingest timings (see
	// instrument.go). Nil costs one atomic load on the batch path.
	instr atomic.Pointer[Instrumentation]

	// opts are the resolved open options; disk is the durable block
	// layer (nil when running WAL-only or fully in memory).
	opts Options
	disk *diskStore

	// replPos is the last committed replication position (see repl.go);
	// nil on a node that never applied a replicated record.
	replPos atomic.Pointer[ReplPos]

	// markersPending is set when a flush has appended a WAL marker but
	// the follow-up WAL truncation has not succeeded yet; the
	// compactor must not invalidate the marker's file references until
	// it clears.
	markersPending atomic.Bool

	// degraded is the sticky read-only state (see degrade.go); nil
	// while healthy. The *Fails counters track consecutive failures
	// toward the degrade thresholds, the *Errs counters are cumulative
	// totals for /metrics.
	degraded       atomic.Pointer[degradedState]
	walAppendFails atomic.Uint32
	flushFails     atomic.Uint32
	compactFails   atomic.Uint32
	walAppendErrs  atomic.Uint64
	walFsyncErrs   atomic.Uint64

	// loopStop/loopWG manage the background flush+compact goroutine.
	loopStop chan struct{}
	loopWG   sync.WaitGroup
}

// Options configures OpenOptions. The zero value of every field picks
// a sensible default; a zero Dir disables persistence entirely.
type Options struct {
	// Dir is the data directory: the WAL lives at Dir/tsdb.wal and
	// (with DurableBlocks) block files under Dir/blocks. Empty
	// disables persistence.
	Dir string

	// DurableBlocks enables the on-disk block layer: a background
	// flusher seals cold data into block files and truncates the WAL.
	DurableBlocks bool

	// FlushAge is how old a point must be before a flush pass moves it
	// to disk (default 30m). Young data stays in memory so the flusher
	// never races active head churn.
	FlushAge time.Duration

	// FlushInterval is the background flush cadence (default 1m);
	// negative disables the background loop (FlushBlocks/CompactBlocks
	// remain callable).
	FlushInterval time.Duration

	// CompactInterval is the background compaction cadence (default
	// 10m).
	CompactInterval time.Duration

	// CompactMaxBytes bounds a compaction run's merged output size
	// (default 8 MiB).
	CompactMaxBytes int64

	// Partition is the time width of one block file partition (default
	// 24h); files never span partitions.
	Partition time.Duration

	// Now supplies the clock flush cutoffs are computed against
	// (default time.Now). Deployments replaying historic data inject
	// their simulated clock here.
	Now func() time.Time

	// FS is the filesystem the WAL and block layer run on (default
	// fsio.OS, the real one). Tests substitute a fault-injecting
	// implementation here.
	FS fsio.FS
}

// withDefaults resolves zero fields.
func (o Options) withDefaults() Options {
	if o.FlushAge <= 0 {
		o.FlushAge = 30 * time.Minute
	}
	if o.FlushInterval == 0 {
		o.FlushInterval = time.Minute
	}
	if o.CompactInterval == 0 {
		o.CompactInterval = 10 * time.Minute
	}
	if o.CompactMaxBytes <= 0 {
		o.CompactMaxBytes = 8 << 20
	}
	if o.Partition <= 0 {
		o.Partition = 24 * time.Hour
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.FS == nil {
		o.FS = fsio.OS
	}
	return o
}

const (
	numShards = 16
	// headSealSize: points per head buffer before sealing to a block.
	// 256 points at 5-minute cadence ≈ 21 hours per block.
	headSealSize = 256
)

type shard struct {
	mu     sync.RWMutex
	series map[string]*memSeries
}

type memSeries struct {
	metric string
	tags   map[string]string
	ref    *Ref // back-pointer so retention can invalidate the handle
	blocks []sealedBlock
	head   []Point // sorted by timestamp
}

type sealedBlock struct {
	minTS, maxTS int64
	n            int
	data         []byte
}

// Open creates a DB. If dir is non-empty, a write-ahead log in that
// directory is replayed (recovering prior writes) and every subsequent
// write is appended to it. Durable block storage is off; see
// OpenOptions.
func Open(dir string) (*DB, error) {
	return OpenOptions(Options{Dir: dir})
}

// OpenOptions creates a DB per opts: block files (when enabled) are
// loaded first so WAL flush markers can validate against them, then
// the WAL replays whatever the block layer doesn't already hold.
func OpenOptions(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	db := &DB{opts: opts}
	db.idx.init()
	db.reg.init()
	for i := range db.shards {
		db.shards[i].series = make(map[string]*memSeries)
	}
	if opts.Dir == "" {
		return db, nil
	}
	if opts.DurableBlocks {
		ds, err := db.openDiskStore(filepath.Join(opts.Dir, "blocks"))
		if err != nil {
			return nil, err
		}
		ds.partMS = opts.Partition.Milliseconds()
		ds.maxMergeBytes = opts.CompactMaxBytes
		db.disk = ds
	}
	w, err := openWAL(opts.Dir, opts.FS)
	if err != nil {
		return nil, err
	}
	legacy, err := db.replayWAL(w)
	if err != nil {
		w.close()
		return nil, err
	}
	db.wal = w
	if legacy {
		// The file was in the old one-record-per-point format:
		// rewrite it as a compacted current-format log so appends
		// can group-commit against the series dictionary.
		if err := db.CompactWAL(); err != nil {
			w.close()
			db.wal = nil
			return nil, err
		}
	}
	if db.disk != nil && opts.FlushInterval > 0 {
		db.loopStop = make(chan struct{})
		db.loopWG.Add(1)
		// Supervised: a panic in a flush or compaction pass is logged
		// and the loop restarted with backoff instead of silently
		// losing background flushing for the process lifetime.
		go func() {
			defer db.loopWG.Done()
			obs.Supervised("tsdb-flush", nil, db.loopStop, func() {
				db.flushLoop(db.loopStop)
			})
		}()
	}
	return db, nil
}

// Close stops the background flusher, flushes and closes the WAL, and
// closes block file handles. It does not force a final flush: the WAL
// holds everything unflushed, so restart recovery is exact.
func (db *DB) Close() error {
	if db.loopStop != nil {
		close(db.loopStop)
		db.loopWG.Wait()
		db.loopStop = nil
	}
	var err error
	if db.wal != nil {
		err = db.wal.close()
	}
	if db.disk != nil {
		db.disk.close()
	}
	return err
}

// Sync forces WAL contents to stable storage. Any failure degrades
// the store immediately: after a rejected fsync the page cache can no
// longer be trusted to match the disk, so retrying (and acking) writes
// would risk silent loss.
func (db *DB) Sync() error {
	if db.wal == nil {
		return nil
	}
	if err := db.Degraded(); err != nil {
		return err
	}
	var err error
	if ins := db.instr.Load(); ins != nil {
		t0 := time.Now()
		err = db.wal.sync()
		ins.WALFsync.ObserveSince(t0)
	} else {
		err = db.wal.sync()
	}
	if err != nil {
		db.walFsyncErrs.Add(1)
		db.degrade(fmt.Errorf("wal sync: %w", err))
	}
	return err
}

func shardFor(key string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h % numShards
}

// Put validates and stores one data point. The series half of the
// validation is paid only when the series is first interned; repeat
// writers pay a hash, two map probes and the insert.
func (db *DB) Put(dp DataPoint) error {
	if dp.Timestamp < minTS || dp.Timestamp > maxTS {
		return fmt.Errorf("%w: %d", ErrBadTimestamp, dp.Timestamp)
	}
	ref, err := db.Intern(dp.Metric, dp.Tags)
	if err != nil {
		return err
	}
	return db.PutRef(RefPoint{Ref: ref, Point: dp.Point})
}

// PutRef stores one point on an interned series, skipping every
// per-point resolution cost. The timestamp must be in range (callers
// resolving through Intern at a network edge validate there).
func (db *DB) PutRef(rp RefPoint) error {
	if st := db.degraded.Load(); st != nil {
		return st.err
	}
	if db.wal != nil {
		db.walGate.RLock()
		err := db.wal.appendOne(rp)
		if err != nil {
			db.walGate.RUnlock()
			db.noteWALAppendError(err)
			return fmt.Errorf("tsdb: wal append: %w", err)
		}
		db.insertRef(rp)
		db.walGate.RUnlock()
		db.noteWALAppendOK()
	} else {
		db.insertRef(rp)
	}
	if db.observers.Load() != nil {
		db.notifyObserversOne(rp)
	}
	return nil
}

// PutBatch stores multiple points, stopping at the first invalid one.
func (db *DB) PutBatch(dps []DataPoint) error {
	for _, dp := range dps {
		if err := db.Put(dp); err != nil {
			return err
		}
	}
	return nil
}

// insertRef stores one point on its interned series, re-interning if
// retention removed the series after the caller resolved it.
func (db *DB) insertRef(rp RefPoint) {
	ref := rp.Ref
	for {
		sh := &db.shards[ref.shard]
		sh.mu.Lock()
		if !ref.dead.Load() {
			db.insertSeriesLocked(ref.s, rp.Point)
			sh.mu.Unlock()
			return
		}
		sh.mu.Unlock()
		ref = db.resurrect(ref)
	}
}

// insertSeriesLocked appends one point keeping the head sorted; most
// writes are appends. Caller holds the series' shard lock.
func (db *DB) insertSeriesLocked(s *memSeries, p Point) {
	if n := len(s.head); n == 0 || s.head[n-1].Timestamp <= p.Timestamp {
		s.head = append(s.head, p)
	} else {
		i := sort.Search(n, func(i int) bool { return s.head[i].Timestamp > p.Timestamp })
		s.head = append(s.head, Point{})
		copy(s.head[i+1:], s.head[i:])
		s.head[i] = p
	}
	if len(s.head) >= headSealSize {
		s.seal()
	}
}

// seal compresses the head into a block. Caller holds the shard lock.
func (s *memSeries) seal() {
	if len(s.head) == 0 {
		return
	}
	enc := newBlockEncoder()
	for _, p := range s.head {
		enc.add(p.Timestamp, p.Value)
	}
	data, n := enc.finish()
	s.blocks = append(s.blocks, sealedBlock{
		minTS: s.head[0].Timestamp,
		maxTS: s.head[len(s.head)-1].Timestamp,
		n:     n,
		data:  data,
	})
	// Keep the head array: an actively-written series reuses its
	// buffer every seal cycle instead of regrowing it from nil —
	// readers only ever see copies of the in-range head, never the
	// backing array.
	s.head = s.head[:0]
}

// SeriesCount returns the number of distinct stored series.
func (db *DB) SeriesCount() int {
	n := 0
	for i := range db.shards {
		db.shards[i].mu.RLock()
		n += len(db.shards[i].series)
		db.shards[i].mu.RUnlock()
	}
	return n
}

// PointCount returns the total number of stored points, including
// points flushed to disk.
func (db *DB) PointCount() int {
	n := 0
	if db.disk != nil {
		n += db.disk.pointCount()
	}
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for _, s := range sh.series {
			n += len(s.head)
			for _, b := range s.blocks {
				n += b.n
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// CompressedBytes reports the total size of sealed block data — the
// number the compression bench tracks.
func (db *DB) CompressedBytes() int {
	n := 0
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for _, s := range sh.series {
			for _, b := range s.blocks {
				n += len(b.data)
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// Metrics lists the distinct metric names, sorted.
func (db *DB) Metrics() []string {
	set := map[string]bool{}
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for _, s := range sh.series {
			set[s.metric] = true
		}
		sh.mu.RUnlock()
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// TagValues lists the distinct values of a tag key under a metric.
func (db *DB) TagValues(metric, tagKey string) []string {
	set := map[string]bool{}
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for _, s := range sh.series {
			if s.metric != metric {
				continue
			}
			if v, ok := s.tags[tagKey]; ok {
				set[v] = true
			}
		}
		sh.mu.RUnlock()
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// SeriesWindowExact returns the raw points of the exact series
// identified by (metric, tags) — no filter semantics, the tag set
// must match the stored series key — within [start, end]. A missing
// series yields a nil slice, not an error. This is the low-level read
// the rollup engine uses to fetch derived stat series and raw edge
// windows without paying Execute's matching and aggregation machinery.
func (db *DB) SeriesWindowExact(metric string, tags map[string]string, start, end int64) ([]Point, error) {
	key := seriesKey(metric, tags)
	sh := &db.shards[shardFor(key)]
	sh.mu.RLock()
	s, ok := sh.series[key]
	sh.mu.RUnlock()
	if !ok {
		return nil, nil
	}
	return db.rawPoints(s, sh, start, end)
}

// ScanSeries streams the raw points of every series whose metric has
// the given prefix and whose tags match filter ("*" accepts any
// present value; an empty prefix matches every metric), one series at
// a time in series-key order — the catch-up read /api/stream uses to
// replay a window of history without materializing more than one
// series' points. A non-nil error from yield aborts the scan and is
// returned unchanged.
func (db *DB) ScanSeries(metricPrefix string, filter map[string]string, start, end int64, yield func(metric string, tags map[string]string, pts []Point) error) error {
	// Collect matches first (pointers only) so yields run in a stable
	// order and without any shard lock held.
	type match struct {
		s  *memSeries
		sh *shard
	}
	var keys []string
	bySeriesKey := map[string]match{}
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for key, s := range sh.series {
			if !strings.HasPrefix(s.metric, metricPrefix) || !tagsMatch(filter, s.tags) {
				continue
			}
			keys = append(keys, key)
			bySeriesKey[key] = match{s, sh}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(keys)
	for _, key := range keys {
		m := bySeriesKey[key]
		pts, err := db.rawPoints(m.s, m.sh, start, end)
		if err != nil {
			return err
		}
		if len(pts) == 0 {
			continue
		}
		if err := yield(m.s.metric, m.s.tags, pts); err != nil {
			return err
		}
	}
	return nil
}

// rawPoints returns the series' points within [start, end], merging
// sealed blocks and head through the streaming cursor. Caller must
// NOT hold the shard lock.
func (db *DB) rawPoints(s *memSeries, sh *shard, start, end int64) ([]Point, error) {
	src, est, err := db.seriesSource(s, sh, start, end, nil)
	if err != nil {
		return nil, err
	}
	if est == 0 {
		return nil, nil
	}
	out, err := drainSource(src, make([]Point, 0, est))
	if err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}
