package tsdb

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/obs"
)

// Aggregator combines values, both across series and within downsample
// buckets — the OpenTSDB aggregator set the paper's dashboards use.
type Aggregator string

// Supported aggregators.
const (
	AggSum   Aggregator = "sum"
	AggAvg   Aggregator = "avg"
	AggMin   Aggregator = "min"
	AggMax   Aggregator = "max"
	AggCount Aggregator = "count"
	AggP50   Aggregator = "p50"
	AggP95   Aggregator = "p95"
	AggP99   Aggregator = "p99"
	AggDev   Aggregator = "dev"
)

// Valid reports whether the aggregator is known.
func (a Aggregator) Valid() bool {
	switch a {
	case AggSum, AggAvg, AggMin, AggMax, AggCount, AggP50, AggP95, AggP99, AggDev:
		return true
	}
	return false
}

// Apply reduces a non-empty value slice with the aggregator — the
// same reduction the query engine uses inside downsample buckets,
// exported so the rollup engine computes window statistics that are
// bit-compatible with a raw scan. Apply on an empty slice returns NaN.
func (a Aggregator) Apply(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	return a.apply(vals)
}

// apply reduces a non-empty value slice.
func (a Aggregator) apply(vals []float64) float64 {
	return a.applyWith(vals, nil)
}

// execScratch holds the reusable buffers one query worker carries
// through a scan: percentile reductions sort into sorted instead of
// allocating and copying per bucket, and the cross-series merge
// collects each timestamp's contributions into vals. One scratch
// serves one goroutine at a time.
type execScratch struct {
	sorted []float64
	vals   []float64
}

// applyWith reduces a non-empty value slice, borrowing sc (when
// non-nil) for reductions that need working memory.
func (a Aggregator) applyWith(vals []float64, sc *execScratch) float64 {
	switch a {
	case AggSum:
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s
	case AggAvg:
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals))
	case AggMin:
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return m
	case AggMax:
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return m
	case AggCount:
		return float64(len(vals))
	case AggP50:
		return percentile(vals, 0.50, sc)
	case AggP95:
		return percentile(vals, 0.95, sc)
	case AggP99:
		return percentile(vals, 0.99, sc)
	case AggDev:
		mean := AggAvg.applyWith(vals, sc)
		ss := 0.0
		for _, v := range vals {
			d := v - mean
			ss += d * d
		}
		return math.Sqrt(ss / float64(len(vals)))
	default:
		return math.NaN()
	}
}

// percentile computes the linearly-interpolated p-quantile. The sort
// runs on a copy of vals — taken from the scratch when one is
// available, so a query sorts into one buffer instead of allocating
// per bucket.
func percentile(vals []float64, p float64, sc *execScratch) float64 {
	var s []float64
	if sc != nil {
		sc.sorted = append(sc.sorted[:0], vals...)
		s = sc.sorted
	} else {
		s = append([]float64(nil), vals...)
	}
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Query selects and reduces series, OpenTSDB-style.
type Query struct {
	Metric string
	// Tags filters series: exact value, or "*" to group by that tag
	// (one result series per distinct value). Tags not mentioned are
	// not constrained and are aggregated over.
	Tags map[string]string
	// Start and End bound the time range (inclusive), in ms.
	Start, End int64
	// Aggregator combines values across series within a group at each
	// timestamp (after interpolation). Required.
	Aggregator Aggregator
	// Downsample, when >0, buckets points into intervals reduced by
	// DownsampleFn (defaults to Aggregator).
	Downsample   time.Duration
	DownsampleFn Aggregator
	// Rate converts the result to a per-second first derivative.
	Rate bool
	// SeriesLimit, when >0, keeps only the K result series ranking
	// highest (or, with LimitLowest, lowest) by the mean of their
	// result points — the server side of topk/bottomk. Selection runs
	// on a bounded heap, so memory stays O(K) no matter how many
	// series the filter matches.
	SeriesLimit int
	LimitLowest bool
	// Trace, when non-nil, receives per-stage timings for this
	// execution (series matching, member priming, k-way merge, group
	// reduction, scheduling and ordered-delivery waits, rollup serving;
	// with Trace.Detailed also per-point block-decode/head-scan/
	// downsample-fold attribution). Nil costs nothing.
	Trace *obs.Trace
}

// ResultSeries is one output series of a query.
type ResultSeries struct {
	Metric string
	// Tags contains the group-by tags and any tags shared by every
	// aggregated series.
	Tags   map[string]string
	Points []Point
}

// Query errors.
var (
	ErrBadAggregator = errors.New("tsdb: unknown aggregator")
	ErrBadRange      = errors.New("tsdb: query start after end")
	ErrBadLimit      = errors.New("tsdb: series limit must be positive")
)

// Validate checks the query's shape without touching the store — the
// same checks Execute runs, exported so network edges can answer a
// malformed query with a 400 before any response bytes are written.
func (q Query) Validate() error {
	if !q.Aggregator.Valid() {
		return fmt.Errorf("%w: %q", ErrBadAggregator, q.Aggregator)
	}
	if q.Downsample > 0 {
		fn := q.DownsampleFn
		if fn == "" {
			fn = q.Aggregator
		}
		if !fn.Valid() {
			return fmt.Errorf("%w: %q", ErrBadAggregator, q.DownsampleFn)
		}
	}
	if q.Start > q.End {
		return ErrBadRange
	}
	if q.SeriesLimit < 0 {
		return fmt.Errorf("%w: series limit %d", ErrBadLimit, q.SeriesLimit)
	}
	return nil
}

// Execute runs the query and materializes every result series. It is
// a convenience wrapper over ExecuteStream for callers that need the
// whole result at once (dashboard panels, examples); response paths
// that fan out to many series should consume ExecuteStream directly
// so only one group's points are resident at a time.
func (db *DB) Execute(q Query) ([]ResultSeries, error) {
	var out []ResultSeries
	if err := db.ExecuteStream(q, func(rs ResultSeries) error {
		out = append(out, rs)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// ExecuteStream runs the query, yielding result series one at a time
// in deterministic order (group key order; with SeriesLimit, rank
// order). Groups are reduced concurrently on a bounded worker pool
// (see SetScanParallelism) but always delivered in key order, so
// output is identical to a serial scan. Only the groups currently in
// flight have points materialized — with SeriesLimit additionally the
// K retained series — so a wide query's memory is bounded by a few
// groups, not the whole result. A non-nil error from yield aborts the
// scan and is returned unchanged.
func (db *DB) ExecuteStream(q Query, yield func(ResultSeries) error) error {
	if err := q.Validate(); err != nil {
		return err
	}

	// Collect matching series grouped by group-by tag values. Only
	// series pointers are gathered here; point data is read lazily,
	// group by group.
	groups := map[string][]matched{}
	groupTags := map[string]map[string]string{}
	var groupKeys []string

	tr := q.Trace
	var tMatch time.Time
	if tr != nil {
		tMatch = time.Now()
	}

	var groupBy []string
	for k, v := range q.Tags {
		if v == "*" {
			groupBy = append(groupBy, k)
		}
	}
	sort.Strings(groupBy)

	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for key, s := range sh.series {
			if s.metric != q.Metric || !tagsMatch(q.Tags, s.tags) {
				continue
			}
			gk := ""
			gt := map[string]string{}
			for _, k := range groupBy {
				gk += k + "=" + s.tags[k] + ";"
				gt[k] = s.tags[k]
			}
			if _, ok := groups[gk]; !ok {
				groupKeys = append(groupKeys, gk)
				groupTags[gk] = gt
			}
			groups[gk] = append(groups[gk], matched{s, sh, key})
		}
		sh.mu.RUnlock()
	}
	sort.Strings(groupKeys)
	// Deterministic member order (shard map iteration is not): the
	// cross-series reduction then applies floating-point operations in
	// a stable order, so repeated and parallel runs agree bitwise.
	for _, ms := range groups {
		sort.Slice(ms, func(i, j int) bool { return ms[i].key < ms[j].key })
	}
	if tr != nil {
		tr.Stage("match_series").Add(time.Since(tMatch))
	}

	if q.SeriesLimit > 0 {
		return db.streamLimited(q, groups, groupTags, groupKeys, yield)
	}
	type groupOut struct {
		rs ResultSeries
		ok bool
	}
	return scanOrdered(db.scanWorkers(len(groupKeys)), len(groupKeys), tr,
		func(i int, sc *execScratch) (groupOut, error) {
			gk := groupKeys[i]
			rs, ok, err := db.groupSeries(q, groups[gk], groupTags[gk], sc)
			return groupOut{rs, ok}, err
		},
		func(i int, g groupOut) error {
			if !g.ok {
				return nil
			}
			return yield(g.rs)
		})
}

// groupSeries reduces one group's member series to its result series,
// streaming every member through per-point cursors: points decode
// straight into the downsample fold and the k-way interpolating
// merge, so only the merged result is ever materialized. ok is false
// when no member has points in range.
func (db *DB) groupSeries(q Query, members []matched, gt map[string]string, sc *execScratch) (ResultSeries, bool, error) {
	// Prime one cursor per member, dropping members with nothing in
	// range — a group with a single live member passes its points
	// through unreduced, matching the materializing semantics.
	tr := q.Trace
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	live := make([]memberCursor, 0, len(members))
	maxEst := 0
	for _, m := range members {
		src, est, err := db.memberSource(m, q, sc)
		if err != nil {
			return ResultSeries{}, false, err
		}
		p, ok, err := src.next()
		if err != nil {
			return ResultSeries{}, false, err
		}
		if !ok {
			continue
		}
		if est > maxEst {
			maxEst = est
		}
		live = append(live, memberCursor{src: src, head: p, hasHead: true})
	}
	if tr != nil {
		// Priming covers planner dispatch and each cursor's first point
		// (first block decode); the merge below pulls the rest.
		tr.Stage("member_prime").Add(time.Since(t0))
		t0 = time.Now()
	}
	if len(live) == 0 {
		return ResultSeries{}, false, nil
	}

	// Preallocate the merged result from the cursor estimate (capped:
	// it is a guess, not a commitment).
	if maxEst > 1<<14 {
		maxEst = 1 << 14
	}
	merged := make([]Point, 0, maxEst)
	var err error
	if len(live) == 1 {
		merged = append(merged, live[0].head)
		merged, err = drainSource(live[0].src, merged)
	} else {
		merged, err = mergeAggregate(live, q.Aggregator, sc, merged)
	}
	if err != nil {
		return ResultSeries{}, false, err
	}
	if tr != nil {
		// The k-way interpolating merge, including the member cursors'
		// decode work it pulls through.
		tr.Stage("kway_merge").Add(time.Since(t0))
	}
	if q.Rate {
		merged = rate(merged)
	}
	// Result tags: group-by tags plus tags common to all members.
	tags := map[string]string{}
	for k, v := range gt {
		tags[k] = v
	}
	for k, v := range commonTags(members[0].s.tags, members) {
		tags[k] = v
	}
	return ResultSeries{Metric: q.Metric, Tags: tags, Points: merged}, true, nil
}

// matched pairs a series with its shard for later lock-free reads.
type matched struct {
	s   *memSeries
	sh  *shard
	key string
}

// RollupPlanner serves a downsampled read of one series from
// pre-aggregated rollup tiers, streaming buckets to yield in timestamp
// order. The series arrives as its interned handle, so planners key
// their state by SeriesID instead of re-deriving key strings.
// Implementations return ok=false — before yielding anything — when
// the request cannot be satisfied from rollups (interval finer than
// every tier, non-composable aggregator, unknown series, …), in which
// case the query engine falls back to the raw block scan. A non-nil
// error from yield must abort the read and be returned unchanged.
type RollupPlanner interface {
	ServeDownsample(series *Ref, start, end int64, interval time.Duration, fn Aggregator, yield func(Point) error) (ok bool, err error)
}

// SetRollupPlanner installs (or, with nil, removes) the planner
// consulted by Execute for every downsampled per-series read.
func (db *DB) SetRollupPlanner(p RollupPlanner) {
	if p == nil {
		db.planner.Store(nil)
		return
	}
	db.planner.Store(&p)
}

// memberPlan is the one place the member read policy lives: it
// resolves the effective downsample fn and interval, and when a
// rollup planner is installed and can serve the downsample, streams
// the served buckets to each and reports served=true. memberSource
// and memberEach both dispatch through it, so planner fallback and
// downsample gating cannot drift between the query path and the
// topk scoring path.
func (db *DB) memberPlan(m matched, q Query, each func(Point) error) (fn Aggregator, ds int64, served bool, err error) {
	fn = q.DownsampleFn
	if fn == "" {
		fn = q.Aggregator
	}
	ds = q.Downsample.Milliseconds()
	if ds > 0 && m.s.ref != nil {
		if pp := db.planner.Load(); pp != nil {
			if tr := q.Trace; tr != nil {
				// Per-member planner attribution: rollup_serve counts the
				// members a tier answered, rollup_fallback the ones that
				// fell through to the raw block scan — the slow-query
				// log's "rollup vs raw" planner decision.
				t0 := time.Now()
				served, err = (*pp).ServeDownsample(m.s.ref, q.Start, q.End, q.Downsample, fn, each)
				if served {
					tr.Stage("rollup_serve").Add(time.Since(t0))
				} else {
					tr.Stage("rollup_fallback").Add(time.Since(t0))
				}
			} else {
				served, err = (*pp).ServeDownsample(m.s.ref, q.Start, q.End, q.Downsample, fn, each)
			}
		}
	}
	return fn, ds, served, err
}

// memberSource builds one member series' contribution to a query as
// a point cursor: the rollup planner's pre-aggregated buckets when
// one is installed and can serve the downsample, otherwise the raw
// block cursor fused straight into the downsample fold — no
// intermediate []Point between decode and bucket reduction. est is an
// upper bound on the points the source can yield, for output
// preallocation.
func (db *DB) memberSource(m matched, q Query, sc *execScratch) (pointSource, int, error) {
	var pts []Point
	fn, ds, served, err := db.memberPlan(m, q, func(p Point) error { pts = append(pts, p); return nil })
	if err != nil {
		return nil, 0, err
	}
	if served {
		return &sliceSource{pts: pts}, len(pts), nil
	}
	src, est, err := db.seriesSource(m.s, m.sh, q.Start, q.End, q.Trace)
	if err != nil {
		return nil, 0, err
	}
	if ds > 0 {
		if buckets := (q.End-q.Start)/ds + 2; buckets < int64(est) {
			est = int(buckets)
		}
		src = &downsampleSource{src: src, ms: ds, fn: fn, sc: sc}
		if tr := q.Trace; tr.Detailed() {
			// Inclusive of the decode chain below it; subtract
			// block_decode/head_scan to attribute the fold alone.
			src = &timedSource{src: src, st: tr.Stage("downsample_fold")}
		}
	}
	return src, est, nil
}

// memberEach streams one member series' post-downsample points to
// each without materializing them anywhere: planner-served buckets
// pass straight through, raw scans fold inside the cursor. This is
// the read under topk/bottomk scoring — ranking a series touches no
// member point slice, and when a rollup tier covers the range, no raw
// block either.
func (db *DB) memberEach(m matched, q Query, sc *execScratch, each func(Point) error) error {
	fn, ds, served, err := db.memberPlan(m, q, each)
	if err != nil || served {
		return err
	}
	src, _, err := db.seriesSource(m.s, m.sh, q.Start, q.End, q.Trace)
	if err != nil {
		return err
	}
	if ds > 0 {
		src = &downsampleSource{src: src, ms: ds, fn: fn, sc: sc}
		if tr := q.Trace; tr.Detailed() {
			src = &timedSource{src: src, st: tr.Stage("downsample_fold")}
		}
	}
	for {
		p, ok, err := src.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := each(p); err != nil {
			return err
		}
	}
}

// Downsample buckets points into fixed epoch-aligned intervals
// reduced by fn — the exported form of the query engine's downsample
// step, used by the rollup engine for raw edge windows so served and
// scanned buckets agree exactly.
func Downsample(pts []Point, interval time.Duration, fn Aggregator) []Point {
	return downsample(pts, interval, fn)
}

func commonTags(first map[string]string, members []matched) map[string]string {
	common := map[string]string{}
	for k, v := range first {
		shared := true
		for _, m := range members {
			if m.s.tags[k] != v {
				shared = false
				break
			}
		}
		if shared {
			common[k] = v
		}
	}
	return common
}

// tagsMatch checks filter tags against series tags ("*" matches any
// present value).
func tagsMatch(filter, tags map[string]string) bool {
	for k, v := range filter {
		tv, ok := tags[k]
		if !ok {
			return false
		}
		if v != "*" && v != tv {
			return false
		}
	}
	return true
}

// downsample buckets points into fixed intervals aligned to the epoch.
func downsample(pts []Point, interval time.Duration, fn Aggregator) []Point {
	if len(pts) == 0 {
		return pts
	}
	ms := interval.Milliseconds()
	if ms <= 0 {
		return pts
	}
	var out []Point
	var bucketStart int64 = math.MinInt64
	var vals []float64
	flush := func() {
		if len(vals) > 0 {
			out = append(out, Point{Timestamp: bucketStart, Value: fn.apply(vals)})
			vals = vals[:0]
		}
	}
	for _, p := range pts {
		bs := p.Timestamp - (p.Timestamp % ms)
		if bs != bucketStart {
			flush()
			bucketStart = bs
		}
		vals = append(vals, p.Value)
	}
	flush()
	return out
}

// memberCursor is one member's window into the k-way merge: prev is
// the last point at or before the current union timestamp, head the
// first one after it — the two points interpolation needs, and all a
// member ever keeps resident.
type memberCursor struct {
	src     pointSource
	prev    Point
	head    Point
	hasPrev bool
	hasHead bool
}

// mergeAggregate combines the primed member cursors into one series
// by aggregating at the union of timestamps, linearly interpolating
// members that lack an exact sample (OpenTSDB semantics). Members
// contribute only within their own [first, last] time span. It is the
// streaming equivalent of the classic materialize-then-walk
// reduction: each union timestamp is found as the minimum of the
// member heads, so one pass over K cursors replaces the timestamp-set
// map, its sort, and K materialized member slices.
func mergeAggregate(members []memberCursor, agg Aggregator, sc *execScratch, out []Point) ([]Point, error) {
	for {
		// Next union timestamp: the earliest unconsumed head.
		ts, any := int64(0), false
		for i := range members {
			if members[i].hasHead && (!any || members[i].head.Timestamp < ts) {
				ts, any = members[i].head.Timestamp, true
			}
		}
		if !any {
			return out, nil
		}
		// Advance members so prev is the last point ≤ ts.
		for i := range members {
			m := &members[i]
			for m.hasHead && m.head.Timestamp <= ts {
				m.prev, m.hasPrev = m.head, true
				p, ok, err := m.src.next()
				if err != nil {
					return nil, err
				}
				m.head, m.hasHead = p, ok
			}
		}
		// Collect contributions at ts, in member order.
		sc.vals = sc.vals[:0]
		for i := range members {
			m := &members[i]
			switch {
			case !m.hasPrev:
				// Before the member's first point: no contribution.
			case m.prev.Timestamp == ts:
				sc.vals = append(sc.vals, m.prev.Value)
			case !m.hasHead:
				// After the member's last point: no contribution.
			default:
				frac := float64(ts-m.prev.Timestamp) / float64(m.head.Timestamp-m.prev.Timestamp)
				sc.vals = append(sc.vals, m.prev.Value+frac*(m.head.Value-m.prev.Value))
			}
		}
		if len(sc.vals) > 0 {
			out = append(out, Point{Timestamp: ts, Value: agg.applyWith(sc.vals, sc)})
		}
	}
}

// rate converts a series to per-second first differences.
func rate(pts []Point) []Point {
	if len(pts) < 2 {
		return nil
	}
	out := make([]Point, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		dtMS := pts[i].Timestamp - pts[i-1].Timestamp
		if dtMS <= 0 {
			continue
		}
		out = append(out, Point{
			Timestamp: pts[i].Timestamp,
			Value:     (pts[i].Value - pts[i-1].Value) / (float64(dtMS) / 1000),
		})
	}
	return out
}
