package tsdb

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Aggregator combines values, both across series and within downsample
// buckets — the OpenTSDB aggregator set the paper's dashboards use.
type Aggregator string

// Supported aggregators.
const (
	AggSum   Aggregator = "sum"
	AggAvg   Aggregator = "avg"
	AggMin   Aggregator = "min"
	AggMax   Aggregator = "max"
	AggCount Aggregator = "count"
	AggP50   Aggregator = "p50"
	AggP95   Aggregator = "p95"
	AggP99   Aggregator = "p99"
	AggDev   Aggregator = "dev"
)

// Valid reports whether the aggregator is known.
func (a Aggregator) Valid() bool {
	switch a {
	case AggSum, AggAvg, AggMin, AggMax, AggCount, AggP50, AggP95, AggP99, AggDev:
		return true
	}
	return false
}

// Apply reduces a non-empty value slice with the aggregator — the
// same reduction the query engine uses inside downsample buckets,
// exported so the rollup engine computes window statistics that are
// bit-compatible with a raw scan. Apply on an empty slice returns NaN.
func (a Aggregator) Apply(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	return a.apply(vals)
}

// apply reduces a non-empty value slice.
func (a Aggregator) apply(vals []float64) float64 {
	switch a {
	case AggSum:
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s
	case AggAvg:
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals))
	case AggMin:
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return m
	case AggMax:
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return m
	case AggCount:
		return float64(len(vals))
	case AggP50:
		return percentile(vals, 0.50)
	case AggP95:
		return percentile(vals, 0.95)
	case AggP99:
		return percentile(vals, 0.99)
	case AggDev:
		mean := AggAvg.apply(vals)
		ss := 0.0
		for _, v := range vals {
			d := v - mean
			ss += d * d
		}
		return math.Sqrt(ss / float64(len(vals)))
	default:
		return math.NaN()
	}
}

func percentile(vals []float64, p float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Query selects and reduces series, OpenTSDB-style.
type Query struct {
	Metric string
	// Tags filters series: exact value, or "*" to group by that tag
	// (one result series per distinct value). Tags not mentioned are
	// not constrained and are aggregated over.
	Tags map[string]string
	// Start and End bound the time range (inclusive), in ms.
	Start, End int64
	// Aggregator combines values across series within a group at each
	// timestamp (after interpolation). Required.
	Aggregator Aggregator
	// Downsample, when >0, buckets points into intervals reduced by
	// DownsampleFn (defaults to Aggregator).
	Downsample   time.Duration
	DownsampleFn Aggregator
	// Rate converts the result to a per-second first derivative.
	Rate bool
	// SeriesLimit, when >0, keeps only the K result series ranking
	// highest (or, with LimitLowest, lowest) by the mean of their
	// result points — the server side of topk/bottomk. Selection runs
	// on a bounded heap, so memory stays O(K) no matter how many
	// series the filter matches.
	SeriesLimit int
	LimitLowest bool
}

// ResultSeries is one output series of a query.
type ResultSeries struct {
	Metric string
	// Tags contains the group-by tags and any tags shared by every
	// aggregated series.
	Tags   map[string]string
	Points []Point
}

// Query errors.
var (
	ErrBadAggregator = errors.New("tsdb: unknown aggregator")
	ErrBadRange      = errors.New("tsdb: query start after end")
	ErrBadLimit      = errors.New("tsdb: series limit must be positive")
)

// Validate checks the query's shape without touching the store — the
// same checks Execute runs, exported so network edges can answer a
// malformed query with a 400 before any response bytes are written.
func (q Query) Validate() error {
	if !q.Aggregator.Valid() {
		return fmt.Errorf("%w: %q", ErrBadAggregator, q.Aggregator)
	}
	if q.Downsample > 0 {
		fn := q.DownsampleFn
		if fn == "" {
			fn = q.Aggregator
		}
		if !fn.Valid() {
			return fmt.Errorf("%w: %q", ErrBadAggregator, q.DownsampleFn)
		}
	}
	if q.Start > q.End {
		return ErrBadRange
	}
	if q.SeriesLimit < 0 {
		return fmt.Errorf("%w: series limit %d", ErrBadLimit, q.SeriesLimit)
	}
	return nil
}

// Execute runs the query and materializes every result series. It is
// a convenience wrapper over ExecuteStream for callers that need the
// whole result at once (dashboard panels, examples); response paths
// that fan out to many series should consume ExecuteStream directly
// so only one group's points are resident at a time.
func (db *DB) Execute(q Query) ([]ResultSeries, error) {
	var out []ResultSeries
	if err := db.ExecuteStream(q, func(rs ResultSeries) error {
		out = append(out, rs)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// ExecuteStream runs the query, yielding result series one at a time
// in deterministic order (group key order; with SeriesLimit, rank
// order). Only the group currently being reduced has its points
// materialized — with SeriesLimit additionally the K retained series —
// so a wide query's memory is bounded by its largest single group, not
// the whole result. A non-nil error from yield aborts the scan and is
// returned unchanged.
func (db *DB) ExecuteStream(q Query, yield func(ResultSeries) error) error {
	if err := q.Validate(); err != nil {
		return err
	}

	// Collect matching series grouped by group-by tag values. Only
	// series pointers are gathered here; point data is read lazily,
	// group by group.
	groups := map[string][]matched{}
	groupTags := map[string]map[string]string{}
	var groupKeys []string

	var groupBy []string
	for k, v := range q.Tags {
		if v == "*" {
			groupBy = append(groupBy, k)
		}
	}
	sort.Strings(groupBy)

	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for _, s := range sh.series {
			if s.metric != q.Metric || !tagsMatch(q.Tags, s.tags) {
				continue
			}
			gk := ""
			gt := map[string]string{}
			for _, k := range groupBy {
				gk += k + "=" + s.tags[k] + ";"
				gt[k] = s.tags[k]
			}
			if _, ok := groups[gk]; !ok {
				groupKeys = append(groupKeys, gk)
				groupTags[gk] = gt
			}
			groups[gk] = append(groups[gk], matched{s, sh})
		}
		sh.mu.RUnlock()
	}
	sort.Strings(groupKeys)

	if q.SeriesLimit > 0 {
		return db.streamLimited(q, groups, groupTags, groupKeys, yield)
	}
	for _, gk := range groupKeys {
		rs, ok, err := db.groupSeries(q, groups[gk], groupTags[gk])
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := yield(rs); err != nil {
			return err
		}
	}
	return nil
}

// groupSeries reduces one group's member series to its result series.
// ok is false when no member has points in range.
func (db *DB) groupSeries(q Query, members []matched, gt map[string]string) (ResultSeries, bool, error) {
	var seriesPts [][]Point
	for _, m := range members {
		pts, err := db.memberPoints(m, q)
		if err != nil {
			return ResultSeries{}, false, err
		}
		if len(pts) > 0 {
			seriesPts = append(seriesPts, pts)
		}
	}
	if len(seriesPts) == 0 {
		return ResultSeries{}, false, nil
	}
	merged := aggregateSeries(seriesPts, q.Aggregator)
	if q.Rate {
		merged = rate(merged)
	}
	// Result tags: group-by tags plus tags common to all members.
	tags := map[string]string{}
	for k, v := range gt {
		tags[k] = v
	}
	for k, v := range commonTags(members[0].s.tags, members) {
		tags[k] = v
	}
	return ResultSeries{Metric: q.Metric, Tags: tags, Points: merged}, true, nil
}

// matched pairs a series with its shard for later lock-free reads.
type matched struct {
	s  *memSeries
	sh *shard
}

// RollupPlanner serves a downsampled read of one series from
// pre-aggregated rollup tiers, streaming buckets to yield in timestamp
// order. Implementations return ok=false — before yielding anything —
// when the request cannot be satisfied from rollups (interval finer
// than every tier, non-composable aggregator, unknown series, …), in
// which case the query engine falls back to the raw block scan. A
// non-nil error from yield must abort the read and be returned
// unchanged.
type RollupPlanner interface {
	ServeDownsample(metric string, tags map[string]string, start, end int64, interval time.Duration, fn Aggregator, yield func(Point) error) (ok bool, err error)
}

// SetRollupPlanner installs (or, with nil, removes) the planner
// consulted by Execute for every downsampled per-series read.
func (db *DB) SetRollupPlanner(p RollupPlanner) {
	if p == nil {
		db.planner.Store(nil)
		return
	}
	db.planner.Store(&p)
}

// memberPoints produces one member series' contribution to a query:
// the rollup planner's pre-aggregated buckets when one is installed
// and can serve the downsample, otherwise a raw scan (+ downsample).
func (db *DB) memberPoints(m matched, q Query) ([]Point, error) {
	fn := q.DownsampleFn
	if fn == "" {
		fn = q.Aggregator
	}
	if q.Downsample > 0 {
		if pp := db.planner.Load(); pp != nil {
			var pts []Point
			ok, err := (*pp).ServeDownsample(m.s.metric, m.s.tags, q.Start, q.End, q.Downsample, fn,
				func(p Point) error { pts = append(pts, p); return nil })
			if err != nil {
				return nil, err
			}
			if ok {
				return pts, nil
			}
		}
	}
	pts, err := db.rawPoints(m.s, m.sh, q.Start, q.End)
	if err != nil {
		return nil, err
	}
	if q.Downsample > 0 {
		pts = downsample(pts, q.Downsample, fn)
	}
	return pts, nil
}

// Downsample buckets points into fixed epoch-aligned intervals
// reduced by fn — the exported form of the query engine's downsample
// step, used by the rollup engine for raw edge windows so served and
// scanned buckets agree exactly.
func Downsample(pts []Point, interval time.Duration, fn Aggregator) []Point {
	return downsample(pts, interval, fn)
}

func commonTags(first map[string]string, members []matched) map[string]string {
	common := map[string]string{}
	for k, v := range first {
		shared := true
		for _, m := range members {
			if m.s.tags[k] != v {
				shared = false
				break
			}
		}
		if shared {
			common[k] = v
		}
	}
	return common
}

// tagsMatch checks filter tags against series tags ("*" matches any
// present value).
func tagsMatch(filter, tags map[string]string) bool {
	for k, v := range filter {
		tv, ok := tags[k]
		if !ok {
			return false
		}
		if v != "*" && v != tv {
			return false
		}
	}
	return true
}

// downsample buckets points into fixed intervals aligned to the epoch.
func downsample(pts []Point, interval time.Duration, fn Aggregator) []Point {
	if len(pts) == 0 {
		return pts
	}
	ms := interval.Milliseconds()
	if ms <= 0 {
		return pts
	}
	var out []Point
	var bucketStart int64 = math.MinInt64
	var vals []float64
	flush := func() {
		if len(vals) > 0 {
			out = append(out, Point{Timestamp: bucketStart, Value: fn.apply(vals)})
			vals = vals[:0]
		}
	}
	for _, p := range pts {
		bs := p.Timestamp - (p.Timestamp % ms)
		if bs != bucketStart {
			flush()
			bucketStart = bs
		}
		vals = append(vals, p.Value)
	}
	flush()
	return out
}

// aggregateSeries combines multiple series into one by aggregating at
// the union of timestamps, linearly interpolating series that lack an
// exact sample (OpenTSDB semantics). Series contribute only within
// their own [first, last] time span.
func aggregateSeries(series [][]Point, agg Aggregator) []Point {
	if len(series) == 1 {
		return series[0]
	}
	// Union of timestamps.
	tsSet := map[int64]bool{}
	for _, s := range series {
		for _, p := range s {
			tsSet[p.Timestamp] = true
		}
	}
	tss := make([]int64, 0, len(tsSet))
	for ts := range tsSet {
		tss = append(tss, ts)
	}
	sort.Slice(tss, func(i, j int) bool { return tss[i] < tss[j] })

	idx := make([]int, len(series))
	out := make([]Point, 0, len(tss))
	vals := make([]float64, 0, len(series))
	for _, ts := range tss {
		vals = vals[:0]
		for si, s := range series {
			// Advance the cursor to the last point ≤ ts.
			for idx[si]+1 < len(s) && s[idx[si]+1].Timestamp <= ts {
				idx[si]++
			}
			v, ok := valueAt(s, idx[si], ts)
			if ok {
				vals = append(vals, v)
			}
		}
		if len(vals) > 0 {
			out = append(out, Point{Timestamp: ts, Value: agg.apply(vals)})
		}
	}
	return out
}

// valueAt returns the series value at ts, interpolating between the
// cursor point and the next; ok is false outside the series span.
func valueAt(s []Point, cursor int, ts int64) (float64, bool) {
	if len(s) == 0 {
		return 0, false
	}
	p := s[cursor]
	if p.Timestamp == ts {
		return p.Value, true
	}
	if p.Timestamp > ts {
		return 0, false // before first point
	}
	if cursor+1 >= len(s) {
		return 0, false // after last point
	}
	next := s[cursor+1]
	frac := float64(ts-p.Timestamp) / float64(next.Timestamp-p.Timestamp)
	return p.Value + frac*(next.Value-p.Value), true
}

// rate converts a series to per-second first differences.
func rate(pts []Point) []Point {
	if len(pts) < 2 {
		return nil
	}
	out := make([]Point, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		dtMS := pts[i].Timestamp - pts[i-1].Timestamp
		if dtMS <= 0 {
			continue
		}
		out = append(out, Point{
			Timestamp: pts[i].Timestamp,
			Value:     (pts[i].Value - pts[i-1].Value) / (float64(dtMS) / 1000),
		})
	}
	return out
}
