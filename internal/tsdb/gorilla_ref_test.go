package tsdb

// Reference Gorilla codec: the original bit-at-a-time implementation,
// kept verbatim as a test oracle. The production codec buffers a
// 64-bit word for speed but must emit and accept the exact same byte
// stream; TestGorillaRefParity and FuzzGorillaCodec hold the two
// implementations together, so blocks sealed by any prior build stay
// readable.

import "math"

// refBitWriter appends bits to a byte slice, MSB first, one at a time.
type refBitWriter struct {
	buf  []byte
	nBit uint8 // bits used in the last byte (0..7); 0 means last byte full/absent
}

func (w *refBitWriter) writeBit(b bool) {
	if w.nBit == 0 {
		w.buf = append(w.buf, 0)
		w.nBit = 8
	}
	if b {
		w.buf[len(w.buf)-1] |= 1 << (w.nBit - 1)
	}
	w.nBit--
}

func (w *refBitWriter) writeBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.writeBit(v&(1<<uint(i)) != 0)
	}
}

// refBitReader consumes bits one at a time.
type refBitReader struct {
	buf []byte
	pos int
	bit uint8
}

func newRefBitReader(buf []byte) *refBitReader { return &refBitReader{buf: buf, bit: 7} }

func (r *refBitReader) readBit() (bool, error) {
	if r.pos >= len(r.buf) {
		return false, errOutOfBits
	}
	b := r.buf[r.pos]&(1<<r.bit) != 0
	if r.bit == 0 {
		r.pos++
		r.bit = 7
	} else {
		r.bit--
	}
	return b, nil
}

func (r *refBitReader) readBits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v <<= 1
		if b {
			v |= 1
		}
	}
	return v, nil
}

// refBlockEncoder mirrors blockEncoder on the bit-at-a-time writer.
type refBlockEncoder struct {
	w         refBitWriter
	n         int
	prevTS    int64
	prevDelta int64
	prevVal   uint64
	leading   uint8
	trailing  uint8
}

func newRefBlockEncoder() *refBlockEncoder { return &refBlockEncoder{leading: 0xFF} }

func (e *refBlockEncoder) add(ts int64, v float64) {
	bitsV := math.Float64bits(v)
	switch e.n {
	case 0:
		e.w.writeBits(uint64(ts), 64)
		e.w.writeBits(bitsV, 64)
	case 1:
		delta := ts - e.prevTS
		e.w.writeBits(uint64(delta)&((1<<33)-1), 33)
		e.prevDelta = delta
		e.writeXOR(bitsV)
	default:
		dod := (ts - e.prevTS) - e.prevDelta
		e.writeDoD(dod)
		e.prevDelta = ts - e.prevTS
		e.writeXOR(bitsV)
	}
	e.prevTS = ts
	e.prevVal = bitsV
	e.n++
}

func (e *refBlockEncoder) writeDoD(dod int64) {
	switch {
	case dod == 0:
		e.w.writeBit(false)
	case dod >= -8191 && dod <= 8192:
		e.w.writeBits(0b10, 2)
		e.w.writeBits(uint64(dod+8191)&((1<<14)-1), 14)
	case dod >= -65535 && dod <= 65536:
		e.w.writeBits(0b110, 3)
		e.w.writeBits(uint64(dod+65535)&((1<<17)-1), 17)
	case dod >= -524287 && dod <= 524288:
		e.w.writeBits(0b1110, 4)
		e.w.writeBits(uint64(dod+524287)&((1<<20)-1), 20)
	default:
		e.w.writeBits(0b1111, 4)
		e.w.writeBits(uint64(dod), 64)
	}
}

func (e *refBlockEncoder) writeXOR(v uint64) {
	xor := v ^ e.prevVal
	if xor == 0 {
		e.w.writeBit(false)
		return
	}
	e.w.writeBit(true)
	leading := uint8(leadingZeros64(xor))
	trailing := uint8(trailingZeros64(xor))
	if leading > 31 {
		leading = 31
	}
	if e.leading != 0xFF && leading >= e.leading && trailing >= e.trailing {
		e.w.writeBit(false)
		e.w.writeBits(xor>>e.trailing, uint(64-e.leading-e.trailing))
		return
	}
	e.leading, e.trailing = leading, trailing
	e.w.writeBit(true)
	e.w.writeBits(uint64(leading), 5)
	sig := 64 - leading - trailing
	e.w.writeBits(uint64(sig-1), 6)
	e.w.writeBits(xor>>trailing, uint(sig))
}

func (e *refBlockEncoder) finish() ([]byte, int) { return e.w.buf, e.n }

func leadingZeros64(x uint64) int {
	n := 0
	for x&(1<<63) == 0 && n < 64 {
		x <<= 1
		n++
	}
	return n
}

func trailingZeros64(x uint64) int {
	if x == 0 {
		return 64
	}
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// refDecodeBlock is the original materializing decoder on the
// bit-at-a-time reader.
func refDecodeBlock(buf []byte, n int) ([]Point, error) {
	if n == 0 {
		return nil, nil
	}
	r := newRefBitReader(buf)
	out := make([]Point, 0, n)

	tsBits, err := r.readBits(64)
	if err != nil {
		return nil, err
	}
	valBits, err := r.readBits(64)
	if err != nil {
		return nil, err
	}
	ts := int64(tsBits)
	val := valBits
	out = append(out, Point{Timestamp: ts, Value: math.Float64frombits(val)})

	var delta int64
	leading, trailing := uint8(0), uint8(0)

	readXOR := func() error {
		nonzero, err := r.readBit()
		if err != nil {
			return err
		}
		if !nonzero {
			return nil
		}
		newWindow, err := r.readBit()
		if err != nil {
			return err
		}
		if newWindow {
			l, err := r.readBits(5)
			if err != nil {
				return err
			}
			s, err := r.readBits(6)
			if err != nil {
				return err
			}
			leading = uint8(l)
			sig := uint8(s) + 1
			trailing = 64 - leading - sig
		}
		sig := 64 - leading - trailing
		x, err := r.readBits(uint(sig))
		if err != nil {
			return err
		}
		val ^= x << trailing
		return nil
	}

	readDoD := func() (int64, error) {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		if !b {
			return 0, nil
		}
		b, err = r.readBit()
		if err != nil {
			return 0, err
		}
		if !b {
			v, err := r.readBits(14)
			if err != nil {
				return 0, err
			}
			return int64(v) - 8191, nil
		}
		b, err = r.readBit()
		if err != nil {
			return 0, err
		}
		if !b {
			v, err := r.readBits(17)
			if err != nil {
				return 0, err
			}
			return int64(v) - 65535, nil
		}
		b, err = r.readBit()
		if err != nil {
			return 0, err
		}
		if !b {
			v, err := r.readBits(20)
			if err != nil {
				return 0, err
			}
			return int64(v) - 524287, nil
		}
		v, err := r.readBits(64)
		if err != nil {
			return 0, err
		}
		return int64(v), nil
	}

	for i := 1; i < n; i++ {
		if i == 1 {
			d, err := r.readBits(33)
			if err != nil {
				return nil, err
			}
			delta = int64(d<<31) >> 31
		} else {
			dod, err := readDoD()
			if err != nil {
				return nil, err
			}
			delta += dod
		}
		ts += delta
		if err := readXOR(); err != nil {
			return nil, err
		}
		out = append(out, Point{Timestamp: ts, Value: math.Float64frombits(val)})
	}
	return out, nil
}
