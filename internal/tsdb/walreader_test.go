package tsdb

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
	"time"
)

// leaseAt registers a tailer at the WAL's current end — the state a
// just-snapshotted follower is in.
func leaseAt(t *testing.T, db *DB, maxLag int64) *WALReader {
	t.Helper()
	l := db.wal
	l.mu.Lock()
	if err := l.w.Flush(); err != nil {
		l.mu.Unlock()
		t.Fatal(err)
	}
	gen, off := l.gen, l.size.Load()
	l.mu.Unlock()
	rd, err := db.WALTail(gen, off, maxLag)
	if err != nil {
		t.Fatal(err)
	}
	return rd
}

// drain consumes events until the reader reports idle, returning the
// concatenated data bytes.
func drain(t *testing.T, rd *WALReader) []byte {
	t.Helper()
	var out []byte
	buf := make([]byte, 64<<10)
	stop := make(chan struct{})
	for {
		ev, err := rd.Next(buf, stop, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		switch ev.Kind {
		case WALData:
			out = append(out, ev.Data...)
		case WALIdle:
			return out
		case WALRemap:
			t.Fatalf("unexpected remap to gen %d", ev.Gen)
		}
	}
}

// walRecords splits raw WAL bytes into record payloads, verifying
// framing and CRCs.
func walRecords(t *testing.T, raw []byte) [][]byte {
	t.Helper()
	var recs [][]byte
	for off := 0; off < len(raw); {
		if len(raw)-off < 8 {
			t.Fatalf("torn record header at %d/%d", off, len(raw))
		}
		crc := binary.LittleEndian.Uint32(raw[off:])
		n := int(binary.LittleEndian.Uint32(raw[off+4:]))
		if len(raw)-off < 8+n {
			t.Fatalf("torn record body at %d/%d", off, len(raw))
		}
		payload := raw[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != crc {
			t.Fatalf("record crc mismatch at %d", off)
		}
		recs = append(recs, payload)
		off += 8 + n
	}
	return recs
}

func TestWALReaderStreamsAppends(t *testing.T) {
	db := mustOpenDisk(t, t.TempDir())
	defer db.Close()

	rd := leaseAt(t, db, 1<<20)
	defer rd.Close()

	fillDiskSeries(t, db, "m.lease", "n1", 10)
	raw := drain(t, rd)
	recs := walRecords(t, raw)
	var series, points int
	for _, p := range recs {
		switch p[0] {
		case walRecSeries:
			series++
		case walRecPoints:
			points++
		}
	}
	if series != 1 || points == 0 {
		t.Fatalf("streamed %d series / %d points records, want 1 / >0", series, points)
	}
}

func TestWALCompactDefersForLaggingLease(t *testing.T) {
	db := mustOpenDisk(t, t.TempDir())
	defer db.Close()
	fillDiskSeries(t, db, "m.defer", "n1", 5)

	rd := leaseAt(t, db, 1<<20)
	defer rd.Close()
	fillDiskSeries(t, db, "m.defer", "n1", 5) // bytes the lease has not read

	if err := db.CompactWAL(); !errors.Is(err, ErrTruncateDeferred) {
		t.Fatalf("CompactWAL with lagging lease = %v, want ErrTruncateDeferred", err)
	}

	// Drained, the rewrite proceeds and remaps the caught-up lease.
	drain(t, rd)
	if err := db.CompactWAL(); err != nil {
		t.Fatalf("CompactWAL after drain: %v", err)
	}
	buf := make([]byte, 4096)
	ev, err := rd.Next(buf, nil, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != WALRemap || ev.Gen != 2 {
		t.Fatalf("post-compact event = %+v, want remap to gen 2", ev)
	}
	// The remapped lease keeps streaming the new generation.
	fillDiskSeries(t, db, "m.defer", "n1", 3)
	if raw := drain(t, rd); len(walRecords(t, raw)) == 0 {
		t.Fatal("no records streamed after remap")
	}
}

func TestWALCompactRevokesLeasePastBudget(t *testing.T) {
	db := mustOpenDisk(t, t.TempDir())
	defer db.Close()

	rd := leaseAt(t, db, 64) // tiny byte budget
	defer rd.Close()
	fillDiskSeries(t, db, "m.revoke", "n1", 50)

	if err := db.CompactWAL(); err != nil {
		t.Fatalf("CompactWAL should revoke, not defer: %v", err)
	}
	buf := make([]byte, 4096)
	if _, err := rd.Next(buf, nil, time.Millisecond); !errors.Is(err, ErrWALResyncRequired) {
		t.Fatalf("revoked reader Next = %v, want ErrWALResyncRequired", err)
	}
}

func TestWALReaderDictPrefix(t *testing.T) {
	db := mustOpenDisk(t, t.TempDir())
	defer db.Close()
	fillDiskSeries(t, db, "m.dict.a", "n1", 3)
	fillDiskSeries(t, db, "m.dict.b", "n2", 3)

	rd := leaseAt(t, db, 1<<20)
	defer rd.Close()
	dict, err := rd.DictPrefix()
	if err != nil {
		t.Fatal(err)
	}
	recs := walRecords(t, dict)
	if len(recs) != 2 {
		t.Fatalf("dict holds %d records, want 2 series", len(recs))
	}
	for _, p := range recs {
		if p[0] != walRecSeries {
			t.Fatalf("dict record type %d, want series only", p[0])
		}
	}
}

func TestWALTailResumesAcrossGenerations(t *testing.T) {
	db := mustOpenDisk(t, t.TempDir())
	defer db.Close()
	fillDiskSeries(t, db, "m.chain", "n1", 5)

	rd := leaseAt(t, db, 1<<20)
	gen, off := rd.Pos()
	rd.Close()
	if gen != 1 {
		t.Fatalf("initial gen = %d, want 1", gen)
	}

	// Two rewrites with no lease attached: a caught-up position at the
	// old EOF must map forward through the remembered spans.
	if err := db.CompactWAL(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactWAL(); err != nil {
		t.Fatal(err)
	}
	rd2, err := db.WALTail(gen, off, 1<<20)
	if err != nil {
		t.Fatalf("resume at old (gen,off): %v", err)
	}
	defer rd2.Close()
	if g, _ := rd2.Pos(); g != 3 {
		t.Fatalf("resumed gen = %d, want 3", g)
	}

	// A position not at a remembered EOF cannot chain.
	if _, err := db.WALTail(gen, off-1, 1<<20); !errors.Is(err, ErrWALResyncRequired) {
		t.Fatalf("stale mid-file resume = %v, want ErrWALResyncRequired", err)
	}
}

// refBatch builds a replication-style batch for one series.
func refBatch(t *testing.T, db *DB, metric string, n, from int) []RefPoint {
	t.Helper()
	ref, err := db.Intern(metric, map[string]string{"sensor": "n1", "city": "trondheim"})
	if err != nil {
		t.Fatal(err)
	}
	rps := make([]RefPoint, n)
	for i := range rps {
		rps[i] = RefPoint{Ref: ref, Point: Point{Timestamp: baseTS + int64(from+i)*60000, Value: float64(from + i)}}
	}
	return rps
}

func TestReplayDropsTailPastLastPosition(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDisk(t, dir)
	pos := ReplPos{Gen: 7, Off: 1000, Epoch: 3}
	if res := db.AppendRefsAt(refBatch(t, db, "m.pos", 10, 0), pos); res.Stored != 10 {
		t.Fatalf("AppendRefsAt stored %d/10: %+v", res.Stored, res.Errors)
	}
	// Records past the covered position: a torn stream write on a
	// replica. Replay must drop them — they will be re-fetched.
	if res := db.AppendRefs(refBatch(t, db, "m.pos", 5, 10)); res.Stored != 5 {
		t.Fatal("uncovered append failed")
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	db.wal.f.Close() // simulate crash: no clean Close rewriting state

	db2 := mustOpenDisk(t, dir)
	defer db2.Close()
	got, ok := db2.ReplPosition()
	if !ok || got != pos {
		t.Fatalf("replayed position = %+v ok=%v, want %+v", got, ok, pos)
	}
	pts, err := db2.SeriesWindowExact("m.pos", map[string]string{"sensor": "n1", "city": "trondheim"}, 0, maxTS)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("replayed %d points, want 10 (uncovered tail dropped)", len(pts))
	}
	if db2.ReplEpoch() != 3 {
		t.Fatalf("epoch = %d, want 3", db2.ReplEpoch())
	}
}

func TestReplayKeepsTailAfterDetach(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDisk(t, dir)
	if res := db.AppendRefsAt(refBatch(t, db, "m.det", 10, 0), ReplPos{Gen: 2, Off: 500, Epoch: 1}); res.Stored != 10 {
		t.Fatal("AppendRefsAt failed")
	}
	if _, err := db.DetachReplica(2); err != nil {
		t.Fatal(err)
	}
	// Writes after promotion are the node's own: replay keeps them.
	if res := db.AppendRefs(refBatch(t, db, "m.det", 5, 10)); res.Stored != 5 {
		t.Fatal("post-detach append failed")
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	db.wal.f.Close()

	db2 := mustOpenDisk(t, dir)
	defer db2.Close()
	pts, err := db2.SeriesWindowExact("m.det", map[string]string{"sensor": "n1", "city": "trondheim"}, 0, maxTS)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 15 {
		t.Fatalf("replayed %d points, want all 15 after detach", len(pts))
	}
	if db2.ReplEpoch() != 2 {
		t.Fatalf("epoch = %d, want fenced 2", db2.ReplEpoch())
	}
	if pos, _ := db2.ReplPosition(); !pos.Detached {
		t.Fatalf("position %+v should be detached", pos)
	}
}

func TestReadWALReplState(t *testing.T) {
	dir := t.TempDir()
	if _, ok := ReadWALReplState(dir, nil); ok {
		t.Fatal("empty dir should not be resumable")
	}

	db := mustOpenDisk(t, dir)
	pos := ReplPos{Gen: 4, Off: 2048, Epoch: 2}
	if res := db.AppendRefsAt(refBatch(t, db, "m.state", 4, 0), pos); res.Stored != 4 {
		t.Fatal("AppendRefsAt failed")
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	got, ok := ReadWALReplState(dir, nil)
	if !ok || got != pos {
		t.Fatalf("ReadWALReplState = %+v ok=%v, want %+v", got, ok, pos)
	}

	// Promotion detaches: the position survives but is not resumable.
	if _, err := db.DetachReplica(3); err != nil {
		t.Fatal(err)
	}
	if _, ok := ReadWALReplState(dir, nil); ok {
		t.Fatal("detached state should not be resumable")
	}
	db.Close()

	// Local (non-replicated) stores are never resumable.
	dir2 := t.TempDir()
	db2 := mustOpenDisk(t, dir2)
	fillDiskSeries(t, db2, "m.local", "n1", 5)
	if err := db2.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, ok := ReadWALReplState(dir2, nil); ok {
		t.Fatal("a never-replicated WAL should not be resumable")
	}
	db2.Close()
}

func TestSnapshotPlusTailCoversEverything(t *testing.T) {
	db := mustOpenDisk(t, t.TempDir())
	defer db.Close()
	fillDiskSeries(t, db, "m.snap", "n1", 600)
	// Move the sealed prefix into block files so the snapshot ships
	// both kinds of state.
	if _, err := db.flushBefore(baseTS+500*60000, true); err != nil {
		t.Fatal(err)
	}

	var kinds = map[string]int{}
	rd, err := db.StreamSnapshot([]string{"rollup.state"}, 1<<20, func(sf SnapshotFile) error {
		kinds[sf.Kind]++
		// Consume the reader fully, as the server would.
		buf := make([]byte, 32<<10)
		var got int64
		for got < sf.Size {
			n := int64(len(buf))
			if n > sf.Size-got {
				n = sf.Size - got
			}
			if _, err := sf.R.Read(buf[:n]); err != nil {
				return err
			}
			got += n
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if kinds["wal"] != 1 || kinds["block"] == 0 {
		t.Fatalf("snapshot kinds = %v, want 1 wal + blocks", kinds)
	}
	if kinds["aux"] != 0 {
		t.Fatalf("missing aux file should be skipped, got %d", kinds["aux"])
	}

	// Appends after the watermark stream through the lease with no gap.
	fillDiskSeries(t, db, "m.snap", "n1", 610)
	raw := drain(t, rd)
	if len(walRecords(t, raw)) == 0 {
		t.Fatal("no records streamed past the snapshot watermark")
	}
}
