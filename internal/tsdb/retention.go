package tsdb

// Retention: the deployments accumulate "historic data ... collected
// since January 2017" (§3); a long-running installation needs to age
// out raw points. DeleteBefore drops whole sealed blocks that end
// before the cutoff and filters head buffers — cheap, because sealed
// blocks carry their time bounds.

// DeleteBefore removes all points with timestamps strictly before
// cutoffMS. Sealed blocks that straddle the cutoff are decoded and
// re-sealed. It returns the number of points removed.
func (db *DB) DeleteBefore(cutoffMS int64) (int, error) {
	return db.DeleteBeforeWhere(cutoffMS, nil)
}

// DeleteBeforeWhere is DeleteBefore restricted to series accepted by
// match (nil matches every series) — how the rollup engine applies a
// different retention to each tier: raw series age out on one
// schedule, each rollup.<res>.* namespace on its own.
func (db *DB) DeleteBeforeWhere(cutoffMS int64, match func(metric string, tags map[string]string) bool) (int, error) {
	removed := 0
	// Disk layer first: whole expired files are deleted, partially
	// expired files rewritten (chunk-granular — a chunk straddling the
	// cutoff survives whole until it wholly expires). Doing disk first
	// lets the in-memory pass below decide series removal against the
	// post-deletion disk state.
	if db.disk != nil {
		n, err := db.diskDeleteBefore(cutoffMS, match)
		removed += n
		if err != nil {
			return removed, err
		}
	}
	// Refs of fully-removed series: marked dead under the shard lock
	// (writers re-intern on sight), dropped from the registry after —
	// the registry and shard locks are never nested.
	var deadRefs []*Ref
	defer func() {
		for _, ref := range deadRefs {
			db.dropRef(ref)
		}
	}()
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.Lock()
		for key, s := range sh.series {
			if match != nil && !match(s.metric, s.tags) {
				continue
			}
			var blocks []sealedBlock
			for _, b := range s.blocks {
				switch {
				case b.maxTS < cutoffMS:
					removed += b.n // whole block aged out
				case b.minTS >= cutoffMS:
					blocks = append(blocks, b)
				default:
					// Straddling block: decode, filter, re-seal.
					pts, err := decodeBlock(b.data, b.n)
					if err != nil {
						sh.mu.Unlock()
						return removed, err
					}
					enc := newBlockEncoder()
					kept := 0
					var minTS, maxTS int64
					for _, p := range pts {
						if p.Timestamp < cutoffMS {
							removed++
							continue
						}
						if kept == 0 {
							minTS = p.Timestamp
						}
						maxTS = p.Timestamp
						enc.add(p.Timestamp, p.Value)
						kept++
					}
					if kept > 0 {
						data, n := enc.finish()
						blocks = append(blocks, sealedBlock{minTS: minTS, maxTS: maxTS, n: n, data: data})
					}
				}
			}
			s.blocks = blocks
			head := s.head[:0]
			for _, p := range s.head {
				if p.Timestamp >= cutoffMS {
					head = append(head, p)
				} else {
					removed++
				}
			}
			s.head = head
			if len(s.blocks) == 0 && len(s.head) == 0 &&
				(db.disk == nil || s.ref == nil || !db.disk.hasChunks(s.ref.id)) {
				delete(sh.series, key)
				db.idx.removeSeries(s.metric, s.tags)
				if s.ref != nil {
					s.ref.dead.Store(true)
					deadRefs = append(deadRefs, s.ref)
				}
			}
		}
		sh.mu.Unlock()
	}
	return removed, nil
}
