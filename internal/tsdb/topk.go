package tsdb

// Server-side topk/bottomk: Query.SeriesLimit keeps only the K result
// series ranking highest (or lowest) by score. Ranking is lazy: a
// group's score is folded straight off its member cursor — served
// from rollup tier statistics (sums/counts) when a tier covers the
// range, so selection touches no member points — and only the K
// winning groups are ever materialized into result series. Groups
// that need cross-series aggregation or rate conversion fall back to
// a full reduction for scoring. Selection runs on a bounded heap, so
// retention is O(K); peak residency adds the scan pool's in-flight
// window (at most scanWorkers full reductions awaiting in-order
// consumption), never the whole fan-out.

import (
	"container/heap"
	"math"
	"sort"
)

// SeriesScore ranks a result series for topk/bottomk selection: the
// arithmetic mean of its result points, computed after downsampling,
// cross-series aggregation and rate conversion. Exported so reference
// implementations (tests, clients predicting selection) rank exactly
// like the engine. An empty series scores NaN and is never selected.
func SeriesScore(pts []Point) float64 {
	if len(pts) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, p := range pts {
		s += p.Value
	}
	return s / float64(len(pts))
}

// scoredGroup is one group's rank entry. rs is only populated when
// scoring required a full reduction (full=true); cheaply-scored
// winners materialize after selection.
type scoredGroup struct {
	rs    ResultSeries
	full  bool
	score float64
	gk    string // group key: the deterministic tie-break
}

// limitHeap is a bounded heap of the K best groups seen so far. The
// root is always the *worst* retained entry, so a better candidate
// replaces it in O(log K). worse() defines "worst" for the requested
// direction (topk evicts the lowest score, bottomk the highest).
type limitHeap struct {
	entries []scoredGroup
	lowest  bool // bottomk: keep lowest scores
}

func (h *limitHeap) Len() int { return len(h.entries) }

// Less orders by "worse first": the heap root is the eviction victim.
func (h *limitHeap) Less(i, j int) bool {
	return h.worse(h.entries[i], h.entries[j])
}

// worse reports whether a ranks strictly worse than b for retention.
// Ties on score break on group key so selection is deterministic: the
// lexicographically later key is evicted first.
func (h *limitHeap) worse(a, b scoredGroup) bool {
	if a.score != b.score {
		if h.lowest {
			return a.score > b.score
		}
		return a.score < b.score
	}
	return a.gk > b.gk
}

func (h *limitHeap) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *limitHeap) Push(x any)    { h.entries = append(h.entries, x.(scoredGroup)) }
func (h *limitHeap) Pop() any {
	old := h.entries
	n := len(old)
	x := old[n-1]
	h.entries = old[:n-1]
	return x
}

// streamLimited runs topk/bottomk selection over the grouped matches
// and yields the K winners best-first. Scoring runs on the same
// bounded parallel scan as a plain query, with candidates considered
// in group-key order so selection is deterministic.
func (db *DB) streamLimited(q Query, groups map[string][]matched, groupTags map[string]map[string]string, groupKeys []string, yield func(ResultSeries) error) error {
	h := &limitHeap{lowest: q.LimitLowest}
	err := scanOrdered(db.scanWorkers(len(groupKeys)), len(groupKeys), q.Trace,
		func(i int, sc *execScratch) (scoredGroup, error) {
			gk := groupKeys[i]
			members := groups[gk]
			if len(members) == 1 && !q.Rate {
				// Single-member, non-rate group: the result series is the
				// member's post-downsample stream unchanged, so its score
				// folds straight off the cursor — rollup tier statistics
				// when the planner covers the range, the fused decode
				// path otherwise. Nothing is materialized.
				sum, n := 0.0, 0
				err := db.memberEach(members[0], q, sc, func(p Point) error {
					sum += p.Value
					n++
					return nil
				})
				if err != nil || n == 0 {
					return scoredGroup{score: math.NaN(), gk: gk}, err
				}
				return scoredGroup{score: sum / float64(n), gk: gk}, nil
			}
			rs, ok, err := db.groupSeries(q, members, groupTags[gk], sc)
			if err != nil || !ok {
				return scoredGroup{score: math.NaN(), gk: gk}, err
			}
			return scoredGroup{rs: rs, full: true, score: SeriesScore(rs.Points), gk: gk}, nil
		},
		func(i int, cand scoredGroup) error {
			if math.IsNaN(cand.score) {
				return nil // empty series (e.g. rate over one point) never rank
			}
			if h.Len() < q.SeriesLimit {
				heap.Push(h, cand)
				return nil
			}
			if h.worse(h.entries[0], cand) {
				h.entries[0] = cand
				heap.Fix(h, 0)
			}
			return nil
		})
	if err != nil {
		return err
	}
	// Yield best-first: sort the survivors by rank (best = what worse()
	// orders last), materializing the lazily-scored winners now — only
	// K reductions, each typically rollup-served.
	winners := h.entries
	sort.Slice(winners, func(i, j int) bool { return h.worse(winners[j], winners[i]) })
	sc := scratchPool.Get().(*execScratch)
	defer scratchPool.Put(sc)
	for _, w := range winners {
		rs := w.rs
		if !w.full {
			var ok bool
			rs, ok, err = db.groupSeries(q, groups[w.gk], groupTags[w.gk], sc)
			if err != nil {
				return err
			}
			if !ok {
				continue // aged out since scoring (concurrent retention)
			}
		}
		if err := yield(rs); err != nil {
			return err
		}
	}
	return nil
}
