package tsdb

// Server-side topk/bottomk: Query.SeriesLimit keeps only the K result
// series ranking highest (or lowest) by score. Selection runs over the
// same lazy per-group reduction as a plain streamed query, holding at
// most K finished series in a bounded heap — a wide fan-out query
// serializes (and the caller ever sees) exactly K series, no matter
// how many the filter matched.

import (
	"container/heap"
	"math"
	"sort"
)

// SeriesScore ranks a result series for topk/bottomk selection: the
// arithmetic mean of its result points, computed after downsampling,
// cross-series aggregation and rate conversion. Exported so reference
// implementations (tests, clients predicting selection) rank exactly
// like the engine. An empty series scores NaN and is never selected.
func SeriesScore(pts []Point) float64 {
	if len(pts) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, p := range pts {
		s += p.Value
	}
	return s / float64(len(pts))
}

// rankedSeries pairs a finished result series with its rank inputs.
type rankedSeries struct {
	rs    ResultSeries
	score float64
	gk    string // group key: the deterministic tie-break
}

// limitHeap is a bounded heap of the K best series seen so far. The
// root is always the *worst* retained entry, so a better candidate
// replaces it in O(log K). worse() defines "worst" for the requested
// direction (topk evicts the lowest score, bottomk the highest).
type limitHeap struct {
	entries []rankedSeries
	lowest  bool // bottomk: keep lowest scores
}

func (h *limitHeap) Len() int { return len(h.entries) }

// Less orders by "worse first": the heap root is the eviction victim.
func (h *limitHeap) Less(i, j int) bool {
	return h.worse(h.entries[i], h.entries[j])
}

// worse reports whether a ranks strictly worse than b for retention.
// Ties on score break on group key so selection is deterministic: the
// lexicographically later key is evicted first.
func (h *limitHeap) worse(a, b rankedSeries) bool {
	if a.score != b.score {
		if h.lowest {
			return a.score > b.score
		}
		return a.score < b.score
	}
	return a.gk > b.gk
}

func (h *limitHeap) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *limitHeap) Push(x any)    { h.entries = append(h.entries, x.(rankedSeries)) }
func (h *limitHeap) Pop() any {
	old := h.entries
	n := len(old)
	x := old[n-1]
	h.entries = old[:n-1]
	return x
}

// streamLimited runs topk/bottomk selection over the grouped matches
// and yields the K winners best-first. Groups are still reduced one at
// a time; only the retained K series stay resident.
func (db *DB) streamLimited(q Query, groups map[string][]matched, groupTags map[string]map[string]string, groupKeys []string, yield func(ResultSeries) error) error {
	h := &limitHeap{lowest: q.LimitLowest}
	for _, gk := range groupKeys {
		rs, ok, err := db.groupSeries(q, groups[gk], groupTags[gk])
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		score := SeriesScore(rs.Points)
		if math.IsNaN(score) {
			continue // empty series (e.g. rate over one point) never rank
		}
		cand := rankedSeries{rs: rs, score: score, gk: gk}
		if h.Len() < q.SeriesLimit {
			heap.Push(h, cand)
			continue
		}
		if h.worse(h.entries[0], cand) {
			h.entries[0] = cand
			heap.Fix(h, 0)
		}
	}
	// Yield best-first: sort the survivors by rank (best = what worse()
	// orders last).
	winners := h.entries
	sort.Slice(winners, func(i, j int) bool { return h.worse(winners[j], winners[i]) })
	for _, w := range winners {
		if err := yield(w.rs); err != nil {
			return err
		}
	}
	return nil
}
