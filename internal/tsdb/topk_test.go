package tsdb

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"time"
)

// fillSeries stores n points at 1s cadence for one sensor, with
// values around base so every sensor gets a distinct mean.
func fillSeries(t testing.TB, db *DB, sensor string, base float64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := db.Put(DataPoint{
			Metric: "air.co2",
			Tags:   map[string]string{"sensor": sensor, "city": "t"},
			Point:  Point{Timestamp: 1488326400000 + int64(i)*1000, Value: base + float64(i%3)},
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTopKParity: SeriesLimit selection must return exactly K series
// and agree with a brute-force reference — run the same query without
// a limit, rank every series by SeriesScore, keep the K best.
func TestTopKParity(t *testing.T) {
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const sensors = 20
	for i := 0; i < sensors; i++ {
		// Bases deliberately non-monotonic in sensor id.
		fillSeries(t, db, fmt.Sprintf("s%02d", i), float64((i*7)%sensors)*10, 50)
	}

	base := Query{
		Metric:     "air.co2",
		Tags:       map[string]string{"sensor": "*"},
		Start:      0,
		End:        2000000000000,
		Aggregator: AggAvg,
		Downsample: 10 * time.Second,
	}

	full, err := db.Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != sensors {
		t.Fatalf("unlimited query returned %d series, want %d", len(full), sensors)
	}

	for _, tc := range []struct {
		k      int
		lowest bool
	}{{1, false}, {3, false}, {5, true}, {sensors, false}, {sensors + 5, true}} {
		q := base
		q.SeriesLimit = tc.k
		q.LimitLowest = tc.lowest
		got, err := db.Execute(q)
		if err != nil {
			t.Fatal(err)
		}

		// Brute-force reference over the unlimited result.
		ref := append([]ResultSeries(nil), full...)
		sort.Slice(ref, func(i, j int) bool {
			si, sj := SeriesScore(ref[i].Points), SeriesScore(ref[j].Points)
			if si != sj {
				if tc.lowest {
					return si < sj
				}
				return si > sj
			}
			return ref[i].Tags["sensor"] < ref[j].Tags["sensor"]
		})
		wantN := tc.k
		if wantN > len(ref) {
			wantN = len(ref)
		}
		ref = ref[:wantN]

		if len(got) != wantN {
			t.Fatalf("k=%d lowest=%v: got %d series, want %d", tc.k, tc.lowest, len(got), wantN)
		}
		for i := range ref {
			if got[i].Tags["sensor"] != ref[i].Tags["sensor"] {
				t.Errorf("k=%d lowest=%v rank %d: got sensor %s, want %s",
					tc.k, tc.lowest, i, got[i].Tags["sensor"], ref[i].Tags["sensor"])
			}
			if len(got[i].Points) != len(ref[i].Points) {
				t.Errorf("k=%d rank %d: %d points, want %d", tc.k, i, len(got[i].Points), len(ref[i].Points))
			}
		}
	}
}

// TestTopKValidation: a negative limit is rejected up front.
func TestTopKValidation(t *testing.T) {
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	_, err = db.Execute(Query{Metric: "m", Aggregator: AggAvg, End: 1, SeriesLimit: -1})
	if err == nil {
		t.Fatal("negative SeriesLimit accepted")
	}
}

// TestExecuteStreamYieldsLazily: the iterator must deliver series one
// at a time and honour an abort error from yield.
func TestExecuteStreamYieldsLazily(t *testing.T) {
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 5; i++ {
		fillSeries(t, db, fmt.Sprintf("s%d", i), float64(i), 10)
	}
	q := Query{
		Metric: "air.co2", Tags: map[string]string{"sensor": "*"},
		Start: 0, End: 2000000000000, Aggregator: AggAvg,
	}
	var seen int
	abort := fmt.Errorf("stop here")
	err = db.ExecuteStream(q, func(rs ResultSeries) error {
		seen++
		if seen == 2 {
			return abort
		}
		return nil
	})
	if err != abort {
		t.Fatalf("yield error not propagated: %v", err)
	}
	if seen != 2 {
		t.Fatalf("scan continued after abort: %d series seen", seen)
	}

	// Execute (the materializing wrapper) must agree with a full
	// stream, in the same order.
	var streamed []ResultSeries
	if err := db.ExecuteStream(q, func(rs ResultSeries) error {
		streamed = append(streamed, rs)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	direct, err := db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(streamed) || len(direct) != 5 {
		t.Fatalf("stream/materialized mismatch: %d vs %d", len(streamed), len(direct))
	}
	for i := range direct {
		if direct[i].Tags["sensor"] != streamed[i].Tags["sensor"] {
			t.Errorf("order mismatch at %d: %v vs %v", i, direct[i].Tags, streamed[i].Tags)
		}
	}
}

// TestSeriesScore pins the ranking function.
func TestSeriesScore(t *testing.T) {
	if s := SeriesScore([]Point{{Value: 1}, {Value: 2}, {Value: 6}}); s != 3 {
		t.Fatalf("score = %v, want 3", s)
	}
	if s := SeriesScore(nil); !math.IsNaN(s) {
		t.Fatalf("empty score = %v, want NaN", s)
	}
}

// TestScanSeries: the backfill scan streams matching series in key
// order, windowed, and honours prefix + tag filters.
func TestScanSeries(t *testing.T) {
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	fillSeries(t, db, "a1", 1, 10)
	fillSeries(t, db, "a2", 2, 10)
	if err := db.Put(DataPoint{
		Metric: "env.temp",
		Tags:   map[string]string{"sensor": "a1"},
		Point:  Point{Timestamp: 1488326400000, Value: 20},
	}); err != nil {
		t.Fatal(err)
	}

	var metrics []string
	var total int
	err = db.ScanSeries("air.", map[string]string{"sensor": "*"}, 1488326400000, 1488326404000,
		func(metric string, tags map[string]string, pts []Point) error {
			metrics = append(metrics, metric+"/"+tags["sensor"])
			total += len(pts)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(metrics) != "[air.co2/a1 air.co2/a2]" {
		t.Fatalf("scanned %v, want the two air.co2 series in key order", metrics)
	}
	if total != 10 { // 5 points each within the window
		t.Fatalf("scanned %d points, want 10", total)
	}

	// Tag filter narrows; abort error propagates.
	n := 0
	if err := db.ScanSeries("", map[string]string{"sensor": "a1"}, 0, math.MaxInt64,
		func(string, map[string]string, []Point) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 { // air.co2/a1 and env.temp/a1
		t.Fatalf("filtered scan saw %d series, want 2", n)
	}
	wantErr := fmt.Errorf("abort")
	if err := db.ScanSeries("", nil, 0, math.MaxInt64,
		func(string, map[string]string, []Point) error { return wantErr }); err != wantErr {
		t.Fatalf("abort error not propagated: %v", err)
	}
}
