package tsdb

import (
	"sort"
	"time"

	"repro/internal/obs"
)

// Per-point cursors over stored series: the read hot path hands
// points one at a time from sealed blocks (via blockCursor) through
// range filtering, head merging and downsample folding, so a scan
// never materializes a series-sized []Point unless the caller asks
// for one. Every source yields points in non-decreasing timestamp
// order.

// pointSource is a pull iterator over points in timestamp order.
type pointSource interface {
	// next returns the next point; ok is false when the source is
	// exhausted. After !ok or an error the source must not be reused.
	next() (Point, bool, error)
}

// sliceSource streams an already-materialized, sorted point slice.
type sliceSource struct {
	pts []Point
	i   int
}

func (s *sliceSource) next() (Point, bool, error) {
	if s.i >= len(s.pts) {
		return Point{}, false, nil
	}
	p := s.pts[s.i]
	s.i++
	return p, true, nil
}

// blockSource streams the in-range points of a run of sealed blocks
// that are time-ordered and non-overlapping, decoding one point at a
// time and stopping as soon as the range end passes.
type blockSource struct {
	blocks     []sealedBlock
	bi         int
	cur        blockCursor
	open       bool
	start, end int64
}

func (b *blockSource) next() (Point, bool, error) {
	for {
		if !b.open {
			if b.bi >= len(b.blocks) {
				return Point{}, false, nil
			}
			blk := b.blocks[b.bi]
			b.bi++
			b.cur.reset(blk.data, blk.n)
			b.open = true
		}
		p, ok, err := b.cur.next()
		if err != nil {
			return Point{}, false, err
		}
		if !ok {
			b.open = false
			continue
		}
		if p.Timestamp > b.end {
			// Blocks are ordered and non-overlapping: everything after
			// this point is out of range too.
			return Point{}, false, nil
		}
		if p.Timestamp < b.start {
			continue
		}
		return p, true, nil
	}
}

// mergeSource interleaves two sorted sources; ties go to a, so block
// points precede same-timestamp head points.
type mergeSource struct {
	a, b     pointSource
	ap, bp   Point
	aok, bok bool
	primed   bool
}

func (m *mergeSource) prime() error {
	var err error
	if m.ap, m.aok, err = m.a.next(); err != nil {
		return err
	}
	if m.bp, m.bok, err = m.b.next(); err != nil {
		return err
	}
	m.primed = true
	return nil
}

func (m *mergeSource) next() (Point, bool, error) {
	if !m.primed {
		if err := m.prime(); err != nil {
			return Point{}, false, err
		}
	}
	switch {
	case !m.aok && !m.bok:
		return Point{}, false, nil
	case m.aok && (!m.bok || m.ap.Timestamp <= m.bp.Timestamp):
		p := m.ap
		var err error
		if m.ap, m.aok, err = m.a.next(); err != nil {
			return Point{}, false, err
		}
		return p, true, nil
	default:
		p := m.bp
		var err error
		if m.bp, m.bok, err = m.b.next(); err != nil {
			return Point{}, false, err
		}
		return p, true, nil
	}
}

// timedSource accrues the wall time of every next() call into a stage
// accumulator — the opt-in per-point detail mode behind
// Trace.SetDetailed. Timing is inclusive of the wrapped chain: a
// downsample_fold wrapper includes the block_decode below it, so
// attribution subtracts inner stages from outer ones.
type timedSource struct {
	src pointSource
	st  *obs.Stage
}

func (t *timedSource) next() (Point, bool, error) {
	t0 := time.Now()
	p, ok, err := t.src.next()
	t.st.Add(time.Since(t0))
	return p, ok, err
}

// diskSource streams the in-range points of a run of time-ordered,
// non-overlapping on-disk chunks: each chunk's payload is pread and
// CRC-verified when the cursor reaches it, into a buffer reused
// across chunks, then decoded point-at-a-time like an in-memory
// block.
type diskSource struct {
	chunks     []*diskChunk
	ci         int
	cur        blockCursor
	open       bool
	start, end int64
	buf        []byte
	ds         *diskStore
}

func (d *diskSource) next() (Point, bool, error) {
	for {
		if !d.open {
			if d.ci >= len(d.chunks) {
				return Point{}, false, nil
			}
			c := d.chunks[d.ci]
			d.ci++
			payload, err := c.payload(&d.buf)
			if err != nil {
				d.ds.readErrs.Add(1)
				return Point{}, false, err
			}
			d.cur.reset(payload, c.n)
			d.open = true
		}
		p, ok, err := d.cur.next()
		if err != nil {
			return Point{}, false, err
		}
		if !ok {
			d.open = false
			continue
		}
		if p.Timestamp > d.end {
			// Chunks are ordered and non-overlapping: done.
			return Point{}, false, nil
		}
		if p.Timestamp < d.start {
			continue
		}
		return p, true, nil
	}
}

// seriesSource builds a cursor over one series' points within
// [start, end], merging on-disk chunks, sealed blocks and the head
// buffer (oldest layer wins timestamp ties). The shard lock is taken
// only to snapshot the block list, copy the in-range slice of the
// head, and gather the disk chunk set — one critical section, so a
// concurrent flush (which moves data between the layers atomically
// per shard) can never make a point visible twice or not at all.
// Decoding runs lock-free. The returned estimate is an upper bound on
// the number of points the source can yield. With a detailed trace,
// the legs are wrapped in per-point timers (disk_read / block_decode
// / head_scan stages); a nil or undetailed trace adds nothing to the
// chain.
func (db *DB) seriesSource(s *memSeries, sh *shard, start, end int64, tr *obs.Trace) (pointSource, int, error) {
	detailed := tr.Detailed()
	var dchunks []*diskChunk
	sh.mu.RLock()
	blocks := s.blocks
	// head is sorted: copy just the in-range subrange.
	lo := sort.Search(len(s.head), func(i int) bool { return s.head[i].Timestamp >= start })
	hi := sort.Search(len(s.head), func(i int) bool { return s.head[i].Timestamp > end })
	var head []Point
	if lo < hi {
		head = append(head, s.head[lo:hi]...)
	}
	if db.disk != nil && s.ref != nil {
		dchunks = db.disk.chunksFor(s.ref.id, start, end)
	}
	sh.mu.RUnlock()

	est := len(head)
	inRange := blocks[:0:0]
	ordered := true
	for _, b := range blocks {
		if b.maxTS < start || b.minTS > end {
			continue
		}
		if n := len(inRange); n > 0 && b.minTS < inRange[n-1].maxTS {
			ordered = false
		}
		inRange = append(inRange, b)
		est += b.n
	}

	var blockSrc pointSource
	switch {
	case len(inRange) == 0:
		blockSrc = nil
	case ordered:
		blockSrc = &blockSource{blocks: inRange, start: start, end: end}
	default:
		// Out-of-order ingest sealed overlapping blocks (rare): decode
		// and sort them once, then stream the result.
		var pts []Point
		for _, b := range inRange {
			dec, err := decodeBlock(b.data, b.n)
			if err != nil {
				return nil, 0, err
			}
			for _, p := range dec {
				if p.Timestamp >= start && p.Timestamp <= end {
					pts = append(pts, p)
				}
			}
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].Timestamp < pts[j].Timestamp })
		blockSrc = &sliceSource{pts: pts}
	}
	if blockSrc != nil && detailed {
		blockSrc = &timedSource{src: blockSrc, st: tr.Stage("block_decode")}
	}

	var diskSrc pointSource
	if len(dchunks) > 0 {
		dOrdered := true
		for i, c := range dchunks {
			est += c.n
			if i > 0 && c.minTS < dchunks[i-1].maxTS {
				dOrdered = false
			}
		}
		if dOrdered {
			diskSrc = &diskSource{chunks: dchunks, start: start, end: end, ds: db.disk}
		} else {
			// Overlapping chunks (out-of-order ingest flushed across
			// passes): materialize and sort once.
			var pts []Point
			var buf []byte
			for _, c := range dchunks {
				payload, err := c.payload(&buf)
				if err != nil {
					db.disk.readErrs.Add(1)
					return nil, 0, err
				}
				dec, err := decodeBlock(payload, c.n)
				if err != nil {
					return nil, 0, err
				}
				for _, p := range dec {
					if p.Timestamp >= start && p.Timestamp <= end {
						pts = append(pts, p)
					}
				}
			}
			sort.Slice(pts, func(i, j int) bool { return pts[i].Timestamp < pts[j].Timestamp })
			diskSrc = &sliceSource{pts: pts}
		}
		if detailed {
			diskSrc = &timedSource{src: diskSrc, st: tr.Stage("disk_read")}
		}
	}

	var headSrc pointSource
	if len(head) > 0 || (blockSrc == nil && diskSrc == nil) {
		headSrc = &sliceSource{pts: head}
		if detailed {
			headSrc = &timedSource{src: headSrc, st: tr.Stage("head_scan")}
		}
	}

	// Merge: disk (oldest) under memory blocks under head, ties going
	// to the older layer.
	src := diskSrc
	for _, layer := range []pointSource{blockSrc, headSrc} {
		switch {
		case layer == nil:
		case src == nil:
			src = layer
		default:
			src = &mergeSource{a: src, b: layer}
		}
	}
	return src, est, nil
}

// downsampleSource folds a raw source into fixed epoch-aligned
// buckets reduced by fn, holding one bucket's values at a time. The
// value buffer is reused across buckets; percentile sorting borrows
// the shared per-worker scratch.
type downsampleSource struct {
	src  pointSource
	ms   int64
	fn   Aggregator
	sc   *execScratch
	vals []float64
	pend Point
	pOK  bool
	done bool
}

func (d *downsampleSource) next() (Point, bool, error) {
	if d.done {
		return Point{}, false, nil
	}
	d.vals = d.vals[:0]
	var bucket int64
	if d.pOK {
		bucket = d.pend.Timestamp - d.pend.Timestamp%d.ms
		d.vals = append(d.vals, d.pend.Value)
		d.pOK = false
	} else {
		p, ok, err := d.src.next()
		if err != nil {
			return Point{}, false, err
		}
		if !ok {
			d.done = true
			return Point{}, false, nil
		}
		bucket = p.Timestamp - p.Timestamp%d.ms
		d.vals = append(d.vals, p.Value)
	}
	for {
		p, ok, err := d.src.next()
		if err != nil {
			return Point{}, false, err
		}
		if !ok {
			d.done = true
			break
		}
		if b := p.Timestamp - p.Timestamp%d.ms; b != bucket {
			d.pend, d.pOK = p, true
			break
		}
		d.vals = append(d.vals, p.Value)
	}
	return Point{Timestamp: bucket, Value: d.fn.applyWith(d.vals, d.sc)}, true, nil
}

// drainSource appends everything a source yields to out.
func drainSource(src pointSource, out []Point) ([]Point, error) {
	for {
		p, ok, err := src.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, p)
	}
}
