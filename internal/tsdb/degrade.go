package tsdb

// Degraded read-only mode: when the disk under the store stops
// cooperating — the WAL cannot be appended to or fsynced, or flushes
// keep failing — the store flips into a sticky degraded state instead
// of silently accepting writes it may not be able to make durable.
// Writes fail fast with ErrDegraded; reads, rollup serving and stats
// keep working off the data already held. The state never clears at
// runtime: after a rejected fsync the kernel may have dropped dirty
// pages that the process-side cache still reads back clean, so only a
// restart (replaying the WAL against a healthy disk) re-establishes a
// trustworthy baseline.

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// ErrDegraded is the sentinel wrapped by every write rejected because
// the store is degraded; match with errors.Is.
var ErrDegraded = errors.New("tsdb: store degraded, writes disabled")

const (
	// walAppendDegradeAfter is how many consecutive WAL append failures
	// flip the store: a lone EIO may be transient, a run of them is a
	// dead log.
	walAppendDegradeAfter = 3

	// flushDegradeAfter / compactDegradeAfter bound how many
	// consecutive failed structural passes (each already retried with
	// backoff by the flush loop) are tolerated before degrading.
	flushDegradeAfter   = 5
	compactDegradeAfter = 5

	// structuralRetryBase/Max shape the flush loop's in-place retry
	// backoff.
	structuralRetryBase = 100 * time.Millisecond
	structuralRetryMax  = 5 * time.Second
)

// degradedState records why and when the store degraded.
type degradedState struct {
	err error // wraps ErrDegraded
	at  time.Time
}

// degrade flips the store into the sticky degraded state. The first
// cause wins; later calls are no-ops so the reported error is always
// the originating one.
func (db *DB) degrade(cause error) {
	st := &degradedState{
		err: fmt.Errorf("%w: %v", ErrDegraded, cause),
		at:  time.Now(),
	}
	db.degraded.CompareAndSwap(nil, st)
}

// Degraded returns nil while the store is healthy, and otherwise an
// error (wrapping ErrDegraded) describing the originating failure.
// One atomic load: safe on the per-point hot path.
func (db *DB) Degraded() error {
	if st := db.degraded.Load(); st != nil {
		return st.err
	}
	return nil
}

// DegradedSince reports when the store degraded; ok is false while
// healthy.
func (db *DB) DegradedSince() (time.Time, bool) {
	if st := db.degraded.Load(); st != nil {
		return st.at, true
	}
	return time.Time{}, false
}

// noteWALAppendError records one failed WAL append; a run of
// walAppendDegradeAfter consecutive failures degrades the store.
func (db *DB) noteWALAppendError(err error) {
	db.walAppendErrs.Add(1)
	if db.walAppendFails.Add(1) >= walAppendDegradeAfter {
		db.degrade(fmt.Errorf("wal append failing persistently: %w", err))
	}
}

// noteWALAppendOK resets the consecutive-failure run. The load-first
// shape keeps the hot path from dirtying a shared cache line on every
// point when nothing has ever failed.
func (db *DB) noteWALAppendOK() {
	if db.walAppendFails.Load() != 0 {
		db.walAppendFails.Store(0)
	}
}

// noteFlushResult tracks consecutive FlushBlocks failures and degrades
// after flushDegradeAfter of them. A WAL fsync failure inside the pass
// has already degraded the store directly (see flushBefore).
func (db *DB) noteFlushResult(err error) {
	if err == nil {
		if db.flushFails.Load() != 0 {
			db.flushFails.Store(0)
		}
		return
	}
	if errors.Is(err, ErrDegraded) || errors.Is(err, ErrDiskDisabled) {
		return
	}
	if db.flushFails.Add(1) >= flushDegradeAfter {
		db.degrade(fmt.Errorf("flush failing persistently: %w", err))
	}
}

// noteCompactResult is noteFlushResult for compaction passes.
func (db *DB) noteCompactResult(err error) {
	if err == nil {
		if db.compactFails.Load() != 0 {
			db.compactFails.Store(0)
		}
		return
	}
	if errors.Is(err, ErrDegraded) || errors.Is(err, ErrDiskDisabled) {
		return
	}
	if db.compactFails.Add(1) >= compactDegradeAfter {
		db.degrade(fmt.Errorf("compaction failing persistently: %w", err))
	}
}

// retryStructural runs fn, retrying transient failures with capped
// exponential backoff plus jitter (so a fleet of stores sharing a sick
// disk array doesn't retry in lockstep). It gives up when fn succeeds,
// the store degrades, the disk layer is disabled, or stop closes.
func (db *DB) retryStructural(stop <-chan struct{}, fn func() error) {
	backoff := structuralRetryBase
	for {
		err := fn()
		if err == nil || errors.Is(err, ErrDegraded) || errors.Is(err, ErrDiskDisabled) {
			return
		}
		d := backoff + rand.N(backoff)
		select {
		case <-stop:
			return
		case <-time.After(d):
		}
		if backoff *= 2; backoff > structuralRetryMax {
			backoff = structuralRetryMax
		}
	}
}

// StorageErrorStats are cumulative storage-failure counters, labeled
// per operation in /metrics as ctt_storage_errors_total{op}.
type StorageErrorStats struct {
	WALAppend uint64
	WALFsync  uint64
	Flush     uint64
	Compact   uint64
}

// StorageErrors reports cumulative storage-failure counts.
func (db *DB) StorageErrors() StorageErrorStats {
	st := StorageErrorStats{
		WALAppend: db.walAppendErrs.Load(),
		WALFsync:  db.walFsyncErrs.Load(),
	}
	if ds := db.disk; ds != nil {
		st.Flush = ds.flushErrs.Load()
		st.Compact = ds.compactErrs.Load()
	}
	return st
}
