package tsdb

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// Benchmarks for the storage engine, including the ablation DESIGN.md
// calls out: Gorilla compression cost/benefit versus raw points.

func benchPoints(n int) []DataPoint {
	out := make([]DataPoint, n)
	for i := 0; i < n; i++ {
		out[i] = DataPoint{
			Metric: "air.co2",
			Tags:   map[string]string{"sensor": fmt.Sprintf("n%02d", i%12), "city": "trondheim"},
			Point: Point{
				Timestamp: baseTS + int64(i)*300000,
				Value:     410 + 10*math.Sin(float64(i)/50),
			},
		}
	}
	return out
}

func BenchmarkPut(b *testing.B) {
	db, _ := Open("")
	defer db.Close()
	pts := benchPoints(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put(pts[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutWithWAL(b *testing.B) {
	db, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	pts := benchPoints(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put(pts[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryAggregate(b *testing.B) {
	db, _ := Open("")
	defer db.Close()
	for _, p := range benchPoints(12 * 288 * 7) { // 12 sensors, a week at 5 min
		db.Put(p)
	}
	q := Query{
		Metric:     "air.co2",
		Start:      baseTS,
		End:        baseTS + 7*24*3600*1000,
		Aggregator: AggAvg,
		Downsample: time.Hour,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Execute(q)
		if err != nil || len(res) == 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryGroupBy(b *testing.B) {
	db, _ := Open("")
	defer db.Close()
	for _, p := range benchPoints(12 * 288) {
		db.Put(p)
	}
	q := Query{
		Metric:     "air.co2",
		Tags:       map[string]string{"sensor": "*"},
		Start:      baseTS,
		End:        baseTS + 24*3600*1000,
		Aggregator: AggAvg,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Execute(q)
		if err != nil || len(res) != 12 {
			b.Fatalf("res=%d err=%v", len(res), err)
		}
	}
}

// BenchmarkGorillaEncode/Decode isolate the compression ablation:
// bytes-per-point is reported so the ~65% saving over raw 16 B/point
// is visible next to the CPU cost.
func BenchmarkGorillaEncode(b *testing.B) {
	const n = 1000
	b.ReportAllocs()
	var bytesPerPoint float64
	for i := 0; i < b.N; i++ {
		enc := newBlockEncoder()
		for j := 0; j < n; j++ {
			enc.add(baseTS+int64(j)*300000, 410+10*math.Sin(float64(j)/50))
		}
		data, _ := enc.finish()
		bytesPerPoint = float64(len(data)) / n
	}
	b.ReportMetric(bytesPerPoint, "bytes/point")
	b.ReportMetric(16, "raw-bytes/point")
}

func BenchmarkGorillaDecode(b *testing.B) {
	const n = 1000
	enc := newBlockEncoder()
	for j := 0; j < n; j++ {
		enc.add(baseTS+int64(j)*300000, 410+10*math.Sin(float64(j)/50))
	}
	data, cnt := enc.finish()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := decodeBlock(data, cnt)
		if err != nil || len(pts) != n {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	db, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range benchPoints(10000) {
		db.Put(p)
	}
	db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db2, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		if db2.PointCount() != 10000 {
			b.Fatal("replay incomplete")
		}
		db2.Close()
	}
}
