package tsdb

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// Benchmarks for the storage engine, including the ablation DESIGN.md
// calls out: Gorilla compression cost/benefit versus raw points.

func benchPoints(n int) []DataPoint {
	out := make([]DataPoint, n)
	for i := 0; i < n; i++ {
		out[i] = DataPoint{
			Metric: "air.co2",
			Tags:   map[string]string{"sensor": fmt.Sprintf("n%02d", i%12), "city": "trondheim"},
			Point: Point{
				Timestamp: baseTS + int64(i)*300000,
				Value:     410 + 10*math.Sin(float64(i)/50),
			},
		}
	}
	return out
}

func BenchmarkPut(b *testing.B) {
	db, _ := Open("")
	defer db.Close()
	pts := benchPoints(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put(pts[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutWithWAL(b *testing.B) {
	db, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	pts := benchPoints(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put(pts[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryAggregate(b *testing.B) {
	db, _ := Open("")
	defer db.Close()
	for _, p := range benchPoints(12 * 288 * 7) { // 12 sensors, a week at 5 min
		db.Put(p)
	}
	q := Query{
		Metric:     "air.co2",
		Start:      baseTS,
		End:        baseTS + 7*24*3600*1000,
		Aggregator: AggAvg,
		Downsample: time.Hour,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Execute(q)
		if err != nil || len(res) == 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryGroupBy(b *testing.B) {
	db, _ := Open("")
	defer db.Close()
	for _, p := range benchPoints(12 * 288) {
		db.Put(p)
	}
	q := Query{
		Metric:     "air.co2",
		Tags:       map[string]string{"sensor": "*"},
		Start:      baseTS,
		End:        baseTS + 24*3600*1000,
		Aggregator: AggAvg,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Execute(q)
		if err != nil || len(res) != 12 {
			b.Fatalf("res=%d err=%v", len(res), err)
		}
	}
}

// BenchmarkGorillaEncode/Decode isolate the compression ablation:
// bytes-per-point is reported so the ~65% saving over raw 16 B/point
// is visible next to the CPU cost.
func BenchmarkGorillaEncode(b *testing.B) {
	const n = 1000
	b.ReportAllocs()
	var bytesPerPoint float64
	for i := 0; i < b.N; i++ {
		enc := newBlockEncoder()
		for j := 0; j < n; j++ {
			enc.add(baseTS+int64(j)*300000, 410+10*math.Sin(float64(j)/50))
		}
		data, _ := enc.finish()
		bytesPerPoint = float64(len(data)) / n
	}
	b.ReportMetric(bytesPerPoint, "bytes/point")
	b.ReportMetric(16, "raw-bytes/point")
}

func BenchmarkGorillaDecode(b *testing.B) {
	const n = 1000
	enc := newBlockEncoder()
	for j := 0; j < n; j++ {
		enc.add(baseTS+int64(j)*300000, 410+10*math.Sin(float64(j)/50))
	}
	data, cnt := enc.finish()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := decodeBlock(data, cnt)
		if err != nil || len(pts) != n {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdGroupQuery is the read-path headline: a cold (fully
// sealed, no cache) downsampled group-by query over a week of
// 12-sensor data, decoding through the fused cursor pipeline. The
// p95 variant exercises the percentile sort scratch. Run with
// -benchmem: allocs/op here is gated by ci/benchcmp.
func BenchmarkColdGroupQuery(b *testing.B) {
	db, _ := Open("")
	defer db.Close()
	for _, p := range benchPoints(12 * 288 * 7) {
		db.Put(p)
	}
	db.SetScanParallelism(1) // isolate the single-thread decode cost
	defer db.SetScanParallelism(0)
	for _, fn := range []Aggregator{AggAvg, AggP95} {
		b.Run(string(fn), func(b *testing.B) {
			q := Query{
				Metric:       "air.co2",
				Tags:         map[string]string{"sensor": "*"},
				Start:        baseTS,
				End:          baseTS + 7*24*3600*1000,
				Aggregator:   AggAvg,
				Downsample:   time.Hour,
				DownsampleFn: fn,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				err := db.ExecuteStream(q, func(rs ResultSeries) error { n++; return nil })
				if err != nil || n != 12 {
					b.Fatalf("n=%d err=%v", n, err)
				}
			}
		})
	}
}

// BenchmarkParallelScan measures how the bounded worker pool scales
// the same 48-series cold scan from one worker to eight.
func BenchmarkParallelScan(b *testing.B) {
	db, _ := Open("")
	defer db.Close()
	for i := 0; i < 48*288*2; i++ {
		db.Put(DataPoint{
			Metric: "air.co2",
			Tags:   map[string]string{"sensor": fmt.Sprintf("n%02d", i%48), "city": "trondheim"},
			Point: Point{
				Timestamp: baseTS + int64(i/48)*300000,
				Value:     410 + 10*math.Sin(float64(i)/50),
			},
		})
	}
	q := Query{
		Metric:     "air.co2",
		Tags:       map[string]string{"sensor": "*"},
		Start:      baseTS,
		End:        baseTS + 2*24*3600*1000,
		Aggregator: AggP95,
		Downsample: time.Hour,
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			db.SetScanParallelism(workers)
			defer db.SetScanParallelism(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				err := db.ExecuteStream(q, func(rs ResultSeries) error { n++; return nil })
				if err != nil || n != 48 {
					b.Fatalf("n=%d err=%v", n, err)
				}
			}
		})
	}
}

// benchPlanner serves downsamples from pre-aggregated buckets, the
// shape the rollup engine provides — so BenchmarkTopKRollup measures
// selection that never touches member points.
type benchPlanner struct {
	buckets map[string][]Point
}

func (p *benchPlanner) ServeDownsample(series *Ref, start, end int64, interval time.Duration, fn Aggregator, yield func(Point) error) (bool, error) {
	pts, ok := p.buckets[series.Tags()["sensor"]]
	if !ok {
		return false, nil
	}
	for _, pt := range pts {
		if err := yield(pt); err != nil {
			return false, err
		}
	}
	return true, nil
}

// BenchmarkTopKRollup ranks a 48-way group-by with SeriesLimit=3:
// RawScan scores every candidate through the fused decode path,
// RollupTier through planner-served buckets (no member decode at all).
func BenchmarkTopKRollup(b *testing.B) {
	db, _ := Open("")
	defer db.Close()
	for i := 0; i < 48*288*2; i++ {
		db.Put(DataPoint{
			Metric: "air.co2",
			Tags:   map[string]string{"sensor": fmt.Sprintf("n%02d", i%48), "city": "trondheim"},
			Point: Point{
				Timestamp: baseTS + int64(i/48)*300000,
				Value:     410 + 10*math.Sin(float64(i)/50),
			},
		})
	}
	db.SetScanParallelism(1)
	defer db.SetScanParallelism(0)
	q := Query{
		Metric:      "air.co2",
		Tags:        map[string]string{"sensor": "*"},
		Start:       baseTS,
		End:         baseTS + 2*24*3600*1000,
		Aggregator:  AggAvg,
		Downsample:  time.Hour,
		SeriesLimit: 3,
	}
	run := func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			err := db.ExecuteStream(q, func(rs ResultSeries) error { n++; return nil })
			if err != nil || n != 3 {
				b.Fatalf("n=%d err=%v", n, err)
			}
		}
	}
	b.Run("RawScan", run)
	b.Run("RollupTier", func(b *testing.B) {
		// Precompute the per-sensor hourly buckets a rollup tier would
		// hold (setup cost, not measured).
		planner := &benchPlanner{buckets: map[string][]Point{}}
		err := db.ScanSeries("air.co2", nil, q.Start, q.End, func(metric string, tags map[string]string, pts []Point) error {
			planner.buckets[tags["sensor"]] = Downsample(pts, time.Hour, AggAvg)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		db.SetRollupPlanner(planner)
		defer db.SetRollupPlanner(nil)
		run(b)
	})
}

func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	db, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range benchPoints(10000) {
		db.Put(p)
	}
	db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db2, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		if db2.PointCount() != 10000 {
			b.Fatal("replay incomplete")
		}
		db2.Close()
	}
}

// BenchmarkFlush measures one full flush pass: extract cold blocks
// from every shard, write + fsync the block file, append the WAL
// marker, publish, and truncate the WAL. 10k points over 12 series.
func BenchmarkFlush(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db, err := OpenOptions(Options{
			Dir: b.TempDir(), DurableBlocks: true,
			FlushInterval: -1, CompactInterval: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range benchPoints(10000) {
			db.Put(p)
		}
		b.StartTimer()
		stats, err := db.flushBefore(maxTS, true)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Points != 10000 {
			b.Fatalf("flushed %d points, want 10000", stats.Points)
		}
		b.StopTimer()
		db.Close()
	}
}

// BenchmarkDiskScan measures a cold group query served entirely from
// on-disk chunks: pread + CRC verify + Gorilla decode through the
// streaming cursor path, 10k points over 12 series.
func BenchmarkDiskScan(b *testing.B) {
	db, err := OpenOptions(Options{
		Dir: b.TempDir(), DurableBlocks: true,
		FlushInterval: -1, CompactInterval: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	for _, p := range benchPoints(10000) {
		db.Put(p)
	}
	if _, err := db.flushBefore(maxTS, true); err != nil {
		b.Fatal(err)
	}
	if n := db.PointCount(); n != 10000 {
		b.Fatalf("PointCount = %d", n)
	}
	q := Query{
		Metric: "air.co2", Tags: map[string]string{"city": "trondheim"},
		Start: baseTS, End: baseTS + int64(10000)*300000, Aggregator: AggAvg,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Execute(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) == 0 || len(res[0].Points) == 0 {
			b.Fatal("empty result")
		}
	}
}
