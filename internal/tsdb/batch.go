package tsdb

// Batch ingestion: the HTTP gateway accepts whole JSON arrays of data
// points per request, so the store offers an append path that
// validates everything up front, groups points by shard, and takes
// each shard lock once per batch instead of once per point.

import "fmt"

// PointError locates one rejected point within a batch.
type PointError struct {
	Index int   // position in the submitted batch
	Err   error // why it was rejected
}

func (e PointError) Error() string {
	return fmt.Sprintf("tsdb: point %d: %v", e.Index, e.Err)
}

// BatchResult summarises an AppendBatch call.
type BatchResult struct {
	Stored int
	Errors []PointError
}

// AppendBatch stores every valid point of the batch and reports the
// invalid ones, OpenTSDB /api/put-style: one bad point does not reject
// its neighbours. Points are grouped by shard so each shard lock is
// taken once per batch.
func (db *DB) AppendBatch(dps []DataPoint) BatchResult {
	return db.appendBatch(dps, true)
}

// AppendBatchValidated is AppendBatch minus the per-point Validate
// pass, for callers that already validated every point (the HTTP
// gateway validates at the edge so it can answer synchronously).
// Unvalidated garbage passed here would be stored as-is.
func (db *DB) AppendBatchValidated(dps []DataPoint) BatchResult {
	return db.appendBatch(dps, false)
}

func (db *DB) appendBatch(dps []DataPoint, validate bool) BatchResult {
	var res BatchResult
	type item struct {
		key string
		idx int
	}
	var groups [numShards][]item
	for i := range dps {
		if validate {
			if err := dps[i].Validate(); err != nil {
				res.Errors = append(res.Errors, PointError{Index: i, Err: err})
				continue
			}
		}
		key := seriesKey(dps[i].Metric, dps[i].Tags)
		sh := shardFor(key)
		groups[sh] = append(groups[sh], item{key: key, idx: i})
	}
	for si := range groups {
		if len(groups[si]) == 0 {
			continue
		}
		// WAL first (it has its own lock), then the in-memory insert.
		stored := groups[si][:0]
		for _, it := range groups[si] {
			if db.wal != nil {
				if err := db.wal.append(dps[it.idx]); err != nil {
					res.Errors = append(res.Errors, PointError{Index: it.idx, Err: fmt.Errorf("tsdb: wal append: %w", err)})
					continue
				}
			}
			stored = append(stored, it)
		}
		sh := &db.shards[si]
		sh.mu.Lock()
		for _, it := range stored {
			db.insertLocked(sh, it.key, dps[it.idx])
		}
		sh.mu.Unlock()
		res.Stored += len(stored)
		if db.observers.Load() != nil {
			for _, it := range stored {
				db.notifyObservers(dps[it.idx])
			}
		}
	}
	return res
}

// observerEntry wraps an observer callback so removal can compare
// identities (func values are not comparable).
type observerEntry struct {
	fn func(DataPoint)
}

// notifyObservers fans a stored point out to every registered
// observer. Called outside the shard locks, so observers may write
// back into the store (the rollup engine flushes derived points from
// inside its observer).
func (db *DB) notifyObservers(dp DataPoint) {
	obs := db.observers.Load()
	if obs == nil {
		return
	}
	for _, e := range *obs {
		e.fn(dp)
	}
}

// AddObserver registers a callback invoked (outside the shard locks)
// for every point stored through Put, PutBatch or AppendBatch — the
// hook the gateway's live stream, the query-cache invalidator and the
// rollup engine subscribe to. It returns a function that removes the
// registration. WAL replay during Open does not trigger observers.
func (db *DB) AddObserver(fn func(DataPoint)) (remove func()) {
	e := &observerEntry{fn: fn}
	db.obsMu.Lock()
	db.addEntryLocked(e)
	db.obsMu.Unlock()
	return func() {
		db.obsMu.Lock()
		db.removeEntryLocked(e)
		db.obsMu.Unlock()
	}
}

func (db *DB) addEntryLocked(e *observerEntry) {
	var cur []*observerEntry
	if p := db.observers.Load(); p != nil {
		cur = *p
	}
	next := make([]*observerEntry, len(cur), len(cur)+1)
	copy(next, cur)
	next = append(next, e)
	db.observers.Store(&next)
}

func (db *DB) removeEntryLocked(e *observerEntry) {
	p := db.observers.Load()
	if p == nil {
		return
	}
	next := make([]*observerEntry, 0, len(*p))
	for _, o := range *p {
		if o != e {
			next = append(next, o)
		}
	}
	if len(next) == 0 {
		db.observers.Store(nil)
		return
	}
	db.observers.Store(&next)
}

// SetObserver installs fn in a dedicated single-observer slot,
// replacing whatever that slot held; nil clears it. Kept for callers
// that only ever need one observer — AddObserver is the general form
// and the two compose.
func (db *DB) SetObserver(fn func(DataPoint)) {
	db.obsMu.Lock()
	defer db.obsMu.Unlock()
	if db.legacyObs != nil {
		db.legacyObs()
		db.legacyObs = nil
	}
	if fn != nil {
		e := &observerEntry{fn: fn}
		db.addEntryLocked(e)
		db.legacyObs = func() { db.removeEntryLocked(e) }
	}
}
