package tsdb

// Batch ingestion: the HTTP gateway accepts whole JSON arrays of data
// points per request, so the store offers an append path that
// validates everything up front, groups points by shard, and takes
// each shard lock once per batch instead of once per point.

import "fmt"

// PointError locates one rejected point within a batch.
type PointError struct {
	Index int   // position in the submitted batch
	Err   error // why it was rejected
}

func (e PointError) Error() string {
	return fmt.Sprintf("tsdb: point %d: %v", e.Index, e.Err)
}

// BatchResult summarises an AppendBatch call.
type BatchResult struct {
	Stored int
	Errors []PointError
}

// AppendBatch stores every valid point of the batch and reports the
// invalid ones, OpenTSDB /api/put-style: one bad point does not reject
// its neighbours. Points are grouped by shard so each shard lock is
// taken once per batch.
func (db *DB) AppendBatch(dps []DataPoint) BatchResult {
	return db.appendBatch(dps, true)
}

// AppendBatchValidated is AppendBatch minus the per-point Validate
// pass, for callers that already validated every point (the HTTP
// gateway validates at the edge so it can answer synchronously).
// Unvalidated garbage passed here would be stored as-is.
func (db *DB) AppendBatchValidated(dps []DataPoint) BatchResult {
	return db.appendBatch(dps, false)
}

func (db *DB) appendBatch(dps []DataPoint, validate bool) BatchResult {
	var res BatchResult
	type item struct {
		key string
		idx int
	}
	var groups [numShards][]item
	for i := range dps {
		if validate {
			if err := dps[i].Validate(); err != nil {
				res.Errors = append(res.Errors, PointError{Index: i, Err: err})
				continue
			}
		}
		key := seriesKey(dps[i].Metric, dps[i].Tags)
		sh := shardFor(key)
		groups[sh] = append(groups[sh], item{key: key, idx: i})
	}
	for si := range groups {
		if len(groups[si]) == 0 {
			continue
		}
		// WAL first (it has its own lock), then the in-memory insert.
		stored := groups[si][:0]
		for _, it := range groups[si] {
			if db.wal != nil {
				if err := db.wal.append(dps[it.idx]); err != nil {
					res.Errors = append(res.Errors, PointError{Index: it.idx, Err: fmt.Errorf("tsdb: wal append: %w", err)})
					continue
				}
			}
			stored = append(stored, it)
		}
		sh := &db.shards[si]
		sh.mu.Lock()
		for _, it := range stored {
			db.insertLocked(sh, it.key, dps[it.idx])
		}
		sh.mu.Unlock()
		res.Stored += len(stored)
		if obs := db.observer.Load(); obs != nil {
			for _, it := range stored {
				(*obs)(dps[it.idx])
			}
		}
	}
	return res
}

// SetObserver installs a callback invoked (outside the shard locks)
// for every point stored through Put, PutBatch or AppendBatch — the
// hook the gateway's live stream hub subscribes to. Pass nil to
// remove. WAL replay during Open does not trigger it.
func (db *DB) SetObserver(fn func(DataPoint)) {
	if fn == nil {
		db.observer.Store(nil)
		return
	}
	db.observer.Store(&fn)
}
